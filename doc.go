// Package repro is a Go reproduction of "The Index-Permutation Graph Model
// for Hierarchical Interconnection Networks" (Yeh and Parhami, ICPP 1999).
//
// The library lives under internal/: the IP graph model itself in
// internal/core, the paper's super-IP families in internal/superip, the
// comparison networks in internal/networks and internal/hier, measurement
// machinery in internal/graph and internal/metrics, routing in
// internal/route, embeddings in internal/embed, a packet-switched simulator
// in internal/netsim, and the figure regeneration engine in
// internal/figures. See README.md for a tour and DESIGN.md for the
// paper-to-module map.
//
// The benchmarks in bench_test.go regenerate every table and figure of the
// paper's evaluation section; run them with
//
//	go test -bench=. -benchmem
package repro
