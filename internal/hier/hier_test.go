package hier

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/superip"
)

func TestHCNStats(t *testing.T) {
	for n := 1; n <= 5; n++ {
		for _, dl := range []bool{true, false} {
			h := HCN{Dim: n, DiameterLinks: dl}
			g, err := h.Build()
			if err != nil {
				t.Fatal(err)
			}
			if g.N() != h.N() {
				t.Fatalf("%s: %d nodes, want %d", h.Name(), g.N(), h.N())
			}
			st := g.AllPairs()
			if !st.Connected {
				t.Fatalf("%s disconnected", h.Name())
			}
			if int(st.Diameter) != h.Diameter() {
				t.Fatalf("%s: diameter %d, analytic %d", h.Name(), st.Diameter, h.Diameter())
			}
			if dl {
				if !g.IsRegular() || g.MaxDegree() != h.Degree() {
					t.Fatalf("%s: degrees %v, want %d-regular", h.Name(), g.DegreeHistogram(), h.Degree())
				}
			} else if g.MaxDegree() != h.Degree() {
				t.Fatalf("%s: max degree %d, want %d", h.Name(), g.MaxDegree(), h.Degree())
			}
		}
	}
}

// TestHCNEqualsHSN2Qn verifies the paper's Section 2 claim: HCN(n,n)
// without diameter links is the super-IP graph HSN(2;Q_n), via the explicit
// bijection label [A|B] -> (I = bits(B), J = bits(A)).
func TestHCNEqualsHSN2Qn(t *testing.T) {
	for n := 1; n <= 4; n++ {
		hcn := HCN{Dim: n, DiameterLinks: false}
		direct, err := hcn.Build()
		if err != nil {
			t.Fatal(err)
		}
		net := superip.HSN(2, superip.NucleusHypercube(n))
		ipg, ix, err := net.BuildWithIndex()
		if err != nil {
			t.Fatal(err)
		}
		// Decode a block of the pair-encoded label into cube coordinates:
		// pair j in seed order = bit 0, swapped = bit 1.
		bits := func(label []byte, block int) int {
			v := 0
			for j := 0; j < n; j++ {
				if label[block*2*n+2*j] > label[block*2*n+2*j+1] {
					v |= 1 << j
				}
			}
			return v
		}
		mapping := make([]int32, ipg.N())
		for u := 0; u < ipg.N(); u++ {
			label := ix.Label(int32(u))
			j := bits(label, 0) // leftmost block: node-within-cluster
			i := bits(label, 1) // second block: cluster id
			mapping[u] = hcn.ID(i, j)
		}
		if err := graph.VerifyIsomorphism(ipg, direct, mapping); err != nil {
			t.Fatalf("n=%d: HSN(2;Q%d) is not HCN(%d,%d)-nd: %v", n, n, n, n, err)
		}
	}
}

func TestHCNDiameterLinkValue(t *testing.T) {
	// Diameter links shorten the diameter from 2n+1 to n + (n+1)/3 + 1.
	for n := 2; n <= 5; n++ {
		with := HCN{Dim: n, DiameterLinks: true}
		without := HCN{Dim: n, DiameterLinks: false}
		if with.Diameter() >= without.Diameter() {
			t.Fatalf("n=%d: diameter links do not help", n)
		}
	}
}

func TestHFN(t *testing.T) {
	for n := 2; n <= 5; n++ {
		h := HFN{Dim: n}
		g, err := h.Build()
		if err != nil {
			t.Fatal(err)
		}
		if g.N() != h.N() {
			t.Fatalf("%s: %d nodes", h.Name(), g.N())
		}
		if g.MaxDegree() != h.Degree() {
			t.Fatalf("%s: degree %d, want %d", h.Name(), g.MaxDegree(), h.Degree())
		}
		st := g.AllPairs()
		if !st.Connected {
			t.Fatalf("%s disconnected", h.Name())
		}
		if int(st.Diameter) != h.Diameter() {
			t.Fatalf("%s: diameter %d, analytic %d", h.Name(), st.Diameter, h.Diameter())
		}
	}
}

// TestHFNEqualsHSN2FQn verifies that the swap-only HFN is HSN(2;FQ_n).
func TestHFNEqualsHSN2FQn(t *testing.T) {
	for n := 2; n <= 4; n++ {
		hfn := HFN{Dim: n}
		direct, err := hfn.Build()
		if err != nil {
			t.Fatal(err)
		}
		net := superip.HSN(2, superip.NucleusFoldedHypercube(n))
		ipg, ix, err := net.BuildWithIndex()
		if err != nil {
			t.Fatal(err)
		}
		bits := func(label []byte, block int) int {
			v := 0
			for j := 0; j < n; j++ {
				if label[block*2*n+2*j] > label[block*2*n+2*j+1] {
					v |= 1 << j
				}
			}
			return v
		}
		mapping := make([]int32, ipg.N())
		for u := 0; u < ipg.N(); u++ {
			label := ix.Label(int32(u))
			mapping[u] = hfn.ID(bits(label, 1), bits(label, 0))
		}
		if err := graph.VerifyIsomorphism(ipg, direct, mapping); err != nil {
			t.Fatalf("n=%d: HSN(2;FQ%d) is not swap-only HFN: %v", n, n, err)
		}
	}
}

func TestHHN(t *testing.T) {
	for m := 1; m <= 3; m++ {
		h := HHN{M: m}
		g, err := h.Build()
		if err != nil {
			t.Fatal(err)
		}
		if g.N() != h.N() {
			t.Fatalf("%s: %d nodes, want %d", h.Name(), g.N(), h.N())
		}
		if g.MaxDegree() != h.Degree() {
			t.Fatalf("%s: degree %d, want %d", h.Name(), g.MaxDegree(), h.Degree())
		}
		if !g.AllPairs().Connected {
			t.Fatalf("%s disconnected", h.Name())
		}
	}
	// HHN(3) is 2048 nodes of degree 4.
	if (HHN{M: 3}).N() != 2048 {
		t.Fatal("HHN(3) size")
	}
}

func TestBuildRangeErrors(t *testing.T) {
	if _, err := (HCN{Dim: 11}).Build(); err == nil {
		t.Fatal("oversized HCN must fail")
	}
	if _, err := (HFN{Dim: 0}).Build(); err == nil {
		t.Fatal("undersized HFN must fail")
	}
	if _, err := (HHN{M: 5}).Build(); err == nil {
		t.Fatal("oversized HHN must fail")
	}
}
