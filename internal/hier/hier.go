// Package hier provides direct constructions of the previously proposed
// hierarchical interconnection networks that the paper unifies under the
// super-IP graph model: hierarchical cubic networks (HCN) of Ghose and
// Desai, hierarchical folded-hypercube networks (HFN) of Duh, Chen and Fang,
// and hierarchical hypercube networks (HHN) of Yun and Park. Tests verify
// the paper's equivalence claims, e.g. that HCN(n,n) without its diameter
// links is exactly HSN(2;Q_n).
package hier

import (
	"fmt"

	"repro/internal/graph"
)

// HCN is the hierarchical cubic network HCN(n,n): 2^n clusters of 2^n nodes.
// Node (I,J) has n local hypercube links within its cluster I, and one
// external link: the swap link (I,J)-(J,I) when I != J, or the diameter link
// (I,I)-(~I,~I) when I == J. With DiameterLinks false the diameter links are
// omitted, which per Section 2 of the paper yields exactly HSN(2;Q_n).
type HCN struct {
	Dim           int
	DiameterLinks bool
}

// Name returns e.g. "HCN(4,4)".
func (h HCN) Name() string {
	suffix := ""
	if !h.DiameterLinks {
		suffix = "-nd"
	}
	return fmt.Sprintf("HCN(%d,%d)%s", h.Dim, h.Dim, suffix)
}

// N returns 2^(2n).
func (h HCN) N() int { return 1 << (2 * h.Dim) }

// Degree returns n+1 (n with degree-2 outliers when diameter links are
// omitted — see the tests).
func (h HCN) Degree() int { return h.Dim + 1 }

// Diameter returns the exact diameter: n + floor((n+1)/3) + 1 with diameter
// links (Ghose and Desai), and 2n + 1 without (Theorem 4.1 with l = 2,
// D_G = n, t = 1). Both are validated by BFS in the tests.
func (h HCN) Diameter() int {
	if h.DiameterLinks {
		return h.Dim + (h.Dim+1)/3 + 1
	}
	return 2*h.Dim + 1
}

// ID returns the node id of (I,J).
func (h HCN) ID(i, j int) int32 { return int32(i<<h.Dim + j) }

// Build realizes the HCN.
func (h HCN) Build() (*graph.Graph, error) {
	if h.Dim < 1 || h.Dim > 10 {
		return nil, fmt.Errorf("hier: HCN dimension %d out of buildable range", h.Dim)
	}
	size := 1 << h.Dim
	mask := size - 1
	b := graph.NewBuilder(size*size, false)
	for i := 0; i < size; i++ {
		for j := 0; j < size; j++ {
			for bit := 0; bit < h.Dim; bit++ {
				b.AddEdge(h.ID(i, j), h.ID(i, j^(1<<bit)))
			}
			if i != j {
				b.AddEdge(h.ID(i, j), h.ID(j, i))
			} else if h.DiameterLinks {
				b.AddEdge(h.ID(i, i), h.ID(i^mask, i^mask))
			}
		}
	}
	return b.Build(), nil
}

// HFN is the hierarchical folded-hypercube network: the two-level structure
// of Duh, Chen and Fang with folded hypercubes FQ_n as basic modules. Node
// (I,J) has the FQ_n links within cluster I plus the swap link (I,J)-(J,I)
// (and, mirroring the HCN, a complement link on the I == J nodes when
// DiameterLinks is set).
type HFN struct {
	Dim           int
	DiameterLinks bool
}

// Name returns e.g. "HFN(4)".
func (h HFN) Name() string { return fmt.Sprintf("HFN(%d)", h.Dim) }

// N returns 2^(2n).
func (h HFN) N() int { return 1 << (2 * h.Dim) }

// Degree returns n+2: the FQ_n degree n+1 plus one external link.
func (h HFN) Degree() int { return h.Dim + 2 }

// Diameter returns the diameter of the swap-link-only variant per Theorem
// 4.1: l*D_G + t = 2*ceil(n/2) + 1. (The diameter-link variant is measured,
// not closed-form, in this package.)
func (h HFN) Diameter() int {
	if h.DiameterLinks {
		return -1 // no closed form implemented; measure via BFS
	}
	return 2*((h.Dim+1)/2) + 1
}

// ID returns the node id of (I,J).
func (h HFN) ID(i, j int) int32 { return int32(i<<h.Dim + j) }

// Build realizes the HFN.
func (h HFN) Build() (*graph.Graph, error) {
	if h.Dim < 1 || h.Dim > 10 {
		return nil, fmt.Errorf("hier: HFN dimension %d out of buildable range", h.Dim)
	}
	size := 1 << h.Dim
	mask := size - 1
	b := graph.NewBuilder(size*size, false)
	for i := 0; i < size; i++ {
		for j := 0; j < size; j++ {
			for bit := 0; bit < h.Dim; bit++ {
				b.AddEdge(h.ID(i, j), h.ID(i, j^(1<<bit)))
			}
			b.AddEdge(h.ID(i, j), h.ID(i, j^mask)) // folded complement link
			if i != j {
				b.AddEdge(h.ID(i, j), h.ID(j, i))
			} else if h.DiameterLinks {
				b.AddEdge(h.ID(i, i), h.ID(i^mask, i^mask))
			}
		}
	}
	return b.Build(), nil
}

// HHN is the hierarchical hypercube network HHN(m) of Yun and Park: son
// m-cubes of 2^m nodes each, one per father-hypercube vertex. Node (F,S)
// with F an (2^m)-bit string and S an m-bit string has the m local son-cube
// links on S plus one external link flipping bit value(S) of F.
// N = 2^(2^m + m); degree m+1.
type HHN struct{ M int }

// Name returns e.g. "HHN(3)".
func (h HHN) Name() string { return fmt.Sprintf("HHN(%d)", h.M) }

// N returns 2^(2^m + m).
func (h HHN) N() int { return 1 << uint((1<<h.M)+h.M) }

// Degree returns m+1.
func (h HHN) Degree() int { return h.M + 1 }

// Diameter has no closed form implemented here; it is measured via BFS in
// the tests (the network is CCC-like: external links are only usable at
// matching son positions).
func (h HHN) Diameter() int { return -1 }

// ID returns the node id of (F,S).
func (h HHN) ID(f, s int) int32 { return int32(f<<h.M + s) }

// Build realizes the HHN.
func (h HHN) Build() (*graph.Graph, error) {
	if h.M < 1 || h.M > 4 {
		return nil, fmt.Errorf("hier: HHN parameter %d out of buildable range", h.M)
	}
	fathers := 1 << (1 << h.M)
	sons := 1 << h.M
	b := graph.NewBuilder(fathers*sons, false)
	for f := 0; f < fathers; f++ {
		for s := 0; s < sons; s++ {
			for bit := 0; bit < h.M; bit++ {
				b.AddEdge(h.ID(f, s), h.ID(f, s^(1<<bit)))
			}
			b.AddEdge(h.ID(f, s), h.ID(f^(1<<s), s))
		}
	}
	return b.Build(), nil
}
