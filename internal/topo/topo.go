// Package topo abstracts network topologies behind an algebraic interface so
// routing and simulation no longer require a materialized graph.
//
// The paper's central claim (Sections 4-5) is that super-IP networks admit
// constructive routing: a node's neighbors and the next hop toward any
// destination are computable directly from its label — the seed multiset
// plus the generator algebra — with no global state. A Topology exposes
// exactly that contract: node count, neighbor enumeration, and (through the
// optional Labeled/Modular interfaces) the id<->label bijection and the
// nucleus-per-module packing, all per-node O(1) in memory.
//
// Two families of implementations are provided: Materialized wraps the
// existing adjacency-list graph.Graph (every algorithm that works on a
// Topology keeps working on explicitly built graphs), while Implicit
// evaluates a super-IP graph's generator algebra on the fly and scales to
// instances no adjacency list can hold. Routers pair with topologies the
// same way: Table is the BFS next-hop oracle over a materialized graph, and
// Algebraic, Hypercube, and Star compute next hops arithmetically from
// labels alone.
package topo

import "repro/internal/symbols"

// Topology is a network whose structure is queryable per node. Node ids are
// dense in [0, N()). Implementations may keep internal scratch buffers, so a
// Topology is not safe for concurrent use unless documented otherwise.
type Topology interface {
	// N returns the number of nodes.
	N() int64
	// MaxDegree bounds the number of neighbors of any node (used to size
	// buffers; individual nodes may have fewer neighbors).
	MaxDegree() int
	// Directed reports whether arcs are one-way.
	Directed() bool
	// Neighbors appends the out-neighbors of u to buf[:0] and returns the
	// slice, sorted ascending with duplicates and self-loops removed — the
	// same adjacency contract as graph.Graph.Neighbors.
	Neighbors(u int64, buf []int64) []int64
}

// Labeled is implemented by topologies that expose the id <-> label
// bijection of the IP-graph model.
type Labeled interface {
	// Label returns the label of node u. The returned slice may alias
	// internal scratch; clone it to retain it across calls.
	Label(u int64) symbols.Label
	// ID returns the node id of a label, or -1 if the label is not a
	// vertex.
	ID(x symbols.Label) int64
}

// Modular is implemented by topologies with a nucleus-per-module packing
// (Section 5.3). Module ids are dense in [0, Modules()).
type Modular interface {
	Modules() int64
	Module(u int64) int64
}

// Router decides, per hop, where a packet at cur should go next on its way
// to dst. Implementations derive the decision either from O(1) per-node
// label arithmetic (Algebraic, Hypercube, Star) or from materialized BFS
// tables (Table). A Router is not safe for concurrent use unless documented
// otherwise.
type Router interface {
	// NextHop returns the next node on a route from cur toward dst.
	// cur == dst is an error: the packet has already arrived.
	NextHop(cur, dst int64) (int64, error)
}

// PathRouter is a Router that can produce whole routes. Paths include both
// endpoints, so hop count is len(path)-1.
type PathRouter interface {
	Router
	Path(src, dst int64) ([]int64, error)
}
