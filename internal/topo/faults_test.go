package topo

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/superip"
)

// TestFaultSetBasics pins the reference-counting and epoch semantics the
// router's cache invalidation depends on.
func TestFaultSetBasics(t *testing.T) {
	fs := NewFaultSet()
	if e := fs.Epoch(); e != 0 {
		t.Fatalf("fresh epoch = %d", e)
	}
	fs.FailLink(1, 2)
	if !fs.LinkDown(1, 2) || fs.LinkDown(2, 1) {
		t.Fatal("FailLink is directed")
	}
	fs.FailLink(1, 2) // second overlapping fault
	fs.RepairLink(1, 2)
	if !fs.LinkDown(1, 2) {
		t.Fatal("link repaired while a second fault still holds it down")
	}
	fs.RepairLink(1, 2)
	if fs.LinkDown(1, 2) {
		t.Fatal("link still down after both faults repaired")
	}
	fs.RepairLink(1, 2) // repairing a live link is a no-op
	if fs.LinkDown(1, 2) {
		t.Fatal("no-op repair changed state")
	}

	fs.FailLinkBoth(3, 4)
	if !fs.LinkDown(3, 4) || !fs.LinkDown(4, 3) {
		t.Fatal("FailLinkBoth must fail both directions")
	}
	fs.RepairLinkBoth(3, 4)
	if fs.LinkDown(3, 4) || fs.LinkDown(4, 3) {
		t.Fatal("RepairLinkBoth must repair both directions")
	}

	fs.FailNode(7)
	if !fs.NodeDown(7) {
		t.Fatal("node not down")
	}
	if !fs.Blocked(6, 7) {
		t.Fatal("hop into a dead node must be blocked")
	}
	if fs.Blocked(7, 6) {
		t.Fatal("the sender's own liveness is not Blocked's concern")
	}
	fs.RepairNode(7)
	if fs.NodeDown(7) {
		t.Fatal("node still down after repair")
	}

	before := fs.Epoch()
	fs.FailLink(9, 10)
	if fs.Epoch() != before+1 {
		t.Fatalf("epoch %d -> %d on mutation, want +1", before, fs.Epoch())
	}
	fs.Reset()
	links, nodes := fs.Len()
	if links != 0 || nodes != 0 {
		t.Fatalf("Reset left %d links, %d nodes", links, nodes)
	}
}

// TestFaultSetConcurrent exercises concurrent mutation and querying under
// the race detector: a simulator goroutine applying scheduled faults must be
// able to share the set with router goroutines.
func TestFaultSetConcurrent(t *testing.T) {
	fs := NewFaultSet()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(2)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				u, v := int64(w*1000+i), int64(w*1000+i+1)
				fs.FailLinkBoth(u, v)
				fs.FailNode(u)
				fs.RepairNode(u)
				fs.RepairLinkBoth(u, v)
			}
		}(w)
		go func(w int) {
			defer wg.Done()
			e := fs.Epoch()
			for i := 0; i < 1000; i++ {
				fs.Blocked(int64(w*1000+i), int64(w*1000+i+1))
				fs.NodeDown(int64(i))
				if ne := fs.Epoch(); ne < e {
					t.Error("epoch went backwards")
					return
				} else {
					e = ne
				}
			}
		}(w)
	}
	wg.Wait()
	links, nodes := fs.Len()
	if links != 0 || nodes != 0 {
		t.Fatalf("after balanced fail/repair: %d links, %d nodes still down", links, nodes)
	}
}

// disjointPairs is the per-family pair count for the disjoint-route property
// tests (each pair runs a full flow construction, so this is smaller than
// pairsPerFamily).
const disjointPairs = 60

// TestDisjointRoutesProperties property-tests the κ-route construction
// across the 9-family grid: every returned route is a valid node-simple walk
// from src to dst on the materialized graph, the routes are pairwise
// edge-disjoint, the count equals κ = degree on the symmetric families
// (vertex-transitive Cayley graphs have edge connectivity equal to their
// degree), and every detour is at most 2·diameter + 8 hops longer than the
// primary route.
func TestDisjointRoutesProperties(t *testing.T) {
	for _, net := range propertyGrid() {
		g, ix, err := net.BuildWithIndex()
		if err != nil {
			t.Fatalf("%s: build: %v", net.Name(), err)
		}
		imp, err := NewImplicit(net.Super())
		if err != nil {
			t.Fatalf("%s: implicit: %v", net.Name(), err)
		}
		r, err := NewAlgebraic(net.Super())
		if err != nil {
			t.Fatalf("%s: router: %v", net.Name(), err)
		}
		matID := func(u int64) int32 { return ix.ID(imp.Label(u)) }
		directed := imp.Directed()
		rng := rand.New(rand.NewSource(11))
		n := imp.N()
		extraBound := 2*net.Diameter() + 8
		for trial := 0; trial < disjointPairs; trial++ {
			src := rng.Int63n(n)
			dst := rng.Int63n(n - 1)
			if dst >= src {
				dst++
			}
			routes, err := DisjointRoutes(imp, r, src, dst)
			if err != nil {
				t.Fatalf("%s: DisjointRoutes(%d, %d): %v", net.Name(), src, dst, err)
			}
			if len(routes) == 0 {
				t.Fatalf("%s: no routes for (%d, %d)", net.Name(), src, dst)
			}
			if net.Super().Symmetric && len(routes) != net.Degree() {
				t.Fatalf("%s: %d disjoint routes for (%d, %d), want κ = degree = %d",
					net.Name(), len(routes), src, dst, net.Degree())
			}
			primary, err := r.Path(src, dst)
			if err != nil {
				t.Fatal(err)
			}
			used := map[[2]int64]bool{}
			for _, rt := range routes {
				if rt[0] != src || rt[len(rt)-1] != dst {
					t.Fatalf("%s: route endpoints %d..%d, want %d..%d", net.Name(), rt[0], rt[len(rt)-1], src, dst)
				}
				if len(rt)-1 > len(primary)-1+extraBound {
					t.Fatalf("%s: detour for (%d, %d) takes %d hops, primary %d + bound %d",
						net.Name(), src, dst, len(rt)-1, len(primary)-1, extraBound)
				}
				nodeSeen := map[int64]bool{}
				for i, u := range rt {
					if nodeSeen[u] {
						t.Fatalf("%s: route for (%d, %d) revisits node %d", net.Name(), src, dst, u)
					}
					nodeSeen[u] = true
					if i+1 == len(rt) {
						break
					}
					v := rt[i+1]
					if !g.HasEdge(matID(u), matID(v)) {
						t.Fatalf("%s: route step %d -> %d is not an edge", net.Name(), u, v)
					}
					k := [2]int64{u, v}
					if !directed && u > v {
						k = [2]int64{v, u}
					}
					if used[k] {
						t.Fatalf("%s: routes for (%d, %d) share edge %v", net.Name(), src, dst, k)
					}
					used[k] = true
				}
			}
		}
	}
}

// TestFaultAwareFaultFreeIdentical pins the acceptance criterion that a
// fault-free FaultAware run is indistinguishable from the plain Algebraic
// router: identical Path results and identical NextHop traces.
func TestFaultAwareFaultFreeIdentical(t *testing.T) {
	for _, net := range propertyGrid() {
		imp, err := NewImplicit(net.Super())
		if err != nil {
			t.Fatal(err)
		}
		plain, err := NewAlgebraic(net.Super())
		if err != nil {
			t.Fatal(err)
		}
		inner, err := NewAlgebraic(net.Super())
		if err != nil {
			t.Fatal(err)
		}
		fa := NewFaultAware(imp, inner, NewFaultSet())
		rng := rand.New(rand.NewSource(17))
		n := imp.N()
		for trial := 0; trial < 200; trial++ {
			src := rng.Int63n(n)
			dst := rng.Int63n(n - 1)
			if dst >= src {
				dst++
			}
			want, err := plain.Path(src, dst)
			if err != nil {
				t.Fatal(err)
			}
			got, err := fa.Path(src, dst)
			if err != nil {
				t.Fatalf("%s: fault-free FaultAware.Path(%d, %d): %v", net.Name(), src, dst, err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s: fault-free route length %d != plain %d", net.Name(), len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s: fault-free route diverges at hop %d", net.Name(), i)
				}
			}
			// NextHop trace must follow the same route, and never report a
			// detour.
			cur := src
			for hop := 0; cur != dst; hop++ {
				nxt, detoured, err := fa.NextHopFlagged(cur, dst)
				if err != nil {
					t.Fatal(err)
				}
				if detoured {
					t.Fatalf("%s: fault-free NextHop reported a detour", net.Name())
				}
				if nxt != want[hop+1] {
					t.Fatalf("%s: fault-free NextHop diverges at hop %d", net.Name(), hop)
				}
				cur = nxt
			}
		}
		if re, dh := fa.RerouteCounts(); re != 0 || dh != 0 {
			t.Fatalf("%s: fault-free run counted %d reroutes, %d detour hops", net.Name(), re, dh)
		}
	}
}

// TestFaultAwareEpochInvalidation is the cache-safety test: a packet whose
// source route is already cached must not cross a link that dies after the
// route was derived — the epoch bump has to purge the cached suffix.
func TestFaultAwareEpochInvalidation(t *testing.T) {
	net := superip.HSN(3, superip.NucleusHypercube(2)).SymmetricVariant()
	imp, err := NewImplicit(net.Super())
	if err != nil {
		t.Fatal(err)
	}
	inner, err := NewAlgebraic(net.Super())
	if err != nil {
		t.Fatal(err)
	}
	fs := NewFaultSet()
	fa := NewFaultAware(imp, inner, fs)
	rng := rand.New(rand.NewSource(23))
	n := imp.N()
	for trial := 0; trial < 300; trial++ {
		src := rng.Int63n(n)
		dst := rng.Int63n(n - 1)
		if dst >= src {
			dst++
		}
		p, err := fa.Path(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		if len(p) < 3 {
			continue // need at least two hops so a suffix is cached
		}
		// Take the first hop (caching the rest), then kill the link the
		// cached suffix would cross next.
		nxt, _, err := fa.NextHopFlagged(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		fs.FailLinkBoth(p[1], p[2])
		cur := nxt
		maxHops := net.Diameter() + fa.MaxDetourTTL + 2*net.Diameter() + 8
		for hop := 0; cur != dst; hop++ {
			if hop > maxHops {
				t.Fatalf("no delivery within %d hops for (%d, %d)", maxHops, src, dst)
			}
			step, _, err := fa.NextHopFlagged(cur, dst)
			if err != nil {
				t.Fatalf("NextHop(%d, %d) after fault: %v", cur, dst, err)
			}
			if fs.Blocked(cur, step) {
				t.Fatalf("packet for (%d, %d) crossed failed link %d -> %d from a stale cache",
					src, dst, cur, step)
			}
			cur = step
		}
		fs.RepairLinkBoth(p[1], p[2])
	}
}

// TestFaultAwareKMinusOneFaults pins the headline guarantee on every
// symmetric grid family: fail one link on each of κ−1 of the κ edge-disjoint
// routes (including the primary) and the fault-aware router must still
// deliver, because one algebraic alternative survives by construction.
func TestFaultAwareKMinusOneFaults(t *testing.T) {
	for _, net := range propertyGrid() {
		if !net.Super().Symmetric {
			continue
		}
		imp, err := NewImplicit(net.Super())
		if err != nil {
			t.Fatal(err)
		}
		router, err := NewAlgebraic(net.Super())
		if err != nil {
			t.Fatal(err)
		}
		inner, err := NewAlgebraic(net.Super())
		if err != nil {
			t.Fatal(err)
		}
		fs := NewFaultSet()
		fa := NewFaultAware(imp, inner, fs)
		rng := rand.New(rand.NewSource(29))
		n := imp.N()
		for trial := 0; trial < 40; trial++ {
			src := rng.Int63n(n)
			dst := rng.Int63n(n - 1)
			if dst >= src {
				dst++
			}
			routes, err := DisjointRoutes(imp, router, src, dst)
			if err != nil {
				t.Fatal(err)
			}
			if len(routes) != net.Degree() {
				t.Fatalf("%s: %d routes, want %d", net.Name(), len(routes), net.Degree())
			}
			// Adversarial: cut a mid-route link on every route but the last.
			fs.Reset()
			for _, rt := range routes[:len(routes)-1] {
				k := (len(rt) - 1) / 2
				fs.FailLinkBoth(rt[k], rt[k+1])
			}
			p, err := fa.Path(src, dst)
			if err != nil {
				t.Fatalf("%s: κ−1 faults disconnected (%d, %d): %v", net.Name(), src, dst, err)
			}
			if p[0] != src || p[len(p)-1] != dst {
				t.Fatalf("%s: endpoints %d..%d", net.Name(), p[0], p[len(p)-1])
			}
			for i := 0; i+1 < len(p); i++ {
				if fs.Blocked(p[i], p[i+1]) {
					t.Fatalf("%s: route crosses failed link %d -> %d", net.Name(), p[i], p[i+1])
				}
			}
			// NextHop delivery under the same faults.
			cur := src
			maxHops := net.Diameter() + fa.MaxDetourTTL + 2*net.Diameter() + 8
			for hop := 0; cur != dst; hop++ {
				if hop > maxHops {
					t.Fatalf("%s: no delivery within %d hops", net.Name(), maxHops)
				}
				nxt, err := fa.NextHop(cur, dst)
				if err != nil {
					t.Fatal(err)
				}
				if fs.Blocked(cur, nxt) {
					t.Fatalf("%s: NextHop crossed failed link", net.Name())
				}
				cur = nxt
			}
		}
	}
}

// TestFaultAwareOverMaterialized checks the wrapper is router-agnostic: a
// Table (BFS oracle) router over a materialized Petersen-free graph — here a
// built super-IP graph — detours correctly too.
func TestFaultAwareOverMaterialized(t *testing.T) {
	net := superip.RingCN(3, superip.NucleusHypercube(2)).SymmetricVariant()
	g, ix, err := net.BuildWithIndex()
	if err != nil {
		t.Fatal(err)
	}
	mat := NewMaterialized(g, ix)
	fs := NewFaultSet()
	fa := NewFaultAware(mat, NewTable(g), fs)
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 100; trial++ {
		src := int64(rng.Intn(g.N()))
		dst := int64(rng.Intn(g.N() - 1))
		if dst >= src {
			dst++
		}
		p, err := fa.Path(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		if len(p) < 2 {
			continue
		}
		fs.FailLinkBoth(p[0], p[1])
		q, err := fa.Path(src, dst)
		if err != nil {
			t.Fatalf("Path(%d, %d) with first link down: %v", src, dst, err)
		}
		for i := 0; i+1 < len(q); i++ {
			if fs.Blocked(q[i], q[i+1]) {
				t.Fatalf("detour crosses failed link %d -> %d", q[i], q[i+1])
			}
			if !g.HasEdge(int32(q[i]), int32(q[i+1])) {
				t.Fatalf("detour step %d -> %d is not an edge", q[i], q[i+1])
			}
		}
		fs.RepairLinkBoth(p[0], p[1])
	}
}
