package topo

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/route"
	"repro/internal/symbols"
)

// Table is the BFS next-hop oracle over a materialized graph: the fallback
// Router for arbitrary topologies. Per-destination tables are built lazily on
// first use and memoized, exactly like the simulator's historical routing
// path, so memory grows toward O(N^2) only for destinations actually routed
// to. Not safe for concurrent use.
type Table struct {
	G      *graph.Graph
	tables map[int32]route.NextHopTable
}

// NewTable wraps a built graph as a lazily materialized next-hop Router.
func NewTable(g *graph.Graph) *Table {
	return &Table{G: g, tables: map[int32]route.NextHopTable{}}
}

func (t *Table) table(dst int32) route.NextHopTable {
	tab, ok := t.tables[dst]
	if !ok {
		tab = route.BFSNextHops(t.G, dst)
		t.tables[dst] = tab
	}
	return tab
}

// NextHop returns the BFS next hop from cur toward dst.
func (t *Table) NextHop(cur, dst int64) (int64, error) {
	if cur == dst {
		return 0, fmt.Errorf("topo: NextHop(%d, %d): already at destination", cur, dst)
	}
	nxt := t.table(int32(dst))[cur]
	if nxt < 0 {
		return 0, fmt.Errorf("topo: no route from %d to %d", cur, dst)
	}
	return int64(nxt), nil
}

// Path returns a shortest path from src to dst.
func (t *Table) Path(src, dst int64) ([]int64, error) {
	p, err := t.table(int32(dst)).Follow(int32(src), int32(dst))
	if err != nil {
		return nil, err
	}
	out := make([]int64, len(p))
	for i, v := range p {
		out[i] = int64(v)
	}
	return out, nil
}

// Algebraic routes a super-IP graph with the constructive algorithm of
// Theorems 4.1/4.3 (core.Router), working purely on labels: the only state is
// the nucleus routing trees, so per-node memory is O(1) in N. Node ids are
// translated through a Labeled codec — the closed-form Ranker of an Implicit
// topology, or the Index of a Materialized one — so the same router serves
// both implementations. Not safe for concurrent use.
type Algebraic struct {
	r      *core.Router
	codec  Labeled
	srcBuf symbols.Label
	dstBuf symbols.Label

	// suffix carries in-flight source routes between NextHop calls, keyed by
	// (current node, destination): Theorem 4.1/4.3 routes are computed at
	// the source and are NOT memoryless — recomputing from an intermediate
	// node restarts the covering schedule and can oscillate — so, as in the
	// paper's model where the header carries the route, NextHop hands each
	// packet the next entry of the route its origin computed and re-sources
	// only on a cache miss. Entries are consumed as packets advance; the map
	// is bounded by the in-flight population and cleared entirely at
	// maxSuffixEntries as a safety valve (affected packets re-source from
	// their current position).
	suffix map[[2]int64][]int64

	// cache telemetry (see RouterStats)
	hits, misses, evicted, clears uint64
}

// maxSuffixEntries bounds the Algebraic source-route cache; beyond it the
// cache is dropped and in-flight packets re-source their routes.
const maxSuffixEntries = 1 << 20

// NewAlgebraic builds the paper's router over the implicit (closed-form)
// id <-> label bijection of s. No graph is materialized.
func NewAlgebraic(s *core.SuperIP) (*Algebraic, error) {
	imp, err := NewImplicit(s)
	if err != nil {
		return nil, err
	}
	return NewAlgebraicWith(s, imp)
}

// NewAlgebraicWith builds the paper's router over an explicit id <-> label
// codec — typically a Materialized topology carrying the core.Index of a
// built graph, so the router's paths are valid on that graph's ids.
func NewAlgebraicWith(s *core.SuperIP, codec Labeled) (*Algebraic, error) {
	r, err := core.NewRouter(s)
	if err != nil {
		return nil, err
	}
	m := s.Nucleus.M()
	return &Algebraic{
		r:      r,
		codec:  codec,
		srcBuf: make(symbols.Label, s.L*m),
		dstBuf: make(symbols.Label, s.L*m),
		suffix: map[[2]int64][]int64{},
	}, nil
}

// NextHop advances one hop along the source route toward dst: the remaining
// route carried from the previous hop when one is cached, or a freshly
// computed Theorem 4.1/4.3 route from cur otherwise. Either way the packet
// follows a complete algebraic route of at most l*D_G + t hops, re-sourced
// only on cache loss, so the iteration always terminates at dst.
func (a *Algebraic) NextHop(cur, dst int64) (int64, error) {
	if cur == dst {
		return 0, fmt.Errorf("topo: NextHop(%d, %d): already at destination", cur, dst)
	}
	key := [2]int64{cur, dst}
	if suf, ok := a.suffix[key]; ok {
		a.hits++
		delete(a.suffix, key)
		nxt := suf[0]
		if len(suf) > 1 {
			a.suffix[[2]int64{nxt, dst}] = suf[1:]
		}
		return nxt, nil
	}
	a.misses++
	p, err := a.Path(cur, dst)
	if err != nil {
		return 0, err
	}
	if len(p) < 2 {
		return 0, fmt.Errorf("topo: route from %d to %d is empty", cur, dst)
	}
	if len(a.suffix) >= maxSuffixEntries {
		a.evicted += uint64(len(a.suffix))
		a.clears++
		a.suffix = map[[2]int64][]int64{} // drop orphans; packets re-source
	}
	nxt := p[1]
	if len(p) > 2 {
		a.suffix[[2]int64{nxt, dst}] = p[2:]
	}
	return nxt, nil
}

// RouterStats returns the cumulative suffix-cache telemetry of this router:
// hits/misses of the in-flight source-route cache, entries orphaned by
// safety-valve clears (each a forced mid-flight re-source), the clear count,
// and the current cache occupancy. Simulators snapshot it before and after a
// run and report the Delta.
func (a *Algebraic) RouterStats() RouterStats {
	return RouterStats{
		CacheHits:      a.hits,
		CacheMisses:    a.misses,
		CacheEvicted:   a.evicted,
		CacheClears:    a.clears,
		CacheOccupancy: len(a.suffix),
	}
}

// Path returns the full algebraic route as node ids.
func (a *Algebraic) Path(src, dst int64) ([]int64, error) {
	a.srcBuf = append(a.srcBuf[:0], a.codec.Label(src)...)
	a.dstBuf = append(a.dstBuf[:0], a.codec.Label(dst)...)
	p, err := a.r.Route(a.srcBuf, a.dstBuf)
	if err != nil {
		return nil, err
	}
	out := make([]int64, len(p.Labels))
	for i, lbl := range p.Labels {
		id := a.codec.ID(lbl)
		if id < 0 {
			return nil, fmt.Errorf("topo: route label %v is not a vertex", lbl)
		}
		out[i] = id
	}
	return out, nil
}

// HypercubeRouter is e-cube routing on HypercubeTopo ids: correct the lowest
// differing bit first. Paths are shortest (Hamming distance). Safe for
// concurrent use.
type HypercubeRouter struct{ Dim int }

// NextHop flips the lowest bit in which cur and dst differ.
func (r HypercubeRouter) NextHop(cur, dst int64) (int64, error) {
	diff := cur ^ dst
	if diff == 0 {
		return 0, fmt.Errorf("topo: NextHop(%d, %d): already at destination", cur, dst)
	}
	return cur ^ (diff & -diff), nil
}

// Path returns the e-cube route.
func (r HypercubeRouter) Path(src, dst int64) ([]int64, error) {
	p := route.Hypercube(r.Dim, int32(src), int32(dst))
	out := make([]int64, len(p))
	for i, v := range p {
		out[i] = int64(v)
	}
	return out, nil
}

// StarRouter is the optimal cycle-sorting router on the node ids of
// networks.Star (lexicographic permutation ranks). Paths are shortest
// (StarDistance). Safe for concurrent use.
type StarRouter struct{ Symbols int }

// NextHop takes the first edge of the optimal sorting route.
func (r StarRouter) NextHop(cur, dst int64) (int64, error) {
	if cur == dst {
		return 0, fmt.Errorf("topo: NextHop(%d, %d): already at destination", cur, dst)
	}
	p, err := route.StarIDPath(r.Symbols, int32(cur), int32(dst))
	if err != nil {
		return 0, err
	}
	return int64(p[1]), nil
}

// Path returns the optimal sorting route.
func (r StarRouter) Path(src, dst int64) ([]int64, error) {
	p, err := route.StarIDPath(r.Symbols, int32(src), int32(dst))
	if err != nil {
		return nil, err
	}
	out := make([]int64, len(p))
	for i, v := range p {
		out[i] = int64(v)
	}
	return out, nil
}
