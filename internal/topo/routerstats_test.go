package topo

// Tests for the router-observability surface: the suffix-cache and
// detour telemetry that Algebraic and FaultAware expose via RouterStats.
// The counters must agree exactly with the cache discipline (one miss per
// re-source, one hit per carried hop), epoch purges must be visible as
// evictions, and the conjugate/local-detour split must partition the
// reroute count with a consistent depth histogram.

import (
	"testing"

	"repro/internal/superip"
)

// walkNextHop drives a single packet from src to dst through NextHop,
// returning the hop count.
func walkNextHop(t *testing.T, r interface {
	NextHop(cur, dst int64) (int64, error)
}, src, dst int64, bound int) int {
	t.Helper()
	hops := 0
	for cur := src; cur != dst; hops++ {
		if hops > bound {
			t.Fatalf("walk from %d to %d exceeded %d hops", src, dst, bound)
		}
		nxt, err := r.NextHop(cur, dst)
		if err != nil {
			t.Fatalf("NextHop(%d, %d): %v", cur, dst, err)
		}
		cur = nxt
	}
	return hops
}

// TestAlgebraicRouterStats pins the cache telemetry to the source-route
// discipline: walking one packet end to end costs exactly one miss (the
// source derivation) and one hit per carried hop, and consumes its cache
// entries completely.
func TestAlgebraicRouterStats(t *testing.T) {
	net := superip.HSN(3, superip.NucleusHypercube(2)).SymmetricVariant()
	r, err := NewAlgebraic(net.Super())
	if err != nil {
		t.Fatal(err)
	}
	imp, err := NewImplicit(net.Super())
	if err != nil {
		t.Fatal(err)
	}
	if rs := r.RouterStats(); rs != (RouterStats{}) {
		t.Fatalf("fresh router has nonzero stats: %+v", rs)
	}

	// Pick a distant pair so the route carries a real suffix.
	src, dst := int64(0), imp.N()-1
	p, err := r.Path(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) < 4 {
		t.Fatalf("pair too close (%d hops) to exercise the cache", len(p)-1)
	}
	hops := walkNextHop(t, r, src, dst, 4*len(p))
	rs := r.RouterStats()
	if rs.CacheMisses != 1 {
		t.Fatalf("one packet re-sourced %d times, want 1: %+v", rs.CacheMisses, rs)
	}
	if rs.CacheHits != uint64(hops-1) {
		t.Fatalf("%d hops should score %d cache hits, got %+v", hops, hops-1, rs)
	}
	if rs.CacheOccupancy != 0 {
		t.Fatalf("delivered packet left %d suffixes resident: %+v", rs.CacheOccupancy, rs)
	}
	if rs.CacheEvicted != 0 || rs.CacheClears != 0 {
		t.Fatalf("no safety valve should have tripped: %+v", rs)
	}
	if got := rs.CacheHitRate(); got <= 0 || got >= 1 {
		t.Fatalf("hit rate %v out of (0,1)", got)
	}

	// Delta isolates a second walk exactly.
	base := r.RouterStats()
	hops2 := walkNextHop(t, r, dst, src, 4*len(p))
	d := r.RouterStats().Delta(base)
	if d.CacheMisses != 1 || d.CacheHits != uint64(hops2-1) {
		t.Fatalf("Delta of second walk = %+v, want 1 miss / %d hits", d, hops2-1)
	}
}

// TestFaultAwareRouterStats checks the fault-repair telemetry: cutting the
// primary route forces reroutes whose conjugate/local-detour split
// partitions the total, whose depth histogram accounts every repair, and
// whose epoch purge (from mutating the fault set) surfaces as evictions.
func TestFaultAwareRouterStats(t *testing.T) {
	net := superip.HSN(3, superip.NucleusHypercube(2)).SymmetricVariant()
	inner, err := NewAlgebraic(net.Super())
	if err != nil {
		t.Fatal(err)
	}
	imp, err := NewImplicit(net.Super())
	if err != nil {
		t.Fatal(err)
	}
	fs := NewFaultSet()
	fa := NewFaultAware(imp, inner, fs)

	src, dst := int64(0), imp.N()-1
	p, err := fa.Path(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	// Prime the cache with one clean walk, then cut the primary's first
	// link: the epoch change must purge whatever is resident.
	walkNextHop(t, fa, src, dst, 4*len(p))
	if _, err := fa.NextHop(src, dst); err != nil { // leave suffixes resident
		t.Fatal(err)
	}
	if rs := fa.RouterStats(); rs.CacheOccupancy == 0 {
		t.Fatalf("expected resident suffixes before the fault: %+v", rs)
	}
	resident := fa.RouterStats().CacheOccupancy
	fs.FailLinkBoth(p[0], p[1])
	if _, err := fa.NextHop(src, dst); err != nil {
		t.Fatalf("rerouting around one cut link failed: %v", err)
	}
	rs := fa.RouterStats()
	if rs.EpochPurges != 1 {
		t.Fatalf("one FaultSet mutation should purge once, got %+v", rs)
	}
	if rs.CacheEvicted < uint64(resident) {
		t.Fatalf("purge evicted %d entries, %d were resident: %+v", rs.CacheEvicted, resident, rs)
	}
	if rs.Reroutes == 0 {
		t.Fatalf("cut primary produced no reroutes: %+v", rs)
	}
	if rs.ConjugateReroutes+rs.LocalDetourReroutes != rs.Reroutes {
		t.Fatalf("repair split %d + %d does not partition %d reroutes: %+v",
			rs.ConjugateReroutes, rs.LocalDetourReroutes, rs.Reroutes, rs)
	}
	var depth uint64
	for _, c := range rs.DetourDepth {
		depth += c
	}
	if depth != rs.Reroutes {
		t.Fatalf("depth histogram accounts %d repairs, want %d: %+v", depth, rs.Reroutes, rs)
	}
	if rs.DetourDepth[0] != rs.ConjugateReroutes {
		t.Fatalf("bucket 0 is the conjugate (zero-hop) class: %+v", rs)
	}
	if rs.LocalDetourReroutes == 0 && rs.DetourHops != 0 {
		t.Fatalf("detour hops without local detours: %+v", rs)
	}
	reroutes, detourHops := fa.RerouteCounts()
	if reroutes != rs.Reroutes || detourHops != rs.DetourHops {
		t.Fatalf("RerouteCounts (%d, %d) disagrees with RouterStats %+v", reroutes, detourHops, rs)
	}
}
