package topo

import (
	"fmt"
	"math/bits"

	"repro/internal/obs"
)

// RouterStats is the router-observability snapshot exposed by Algebraic and
// FaultAware: suffix-cache hits/misses/evictions/occupancy, fault-epoch
// purges, the conjugate vs. TTL-local reroute split, and the detour-depth
// histogram. It is an alias of obs.RouterStats (defined in the
// dependency-free obs leaf so netsim and tooling can consume it without an
// import cycle).
type RouterStats = obs.RouterStats

// FaultAware wraps a PathRouter with algebraic fault tolerance: routes are
// derived exactly as before, but every route is verified against a FaultSet
// before a packet is committed to it, and a route that would cross a failed
// link or node is repaired by a generator-conjugate detour — leave the
// current node through a different generator, re-source the algebraic route
// from that neighbor (which re-runs the covering-schedule selection from the
// shifted state, i.e. permutes the order in which the remaining suffix is
// sorted), and, on undirected topologies, optionally arrive at the
// destination through a different final generator. The super-IP graphs are
// vertex-transitive Cayley graphs, so κ (= degree) edge-disjoint routes
// exist between every pair (see DisjointRoutes); as long as fewer than κ
// faults separate a pair, some conjugate detour survives and is found in
// O(route length) membership checks per candidate — no tables, no BFS, no
// materialization.
//
// Only when every algebraic candidate is blocked does the router fall back
// to a bounded local detour (the TTL discipline of the materialized
// RunFaulty): step to a live neighbor, spend one unit of TTL, and retry the
// algebraic candidates from there.
//
// Like Algebraic, a FaultAware router carries per-packet source routes
// between NextHop calls in a suffix cache keyed (current node, destination).
// The cache is tagged with the FaultSet epoch it was verified against and is
// purged in O(1) amortized time whenever the epoch changes, so no stale
// route ever crosses a link that died after the route was computed.
//
// Not safe for concurrent use (the inner router and the caches are
// single-threaded); the FaultSet itself may be mutated concurrently.
type FaultAware struct {
	inner PathRouter
	topo  Topology
	fs    *FaultSet

	// MaxDetourTTL bounds the local-detour fallback: how many non-algebraic
	// hops one route derivation may take around dead regions before giving
	// up. Defaults to 16 (the RunFaulty default).
	MaxDetourTTL int

	// maxDepth, when positive, additionally bounds the depth of the
	// local-detour DFS stack — used by DisjointRoutes' iterative deepening
	// to keep augmenting paths short. Zero means TTL-only. limited records
	// whether the last detourFrom search was truncated by maxDepth or TTL
	// (as opposed to genuinely exhausting the reachable residual graph).
	maxDepth int
	limited  bool

	suffix    map[[2]int64]suffixEntry
	seenEpoch uint64

	// counters (see RerouteCounts and RouterStats)
	reroutes   uint64
	detourHops uint64

	hits, misses, evicted, clears uint64
	epochPurges                   uint64
	conjugate, localDetour        uint64
	detourDepth                   [8]uint64

	nbrBuf  []int64 // neighbor scratch for candidate generation
	nbrBuf2 []int64 // second-level scratch (two-hop starts, arrive-via)
}

type suffixEntry struct {
	tail     []int64
	detoured bool
}

// maxFaultSuffixEntries bounds the fault-aware source-route cache, mirroring
// the Algebraic router's safety valve.
const maxFaultSuffixEntries = 1 << 20

// NewFaultAware wraps router r over topology t with fault set fs. The
// router and topology must share one id space (e.g. Algebraic + Implicit of
// the same super-IP graph, or HypercubeRouter + HypercubeTopo).
func NewFaultAware(t Topology, r PathRouter, fs *FaultSet) *FaultAware {
	return &FaultAware{
		inner:        r,
		topo:         t,
		fs:           fs,
		MaxDetourTTL: 16,
		suffix:       map[[2]int64]suffixEntry{},
		seenEpoch:    fs.Epoch(),
	}
}

// Faults returns the shared fault set.
func (r *FaultAware) Faults() *FaultSet { return r.fs }

// RerouteCounts returns the cumulative number of algebraic route
// re-derivations forced by faults and the number of local (TTL) detour hops
// taken when every algebraic candidate was blocked. Simulators snapshot and
// diff these around a run.
func (r *FaultAware) RerouteCounts() (reroutes, detourHops uint64) {
	return r.reroutes, r.detourHops
}

// RouterStats returns the cumulative routing telemetry of this router:
// suffix-cache behavior (hits, misses, evicted entries from safety-valve
// clears and fault-epoch purges — each evicted entry is a forced mid-flight
// re-source), how often the cache was invalidated by FaultSet changes
// (EpochPurges), and the fault-repair split — reroutes resolved purely by
// algebraic conjugate candidates vs. ones that needed the TTL-local detour
// walk, with the per-repair exploratory-hop histogram in DetourDepth.
func (r *FaultAware) RouterStats() RouterStats {
	return RouterStats{
		CacheHits:           r.hits,
		CacheMisses:         r.misses,
		CacheEvicted:        r.evicted,
		CacheClears:         r.clears,
		CacheOccupancy:      len(r.suffix),
		EpochPurges:         r.epochPurges,
		Reroutes:            r.reroutes,
		ConjugateReroutes:   r.conjugate,
		LocalDetourReroutes: r.localDetour,
		DetourHops:          r.detourHops,
		DetourDepth:         r.detourDepth,
	}
}

// checkEpoch purges the suffix cache when the fault set has changed since it
// was last verified.
func (r *FaultAware) checkEpoch() {
	if e := r.fs.Epoch(); e != r.seenEpoch {
		r.epochPurges++
		r.evicted += uint64(len(r.suffix))
		r.suffix = map[[2]int64]suffixEntry{}
		r.seenEpoch = e
	}
}

// NextHop advances one hop along a verified fault-free source route,
// re-deriving (and, if necessary, detouring) on cache miss or fault-epoch
// change.
func (r *FaultAware) NextHop(cur, dst int64) (int64, error) {
	nh, _, err := r.NextHopFlagged(cur, dst)
	return nh, err
}

// NextHopFlagged is NextHop plus a flag reporting whether the hop belongs to
// a route that deviated from the primary algebraic route because of faults —
// the "delivered degraded" signal consumed by the simulator.
func (r *FaultAware) NextHopFlagged(cur, dst int64) (int64, bool, error) {
	if cur == dst {
		return 0, false, fmt.Errorf("topo: NextHop(%d, %d): already at destination", cur, dst)
	}
	r.checkEpoch()
	key := [2]int64{cur, dst}
	if ent, ok := r.suffix[key]; ok {
		r.hits++
		delete(r.suffix, key)
		nxt := ent.tail[0]
		if len(ent.tail) > 1 {
			r.suffix[[2]int64{nxt, dst}] = suffixEntry{tail: ent.tail[1:], detoured: ent.detoured}
		}
		return nxt, ent.detoured, nil
	}
	r.misses++
	p, detoured, err := r.routeAvoiding(cur, dst)
	if err != nil {
		return 0, false, err
	}
	if len(p) < 2 {
		return 0, false, fmt.Errorf("topo: route from %d to %d is empty", cur, dst)
	}
	if len(r.suffix) >= maxFaultSuffixEntries {
		r.evicted += uint64(len(r.suffix))
		r.clears++
		r.suffix = map[[2]int64]suffixEntry{} // drop orphans; packets re-source
	}
	nxt := p[1]
	if len(p) > 2 {
		r.suffix[[2]int64{nxt, dst}] = suffixEntry{tail: p[2:], detoured: detoured}
	}
	return nxt, detoured, nil
}

// Path returns a verified fault-free route from src to dst, detouring around
// failed components as needed.
func (r *FaultAware) Path(src, dst int64) ([]int64, error) {
	r.checkEpoch()
	p, _, err := r.routeAvoiding(src, dst)
	return p, err
}

// firstBlocked returns the index of the first node in p whose outgoing hop
// is blocked (link down or next node down), or -1 if the whole route is
// live.
func (r *FaultAware) firstBlocked(p []int64) int {
	for i := 0; i+1 < len(p); i++ {
		if r.fs.Blocked(p[i], p[i+1]) {
			return i
		}
	}
	return -1
}

// routeAvoiding computes a route from cur to dst that crosses no failed
// link or node: the primary algebraic route when it is live, otherwise the
// primary's live prefix extended by a conjugate detour.
func (r *FaultAware) routeAvoiding(cur, dst int64) (route []int64, detoured bool, err error) {
	if r.fs.NodeDown(dst) {
		return nil, false, fmt.Errorf("topo: destination %d is failed", dst)
	}
	p, err := r.inner.Path(cur, dst)
	if err != nil {
		return nil, false, err
	}
	j := r.firstBlocked(p)
	if j < 0 {
		return p, false, nil
	}
	r.reroutes++
	// Keep the live prefix p[0..j] and re-derive the suffix from p[j].
	prefix := append([]int64(nil), p[:j+1]...)
	hopsBefore := r.detourHops
	tail, err := r.detourFrom(p[j], dst, r.MaxDetourTTL)
	if err != nil {
		return nil, false, fmt.Errorf("topo: no fault-free route from %d to %d: %w", cur, dst, err)
	}
	// Classify the repair by how many exploratory hops it spent: zero means
	// a conjugate candidate answered algebraically, anything else fell back
	// to the TTL-local walk. The depth histogram buckets by bit length.
	if spent := r.detourHops - hopsBefore; spent == 0 {
		r.conjugate++
		r.detourDepth[0]++
	} else {
		r.localDetour++
		b := bits.Len64(spent)
		if b >= len(r.detourDepth) {
			b = len(r.detourDepth) - 1
		}
		r.detourDepth[b]++
	}
	return append(prefix, tail[1:]...), true, nil
}

// detourFrom derives a fault-free route from v to dst by trying algebraic
// conjugate candidates first and spending local-detour TTL only when every
// candidate is blocked: a deterministic depth-first walk over live links
// (neighbors in ascending order, backtracking on dead ends) that retries
// the algebraic candidates at every node it reaches — PR 1's TTL
// discipline, made deterministic and systematic. ttl bounds the number of
// exploratory hops charged across the whole derivation. The returned route
// starts at v and ends at dst.
func (r *FaultAware) detourFrom(v, dst int64, ttl int) ([]int64, error) {
	if v == dst {
		return []int64{dst}, nil
	}
	if cand := r.algebraicCandidate(v, dst); cand != nil {
		return cand, nil
	}
	type frame struct {
		node int64
		nbrs []int64
		next int
	}
	liveNbrs := func(u int64) []int64 {
		r.nbrBuf = r.topo.Neighbors(u, r.nbrBuf)
		return append([]int64(nil), r.nbrBuf...)
	}
	r.limited = false
	onPath := map[int64]bool{v: true}
	// The fault set cannot change during one derivation, so a node whose
	// conjugate candidates were all blocked stays blocked: memoize failures
	// across DFS revisits (a node can be re-reached after backtracking).
	noCand := map[int64]bool{v: true}
	stack := []frame{{node: v, nbrs: liveNbrs(v)}}
	pathNodes := func() []int64 {
		p := make([]int64, len(stack))
		for i := range stack {
			p[i] = stack[i].node
		}
		return p
	}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		advanced := false
		for f.next < len(f.nbrs) {
			if r.maxDepth > 0 && len(stack) > r.maxDepth {
				r.limited = true
				break
			}
			w := f.nbrs[f.next]
			f.next++
			if r.fs.Blocked(f.node, w) || onPath[w] {
				continue
			}
			if ttl <= 0 {
				r.limited = true
				return nil, fmt.Errorf("detour TTL exhausted at %d", f.node)
			}
			ttl--
			r.detourHops++
			if w == dst {
				return append(pathNodes(), dst), nil
			}
			if !noCand[w] {
				if cand := r.algebraicCandidate(w, dst); cand != nil {
					return append(pathNodes(), cand...), nil
				}
				noCand[w] = true
			}
			onPath[w] = true
			stack = append(stack, frame{node: w, nbrs: liveNbrs(w)})
			advanced = true
			break
		}
		if !advanced {
			delete(onPath, f.node)
			stack = stack[:len(stack)-1]
		}
	}
	return nil, fmt.Errorf("detour search exhausted from %d", v)
}

// algebraicCandidate returns the first live conjugate-detour route from v to
// dst, or nil when every candidate is blocked. Candidates are enumerated in
// three deterministic tiers of increasing cost:
//
//	tier 0 — leave via a different generator: v -> w -> Route(w, dst);
//	tier 1 — additionally arrive via a different generator (undirected
//	         topologies): v -> w -> Route(w, e) -> dst for each e adjacent
//	         to dst;
//	tier 2 — two-hop starts: v -> w -> w2 -> Route(w2, dst).
//
// Each candidate costs O(route length) fault-membership checks; the tiers
// bound the total work per derivation by a constant multiple of κ² route
// checks.
func (r *FaultAware) algebraicCandidate(v, dst int64) []int64 {
	var found []int64
	r.forEachCandidate(v, dst, func(cand []int64) bool {
		if r.firstBlocked(cand) < 0 {
			found = cand
			return false
		}
		return true
	})
	return found
}

// forEachCandidate enumerates the conjugate-detour candidates from v to dst
// described on algebraicCandidate, calling yield for each; enumeration stops
// when yield returns false. Candidates whose splice hops are blocked are
// skipped cheaply before any route is computed.
func (r *FaultAware) forEachCandidate(v, dst int64, yield func([]int64) bool) {
	// Tier -1: the plain route itself. Source routes are not memoryless, so
	// after a local-detour step the direct route from the new position may
	// be clean even though every conjugate from the previous node was not.
	if p, err := r.inner.Path(v, dst); err == nil && len(p) > 1 && p[0] == v {
		if !yield(p) {
			return
		}
	}
	r.nbrBuf = r.topo.Neighbors(v, r.nbrBuf)
	firstHops := append([]int64(nil), r.nbrBuf...)
	// Tier 0: straight re-source from each live neighbor.
	for _, w := range firstHops {
		if r.fs.Blocked(v, w) {
			continue
		}
		cand, ok := r.spliceVia(v, w, dst)
		if ok && !yield(cand) {
			return
		}
	}
	// Tier 1: arrive through a different final generator (needs reverse
	// edges, so undirected topologies only).
	if !r.topo.Directed() {
		r.nbrBuf2 = r.topo.Neighbors(dst, r.nbrBuf2)
		preDst := append([]int64(nil), r.nbrBuf2...)
		for _, w := range firstHops {
			if r.fs.Blocked(v, w) {
				continue
			}
			for _, e := range preDst {
				if e == w || e == v || r.fs.Blocked(e, dst) || r.fs.NodeDown(e) {
					continue
				}
				cand, ok := r.spliceViaTo(v, w, e, dst)
				if ok && !yield(cand) {
					return
				}
			}
		}
	}
	// Tier 2: two-hop starts.
	for _, w := range firstHops {
		if r.fs.Blocked(v, w) {
			continue
		}
		r.nbrBuf2 = r.topo.Neighbors(w, r.nbrBuf2)
		second := append([]int64(nil), r.nbrBuf2...)
		for _, w2 := range second {
			if w2 == v || r.fs.Blocked(w, w2) {
				continue
			}
			cand, ok := r.spliceVia(w, w2, dst)
			if ok {
				full := append([]int64{v}, cand...)
				if !yield(full) {
					return
				}
			}
		}
	}
}

// spliceVia builds the candidate v -> w -> Route(w, dst), returning ok=false
// when the inner route cannot be computed.
func (r *FaultAware) spliceVia(v, w, dst int64) ([]int64, bool) {
	if w == dst {
		return []int64{v, dst}, true
	}
	p, err := r.inner.Path(w, dst)
	if err != nil || len(p) == 0 || p[0] != w {
		return nil, false
	}
	return append([]int64{v}, p...), true
}

// spliceViaTo builds the candidate v -> w -> Route(w, e) -> dst.
func (r *FaultAware) spliceViaTo(v, w, e, dst int64) ([]int64, bool) {
	if w == e {
		return []int64{v, w, dst}, true
	}
	p, err := r.inner.Path(w, e)
	if err != nil || len(p) == 0 || p[0] != w || p[len(p)-1] != e {
		return nil, false
	}
	cand := append([]int64{v}, p...)
	return append(cand, dst), true
}

// DisjointRoutes constructs a set of pairwise edge-disjoint routes from src
// to dst on topology t using router pr. It runs unit-capacity flow
// augmentation entirely through the fault-aware detour machinery: arcs
// carrying flow are marked failed in a scratch FaultSet, so each
// augmentation is exactly a fault-aware route derivation (primary algebraic
// route, then conjugate candidates, then the bounded DFS) over the residual
// graph; on undirected topologies a derivation that traverses an arc
// against existing flow cancels it (Ford–Fulkerson), which lets later
// augmentations reroute earlier ones instead of being blocked by greedy
// commitments. The accumulated flow is then decomposed into arc-disjoint
// src -> dst walks, smallest-id-first, deterministically.
//
// On the symmetric super-IP families, which are vertex-transitive Cayley
// graphs of degree κ, edge connectivity equals the degree, and the
// construction realizes that bound: it returns κ pairwise edge-disjoint
// routes — no two share an edge in either direction — which is the
// algebraic foundation of the "κ−1 faults lose nothing" guarantee. Only
// O(κ · route length) local work is spent; the topology is never
// materialized and no BFS tables are built.
//
// The routes are valid walks; they need not be node-disjoint, and
// cancellation means the first route is not always the primary algebraic
// route verbatim. Fewer than κ routes are returned when the pair's local
// connectivity is below the degree (possible on the plain repeated-seed
// families) or an augmenting path exceeds the search budget.
func DisjointRoutes(t Topology, pr PathRouter, src, dst int64) ([][]int64, error) {
	if src == dst {
		return nil, fmt.Errorf("topo: DisjointRoutes(%d, %d): src == dst", src, dst)
	}
	primary, err := pr.Path(src, dst)
	if err != nil {
		return nil, err
	}
	directed := t.Directed()
	fs := NewFaultSet()
	flow := map[[2]int64]bool{}
	// augment pushes one unit of flow along p, which must be node-simple
	// (simplifyWalk) so that no arc is used twice within one augmentation.
	augment := func(p []int64) {
		for i := 0; i+1 < len(p); i++ {
			u, v := p[i], p[i+1]
			if back := [2]int64{v, u}; !directed && flow[back] {
				delete(flow, back) // traversed against flow: cancel it
				fs.RepairLink(v, u)
			} else {
				flow[[2]int64{u, v}] = true
				fs.FailLink(u, v)
			}
		}
	}
	augment(simplifyWalk(primary))
	paths := 1

	helper := &FaultAware{inner: pr, topo: t, fs: fs}
	budget := 64 + 16*len(primary)
	var nbrBuf []int64
	nbrBuf = t.Neighbors(src, nbrBuf)
	slots := len(nbrBuf)
	for i := 1; i < slots; i++ {
		// Iterative deepening keeps each augmenting path — and therefore
		// each decomposed route — short: a shallow residual search is tried
		// before the depth cap is relaxed toward the full budget.
		var p []int64
		var err error
		for depth := len(primary) + 2; ; depth *= 2 {
			helper.maxDepth = depth
			p, err = helper.detourFrom(src, dst, budget)
			if err == nil || depth > budget || !helper.limited {
				break
			}
		}
		helper.maxDepth = 0
		if err != nil {
			break // residual search exhausted: local connectivity reached
		}
		augment(simplifyWalk(p))
		paths++
	}

	// Decompose the flow into paths: sorted out-arc lists per node, each
	// walk consuming the smallest remaining out-arc until it reaches dst.
	// Flow conservation (out = in at every intermediate node, with `paths`
	// units of excess at src) guarantees every walk terminates at dst;
	// leftover flow cycles, if any, are simply never visited.
	out := map[int64][]int64{}
	for arc := range flow {
		out[arc[0]] = append(out[arc[0]], arc[1])
	}
	for _, vs := range out {
		sortInt64s(vs)
	}
	maxLen := len(flow) + 1
	routes := make([][]int64, 0, paths)
	for i := 0; i < paths; i++ {
		walk := []int64{src}
		cur := src
		for cur != dst && len(walk) <= maxLen {
			arcs := out[cur]
			if len(arcs) == 0 {
				return nil, fmt.Errorf("topo: DisjointRoutes(%d, %d): flow decomposition stuck at %d", src, dst, cur)
			}
			nxt := arcs[0]
			out[cur] = arcs[1:]
			walk = append(walk, nxt)
			cur = nxt
		}
		if cur != dst {
			return nil, fmt.Errorf("topo: DisjointRoutes(%d, %d): flow decomposition cycled", src, dst)
		}
		// A walk may wander through a leftover flow cycle; stripping the
		// cycle uses a subset of the walk's own arcs, so disjointness is
		// preserved and the route only gets shorter.
		routes = append(routes, simplifyWalk(walk))
	}
	return routes, nil
}

// simplifyWalk removes cycles from a walk: whenever a node recurs, the
// segment between its two occurrences is spliced out, yielding a node-simple
// path over a subset of the walk's arcs.
func simplifyWalk(p []int64) []int64 {
	pos := map[int64]int{}
	out := p[:0:0]
	for _, u := range p {
		if k, seen := pos[u]; seen {
			for _, v := range out[k+1:] {
				delete(pos, v)
			}
			out = out[:k+1]
			continue
		}
		pos[u] = len(out)
		out = append(out, u)
	}
	return out
}

// sortInt64s sorts a small int64 slice ascending (insertion sort; arc lists
// are at most degree long).
func sortInt64s(a []int64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
