package topo

import (
	"sync"
	"sync/atomic"
)

// FaultSet is the id-space liveness oracle shared between a fault-aware
// router and a degraded-mode simulator: failed links and nodes are recorded
// as plain int64 ids, so membership is O(1) and nothing about the topology is
// ever materialized. Entries are reference-counted — overlapping schedules
// (two faults striking the same component before either heals) compose the
// way the materialized simulator's downCnt fields do — and every mutation
// bumps a monotonic epoch counter, which is what routers use to invalidate
// cached source routes: a cached route verified at epoch e is known
// fault-free for as long as Epoch() still returns e.
//
// Link faults are directed arcs. On an undirected topology the caller fails
// both directions (FailLinkBoth); keeping the primitive directed lets the
// same structure serve directed families like dir-CN.
//
// A FaultSet is safe for concurrent use: queries take a read lock and the
// epoch is read atomically, so a simulator applying scheduled faults can
// share the set with routers running in other goroutines.
type FaultSet struct {
	mu    sync.RWMutex
	epoch atomic.Uint64
	links map[[2]int64]int
	nodes map[int64]int
}

// NewFaultSet returns an empty fault set at epoch 0.
func NewFaultSet() *FaultSet {
	return &FaultSet{links: map[[2]int64]int{}, nodes: map[int64]int{}}
}

// Epoch returns the current fault epoch. It increases by one on every
// mutation (fail or repair) and never decreases.
func (fs *FaultSet) Epoch() uint64 { return fs.epoch.Load() }

// FailLink marks the directed link u -> v failed (reference-counted).
func (fs *FaultSet) FailLink(u, v int64) {
	fs.mu.Lock()
	fs.links[[2]int64{u, v}]++
	fs.epoch.Add(1)
	fs.mu.Unlock()
}

// RepairLink removes one failure of the directed link u -> v. Repairing a
// live link is a no-op.
func (fs *FaultSet) RepairLink(u, v int64) {
	fs.mu.Lock()
	k := [2]int64{u, v}
	if c := fs.links[k]; c > 1 {
		fs.links[k] = c - 1
	} else if c == 1 {
		delete(fs.links, k)
	}
	fs.epoch.Add(1)
	fs.mu.Unlock()
}

// FailLinkBoth fails both directions of the link {u, v} — the undirected
// fault primitive.
func (fs *FaultSet) FailLinkBoth(u, v int64) {
	fs.mu.Lock()
	fs.links[[2]int64{u, v}]++
	fs.links[[2]int64{v, u}]++
	fs.epoch.Add(1)
	fs.mu.Unlock()
}

// RepairLinkBoth repairs both directions of the link {u, v}.
func (fs *FaultSet) RepairLinkBoth(u, v int64) {
	fs.mu.Lock()
	for _, k := range [2][2]int64{{u, v}, {v, u}} {
		if c := fs.links[k]; c > 1 {
			fs.links[k] = c - 1
		} else if c == 1 {
			delete(fs.links, k)
		}
	}
	fs.epoch.Add(1)
	fs.mu.Unlock()
}

// FailNode marks node u failed (reference-counted).
func (fs *FaultSet) FailNode(u int64) {
	fs.mu.Lock()
	fs.nodes[u]++
	fs.epoch.Add(1)
	fs.mu.Unlock()
}

// RepairNode removes one failure of node u. Repairing a live node is a
// no-op.
func (fs *FaultSet) RepairNode(u int64) {
	fs.mu.Lock()
	if c := fs.nodes[u]; c > 1 {
		fs.nodes[u] = c - 1
	} else if c == 1 {
		delete(fs.nodes, u)
	}
	fs.epoch.Add(1)
	fs.mu.Unlock()
}

// LinkDown reports whether the directed link u -> v is failed. A down
// endpoint does not imply a down link; use Blocked for the combined check.
func (fs *FaultSet) LinkDown(u, v int64) bool {
	fs.mu.RLock()
	_, down := fs.links[[2]int64{u, v}]
	fs.mu.RUnlock()
	return down
}

// NodeDown reports whether node u is failed.
func (fs *FaultSet) NodeDown(u int64) bool {
	fs.mu.RLock()
	_, down := fs.nodes[u]
	fs.mu.RUnlock()
	return down
}

// Blocked reports whether a packet at u can NOT be forwarded to v: the link
// is down or the receiving node is down. (The sending node's own liveness is
// the caller's concern — a packet cannot sit at a dead node in the first
// place.)
func (fs *FaultSet) Blocked(u, v int64) bool {
	fs.mu.RLock()
	_, linkDown := fs.links[[2]int64{u, v}]
	_, nodeDown := fs.nodes[v]
	fs.mu.RUnlock()
	return linkDown || nodeDown
}

// Len returns the number of distinct failed directed links and nodes.
func (fs *FaultSet) Len() (links, nodes int) {
	fs.mu.RLock()
	links, nodes = len(fs.links), len(fs.nodes)
	fs.mu.RUnlock()
	return links, nodes
}

// Reset clears all faults and bumps the epoch once.
func (fs *FaultSet) Reset() {
	fs.mu.Lock()
	fs.links = map[[2]int64]int{}
	fs.nodes = map[int64]int{}
	fs.epoch.Add(1)
	fs.mu.Unlock()
}
