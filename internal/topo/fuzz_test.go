package topo

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/superip"
)

// fuzzNet lazily builds the one family the fuzzer routes on: small enough
// that each execution is microseconds, symmetric so κ = degree detours
// exist.
var fuzzNet struct {
	once sync.Once
	imp  *Implicit
	mk   func() *FaultAware // fresh router per fault configuration
}

func fuzzSetup(t testing.TB, fs *FaultSet) (*Implicit, *FaultAware) {
	fuzzNet.once.Do(func() {
		net := superip.HSN(2, superip.NucleusHypercube(2)).SymmetricVariant()
		imp, err := NewImplicit(net.Super())
		if err != nil {
			panic(err)
		}
		fuzzNet.imp = imp
	})
	inner, err := NewAlgebraic(superip.HSN(2, superip.NucleusHypercube(2)).SymmetricVariant().Super())
	if err != nil {
		t.Fatal(err)
	}
	return fuzzNet.imp, NewFaultAware(fuzzNet.imp, inner, fs)
}

// FuzzDetourDerivation is the safety fuzz target for the fault-aware
// router: under an arbitrary fault set, a successfully derived route must
// never cross a failed link or node, must start and end at the requested
// pair, and iterated NextHop must deliver over live links too. (A derivation
// error is acceptable — the fault set may genuinely disconnect the pair —
// but silently routing through a fault never is.)
func FuzzDetourDerivation(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(0))
	f.Add(int64(42), uint8(7), uint8(3))
	f.Add(int64(-9), uint8(255), uint8(200))
	f.Fuzz(func(t *testing.T, seed int64, nLinks, nNodes uint8) {
		fs := NewFaultSet()
		imp, fa := fuzzSetup(t, fs)
		n := imp.N()
		rng := rand.New(rand.NewSource(seed))
		var buf []int64
		for i := 0; i < int(nLinks%32); i++ {
			u := rng.Int63n(n)
			buf = imp.Neighbors(u, buf)
			if len(buf) == 0 {
				continue
			}
			fs.FailLinkBoth(u, buf[rng.Intn(len(buf))])
		}
		src := rng.Int63n(n)
		dst := rng.Int63n(n - 1)
		if dst >= src {
			dst++
		}
		for i := 0; i < int(nNodes%4); i++ {
			u := rng.Int63n(n)
			if u != src && u != dst {
				fs.FailNode(u)
			}
		}
		p, err := fa.Path(src, dst)
		if err != nil {
			return // pair may be disconnected by the faults; that is fine
		}
		if p[0] != src || p[len(p)-1] != dst {
			t.Fatalf("route endpoints %d..%d, want %d..%d", p[0], p[len(p)-1], src, dst)
		}
		for i := 0; i+1 < len(p); i++ {
			if fs.Blocked(p[i], p[i+1]) {
				t.Fatalf("route %v crosses failed link %d -> %d", p, p[i], p[i+1])
			}
			ok := false
			buf = imp.Neighbors(p[i], buf)
			for _, w := range buf {
				if w == p[i+1] {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("route step %d -> %d is not an edge", p[i], p[i+1])
			}
		}
		// NextHop must deliver without crossing faults either.
		cur := src
		for hop := 0; cur != dst; hop++ {
			if hop > 10*fa.MaxDetourTTL+100 {
				t.Fatalf("NextHop not delivering for (%d, %d)", src, dst)
			}
			nxt, err := fa.NextHop(cur, dst)
			if err != nil {
				return // a NextHop re-derivation may legitimately fail mid-route
			}
			if fs.Blocked(cur, nxt) {
				t.Fatalf("NextHop crossed failed link %d -> %d", cur, nxt)
			}
			cur = nxt
		}
	})
}
