package topo

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/perm"
	"repro/internal/symbols"
)

// Implicit is the algebraic implementation of Topology for super-IP graphs:
// nodes are dense ranks computed in closed form from labels (core.Ranker),
// and a node's neighbors are generated on the fly by applying the full
// generator set to its label. Nothing O(N) is ever allocated — the only
// state is the nucleus index (M entries) and the arrangement subgroup — so
// an Implicit topology scales to instances whose adjacency lists could
// never be materialized.
//
// Implicit implements Topology, Labeled, and Modular. It is not safe for
// concurrent use (label scratch buffers are reused across calls).
type Implicit struct {
	s        *core.SuperIP
	rk       *core.Ranker
	gens     []perm.Perm
	directed bool

	lblBuf  symbols.Label // current-node label scratch
	nbrBuf  symbols.Label // neighbor label scratch
	nameStr string
}

// NewImplicit builds the implicit topology of a super-IP graph. The only
// graph ever enumerated is the nucleus (M nodes).
func NewImplicit(s *core.SuperIP) (*Implicit, error) {
	rk, err := s.Ranker()
	if err != nil {
		return nil, err
	}
	ip := s.IPGraph()
	return &Implicit{
		s:        s,
		rk:       rk,
		gens:     ip.Gens,
		directed: !perm.ClosedUnderInverse(ip.Gens),
		lblBuf:   make(symbols.Label, rk.LabelLen()),
		nbrBuf:   make(symbols.Label, rk.LabelLen()),
		nameStr:  s.Name,
	}, nil
}

// Super returns the underlying super-IP specification.
func (t *Implicit) Super() *core.SuperIP { return t.s }

// Ranker returns the id <-> label bijection the topology runs on.
func (t *Implicit) Ranker() *core.Ranker { return t.rk }

// N returns A * M^l (Theorem 3.2 / Section 3.5) without enumeration.
func (t *Implicit) N() int64 { return t.rk.N() }

// MaxDegree returns the generator count — the degree bound of the Cayley
// view. Individual nodes of plain (repeated-seed) graphs may have fewer
// neighbors where a generator fixes their label.
func (t *Implicit) MaxDegree() int { return len(t.gens) }

// Directed reports whether the generator set is closed under inverse.
func (t *Implicit) Directed() bool { return t.directed }

// Neighbors applies every generator to u's label, drops fixed points,
// ranks the results, and returns them sorted and deduplicated — matching
// the adjacency contract of the materialized graph exactly.
func (t *Implicit) Neighbors(u int64, buf []int64) []int64 {
	t.lblBuf = t.rk.Unrank(u, t.lblBuf)
	buf = buf[:0]
	for _, g := range t.gens {
		g.Apply(t.nbrBuf, t.lblBuf)
		if t.nbrBuf.Equal(t.lblBuf) {
			continue // generator fixes this label: a self-loop, not an edge
		}
		id, err := t.rk.Rank(t.nbrBuf)
		if err != nil {
			// Generators act within the vertex set by construction; an
			// unrankable image means the specification is inconsistent.
			panic(fmt.Sprintf("topo: %s: generator image %v of node %d is not a vertex: %v",
				t.nameStr, t.nbrBuf, u, err))
		}
		buf = append(buf, id)
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	out := buf[:0]
	var prev int64 = -1
	for _, v := range buf {
		if v != prev {
			out = append(out, v)
			prev = v
		}
	}
	return out
}

// Label returns the label of node u. The result aliases internal scratch
// and is valid until the next Label or Neighbors call.
func (t *Implicit) Label(u int64) symbols.Label {
	t.lblBuf = t.rk.Unrank(u, t.lblBuf)
	return t.lblBuf
}

// ID returns the rank of a label, or -1 if it is not a vertex.
func (t *Implicit) ID(x symbols.Label) int64 {
	id, err := t.rk.Rank(x)
	if err != nil {
		return -1
	}
	return id
}

// Modules returns N / M, the module count of the Section 5.3 packing.
func (t *Implicit) Modules() int64 { return t.rk.Modules() }

// Module returns the module id of node u; it panics if u is out of range.
// Unlike the label-space methods it is closed-form integer arithmetic
// (core.Ranker.ModuleOfID) and safe for concurrent use — the sharded
// simulator calls it from every lane.
func (t *Implicit) Module(u int64) int64 {
	if u < 0 || u >= t.rk.N() {
		panic(fmt.Sprintf("topo: %s: module of node %d: out of range", t.nameStr, u))
	}
	return t.rk.ModuleOfID(u)
}

// ModuleSize returns M, the uniform node count of every module.
func (t *Implicit) ModuleSize() int64 { return t.rk.ModuleSize() }

// ModuleNode returns the off-th node of module mod (the inverse enumeration
// of Module); safe for concurrent use. Together with Modules, Module, and
// ModuleSize this makes *Implicit a netsim.ModuleSpace: the sharded
// simulator partitions and enumerates lanes without materializing anything.
func (t *Implicit) ModuleNode(mod, off int64) int64 { return t.rk.ModuleNode(mod, off) }

// SubcubeSpace partitions the n-cube Q_Dim into 2^(Dim-Low) subcube modules
// of 2^Low nodes each: module ids are the high Dim-Low address bits. It is
// the hypercube counterpart of the nucleus-per-module packing — the module
// view the sharded simulator needs (netsim.ModuleSpace) for a topology that
// has no super-IP structure. All methods are pure arithmetic and safe for
// concurrent use.
type SubcubeSpace struct{ Dim, Low int }

// Modules returns 2^(Dim-Low).
func (s SubcubeSpace) Modules() int64 { return int64(1) << uint(s.Dim-s.Low) }

// Module returns the high-bit module id of node u.
func (s SubcubeSpace) Module(u int64) int64 { return u >> uint(s.Low) }

// ModuleSize returns 2^Low.
func (s SubcubeSpace) ModuleSize() int64 { return int64(1) << uint(s.Low) }

// ModuleNode returns the off-th node of module mod.
func (s SubcubeSpace) ModuleNode(mod, off int64) int64 { return mod<<uint(s.Low) | off }

// HypercubeTopo is the implicit binary n-cube Q_dim: node ids are bit
// strings and neighbors differ in exactly one bit. Safe for concurrent use.
type HypercubeTopo struct{ Dim int }

// N returns 2^Dim.
func (t HypercubeTopo) N() int64 { return int64(1) << uint(t.Dim) }

// MaxDegree returns Dim.
func (t HypercubeTopo) MaxDegree() int { return t.Dim }

// Directed reports false: bit flips are involutions.
func (t HypercubeTopo) Directed() bool { return false }

// Neighbors appends the Dim single-bit flips of u, sorted ascending.
func (t HypercubeTopo) Neighbors(u int64, buf []int64) []int64 {
	buf = buf[:0]
	// Flipping a set bit clears it (smaller id), flipping a clear bit sets
	// it (larger id); emitting cleared results high-bit-first then set
	// results low-bit-first yields ascending order without sorting.
	for bit := t.Dim - 1; bit >= 0; bit-- {
		if u&(1<<uint(bit)) != 0 {
			buf = append(buf, u^(1<<uint(bit)))
		}
	}
	for bit := 0; bit < t.Dim; bit++ {
		if u&(1<<uint(bit)) == 0 {
			buf = append(buf, u^(1<<uint(bit)))
		}
	}
	return buf
}
