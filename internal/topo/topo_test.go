package topo

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/graph"
	"repro/internal/networks"
	"repro/internal/superip"
)

// propertyGrid returns the super-IP family grid of the property suite: every
// Section 3 family, plain and symmetric, small enough to cross-check against
// a materialized build.
func propertyGrid() []*superip.Net {
	q2 := superip.NucleusHypercube(2)
	q3 := superip.NucleusHypercube(3)
	return []*superip.Net{
		superip.HSN(3, q2),
		superip.HSN(3, q2).SymmetricVariant(),
		superip.HSN(2, q3),
		superip.RingCN(3, q2),
		superip.RingCN(3, q2).SymmetricVariant(),
		superip.CompleteCN(3, q2),
		superip.SuperFlip(3, q2),
		superip.SuperFlip(3, q2).SymmetricVariant(),
		superip.DirectedCN(3, q2),
	}
}

const pairsPerFamily = 1000

// TestImplicitMatchesMaterialized checks, exhaustively on every grid family,
// that the implicit topology presents exactly the materialized graph: same
// node count, same directedness, and — after translating ids through labels —
// the same sorted adjacency list at every node.
func TestImplicitMatchesMaterialized(t *testing.T) {
	for _, net := range propertyGrid() {
		g, ix, err := net.BuildWithIndex()
		if err != nil {
			t.Fatalf("%s: build: %v", net.Name(), err)
		}
		imp, err := NewImplicit(net.Super())
		if err != nil {
			t.Fatalf("%s: implicit: %v", net.Name(), err)
		}
		if imp.N() != int64(g.N()) {
			t.Fatalf("%s: implicit N = %d, materialized %d", net.Name(), imp.N(), g.N())
		}
		if imp.Directed() != g.Directed {
			t.Fatalf("%s: implicit directed = %v, materialized %v", net.Name(), imp.Directed(), g.Directed)
		}
		if imp.MaxDegree() < g.MaxDegree() {
			t.Fatalf("%s: implicit MaxDegree %d below materialized %d", net.Name(), imp.MaxDegree(), g.MaxDegree())
		}
		// matID translates an implicit id to the materialized id of the same
		// label.
		matID := func(u int64) int32 {
			id := ix.ID(imp.Label(u))
			if id < 0 {
				t.Fatalf("%s: implicit node %d (label %v) missing from index", net.Name(), u, imp.Label(u))
			}
			return id
		}
		var buf []int64
		for u := int64(0); u < imp.N(); u++ {
			mu := matID(u)
			buf = imp.Neighbors(u, buf)
			got := make([]int32, len(buf))
			for i, v := range buf {
				got[i] = matID(v)
			}
			sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
			want := g.Neighbors(mu)
			if len(got) != len(want) {
				t.Fatalf("%s: node %d: %d implicit neighbors, %d materialized", net.Name(), u, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s: node %d: neighbors %v != %v", net.Name(), u, got, want)
				}
			}
		}
	}
}

// TestAlgebraicRouterProperties is the heart of the property suite: on every
// grid family, for pairsPerFamily random (src, dst) pairs, the algebraic
// route must (a) be a valid walk on the materialized graph, (b) never exceed
// the paper's diameter bound l*D_G + t (t_S for symmetric variants), and (c)
// be retraced exactly by iterated NextHop calls.
func TestAlgebraicRouterProperties(t *testing.T) {
	for _, net := range propertyGrid() {
		g, ix, err := net.BuildWithIndex()
		if err != nil {
			t.Fatalf("%s: build: %v", net.Name(), err)
		}
		imp, err := NewImplicit(net.Super())
		if err != nil {
			t.Fatalf("%s: implicit: %v", net.Name(), err)
		}
		r, err := NewAlgebraic(net.Super())
		if err != nil {
			t.Fatalf("%s: router: %v", net.Name(), err)
		}
		bound := net.Diameter()
		matID := func(u int64) int32 { return ix.ID(imp.Label(u)) }
		rng := rand.New(rand.NewSource(42))
		n := imp.N()
		for trial := 0; trial < pairsPerFamily; trial++ {
			src := rng.Int63n(n)
			dst := rng.Int63n(n - 1)
			if dst >= src {
				dst++
			}
			p, err := r.Path(src, dst)
			if err != nil {
				t.Fatalf("%s: Path(%d, %d): %v", net.Name(), src, dst, err)
			}
			if p[0] != src || p[len(p)-1] != dst {
				t.Fatalf("%s: Path(%d, %d) endpoints %d..%d", net.Name(), src, dst, p[0], p[len(p)-1])
			}
			if hops := len(p) - 1; hops > bound {
				t.Fatalf("%s: route %d -> %d takes %d hops, Theorem bound is %d",
					net.Name(), src, dst, hops, bound)
			}
			for i := 0; i+1 < len(p); i++ {
				if !g.HasEdge(matID(p[i]), matID(p[i+1])) {
					t.Fatalf("%s: route step %d -> %d is not an edge", net.Name(), p[i], p[i+1])
				}
			}
			// NextHop iteration must retrace the path within the same bound.
			cur := src
			for hop := 0; cur != dst; hop++ {
				if hop > bound {
					t.Fatalf("%s: NextHop iteration %d -> %d exceeded bound %d", net.Name(), src, dst, bound)
				}
				nxt, err := r.NextHop(cur, dst)
				if err != nil {
					t.Fatalf("%s: NextHop(%d, %d): %v", net.Name(), cur, dst, err)
				}
				if nxt != p[hop+1] {
					t.Fatalf("%s: NextHop diverges from Path at hop %d: %d != %d", net.Name(), hop, nxt, p[hop+1])
				}
				cur = nxt
			}
		}
	}
}

// TestAlgebraicOverMaterializedIDs checks the Materialized-codec constructor:
// routes expressed in the built graph's own id space are valid walks with
// bounded length, so the router plugs into consumers that know nothing about
// rankers.
func TestAlgebraicOverMaterializedIDs(t *testing.T) {
	net := superip.HSN(3, superip.NucleusHypercube(2)).SymmetricVariant()
	g, ix, err := net.BuildWithIndex()
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewAlgebraicWith(net.Super(), NewMaterialized(g, ix))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < pairsPerFamily; trial++ {
		src := int64(rng.Intn(g.N()))
		dst := int64(rng.Intn(g.N() - 1))
		if dst >= src {
			dst++
		}
		p, err := r.Path(src, dst)
		if err != nil {
			t.Fatalf("Path(%d, %d): %v", src, dst, err)
		}
		if len(p)-1 > net.Diameter() {
			t.Fatalf("route %d -> %d takes %d hops, bound %d", src, dst, len(p)-1, net.Diameter())
		}
		for i := 0; i+1 < len(p); i++ {
			if !g.HasEdge(int32(p[i]), int32(p[i+1])) {
				t.Fatalf("step %d -> %d is not an edge", p[i], p[i+1])
			}
		}
	}
}

// TestHypercubeTopoAndRouter checks the implicit hypercube against the
// materialized one and pins e-cube optimality: every routed path length
// equals the BFS distance.
func TestHypercubeTopoAndRouter(t *testing.T) {
	const dim = 6
	g, err := networks.Hypercube{Dim: dim}.Build()
	if err != nil {
		t.Fatal(err)
	}
	ht := HypercubeTopo{Dim: dim}
	if ht.N() != int64(g.N()) {
		t.Fatalf("N = %d, want %d", ht.N(), g.N())
	}
	var buf []int64
	for u := int64(0); u < ht.N(); u++ {
		buf = ht.Neighbors(u, buf)
		want := g.Neighbors(int32(u))
		if len(buf) != len(want) {
			t.Fatalf("node %d: %d neighbors, want %d", u, len(buf), len(want))
		}
		for i := range buf {
			if buf[i] != int64(want[i]) {
				t.Fatalf("node %d: neighbors %v != %v", u, buf, want)
			}
		}
	}
	assertShortest(t, g, HypercubeRouter{Dim: dim})
}

// TestStarRouterShortest pins the star router's optimality promise: every
// routed path length equals the BFS distance on networks.Star's graph.
func TestStarRouterShortest(t *testing.T) {
	g, err := networks.Star{Symbols: 5}.Build()
	if err != nil {
		t.Fatal(err)
	}
	assertShortest(t, g, StarRouter{Symbols: 5})
}

// assertShortest routes pairsPerFamily random pairs and requires every path
// to be a valid walk of exactly the BFS-distance length, and NextHop to
// agree with Path.
func assertShortest(t *testing.T, g *graph.Graph, r PathRouter) {
	t.Helper()
	rng := rand.New(rand.NewSource(9))
	distCache := map[int32][]int32{}
	for trial := 0; trial < pairsPerFamily; trial++ {
		src := int32(rng.Intn(g.N()))
		dst := int32(rng.Intn(g.N() - 1))
		if dst >= src {
			dst++
		}
		p, err := r.Path(int64(src), int64(dst))
		if err != nil {
			t.Fatalf("Path(%d, %d): %v", src, dst, err)
		}
		for i := 0; i+1 < len(p); i++ {
			if !g.HasEdge(int32(p[i]), int32(p[i+1])) {
				t.Fatalf("step %d -> %d is not an edge", p[i], p[i+1])
			}
		}
		dist, ok := distCache[src]
		if !ok {
			dist = g.BFS(src)
			distCache[src] = dist
		}
		if int32(len(p)-1) != dist[dst] {
			t.Fatalf("route %d -> %d takes %d hops, BFS distance %d", src, dst, len(p)-1, dist[dst])
		}
		nh, err := r.NextHop(int64(src), int64(dst))
		if err != nil {
			t.Fatalf("NextHop(%d, %d): %v", src, dst, err)
		}
		if nh != p[1] {
			t.Fatalf("NextHop(%d, %d) = %d, Path starts %d", src, dst, nh, p[1])
		}
	}
}

// TestTableRouterFallback checks the BFS oracle on an arbitrary (non-IP)
// graph: paths are valid, shortest, and consistent with NextHop.
func TestTableRouterFallback(t *testing.T) {
	g, err := networks.Petersen{}.Build()
	if err != nil {
		t.Fatal(err)
	}
	assertShortest(t, g, NewTable(g))
}

// TestNextHopAtDestination pins the error contract shared by all routers.
func TestNextHopAtDestination(t *testing.T) {
	g, _ := networks.Petersen{}.Build()
	net := superip.HSN(2, superip.NucleusHypercube(2))
	alg, err := NewAlgebraic(net.Super())
	if err != nil {
		t.Fatal(err)
	}
	routers := []Router{NewTable(g), HypercubeRouter{Dim: 3}, StarRouter{Symbols: 4}, alg}
	for i, r := range routers {
		if _, err := r.NextHop(2, 2); err == nil {
			t.Fatalf("router %d: NextHop(2,2) succeeded", i)
		}
	}
}
