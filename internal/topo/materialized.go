package topo

import (
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/symbols"
)

// Materialized adapts an explicitly built graph.Graph to the Topology
// interface. The optional Index additionally exposes the id <-> label
// bijection (Labeled) for graphs built from an IP-graph specification.
// A Materialized topology is safe for concurrent use.
type Materialized struct {
	G  *graph.Graph
	Ix *core.Index // optional: nil for graphs without IP labels
}

// NewMaterialized wraps a built graph (and its label index, which may be
// nil) as a Topology.
func NewMaterialized(g *graph.Graph, ix *core.Index) *Materialized {
	return &Materialized{G: g, Ix: ix}
}

// N returns the number of nodes.
func (t *Materialized) N() int64 { return int64(t.G.N()) }

// MaxDegree returns the maximum out-degree.
func (t *Materialized) MaxDegree() int { return t.G.MaxDegree() }

// Directed reports whether the graph is directed.
func (t *Materialized) Directed() bool { return t.G.Directed }

// Neighbors appends u's adjacency list (already sorted and deduplicated by
// the CSR builder) to buf[:0].
func (t *Materialized) Neighbors(u int64, buf []int64) []int64 {
	buf = buf[:0]
	for _, v := range t.G.Neighbors(int32(u)) {
		buf = append(buf, int64(v))
	}
	return buf
}

// Label returns the label of node u; it panics when no Index is attached.
func (t *Materialized) Label(u int64) symbols.Label { return t.Ix.Label(int32(u)) }

// ID returns the node id of a label, or -1; it panics when no Index is
// attached.
func (t *Materialized) ID(x symbols.Label) int64 { return int64(t.Ix.ID(x)) }
