package embed

import (
	"testing"

	"repro/internal/superip"
)

func TestHSNEmbeddingDilation3(t *testing.T) {
	// The paper (Section 3.2): an HSN can embed the corresponding
	// homogeneous product network (hypercube, k-ary n-cube) with dilation 3.
	cases := []*superip.Net{
		superip.HSN(2, superip.NucleusHypercube(2)), // guest Q4
		superip.HSN(3, superip.NucleusHypercube(2)), // guest Q6
		superip.HSN(2, superip.NucleusHypercube(3)), // guest Q6
		superip.HSN(2, superip.NucleusHypercube(4)), // guest Q8
		superip.HSN(4, superip.NucleusHypercube(2)), // guest Q8
	}
	for _, net := range cases {
		r, err := ProductIntoHSN(net)
		if err != nil {
			t.Fatalf("%s: %v", net.Name(), err)
		}
		if r.Dilation > 3 {
			t.Fatalf("%s: dilation %d exceeds 3", net.Name(), r.Dilation)
		}
		if r.Dilation < 3 && net.L > 1 {
			t.Fatalf("%s: dilation %d suspiciously low", net.Name(), r.Dilation)
		}
		// Guest Q_{l*n} has (l*n)*2^(l*n)/2 edges.
		ln := net.L * net.Nucleus.Degree
		wantEdges := ln * net.N() / 2
		if r.GuestEdges != wantEdges {
			t.Fatalf("%s: embedded %d guest edges, want %d", net.Name(), r.GuestEdges, wantEdges)
		}
		if r.Congestion < 1 {
			t.Fatalf("%s: zero congestion", net.Name())
		}
		if r.Expansion != 1 {
			t.Fatalf("%s: expansion %v", net.Name(), r.Expansion)
		}
	}
}

func TestRingCNEmbeddingDilationGrows(t *testing.T) {
	// Cyclic shifts cannot reach an arbitrary coordinate in one hop: the
	// ring-CN dilation is 2*floor(l/2)+1, strictly worse than HSN for l>3.
	d3, err := ProductIntoRingCN(superip.RingCN(3, superip.NucleusHypercube(2)))
	if err != nil {
		t.Fatal(err)
	}
	if d3.Dilation != 3 {
		t.Fatalf("ring-CN(3) dilation = %d, want 3", d3.Dilation)
	}
	d5, err := ProductIntoRingCN(superip.RingCN(5, superip.NucleusHypercube(2)))
	if err != nil {
		t.Fatal(err)
	}
	if d5.Dilation != 5 {
		t.Fatalf("ring-CN(5) dilation = %d, want 2*2+1 = 5", d5.Dilation)
	}
	h5, err := ProductIntoHSN(superip.HSN(5, superip.NucleusHypercube(2)))
	if err != nil {
		t.Fatal(err)
	}
	if h5.Dilation >= d5.Dilation {
		t.Fatalf("HSN dilation %d should beat ring-CN %d at l=5", h5.Dilation, d5.Dilation)
	}
	if EmulationSlowdown(d5) != d5.Dilation {
		t.Fatal("EmulationSlowdown must equal dilation")
	}
}

func TestEmbedKindChecks(t *testing.T) {
	if _, err := ProductIntoHSN(superip.RingCN(3, superip.NucleusHypercube(2))); err == nil {
		t.Fatal("HSN embedding must reject ring-CN host")
	}
	if _, err := ProductIntoRingCN(superip.HSN(3, superip.NucleusHypercube(2))); err == nil {
		t.Fatal("ring-CN embedding must reject HSN host")
	}
	sym := superip.HSN(2, superip.NucleusHypercube(2)).SymmetricVariant()
	if _, err := ProductIntoHSN(sym); err == nil {
		t.Fatal("symmetric host must be rejected")
	}
}

func TestEmbeddingAvgDilation(t *testing.T) {
	r, err := ProductIntoHSN(superip.HSN(2, superip.NucleusHypercube(2)))
	if err != nil {
		t.Fatal(err)
	}
	if r.AvgDilation <= 1 || r.AvgDilation > 3 {
		t.Fatalf("avg dilation = %v", r.AvgDilation)
	}
}
