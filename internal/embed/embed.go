// Package embed implements the paper's embedding claims: an HSN(l;G) embeds
// the corresponding homogeneous product network G^l (e.g. the hypercube
// Q_(l*n) when G = Q_n) with dilation at most 3 — swap the target
// super-symbol to the front, take one nucleus edge, swap back. A ring-CN
// embedding is provided for comparison: cyclic shifts cannot bring an
// arbitrary super-symbol to the front in one hop, so its dilation grows with
// l, which is exactly why transposition super-generators have stronger
// embedding capability (Section 6).
package embed

import (
	"fmt"

	"repro/internal/perm"
	"repro/internal/superip"
	"repro/internal/symbols"
)

// Result summarizes an embedding of a guest graph into a host graph.
type Result struct {
	// GuestEdges is the number of guest edges embedded.
	GuestEdges int
	// Dilation is the maximum host-path length over all guest edges.
	Dilation int
	// AvgDilation is the mean host-path length.
	AvgDilation float64
	// Congestion is the maximum number of guest-edge paths crossing any
	// single host edge.
	Congestion int
	// Expansion is host nodes / guest nodes (always 1 here: the embeddings
	// are bijective on nodes).
	Expansion float64
}

// ProductIntoHSN embeds the product network G^l into HSN(l;G), where G is
// the nucleus of net. Guest nodes are exactly the host labels (tuples of l
// nucleus states); a guest edge changes one coordinate along a nucleus edge.
// Returns the dilation/congestion summary after validating every embedded
// path against the host edge set.
func ProductIntoHSN(net *superip.Net) (*Result, error) {
	if net.Kind != superip.KindHSN || net.Symmetric {
		return nil, fmt.Errorf("embed: host must be a plain HSN, got %s", net.Name())
	}
	swapGen := func(c int) perm.Perm {
		m := net.Nucleus.Nuc.M()
		return perm.BlockTransposition(net.L, m, 0, c)
	}
	return productEmbedding(net, func(c int) []perm.Perm {
		if c == 0 {
			return nil
		}
		return []perm.Perm{swapGen(c)}
	}, func(c int) []perm.Perm {
		if c == 0 {
			return nil
		}
		return []perm.Perm{swapGen(c)}
	})
}

// ProductIntoRingCN embeds G^l into ring-CN(l;G): coordinate c is rotated to
// the front with min(c, l-c) shifts, adjusted with one nucleus move, and
// rotated back. Dilation grows like 2*floor(l/2)+1.
func ProductIntoRingCN(net *superip.Net) (*Result, error) {
	if net.Kind != superip.KindRingCN || net.Symmetric {
		return nil, fmt.Errorf("embed: host must be a plain ring-CN, got %s", net.Name())
	}
	m := net.Nucleus.Nuc.M()
	l := net.L
	left := perm.BlockLeftShift(l, m, 1)
	right := perm.BlockRightShift(l, m, 1)
	rotations := func(c int) (fwd []perm.Perm, back []perm.Perm) {
		if c == 0 {
			return nil, nil
		}
		if c <= l-c {
			for i := 0; i < c; i++ {
				fwd = append(fwd, left)
				back = append(back, right)
			}
		} else {
			for i := 0; i < l-c; i++ {
				fwd = append(fwd, right)
				back = append(back, left)
			}
		}
		return fwd, back
	}
	return productEmbedding(net, func(c int) []perm.Perm {
		fwd, _ := rotations(c)
		return fwd
	}, func(c int) []perm.Perm {
		_, back := rotations(c)
		return back
	})
}

// productEmbedding walks every guest edge (change coordinate c along a
// nucleus generator) and realizes it in the host as
// prefix(c) + nucleus move + suffix(c), skipping self-loop steps, then
// validates each hop against the host edge set and accumulates statistics.
func productEmbedding(net *superip.Net, prefix, suffix func(c int) []perm.Perm) (*Result, error) {
	g, ix, err := net.BuildWithIndex()
	if err != nil {
		return nil, err
	}
	m := net.Nucleus.Nuc.M()
	l := net.L
	k := l * m
	res := &Result{Expansion: 1}
	congestion := map[[2]int32]int{}
	var totalLen int

	apply := func(cur symbols.Label, p perm.Perm) symbols.Label {
		next := make(symbols.Label, k)
		p.Apply(next, cur)
		return next
	}
	for u := 0; u < ix.N(); u++ {
		label := ix.Label(int32(u))
		for c := 0; c < l; c++ {
			for _, gn := range net.Nucleus.Nuc.Gens {
				// Guest edge: apply gn to coordinate c.
				guest := label.Clone()
				blk := guest.Group(c, m).Clone()
				gn.Apply(guest[c*m:(c+1)*m], blk)
				if guest.Equal(label) {
					continue // generator fixes this coordinate: no guest edge
				}
				if ix.ID(guest) < 0 {
					return nil, fmt.Errorf("embed: guest neighbor %v not a host node", guest)
				}
				// Count each undirected guest edge once.
				if guest.Key() < label.Key() {
					continue
				}
				res.GuestEdges++
				// Host path: prefix swaps/rotations, nucleus move, suffix.
				steps := append([]perm.Perm{}, prefix(c)...)
				steps = append(steps, perm.Lift(gn, k))
				steps = append(steps, suffix(c)...)
				cur := label.Clone()
				var path []symbols.Label
				path = append(path, cur)
				for _, st := range steps {
					next := apply(cur, st)
					if next.Equal(cur) {
						continue // self-loop step (identical blocks): free
					}
					path = append(path, next)
					cur = next
				}
				if !cur.Equal(guest) {
					return nil, fmt.Errorf("embed: path for edge %v -> %v ends at %v", label, guest, cur)
				}
				hops := len(path) - 1
				totalLen += hops
				if hops > res.Dilation {
					res.Dilation = hops
				}
				for i := 0; i+1 < len(path); i++ {
					a, b := ix.ID(path[i]), ix.ID(path[i+1])
					if a < 0 || b < 0 || !g.HasEdge(a, b) {
						return nil, fmt.Errorf("embed: path step %v -> %v is not a host edge", path[i], path[i+1])
					}
					key := [2]int32{a, b}
					if a > b {
						key = [2]int32{b, a}
					}
					congestion[key]++
				}
			}
		}
	}
	for _, c := range congestion {
		if c > res.Congestion {
			res.Congestion = c
		}
	}
	if res.GuestEdges > 0 {
		res.AvgDilation = float64(totalLen) / float64(res.GuestEdges)
	}
	return res, nil
}

// EmulationSlowdown returns the worst-case per-step slowdown when the host
// emulates the guest product network by routing every guest edge along its
// embedded path: dilation (communication) under single-port store-and-forward
// assumptions.
func EmulationSlowdown(r *Result) int { return r.Dilation }
