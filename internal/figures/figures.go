// Package figures regenerates the data behind every figure in the paper's
// evaluation (Figs. 1-5), plus a Theorem 4.4 optimality-factor table. Each
// generator returns a Table that cmd/figures renders and EXPERIMENTS.md
// records. Small instances are measured exhaustively (BFS / 0-1 BFS);
// large instances use the closed forms that the test suites validate
// against exhaustive measurement on every buildable size.
package figures

import (
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/bisect"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/networks"
	"repro/internal/superip"
)

// Table is a rendered data series: a title, column headers, and rows.
type Table struct {
	Title   string
	Note    string
	Columns []string
	Rows    [][]string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if _, err := fmt.Fprintf(w, "# %s\n", t.Title); err != nil {
		return err
	}
	if t.Note != "" {
		if _, err := fmt.Fprintf(w, "# %s\n", t.Note); err != nil {
			return err
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		return strings.Join(parts, "  ")
	}
	if _, err := fmt.Fprintln(w, line(t.Columns)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func pad(s string, w int) string {
	for len(s) < w {
		s += " "
	}
	return s
}

func f1(v float64) string { return fmt.Sprintf("%.2f", v) }

func log2(n int) string { return fmt.Sprintf("%.1f", math.Log2(float64(n))) }

// Fig1 reconstructs Fig. 1: the structure of HSN(2;Q2) (= HCN(2,2) without
// diameter links) and HSN(3;Q2), with radix-4 node ranks as in the paper.
func Fig1() (*Table, error) {
	tab := &Table{
		Title:   "Fig 1: structure of HSN(l;Q2), l = 2, 3, radix-4 node ranks",
		Note:    "each row: node rank, label (super-symbols space-separated), neighbor ranks",
		Columns: []string{"network", "rank", "label", "neighbors"},
	}
	for _, l := range []int{2, 3} {
		net := superip.HSN(l, superip.NucleusHypercube(2))
		g, ix, err := net.BuildWithIndex()
		if err != nil {
			return nil, err
		}
		m := net.Nucleus.Nuc.M()
		// Radix-4 rank: decode each block's pair encoding into a digit 0-3.
		rank := func(u int32) int {
			label := ix.Label(u)
			r := 0
			for c := 0; c < l; c++ {
				digit := 0
				for j := 0; j < 2; j++ {
					if label[c*m+2*j] > label[c*m+2*j+1] {
						digit |= 1 << j
					}
				}
				r = r*4 + digit
			}
			return r
		}
		// Invert so rows are sorted by rank.
		byRank := make([]int32, g.N())
		for u := 0; u < g.N(); u++ {
			byRank[rank(int32(u))] = int32(u)
		}
		for r := 0; r < g.N(); r++ {
			u := byRank[r]
			var nbrs []string
			for _, v := range g.Neighbors(u) {
				nbrs = append(nbrs, fmt.Sprintf("%d", rank(v)))
			}
			tab.Rows = append(tab.Rows, []string{
				net.Name(),
				fmt.Sprintf("%d", r),
				ix.Label(u).Grouped(m),
				strings.Join(nbrs, ","),
			})
		}
	}
	return tab, nil
}

// ddEntry is one point of a Fig. 2 series.
type ddEntry struct {
	name     string
	n        int
	degree   int
	diameter int
}

func (e ddEntry) row() []string {
	return []string{
		e.name, fmt.Sprintf("%d", e.n), log2(e.n),
		fmt.Sprintf("%d", e.degree), fmt.Sprintf("%d", e.diameter),
		fmt.Sprintf("%d", e.degree*e.diameter),
	}
}

func specEntry(s networks.Spec) ddEntry {
	return ddEntry{name: s.Name(), n: s.N(), degree: s.Degree(), diameter: s.Diameter()}
}

func netEntry(n *superip.Net) ddEntry {
	return ddEntry{name: n.Name(), n: n.N(), degree: n.Degree(), diameter: n.Diameter()}
}

// Fig2 regenerates the DD-cost comparison (degree x diameter vs size) for
// the roster readable in the paper's legends: hypercube, 2D torus, star,
// CCC, de Bruijn, CN(l;Q4), CN(l;FQ4), ring-CN(l;Q4), ring-CN(l;FQ4),
// CN(l;P). Panel selects the size band: "a" up to ~2^16, "b" beyond.
func Fig2(panel string) (*Table, error) {
	tab := &Table{
		Title:   fmt.Sprintf("Fig 2%s: DD-cost (degree x diameter) vs network size", panel),
		Note:    "analytic stats; every closed form validated by BFS on all buildable sizes",
		Columns: []string{"network", "N", "log2N", "degree", "diameter", "DD-cost"},
	}
	var entries []ddEntry
	for n := 4; n <= 24; n += 2 {
		entries = append(entries, specEntry(networks.Hypercube{Dim: n}))
	}
	for _, k := range []int{8, 16, 32, 64, 128, 256, 512, 1024} {
		entries = append(entries, specEntry(networks.Torus2D{Rows: k, Cols: k}))
	}
	for n := 5; n <= 12; n++ {
		entries = append(entries, specEntry(networks.Star{Symbols: n}))
	}
	for n := 4; n <= 16; n += 2 {
		entries = append(entries, specEntry(networks.CCC{Dim: n}))
	}
	for n := 6; n <= 24; n += 3 {
		entries = append(entries, specEntry(networks.DeBruijn{Base: 2, Dim: n}))
	}
	q4 := superip.NucleusHypercube(4)
	fq4 := superip.NucleusFoldedHypercube(4)
	p := superip.NucleusPetersen()
	for l := 2; l <= 6; l++ {
		entries = append(entries, netEntry(superip.CompleteCN(l, q4)))
		entries = append(entries, netEntry(superip.RingCN(l, q4)))
		entries = append(entries, netEntry(superip.CompleteCN(l, fq4)))
		entries = append(entries, netEntry(superip.RingCN(l, fq4)))
		entries = append(entries, netEntry(superip.CompleteCN(l, p)))
	}
	lo, hi := 0, 1<<16
	if panel == "b" {
		lo, hi = 1<<16, 1<<30
	}
	for _, e := range entries {
		if e.n > lo && e.n <= hi {
			tab.Rows = append(tab.Rows, e.row())
		}
	}
	return tab, nil
}

// fig3Roster returns the buildable instances of the Fig. 3 families, with
// at most 16 nodes per module: HCN(n,n) (= HSN(2;Q_n)), HSN(l;Q4), CN(l;Q4),
// and QCN(2;Q7/Q3). The limit bounds exhaustive measurement cost.
func fig3Roster(limit int) []fig3Inst {
	var out []fig3Inst
	for n := 2; n <= 4; n++ {
		net := superip.HSN(2, superip.NucleusHypercube(n))
		if net.N() <= limit {
			out = append(out, fig3Inst{label: fmt.Sprintf("HCN(%d,%d)", n, n), net: net})
		}
	}
	for l := 2; l <= 4; l++ {
		net := superip.HSN(l, superip.NucleusHypercube(4))
		if net.N() <= limit {
			out = append(out, fig3Inst{label: net.Name(), net: net})
		}
	}
	for l := 2; l <= 4; l++ {
		net := superip.CompleteCN(l, superip.NucleusHypercube(4))
		if net.N() <= limit {
			out = append(out, fig3Inst{label: net.Name(), net: net})
		}
	}
	return out
}

type fig3Inst struct {
	label string
	net   *superip.Net
}

// Fig3 regenerates the inter-cluster comparisons: panel "a" is the average
// I-distance, panel "b" the I-diameter, both with one nucleus (<= 16 nodes)
// per module. All points are measured exactly with 0/1-weighted BFS.
func Fig3(panel string, limit int) (*Table, error) {
	if limit <= 0 {
		limit = 1 << 13
	}
	metric := "avg I-distance"
	if panel == "b" {
		metric = "I-diameter"
	}
	tab := &Table{
		Title:   fmt.Sprintf("Fig 3%s: %s vs log2(size), <= 16 nodes per module", panel, metric),
		Note:    "0/1-BFS measurement (exact below the limit, 64-source sample above); I-diameter also has the closed form t = l-1",
		Columns: []string{"network", "N", "log2N", metric, "analytic I-diam", "method"},
	}
	for _, inst := range fig3Roster(1 << 17) {
		g, ix, err := inst.net.BuildWithIndex()
		if err != nil {
			return nil, err
		}
		part := metrics.NucleusPartition(ix, inst.net.Nucleus.Nuc.M())
		var st graph.Stats
		method := "exact"
		if g.N() <= limit {
			st = metrics.IStats(g, part)
		} else {
			method = "sampled"
			sources := make([]int32, 0, 64)
			stride := g.N() / 64
			if stride == 0 {
				stride = 1
			}
			for s := 0; s < g.N() && len(sources) < 64; s += stride {
				sources = append(sources, int32(s))
			}
			st = metrics.IStatsSampled(g, part, sources)
		}
		val := f1(st.AvgDistance)
		if panel == "b" {
			val = fmt.Sprintf("%d", st.Diameter)
		}
		tab.Rows = append(tab.Rows, []string{
			inst.label, fmt.Sprintf("%d", g.N()), log2(g.N()), val,
			fmt.Sprintf("%d", inst.net.IDiameter()), method,
		})
	}
	// QCN(2;Q7/Q3): quotient network, module = one merged nucleus (16
	// physical nodes).
	q := superip.QuotientCN{L: 2, A: 7, B: 3}
	if q.UnderlyingN() <= 1<<21 && q.N() <= limit*2 {
		qg, err := q.Build()
		if err != nil {
			return nil, err
		}
		// Module of a merged node: the high (A-B) bits of every super-symbol
		// except the leftmost — i.e. one merged nucleus per module.
		w := q.A - q.B
		part := metrics.PartitionBy(qg.N(), func(u int32) string {
			return fmt.Sprintf("%d", int(u)&((1<<uint(w*(q.L-1)))-1))
		})
		st := metrics.IStats(qg, part)
		val := f1(st.AvgDistance)
		if panel == "b" {
			val = fmt.Sprintf("%d", st.Diameter)
		}
		tab.Rows = append(tab.Rows, []string{
			q.Name(), fmt.Sprintf("%d", qg.N()), log2(qg.N()), val,
			fmt.Sprintf("%d", q.L-1), "exact",
		})
	}
	return tab, nil
}

// IDegreeAnalytic returns the closed-form inter-cluster degree of a super-IP
// family under nucleus packing: each of the l-1 (or 2) super-links per node
// is off-module except when it is a self-loop, which happens for exactly one
// leftmost value per other block, so the per-module average is
// supDeg*(M-1)/M for transposition-like families and exactly 2 (or 1) for
// the shift families. Validated against metrics.IDegree in the tests.
func IDegreeAnalytic(n *superip.Net) float64 {
	m := float64(n.Nucleus.Size)
	switch n.Kind {
	case superip.KindHSN, superip.KindSuperFlip:
		// A transposition/flip is a self-loop for exactly one leftmost value
		// per other block, so every module averages supDeg*(M-1)/M.
		return float64(n.L-1) * (m - 1) / m
	case superip.KindCompleteCN:
		if n.L == 2 {
			return (m - 1) / m // the lone shift degenerates to a swap
		}
		// Cyclic shifts rearrange the non-leftmost blocks, so for a generic
		// module every shift link leaves the module: exactly l-1.
		return float64(n.L - 1)
	case superip.KindRingCN:
		if n.L == 2 {
			return (m - 1) / m // L = R = a swap
		}
		return 2
	case superip.KindDirectedCN:
		return 1
	}
	return 0
}

// Fig4 regenerates the ID-cost comparison (I-degree x diameter) with <= 16
// nodes per module: hypercube with Q4 modules, 2D torus with 4x4 tiles, and
// the CN / ring-CN families over Q4 and FQ4 nuclei.
func Fig4(panel string) (*Table, error) {
	tab := &Table{
		Title:   fmt.Sprintf("Fig 4%s: ID-cost (I-degree x diameter), <= 16 nodes per module", panel),
		Note:    "analytic; I-degree closed forms validated against exact measurement",
		Columns: []string{"network", "N", "log2N", "I-degree", "diameter", "ID-cost"},
	}
	type entry struct {
		name string
		n    int
		ideg float64
		diam int
	}
	var entries []entry
	for n := 5; n <= 24; n++ {
		h := networks.Hypercube{Dim: n}
		entries = append(entries, entry{h.Name(), h.N(), float64(n - 4), h.Diameter()})
	}
	for _, k := range []int{8, 16, 32, 64, 128, 256, 512} {
		t2 := networks.Torus2D{Rows: k, Cols: k}
		// 4x4 tiles: 16 boundary-crossing link endpoints per 16-node tile.
		entries = append(entries, entry{t2.Name(), t2.N(), 1, t2.Diameter()})
	}
	q4 := superip.NucleusHypercube(4)
	fq4 := superip.NucleusFoldedHypercube(4)
	for l := 2; l <= 6; l++ {
		for _, net := range []*superip.Net{
			superip.CompleteCN(l, q4), superip.RingCN(l, q4),
			superip.CompleteCN(l, fq4), superip.RingCN(l, fq4),
		} {
			entries = append(entries, entry{net.Name(), net.N(), IDegreeAnalytic(net), net.Diameter()})
		}
	}
	lo, hi := 0, 1<<16
	if panel == "b" {
		lo, hi = 1<<16, 1<<30
	}
	for _, e := range entries {
		if e.n > lo && e.n <= hi {
			tab.Rows = append(tab.Rows, []string{
				e.name, fmt.Sprintf("%d", e.n), log2(e.n), f1(e.ideg),
				fmt.Sprintf("%d", e.diam), f1(e.ideg * float64(e.diam)),
			})
		}
	}
	return tab, nil
}

// Fig5 regenerates the II-cost comparison (I-degree x I-diameter); panel "a"
// uses 8-node modules (Q3 nuclei), panel "b" 16-node modules (Q4 nuclei).
func Fig5(panel string) (*Table, error) {
	dim := 4
	if panel == "a" {
		dim = 3
	}
	moduleNodes := 1 << dim
	tab := &Table{
		Title:   fmt.Sprintf("Fig 5%s: II-cost (I-degree x I-diameter), %d-node modules", panel, moduleNodes),
		Note:    "analytic; closed forms validated against exact measurement",
		Columns: []string{"network", "N", "log2N", "I-degree", "I-diameter", "II-cost"},
	}
	type entry struct {
		name  string
		n     int
		ideg  float64
		idiam int
	}
	var entries []entry
	for n := dim + 1; n <= 24; n++ {
		h := networks.Hypercube{Dim: n}
		entries = append(entries, entry{h.Name(), h.N(), float64(n - dim), n - dim})
	}
	for _, k := range []int{8, 16, 32, 64, 128, 256, 512} {
		t2 := networks.Torus2D{Rows: k, Cols: k}
		// Tiles of 4x(moduleNodes/4): crossing endpoints per node and tile
		// crossings needed along each axis.
		tr, tc := 4, moduleNodes/4
		ideg := float64(2*(tr+tc)) / float64(moduleNodes)
		idiam := (k / tr / 2) + (k / tc / 2)
		entries = append(entries, entry{t2.Name(), t2.N(), ideg, idiam})
	}
	nuc := superip.NucleusHypercube(dim)
	fnuc := superip.NucleusFoldedHypercube(dim)
	for l := 2; l <= 7; l++ {
		for _, net := range []*superip.Net{
			superip.CompleteCN(l, nuc), superip.RingCN(l, nuc),
			superip.CompleteCN(l, fnuc), superip.RingCN(l, fnuc),
		} {
			entries = append(entries, entry{net.Name(), net.N(), IDegreeAnalytic(net), net.IDiameter()})
		}
	}
	for _, e := range entries {
		if e.n >= 32 && e.n <= 1<<24 {
			tab.Rows = append(tab.Rows, []string{
				e.name, fmt.Sprintf("%d", e.n), log2(e.n), f1(e.ideg),
				fmt.Sprintf("%d", e.idiam), f1(e.ideg * float64(e.idiam)),
			})
		}
	}
	return tab, nil
}

// Optimality regenerates the Theorem 4.4 evidence: the ratio of network
// diameter to the Moore-style degree-diameter lower bound for RCC-style
// super-IP graphs with complete-graph nuclei, which the theorem predicts
// approaches a small constant.
func Optimality() (*Table, error) {
	tab := &Table{
		Title:   "Theorem 4.4: diameter optimality factor of super-IP graphs with K_m nuclei",
		Columns: []string{"network", "N", "degree", "diameter", "Moore LB", "factor"},
	}
	for _, tc := range []struct{ l, m int }{
		{2, 4}, {2, 8}, {2, 16}, {2, 32}, {2, 64},
		{3, 8}, {3, 16}, {3, 32},
		{4, 16}, {4, 32}, {5, 32}, {6, 64},
	} {
		net := superip.RCC(tc.l, tc.m)
		lb := metrics.MooreDiameterLB(net.Degree(), net.N())
		tab.Rows = append(tab.Rows, []string{
			net.Name(), fmt.Sprintf("%d", net.N()),
			fmt.Sprintf("%d", net.Degree()), fmt.Sprintf("%d", net.Diameter()),
			fmt.Sprintf("%d", lb), f1(metrics.OptimalityFactor(net.Diameter(), net.Degree(), net.N())),
		})
	}
	return tab, nil
}

// IDegreeTable regenerates the Section 5.3 comparison of off-module links
// per node, measured exactly on buildable instances.
func IDegreeTable() (*Table, error) {
	tab := &Table{
		Title:   "Section 5.3: maximum off-module links per node (nucleus packing)",
		Columns: []string{"network", "N", "module", "max off-module links", "paper claim"},
	}
	add := func(name string, n, module, got int, claim string) {
		tab.Rows = append(tab.Rows, []string{
			name, fmt.Sprintf("%d", n), fmt.Sprintf("%d", module),
			fmt.Sprintf("%d", got), claim,
		})
	}
	for _, l := range []int{2, 3, 4} {
		net := superip.HSN(l, superip.NucleusHypercube(2))
		g, ix, err := net.BuildWithIndex()
		if err != nil {
			return nil, err
		}
		p := metrics.NucleusPartition(ix, net.Nucleus.Nuc.M())
		add(net.Name(), g.N(), net.Nucleus.Size, metrics.MaxOffModuleLinks(g, p),
			fmt.Sprintf("l-1 = %d", l-1))
	}
	for _, l := range []int{3, 4, 5} {
		net := superip.RingCN(l, superip.NucleusHypercube(2))
		g, ix, err := net.BuildWithIndex()
		if err != nil {
			return nil, err
		}
		p := metrics.NucleusPartition(ix, net.Nucleus.Nuc.M())
		add(net.Name(), g.N(), net.Nucleus.Size, metrics.MaxOffModuleLinks(g, p), "2")
	}
	for _, n := range []int{6, 8, 10} {
		g, err := (networks.Hypercube{Dim: n}).Build()
		if err != nil {
			return nil, err
		}
		p := metrics.SubcubePartition(g.N(), 3)
		add(fmt.Sprintf("Q%d", n), g.N(), 8, metrics.MaxOffModuleLinks(g, p),
			fmt.Sprintf("n-3 = %d", n-3))
	}
	{
		g, err := (networks.DeBruijn{Base: 2, Dim: 8}).Build()
		if err != nil {
			return nil, err
		}
		p := metrics.SubcubePartition(g.N(), 4)
		add("deBruijn(2,8)", g.N(), 16, metrics.MaxOffModuleLinks(g, p), "4")
	}
	return tab, nil
}

// OptimalityGHC extends the Theorem 4.4 table with the paper's Section 4
// suggestion: generalized-hypercube nuclei of proper size and dimension.
// With a GHC nucleus, D_G equals its coordinate count and the nucleus is
// itself diameter-optimal, so the super-IP diameter stays within a small
// factor of the Moore bound while the degree grows slowly.
func OptimalityGHC() (*Table, error) {
	tab := &Table{
		Title:   "Theorem 4.4: optimality factors with generalized-hypercube nuclei",
		Columns: []string{"network", "N", "degree", "diameter", "Moore LB", "factor"},
	}
	add := func(net *superip.Net) {
		lb := metrics.MooreDiameterLB(net.Degree(), net.N())
		tab.Rows = append(tab.Rows, []string{
			net.Name(), fmt.Sprintf("%d", net.N()),
			fmt.Sprintf("%d", net.Degree()), fmt.Sprintf("%d", net.Diameter()),
			fmt.Sprintf("%d", lb), f1(metrics.OptimalityFactor(net.Diameter(), net.Degree(), net.N())),
		})
	}
	for _, nuc := range []superip.NucleusSpec{
		superip.NucleusGHC(8, 8),
		superip.NucleusGHC(16, 16),
		superip.NucleusGHC(8, 8, 8),
		superip.NucleusGHC(16, 16, 16),
		superip.NucleusGHC(32, 32, 32),
	} {
		for l := 2; l <= 4; l++ {
			add(superip.HSN(l, nuc))
		}
	}
	return tab, nil
}

// NucleusAblation is the DESIGN.md ablation: fix the module budget at 16
// processors and vary only the nucleus (Q4, FQ4, K16, GHC(4,4), C(4,2))
// inside CN(l;.) — isolating the paper's Section 6 observation that "a
// dense nucleus graph reduces the diameter and average distance" while the
// super-generator family fixes the I-metrics.
func NucleusAblation() (*Table, error) {
	tab := &Table{
		Title:   "Ablation: nucleus choice at fixed 16-node modules, CN(l;G)",
		Note:    "I-degree/I-diameter depend only on the super-generators; diameter tracks nucleus density",
		Columns: []string{"network", "N", "nuc degree", "nuc diam", "degree", "diameter", "I-degree", "I-diameter", "DD", "II"},
	}
	for _, nuc := range []superip.NucleusSpec{
		superip.NucleusHypercube(4),
		superip.NucleusFoldedHypercube(4),
		superip.NucleusKAryCube(4, 2),
		superip.NucleusGHC(4, 4),
		superip.NucleusComplete(16),
	} {
		for _, l := range []int{2, 3, 4} {
			net := superip.CompleteCN(l, nuc)
			ideg := IDegreeAnalytic(net)
			tab.Rows = append(tab.Rows, []string{
				net.Name(), fmt.Sprintf("%d", net.N()),
				fmt.Sprintf("%d", nuc.Degree), fmt.Sprintf("%d", nuc.Diameter),
				fmt.Sprintf("%d", net.Degree()), fmt.Sprintf("%d", net.Diameter()),
				f1(ideg), fmt.Sprintf("%d", net.IDiameter()),
				fmt.Sprintf("%d", metrics.DDCost(net.Degree(), net.Diameter())),
				f1(metrics.IICost(ideg, net.IDiameter())),
			})
		}
	}
	return tab, nil
}

// Section51 regenerates the Section 5.1 discussion as a measured table:
// under a constant bisection-bandwidth constraint the low-dimensional tori
// win (their bisection is tiny, so each wire can be wide), while under a
// constant pin-out constraint the super-IP graphs win (few off-module links
// per node). Latency proxies: bisection-constrained = diameter *
// bisection/N (wires get N/bisection wider at fixed total width); pin-
// constrained = diameter * offLinksPerNode (pins shared across fewer
// links transmit faster). Bisection widths: closed form for Q_n and square
// tori, Kernighan-Lin upper bound for the super-IP instances (marked ~).
func Section51(klRestarts int, seed int64) (*Table, error) {
	if klRestarts <= 0 {
		klRestarts = 8
	}
	tab := &Table{
		Title:   "Section 5.1: constant-bisection vs constant-pinout comparison (256-node systems, 16-node modules)",
		Note:    "bisection-latency proxy = diam*bisection/N; pin-latency proxy = diam*offLinks",
		Columns: []string{"network", "N", "diam", "bisection", "off-links/node", "bisection-proxy", "pin-proxy"},
	}
	type entry struct {
		name      string
		n, diam   int
		bisection int
		approx    bool
		offLinks  int
	}
	var entries []entry

	q8 := networks.Hypercube{Dim: 8}
	entries = append(entries, entry{q8.Name(), q8.N(), q8.Diameter(),
		1 << 7, false, 8 - 4})
	t16 := networks.Torus2D{Rows: 16, Cols: 16}
	entries = append(entries, entry{t16.Name(), t16.N(), t16.Diameter(), 2 * 16, false, 2})

	for _, net := range []*superip.Net{
		superip.HSN(2, superip.NucleusHypercube(4)),
		superip.CompleteCN(2, superip.NucleusHypercube(4)),
	} {
		g, err := net.Build()
		if err != nil {
			return nil, err
		}
		w, err := bisect.KernighanLin(g, klRestarts, seed)
		if err != nil {
			return nil, err
		}
		entries = append(entries, entry{net.Name(), net.N(), net.Diameter(), w, true, net.SuperDegree()})
	}

	for _, e := range entries {
		bs := fmt.Sprintf("%d", e.bisection)
		if e.approx {
			bs = "~" + bs
		}
		bproxy := float64(e.diam) * float64(e.bisection) / float64(e.n)
		pproxy := float64(e.diam) * float64(e.offLinks)
		tab.Rows = append(tab.Rows, []string{
			e.name, fmt.Sprintf("%d", e.n), fmt.Sprintf("%d", e.diam), bs,
			fmt.Sprintf("%d", e.offLinks), f1(bproxy), f1(pproxy),
		})
	}
	return tab, nil
}

// AvgDistanceTable regenerates the Section 1 motivation: the star graph has
// degree, diameter, AND average distance smaller than a similar-size
// hypercube, and the super-IP families inherit the advantage. All values
// measured exactly by parallel all-pairs BFS.
func AvgDistanceTable() (*Table, error) {
	tab := &Table{
		Title:   "Section 1: degree / diameter / average distance at comparable sizes (exact BFS)",
		Columns: []string{"network", "N", "degree", "diameter", "avg distance"},
	}
	add := func(name string, n, deg int, diam int32, avg float64) {
		tab.Rows = append(tab.Rows, []string{
			name, fmt.Sprintf("%d", n), fmt.Sprintf("%d", deg),
			fmt.Sprintf("%d", diam), f1(avg),
		})
	}
	// star(7) = 5040 vs Q12 = 4096 vs CN(3;Q4) = 4096 vs CCC(9) = 4608.
	star, err := networks.Star{Symbols: 7}.Build()
	if err != nil {
		return nil, err
	}
	st := star.AllPairs()
	add("star(7)", star.N(), star.MaxDegree(), st.Diameter, st.AvgDistance)

	cube, err := networks.Hypercube{Dim: 12}.Build()
	if err != nil {
		return nil, err
	}
	st = cube.AllPairs()
	add("Q12", cube.N(), cube.MaxDegree(), st.Diameter, st.AvgDistance)

	ccc, err := networks.CCC{Dim: 9}.Build()
	if err != nil {
		return nil, err
	}
	st = ccc.AllPairs()
	add("CCC(9)", ccc.N(), ccc.MaxDegree(), st.Diameter, st.AvgDistance)

	for _, net := range []*superip.Net{
		superip.CompleteCN(3, superip.NucleusHypercube(4)),
		superip.HSN(3, superip.NucleusHypercube(4)),
		superip.MacroStar(2, 5),
	} {
		g, err := net.Build()
		if err != nil {
			return nil, err
		}
		st := g.AllPairs()
		add(net.Name(), g.N(), g.MaxDegree(), st.Diameter, st.AvgDistance)
	}
	return tab, nil
}
