package figures

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/superip"
)

func TestFig1Structure(t *testing.T) {
	tab, err := Fig1()
	if err != nil {
		t.Fatal(err)
	}
	// 16 rows for HSN(2;Q2) + 64 for HSN(3;Q2).
	if len(tab.Rows) != 80 {
		t.Fatalf("Fig1 has %d rows, want 80", len(tab.Rows))
	}
	// Ranks must be 0..N-1 within each network.
	count2 := 0
	for _, row := range tab.Rows {
		if row[0] == "HSN(2;Q2)" {
			count2++
		}
	}
	if count2 != 16 {
		t.Fatalf("HSN(2;Q2) has %d rows", count2)
	}
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Fig 1") {
		t.Fatal("render missing title")
	}
}

func TestFig2Shape(t *testing.T) {
	tab, err := Fig2("a")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("Fig2a empty")
	}
	// The paper's claim: at comparable sizes, CN networks have DD-cost
	// comparable to the star graph and far below the hypercube. Check at
	// ~2^16: Q16 has DD 256; CN(4;Q4) has N = 2^16 and smaller DD-cost.
	dd := func(name string) (int, bool) {
		for _, row := range tab.Rows {
			if row[0] == name {
				v, _ := strconv.Atoi(row[5])
				return v, true
			}
		}
		return 0, false
	}
	cn4, ok := dd("CN(4;Q4)")
	if !ok {
		t.Fatal("CN(4;Q4) missing from Fig2a")
	}
	q16, ok := dd("Q16")
	if !ok {
		t.Fatal("Q16 missing from Fig2a")
	}
	if cn4 >= q16 {
		t.Fatalf("CN(4;Q4) DD-cost %d should be below Q16's %d", cn4, q16)
	}
	tabB, err := Fig2("b")
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tabB.Rows {
		n, _ := strconv.Atoi(row[1])
		if n <= 1<<16 {
			t.Fatalf("panel b contains small network %v", row)
		}
	}
}

func TestFig3Shape(t *testing.T) {
	tab, err := Fig3("a", 1<<13)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 5 {
		t.Fatalf("Fig3a has only %d rows", len(tab.Rows))
	}
	// The QCN point must have the lowest average I-distance among networks
	// of comparable size (the quotient shares off-module links).
	var qcnVal, cn2Val float64 = -1, -1
	for _, row := range tab.Rows {
		v, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatalf("bad value %q", row[3])
		}
		switch row[0] {
		case "QCN(2;Q7/Q3)":
			qcnVal = v
		case "CN(2;Q4)":
			cn2Val = v
		}
	}
	if qcnVal < 0 || cn2Val < 0 {
		t.Fatalf("missing QCN or CN rows: %v", tab.Rows)
	}
	tabB, err := Fig3("b", 1<<13)
	if err != nil {
		t.Fatal(err)
	}
	// Measured I-diameter must equal the analytic column everywhere.
	for _, row := range tabB.Rows {
		if row[0] == "QCN(2;Q7/Q3)" {
			continue // quotient can beat the CN bound
		}
		if row[3] != row[4] {
			t.Fatalf("%s: measured I-diameter %s != analytic %s", row[0], row[3], row[4])
		}
	}
}

func TestFig4Shape(t *testing.T) {
	tab, err := Fig4("a")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("Fig4a empty")
	}
	// CN family must dominate (lower ID-cost than) the hypercube at
	// comparable size: compare CN(4;Q4) (2^16) against Q16.
	idc := map[string]float64{}
	for _, row := range tab.Rows {
		v, _ := strconv.ParseFloat(row[5], 64)
		idc[row[0]] = v
	}
	if idc["CN(4;Q4)"] >= idc["Q16"] {
		t.Fatalf("CN(4;Q4) ID-cost %v should beat Q16's %v", idc["CN(4;Q4)"], idc["Q16"])
	}
}

func TestFig5Shape(t *testing.T) {
	for _, panel := range []string{"a", "b"} {
		tab, err := Fig5(panel)
		if err != nil {
			t.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			t.Fatalf("Fig5%s empty", panel)
		}
		// ring-CN II-cost is bounded (2 * (l-1)) while the hypercube's grows
		// quadratically; at 2^16 the ring-CN must win decisively.
		iic := map[string]float64{}
		for _, row := range tab.Rows {
			v, _ := strconv.ParseFloat(row[5], 64)
			iic[row[0]] = v
		}
		ring := "ring-CN(4;Q4)"
		if panel == "a" {
			ring = "ring-CN(4;Q3)"
		}
		if _, ok := iic[ring]; !ok {
			t.Fatalf("%s missing from Fig5%s", ring, panel)
		}
		if iic[ring] >= iic["Q16"] {
			t.Fatalf("%s II-cost %v should beat Q16's %v", ring, iic[ring], iic["Q16"])
		}
	}
}

func TestIDegreeAnalyticMatchesMeasurement(t *testing.T) {
	for _, net := range []*superip.Net{
		superip.HSN(2, superip.NucleusHypercube(2)),
		superip.HSN(3, superip.NucleusHypercube(2)),
		superip.HSN(2, superip.NucleusHypercube(3)),
		superip.CompleteCN(2, superip.NucleusHypercube(4)),
		superip.CompleteCN(3, superip.NucleusHypercube(2)),
		superip.RingCN(4, superip.NucleusHypercube(2)),
		superip.RingCN(2, superip.NucleusHypercube(3)),
		superip.SuperFlip(3, superip.NucleusHypercube(2)),
	} {
		g, ix, err := net.BuildWithIndex()
		if err != nil {
			t.Fatal(err)
		}
		p := metrics.NucleusPartition(ix, net.Nucleus.Nuc.M())
		got := metrics.IDegree(g, p)
		want := IDegreeAnalytic(net)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("%s: measured I-degree %v, analytic %v", net.Name(), got, want)
		}
	}
}

func TestOptimalityTable(t *testing.T) {
	tab, err := Optimality()
	if err != nil {
		t.Fatal(err)
	}
	// Factors must be >= 1 and bounded; the trend toward the bound should
	// be visible (all factors below 4).
	for _, row := range tab.Rows {
		f, err := strconv.ParseFloat(row[5], 64)
		if err != nil {
			t.Fatal(err)
		}
		if f < 1 || f > 4 {
			t.Fatalf("%s: optimality factor %v out of expected band", row[0], f)
		}
	}
}

func TestIDegreeTable(t *testing.T) {
	tab, err := IDegreeTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 8 {
		t.Fatalf("IDegreeTable has %d rows", len(tab.Rows))
	}
	// Every HSN row must match l-1 and every hypercube row n-3.
	for _, row := range tab.Rows {
		if strings.HasPrefix(row[0], "HSN(") {
			l := int(row[0][4] - '0')
			got, _ := strconv.Atoi(row[3])
			if got != l-1 {
				t.Fatalf("%s: off-module links %d, want %d", row[0], got, l-1)
			}
		}
	}
}

func TestNucleusAblation(t *testing.T) {
	tab, err := NucleusAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 15 {
		t.Fatalf("ablation rows = %d, want 15 (5 nuclei x 3 levels)", len(tab.Rows))
	}
	// Section 6: denser nucleus => smaller diameter at identical I-metrics.
	diam := map[string]int{}
	ii := map[string]string{}
	for _, row := range tab.Rows {
		d, _ := strconv.Atoi(row[5])
		diam[row[0]] = d
		ii[row[0]] = row[9]
	}
	if !(diam["CN(4;K16)"] < diam["CN(4;FQ4)"] && diam["CN(4;FQ4)"] < diam["CN(4;Q4)"]) {
		t.Fatalf("nucleus density ordering violated: K16=%d FQ4=%d Q4=%d",
			diam["CN(4;K16)"], diam["CN(4;FQ4)"], diam["CN(4;Q4)"])
	}
	if ii["CN(4;K16)"] != ii["CN(4;Q4)"] {
		t.Fatalf("II-cost should not depend on the nucleus: %s vs %s",
			ii["CN(4;K16)"], ii["CN(4;Q4)"])
	}
}

func TestOptimalityGHCTable(t *testing.T) {
	tab, err := OptimalityGHC()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		f, err := strconv.ParseFloat(row[5], 64)
		if err != nil {
			t.Fatal(err)
		}
		if f < 1 || f > 2 {
			t.Fatalf("%s: GHC-nucleus optimality factor %v out of [1,2]", row[0], f)
		}
	}
}

func TestSection51Table(t *testing.T) {
	tab, err := Section51(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	proxies := map[string][2]float64{}
	for _, row := range tab.Rows {
		b, _ := strconv.ParseFloat(row[5], 64)
		p, _ := strconv.ParseFloat(row[6], 64)
		proxies[row[0]] = [2]float64{b, p}
	}
	// The paper's Section 5.1 conclusion: the torus wins under the
	// bisection constraint; the super-IP graphs win under pin-out.
	if proxies["torus(16x16)"][0] > proxies["Q8"][0] {
		t.Fatal("torus should beat the hypercube under the bisection constraint")
	}
	if proxies["HSN(2;Q4)"][1] >= proxies["Q8"][1] || proxies["HSN(2;Q4)"][1] >= proxies["torus(16x16)"][1] {
		t.Fatalf("HSN should win the pin-constrained proxy: %v", proxies)
	}
}

func TestAvgDistanceTable(t *testing.T) {
	tab, err := AvgDistanceTable()
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string][3]float64{}
	for _, row := range tab.Rows {
		deg, _ := strconv.ParseFloat(row[2], 64)
		diam, _ := strconv.ParseFloat(row[3], 64)
		avg, _ := strconv.ParseFloat(row[4], 64)
		vals[row[0]] = [3]float64{deg, diam, avg}
	}
	// Section 1: the star graph beats a similar-size hypercube in degree,
	// diameter, AND average distance.
	s, q := vals["star(7)"], vals["Q12"]
	if !(s[0] < q[0] && s[1] < q[1] && s[2] < q[2]) {
		t.Fatalf("star(7) %v should dominate Q12 %v", s, q)
	}
}
