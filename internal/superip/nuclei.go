// Package superip packages the paper's super-IP graph families — hierarchical
// swapped networks HSN(l;G) (Section 3.2), cyclic-shift networks CN(l;G)
// (Section 3.3), super-flip networks (Section 3.4), their symmetric variants
// (Section 3.5), and quotient networks — as ready-to-use constructors with
// closed-form statistics (size, degree, diameter, inter-cluster degree and
// diameter). Every closed form is validated against exhaustive measurement in
// the tests, so the large-scale comparison figures can rely on them.
package superip

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/networks"
	"repro/internal/perm"
	"repro/internal/symbols"
)

// NucleusSpec is a nucleus graph together with its analytic statistics.
type NucleusSpec struct {
	Nuc      core.Nucleus
	Size     int // M: number of nucleus nodes
	Degree   int // maximum degree of the nucleus graph
	Diameter int // D_G
	Short    string
	// DistinctSeedSafe reports whether replacing the nucleus seed with
	// distinct symbols (the Section 3.5 symmetric-variant construction)
	// preserves the nucleus graph. True for pattern-based encodings whose
	// generators act within fixed groups (Q, FQ, k-ary cubes, GHC) and for
	// already-distinct seeds (star); false for one-hot encodings (K_k,
	// Petersen) and rotation-based patterns (shuffle-exchange), whose state
	// spaces blow up under distinct symbols.
	DistinctSeedSafe bool
}

// NucleusHypercube returns the binary n-cube Q_n as a nucleus: n symbol
// pairs with one pair-swapping generator per dimension.
func NucleusHypercube(n int) NucleusSpec {
	seed := symbols.RepeatedSeed(n, symbols.Label{1, 2})
	gens := make([]perm.Perm, n)
	names := make([]string, n)
	for i := 0; i < n; i++ {
		gens[i] = perm.Transposition(2*n, 2*i, 2*i+1)
		names[i] = fmt.Sprintf("dim%d", i)
	}
	return NucleusSpec{
		Nuc:              core.Nucleus{Name: fmt.Sprintf("Q%d", n), Seed: seed, Gens: gens, GenNames: names},
		Size:             1 << n,
		Degree:           n,
		Diameter:         n,
		Short:            fmt.Sprintf("Q%d", n),
		DistinctSeedSafe: true,
	}
}

// NucleusFoldedHypercube returns the folded hypercube FQ_n as a nucleus: the
// Q_n pair encoding plus one complement generator that swaps every pair at
// once.
func NucleusFoldedHypercube(n int) NucleusSpec {
	base := NucleusHypercube(n)
	comp := perm.Identity(2 * n)
	for i := 0; i < n; i++ {
		comp[2*i], comp[2*i+1] = comp[2*i+1], comp[2*i]
	}
	nuc := base.Nuc
	nuc.Name = fmt.Sprintf("FQ%d", n)
	nuc.Gens = append(append([]perm.Perm{}, nuc.Gens...), comp)
	nuc.GenNames = append(append([]string{}, nuc.GenNames...), "complement")
	return NucleusSpec{
		Nuc:              nuc,
		Size:             1 << n,
		Degree:           n + 1,
		Diameter:         (n + 1) / 2,
		Short:            fmt.Sprintf("FQ%d", n),
		DistinctSeedSafe: true,
	}
}

// NucleusComplete returns the complete graph K_k as a nucleus, in the one-hot
// encoding: k symbols with a single marker, and all transpositions as
// generators (each moves the marker to a different position).
func NucleusComplete(k int) NucleusSpec {
	seed := symbols.ConstantSeed(k, 1)
	seed[0] = 2
	var gens []perm.Perm
	var names []string
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			gens = append(gens, perm.Transposition(k, i, j))
			names = append(names, fmt.Sprintf("(%d %d)", i+1, j+1))
		}
	}
	return NucleusSpec{
		Nuc:      core.Nucleus{Name: fmt.Sprintf("K%d", k), Seed: seed, Gens: gens, GenNames: names},
		Size:     k,
		Degree:   k - 1,
		Diameter: 1,
		Short:    fmt.Sprintf("K%d", k),
	}
}

// NucleusPetersen returns the Petersen graph as a nucleus via its IP-graph
// representation (Theorem 2.1 machinery): one-hot labels over 10 symbols and
// one generator per matching of a proper edge coloring. Used for the paper's
// cyclic Petersen networks CN(l;P).
func NucleusPetersen() NucleusSpec {
	p, err := networks.Petersen{}.Build()
	if err != nil {
		panic(err)
	}
	ip, _, err := core.Represent("Petersen", p)
	if err != nil {
		panic(err)
	}
	return NucleusSpec{
		Nuc:      core.Nucleus{Name: "P", Seed: ip.Seed, Gens: ip.Gens, GenNames: ip.GenNames},
		Size:     10,
		Degree:   3,
		Diameter: 2,
		Short:    "P",
	}
}

// NucleusStar returns the n-symbol star graph as a nucleus: distinct symbols
// with the star generators (1,i).
func NucleusStar(n int) NucleusSpec {
	seed := symbols.IotaSeed(n)
	gens := make([]perm.Perm, 0, n-1)
	names := make([]string, 0, n-1)
	for i := 1; i < n; i++ {
		gens = append(gens, perm.Transposition(n, 0, i))
		names = append(names, fmt.Sprintf("(1 %d)", i+1))
	}
	size := 1
	for i := 2; i <= n; i++ {
		size *= i
	}
	return NucleusSpec{
		Nuc:              core.Nucleus{Name: fmt.Sprintf("S%d", n), Seed: seed, Gens: gens, GenNames: names},
		Size:             size,
		Degree:           n - 1,
		Diameter:         3 * (n - 1) / 2,
		Short:            fmt.Sprintf("S%d", n),
		DistinctSeedSafe: true,
	}
}

// NucleusShuffleExchange returns the n-dimensional shuffle-exchange network
// as a nucleus: n symbol pairs with rotate-left, rotate-right, and
// exchange-last-pair generators. Used for hierarchical shuffle-exchange
// networks.
func NucleusShuffleExchange(n int) NucleusSpec {
	seed := symbols.RepeatedSeed(n, symbols.Label{1, 2})
	gens := []perm.Perm{
		perm.BlockLeftShift(n, 2, 1),
		perm.BlockRightShift(n, 2, 1),
		perm.Transposition(2*n, 2*n-2, 2*n-1),
	}
	return NucleusSpec{
		Nuc: core.Nucleus{
			Name: fmt.Sprintf("SE%d", n), Seed: seed, Gens: gens,
			GenNames: []string{"shuffle", "unshuffle", "exchange"},
		},
		Size:     1 << n,
		Degree:   3,
		Diameter: 2*n - 1,
		Short:    fmt.Sprintf("SE%d", n),
	}
}

// NucleusKAryCube returns the k-ary n-cube as a nucleus: n groups of k
// symbols; the generator pair for group i cyclically rotates that group by
// +-1. Each group's rotation offset is one radix-k coordinate, so the IP
// graph has k^n states. For k = 2 prefer NucleusHypercube (one involution
// per dimension instead of a redundant L/R pair).
func NucleusKAryCube(k, n int) NucleusSpec {
	seed := make(symbols.Label, 0, k*n)
	for i := 0; i < n; i++ {
		seed = append(seed, markedGroup(k)...)
	}
	var gens []perm.Perm
	var names []string
	for i := 0; i < n; i++ {
		fwd := perm.Identity(k * n)
		bwd := perm.Identity(k * n)
		rot := perm.Rotation(k, 1)
		for t := 0; t < k; t++ {
			fwd[i*k+t] = i*k + rot[t]
		}
		rotBack := perm.Rotation(k, -1)
		for t := 0; t < k; t++ {
			bwd[i*k+t] = i*k + rotBack[t]
		}
		gens = append(gens, fwd, bwd)
		names = append(names, fmt.Sprintf("rot%d+", i), fmt.Sprintf("rot%d-", i))
	}
	size := 1
	for i := 0; i < n; i++ {
		size *= k
	}
	deg := 2 * n
	if k == 2 {
		deg = n
	}
	return NucleusSpec{
		Nuc:      core.Nucleus{Name: fmt.Sprintf("C(%d,%d)", k, n), Seed: seed, Gens: gens, GenNames: names},
		Size:     size,
		Degree:   deg,
		Diameter: n * (k / 2),
		Short:    fmt.Sprintf("C(%d,%d)", k, n),
		// Rotating a group of distinct symbols still yields exactly k
		// states per group, so the distinct-seed conversion is safe.
		DistinctSeedSafe: true,
	}
}

// NucleusGHC returns the generalized hypercube of Bhuyan and Agrawal as a
// nucleus: one marked group per coordinate; the generators rotate a group
// by any amount, so each coordinate induces a complete graph. The paper's
// Section 4 notes that GHC nuclei of proper size and dimension yield
// super-IP graphs with optimal diameters.
func NucleusGHC(radices ...int) NucleusSpec {
	total := 0
	for _, r := range radices {
		total += r
	}
	seed := make(symbols.Label, 0, total)
	for _, r := range radices {
		seed = append(seed, markedGroup(r)...)
	}
	var gens []perm.Perm
	var names []string
	offset := 0
	size, deg := 1, 0
	for gi, r := range radices {
		for s := 1; s < r; s++ {
			g := perm.Identity(total)
			rot := perm.Rotation(r, s)
			for t := 0; t < r; t++ {
				g[offset+t] = offset + rot[t]
			}
			gens = append(gens, g)
			names = append(names, fmt.Sprintf("rot%d by %d", gi, s))
		}
		offset += r
		size *= r
		deg += r - 1
	}
	return NucleusSpec{
		Nuc:              core.Nucleus{Name: fmt.Sprintf("GHC%v", radices), Seed: seed, Gens: gens, GenNames: names},
		Size:             size,
		Degree:           deg,
		Diameter:         len(radices),
		Short:            fmt.Sprintf("GHC%v", radices),
		DistinctSeedSafe: true,
	}
}

// markedGroup returns a k-symbol group whose rotation offset is observable:
// symbol 2 at the first position and 1 elsewhere, so the k rotations of the
// group are k distinct states encoding one radix-k digit.
func markedGroup(k int) symbols.Label {
	g := symbols.ConstantSeed(k, 1)
	g[0] = 2
	return g
}
