package superip

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/perm"
)

// Kind identifies a super-generator family from Section 3.
type Kind int

const (
	// KindHSN uses transposition super-generators T(2,m)..T(l,m) — the
	// hierarchical swapped networks of Section 3.2.
	KindHSN Kind = iota
	// KindRingCN uses cyclic-shift super-generators {L, R} — the basic
	// (ring) cyclic-shift networks of Section 3.3.
	KindRingCN
	// KindCompleteCN uses all cyclic shifts L(1,m)..L(l-1,m) — complete
	// cyclic-shift networks.
	KindCompleteCN
	// KindDirectedCN uses the single shift {L} — directed cyclic-shift
	// networks.
	KindDirectedCN
	// KindSuperFlip uses flip super-generators F(2,m)..F(l,m) — the
	// super-flip networks of Section 3.4.
	KindSuperFlip
)

func (k Kind) String() string {
	switch k {
	case KindHSN:
		return "HSN"
	case KindRingCN:
		return "ring-CN"
	case KindCompleteCN:
		return "CN"
	case KindDirectedCN:
		return "dir-CN"
	case KindSuperFlip:
		return "SFN"
	}
	return "?"
}

// Net is a concrete super-IP network: a family kind, level count l, and
// nucleus, together with analytic statistics. It implements networks.Spec.
type Net struct {
	Kind      Kind
	L         int
	Nucleus   NucleusSpec
	Symmetric bool
	// Workers is passed through to core.BuildOptions.Workers: 1 forces the
	// sequential enumerator, n > 1 the n-worker parallel one, 0 the default
	// (core.DefaultWorkers, then GOMAXPROCS). The built graph is identical
	// for every setting.
	Workers int
	// Observe is passed through to core.BuildOptions.Observe: per-level
	// instrumentation of the level-synchronous enumerator (phase wall
	// times, frontier sizes, intern occupancy, arena bytes). Setting it
	// routes the build through the parallel enumerator even at Workers ==
	// 1; the output stays byte-identical.
	Observe func(core.LevelStats)

	s *core.SuperIP // lazily assembled
}

// New constructs a super-IP network of the given kind.
func New(kind Kind, l int, nucleus NucleusSpec, symmetric bool) *Net {
	return &Net{Kind: kind, L: l, Nucleus: nucleus, Symmetric: symmetric}
}

// HSN returns the hierarchical swapped network HSN(l;G).
func HSN(l int, nucleus NucleusSpec) *Net { return New(KindHSN, l, nucleus, false) }

// RingCN returns the basic (ring) cyclic-shift network ring-CN(l;G).
func RingCN(l int, nucleus NucleusSpec) *Net { return New(KindRingCN, l, nucleus, false) }

// CompleteCN returns the complete cyclic-shift network CN(l;G).
func CompleteCN(l int, nucleus NucleusSpec) *Net { return New(KindCompleteCN, l, nucleus, false) }

// DirectedCN returns the directed cyclic-shift network.
func DirectedCN(l int, nucleus NucleusSpec) *Net { return New(KindDirectedCN, l, nucleus, false) }

// SuperFlip returns the super-flip network based on G.
func SuperFlip(l int, nucleus NucleusSpec) *Net { return New(KindSuperFlip, l, nucleus, false) }

// RCC returns the recursively connected complete network RCC(l; K_m),
// realized — per the paper's grouping of RCC with HSN in Corollary 4.2 —
// as the transposition super-IP graph over the complete-graph nucleus.
func RCC(l, m int) *Net { return New(KindHSN, l, NucleusComplete(m), false) }

// SymmetricVariant returns the symmetric (distinct-seed) variant of n per
// Section 3.5. It panics if the nucleus does not survive the distinct-seed
// conversion (one-hot or rotation-pattern encodings like K_k, Petersen, or
// shuffle-exchange nuclei change their state space when symbols become
// distinct, so the analytic laws would silently break).
func (n *Net) SymmetricVariant() *Net {
	if !n.Nucleus.DistinctSeedSafe {
		panic(fmt.Sprintf("superip: nucleus %s does not support the symmetric variant "+
			"(distinct seed changes its state space)", n.Nucleus.Short))
	}
	return New(n.Kind, n.L, n.Nucleus, true)
}

// SuperGens returns the super-generator set of the family.
func (n *Net) SuperGens() ([]perm.Perm, []string) {
	m := n.Nucleus.Nuc.M()
	l := n.L
	var gens []perm.Perm
	var names []string
	switch n.Kind {
	case KindHSN:
		for i := 1; i < l; i++ {
			gens = append(gens, perm.BlockTransposition(l, m, 0, i))
			names = append(names, fmt.Sprintf("T(%d)", i+1))
		}
	case KindRingCN:
		gens = append(gens, perm.BlockLeftShift(l, m, 1), perm.BlockRightShift(l, m, 1))
		names = append(names, "L", "R")
	case KindCompleteCN:
		for i := 1; i < l; i++ {
			gens = append(gens, perm.BlockLeftShift(l, m, i))
			names = append(names, fmt.Sprintf("L%d", i))
		}
	case KindDirectedCN:
		gens = append(gens, perm.BlockLeftShift(l, m, 1))
		names = append(names, "L")
	case KindSuperFlip:
		for i := 2; i <= l; i++ {
			gens = append(gens, perm.BlockFlip(l, m, i))
			names = append(names, fmt.Sprintf("F(%d)", i))
		}
	}
	return gens, names
}

// Super returns (assembling lazily) the underlying core.SuperIP.
func (n *Net) Super() *core.SuperIP {
	if n.s == nil {
		gens, names := n.SuperGens()
		n.s = &core.SuperIP{
			Name:          n.Name(),
			L:             n.L,
			Nucleus:       n.Nucleus.Nuc,
			SuperGens:     gens,
			SuperGenNames: names,
			Symmetric:     n.Symmetric,
		}
	}
	return n.s
}

// Name returns e.g. "HSN(3;Q4)" or "sym-CN(3;Q4)".
func (n *Net) Name() string {
	prefix := ""
	if n.Symmetric {
		prefix = "sym-"
	}
	return fmt.Sprintf("%s%s(%d;%s)", prefix, n.Kind, n.L, n.Nucleus.Short)
}

// Arrangements returns the number of reachable super-symbol orderings:
// l! for HSN and super-flip (l >= 2), l for the cyclic-shift families.
func (n *Net) Arrangements() int {
	switch n.Kind {
	case KindHSN, KindSuperFlip:
		if n.Kind == KindSuperFlip && n.L == 2 {
			return 2
		}
		f := 1
		for i := 2; i <= n.L; i++ {
			f *= i
		}
		return f
	default:
		return n.L
	}
}

// N returns the node count: M^l, times the arrangement count for symmetric
// variants (Theorem 3.2 and Section 3.5).
func (n *Net) N() int {
	size := 1
	for i := 0; i < n.L; i++ {
		size *= n.Nucleus.Size
	}
	if n.Symmetric {
		size *= n.Arrangements()
	}
	return size
}

// SuperDegree returns the maximum number of off-module links per node when
// each nucleus occupies one module (Section 5.3): the number of distinct
// non-trivial super-generator images.
func (n *Net) SuperDegree() int {
	switch n.Kind {
	case KindHSN, KindCompleteCN, KindSuperFlip:
		return n.L - 1
	case KindRingCN:
		if n.L == 2 {
			return 1
		}
		return 2
	case KindDirectedCN:
		return 1
	}
	return 0
}

// Degree returns the maximum node degree: nucleus degree plus the
// super-generator contribution.
func (n *Net) Degree() int { return n.Nucleus.Degree + n.SuperDegree() }

// T returns the covering-schedule parameter t of Theorem 4.1, computed
// exactly from the block-level super-generators (t = l-1 for every family
// here; the computation is retained as a cross-check).
func (n *Net) T() int {
	sched, err := n.Super().MinCoverSchedule()
	if err != nil {
		panic(err)
	}
	return sched.T()
}

// TSym returns t_S of Theorem 4.3 for the symmetric variant.
func (n *Net) TSym() int {
	t, err := n.Super().TSym()
	if err != nil {
		panic(err)
	}
	return t
}

// Diameter returns the network diameter: l*D_G + t (Theorem 4.1) for plain
// networks and l*D_G + t_S (Theorem 4.3) for symmetric ones, using the
// nucleus's analytic diameter.
func (n *Net) Diameter() int {
	t := n.L - 1 // Section 4: t = l-1 for all the families of Section 3
	if n.Symmetric {
		t = n.TSym()
	}
	return n.L*n.Nucleus.Diameter + t
}

// IDiameter returns the inter-cluster diameter (Section 5.2): the maximum
// number of off-module transmissions for any route, which equals t (resp.
// t_S) under nucleus-per-module packing.
func (n *Net) IDiameter() int {
	if n.Symmetric {
		return n.TSym()
	}
	return n.L - 1
}

// Build realizes the network (refusing absurdly large instances).
func (n *Net) Build() (*graph.Graph, error) {
	g, _, err := n.BuildWithIndex()
	return g, err
}

// BuildWithIndex realizes the network and returns the label index too.
func (n *Net) BuildWithIndex() (*graph.Graph, *core.Index, error) {
	if n.N() > 1<<21 {
		return nil, nil, fmt.Errorf("superip: %s with %d nodes is too large to build", n.Name(), n.N())
	}
	return n.Super().Build(core.BuildOptions{Workers: n.Workers, Observe: n.Observe})
}

// Router returns a Theorem 4.1/4.3 router for the network.
func (n *Net) Router() (*core.Router, error) { return core.NewRouter(n.Super()) }

// MacroStar returns the macro-star network MS(l;S_n) of Yeh and Varvarigos
// (cited in the paper's Section 1 as an efficient low-degree alternative to
// star graphs): in super-IP terms, the transposition super-generator family
// over a star-graph nucleus. Its node degree (n-1) + (l-1) is far below the
// degree of a star graph of comparable size.
func MacroStar(l, n int) *Net { return New(KindHSN, l, NucleusStar(n), false) }

// HSE returns an l-level hierarchical shuffle-exchange network, realized as
// the transposition super-IP graph over a shuffle-exchange nucleus; the
// paper classifies Cypher and Sanz's HSE among the super-IP graphs.
func HSE(l, n int) *Net { return New(KindHSN, l, NucleusShuffleExchange(n), false) }

// NucleusFromNet turns a built super-IP network into a nucleus, enabling
// recursive constructions: the inner network's full generator set (nucleus
// generators plus super-generators) becomes the nucleus generator set of
// the outer level. Not distinct-seed-safe (the inner repeated-seed state
// space is part of the construction).
func NucleusFromNet(inner *Net) NucleusSpec {
	ip := inner.Super().IPGraph()
	return NucleusSpec{
		Nuc: core.Nucleus{
			Name:     inner.Name(),
			Seed:     ip.Seed,
			Gens:     ip.Gens,
			GenNames: ip.GenNames,
		},
		Size:     inner.N(),
		Degree:   inner.Degree(),
		Diameter: inner.Diameter(),
		Short:    inner.Name(),
	}
}

// RHSN returns the recursive hierarchical swapped network of the paper's
// reference [26] (grouped with HSN in Corollary 4.2): an HSN whose nucleus
// is itself an HSN. outer and inner are the level counts of the two tiers.
func RHSN(outer, inner int, nucleus NucleusSpec) *Net {
	return HSN(outer, NucleusFromNet(HSN(inner, nucleus)))
}
