package superip

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/metrics"
)

// randomNet draws a random small super-IP instance from the family and
// nucleus libraries.
func randomNet(r *rand.Rand) *Net {
	nuclei := []NucleusSpec{
		NucleusHypercube(2),
		NucleusHypercube(3),
		NucleusComplete(3),
		NucleusComplete(4),
		NucleusFoldedHypercube(2),
		NucleusKAryCube(3, 1),
	}
	kinds := []Kind{KindHSN, KindRingCN, KindCompleteCN, KindSuperFlip}
	l := 2 + r.Intn(3)
	nuc := nuclei[r.Intn(len(nuclei))]
	kind := kinds[r.Intn(len(kinds))]
	sym := r.Intn(4) == 0 && l <= 3 && nuc.DistinctSeedSafe // symmetric variants are bigger; keep small
	return New(kind, l, nuc, sym)
}

// TestPropertySizeLaw draws random instances and checks Theorem 3.2 / the
// Section 3.5 size law against the actual enumeration.
func TestPropertySizeLaw(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		net := randomNet(r)
		if net.N() > 1<<15 {
			return true // skip very large draws
		}
		g, err := net.Build()
		if err != nil {
			t.Logf("%s: %v", net.Name(), err)
			return false
		}
		return g.N() == net.N()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyDiameterLaw checks Theorem 4.1/4.3 on random instances.
func TestPropertyDiameterLaw(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		net := randomNet(r)
		if net.N() > 1<<13 {
			return true
		}
		g, err := net.Build()
		if err != nil {
			return false
		}
		st := g.Symmetrized().AllPairs()
		if !st.Connected {
			t.Logf("%s disconnected", net.Name())
			return false
		}
		if int(st.Diameter) != net.Diameter() {
			t.Logf("%s: BFS diameter %d, analytic %d", net.Name(), st.Diameter, net.Diameter())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyRouterValidity routes random pairs on random instances and
// checks validity and the Theorem 4.1 hop bound.
func TestPropertyRouterValidity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		net := randomNet(r)
		if net.N() > 1<<12 {
			return true
		}
		g, ix, err := net.BuildWithIndex()
		if err != nil {
			return false
		}
		router, err := net.Router()
		if err != nil {
			t.Logf("%s: router: %v", net.Name(), err)
			return false
		}
		bound := net.Diameter()
		for trial := 0; trial < 20; trial++ {
			u := int32(r.Intn(ix.N()))
			v := int32(r.Intn(ix.N()))
			path, err := router.Route(ix.Label(u), ix.Label(v))
			if err != nil {
				t.Logf("%s: route: %v", net.Name(), err)
				return false
			}
			if path.Hops() > bound {
				t.Logf("%s: %d hops > bound %d", net.Name(), path.Hops(), bound)
				return false
			}
			if !path.Labels[len(path.Labels)-1].Equal(ix.Label(v)) {
				t.Logf("%s: route misses destination", net.Name())
				return false
			}
			for i := 0; i+1 < len(path.Labels); i++ {
				a, b := ix.ID(path.Labels[i]), ix.ID(path.Labels[i+1])
				if a < 0 || b < 0 || !g.HasEdge(a, b) {
					t.Logf("%s: route step %d not an edge", net.Name(), i)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyIDiameterLaw checks that the measured inter-cluster diameter
// under nucleus packing equals the analytic t (or t_S) on random instances.
func TestPropertyIDiameterLaw(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		net := randomNet(r)
		if net.N() > 1<<12 || net.Kind == KindDirectedCN {
			return true
		}
		g, ix, err := net.BuildWithIndex()
		if err != nil {
			return false
		}
		p := metrics.NucleusPartition(ix, net.Nucleus.Nuc.M())
		st := metrics.IStats(g, p)
		if int(st.Diameter) != net.IDiameter() {
			t.Logf("%s: I-diameter %d, analytic %d", net.Name(), st.Diameter, net.IDiameter())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
