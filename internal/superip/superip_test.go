package superip

import (
	"testing"

	"repro/internal/core"
	"repro/internal/networks"
)

// checkNet builds the network and verifies every analytic statistic.
func checkNet(t *testing.T, n *Net) {
	t.Helper()
	g, err := n.Build()
	if err != nil {
		t.Fatalf("%s: %v", n.Name(), err)
	}
	if g.N() != n.N() {
		t.Fatalf("%s: built %d nodes, analytic %d", n.Name(), g.N(), n.N())
	}
	if g.MaxDegree() != n.Degree() {
		t.Fatalf("%s: built degree %d, analytic %d", n.Name(), g.MaxDegree(), n.Degree())
	}
	st := g.Symmetrized().AllPairs()
	if !st.Connected {
		t.Fatalf("%s: disconnected", n.Name())
	}
	var diam int
	if g.Directed {
		diam = int(g.AllPairs().Diameter) // directed diameter
	} else {
		diam = int(st.Diameter)
	}
	if diam != n.Diameter() {
		t.Fatalf("%s: built diameter %d, analytic %d", n.Name(), diam, n.Diameter())
	}
	// The covering-schedule computation must agree with t = l-1 (plain).
	if !n.Symmetric && n.T() != n.L-1 {
		t.Fatalf("%s: t = %d, want %d", n.Name(), n.T(), n.L-1)
	}
}

func TestHSNFamilies(t *testing.T) {
	checkNet(t, HSN(2, NucleusHypercube(2)))
	checkNet(t, HSN(3, NucleusHypercube(2)))
	checkNet(t, HSN(4, NucleusHypercube(2)))
	checkNet(t, HSN(2, NucleusHypercube(3)))
	checkNet(t, HSN(2, NucleusHypercube(4)))
	checkNet(t, HSN(3, NucleusHypercube(3)))
	checkNet(t, HSN(2, NucleusFoldedHypercube(3)))
	checkNet(t, HSN(2, NucleusPetersen()))
	checkNet(t, HSN(3, NucleusComplete(4)))
	checkNet(t, HSN(2, NucleusStar(4)))
}

func TestRingCNFamilies(t *testing.T) {
	checkNet(t, RingCN(2, NucleusHypercube(2)))
	checkNet(t, RingCN(3, NucleusHypercube(2)))
	checkNet(t, RingCN(4, NucleusHypercube(2)))
	checkNet(t, RingCN(5, NucleusHypercube(2)))
	checkNet(t, RingCN(3, NucleusHypercube(4)))
	checkNet(t, RingCN(3, NucleusFoldedHypercube(4)))
	checkNet(t, RingCN(3, NucleusPetersen()))
}

func TestCompleteCNFamilies(t *testing.T) {
	checkNet(t, CompleteCN(2, NucleusHypercube(2)))
	checkNet(t, CompleteCN(3, NucleusHypercube(2)))
	checkNet(t, CompleteCN(4, NucleusHypercube(2)))
	checkNet(t, CompleteCN(3, NucleusHypercube(4)))
	checkNet(t, CompleteCN(3, NucleusFoldedHypercube(4)))
	checkNet(t, CompleteCN(2, NucleusPetersen()))
}

func TestSuperFlipFamilies(t *testing.T) {
	checkNet(t, SuperFlip(2, NucleusHypercube(2)))
	checkNet(t, SuperFlip(3, NucleusHypercube(2)))
	checkNet(t, SuperFlip(4, NucleusHypercube(2)))
	checkNet(t, SuperFlip(3, NucleusHypercube(3)))
}

func TestDirectedCN(t *testing.T) {
	checkNet(t, DirectedCN(3, NucleusHypercube(2)))
	checkNet(t, DirectedCN(4, NucleusHypercube(2)))
}

func TestRCC(t *testing.T) {
	r := RCC(3, 4)
	checkNet(t, r)
	if r.N() != 64 {
		t.Fatalf("RCC(3;K4) has %d nodes", r.N())
	}
	// Corollary 4.2 for RCC: (D_G+1)*l - 1 = 2*3 - 1 = 5.
	if r.Diameter() != 5 {
		t.Fatalf("RCC(3;K4) diameter = %d, want 5", r.Diameter())
	}
}

func TestSymmetricVariants(t *testing.T) {
	checkNet(t, HSN(2, NucleusHypercube(2)).SymmetricVariant())
	checkNet(t, HSN(3, NucleusHypercube(2)).SymmetricVariant())
	checkNet(t, RingCN(3, NucleusHypercube(2)).SymmetricVariant())
	checkNet(t, CompleteCN(3, NucleusHypercube(2)).SymmetricVariant())
	checkNet(t, SuperFlip(2, NucleusHypercube(2)).SymmetricVariant())
}

func TestSymmetricSizeMultipliers(t *testing.T) {
	h := HSN(3, NucleusHypercube(2))
	if h.SymmetricVariant().N() != 6*h.N() {
		t.Fatalf("symmetric HSN(3) must have 3! times more nodes")
	}
	c := CompleteCN(4, NucleusHypercube(2))
	if c.SymmetricVariant().N() != 4*c.N() {
		t.Fatalf("symmetric CN(4) must have 4 times more nodes")
	}
}

func TestNucleusSpecsMatchBuilds(t *testing.T) {
	for _, spec := range []NucleusSpec{
		NucleusHypercube(2),
		NucleusHypercube(4),
		NucleusFoldedHypercube(3),
		NucleusFoldedHypercube(4),
		NucleusComplete(5),
		NucleusPetersen(),
		NucleusStar(4),
		NucleusShuffleExchange(3),
		NucleusShuffleExchange(4),
	} {
		g, _, err := spec.Nuc.IPGraph().Build(core0())
		if err != nil {
			t.Fatalf("%s: %v", spec.Short, err)
		}
		if g.N() != spec.Size {
			t.Fatalf("%s: size %d, analytic %d", spec.Short, g.N(), spec.Size)
		}
		if g.MaxDegree() != spec.Degree {
			t.Fatalf("%s: degree %d, analytic %d", spec.Short, g.MaxDegree(), spec.Degree)
		}
		st := g.Symmetrized().AllPairs()
		if int(st.Diameter) != spec.Diameter {
			t.Fatalf("%s: diameter %d, analytic %d", spec.Short, st.Diameter, spec.Diameter)
		}
	}
}

func TestHSNDegreeValues(t *testing.T) {
	// Section 5.3: off-module links per node for an l-level HSN,
	// complete-CN, or super-flip network are l-1; 1 or 2 for ring-CN.
	if HSN(4, NucleusHypercube(4)).SuperDegree() != 3 {
		t.Fatal("HSN(4) super-degree must be 3")
	}
	if RingCN(2, NucleusHypercube(4)).SuperDegree() != 1 {
		t.Fatal("ring-CN(2) super-degree must be 1")
	}
	if RingCN(5, NucleusHypercube(4)).SuperDegree() != 2 {
		t.Fatal("ring-CN(5) super-degree must be 2")
	}
	if CompleteCN(5, NucleusHypercube(4)).SuperDegree() != 4 {
		t.Fatal("complete-CN(5) super-degree must be 4")
	}
	if DirectedCN(5, NucleusHypercube(4)).SuperDegree() != 1 {
		t.Fatal("directed CN super-degree must be 1")
	}
}

func TestIDiameterAnalytics(t *testing.T) {
	if HSN(4, NucleusHypercube(4)).IDiameter() != 3 {
		t.Fatal("HSN(4) I-diameter must be l-1 = 3")
	}
	if RingCN(3, NucleusHypercube(4)).IDiameter() != 2 {
		t.Fatal("ring-CN(3) I-diameter must be 2")
	}
	s := HSN(2, NucleusHypercube(2)).SymmetricVariant()
	if s.IDiameter() != 2 {
		t.Fatalf("symmetric HSN(2) I-diameter = %d, want t_S = 2", s.IDiameter())
	}
}

func TestBuildTooLarge(t *testing.T) {
	big := CompleteCN(5, NucleusHypercube(7))
	if _, err := big.Build(); err == nil {
		t.Fatal("expected size refusal for CN(5;Q7)")
	}
	// Analytics still work at any size.
	if big.N() != 1<<35 {
		t.Fatalf("CN(5;Q7) analytic size = %d", big.N())
	}
	if big.Diameter() != 5*7+4 {
		t.Fatalf("CN(5;Q7) analytic diameter = %d", big.Diameter())
	}
}

func TestQuotientCN(t *testing.T) {
	q := QuotientCN{L: 2, A: 4, B: 2}
	g, err := q.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != q.N() || g.N() != 16 {
		t.Fatalf("QCN(2;Q4/Q2) has %d nodes, want 16", g.N())
	}
	st := g.AllPairs()
	if !st.Connected {
		t.Fatal("quotient disconnected")
	}
	// The quotient never has a larger diameter than the base network.
	base := CompleteCN(2, NucleusHypercube(4))
	if int(st.Diameter) > base.Diameter() {
		t.Fatalf("quotient diameter %d exceeds base %d", st.Diameter, base.Diameter())
	}
	if q.LogicalPerPhysical() != 16 {
		t.Fatalf("logical per physical = %d", q.LogicalPerPhysical())
	}
	if q.UnderlyingN() != 256 {
		t.Fatalf("underlying = %d", q.UnderlyingN())
	}
	if _, err := (QuotientCN{L: 2, A: 3, B: 3}).Build(); err == nil {
		t.Fatal("B >= A must fail")
	}
	if _, err := (QuotientCN{L: 4, A: 7, B: 3}).Build(); err == nil {
		t.Fatal("oversized underlying network must fail")
	}
}

func TestRouterAccess(t *testing.T) {
	n := HSN(2, NucleusHypercube(2))
	r, err := n.Router()
	if err != nil {
		t.Fatal(err)
	}
	_, ix, err := n.BuildWithIndex()
	if err != nil {
		t.Fatal(err)
	}
	path, err := r.Route(ix.Label(0), ix.Label(int32(ix.N()-1)))
	if err != nil {
		t.Fatal(err)
	}
	if path.Hops() > n.Diameter() {
		t.Fatalf("route %d hops exceeds diameter %d", path.Hops(), n.Diameter())
	}
}

func TestNames(t *testing.T) {
	if got := HSN(3, NucleusHypercube(4)).Name(); got != "HSN(3;Q4)" {
		t.Fatalf("name = %q", got)
	}
	if got := RingCN(3, NucleusFoldedHypercube(4)).Name(); got != "ring-CN(3;FQ4)" {
		t.Fatalf("name = %q", got)
	}
	if got := CompleteCN(2, NucleusHypercube(4)).SymmetricVariant().Name(); got != "sym-CN(2;Q4)" {
		t.Fatalf("name = %q", got)
	}
	if got := (QuotientCN{L: 3, A: 7, B: 3}).Name(); got != "QCN(3;Q7/Q3)" {
		t.Fatalf("name = %q", got)
	}
}

// core0 returns default build options (helper to avoid importing core in
// every call site).
func core0() core.BuildOptions { return core.BuildOptions{} }

func TestKAryAndGHCNuclei(t *testing.T) {
	for _, spec := range []NucleusSpec{
		NucleusKAryCube(3, 2),
		NucleusKAryCube(4, 2),
		NucleusKAryCube(5, 1),
		NucleusKAryCube(2, 3),
		NucleusGHC(4, 4),
		NucleusGHC(3, 3, 3),
		NucleusGHC(2, 8),
		NucleusGHC(16),
	} {
		g, _, err := spec.Nuc.IPGraph().Build(core0())
		if err != nil {
			t.Fatalf("%s: %v", spec.Short, err)
		}
		if g.N() != spec.Size {
			t.Fatalf("%s: size %d, analytic %d", spec.Short, g.N(), spec.Size)
		}
		if g.MaxDegree() != spec.Degree {
			t.Fatalf("%s: degree %d, analytic %d", spec.Short, g.MaxDegree(), spec.Degree)
		}
		st := g.Symmetrized().AllPairs()
		if int(st.Diameter) != spec.Diameter {
			t.Fatalf("%s: diameter %d, analytic %d", spec.Short, st.Diameter, spec.Diameter)
		}
	}
}

func TestSuperIPOverKAryAndGHCNuclei(t *testing.T) {
	// The paper (Section 4): GHC nuclei of proper size yield super-IP
	// graphs with optimal diameters. These instances exercise the full
	// Theorem 4.1 pipeline on non-hypercube nuclei.
	checkNet(t, HSN(2, NucleusKAryCube(4, 2)))
	checkNet(t, RingCN(3, NucleusKAryCube(3, 2)))
	checkNet(t, HSN(2, NucleusGHC(4, 4)))
	checkNet(t, CompleteCN(2, NucleusGHC(3, 3, 3)))
	checkNet(t, HSN(3, NucleusGHC(2, 8)))
}

func TestGHCNucleusIsGeneralizedHypercube(t *testing.T) {
	// The GHC nucleus state graph must be isomorphic to the directly built
	// generalized hypercube: same size, regular with the same degree, same
	// diameter and distance distribution.
	spec := NucleusGHC(3, 4)
	g, _, err := spec.Nuc.IPGraph().Build(core0())
	if err != nil {
		t.Fatal(err)
	}
	direct, err := networks.GeneralizedHypercube{Radices: []int{3, 4}}.Build()
	if err != nil {
		t.Fatal(err)
	}
	gs, ds := g.AllPairs(), direct.AllPairs()
	if g.N() != direct.N() || g.MaxDegree() != direct.MaxDegree() ||
		gs.Diameter != ds.Diameter || gs.AvgDistance != ds.AvgDistance {
		t.Fatalf("GHC nucleus (N=%d deg=%d diam=%d avg=%v) != direct GHC (N=%d deg=%d diam=%d avg=%v)",
			g.N(), g.MaxDegree(), gs.Diameter, gs.AvgDistance,
			direct.N(), direct.MaxDegree(), ds.Diameter, ds.AvgDistance)
	}
}

func TestMacroStar(t *testing.T) {
	// MS(2;S3): 36 nodes, degree (3-1)+(2-1) = 3, diameter 2*3+1 = 7 via
	// Theorem 4.1 (D_G = floor(3*2/2) = 3, t = 1).
	ms := MacroStar(2, 3)
	checkNet(t, ms)
	if ms.N() != 36 || ms.Degree() != 3 || ms.Diameter() != 7 {
		t.Fatalf("MS(2;S3): N=%d deg=%d diam=%d", ms.N(), ms.Degree(), ms.Diameter())
	}
	// Degree advantage over a comparable star graph: the 5-star would need
	// degree 4 for 120 nodes; MS(2;S4)'s 576 nodes cost only degree 4.
	ms4 := MacroStar(2, 4)
	checkNet(t, ms4)
	if ms4.Degree() != 4 {
		t.Fatalf("MS(2;S4) degree = %d", ms4.Degree())
	}
}

func TestHSE(t *testing.T) {
	h := HSE(2, 3)
	checkNet(t, h)
	if h.N() != 64 {
		t.Fatalf("HSE(2;SE3) N = %d, want 64", h.N())
	}
}

func TestSymmetricVariantSafety(t *testing.T) {
	// Symmetric variants of pattern-encoded nuclei are fine...
	checkNet(t, HSN(2, NucleusKAryCube(3, 1)).SymmetricVariant())
	// ...but one-hot nuclei must be rejected: a distinct seed changes the
	// nucleus state space (K4's one-hot IP graph becomes S4's transposition
	// Cayley graph).
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for symmetric variant over a one-hot nucleus")
		}
	}()
	RingCN(3, NucleusComplete(4)).SymmetricVariant()
}

func TestRHSN(t *testing.T) {
	// RHSN(2,2;Q2): an HSN(2;.) over the HSN(2;Q2) nucleus. Theorem 4.1
	// applies recursively: N = 16^2 = 256, D_G = 5, diameter = 2*5+1 = 11.
	r := RHSN(2, 2, NucleusHypercube(2))
	checkNet(t, r)
	if r.N() != 256 {
		t.Fatalf("RHSN N = %d, want 256", r.N())
	}
	if r.Diameter() != 11 {
		t.Fatalf("RHSN diameter = %d, want 11", r.Diameter())
	}
	// Three tiers: HSN(2; HSN(2; HSN(2;Q2))) has 16^4... too large; use a
	// smaller nucleus: RHSN over K3.
	r2 := HSN(2, NucleusFromNet(RHSN(2, 2, NucleusComplete(3))))
	if r2.N() != (3*3*3*3)*(3*3*3*3) {
		t.Fatalf("three-tier N = %d", r2.N())
	}
	g, err := r2.Build()
	if err != nil {
		t.Fatal(err)
	}
	st := g.AllPairs()
	if int(st.Diameter) != r2.Diameter() {
		t.Fatalf("three-tier diameter %d, analytic %d", st.Diameter, r2.Diameter())
	}
}

func TestRHSNRouter(t *testing.T) {
	// The Theorem 4.1 router works unchanged on the recursive construction.
	r := RHSN(2, 2, NucleusHypercube(2))
	g, ix, err := r.BuildWithIndex()
	if err != nil {
		t.Fatal(err)
	}
	router, err := r.Router()
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 100; trial++ {
		u := int32((trial * 37) % ix.N())
		v := int32((trial * 151) % ix.N())
		path, err := router.Route(ix.Label(u), ix.Label(v))
		if err != nil {
			t.Fatal(err)
		}
		if path.Hops() > r.Diameter() {
			t.Fatalf("route %d hops exceeds diameter %d", path.Hops(), r.Diameter())
		}
		for i := 0; i+1 < len(path.Labels); i++ {
			a, b := ix.ID(path.Labels[i]), ix.ID(path.Labels[i+1])
			if a < 0 || b < 0 || !g.HasEdge(a, b) {
				t.Fatalf("route step %d not an edge", i)
			}
		}
	}
}
