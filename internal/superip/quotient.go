package superip

import (
	"fmt"

	"repro/internal/graph"
)

// QuotientCN is the quotient cyclic-shift network QCN(l; Q_a/Q_b) of the
// paper's Fig. 3: the complete cyclic-shift network CN(l;Q_a) with each
// Q_b-subcube merged into a single node. Merging is performed per
// super-symbol: two CN nodes are identified iff every super-symbol agrees on
// its high (a-b) cube dimensions — i.e. the low b dimensions of every
// nucleus coordinate are forgotten. Each physical node then hosts 2^(b*l)
// logical routers, and the off-module transmissions required for routing
// drop accordingly (the paper's §6 note that "a quotient variant minimizes
// the required off-module data transmissions").
//
// The exact quotient rule is defined in the companion thesis [28], which is
// not publicly available; this reconstruction is the natural reading of
// "obtained by merging each 3-cube in CN(l;Q7) into a node" and preserves
// the qualitative behaviour reported in Fig. 3 (see EXPERIMENTS.md).
type QuotientCN struct {
	L    int
	A, B int  // nucleus Q_A, merged subcubes Q_B
	Kind Kind // which CN family to quotient (default KindCompleteCN)
}

// Name returns e.g. "QCN(3;Q7/Q3)".
func (q QuotientCN) Name() string {
	return fmt.Sprintf("QCN(%d;Q%d/Q%d)", q.L, q.A, q.B)
}

func (q QuotientCN) kind() Kind {
	return q.Kind
}

// N returns the quotient node count: 2^((A-B)*L).
func (q QuotientCN) N() int {
	return 1 << uint((q.A-q.B)*q.L)
}

// UnderlyingN returns the node count of the un-merged CN(l;Q_A).
func (q QuotientCN) UnderlyingN() int { return 1 << uint(q.A*q.L) }

// LogicalPerPhysical returns how many logical CN nodes each quotient node
// hosts: 2^(B*L).
func (q QuotientCN) LogicalPerPhysical() int { return 1 << uint(q.B*q.L) }

// Build constructs the quotient graph by building CN(l;Q_A) and contracting
// node classes.
func (q QuotientCN) Build() (*graph.Graph, error) {
	if q.B < 0 || q.B >= q.A {
		return nil, fmt.Errorf("superip: need 0 <= B < A, got A=%d B=%d", q.A, q.B)
	}
	if q.UnderlyingN() > 1<<21 {
		return nil, fmt.Errorf("superip: underlying CN(%d;Q%d) too large to build", q.L, q.A)
	}
	base := New(q.kind(), q.L, NucleusHypercube(q.A), false)
	g, ix, err := base.BuildWithIndex()
	if err != nil {
		return nil, err
	}
	// Class of a node: per super-symbol, keep only the high A-B pair bits.
	// In the pair encoding, nucleus coordinate bit j of block c is pair
	// (c*2A + 2j, c*2A + 2j + 1); bit value 1 iff the pair is swapped.
	// A pair in seed order ("12") encodes bit 0; a swapped pair ("21")
	// encodes bit 1.
	classOf := func(u int32) int32 {
		label := ix.Label(u)
		cls := 0
		for c := 0; c < q.L; c++ {
			for j := q.B; j < q.A; j++ {
				cls <<= 1
				if label[c*2*q.A+2*j] > label[c*2*q.A+2*j+1] {
					cls |= 1
				}
			}
		}
		return int32(cls)
	}
	return graph.Quotient(g, q.N(), classOf), nil
}

// NucleusPartitionSize returns the number of quotient nodes per module when
// each (merged) nucleus occupies one module: 2^(A-B).
func (q QuotientCN) NucleusPartitionSize() int { return 1 << uint(q.A-q.B) }
