// Package perm implements index permutations, the building blocks of the
// index-permutation (IP) graph model of Yeh and Parhami (ICPP 1999).
//
// A Perm p of size k acts on a label x of k symbols by *index permutation*:
// the result y satisfies y[i] = x[p[i]]. This matches the paper's convention,
// where a generator such as the cycle (1,2) maps the label x1 x2 x3 ... to
// x2 x1 x3 ..., and the super-generator T(2,2n) maps the label to its second
// half followed by its first half.
//
// Positions are 0-based internally. The cycle-notation parser and printer use
// 1-based positions to match the paper's notation.
package perm

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Perm is an index permutation in "source" one-line notation: applying p to a
// label x yields y with y[i] = x[p[i]]. A valid Perm of size k contains each
// of 0..k-1 exactly once.
type Perm []int

// Identity returns the identity permutation on k positions.
func Identity(k int) Perm {
	p := make(Perm, k)
	for i := range p {
		p[i] = i
	}
	return p
}

// Validate reports whether p is a valid permutation (each index 0..len(p)-1
// appears exactly once).
func (p Perm) Validate() error {
	seen := make([]bool, len(p))
	for i, v := range p {
		if v < 0 || v >= len(p) {
			return fmt.Errorf("perm: position %d maps to out-of-range index %d", i, v)
		}
		if seen[v] {
			return fmt.Errorf("perm: index %d appears more than once", v)
		}
		seen[v] = true
	}
	return nil
}

// IsIdentity reports whether p is the identity permutation.
func (p Perm) IsIdentity() bool {
	for i, v := range p {
		if v != i {
			return false
		}
	}
	return true
}

// Clone returns a copy of p.
func (p Perm) Clone() Perm {
	q := make(Perm, len(p))
	copy(q, p)
	return q
}

// Equal reports whether p and q are the same permutation.
func (p Perm) Equal(q Perm) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Apply applies p to the label src, writing the permuted label to dst.
// dst and src must have length len(p) and must not alias.
func (p Perm) Apply(dst, src []byte) {
	if len(dst) != len(p) || len(src) != len(p) {
		panic("perm: Apply length mismatch")
	}
	for i, v := range p {
		dst[i] = src[v]
	}
}

// ApplyInts is Apply for integer-valued labels.
func (p Perm) ApplyInts(dst, src []int) {
	if len(dst) != len(p) || len(src) != len(p) {
		panic("perm: ApplyInts length mismatch")
	}
	for i, v := range p {
		dst[i] = src[v]
	}
}

// Permuted returns a fresh label equal to p applied to src.
func (p Perm) Permuted(src []byte) []byte {
	dst := make([]byte, len(src))
	p.Apply(dst, src)
	return dst
}

// Compose returns the permutation "p then q": applying the result to a label
// is the same as applying p first and then q.
//
// Derivation: y = p(x) has y[i] = x[p[i]]; z = q(y) has
// z[i] = y[q[i]] = x[p[q[i]]], so (p then q)[i] = p[q[i]].
func Compose(p, q Perm) Perm {
	if len(p) != len(q) {
		panic("perm: Compose size mismatch")
	}
	r := make(Perm, len(p))
	for i := range r {
		r[i] = p[q[i]]
	}
	return r
}

// Inverse returns the permutation that undoes p.
func (p Perm) Inverse() Perm {
	inv := make(Perm, len(p))
	for i, v := range p {
		inv[v] = i
	}
	return inv
}

// Power returns p applied n times (n may be negative, meaning the inverse
// applied -n times; n == 0 yields the identity).
func (p Perm) Power(n int) Perm {
	base := p
	if n < 0 {
		base = p.Inverse()
		n = -n
	}
	result := Identity(len(p))
	for ; n > 0; n >>= 1 {
		if n&1 == 1 {
			result = Compose(result, base)
		}
		base = Compose(base, base)
	}
	return result
}

// Order returns the order of p in the symmetric group: the least n >= 1 with
// p^n = identity. It is the LCM of the cycle lengths.
func (p Perm) Order() int {
	order := 1
	for _, c := range p.Cycles() {
		order = lcm(order, len(c))
	}
	return order
}

// Sign returns +1 for even permutations and -1 for odd permutations.
func (p Perm) Sign() int {
	sign := 1
	for _, c := range p.Cycles() {
		if len(c)%2 == 0 {
			sign = -sign
		}
	}
	return sign
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int) int { return a / gcd(a, b) * b }

// Cycles returns the cycle decomposition of p, excluding fixed points.
// Each cycle lists 0-based positions in symbol-movement order: the symbol at
// cycle[j] moves to cycle[j+1] (and the last entry's symbol moves to the
// first). This matches the convention of FromCycles and ParseCycles, so
// FromCycles(len(p), p.Cycles()...) reconstructs p.
func (p Perm) Cycles() [][]int {
	var cycles [][]int
	inv := p.Inverse()
	seen := make([]bool, len(p))
	for i := range p {
		if seen[i] || p[i] == i {
			seen[i] = true
			continue
		}
		var c []int
		for j := i; !seen[j]; j = inv[j] {
			seen[j] = true
			c = append(c, j)
		}
		cycles = append(cycles, c)
	}
	return cycles
}

// String renders p in 1-based cycle notation, e.g. "(1 2)(3 5 4)". The
// identity is rendered as "()".
func (p Perm) String() string {
	cycles := p.Cycles()
	if len(cycles) == 0 {
		return "()"
	}
	var b strings.Builder
	for _, c := range cycles {
		b.WriteByte('(')
		for j, v := range c {
			if j > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(strconv.Itoa(v + 1))
		}
		b.WriteByte(')')
	}
	return b.String()
}

// OneLine renders p in one-line notation, e.g. "[1 0 2]".
func (p Perm) OneLine() string {
	parts := make([]string, len(p))
	for i, v := range p {
		parts[i] = strconv.Itoa(v)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// ParseCycles parses 1-based cycle notation such as "(1 2)(3 4 5)" into a
// permutation on k positions. Whitespace and commas both separate entries
// within a cycle. Positions not mentioned are fixed points.
func ParseCycles(s string, k int) (Perm, error) {
	p := Identity(k)
	s = strings.TrimSpace(s)
	if s == "" || s == "()" {
		return p, nil
	}
	for len(s) > 0 {
		if s[0] != '(' {
			return nil, fmt.Errorf("perm: expected '(' at %q", s)
		}
		end := strings.IndexByte(s, ')')
		if end < 0 {
			return nil, errors.New("perm: unterminated cycle")
		}
		fields := strings.FieldsFunc(s[1:end], func(r rune) bool {
			return r == ' ' || r == ',' || r == '\t'
		})
		if len(fields) > 0 {
			cycle := make([]int, len(fields))
			for i, f := range fields {
				v, err := strconv.Atoi(f)
				if err != nil {
					return nil, fmt.Errorf("perm: bad cycle entry %q: %v", f, err)
				}
				if v < 1 || v > k {
					return nil, fmt.Errorf("perm: cycle entry %d out of range 1..%d", v, k)
				}
				cycle[i] = v - 1
			}
			if err := applyCycle(p, cycle); err != nil {
				return nil, err
			}
		}
		s = strings.TrimSpace(s[end+1:])
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// FromCycles builds a permutation on k positions from 0-based cycles.
func FromCycles(k int, cycles ...[]int) (Perm, error) {
	p := Identity(k)
	for _, c := range cycles {
		cc := make([]int, len(c))
		copy(cc, c)
		if err := applyCycle(p, cc); err != nil {
			return nil, err
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// applyCycle composes the cycle (c0 c1 ... cn) into p. The cycle moves the
// symbol at position c[j] to position c[j+1]... in the paper's convention a
// cycle (i j) simply exchanges the symbols at positions i and j; for longer
// cycles (a b c) the symbol at a goes to b, b to c, c to a.
func applyCycle(p Perm, c []int) error {
	if len(c) < 2 {
		return nil
	}
	for _, v := range c {
		if v < 0 || v >= len(p) {
			return fmt.Errorf("perm: cycle entry %d out of range 0..%d", v, len(p)-1)
		}
	}
	// Build the cycle as a standalone permutation in source notation:
	// symbol at c[j] moves to c[j+1], i.e. result[c[j+1]] = x[c[j]],
	// so q[c[(j+1)%n]] = c[j].
	q := Identity(len(p))
	n := len(c)
	for j := 0; j < n; j++ {
		q[c[(j+1)%n]] = c[j]
	}
	r := Compose(p, q)
	copy(p, r)
	return nil
}

// Transposition returns the permutation on k positions that exchanges the
// symbols at 0-based positions i and j.
func Transposition(k, i, j int) Perm {
	p := Identity(k)
	p[i], p[j] = p[j], p[i]
	return p
}

// BlockTransposition returns the super-generator T that exchanges the i-th
// and j-th blocks (0-based) of m consecutive symbols in a label of l blocks.
// In the paper's notation, BlockTransposition(l, m, 0, i-1) is T(i,m),
// written (1,i)_m.
func BlockTransposition(l, m, i, j int) Perm {
	p := Identity(l * m)
	for s := 0; s < m; s++ {
		p[i*m+s], p[j*m+s] = p[j*m+s], p[i*m+s]
	}
	return p
}

// BlockLeftShift returns the super-generator L(s,m) that cyclically shifts
// the l blocks of m symbols left by s block positions:
// the label X1 X2 ... Xl becomes X(s+1) ... Xl X1 ... Xs.
func BlockLeftShift(l, m, s int) Perm {
	s = ((s % l) + l) % l
	p := make(Perm, l*m)
	for b := 0; b < l; b++ {
		src := (b + s) % l
		for t := 0; t < m; t++ {
			p[b*m+t] = src*m + t
		}
	}
	return p
}

// BlockRightShift returns the super-generator R(s,m) = L(s,m)^-1, shifting
// the l blocks of m symbols right by s block positions.
func BlockRightShift(l, m, s int) Perm {
	return BlockLeftShift(l, m, -s)
}

// BlockFlip returns the flip super-generator F(i,m) that reverses the order
// of the first i blocks of m symbols (the symbols inside each block keep
// their order): X1 X2 ... Xi X(i+1) ... becomes Xi ... X2 X1 X(i+1) ...
func BlockFlip(l, m, i int) Perm {
	p := Identity(l * m)
	for b := 0; b < i; b++ {
		src := i - 1 - b
		for t := 0; t < m; t++ {
			p[b*m+t] = src*m + t
		}
	}
	return p
}

// Rotation returns the permutation rotating all k positions left by s:
// the label x1 x2 ... xk becomes x(s+1) ... xk x1 ... xs.
func Rotation(k, s int) Perm {
	return BlockLeftShift(k, 1, s)
}

// Lift embeds a permutation p on m positions into a permutation on k >= m
// positions that acts as p on the first m positions and fixes the rest.
// This is how nucleus generators of a super-IP graph act on full labels.
func Lift(p Perm, k int) Perm {
	if len(p) > k {
		panic("perm: Lift target smaller than source")
	}
	q := Identity(k)
	copy(q[:len(p)], p)
	return q
}

// ClosedUnderInverse reports whether for every generator in gens its inverse
// is also present (possibly itself). IP graphs with inverse-closed generator
// sets are undirected.
func ClosedUnderInverse(gens []Perm) bool {
	for _, g := range gens {
		inv := g.Inverse()
		found := false
		for _, h := range gens {
			if h.Equal(inv) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// GroupClosure returns the subgroup of the symmetric group generated by gens,
// as a sorted-by-one-line-notation slice. It panics if the closure would
// exceed limit elements (pass 0 for no limit). Useful for checking Cayley
// graph sizes on small generator sets.
func GroupClosure(gens []Perm, limit int) ([]Perm, error) {
	if len(gens) == 0 {
		return nil, errors.New("perm: no generators")
	}
	k := len(gens[0])
	for _, g := range gens {
		if len(g) != k {
			return nil, errors.New("perm: mixed generator sizes")
		}
	}
	seen := map[string]Perm{}
	id := Identity(k)
	seen[keyOf(id)] = id
	frontier := []Perm{id}
	for len(frontier) > 0 {
		var next []Perm
		for _, p := range frontier {
			for _, g := range gens {
				q := Compose(p, g)
				key := keyOf(q)
				if _, ok := seen[key]; !ok {
					seen[key] = q
					next = append(next, q)
					if limit > 0 && len(seen) > limit {
						return nil, fmt.Errorf("perm: group closure exceeds limit %d", limit)
					}
				}
			}
		}
		frontier = next
	}
	out := make([]Perm, 0, len(seen))
	for _, p := range seen {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for t := range a {
			if a[t] != b[t] {
				return a[t] < b[t]
			}
		}
		return false
	})
	return out, nil
}

func keyOf(p Perm) string {
	b := make([]byte, len(p))
	for i, v := range p {
		b[i] = byte(v)
	}
	return string(b)
}

// ParseOneLine parses one-line notation as emitted by OneLine, e.g.
// "[1 0 2]".
func ParseOneLine(s string) (Perm, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != '[' || s[len(s)-1] != ']' {
		return nil, fmt.Errorf("perm: one-line notation must be bracketed, got %q", s)
	}
	fields := strings.Fields(s[1 : len(s)-1])
	p := make(Perm, len(fields))
	for i, f := range fields {
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("perm: bad entry %q: %v", f, err)
		}
		p[i] = v
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Conjugate returns q^-1 * p * q (apply q, then p, then q inverse) — the
// permutation that "does p in q's coordinate frame". Conjugating a nucleus
// generator by a super-symbol swap is exactly how the dilation-3 embedding
// reaches non-leftmost super-symbols.
func Conjugate(p, q Perm) Perm {
	return Compose(Compose(q, p), q.Inverse())
}

// IsInvolution reports whether p is its own inverse.
func (p Perm) IsInvolution() bool {
	return Compose(p, p).IsIdentity()
}

// Support returns the positions moved by p, in increasing order.
func (p Perm) Support() []int {
	var s []int
	for i, v := range p {
		if v != i {
			s = append(s, i)
		}
	}
	return s
}

// PositionOrbits returns the orbits of the group generated by gens acting
// on positions: the partition of 0..k-1 into classes reachable from one
// another. A generator set whose action is transitive on positions has a
// single orbit.
func PositionOrbits(gens []Perm) [][]int {
	if len(gens) == 0 {
		return nil
	}
	k := len(gens[0])
	parent := make([]int, k)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, g := range gens {
		for i, v := range g {
			union(i, v)
		}
	}
	classes := map[int][]int{}
	for i := 0; i < k; i++ {
		r := find(i)
		classes[r] = append(classes[r], i)
	}
	var out [][]int
	for i := 0; i < k; i++ {
		if find(i) == i {
			out = append(out, classes[i])
		}
	}
	return out
}
