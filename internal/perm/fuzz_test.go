package perm

import (
	"testing"
)

// FuzzPermParse feeds arbitrary strings to the cycle-notation parser and, for
// every string it accepts, demands full round-trip coherence: the parsed
// permutation validates, re-renders to a string that parses back to the same
// permutation, and survives the one-line notation round trip too.
func FuzzPermParse(f *testing.F) {
	f.Add("", 4)
	f.Add("()", 4)
	f.Add("(1 2)", 4)
	f.Add("(1 2)(3 4)", 4)
	f.Add("(1 2 3 4)", 4)
	f.Add("(1 2 3)(4 5)", 6)
	f.Add("(2 1)", 2)
	f.Add("(1 9)", 4)       // out of range: must error, not panic
	f.Add("(1 1)", 4)       // repeated index: must error
	f.Add("(1 2", 4)        // unterminated
	f.Add("1 2)", 4)        // missing open
	f.Add("(a b)", 4)       // non-numeric
	f.Add("((1 2))", 4)     // nested
	f.Add("(0 1)", 4)       // cycle notation is 1-based; 0 must error
	f.Add("(-1 2)", 4)      // negative
	f.Add("(1 2)(2 3)", 4)  // overlapping cycles: must error
	f.Add("(1 2) (3 4)", 4) // interior spaces

	f.Fuzz(func(t *testing.T, s string, k int) {
		if k < 0 || k > 64 {
			t.Skip()
		}
		p, err := ParseCycles(s, k) // must never panic
		if err != nil {
			return
		}
		if len(p) != k {
			t.Fatalf("ParseCycles(%q, %d) returned size %d", s, k, len(p))
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("ParseCycles(%q, %d) accepted invalid perm %v: %v", s, k, p, err)
		}

		// Cycle-notation round trip.
		back, err := ParseCycles(p.String(), k)
		if err != nil {
			t.Fatalf("re-parse of %q (from %q) failed: %v", p.String(), s, err)
		}
		if !p.Equal(back) {
			t.Fatalf("cycle round trip %q -> %v -> %q -> %v", s, p, p.String(), back)
		}

		// One-line-notation round trip.
		ol, err := ParseOneLine(p.OneLine())
		if err != nil {
			t.Fatalf("ParseOneLine(%q) failed: %v", p.OneLine(), err)
		}
		if !p.Equal(ol) {
			t.Fatalf("one-line round trip %v -> %q -> %v", p, p.OneLine(), ol)
		}

		// Inverse composes to the identity on both sides.
		inv := p.Inverse()
		if !Compose(p, inv).IsIdentity() || !Compose(inv, p).IsIdentity() {
			t.Fatalf("p * p^-1 != id for %v", p)
		}

		// Apply agrees with the definition y[i] = x[p[i]].
		x := make([]byte, k)
		for i := range x {
			x[i] = byte(i * 3)
		}
		y := make([]byte, k)
		p.Apply(y, x)
		for i := range y {
			if y[i] != x[p[i]] {
				t.Fatalf("Apply: y[%d] = %d, want x[p[%d]] = %d", i, y[i], i, x[p[i]])
			}
		}
	})
}

// FuzzParseOneLine feeds arbitrary strings to the one-line parser; accepted
// inputs must validate and round-trip through OneLine().
func FuzzParseOneLine(f *testing.F) {
	f.Add("[0 1 2]")
	f.Add("[2 1 0]")
	f.Add("[]")
	f.Add("[0]")
	f.Add("[1 0")    // unterminated
	f.Add("0 1]")    // missing open
	f.Add("[0 0]")   // repeated
	f.Add("[0 7]")   // out of range
	f.Add("[-1 0]")  // negative
	f.Add("[a b]")   // non-numeric
	f.Add("[0  1 ]") // odd spacing

	f.Fuzz(func(t *testing.T, s string) {
		if len(s) > 256 {
			t.Skip()
		}
		p, err := ParseOneLine(s) // must never panic
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("ParseOneLine(%q) accepted invalid perm %v: %v", s, p, err)
		}
		back, err := ParseOneLine(p.OneLine())
		if err != nil || !p.Equal(back) {
			t.Fatalf("round trip %q -> %v -> %q -> %v (%v)", s, p, p.OneLine(), back, err)
		}
	})
}
