package perm

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomPerm returns a uniformly random permutation on k positions.
func randomPerm(r *rand.Rand, k int) Perm {
	p := Identity(k)
	r.Shuffle(k, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

func TestIdentity(t *testing.T) {
	id := Identity(5)
	if !id.IsIdentity() {
		t.Fatal("Identity(5) is not the identity")
	}
	if err := id.Validate(); err != nil {
		t.Fatal(err)
	}
	label := []byte{10, 20, 30, 40, 50}
	got := id.Permuted(label)
	for i := range label {
		if got[i] != label[i] {
			t.Fatalf("identity moved symbol at %d", i)
		}
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		p  Perm
		ok bool
	}{
		{Perm{0, 1, 2}, true},
		{Perm{2, 1, 0}, true},
		{Perm{0, 0, 1}, false},
		{Perm{0, 1, 3}, false},
		{Perm{-1, 1, 0}, false},
		{Perm{}, true},
	}
	for i, c := range cases {
		err := c.p.Validate()
		if (err == nil) != c.ok {
			t.Errorf("case %d: Validate() = %v, want ok=%v", i, err, c.ok)
		}
	}
}

func TestPaperStarGeneratorExample(t *testing.T) {
	// From the paper: X = 612345 with generator pi1 = (1,2) yields 162345,
	// pi2 = (1,3) yields 216345, pi3 = (1,4) yields 312645,
	// pi4 = (1,5) yields 412365, pi5 = (1,6) yields 512346.
	x := []byte{6, 1, 2, 3, 4, 5}
	want := [][]byte{
		{1, 6, 2, 3, 4, 5},
		{2, 1, 6, 3, 4, 5},
		{3, 1, 2, 6, 4, 5},
		{4, 1, 2, 3, 6, 5},
		{5, 1, 2, 3, 4, 6},
	}
	for i := 2; i <= 6; i++ {
		g := Transposition(6, 0, i-1)
		got := g.Permuted(x)
		w := want[i-2]
		for j := range w {
			if got[j] != w[j] {
				t.Fatalf("(1,%d) applied to 612345 = %v, want %v", i, got, w)
			}
		}
	}
}

func TestPaperSwapSuperGeneratorExample(t *testing.T) {
	// From the paper: the super-generator T(2,2n) maps a label to its second
	// half followed by its first half. With n=2 (so 2n=4, label length 8):
	// T(2,4) applied to "abcdefgh" gives "efghabcd".
	tt := BlockTransposition(2, 4, 0, 1)
	x := []byte{'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h'}
	got := string(tt.Permuted(x))
	if got != "efghabcd" {
		t.Fatalf("T(2,4) = %q, want %q", got, "efghabcd")
	}
}

func TestPaperCyclicShiftExample(t *testing.T) {
	// L(i,m) changes X1 X2 ... Xl into X(i+1) ... Xl X1 ... Xi.
	// R(i,m) changes X into X(l-i+1) ... Xl X1 ... X(l-i).
	l, m := 4, 2
	x := []byte{1, 1, 2, 2, 3, 3, 4, 4}
	left := BlockLeftShift(l, m, 1)
	if got := left.Permuted(x); string(got) != string([]byte{2, 2, 3, 3, 4, 4, 1, 1}) {
		t.Fatalf("L(1,2) = %v", got)
	}
	right := BlockRightShift(l, m, 1)
	if got := right.Permuted(x); string(got) != string([]byte{4, 4, 1, 1, 2, 2, 3, 3}) {
		t.Fatalf("R(1,2) = %v", got)
	}
	if !Compose(left, right).IsIdentity() {
		t.Fatal("L then R is not the identity")
	}
}

func TestPaperFlipExample(t *testing.T) {
	// F(2,m)(X1 X2 X3 X4) = X2 X1 X3 X4; F(3,m)(X1 X2 X3 X4) = X3 X2 X1 X4.
	l, m := 4, 2
	x := []byte{1, 1, 2, 2, 3, 3, 4, 4}
	f2 := BlockFlip(l, m, 2)
	if got := f2.Permuted(x); string(got) != string([]byte{2, 2, 1, 1, 3, 3, 4, 4}) {
		t.Fatalf("F(2) = %v", got)
	}
	f3 := BlockFlip(l, m, 3)
	if got := f3.Permuted(x); string(got) != string([]byte{3, 3, 2, 2, 1, 1, 4, 4}) {
		t.Fatalf("F(3) = %v", got)
	}
	if !Compose(f3, f3).IsIdentity() {
		t.Fatal("flips must be involutions")
	}
}

func TestComposeOrder(t *testing.T) {
	// Applying p then q must equal Compose(p, q) applied once.
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		k := 1 + r.Intn(12)
		p, q := randomPerm(r, k), randomPerm(r, k)
		x := make([]byte, k)
		for i := range x {
			x[i] = byte(r.Intn(256))
		}
		step := q.Permuted(p.Permuted(x))
		direct := Compose(p, q).Permuted(x)
		for i := range step {
			if step[i] != direct[i] {
				t.Fatalf("trial %d: compose mismatch at %d", trial, i)
			}
		}
	}
}

func TestInverseProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 1 + r.Intn(16)
		p := randomPerm(r, k)
		return Compose(p, p.Inverse()).IsIdentity() && Compose(p.Inverse(), p).IsIdentity()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPowerMatchesRepeatedCompose(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		k := 1 + r.Intn(10)
		p := randomPerm(r, k)
		n := int(nRaw % 20)
		want := Identity(k)
		for i := 0; i < n; i++ {
			want = Compose(want, p)
		}
		return p.Power(n).Equal(want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNegativePower(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	p := randomPerm(r, 9)
	if !Compose(p.Power(3), p.Power(-3)).IsIdentity() {
		t.Fatal("p^3 * p^-3 != identity")
	}
	if !p.Power(-1).Equal(p.Inverse()) {
		t.Fatal("p^-1 != inverse")
	}
}

func TestOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 1 + r.Intn(10)
		p := randomPerm(r, k)
		n := p.Order()
		if n < 1 {
			return false
		}
		if !p.Power(n).IsIdentity() {
			return false
		}
		// No smaller positive power may be the identity.
		for d := 1; d < n; d++ {
			if n%d == 0 && p.Power(d).IsIdentity() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSign(t *testing.T) {
	if Transposition(5, 0, 3).Sign() != -1 {
		t.Fatal("transposition must be odd")
	}
	if Identity(5).Sign() != 1 {
		t.Fatal("identity must be even")
	}
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		k := 2 + r.Intn(10)
		p, q := randomPerm(r, k), randomPerm(r, k)
		if Compose(p, q).Sign() != p.Sign()*q.Sign() {
			t.Fatal("sign is not multiplicative")
		}
	}
}

func TestCyclesRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 1 + r.Intn(12)
		p := randomPerm(r, k)
		q, err := FromCycles(k, p.Cycles()...)
		if err != nil {
			return false
		}
		return q.Equal(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseCycles(t *testing.T) {
	p, err := ParseCycles("(1 2)", 6)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(Transposition(6, 0, 1)) {
		t.Fatalf("parse (1 2) = %v", p.OneLine())
	}
	p, err = ParseCycles("(1 3)(2 4)", 4)
	if err != nil {
		t.Fatal(err)
	}
	want := Compose(Transposition(4, 0, 2), Transposition(4, 1, 3))
	if !p.Equal(want) {
		t.Fatalf("parse (1 3)(2 4) = %v, want %v", p.OneLine(), want.OneLine())
	}
	if _, err := ParseCycles("(0 1)", 4); err == nil {
		t.Fatal("expected range error for 0 in 1-based notation")
	}
	if _, err := ParseCycles("(1 5)", 4); err == nil {
		t.Fatal("expected range error for 5 on 4 positions")
	}
	if _, err := ParseCycles("(1 2", 4); err == nil {
		t.Fatal("expected unterminated-cycle error")
	}
	id, err := ParseCycles("()", 3)
	if err != nil || !id.IsIdentity() {
		t.Fatalf("parse () = %v, %v", id, err)
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		k := 1 + r.Intn(12)
		p := randomPerm(r, k)
		q, err := ParseCycles(p.String(), k)
		if err != nil {
			t.Fatalf("parse %q: %v", p.String(), err)
		}
		if !q.Equal(p) {
			t.Fatalf("round trip of %q gave %v, want %v", p.String(), q.OneLine(), p.OneLine())
		}
	}
}

func TestThreeCycleConvention(t *testing.T) {
	// In cycle (a b c), the symbol at a goes to b, b to c, c to a.
	p, err := ParseCycles("(1 2 3)", 3)
	if err != nil {
		t.Fatal(err)
	}
	got := p.Permuted([]byte{'a', 'b', 'c'})
	if string(got) != "cab" {
		t.Fatalf("(1 2 3) applied to abc = %q, want cab", got)
	}
}

func TestRotation(t *testing.T) {
	p := Rotation(6, 2)
	got := p.Permuted([]byte{'a', 'b', 'c', 'd', 'e', 'f'})
	if string(got) != "cdefab" {
		t.Fatalf("Rotation(6,2) = %q", got)
	}
	if !Rotation(6, 0).IsIdentity() || !Rotation(6, 6).IsIdentity() {
		t.Fatal("rotation by 0 or k must be identity")
	}
	if !Compose(Rotation(5, 2), Rotation(5, 3)).IsIdentity() {
		t.Fatal("rotations by 2 and 3 on 5 positions must cancel")
	}
}

func TestLift(t *testing.T) {
	p := Transposition(3, 0, 2)
	q := Lift(p, 7)
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	x := []byte{1, 2, 3, 4, 5, 6, 7}
	got := q.Permuted(x)
	want := []byte{3, 2, 1, 4, 5, 6, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Lift mismatch: got %v want %v", got, want)
		}
	}
}

func TestBlockTranspositionInvolution(t *testing.T) {
	for l := 2; l <= 5; l++ {
		for m := 1; m <= 4; m++ {
			for i := 0; i < l; i++ {
				for j := i + 1; j < l; j++ {
					p := BlockTransposition(l, m, i, j)
					if err := p.Validate(); err != nil {
						t.Fatalf("l=%d m=%d (%d,%d): %v", l, m, i, j, err)
					}
					if !Compose(p, p).IsIdentity() {
						t.Fatalf("l=%d m=%d (%d,%d): not an involution", l, m, i, j)
					}
				}
			}
		}
	}
}

func TestBlockShiftOrder(t *testing.T) {
	for l := 2; l <= 6; l++ {
		p := BlockLeftShift(l, 3, 1)
		if p.Order() != l {
			t.Fatalf("BlockLeftShift(%d,3,1) has order %d, want %d", l, p.Order(), l)
		}
	}
}

func TestClosedUnderInverse(t *testing.T) {
	l, m := 4, 2
	trans := []Perm{
		BlockTransposition(l, m, 0, 1),
		BlockTransposition(l, m, 0, 2),
		BlockTransposition(l, m, 0, 3),
	}
	if !ClosedUnderInverse(trans) {
		t.Fatal("transpositions are self-inverse; set must be closed")
	}
	onlyLeft := []Perm{BlockLeftShift(l, m, 1)}
	if ClosedUnderInverse(onlyLeft) {
		t.Fatal("a lone cyclic shift (l>2) is not inverse-closed")
	}
	ring := []Perm{BlockLeftShift(l, m, 1), BlockRightShift(l, m, 1)}
	if !ClosedUnderInverse(ring) {
		t.Fatal("{L,R} must be inverse-closed")
	}
}

func TestGroupClosureSymmetricGroup(t *testing.T) {
	// Star-graph generators (1,i) generate the full symmetric group.
	n := 5
	var gens []Perm
	for i := 1; i < n; i++ {
		gens = append(gens, Transposition(n, 0, i))
	}
	group, err := GroupClosure(gens, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := 1
	for i := 2; i <= n; i++ {
		want *= i
	}
	if len(group) != want {
		t.Fatalf("closure size = %d, want %d (= %d!)", len(group), want, n)
	}
}

func TestGroupClosureCyclicGroup(t *testing.T) {
	g := Rotation(6, 1)
	group, err := GroupClosure([]Perm{g}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(group) != 6 {
		t.Fatalf("cyclic closure size = %d, want 6", len(group))
	}
}

func TestGroupClosureLimit(t *testing.T) {
	var gens []Perm
	for i := 1; i < 7; i++ {
		gens = append(gens, Transposition(7, 0, i))
	}
	if _, err := GroupClosure(gens, 100); err == nil {
		t.Fatal("expected limit error for S7 with limit 100")
	}
}

func TestGroupClosureErrors(t *testing.T) {
	if _, err := GroupClosure(nil, 0); err == nil {
		t.Fatal("expected error for empty generator set")
	}
	if _, err := GroupClosure([]Perm{Identity(3), Identity(4)}, 0); err == nil {
		t.Fatal("expected error for mixed sizes")
	}
}

func TestApplyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Identity(3).Apply(make([]byte, 2), make([]byte, 3))
}

func BenchmarkApply(b *testing.B) {
	r := rand.New(rand.NewSource(5))
	p := randomPerm(r, 32)
	src := make([]byte, 32)
	dst := make([]byte, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Apply(dst, src)
	}
}

func BenchmarkCompose(b *testing.B) {
	r := rand.New(rand.NewSource(5))
	p := randomPerm(r, 32)
	q := randomPerm(r, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Compose(p, q)
	}
}

func TestParseOneLine(t *testing.T) {
	p, err := ParseOneLine("[1 0 2]")
	if err != nil || !p.Equal(Perm{1, 0, 2}) {
		t.Fatalf("ParseOneLine = %v, %v", p, err)
	}
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		q := randomPerm(r, 1+r.Intn(10))
		back, err := ParseOneLine(q.OneLine())
		if err != nil || !back.Equal(q) {
			t.Fatalf("round trip of %v failed: %v %v", q, back, err)
		}
	}
	for _, bad := range []string{"", "1 0", "[1 0", "[a b]", "[0 0]", "[2 0]"} {
		if _, err := ParseOneLine(bad); err == nil {
			t.Fatalf("expected error for %q", bad)
		}
	}
}

func TestConjugate(t *testing.T) {
	// Conjugating the swap of block 0's first pair by the block swap yields
	// the swap of block 1's first pair.
	p := Transposition(8, 0, 1)         // nucleus move on block 0
	q := BlockTransposition(2, 4, 0, 1) // swap the two blocks
	got := Conjugate(p, q)
	want := Transposition(8, 4, 5)
	if !got.Equal(want) {
		t.Fatalf("conjugate = %v, want %v", got.OneLine(), want.OneLine())
	}
	// Conjugation preserves cycle type (here: order).
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		a, b := randomPerm(r, 8), randomPerm(r, 8)
		if Conjugate(a, b).Order() != a.Order() {
			t.Fatal("conjugation changed the order")
		}
	}
}

func TestIsInvolutionAndSupport(t *testing.T) {
	if !Transposition(5, 1, 3).IsInvolution() {
		t.Fatal("transposition must be an involution")
	}
	if Rotation(5, 1).IsInvolution() {
		t.Fatal("5-rotation is not an involution")
	}
	s := Transposition(6, 1, 4).Support()
	if len(s) != 2 || s[0] != 1 || s[1] != 4 {
		t.Fatalf("support = %v", s)
	}
	if len(Identity(4).Support()) != 0 {
		t.Fatal("identity support must be empty")
	}
}

func TestPositionOrbits(t *testing.T) {
	// The hypercube nucleus generators act within pairs: n orbits of 2.
	gens := []Perm{Transposition(6, 0, 1), Transposition(6, 2, 3), Transposition(6, 4, 5)}
	orbits := PositionOrbits(gens)
	if len(orbits) != 3 {
		t.Fatalf("orbits = %v", orbits)
	}
	// Adding the block rotation merges everything into one orbit.
	gens = append(gens, BlockLeftShift(3, 2, 1))
	orbits = PositionOrbits(gens)
	if len(orbits) != 1 || len(orbits[0]) != 6 {
		t.Fatalf("orbits with rotation = %v", orbits)
	}
	if PositionOrbits(nil) != nil {
		t.Fatal("no generators -> nil orbits")
	}
}
