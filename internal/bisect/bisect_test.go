package bisect

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/networks"
	"repro/internal/superip"
)

func TestExactKnownValues(t *testing.T) {
	cases := []struct {
		name  string
		build func() (*graph.Graph, error)
		want  int
	}{
		{"ring8", networks.Ring{Nodes: 8}.Build, 2},
		{"ring9", networks.Ring{Nodes: 9}.Build, 2},
		{"Q3", networks.Hypercube{Dim: 3}.Build, 4},
		{"Q4", networks.Hypercube{Dim: 4}.Build, 8},
		{"K6", networks.Complete{Nodes: 6}.Build, 9},
		{"torus4x4", networks.Torus2D{Rows: 4, Cols: 4}.Build, 8},
		{"mesh4x4", networks.Mesh2D{Rows: 4, Cols: 4}.Build, 4},
	}
	for _, c := range cases {
		g, err := c.build()
		if err != nil {
			t.Fatal(err)
		}
		got, err := Exact(g)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Fatalf("%s: exact bisection = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestAnalyticMatchesExact(t *testing.T) {
	for n := 2; n <= 4; n++ {
		g, err := networks.Hypercube{Dim: n}.Build()
		if err != nil {
			t.Fatal(err)
		}
		exact, err := Exact(g)
		if err != nil {
			t.Fatal(err)
		}
		if exact != HypercubeWidth(n) {
			t.Fatalf("Q%d: exact %d != analytic %d", n, exact, HypercubeWidth(n))
		}
	}
	g, _ := networks.Torus2D{Rows: 4, Cols: 4}.Build()
	exact, _ := Exact(g)
	if exact != TorusWidth(4) {
		t.Fatalf("torus 4x4: exact %d != analytic %d", exact, TorusWidth(4))
	}
}

func TestKernighanLinUpperBound(t *testing.T) {
	// KL must (a) never beat the exact optimum and (b) find the optimum on
	// these easy instances.
	for _, c := range []struct {
		name  string
		build func() (*graph.Graph, error)
	}{
		{"Q4", networks.Hypercube{Dim: 4}.Build},
		{"ring16", networks.Ring{Nodes: 16}.Build},
		{"torus4x4", networks.Torus2D{Rows: 4, Cols: 4}.Build},
	} {
		g, err := c.build()
		if err != nil {
			t.Fatal(err)
		}
		exact, err := Exact(g)
		if err != nil {
			t.Fatal(err)
		}
		kl, err := KernighanLin(g, 10, 42)
		if err != nil {
			t.Fatal(err)
		}
		if kl < exact {
			t.Fatalf("%s: KL %d below exact %d (impossible)", c.name, kl, exact)
		}
		if kl != exact {
			t.Fatalf("%s: KL %d did not reach exact %d", c.name, kl, exact)
		}
	}
}

func TestKernighanLinMedium(t *testing.T) {
	// Q6: known width 32; KL should get close (within 25%).
	g, err := networks.Hypercube{Dim: 6}.Build()
	if err != nil {
		t.Fatal(err)
	}
	kl, err := KernighanLin(g, 12, 7)
	if err != nil {
		t.Fatal(err)
	}
	if kl < HypercubeWidth(6) {
		t.Fatalf("KL %d below the true width %d", kl, HypercubeWidth(6))
	}
	if kl > HypercubeWidth(6)*5/4 {
		t.Fatalf("KL %d too far above the true width %d", kl, HypercubeWidth(6))
	}
}

func TestSuperIPBisectionIsSmall(t *testing.T) {
	// Section 5.1: super-IP graphs have small bisection (that is why they
	// lose under a constant-bisection constraint and win under pin-out).
	// HSN(2;Q2) (16 nodes, 24 edges) must have bisection below the
	// same-size hypercube Q4's 8.
	net := superip.HSN(2, superip.NucleusHypercube(2))
	g, err := net.Build()
	if err != nil {
		t.Fatal(err)
	}
	w, err := Exact(g)
	if err != nil {
		t.Fatal(err)
	}
	if w >= HypercubeWidth(4) {
		t.Fatalf("HSN(2;Q2) bisection %d not below Q4's %d", w, HypercubeWidth(4))
	}
	if w < 1 {
		t.Fatal("connected graph needs positive bisection")
	}
}

func TestErrors(t *testing.T) {
	big, _ := networks.Hypercube{Dim: 6}.Build()
	if _, err := Exact(big); err == nil {
		t.Fatal("exact on 64 nodes must refuse")
	}
	d := graph.NewBuilder(4, true)
	d.AddEdge(0, 1)
	if _, err := Exact(d.Build()); err == nil {
		t.Fatal("directed must fail")
	}
	if _, err := KernighanLin(d.Build(), 1, 1); err == nil {
		t.Fatal("directed must fail")
	}
	single := graph.NewBuilder(1, false).Build()
	if _, err := Exact(single); err == nil {
		t.Fatal("single node must fail")
	}
}

func TestCutSize(t *testing.T) {
	g, _ := networks.Ring{Nodes: 4}.Build()
	if c := CutSize(g, []bool{false, true, false, true}); c != 4 {
		t.Fatalf("alternating cut of C4 = %d, want 4", c)
	}
	if c := CutSize(g, []bool{false, false, true, true}); c != 2 {
		t.Fatalf("contiguous cut of C4 = %d, want 2", c)
	}
}

func TestAreaLowerBound(t *testing.T) {
	// Q10 (bisection 512) needs area >= 65536x the area bound of a network
	// with bisection 2.
	if AreaLowerBound(512) != 512*512/4 {
		t.Fatal("area bound formula")
	}
	if AreaLowerBound(2) != 1 {
		t.Fatal("area bound small case")
	}
}
