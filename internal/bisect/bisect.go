// Package bisect estimates bisection widths, the quantity behind Section
// 5.1's discussion: under a constant bisection-bandwidth constraint,
// low-dimensional k-ary n-cubes beat super-IP graphs, while under a
// constant pin-out constraint the super-IP graphs win. Exact bisection is
// NP-hard in general; this package provides exact enumeration for small
// graphs, a Kernighan-Lin heuristic upper bound for medium graphs, and the
// known closed forms for hypercubes and square tori — each validated
// against the exact value where feasible.
package bisect

import (
	"fmt"
	"math/bits"
	"math/rand"

	"repro/internal/graph"
)

// CutSize returns the number of edges crossing the bipartition indicated by
// side (true = part B).
func CutSize(g *graph.Graph, side []bool) int {
	cut := 0
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(int32(u)) {
			if v > int32(u) && side[u] != side[v] {
				cut++
			}
		}
	}
	return cut
}

// Exact computes the exact bisection width by enumerating all balanced
// bipartitions (part sizes differ by at most one). Feasible up to ~24
// nodes; refuses larger graphs.
func Exact(g *graph.Graph) (int, error) {
	n := g.N()
	if n < 2 {
		return 0, fmt.Errorf("bisect: need at least 2 nodes")
	}
	if n > 24 {
		return 0, fmt.Errorf("bisect: exact enumeration infeasible for %d nodes", n)
	}
	if g.Directed {
		return 0, fmt.Errorf("bisect: undirected graphs only")
	}
	half := n / 2
	best := 1 << 30
	side := make([]bool, n)
	// Fix node 0 on side A to halve the search (complement symmetry; for
	// odd n the smaller side takes half nodes and node 0 stays in the
	// larger side A).
	var mask uint32
	// Enumerate subsets of {1..n-1} of size half as side B.
	last := uint32(1) << uint(n-1)
	for mask = 0; mask < last; mask++ {
		if bits.OnesCount32(mask) != half {
			continue
		}
		for v := 1; v < n; v++ {
			side[v] = mask&(1<<uint(v-1)) != 0
		}
		if c := CutSize(g, side); c < best {
			best = c
		}
	}
	return best, nil
}

// KernighanLin returns a heuristic upper bound on the bisection width:
// the best balanced cut found over `restarts` randomized Kernighan-Lin
// passes. Deterministic for a given seed.
func KernighanLin(g *graph.Graph, restarts int, seed int64) (int, error) {
	n := g.N()
	if n < 2 {
		return 0, fmt.Errorf("bisect: need at least 2 nodes")
	}
	if g.Directed {
		return 0, fmt.Errorf("bisect: undirected graphs only")
	}
	rng := rand.New(rand.NewSource(seed))
	best := 1 << 30
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	side := make([]bool, n)
	for r := 0; r < restarts; r++ {
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		for i, v := range perm {
			side[v] = i >= n/2+(n%2)
		}
		klRefine(g, side)
		if c := CutSize(g, side); c < best {
			best = c
		}
	}
	return best, nil
}

// klRefine runs Kernighan-Lin passes until no improving pass exists.
func klRefine(g *graph.Graph, side []bool) {
	n := g.N()
	for pass := 0; pass < 16; pass++ {
		locked := make([]bool, n)
		type swapRec struct{ a, b, gain int }
		var history []swapRec
		total, bestPrefix, bestGain := 0, -1, 0
		work := append([]bool(nil), side...)
		for step := 0; step < n/2; step++ {
			// Greedily choose the best unlocked cross pair.
			bestA, bestB, bestPair := -1, -1, -(1 << 30)
			for a := 0; a < n; a++ {
				if locked[a] || work[a] {
					continue
				}
				ga := gainOn(g, work, a)
				for b := 0; b < n; b++ {
					if locked[b] || !work[b] {
						continue
					}
					gb := gainOn(g, work, b)
					pair := ga + gb
					if g.HasEdge(int32(a), int32(b)) {
						pair -= 2
					}
					if pair > bestPair {
						bestPair, bestA, bestB = pair, a, b
					}
				}
			}
			if bestA < 0 {
				break
			}
			work[bestA], work[bestB] = true, false
			locked[bestA], locked[bestB] = true, true
			total += bestPair
			history = append(history, swapRec{bestA, bestB, bestPair})
			if total > bestGain {
				bestGain, bestPrefix = total, step
			}
		}
		if bestPrefix < 0 || bestGain <= 0 {
			return
		}
		// Apply the best prefix of swaps to the real sides.
		for i := 0; i <= bestPrefix; i++ {
			side[history[i].a] = true
			side[history[i].b] = false
		}
	}
}

func gainOn(g *graph.Graph, side []bool, v int) int {
	ext, intn := 0, 0
	for _, u := range g.Neighbors(int32(v)) {
		if side[u] != side[v] {
			ext++
		} else {
			intn++
		}
	}
	return ext - intn
}

// HypercubeWidth returns the exact bisection width of Q_n: 2^(n-1).
func HypercubeWidth(n int) int { return 1 << uint(n-1) }

// TorusWidth returns the exact bisection width of the k x k torus for even
// k: 2k.
func TorusWidth(k int) int { return 2 * k }

// AreaLowerBound returns Thompson's VLSI-layout area lower bound implied by
// a bisection width: any grid layout needs area at least width^2/4 (the
// paper's companion work [31] gives recursive grid layouts for hierarchical
// networks; the bound here quantifies why small bisection makes super-IP
// graphs cheap to lay out).
func AreaLowerBound(bisectionWidth int) int {
	return bisectionWidth * bisectionWidth / 4
}

// Refine improves a bipartition in place with Kernighan-Lin passes until no
// improving pass exists. Exposed for reuse by the layout package.
func Refine(g *graph.Graph, side []bool) {
	klRefine(g, side)
}
