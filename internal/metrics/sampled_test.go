package metrics

import (
	"testing"

	"repro/internal/superip"
	"repro/internal/topo"
)

// TestSampleRoutesHypercube checks the estimator against exact hypercube
// facts: e-cube paths are Hamming-distance long, so AvgHops approaches
// dim/2 and MaxHops never exceeds dim.
func TestSampleRoutesHypercube(t *testing.T) {
	const dim = 8
	s, err := SampleRoutes(topo.HypercubeTopo{Dim: dim}, topo.HypercubeRouter{Dim: dim}, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Pairs != 2000 {
		t.Fatalf("pairs = %d", s.Pairs)
	}
	if s.MaxHops > dim {
		t.Fatalf("e-cube route of %d hops exceeds diameter %d", s.MaxHops, dim)
	}
	if s.AvgHops < float64(dim)/2-0.5 || s.AvgHops > float64(dim)/2+0.5 {
		t.Fatalf("AvgHops = %v, want about %v", s.AvgHops, float64(dim)/2)
	}
	if s.AvgOffModule != 0 || s.MaxOffModule != 0 {
		t.Fatalf("hypercube has no modules, got off-module stats %+v", s)
	}
}

// TestSampleRoutesImplicitSuperIP checks the estimator over an implicit
// super-IP topology: routed hops stay within the paper's diameter bound and
// off-module hops are counted (at least one super-step for cross-module
// pairs) and never exceed total hops.
func TestSampleRoutesImplicitSuperIP(t *testing.T) {
	net := superip.HSN(3, superip.NucleusHypercube(2))
	imp, err := topo.NewImplicit(net.Super())
	if err != nil {
		t.Fatal(err)
	}
	r, err := topo.NewAlgebraic(net.Super())
	if err != nil {
		t.Fatal(err)
	}
	s, err := SampleRoutes(imp, r, 1500, 7)
	if err != nil {
		t.Fatal(err)
	}
	if s.MaxHops > net.Diameter() {
		t.Fatalf("routed %d hops, paper bound %d", s.MaxHops, net.Diameter())
	}
	if s.AvgOffModule <= 0 || s.MaxOffModule > s.MaxHops {
		t.Fatalf("implausible off-module stats: %+v", s)
	}
	if s.AvgHops <= s.AvgOffModule {
		t.Fatalf("off-module hops %v exceed total hops %v", s.AvgOffModule, s.AvgHops)
	}

	if _, err := SampleRoutes(imp, r, 0, 1); err == nil {
		t.Fatal("zero pairs accepted")
	}
}
