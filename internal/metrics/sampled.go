package metrics

import (
	"fmt"
	"math/rand"

	"repro/internal/topo"
)

// RouteSample summarizes routed distances over sampled (src, dst) pairs of a
// topology — the implicit-topology counterpart of the exhaustive IStats: at
// the scales implicit topologies unlock, all-pairs BFS is out of reach, so
// average distance, routed diameter, and off-module traffic are estimated by
// sampling algebraic routes instead.
type RouteSample struct {
	// Pairs is the number of sampled source/destination pairs.
	Pairs int
	// AvgHops and MaxHops summarize routed path lengths. For shortest-path
	// routers AvgHops estimates the average distance and MaxHops lower-
	// bounds the diameter; for the paper's algebraic routers MaxHops is also
	// upper-bounded by l*D_G + t (Theorems 4.1/4.3).
	AvgHops float64
	MaxHops int
	// AvgOffModule and MaxOffModule count hops crossing module boundaries
	// per route (the II-cost driver), filled when the topology implements
	// topo.Modular; zero otherwise.
	AvgOffModule float64
	MaxOffModule int
}

// SampleRoutes routes pairs random (src, dst) pairs (src != dst) with r and
// aggregates hop statistics. Runs are deterministic in seed. Memory is O(1)
// in the size of t, so it works unchanged on implicit topologies of tens of
// millions of nodes.
func SampleRoutes(t topo.Topology, r topo.PathRouter, pairs int, seed int64) (RouteSample, error) {
	n := t.N()
	if n < 2 {
		return RouteSample{}, fmt.Errorf("metrics: need at least 2 nodes")
	}
	if pairs < 1 {
		return RouteSample{}, fmt.Errorf("metrics: need at least 1 pair")
	}
	mod, hasModules := t.(topo.Modular)
	rng := rand.New(rand.NewSource(seed))
	var s RouteSample
	var hopSum, offSum int64
	for i := 0; i < pairs; i++ {
		src := rng.Int63n(n)
		dst := rng.Int63n(n - 1)
		if dst >= src {
			dst++
		}
		p, err := r.Path(src, dst)
		if err != nil {
			return s, fmt.Errorf("metrics: route %d -> %d: %w", src, dst, err)
		}
		hops := len(p) - 1
		hopSum += int64(hops)
		if hops > s.MaxHops {
			s.MaxHops = hops
		}
		if hasModules {
			off := 0
			for j := 0; j+1 < len(p); j++ {
				if mod.Module(p[j]) != mod.Module(p[j+1]) {
					off++
				}
			}
			offSum += int64(off)
			if off > s.MaxOffModule {
				s.MaxOffModule = off
			}
		}
	}
	s.Pairs = pairs
	s.AvgHops = float64(hopSum) / float64(pairs)
	if hasModules {
		s.AvgOffModule = float64(offSum) / float64(pairs)
	}
	return s, nil
}
