package metrics

import (
	"math"
	"testing"

	"repro/internal/networks"
	"repro/internal/superip"
)

func TestSubcubePartitionHypercube(t *testing.T) {
	// Section 5.3: a node of a 17-cube with a 3-cube per module has 14
	// off-module links; we verify the law degree = n - c on feasible sizes.
	for _, tc := range []struct{ n, c int }{{4, 2}, {6, 3}, {8, 4}, {10, 3}} {
		g, err := networks.Hypercube{Dim: tc.n}.Build()
		if err != nil {
			t.Fatal(err)
		}
		p := SubcubePartition(g.N(), tc.c)
		if err := p.Validate(g.N()); err != nil {
			t.Fatal(err)
		}
		if p.MaxClusterSize() != 1<<tc.c {
			t.Fatalf("Q%d/%d: cluster size %d", tc.n, tc.c, p.MaxClusterSize())
		}
		want := tc.n - tc.c
		if got := MaxOffModuleLinks(g, p); got != want {
			t.Fatalf("Q%d with Q%d modules: %d off-module links per node, want %d",
				tc.n, tc.c, got, want)
		}
		if got := IDegree(g, p); math.Abs(got-float64(want)) > 1e-9 {
			t.Fatalf("Q%d I-degree = %v, want %d", tc.n, got, want)
		}
		// I-diameter of a hypercube with subcube modules: the remaining
		// n - c dimensions each need one off-module hop.
		st := IStats(g, p)
		if int(st.Diameter) != want {
			t.Fatalf("Q%d I-diameter = %d, want %d", tc.n, st.Diameter, want)
		}
	}
}

func TestNucleusPartitionHSN(t *testing.T) {
	// Section 5.3: an l-level HSN with one nucleus per module has at most
	// l-1 off-module links per node, and I-diameter t = l-1.
	for l := 2; l <= 4; l++ {
		net := superip.HSN(l, superip.NucleusHypercube(2))
		g, ix, err := net.BuildWithIndex()
		if err != nil {
			t.Fatal(err)
		}
		p := NucleusPartition(ix, net.Nucleus.Nuc.M())
		if err := p.Validate(g.N()); err != nil {
			t.Fatal(err)
		}
		if p.MaxClusterSize() != net.Nucleus.Size {
			t.Fatalf("HSN(%d): cluster size %d, want %d", l, p.MaxClusterSize(), net.Nucleus.Size)
		}
		if got := MaxOffModuleLinks(g, p); got != net.SuperDegree() {
			t.Fatalf("HSN(%d): %d off-module links per node, want %d", l, got, net.SuperDegree())
		}
		st := IStats(g, p)
		if int(st.Diameter) != net.IDiameter() {
			t.Fatalf("HSN(%d): I-diameter %d, want %d", l, st.Diameter, net.IDiameter())
		}
	}
}

func TestNucleusPartitionRingCN(t *testing.T) {
	for _, l := range []int{3, 4, 5} {
		net := superip.RingCN(l, superip.NucleusHypercube(2))
		g, ix, err := net.BuildWithIndex()
		if err != nil {
			t.Fatal(err)
		}
		p := NucleusPartition(ix, net.Nucleus.Nuc.M())
		if got := MaxOffModuleLinks(g, p); got != 2 {
			t.Fatalf("ring-CN(%d): %d off-module links per node, want 2", l, got)
		}
		st := IStats(g, p)
		if int(st.Diameter) != l-1 {
			t.Fatalf("ring-CN(%d): I-diameter %d, want %d", l, st.Diameter, l-1)
		}
	}
}

func TestIDegreeDeBruijn(t *testing.T) {
	// Section 5.3: the maximum number of off-module links per node in a de
	// Bruijn graph is 4 when nodes sharing their most significant bits are
	// packed together.
	g, err := networks.DeBruijn{Base: 2, Dim: 8}.Build()
	if err != nil {
		t.Fatal(err)
	}
	p := SubcubePartition(g.N(), 4) // shared high bits = id >> 4
	if got := MaxOffModuleLinks(g, p); got != 4 {
		t.Fatalf("de Bruijn off-module links = %d, want 4", got)
	}
}

func TestGridPartitionTorus(t *testing.T) {
	tor := networks.Torus2D{Rows: 8, Cols: 8}
	g, err := tor.Build()
	if err != nil {
		t.Fatal(err)
	}
	p, err := GridPartition(8, 8, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(g.N()); err != nil {
		t.Fatal(err)
	}
	if p.K != 4 || p.MaxClusterSize() != 16 {
		t.Fatalf("grid partition K=%d size=%d", p.K, p.MaxClusterSize())
	}
	// Boundary nodes of a 4x4 tile have 1 or 2 off-module links.
	if got := MaxOffModuleLinks(g, p); got != 2 {
		t.Fatalf("torus corner off-module links = %d, want 2", got)
	}
	if _, err := GridPartition(8, 8, 3, 4); err == nil {
		t.Fatal("non-divisible tiling must fail")
	}
}

func TestIStatsAverageHSN2(t *testing.T) {
	// HSN(2;Q2) with nucleus modules: a pair needs 0 off-module hops iff
	// source and destination lie in the same module... verify the exact
	// average against a direct computation from the weighted BFS.
	net := superip.HSN(2, superip.NucleusHypercube(2))
	g, ix, err := net.BuildWithIndex()
	if err != nil {
		t.Fatal(err)
	}
	p := NucleusPartition(ix, net.Nucleus.Nuc.M())
	st := IStats(g, p)
	if st.Diameter != 1 {
		t.Fatalf("HSN(2;Q2) I-diameter = %d, want 1", st.Diameter)
	}
	// Direct recount over all pairs.
	var sum, pairs int64
	for u := 0; u < g.N(); u++ {
		dist := g.ZeroOneBFS(int32(u), p.CrossWeight())
		for v, d := range dist {
			if v == u {
				continue
			}
			sum += int64(d)
			pairs++
		}
	}
	want := float64(sum) / float64(pairs)
	if math.Abs(st.AvgDistance-want) > 1e-12 {
		t.Fatalf("avg I-distance %v, recount %v", st.AvgDistance, want)
	}
	if st.AvgDistance <= 0 || st.AvgDistance >= 1 {
		t.Fatalf("HSN(2;Q2) avg I-distance = %v, expected within (0,1)", st.AvgDistance)
	}
}

func TestCostFunctions(t *testing.T) {
	if DDCost(4, 5) != 20 {
		t.Fatal("DDCost")
	}
	if IDCost(1.5, 4) != 6 {
		t.Fatal("IDCost")
	}
	if IICost(2, 3) != 6 {
		t.Fatal("IICost")
	}
}

func TestMooreDiameterLB(t *testing.T) {
	// Degree-2: a ring is exactly Moore-optimal.
	for _, n := range []int{3, 5, 9, 100} {
		if got, want := MooreDiameterLB(2, n), n/2; got != want {
			t.Fatalf("Moore LB (d=2, n=%d) = %d, want %d", n, got, want)
		}
	}
	// Petersen is a Moore graph: degree 3, diameter 2, 10 nodes.
	if MooreDiameterLB(3, 10) != 2 {
		t.Fatalf("Moore LB for Petersen = %d, want 2", MooreDiameterLB(3, 10))
	}
	// Complete graph: diameter 1 bound.
	if MooreDiameterLB(9, 10) != 1 {
		t.Fatal("Moore LB for K10")
	}
	// Degenerate degrees.
	if MooreDiameterLB(1, 2) != 1 || MooreDiameterLB(1, 3) != math.MaxInt32 {
		t.Fatal("degree-1 bounds")
	}
	if MooreDiameterLB(0, 5) != math.MaxInt32 {
		t.Fatal("degree-0 bound")
	}
	if MooreDiameterLB(5, 1) != 0 {
		t.Fatal("single node bound")
	}
	// The bound is a true lower bound for every network we can build.
	specs := []networks.Spec{
		networks.Hypercube{Dim: 6},
		networks.Star{Symbols: 5},
		networks.KAryNCube{K: 4, Dims: 3},
		networks.CCC{Dim: 4},
		networks.Petersen{},
	}
	for _, s := range specs {
		lb := MooreDiameterLB(s.Degree(), s.N())
		if s.Diameter() < lb {
			t.Fatalf("%s: diameter %d below Moore bound %d", s.Name(), s.Diameter(), lb)
		}
	}
}

func TestOptimalityFactorTrend(t *testing.T) {
	// Theorem 4.4 flavor: for HSN(l; K_m) (complete-graph nucleus, which is
	// Moore-optimal), the optimality factor stays bounded by a small
	// constant as the network grows.
	for _, tc := range []struct{ l, m int }{{2, 4}, {3, 4}, {2, 8}, {3, 8}, {4, 8}, {5, 16}} {
		net := superip.RCC(tc.l, tc.m)
		f := OptimalityFactor(net.Diameter(), net.Degree(), net.N())
		if f < 1 {
			t.Fatalf("RCC(%d;K%d): optimality factor %v below 1 (diameter beats Moore?)", tc.l, tc.m, f)
		}
		if f > 4 {
			t.Fatalf("RCC(%d;K%d): optimality factor %v too large", tc.l, tc.m, f)
		}
	}
}

func TestPartitionValidateErrors(t *testing.T) {
	p := Partition{Of: []int32{0, 1}, K: 3}
	if err := p.Validate(2); err == nil {
		t.Fatal("empty cluster must fail")
	}
	p = Partition{Of: []int32{0, 5}, K: 2}
	if err := p.Validate(2); err == nil {
		t.Fatal("out-of-range cluster must fail")
	}
	p = Partition{Of: []int32{0}, K: 1}
	if err := p.Validate(2); err == nil {
		t.Fatal("wrong length must fail")
	}
}

func TestThroughputBound(t *testing.T) {
	// Ring of n: M = 2n directed links, avg distance ~ n/4: bound ~ 8/n.
	g, _ := networks.Ring{Nodes: 16}.Build()
	st := g.AllPairs()
	b := ThroughputBound(g, st.AvgDistance)
	if b <= 0 || b > 1 {
		t.Fatalf("ring throughput bound = %v", b)
	}
	// A complete graph can absorb one packet per node per cycle.
	k, _ := networks.Complete{Nodes: 8}.Build()
	kb := ThroughputBound(k, 1)
	if kb < 1 {
		t.Fatalf("K8 bound %v below 1", kb)
	}
	if ThroughputBound(g, 0) != math.Inf(1) {
		t.Fatal("zero distance bound must be infinite")
	}
}

func TestOffModuleThroughputBound(t *testing.T) {
	net := superip.HSN(2, superip.NucleusHypercube(3))
	g, ix, err := net.BuildWithIndex()
	if err != nil {
		t.Fatal(err)
	}
	p := NucleusPartition(ix, net.Nucleus.Nuc.M())
	ist := IStats(g, p)
	b1 := OffModuleThroughputBound(g, p, ist.AvgDistance, 1)
	b4 := OffModuleThroughputBound(g, p, ist.AvgDistance, 4)
	if b1 <= 0 || b4 <= 0 {
		t.Fatal("bounds must be positive")
	}
	if b4*4 != b1 {
		t.Fatalf("period scaling wrong: %v vs %v", b1, b4)
	}
	// The hypercube with the same module count has more off-module links
	// but proportionally more off-module traffic; its bound per the paper
	// is lower per off-module pin... just sanity-check positivity ordering
	// against simulated saturation elsewhere.
}

func TestSubstarPartitionStar(t *testing.T) {
	// Section 5.3: pack each 3-star (6 nodes, the substar fixing all but the
	// first three positions) into a module; every node then has n-3
	// off-module links (its star generators (1,4)..(1,n)).
	for _, n := range []int{5, 6} {
		g, err := networks.Star{Symbols: n}.Build()
		if err != nil {
			t.Fatal(err)
		}
		// networks.Star enumerates permutations in recursive lexicographic
		// order; recover each node's permutation the same way to build the
		// suffix-based partition.
		perms := enumeratePerms(n)
		p := PartitionBy(g.N(), func(u int32) string {
			return string(perms[u][3:])
		})
		if err := p.Validate(g.N()); err != nil {
			t.Fatal(err)
		}
		if p.MaxClusterSize() != 6 {
			t.Fatalf("star(%d) substar module size %d, want 3! = 6", n, p.MaxClusterSize())
		}
		if got := MaxOffModuleLinks(g, p); got != n-3 {
			t.Fatalf("star(%d) off-module links = %d, want n-3 = %d", n, got, n-3)
		}
	}
}

// enumeratePerms matches networks.Star's deterministic enumeration order.
func enumeratePerms(n int) [][]byte {
	var out [][]byte
	cur := make([]byte, 0, n)
	used := make([]bool, n)
	var rec func()
	rec = func() {
		if len(cur) == n {
			out = append(out, append([]byte(nil), cur...))
			return
		}
		for v := 0; v < n; v++ {
			if !used[v] {
				used[v] = true
				cur = append(cur, byte(v))
				rec()
				cur = cur[:len(cur)-1]
				used[v] = false
			}
		}
	}
	rec()
	return out
}
