// Package metrics implements the paper's Section 5 figures of merit:
// module (cluster) partitions, inter-cluster degree (I-degree), inter-cluster
// diameter and average inter-cluster distance (I-diameter, average
// I-distance), and the composite DD-, ID-, and II-costs, plus the
// degree-diameter (Moore-style) lower bound used to assess the Theorem 4.4
// optimality claims.
package metrics

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/graph"
)

// Partition assigns every node to a module (cluster).
type Partition struct {
	Of []int32 // cluster id per node
	K  int     // number of clusters
}

// Validate checks that cluster ids cover 0..K-1 and nothing else.
func (p Partition) Validate(n int) error {
	if len(p.Of) != n {
		return fmt.Errorf("metrics: partition covers %d nodes, graph has %d", len(p.Of), n)
	}
	seen := make([]bool, p.K)
	for u, c := range p.Of {
		if c < 0 || int(c) >= p.K {
			return fmt.Errorf("metrics: node %d in out-of-range cluster %d", u, c)
		}
		seen[c] = true
	}
	for c, ok := range seen {
		if !ok {
			return fmt.Errorf("metrics: cluster %d is empty", c)
		}
	}
	return nil
}

// ClusterSizes returns the number of nodes in each cluster.
func (p Partition) ClusterSizes() []int {
	sizes := make([]int, p.K)
	for _, c := range p.Of {
		sizes[c]++
	}
	return sizes
}

// MaxClusterSize returns the largest module population.
func (p Partition) MaxClusterSize() int {
	max := 0
	for _, s := range p.ClusterSizes() {
		if s > max {
			max = s
		}
	}
	return max
}

// PartitionBy builds a partition from an arbitrary string key per node.
func PartitionBy(n int, key func(u int32) string) Partition {
	ids := map[string]int32{}
	of := make([]int32, n)
	for u := 0; u < n; u++ {
		k := key(int32(u))
		id, ok := ids[k]
		if !ok {
			id = int32(len(ids))
			ids[k] = id
		}
		of[u] = id
	}
	return Partition{Of: of, K: len(ids)}
}

// NucleusPartition groups the nodes of a super-IP graph so that each nucleus
// copy occupies one module, the packing recommended in Section 5.3: two
// nodes share a module iff their labels agree on everything except the
// leftmost super-symbol.
func NucleusPartition(ix *core.Index, m int) Partition {
	return PartitionBy(ix.N(), func(u int32) string {
		return string(ix.Label(u)[m:])
	})
}

// SubcubePartition groups hypercube nodes (id = bit string) into subcubes of
// 2^low nodes sharing their high bits.
func SubcubePartition(n, low int) Partition {
	of := make([]int32, n)
	for u := 0; u < n; u++ {
		of[u] = int32(u >> uint(low))
	}
	k := n >> uint(low)
	if k == 0 {
		k = 1
		for i := range of {
			of[i] = 0
		}
	}
	return Partition{Of: of, K: k}
}

// GridPartition tiles an R x C torus/mesh (row-major node ids) with
// br x bc blocks. R must be divisible by br and C by bc.
func GridPartition(rows, cols, br, bc int) (Partition, error) {
	if rows%br != 0 || cols%bc != 0 {
		return Partition{}, fmt.Errorf("metrics: %dx%d grid not tileable by %dx%d", rows, cols, br, bc)
	}
	of := make([]int32, rows*cols)
	tilesPerRow := cols / bc
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			of[r*cols+c] = int32((r/br)*tilesPerRow + c/bc)
		}
	}
	return Partition{Of: of, K: (rows / br) * tilesPerRow}, nil
}

// CrossWeight returns the 0/1 edge-weight function of a partition: on-module
// hops are free, off-module hops cost one transmission.
func (p Partition) CrossWeight() func(u, v int32) int32 {
	return func(u, v int32) int32 {
		if p.Of[u] == p.Of[v] {
			return 0
		}
		return 1
	}
}

// IDegree returns the inter-cluster degree of Section 5.3: the maximum over
// clusters of the average number of off-module links per node in the
// cluster. For directed graphs, out-links are counted.
func IDegree(g *graph.Graph, p Partition) float64 {
	offLinks := make([]int, p.K)
	sizes := p.ClusterSizes()
	for u := 0; u < g.N(); u++ {
		cu := p.Of[u]
		for _, v := range g.Neighbors(int32(u)) {
			if p.Of[v] != cu {
				offLinks[cu]++
			}
		}
	}
	max := 0.0
	for c := 0; c < p.K; c++ {
		if avg := float64(offLinks[c]) / float64(sizes[c]); avg > max {
			max = avg
		}
	}
	return max
}

// MaxOffModuleLinks returns the maximum number of off-module links at any
// single node — the per-node pin bound discussed in Section 5.3.
func MaxOffModuleLinks(g *graph.Graph, p Partition) int {
	max := 0
	for u := 0; u < g.N(); u++ {
		cu := p.Of[u]
		links := 0
		for _, v := range g.Neighbors(int32(u)) {
			if p.Of[v] != cu {
				links++
			}
		}
		if links > max {
			max = links
		}
	}
	return max
}

// IStats measures inter-cluster distance statistics exactly: for each
// ordered pair, the minimum number of off-module transmissions on any path.
// Diameter of the result is the I-diameter; AvgDistance is the average
// I-distance of Fig. 3.
func IStats(g *graph.Graph, p Partition) graph.Stats {
	return g.AllPairsWeighted(p.CrossWeight())
}

// IStatsSampled measures the same statistics from a subset of BFS sources
// (exact I-diameter is not guaranteed; the average is a sampled estimate).
func IStatsSampled(g *graph.Graph, p Partition, sources []int32) graph.Stats {
	return g.PairStatsWeighted(sources, p.CrossWeight())
}

// DDCost is the product of node degree and network diameter (Fig. 2's
// figure of merit, after [7]).
func DDCost(degree, diameter int) int { return degree * diameter }

// IDCost is the product of inter-cluster degree and diameter (Fig. 4).
func IDCost(iDegree float64, diameter int) float64 { return iDegree * float64(diameter) }

// IICost is the product of inter-cluster degree and inter-cluster diameter
// (Fig. 5).
func IICost(iDegree float64, iDiameter int) float64 { return iDegree * float64(iDiameter) }

// MooreDiameterLB returns the universal lower bound on the diameter of any
// N-node graph with maximum degree d: the smallest D such that the Moore
// bound 1 + d + d(d-1) + ... + d(d-1)^(D-1) reaches N.
func MooreDiameterLB(d, n int) int {
	if n <= 1 {
		return 0
	}
	switch {
	case d <= 0:
		return math.MaxInt32
	case d == 1:
		if n <= 2 {
			return 1
		}
		return math.MaxInt32
	case d == 2:
		// 1 + 2D >= N.
		return (n - 1 + 1) / 2
	}
	reach := 1.0
	layer := float64(d)
	for dd := 1; ; dd++ {
		reach += layer
		if reach >= float64(n) {
			return dd
		}
		layer *= float64(d - 1)
		if dd > 64 {
			return dd
		}
	}
}

// OptimalityFactor returns diameter / MooreDiameterLB — the Theorem 4.4
// quantity that tends to 1 + o(1) for suitably constructed super-IP graphs.
func OptimalityFactor(diameter, degree, n int) float64 {
	lb := MooreDiameterLB(degree, n)
	if lb == 0 {
		return 1
	}
	return float64(diameter) / float64(lb)
}

// ThroughputBound returns the classical uniform-traffic throughput upper
// bound in packets per node per cycle: each delivered packet consumes
// avgDistance link-cycles, and the network supplies M directed-link-cycles
// per cycle, so throughput <= M / (N * avgDistance). Section 5.1: "the
// maximum possible throughput of a network is inversely proportional to
// [diameter and average distance] for any switching technique".
func ThroughputBound(g *graph.Graph, avgDistance float64) float64 {
	if avgDistance <= 0 {
		return math.Inf(1)
	}
	// M counts directed link slots (both directions of every undirected
	// edge), which is exactly the per-cycle transmission supply.
	return float64(g.M()) / (float64(g.N()) * avgDistance)
}

// OffModuleThroughputBound returns the analogous bound when off-module
// bandwidth is the bottleneck (Section 5.2): off-module directed links
// divided by (N times the average I-distance). Off-module links are scaled
// by 1/period when they run slower than on-module links.
func OffModuleThroughputBound(g *graph.Graph, p Partition, avgIDistance float64, offPeriod int) float64 {
	if avgIDistance <= 0 {
		return math.Inf(1)
	}
	off := 0
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(int32(u)) {
			if p.Of[u] != p.Of[v] {
				off++
			}
		}
	}
	if offPeriod < 1 {
		offPeriod = 1
	}
	return float64(off) / float64(offPeriod) / (float64(g.N()) * avgIDistance)
}
