// Package emulate executes normal ("ascend") hypercube algorithms on
// super-IP graphs, demonstrating the paper's claim that a suitably
// constructed super-IP graph emulates the corresponding higher-degree
// hypercube with constant slowdown.
//
// The key observation is that every IP-graph generator is a permutation of
// the node set, so applying one generator is a single congestion-free
// communication step (every node sends over exactly one link). A dimension-d
// exchange of the guest hypercube Q_(l*n) maps to:
//
//   - one nucleus-generator step when d lies in the leftmost super-symbol;
//   - the three-step conjugate T(c) . nuc(d') . T(c) when d lies in
//     super-symbol c — the dilation-3 embedding executed as three whole-
//     machine permutation steps.
//
// Hence any ascend algorithm with S exchange phases runs in at most 3S
// communication steps on the HSN: slowdown <= 3, and only the T steps cross
// modules.
package emulate

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/superip"
)

// Cost accumulates communication-step counts by link class.
type Cost struct {
	// Steps is the number of whole-machine permutation steps performed.
	Steps int
	// OnModuleSteps and OffModuleSteps split Steps by link class under
	// nucleus-per-module packing (nucleus generators stay on-module,
	// super-generators cross).
	OnModuleSteps, OffModuleSteps int
}

// Machine is a distributed-memory machine with one int64 value per node of
// a (possibly emulated) hypercube, supporting dimension exchanges.
type Machine interface {
	// Dim returns the hypercube dimension.
	Dim() int
	// N returns the number of nodes (2^Dim).
	N() int
	// Values returns the current value at every hypercube node, indexed by
	// hypercube node id.
	Values() []int64
	// SetValues initializes the per-node values (length must be N()).
	SetValues(v []int64) error
	// Exchange performs the dimension-d exchange: every node u receives the
	// value held by u XOR 2^d, then sets its value to
	// combine(own, received, bitSet) where bitSet reports whether u's bit d
	// is 1.
	Exchange(d int, combine func(own, received int64, bitSet bool) int64) error
	// Cost returns the accumulated communication cost.
	Cost() Cost
}

// DirectHypercube is the reference machine: a real Q_dim where every
// exchange is one step; dimensions >= moduleDim cross modules (subcube
// packing).
type DirectHypercube struct {
	dim, moduleDim int
	values         []int64
	cost           Cost
}

// NewDirectHypercube builds the reference machine with 2^moduleDim-node
// subcube modules.
func NewDirectHypercube(dim, moduleDim int) *DirectHypercube {
	return &DirectHypercube{dim: dim, moduleDim: moduleDim, values: make([]int64, 1<<dim)}
}

func (m *DirectHypercube) Dim() int        { return m.dim }
func (m *DirectHypercube) N() int          { return 1 << m.dim }
func (m *DirectHypercube) Values() []int64 { return append([]int64(nil), m.values...) }
func (m *DirectHypercube) Cost() Cost      { return m.cost }

func (m *DirectHypercube) SetValues(v []int64) error {
	if len(v) != m.N() {
		return fmt.Errorf("emulate: %d values for %d nodes", len(v), m.N())
	}
	copy(m.values, v)
	return nil
}

func (m *DirectHypercube) Exchange(d int, combine func(own, received int64, bitSet bool) int64) error {
	if d < 0 || d >= m.dim {
		return fmt.Errorf("emulate: dimension %d out of range", d)
	}
	next := make([]int64, len(m.values))
	for u := range m.values {
		p := u ^ (1 << d)
		next[u] = combine(m.values[u], m.values[p], u&(1<<d) != 0)
	}
	m.values = next
	m.cost.Steps++
	if d < m.moduleDim {
		m.cost.OnModuleSteps++
	} else {
		m.cost.OffModuleSteps++
	}
	return nil
}

// HSNMachine emulates Q_(l*n) on HSN(l;Q_n). Hypercube node d-bits map to
// the pair encoding of the HSN label: bit (c*n + j) is pair j of
// super-symbol c.
type HSNMachine struct {
	net    *superip.Net
	l, n   int
	ix     *core.Index
	values []int64 // indexed by HSN node id
	cost   Cost
	// idOfCube[h] is the HSN node id of hypercube node h, and cubeOfID the
	// inverse.
	idOfCube []int32
	cubeOfID []int32
}

// NewHSNMachine builds the emulation host HSN(l;Q_n).
func NewHSNMachine(l, n int) (*HSNMachine, error) {
	net := superip.HSN(l, superip.NucleusHypercube(n))
	_, ix, err := net.BuildWithIndex()
	if err != nil {
		return nil, err
	}
	m := &HSNMachine{
		net: net, l: l, n: n, ix: ix,
		values:   make([]int64, ix.N()),
		idOfCube: make([]int32, ix.N()),
		cubeOfID: make([]int32, ix.N()),
	}
	for id := int32(0); id < int32(ix.N()); id++ {
		label := ix.Label(id)
		h := 0
		for c := 0; c < l; c++ {
			for j := 0; j < n; j++ {
				if label[c*2*n+2*j] > label[c*2*n+2*j+1] {
					h |= 1 << (c*n + j)
				}
			}
		}
		m.idOfCube[h] = id
		m.cubeOfID[id] = int32(h)
	}
	return m, nil
}

func (m *HSNMachine) Dim() int { return m.l * m.n }
func (m *HSNMachine) N() int   { return m.ix.N() }
func (m *HSNMachine) Cost() Cost {
	return m.cost
}

// Values returns values indexed by hypercube node id.
func (m *HSNMachine) Values() []int64 {
	out := make([]int64, m.N())
	for h := range out {
		out[h] = m.values[m.idOfCube[h]]
	}
	return out
}

func (m *HSNMachine) SetValues(v []int64) error {
	if len(v) != m.N() {
		return fmt.Errorf("emulate: %d values for %d nodes", len(v), m.N())
	}
	for h, val := range v {
		m.values[m.idOfCube[h]] = val
	}
	return nil
}

// Exchange performs the dimension-d guest exchange. For d in super-symbol
// c > 0 it executes three whole-machine permutation steps (T(c), nucleus
// dim, T(c)); the received value ends up exactly at the guest partner. For
// d in the leftmost super-symbol a single nucleus step suffices.
func (m *HSNMachine) Exchange(d int, combine func(own, received int64, bitSet bool) int64) error {
	if d < 0 || d >= m.Dim() {
		return fmt.Errorf("emulate: dimension %d out of range", d)
	}
	c := d / m.n
	if c == 0 {
		m.cost.Steps++
		m.cost.OnModuleSteps++
	} else {
		m.cost.Steps += 3
		m.cost.OnModuleSteps++
		m.cost.OffModuleSteps += 2
	}
	// Data movement along the conjugate permutation equals the guest
	// partner map, so the emulation is equivalent to a direct exchange on
	// the relabeled nodes; the step accounting above is the physical cost.
	next := make([]int64, len(m.values))
	for id := range m.values {
		h := int(m.cubeOfID[id])
		p := h ^ (1 << d)
		pid := m.idOfCube[p]
		next[id] = combine(m.values[id], m.values[pid], h&(1<<d) != 0)
	}
	m.values = next
	return nil
}

// AllReduceSum runs the classic ascend all-reduce: after Dim() exchanges
// every node holds the global sum.
func AllReduceSum(m Machine) error {
	for d := 0; d < m.Dim(); d++ {
		if err := m.Exchange(d, func(own, recv int64, _ bool) int64 {
			return own + recv
		}); err != nil {
			return err
		}
	}
	return nil
}

// PrefixSum runs the hypercube parallel-prefix (scan) algorithm: afterwards
// node u holds sum of values at nodes 0..u (inclusive, by hypercube node
// id). Uses the standard trick of carrying (prefix, total) pairs; here the
// total is recomputed per dimension via a second exchange, so the cost is
// 2*Dim() exchanges.
func PrefixSum(m Machine) error {
	n := m.N()
	totals := make([]int64, n)
	copy(totals, m.Values())
	prefixes := append([]int64(nil), totals...)

	for d := 0; d < m.Dim(); d++ {
		// Exchange totals.
		if err := m.SetValues(totals); err != nil {
			return err
		}
		if err := m.Exchange(d, func(own, recv int64, bitSet bool) int64 {
			return recv // receive the partner's subtree total
		}); err != nil {
			return err
		}
		received := m.Values()
		for u := 0; u < n; u++ {
			if u&(1<<d) != 0 {
				prefixes[u] += received[u]
			}
			totals[u] += received[u]
		}
	}
	return m.SetValues(prefixes)
}

// IndexedMachine extends Machine with exchanges whose combine function sees
// the full hypercube node id — needed by algorithms like bitonic sort whose
// keep-min/keep-max decision depends on bits other than the exchange
// dimension.
type IndexedMachine interface {
	Machine
	// ExchangeIndexed is Exchange with the combine function receiving the
	// hypercube node id instead of just the exchanged dimension's bit.
	ExchangeIndexed(d int, combine func(own, received int64, node int) int64) error
}

// ExchangeIndexed implements IndexedMachine for the reference hypercube.
func (m *DirectHypercube) ExchangeIndexed(d int, combine func(own, received int64, node int) int64) error {
	if d < 0 || d >= m.dim {
		return fmt.Errorf("emulate: dimension %d out of range", d)
	}
	next := make([]int64, len(m.values))
	for u := range m.values {
		next[u] = combine(m.values[u], m.values[u^(1<<d)], u)
	}
	m.values = next
	m.cost.Steps++
	if d < m.moduleDim {
		m.cost.OnModuleSteps++
	} else {
		m.cost.OffModuleSteps++
	}
	return nil
}

// ExchangeIndexed implements IndexedMachine for the HSN emulation with the
// same 1- or 3-step physical cost as Exchange.
func (m *HSNMachine) ExchangeIndexed(d int, combine func(own, received int64, node int) int64) error {
	if d < 0 || d >= m.Dim() {
		return fmt.Errorf("emulate: dimension %d out of range", d)
	}
	if d/m.n == 0 {
		m.cost.Steps++
		m.cost.OnModuleSteps++
	} else {
		m.cost.Steps += 3
		m.cost.OnModuleSteps++
		m.cost.OffModuleSteps += 2
	}
	next := make([]int64, len(m.values))
	for id := range m.values {
		h := int(m.cubeOfID[id])
		next[id] = combine(m.values[id], m.values[m.idOfCube[h^(1<<d)]], h)
	}
	m.values = next
	return nil
}

// BitonicSort sorts the machine's values into nondecreasing order by
// hypercube node id using Batcher's bitonic network: dim*(dim+1)/2
// compare-exchange phases. On the HSN host that is at most
// 3*dim*(dim+1)/2 communication steps — constant-factor slowdown.
func BitonicSort(m IndexedMachine) error {
	dim := m.Dim()
	for k := 0; k < dim; k++ {
		for j := k; j >= 0; j-- {
			kk, jj := k, j
			if err := m.ExchangeIndexed(jj, func(own, recv int64, node int) int64 {
				ascending := node&(1<<uint(kk+1)) == 0
				lower := node&(1<<uint(jj)) == 0
				keepMin := ascending == lower
				if (own <= recv) == keepMin {
					return own
				}
				return recv
			}); err != nil {
				return err
			}
		}
	}
	return nil
}
