package emulate

import (
	"math/rand"
	"sort"
	"testing"
)

func randomValues(n int, seed int64) []int64 {
	r := rand.New(rand.NewSource(seed))
	v := make([]int64, n)
	for i := range v {
		v[i] = int64(r.Intn(1000))
	}
	return v
}

func TestAllReduceDirect(t *testing.T) {
	m := NewDirectHypercube(6, 3)
	in := randomValues(m.N(), 1)
	if err := m.SetValues(in); err != nil {
		t.Fatal(err)
	}
	if err := AllReduceSum(m); err != nil {
		t.Fatal(err)
	}
	var want int64
	for _, v := range in {
		want += v
	}
	for u, v := range m.Values() {
		if v != want {
			t.Fatalf("node %d holds %d, want %d", u, v, want)
		}
	}
	c := m.Cost()
	if c.Steps != 6 || c.OnModuleSteps != 3 || c.OffModuleSteps != 3 {
		t.Fatalf("direct cost = %+v", c)
	}
}

func TestAllReduceEmulated(t *testing.T) {
	for _, tc := range []struct{ l, n int }{{2, 2}, {2, 3}, {3, 2}, {2, 4}} {
		m, err := NewHSNMachine(tc.l, tc.n)
		if err != nil {
			t.Fatal(err)
		}
		in := randomValues(m.N(), int64(tc.l*10+tc.n))
		if err := m.SetValues(in); err != nil {
			t.Fatal(err)
		}
		if err := AllReduceSum(m); err != nil {
			t.Fatal(err)
		}
		var want int64
		for _, v := range in {
			want += v
		}
		for u, v := range m.Values() {
			if v != want {
				t.Fatalf("HSN(%d;Q%d) node %d holds %d, want %d", tc.l, tc.n, u, v, want)
			}
		}
		// Slowdown claim: at most 3x the direct hypercube's steps, and
		// exactly n on-module + 3n(l-1) steps split 1:2 on/off for the
		// non-leftmost dimensions.
		c := m.Cost()
		dims := tc.l * tc.n
		if c.Steps > 3*dims {
			t.Fatalf("HSN emulation took %d steps for %d exchanges (slowdown > 3)", c.Steps, dims)
		}
		wantSteps := tc.n + 3*tc.n*(tc.l-1)
		if c.Steps != wantSteps {
			t.Fatalf("steps = %d, want %d", c.Steps, wantSteps)
		}
		if c.OffModuleSteps != 2*tc.n*(tc.l-1) {
			t.Fatalf("off-module steps = %d, want %d", c.OffModuleSteps, 2*tc.n*(tc.l-1))
		}
	}
}

func TestEmulatedMatchesDirect(t *testing.T) {
	// The emulated machine must produce bit-identical results to the direct
	// hypercube for an arbitrary combine function.
	direct := NewDirectHypercube(6, 3)
	emu, err := NewHSNMachine(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	in := randomValues(direct.N(), 7)
	if err := direct.SetValues(in); err != nil {
		t.Fatal(err)
	}
	if err := emu.SetValues(in); err != nil {
		t.Fatal(err)
	}
	combine := func(own, recv int64, bitSet bool) int64 {
		if bitSet {
			return own*3 - recv
		}
		return own + 2*recv
	}
	for d := 0; d < 6; d++ {
		if err := direct.Exchange(d, combine); err != nil {
			t.Fatal(err)
		}
		if err := emu.Exchange(d, combine); err != nil {
			t.Fatal(err)
		}
	}
	dv, ev := direct.Values(), emu.Values()
	for u := range dv {
		if dv[u] != ev[u] {
			t.Fatalf("node %d: direct %d vs emulated %d", u, dv[u], ev[u])
		}
	}
}

func TestPrefixSum(t *testing.T) {
	for _, m := range []Machine{
		NewDirectHypercube(5, 2),
		mustHSN(t, 2, 3),
	} {
		in := randomValues(m.N(), 3)
		if err := m.SetValues(in); err != nil {
			t.Fatal(err)
		}
		if err := PrefixSum(m); err != nil {
			t.Fatal(err)
		}
		var run int64
		out := m.Values()
		for u := 0; u < m.N(); u++ {
			run += in[u]
			if out[u] != run {
				t.Fatalf("prefix at %d = %d, want %d", u, out[u], run)
			}
		}
	}
}

func mustHSN(t *testing.T, l, n int) *HSNMachine {
	t.Helper()
	m, err := NewHSNMachine(l, n)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestExchangeErrors(t *testing.T) {
	m := NewDirectHypercube(3, 1)
	if err := m.Exchange(5, nil); err == nil {
		t.Fatal("out-of-range dimension must fail")
	}
	if err := m.SetValues(make([]int64, 3)); err == nil {
		t.Fatal("wrong value count must fail")
	}
	e := mustHSN(t, 2, 2)
	if err := e.Exchange(-1, nil); err == nil {
		t.Fatal("negative dimension must fail")
	}
	if err := e.SetValues(make([]int64, 3)); err == nil {
		t.Fatal("wrong value count must fail")
	}
}

func TestBitonicSort(t *testing.T) {
	for _, m := range []IndexedMachine{
		NewDirectHypercube(6, 3),
		mustHSN(t, 2, 3),
		mustHSN(t, 3, 2),
	} {
		in := randomValues(m.N(), 9)
		if err := m.SetValues(in); err != nil {
			t.Fatal(err)
		}
		if err := BitonicSort(m); err != nil {
			t.Fatal(err)
		}
		out := m.Values()
		want := append([]int64(nil), in...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for u := range out {
			if out[u] != want[u] {
				t.Fatalf("N=%d: sorted[%d] = %d, want %d", m.N(), u, out[u], want[u])
			}
		}
		// Cost bound: <= 3 * dim*(dim+1)/2 steps on the HSN.
		dim := m.Dim()
		if m.Cost().Steps > 3*dim*(dim+1)/2 {
			t.Fatalf("bitonic sort took %d steps, bound %d", m.Cost().Steps, 3*dim*(dim+1)/2)
		}
	}
}

func TestBitonicSortDimError(t *testing.T) {
	m := NewDirectHypercube(3, 1)
	if err := m.ExchangeIndexed(7, nil); err == nil {
		t.Fatal("out-of-range indexed exchange must fail")
	}
	e := mustHSN(t, 2, 2)
	if err := e.ExchangeIndexed(-1, nil); err == nil {
		t.Fatal("out-of-range indexed exchange must fail")
	}
}
