// Package faults measures the robustness attributes of interconnection
// networks: exact edge and vertex connectivity via unit-capacity max-flow
// (Menger's theorem), and Monte-Carlo fault injection reporting survival
// probability and diameter inflation. The paper motivates the star graph
// and its super-IP relatives partly by their "fault tolerance properties";
// this package quantifies those properties for every network in the
// repository.
package faults

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// maxflow computes the max flow from s to t in a unit-capacity directed
// graph given as adjacency with mutable residual capacities. Nodes are
// 0..n-1; arcs come in (to, rev, cap) triples.
type flowNet struct {
	n   int
	to  [][]int32
	rev [][]int32
	cap [][]int8
}

func newFlowNet(n int) *flowNet {
	return &flowNet{
		n:   n,
		to:  make([][]int32, n),
		rev: make([][]int32, n),
		cap: make([][]int8, n),
	}
}

func (f *flowNet) addEdge(u, v int32, c int8) {
	f.to[u] = append(f.to[u], v)
	f.rev[u] = append(f.rev[u], int32(len(f.to[v])))
	f.cap[u] = append(f.cap[u], c)
	f.to[v] = append(f.to[v], u)
	f.rev[v] = append(f.rev[v], int32(len(f.to[u])-1))
	f.cap[v] = append(f.cap[v], 0)
}

// maxflow runs BFS augmenting paths (unit capacities, flow bounded by
// degree, so this is fast enough for the sizes we measure).
func (f *flowNet) maxflow(s, t int32, bound int) int {
	flow := 0
	prevNode := make([]int32, f.n)
	prevEdge := make([]int32, f.n)
	for flow < bound {
		for i := range prevNode {
			prevNode[i] = -1
		}
		prevNode[s] = s
		queue := []int32{s}
		found := false
		for head := 0; head < len(queue) && !found; head++ {
			u := queue[head]
			for ei, v := range f.to[u] {
				if f.cap[u][ei] > 0 && prevNode[v] == -1 {
					prevNode[v] = u
					prevEdge[v] = int32(ei)
					if v == t {
						found = true
						break
					}
					queue = append(queue, v)
				}
			}
		}
		if !found {
			break
		}
		for v := t; v != s; {
			u := prevNode[v]
			ei := prevEdge[v]
			f.cap[u][ei]--
			f.cap[v][f.rev[u][ei]]++
			v = u
		}
		flow++
	}
	return flow
}

// EdgeConnectivity returns lambda(G): the minimum number of edge removals
// that disconnect the (undirected, connected) graph. Computed as the
// minimum over t of maxflow(0, t) with unit edge capacities.
func EdgeConnectivity(g *graph.Graph) (int, error) {
	if g.Directed {
		return 0, fmt.Errorf("faults: edge connectivity requires an undirected graph")
	}
	if g.N() < 2 {
		return 0, fmt.Errorf("faults: need at least 2 nodes")
	}
	if !g.IsConnected() {
		return 0, nil
	}
	best := g.N() * g.N()
	for t := int32(1); t < int32(g.N()); t++ {
		f := newFlowNet(g.N())
		for u := 0; u < g.N(); u++ {
			for _, v := range g.Neighbors(int32(u)) {
				if v > int32(u) {
					f.addEdge(int32(u), v, 1)
					f.addEdge(v, int32(u), 1)
				}
			}
		}
		if fl := f.maxflow(0, t, best); fl < best {
			best = fl
		}
	}
	return best, nil
}

// VertexConnectivity returns kappa(G): the minimum number of node removals
// that disconnect the graph (n-1 for complete graphs). Uses Menger via
// node-split max-flow; by the standard cut argument it suffices to take
// sources in {v0} union N(v0) and sinks non-adjacent to the source.
func VertexConnectivity(g *graph.Graph) (int, error) {
	if g.Directed {
		return 0, fmt.Errorf("faults: vertex connectivity requires an undirected graph")
	}
	n := g.N()
	if n < 2 {
		return 0, fmt.Errorf("faults: need at least 2 nodes")
	}
	if !g.IsConnected() {
		return 0, nil
	}
	// Complete graph: no non-adjacent pairs exist.
	complete := true
	for u := 0; u < n && complete; u++ {
		if g.Degree(int32(u)) != n-1 {
			complete = false
		}
	}
	if complete {
		return n - 1, nil
	}
	// Node-split network: node v becomes v_in = 2v, v_out = 2v+1 with a
	// unit arc between them; edges have effectively unbounded capacity
	// (capacity 2 suffices since node arcs bottleneck at 1... use a high
	// value within int8).
	flowBetween := func(s, t int32) int {
		f := newFlowNet(2 * n)
		for v := 0; v < n; v++ {
			c := int8(1)
			if int32(v) == s || int32(v) == t {
				c = 100
			}
			f.addEdge(int32(2*v), int32(2*v+1), c)
		}
		for u := 0; u < n; u++ {
			for _, v := range g.Neighbors(int32(u)) {
				f.addEdge(int32(2*u+1), int32(2*v), 100)
			}
		}
		return f.maxflow(2*s+1, 2*t, n)
	}
	adjacent := func(u, v int32) bool { return g.HasEdge(u, v) }

	best := n - 1
	sources := append([]int32{0}, g.Neighbors(0)...)
	for _, s := range sources {
		for t := int32(0); t < int32(n); t++ {
			if t == s || adjacent(s, t) {
				continue
			}
			if fl := flowBetween(s, t); fl < best {
				best = fl
			}
		}
	}
	return best, nil
}

// InjectionResult summarizes Monte-Carlo node-fault injection.
type InjectionResult struct {
	Trials int
	// SurvivedConnected counts trials where the surviving nodes remained
	// connected.
	SurvivedConnected int
	// MaxDiameter is the largest diameter observed among connected
	// survivors (0 if none).
	MaxDiameter int
	// MeanDiameter averages over connected-survivor trials.
	MeanDiameter float64
}

// InjectNodeFaults removes `failures` uniformly random nodes per trial and
// measures the surviving subgraph.
func InjectNodeFaults(g *graph.Graph, failures, trials int, seed int64) (InjectionResult, error) {
	if failures < 0 || failures >= g.N() {
		return InjectionResult{}, fmt.Errorf("faults: cannot fail %d of %d nodes", failures, g.N())
	}
	rng := rand.New(rand.NewSource(seed))
	res := InjectionResult{Trials: trials}
	var diamSum int64
	for trial := 0; trial < trials; trial++ {
		dead := make([]bool, g.N())
		for k := 0; k < failures; {
			v := rng.Intn(g.N())
			if !dead[v] {
				dead[v] = true
				k++
			}
		}
		sub, ok := survivorGraph(g, dead)
		if !ok {
			continue
		}
		st := sub.AllPairs()
		if !st.Connected {
			continue
		}
		res.SurvivedConnected++
		diamSum += int64(st.Diameter)
		if int(st.Diameter) > res.MaxDiameter {
			res.MaxDiameter = int(st.Diameter)
		}
	}
	if res.SurvivedConnected > 0 {
		res.MeanDiameter = float64(diamSum) / float64(res.SurvivedConnected)
	}
	return res, nil
}

// survivorGraph extracts the subgraph induced by live nodes. Returns false
// if fewer than two nodes survive.
func survivorGraph(g *graph.Graph, dead []bool) (*graph.Graph, bool) {
	remap := make([]int32, g.N())
	alive := int32(0)
	for v := 0; v < g.N(); v++ {
		if dead[v] {
			remap[v] = -1
		} else {
			remap[v] = alive
			alive++
		}
	}
	if alive < 2 {
		return nil, false
	}
	b := graph.NewBuilder(int(alive), g.Directed)
	for u := 0; u < g.N(); u++ {
		if dead[u] {
			continue
		}
		for _, v := range g.Neighbors(int32(u)) {
			if !dead[v] {
				b.AddArc(remap[u], remap[v])
			}
		}
	}
	return b.Build(), true
}

// FaultDiameter returns the exact (f)-fault diameter for small graphs: the
// maximum, over all ways to remove up to f nodes that leave the graph
// connected, of the surviving diameter. Exponential in f; intended for
// f <= 2 on small networks.
func FaultDiameter(g *graph.Graph, f int) (int, error) {
	if f < 0 {
		return 0, fmt.Errorf("faults: negative fault count")
	}
	worst := 0
	dead := make([]bool, g.N())
	var rec func(start, remaining int) error
	rec = func(start, remaining int) error {
		sub, ok := survivorGraph(g, dead)
		if ok {
			st := sub.AllPairs()
			if st.Connected && int(st.Diameter) > worst {
				worst = int(st.Diameter)
			}
		}
		if remaining == 0 {
			return nil
		}
		for v := start; v < g.N(); v++ {
			dead[v] = true
			if err := rec(v+1, remaining-1); err != nil {
				return err
			}
			dead[v] = false
		}
		return nil
	}
	if err := rec(0, f); err != nil {
		return 0, err
	}
	return worst, nil
}

// DisjointPaths returns a maximum set of internally vertex-disjoint paths
// from s to t (Menger: their number equals the s-t vertex connectivity for
// non-adjacent s,t). Paths are returned as node sequences including s and t.
func DisjointPaths(g *graph.Graph, s, t int32) ([][]int32, error) {
	if g.Directed {
		return nil, fmt.Errorf("faults: undirected graphs only")
	}
	if s == t {
		return nil, fmt.Errorf("faults: s == t")
	}
	n := g.N()
	// Node-split flow network; then decompose the integral flow into paths.
	f := newFlowNet(2 * n)
	for v := 0; v < n; v++ {
		c := int8(1)
		if int32(v) == s || int32(v) == t {
			c = 100
		}
		f.addEdge(int32(2*v), int32(2*v+1), c)
	}
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(int32(u)) {
			f.addEdge(int32(2*u+1), int32(2*v), 1)
		}
	}
	flow := f.maxflow(2*s+1, 2*t, n)
	// Decompose: repeatedly walk saturated arcs from s_out to t_in. An arc
	// (u,ei) is used iff its residual capacity dropped below the original.
	used := make([][]bool, 2*n)
	orig := make([][]int8, 2*n)
	for v := range used {
		used[v] = make([]bool, len(f.to[v]))
		orig[v] = make([]int8, len(f.to[v]))
	}
	// Reconstruct original capacities: forward arcs had cap >0 initially
	// in our construction exactly when they are at even index parity of
	// insertion... simpler: rebuild a fresh network to read initial caps.
	f0 := newFlowNet(2 * n)
	for v := 0; v < n; v++ {
		c := int8(1)
		if int32(v) == s || int32(v) == t {
			c = 100
		}
		f0.addEdge(int32(2*v), int32(2*v+1), c)
	}
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(int32(u)) {
			f0.addEdge(int32(2*u+1), int32(2*v), 1)
		}
	}
	flowOn := func(v int32, ei int) int8 {
		return f0.cap[v][ei] - f.cap[v][ei] // positive where flow traversed
	}
	var paths [][]int32
	// spliceLoops removes any cycles the walk may have traversed (possible
	// when augmentation left circular flow), keeping a simple path.
	spliceLoops := func(path []int32) []int32 {
		pos := map[int32]int{}
		out := path[:0:0]
		for _, v := range path {
			if i, ok := pos[v]; ok {
				for _, w := range out[i+1:] {
					delete(pos, w)
				}
				out = out[:i+1]
				continue
			}
			pos[v] = len(out)
			out = append(out, v)
		}
		return out
	}
	for k := 0; k < flow; k++ {
		// Walk from s_out following positive-flow arcs, cancelling as we go.
		var path []int32
		path = append(path, s)
		cur := int32(2*s + 1)
		steps := 0
		for cur != int32(2*t) {
			advanced := false
			for ei, to := range f.to[cur] {
				if flowOn(cur, ei) > 0 && !used[cur][ei] {
					used[cur][ei] = true
					cur = to
					if cur%2 == 0 && cur != int32(2*t) {
						// Entering node cur/2 via its in-vertex; the next arc
						// is the internal one; record the node when leaving.
					}
					if cur%2 == 1 {
						path = append(path, cur/2)
					}
					advanced = true
					break
				}
			}
			if !advanced {
				return nil, fmt.Errorf("faults: flow decomposition stuck at %d", cur)
			}
			if steps++; steps > 4*(n+g.M()) {
				return nil, fmt.Errorf("faults: flow decomposition loop")
			}
		}
		path = append(path, t)
		paths = append(paths, spliceLoops(path))
	}
	return paths, nil
}
