package faults

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/networks"
	"repro/internal/superip"
)

func TestConnectivityKnownValues(t *testing.T) {
	cases := []struct {
		name        string
		build       func() (*graph.Graph, error)
		kappa, lamb int
	}{
		{"Q3", networks.Hypercube{Dim: 3}.Build, 3, 3},
		{"Q4", networks.Hypercube{Dim: 4}.Build, 4, 4},
		{"Q5", networks.Hypercube{Dim: 5}.Build, 5, 5},
		{"FQ3", networks.FoldedHypercube{Dim: 3}.Build, 4, 4},
		{"star4", networks.Star{Symbols: 4}.Build, 3, 3},
		{"star5", networks.Star{Symbols: 5}.Build, 4, 4},
		{"Petersen", networks.Petersen{}.Build, 3, 3},
		{"ring8", networks.Ring{Nodes: 8}.Build, 2, 2},
		{"K5", networks.Complete{Nodes: 5}.Build, 4, 4},
		{"CCC3", networks.CCC{Dim: 3}.Build, 3, 3},
	}
	for _, c := range cases {
		g, err := c.build()
		if err != nil {
			t.Fatal(err)
		}
		k, err := VertexConnectivity(g)
		if err != nil {
			t.Fatal(err)
		}
		if k != c.kappa {
			t.Fatalf("%s: kappa = %d, want %d", c.name, k, c.kappa)
		}
		l, err := EdgeConnectivity(g)
		if err != nil {
			t.Fatal(err)
		}
		if l != c.lamb {
			t.Fatalf("%s: lambda = %d, want %d", c.name, l, c.lamb)
		}
	}
}

func TestConnectivityOfSuperIPGraphs(t *testing.T) {
	// Plain HSN(2;Q2) has min degree 2 (the self-paired nodes), so its
	// connectivity is at most 2; the symmetric variant is 3-regular and
	// should achieve connectivity 3 (Cayley graphs of connected generator
	// sets are maximally connected in all our instances).
	plain := superip.HSN(2, superip.NucleusHypercube(2))
	pg, err := plain.Build()
	if err != nil {
		t.Fatal(err)
	}
	k, err := VertexConnectivity(pg)
	if err != nil {
		t.Fatal(err)
	}
	if k != 2 {
		t.Fatalf("HSN(2;Q2) kappa = %d, want 2 (min degree)", k)
	}
	sym := plain.SymmetricVariant()
	sg, err := sym.Build()
	if err != nil {
		t.Fatal(err)
	}
	ks, err := VertexConnectivity(sg)
	if err != nil {
		t.Fatal(err)
	}
	if ks != 3 {
		t.Fatalf("sym-HSN(2;Q2) kappa = %d, want 3", ks)
	}
	// Connectivity never exceeds min degree (Whitney).
	ring := superip.RingCN(3, superip.NucleusHypercube(2))
	rg, err := ring.Build()
	if err != nil {
		t.Fatal(err)
	}
	kr, err := VertexConnectivity(rg)
	if err != nil {
		t.Fatal(err)
	}
	lr, err := EdgeConnectivity(rg)
	if err != nil {
		t.Fatal(err)
	}
	if !(kr <= lr && lr <= rg.MinDegree()) {
		t.Fatalf("Whitney violated: kappa=%d lambda=%d minDeg=%d", kr, lr, rg.MinDegree())
	}
}

func TestDisconnected(t *testing.T) {
	b := graph.NewBuilder(4, false)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g := b.Build()
	if k, _ := VertexConnectivity(g); k != 0 {
		t.Fatalf("kappa of disconnected graph = %d", k)
	}
	if l, _ := EdgeConnectivity(g); l != 0 {
		t.Fatalf("lambda of disconnected graph = %d", l)
	}
}

func TestConnectivityErrors(t *testing.T) {
	d := graph.NewBuilder(2, true)
	d.AddEdge(0, 1)
	if _, err := VertexConnectivity(d.Build()); err == nil {
		t.Fatal("directed graph must fail")
	}
	if _, err := EdgeConnectivity(d.Build()); err == nil {
		t.Fatal("directed graph must fail")
	}
	single := graph.NewBuilder(1, false).Build()
	if _, err := VertexConnectivity(single); err == nil {
		t.Fatal("single node must fail")
	}
}

func TestInjectNodeFaults(t *testing.T) {
	g, err := networks.Hypercube{Dim: 5}.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Killing 2 of 32 nodes of a 5-connected graph: survivors almost
	// always connected.
	res, err := InjectNodeFaults(g, 2, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.SurvivedConnected != res.Trials {
		t.Fatalf("Q5 with 2 faults: %d/%d survived; 5-connected graphs tolerate any 2 faults",
			res.SurvivedConnected, res.Trials)
	}
	if res.MaxDiameter < 5 {
		t.Fatalf("faulty diameter %d below fault-free diameter", res.MaxDiameter)
	}
	// A ring disconnects whenever 2 non-adjacent nodes die.
	ring, _ := networks.Ring{Nodes: 16}.Build()
	res, err = InjectNodeFaults(ring, 2, 300, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.SurvivedConnected == res.Trials {
		t.Fatal("ring with 2 faults should sometimes disconnect")
	}
	if _, err := InjectNodeFaults(g, 32, 1, 1); err == nil {
		t.Fatal("failing all nodes must error")
	}
}

func TestFaultDiameterHypercube(t *testing.T) {
	// Known results: with a single fault the hypercube keeps diameter n
	// (n node-disjoint shortest paths between antipodes), and with n-1
	// faults the fault diameter is n+1.
	for _, n := range []int{3, 4} {
		g, err := networks.Hypercube{Dim: n}.Build()
		if err != nil {
			t.Fatal(err)
		}
		fd1, err := FaultDiameter(g, 1)
		if err != nil {
			t.Fatal(err)
		}
		if fd1 != n {
			t.Fatalf("Q%d 1-fault diameter = %d, want %d", n, fd1, n)
		}
		fdMax, err := FaultDiameter(g, n-1)
		if err != nil {
			t.Fatal(err)
		}
		if fdMax != n+1 {
			t.Fatalf("Q%d (n-1)-fault diameter = %d, want %d", n, fdMax, n+1)
		}
	}
	if _, err := FaultDiameter(nil, -1); err == nil {
		t.Fatal("negative fault count must fail")
	}
}

func TestFaultDiameterHSN(t *testing.T) {
	// The super-IP graphs degrade gracefully: removing one node of
	// HSN(2;Q2) (diameter 5) inflates the diameter by a bounded amount.
	net := superip.HSN(2, superip.NucleusHypercube(2))
	g, err := net.Build()
	if err != nil {
		t.Fatal(err)
	}
	fd, err := FaultDiameter(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fd < net.Diameter() || fd > net.Diameter()+3 {
		t.Fatalf("HSN(2;Q2) 1-fault diameter = %d (fault-free %d)", fd, net.Diameter())
	}
}

func TestDisjointPaths(t *testing.T) {
	for _, c := range []struct {
		name  string
		build func() (*graph.Graph, error)
		want  int // expected path count for a non-adjacent pair
	}{
		{"Q4", networks.Hypercube{Dim: 4}.Build, 4},
		{"Petersen", networks.Petersen{}.Build, 3},
		{"star4", networks.Star{Symbols: 4}.Build, 3},
	} {
		g, err := c.build()
		if err != nil {
			t.Fatal(err)
		}
		// Find a non-adjacent pair (0, t).
		var tgt int32 = -1
		for v := int32(1); v < int32(g.N()); v++ {
			if !g.HasEdge(0, v) {
				tgt = v
				break
			}
		}
		if tgt < 0 {
			t.Fatalf("%s: no non-adjacent pair", c.name)
		}
		paths, err := DisjointPaths(g, 0, tgt)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if len(paths) != c.want {
			t.Fatalf("%s: %d disjoint paths, want %d", c.name, len(paths), c.want)
		}
		seen := map[int32]bool{}
		for _, p := range paths {
			if p[0] != 0 || p[len(p)-1] != tgt {
				t.Fatalf("%s: path endpoints wrong: %v", c.name, p)
			}
			for i := 0; i+1 < len(p); i++ {
				if !g.HasEdge(p[i], p[i+1]) {
					t.Fatalf("%s: path step %d-%d not an edge", c.name, p[i], p[i+1])
				}
			}
			for _, v := range p[1 : len(p)-1] {
				if seen[v] {
					t.Fatalf("%s: internal node %d reused across paths", c.name, v)
				}
				seen[v] = true
			}
		}
	}
}

func TestDisjointPathsErrors(t *testing.T) {
	g, _ := networks.Ring{Nodes: 5}.Build()
	if _, err := DisjointPaths(g, 2, 2); err == nil {
		t.Fatal("s == t must fail")
	}
	d := graph.NewBuilder(2, true)
	d.AddEdge(0, 1)
	if _, err := DisjointPaths(d.Build(), 0, 1); err == nil {
		t.Fatal("directed must fail")
	}
}

func TestDisjointPathsDisconnectedPair(t *testing.T) {
	// s and t in different components: the max-flow is zero, so the
	// decomposition returns no paths and no error — callers distinguish
	// "disconnected" from failure by the empty result.
	b := graph.NewBuilder(6, false)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	g := b.Build()
	paths, err := DisjointPaths(g, 0, 5)
	if err != nil {
		t.Fatalf("disconnected pair must not error: %v", err)
	}
	if len(paths) != 0 {
		t.Fatalf("disconnected pair yielded %d paths", len(paths))
	}
}

func TestDisjointPathsAdjacentPair(t *testing.T) {
	// Menger for adjacent s,t: the direct edge is itself a path; on Q3 the
	// count for neighbors is deg = 3 (edge plus two length-3 detours... in
	// fact kappa(Q3)=3 paths exist).
	g, err := networks.Hypercube{Dim: 3}.Build()
	if err != nil {
		t.Fatal(err)
	}
	paths, err := DisjointPaths(g, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Fatalf("adjacent pair in Q3: %d disjoint paths, want 3", len(paths))
	}
	seen := map[int32]bool{}
	for _, p := range paths {
		if p[0] != 0 || p[len(p)-1] != 1 {
			t.Fatalf("path endpoints wrong: %v", p)
		}
		for i := 0; i+1 < len(p); i++ {
			if !g.HasEdge(p[i], p[i+1]) {
				t.Fatalf("path step %d-%d not an edge", p[i], p[i+1])
			}
		}
		for _, v := range p[1 : len(p)-1] {
			if seen[v] {
				t.Fatalf("internal node %d reused", v)
			}
			seen[v] = true
		}
	}
}

func TestFaultDiameterDirected(t *testing.T) {
	// FaultDiameter accepts directed graphs: the survivor check uses
	// strong connectivity, so a directed de Bruijn graph reports a finite
	// fault diameter under a single node fault.
	g, err := networks.DeBruijn{Base: 2, Dim: 3}.BuildDirected()
	if err != nil {
		t.Fatal(err)
	}
	fd0, err := FaultDiameter(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fd0 != 3 {
		t.Fatalf("fault-free directed B(2,3) diameter = %d, want 3", fd0)
	}
	fd1, err := FaultDiameter(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fd1 < fd0 {
		t.Fatalf("1-fault diameter %d below fault-free %d", fd1, fd0)
	}
}

func TestFaultDiameterDisconnectingGraph(t *testing.T) {
	// A path on 3 nodes: removing the middle node disconnects, removing an
	// end leaves a 2-path. The fault diameter only ranges over fault sets
	// whose survivors stay connected, so f=1 reports the 2-node survivor
	// diameter 1.
	b := graph.NewBuilder(3, false)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.Build()
	fd, err := FaultDiameter(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fd != 2 {
		// f counts "up to f" faults: zero faults keeps the full path with
		// diameter 2, which dominates every connected survivor.
		t.Fatalf("path fault diameter = %d, want 2", fd)
	}
	// Two nodes, one edge, one fault: every single-node removal leaves a
	// lone survivor (no measurable pair), so only the fault-free diameter
	// counts.
	b2 := graph.NewBuilder(2, false)
	b2.AddEdge(0, 1)
	g2 := b2.Build()
	fd2, err := FaultDiameter(g2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fd2 != 1 {
		t.Fatalf("K2 fault diameter = %d, want 1", fd2)
	}
}
