// Package benchkit is the repo's continuous-benchmarking harness. It
// drives the existing `go test -bench` suite programmatically, parses the
// standard benchmark output format (ns/op, B/op, allocs/op, and custom
// metrics), collects N repetitions per benchmark, summarizes them
// (mean/median/stddev), and serializes schema-versioned BENCH_<runid>.json
// records with environment metadata so performance is tracked *across*
// commits, not just observed within one run.
//
// On top of the records it provides benchstat-style comparison: a
// Mann-Whitney rank-sum significance test per (benchmark, metric) pair,
// ASCII delta tables, and regression budgets ("AllPairs.*:+10%") that a CI
// gate can enforce with a nonzero exit. See cmd/bench for the CLI.
package benchkit

import (
	"fmt"
	"sort"
	"time"
)

// SchemaVersion is stamped into every serialized run. Readers reject
// records from a *newer* schema (fields could be missing or reinterpreted)
// but accept older ones: the schema only grows.
const SchemaVersion = 1

// Env captures where a run happened. Two runs are only honestly comparable
// when their Envs broadly match; Diff warns when they do not.
type Env struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	CPU        string `json:"cpu,omitempty"`    // model name, from the bench header or /proc/cpuinfo
	Commit     string `json:"commit,omitempty"` // git HEAD, "-dirty" suffixed when the tree is modified
	Host       string `json:"host,omitempty"`
}

// Sample is one benchmark line: the iteration count go test settled on and
// every reported metric, keyed by its unit string ("ns/op", "B/op",
// "allocs/op", or any custom b.ReportMetric unit).
type Sample struct {
	Iters   int64              `json:"iters"`
	Metrics map[string]float64 `json:"metrics"`
}

// Stat summarizes one metric across a benchmark's repetitions.
type Stat struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	Median float64 `json:"median"`
	Stddev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
}

// Result is one benchmark's repetitions within a run. Name has the
// "Benchmark" prefix and any -<procs> suffix stripped; Procs keeps the
// suffix's value (GOMAXPROCS at run time, 0 when the suffix was absent).
type Result struct {
	Name    string          `json:"name"`
	Pkg     string          `json:"pkg,omitempty"`
	Procs   int             `json:"procs,omitempty"`
	Samples []Sample        `json:"samples"`
	Summary map[string]Stat `json:"summary"`
}

// Run is one recorded benchmark session: the unit BENCH_<id>.json stores.
type Run struct {
	Schema    int       `json:"schema"`
	ID        string    `json:"id"`
	Time      time.Time `json:"time"`
	Env       Env       `json:"env"`
	BenchRe   string    `json:"bench_re,omitempty"`
	Benchtime string    `json:"benchtime,omitempty"`
	Count     int       `json:"count,omitempty"`
	Packages  []string  `json:"packages,omitempty"`
	Results   []Result  `json:"results"`
}

// Result returns the named benchmark's result, or nil.
func (r *Run) Result(name string) *Result {
	for i := range r.Results {
		if r.Results[i].Name == name {
			return &r.Results[i]
		}
	}
	return nil
}

// Summarize (re)computes every Result's per-metric Stat from its samples
// and sorts results by name so serialized runs diff cleanly.
func (r *Run) Summarize() {
	for i := range r.Results {
		res := &r.Results[i]
		res.Summary = make(map[string]Stat)
		for _, unit := range metricUnits(res.Samples) {
			res.Summary[unit] = Summarize(metricValues(res.Samples, unit))
		}
	}
	sort.Slice(r.Results, func(i, j int) bool { return r.Results[i].Name < r.Results[j].Name })
}

// NewRunID derives the conventional run identifier: UTC timestamp plus the
// commit (when known), e.g. "20260806T143000-1a2b3c4d5e6f".
func NewRunID(t time.Time, commit string) string {
	id := t.UTC().Format("20060102T150405")
	if commit != "" {
		c := commit
		if len(c) > 12 {
			c = c[:12]
		}
		id += "-" + c
	}
	return id
}

// metricUnits returns the union of units across samples, sorted with the
// standard trio first so tables read ns/op, B/op, allocs/op, then customs.
func metricUnits(samples []Sample) []string {
	seen := map[string]bool{}
	for _, s := range samples {
		for u := range s.Metrics {
			seen[u] = true
		}
	}
	units := make([]string, 0, len(seen))
	for u := range seen {
		units = append(units, u)
	}
	sort.Slice(units, func(i, j int) bool {
		ri, rj := unitRank(units[i]), unitRank(units[j])
		if ri != rj {
			return ri < rj
		}
		return units[i] < units[j]
	})
	return units
}

func unitRank(u string) int {
	switch u {
	case "ns/op":
		return 0
	case "B/op":
		return 1
	case "allocs/op":
		return 2
	}
	return 3
}

func metricValues(samples []Sample, unit string) []float64 {
	var vals []float64
	for _, s := range samples {
		if v, ok := s.Metrics[unit]; ok {
			vals = append(vals, v)
		}
	}
	return vals
}

// CheckSchema rejects runs written by a future benchkit.
func (r *Run) CheckSchema() error {
	if r.Schema <= 0 {
		return fmt.Errorf("benchkit: record has no schema version (not a BENCH_*.json?)")
	}
	if r.Schema > SchemaVersion {
		return fmt.Errorf("benchkit: record schema v%d is newer than this tool's v%d", r.Schema, SchemaVersion)
	}
	return nil
}
