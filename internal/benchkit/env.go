package benchkit

import (
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
)

// CollectEnv snapshots the current environment. The CPU model comes from
// /proc/cpuinfo when readable (the bench header's "cpu:" line, when parsed,
// overrides it in Record since it reflects what the testing package saw).
// Git metadata is best-effort: a missing git binary or a non-repo working
// directory leaves Commit empty rather than failing the run.
func CollectEnv() Env {
	env := Env{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		CPU:        cpuModel(),
		Commit:     gitCommit(),
	}
	if h, err := os.Hostname(); err == nil {
		env.Host = h
	}
	return env
}

func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if k, v, ok := strings.Cut(line, ":"); ok && strings.TrimSpace(k) == "model name" {
			return strings.TrimSpace(v)
		}
	}
	return ""
}

func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	commit := strings.TrimSpace(string(out))
	if commit == "" {
		return ""
	}
	// Flag uncommitted changes: a dirty tree's numbers don't belong to HEAD.
	if err := exec.Command("git", "diff", "--quiet", "HEAD").Run(); err != nil {
		commit += "-dirty"
	}
	return commit
}

// EnvMismatch lists the comparability-relevant fields on which two
// environments differ, formatted "field: old vs new". Empty means the
// comparison is apples-to-apples.
func EnvMismatch(old, new Env) []string {
	var diffs []string
	add := func(field, a, b string) {
		if a != b && a != "" && b != "" {
			diffs = append(diffs, field+": "+a+" vs "+b)
		}
	}
	add("go", old.GoVersion, new.GoVersion)
	add("goos", old.GOOS, new.GOOS)
	add("goarch", old.GOARCH, new.GOARCH)
	add("cpu", old.CPU, new.CPU)
	if old.GOMAXPROCS != new.GOMAXPROCS && old.GOMAXPROCS != 0 && new.GOMAXPROCS != 0 {
		diffs = append(diffs, fmt.Sprintf("gomaxprocs: %d vs %d", old.GOMAXPROCS, new.GOMAXPROCS))
	}
	return diffs
}
