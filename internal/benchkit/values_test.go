package benchkit

import (
	"math"
	"testing"
)

// TestValueRunShape: each metric name becomes one Result with one sample
// per observation containing it, all under ValueUnit, summarized and sorted.
func TestValueRunShape(t *testing.T) {
	obs := []map[string]float64{
		{"a": 1, "b": 10},
		{"a": 2, "b": 20},
		{"a": 3}, // b missing from this observation
	}
	run := ValueRun("r1", Env{GoVersion: "go1.22"}, obs)
	if run.ID != "r1" || run.Env.GoVersion != "go1.22" {
		t.Fatalf("identity lost: %+v", run)
	}
	if len(run.Results) != 2 || run.Results[0].Name != "a" || run.Results[1].Name != "b" {
		t.Fatalf("want sorted results [a b], got %+v", run.Results)
	}
	a := run.Result("a")
	if len(a.Samples) != 3 {
		t.Fatalf("a has %d samples, want 3", len(a.Samples))
	}
	if s := a.Summary[ValueUnit]; s.N != 3 || s.Median != 2 {
		t.Fatalf("a summary = %+v", s)
	}
	b := run.Result("b")
	if len(b.Samples) != 2 {
		t.Fatalf("b has %d samples (missing observations should be skipped, not zero-filled), want 2", len(b.Samples))
	}
	if s := b.Summary[ValueUnit]; s.Median != 15 {
		t.Fatalf("b summary = %+v", s)
	}
}

// TestValueRunDiffGate: two ValueRuns flow through the same Diff/Gate
// machinery as benchmark records — a clearly separated regression is
// significant and violates its budget, noise is not.
func TestValueRunDiffGate(t *testing.T) {
	old := ValueRun("old", Env{}, []map[string]float64{
		{"lat": 10.1}, {"lat": 10.3}, {"lat": 9.9}, {"lat": 10.2}, {"lat": 10.0}, {"lat": 10.4},
	})
	regressed := ValueRun("new", Env{}, []map[string]float64{
		{"lat": 13.1}, {"lat": 13.3}, {"lat": 12.9}, {"lat": 13.2}, {"lat": 13.0}, {"lat": 13.4},
	})
	deltas := Diff(old, regressed, []string{ValueUnit})
	if len(deltas) != 1 {
		t.Fatalf("got %d deltas, want 1", len(deltas))
	}
	d := deltas[0]
	if d.Name != "lat" || d.Metric != ValueUnit {
		t.Fatalf("delta addressed %q/%q", d.Name, d.Metric)
	}
	if !d.Significant() {
		t.Fatalf("6v6 full separation should be significant, p = %v", d.P)
	}
	if math.Abs(d.Pct-30) > 1 {
		t.Fatalf("delta %.1f%%, want ~+30%%", d.Pct)
	}
	budgets, err := ParseBudgets("lat:+10%")
	if err != nil {
		t.Fatal(err)
	}
	budgets[0].Metric = ValueUnit
	if v := Gate(deltas, budgets); len(v) != 1 {
		t.Fatalf("gate found %d violations, want 1", len(v))
	}
}

// TestValueRunEmpty: no observations means no results, not a panic.
func TestValueRunEmpty(t *testing.T) {
	run := ValueRun("r", Env{}, nil)
	if len(run.Results) != 0 {
		t.Fatalf("empty run has results: %+v", run.Results)
	}
}
