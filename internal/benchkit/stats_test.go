package benchkit

import (
	"math"
	"testing"
)

func TestSummarize(t *testing.T) {
	st := Summarize([]float64{4, 1, 3, 2})
	if st.N != 4 || st.Min != 1 || st.Max != 4 {
		t.Errorf("stat = %+v", st)
	}
	if st.Mean != 2.5 || st.Median != 2.5 {
		t.Errorf("mean/median = %v/%v", st.Mean, st.Median)
	}
	// Sample stddev of {1,2,3,4} = sqrt(5/3).
	if want := math.Sqrt(5.0 / 3.0); math.Abs(st.Stddev-want) > 1e-12 {
		t.Errorf("stddev = %v, want %v", st.Stddev, want)
	}

	odd := Summarize([]float64{10, 30, 20})
	if odd.Median != 20 {
		t.Errorf("odd median = %v", odd.Median)
	}
	if empty := Summarize(nil); empty.N != 0 {
		t.Errorf("empty = %+v", empty)
	}
}

func TestMannWhitneyClearSeparation(t *testing.T) {
	// Five vs five with no overlap: the most extreme assignment. Exact
	// two-sided p = 2 * 1/C(10,5) = 2/252.
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{10, 11, 12, 13, 14}
	p := MannWhitneyU(x, y)
	if want := 2.0 / 252.0; math.Abs(p-want) > 1e-9 {
		t.Errorf("p = %v, want %v", p, want)
	}
}

func TestMannWhitneyOverlap(t *testing.T) {
	// Interleaved samples: no evidence of a shift; p must be large.
	x := []float64{1, 3, 5, 7, 9}
	y := []float64{2, 4, 6, 8, 10}
	if p := MannWhitneyU(x, y); p < 0.5 {
		t.Errorf("interleaved samples gave p = %v, want ~1", p)
	}
}

func TestMannWhitneyDegenerate(t *testing.T) {
	if p := MannWhitneyU(nil, []float64{1}); !math.IsNaN(p) {
		t.Errorf("empty side: p = %v, want NaN", p)
	}
	if p := MannWhitneyU([]float64{5, 5}, []float64{5, 5}); !math.IsNaN(p) {
		t.Errorf("all-identical: p = %v, want NaN", p)
	}
}

func TestMannWhitneyTiesFallBackToNormalApprox(t *testing.T) {
	// Heavy ties force the normal approximation; a clear shift must still
	// come out significant and a tie-dominated overlap must not.
	x := []float64{100, 100, 100, 101, 101, 102, 100, 101, 100, 102}
	y := []float64{150, 150, 151, 150, 152, 151, 150, 150, 151, 152}
	if p := MannWhitneyU(x, y); p > 0.01 {
		t.Errorf("shifted tied samples: p = %v, want < 0.01", p)
	}
	a := []float64{100, 101, 100, 101, 100, 101}
	b := []float64{101, 100, 101, 100, 101, 100}
	if p := MannWhitneyU(a, b); p < 0.5 {
		t.Errorf("identical tied distributions: p = %v, want large", p)
	}
}
