package benchkit

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestGoldenRoundTrip pins the on-disk BENCH_*.json format: the golden
// record must load with every field intact (schema version, env metadata,
// custom metrics), survive a write→read round trip bit-for-bit at the
// struct level, and summarize consistently.
func TestGoldenRoundTrip(t *testing.T) {
	run, err := ReadFile(filepath.Join("testdata", "BENCH_golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	if run.Schema != 1 || run.ID != "20260806T120000-abcdef123456" {
		t.Errorf("schema/id = %d/%q", run.Schema, run.ID)
	}
	if !run.Time.Equal(time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)) {
		t.Errorf("time = %v", run.Time)
	}
	env := run.Env
	if env.GoVersion != "go1.24.0" || env.GOOS != "linux" || env.GOMAXPROCS != 8 ||
		env.CPU != "Intel(R) Xeon(R) Processor @ 2.10GHz" ||
		env.Commit != "abcdef1234567890abcdef1234567890abcdef12" || env.Host != "ci-runner-1" {
		t.Errorf("env = %+v", env)
	}
	if run.BenchRe != "AllPairs|Routing" || run.Benchtime != "100ms" || run.Count != 3 {
		t.Errorf("spec fields = %q %q %d", run.BenchRe, run.Benchtime, run.Count)
	}

	ap := run.Result("AllPairsHSN3Q4")
	if ap == nil || len(ap.Samples) != 3 || ap.Procs != 8 || ap.Pkg != "repro" {
		t.Fatalf("AllPairs result = %+v", ap)
	}
	// ReadFile recomputes summaries from raw samples.
	if st := ap.Summary["ns/op"]; st.N != 3 || st.Median != 60500000 {
		t.Errorf("AllPairs ns/op summary = %+v", st)
	}
	routing := run.Result("Routing")
	if routing == nil {
		t.Fatal("Routing result missing")
	}
	// Custom metric round-trips and summarizes like the standard trio.
	if st := routing.Summary["hops/op"]; st.N != 3 || st.Median != 2.5 || st.Min != 2.25 {
		t.Errorf("hops/op summary = %+v", st)
	}

	// Write → read: identical structs.
	dir := t.TempDir()
	path, err := run.WriteFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_20260806T120000-abcdef123456.json" {
		t.Errorf("conventional name = %q", filepath.Base(path))
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(run, back) {
		t.Errorf("round trip changed the record:\n got %+v\nwant %+v", back, run)
	}
}

func TestReadFileRejectsBadRecords(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	// Future schema: refuse (fields could be reinterpreted).
	if _, err := ReadFile(write("future.json", `{"schema": 99, "id": "x", "results": []}`)); err == nil {
		t.Error("future schema accepted")
	}
	// No schema at all: not a benchkit record.
	if _, err := ReadFile(write("none.json", `{"id": "x"}`)); err == nil {
		t.Error("schema-less record accepted")
	}
	// Not JSON.
	if _, err := ReadFile(write("garbage.json", "BenchmarkFoo 10 100 ns/op\n")); err == nil {
		t.Error("non-JSON accepted")
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

// TestRecordFromParsedOutput exercises the Parse → Run → serialize path a
// real recording takes, without shelling out to go test.
func TestRecordFromParsedOutput(t *testing.T) {
	results, header, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	run := &Run{
		Schema:  SchemaVersion,
		ID:      NewRunID(time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC), "deadbeefcafe0123"),
		Time:    time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC),
		Env:     Env{CPU: header["cpu"]},
		Results: results,
	}
	run.Summarize()
	if run.ID != "20260806T120000-deadbeefcafe" {
		t.Errorf("run id = %q", run.ID)
	}
	data, err := json.Marshal(run)
	if err != nil {
		t.Fatal(err)
	}
	var back Run
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	back.Summarize()
	if !reflect.DeepEqual(run, &back) {
		t.Errorf("JSON round trip changed the run")
	}
	// Summaries must be ordered/derivable: BuildHSN3Q4 has 2 samples.
	if st := back.Result("BuildHSN3Q4").Summary["ns/op"]; st.N != 2 {
		t.Errorf("BuildHSN3Q4 summary = %+v", st)
	}
}
