package benchkit

import (
	"bufio"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// Parse reads standard `go test -bench` output and returns one Result per
// benchmark name, accumulating repeated lines (from -count) as samples.
// Header key-value lines (goos/goarch/pkg/cpu) are folded into the returned
// header map; the "pkg" header tags each subsequent result so multi-package
// runs stay attributable.
//
// The parser is deliberately tolerant: any line that is not a well-formed
// benchmark line (PASS/FAIL/ok footers, test log noise, truncated output
// from a killed run) is skipped, never fatal. Benchmarks only surface
// through what they print, so resilience here is what keeps one broken
// benchmark from hiding every other result.
func Parse(r io.Reader) (results []Result, header map[string]string, err error) {
	header = map[string]string{}
	index := map[string]int{} // name -> position in results
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if k, v, ok := parseHeader(line); ok {
			header[k] = v
			if k == "pkg" {
				pkg = v
			}
			continue
		}
		name, procs, sample, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		key := pkg + "\x00" + name
		i, seen := index[key]
		if !seen {
			i = len(results)
			index[key] = i
			results = append(results, Result{Name: name, Pkg: pkg, Procs: procs})
		}
		results[i].Samples = append(results[i].Samples, sample)
	}
	return results, header, sc.Err()
}

// headerRe matches the metadata lines the testing package prints before
// benchmarks: a lowercase key, a colon, and a value.
var headerRe = regexp.MustCompile(`^([a-z][a-z0-9/]*):\s+(.*\S)\s*$`)

func parseHeader(line string) (key, val string, ok bool) {
	m := headerRe.FindStringSubmatch(line)
	if m == nil {
		return "", "", false
	}
	return m[1], m[2], true
}

// parseBenchLine parses one benchmark result line:
//
//	BenchmarkName-8   	 1000	 1234567 ns/op	 12 B/op	 3 allocs/op	 4.5 widgets/op
//
// The -<procs> suffix is optional (absent when GOMAXPROCS=1). Metrics come
// as value/unit pairs; an odd trailing field or an unparseable value makes
// the whole line malformed (returned !ok) rather than a partial sample.
func parseBenchLine(line string) (name string, procs int, s Sample, ok bool) {
	f := strings.Fields(line)
	if len(f) < 4 || len(f)%2 != 0 || !strings.HasPrefix(f[0], "Benchmark") {
		return "", 0, Sample{}, false
	}
	// "Benchmark" alone (no subname) is not a valid benchmark identifier.
	name = strings.TrimPrefix(f[0], "Benchmark")
	if name == "" {
		return "", 0, Sample{}, false
	}
	if i := strings.LastIndex(name, "-"); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil && p > 0 {
			procs = p
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil || iters <= 0 {
		return "", 0, Sample{}, false
	}
	s = Sample{Iters: iters, Metrics: make(map[string]float64, (len(f)-2)/2)}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return "", 0, Sample{}, false
		}
		unit := f[i+1]
		if unit == "" {
			return "", 0, Sample{}, false
		}
		s.Metrics[unit] = v
	}
	return name, procs, s, true
}
