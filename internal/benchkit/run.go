package benchkit

import (
	"bytes"
	"fmt"
	"io"
	"os/exec"
	"strings"
	"time"
)

// Spec describes one recording session: which packages and benchmarks to
// run and how many repetitions to collect per benchmark.
type Spec struct {
	Packages  []string  // go package patterns; default {"./..."}
	Bench     string    // -bench regex; default "."
	Benchtime string    // -benchtime value, e.g. "100ms" or "10x"; "" = go's default
	Count     int       // repetitions per benchmark; default 5
	Timeout   string    // -timeout for each go test invocation; "" = go's default
	Verbose   io.Writer // when non-nil, streams raw go test output here
}

func (s *Spec) defaults() {
	if len(s.Packages) == 0 {
		s.Packages = []string{"./..."}
	}
	if s.Bench == "" {
		s.Bench = "."
	}
	if s.Count <= 0 {
		s.Count = 5
	}
}

// Record runs the benchmark suite per Spec and returns the finished,
// summarized Run. Benchmarks execute with -benchmem so allocation metrics
// are always on record, and -run '^$' so no unit tests ride along.
func Record(spec Spec) (*Run, error) {
	spec.defaults()
	now := time.Now()
	run := &Run{
		Schema:    SchemaVersion,
		Time:      now,
		Env:       CollectEnv(),
		BenchRe:   spec.Bench,
		Benchtime: spec.Benchtime,
		Count:     spec.Count,
		Packages:  spec.Packages,
	}
	run.ID = NewRunID(now, strings.TrimSuffix(run.Env.Commit, "-dirty"))

	args := []string{"test", "-run", "^$", "-bench", spec.Bench,
		"-benchmem", "-count", fmt.Sprint(spec.Count)}
	if spec.Benchtime != "" {
		args = append(args, "-benchtime", spec.Benchtime)
	}
	if spec.Timeout != "" {
		args = append(args, "-timeout", spec.Timeout)
	}
	args = append(args, spec.Packages...)

	out, err := goTest(args, spec.Verbose)
	// Parse whatever we got even on error: a failing package's output may
	// still carry complete results for the packages before it.
	results, header, perr := Parse(bytes.NewReader(out))
	if perr != nil {
		return nil, perr
	}
	if cpu := header["cpu"]; cpu != "" {
		run.Env.CPU = cpu
	}
	run.Results = results
	run.Summarize()
	if err != nil && len(results) == 0 {
		return nil, fmt.Errorf("benchkit: go test failed with no parseable results: %w\n%s", err, tail(out, 2048))
	}
	if err != nil {
		return run, fmt.Errorf("benchkit: go test reported failure (partial results kept): %w", err)
	}
	return run, nil
}

// ListBenchmarks enumerates the benchmark functions matching re in the
// given packages, using `go test -list`. Names are returned without the
// "Benchmark" prefix, deduplicated, in discovery order.
func ListBenchmarks(packages []string, re string) ([]string, error) {
	if len(packages) == 0 {
		packages = []string{"./..."}
	}
	if re == "" {
		re = "."
	}
	// -list applies the regex to every Test/Benchmark/Example identifier;
	// filtering output lines by prefix keeps only the benchmarks.
	args := append([]string{"test", "-run", "^$", "-list", re}, packages...)
	out, err := goTest(args, nil)
	if err != nil {
		return nil, fmt.Errorf("benchkit: go test -list: %w\n%s", err, tail(out, 1024))
	}
	var names []string
	seen := map[string]bool{}
	for _, line := range strings.Split(string(out), "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		name := strings.TrimPrefix(line, "Benchmark")
		if name != "" && !seen[name] {
			seen[name] = true
			names = append(names, name)
		}
	}
	return names, nil
}

func goTest(args []string, verbose io.Writer) ([]byte, error) {
	cmd := exec.Command("go", args...)
	var buf bytes.Buffer
	if verbose != nil {
		cmd.Stdout = io.MultiWriter(&buf, verbose)
		cmd.Stderr = io.MultiWriter(&buf, verbose)
	} else {
		cmd.Stdout = &buf
		cmd.Stderr = &buf
	}
	err := cmd.Run()
	return buf.Bytes(), err
}

func tail(b []byte, n int) []byte {
	if len(b) <= n {
		return b
	}
	return b[len(b)-n:]
}
