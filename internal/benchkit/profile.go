package benchkit

import (
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// ProfileSpec says which profiles to capture and where to put them. Either
// directory may be empty to skip that profile kind.
type ProfileSpec struct {
	CPUDir string
	MemDir string
	// Benchtime for the profiling runs; profiles want more samples than a
	// quick timing pass, so this is independent of the recording Spec's.
	Benchtime string
	Timeout   string
	Verbose   io.Writer
}

func (p ProfileSpec) enabled() bool { return p.CPUDir != "" || p.MemDir != "" }

// Profile is one captured profile on disk plus its top-functions summary.
type Profile struct {
	Bench   string
	Kind    string // "cpu" or "mem"
	Path    string
	TopPath string // sibling .txt with `go tool pprof -top` output
}

// CaptureProfiles reruns each named benchmark once per package with
// -cpuprofile/-memprofile and writes a top-functions summary next to each
// profile, so a flagged regression arrives with its hot stack attached.
// go test only accepts profile flags for a single package at a time, so
// benchmarks are re-run per (package, benchmark) pair — names must come
// from a recorded Run (Result.Pkg tags the package).
func CaptureProfiles(run *Run, names []string, spec ProfileSpec) ([]Profile, error) {
	if !spec.enabled() || len(names) == 0 {
		return nil, nil
	}
	for _, dir := range []string{spec.CPUDir, spec.MemDir} {
		if dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return nil, err
			}
		}
	}
	var profiles []Profile
	for _, name := range names {
		res := run.Result(name)
		if res == nil {
			continue
		}
		pkg := res.Pkg
		if pkg == "" {
			pkg = "."
		}
		args := []string{"test", "-run", "^$", "-bench", "^Benchmark" + name + "$", "-benchmem"}
		if spec.Benchtime != "" {
			args = append(args, "-benchtime", spec.Benchtime)
		}
		if spec.Timeout != "" {
			args = append(args, "-timeout", spec.Timeout)
		}
		safe := strings.NewReplacer("/", "_", "=", "_").Replace(name)
		// Profiling makes go test keep the test binary; park it next to
		// the profiles (it is what `go tool pprof <bin> <profile>` wants)
		// instead of littering the working directory.
		binDir := spec.CPUDir
		if binDir == "" {
			binDir = spec.MemDir
		}
		args = append(args, "-o", filepath.Join(binDir, safe+".test"))
		var cpuPath, memPath string
		if spec.CPUDir != "" {
			cpuPath = filepath.Join(spec.CPUDir, safe+".cpu.pprof")
			args = append(args, "-cpuprofile", cpuPath)
		}
		if spec.MemDir != "" {
			memPath = filepath.Join(spec.MemDir, safe+".mem.pprof")
			args = append(args, "-memprofile", memPath)
		}
		args = append(args, pkg)
		if out, err := goTest(args, spec.Verbose); err != nil {
			return profiles, fmt.Errorf("benchkit: profiling %s: %w\n%s", name, err, tail(out, 1024))
		}
		if cpuPath != "" {
			p := Profile{Bench: name, Kind: "cpu", Path: cpuPath}
			p.TopPath, _ = writeTopSummary(cpuPath, nil)
			profiles = append(profiles, p)
		}
		if memPath != "" {
			p := Profile{Bench: name, Kind: "mem", Path: memPath}
			// alloc_space, not the in-use default: for benchmarks the
			// interesting question is what the code path allocates.
			p.TopPath, _ = writeTopSummary(memPath, []string{"-sample_index=alloc_space"})
			profiles = append(profiles, p)
		}
	}
	return profiles, nil
}

// writeTopSummary runs `go tool pprof -top` on the profile and stores the
// result as <profile>.top.txt. Failures are non-fatal (the raw profile is
// the artifact that matters); the empty path signals "no summary".
func writeTopSummary(profilePath string, extra []string) (string, error) {
	args := append([]string{"tool", "pprof", "-top", "-nodecount=12"}, extra...)
	args = append(args, profilePath)
	out, err := exec.Command("go", args...).CombinedOutput()
	if err != nil {
		return "", fmt.Errorf("benchkit: pprof -top %s: %w", profilePath, err)
	}
	topPath := strings.TrimSuffix(profilePath, filepath.Ext(profilePath)) + ".top.txt"
	if err := os.WriteFile(topPath, out, 0o644); err != nil {
		return "", err
	}
	return topPath, nil
}
