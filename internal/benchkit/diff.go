package benchkit

import (
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Alpha is the significance threshold for the Mann-Whitney test: deltas
// with p < Alpha earn a '*' marker and are eligible to trip the gate.
const Alpha = 0.05

// minSamplesForTest is the per-side sample floor below which the rank test
// has no power (with 3 vs 3 the best achievable two-sided p is 0.1); under
// it the gate falls back to comparing medians alone.
const minSamplesForTest = 4

// Delta is one (benchmark, metric) comparison between two runs.
type Delta struct {
	Name   string
	Metric string
	Old    Stat
	New    Stat
	Pct    float64 // (new.median - old.median) / old.median * 100
	P      float64 // Mann-Whitney p-value; NaN when not computable
}

// Significant reports whether the delta passed the rank test at Alpha.
func (d Delta) Significant() bool { return !math.IsNaN(d.P) && d.P < Alpha }

// tested reports whether both sides had enough samples for the rank test
// to be meaningful.
func (d Delta) tested() bool {
	return d.Old.N >= minSamplesForTest && d.New.N >= minSamplesForTest && !math.IsNaN(d.P)
}

// Diff compares two runs metric-by-metric over the benchmarks they share.
// Restrict the metric set with metrics (nil = every shared metric).
// Results come back sorted by benchmark name then metric rank.
func Diff(old, new *Run, metrics []string) []Delta {
	want := map[string]bool{}
	for _, m := range metrics {
		want[m] = true
	}
	var deltas []Delta
	for i := range new.Results {
		nr := &new.Results[i]
		or := old.Result(nr.Name)
		if or == nil {
			continue
		}
		for _, unit := range metricUnits(nr.Samples) {
			if len(want) > 0 && !want[unit] {
				continue
			}
			os, ok := or.Summary[unit]
			if !ok {
				continue
			}
			ns := nr.Summary[unit]
			d := Delta{
				Name: nr.Name, Metric: unit, Old: os, New: ns,
				P: MannWhitneyU(metricValues(or.Samples, unit), metricValues(nr.Samples, unit)),
			}
			if os.Median != 0 {
				d.Pct = (ns.Median - os.Median) / os.Median * 100
			} else if ns.Median != 0 {
				d.Pct = math.Inf(1)
			}
			deltas = append(deltas, d)
		}
	}
	sort.Slice(deltas, func(i, j int) bool {
		if deltas[i].Name != deltas[j].Name {
			return deltas[i].Name < deltas[j].Name
		}
		return unitRank(deltas[i].Metric) < unitRank(deltas[j].Metric)
	})
	return deltas
}

// FormatTable renders deltas as the ASCII table cmd/bench prints:
//
//	benchmark            metric     old           new           delta     p
//	AllPairsHSN3Q4       ns/op      12.3M ± 2%    14.1M ± 3%    +14.6%    0.008 *
//
// '*' marks statistically significant deltas (p < Alpha), '~' marks
// indistinguishable ones, and '?' means too few samples to test.
func FormatTable(w io.Writer, deltas []Delta) {
	if len(deltas) == 0 {
		fmt.Fprintln(w, "no shared benchmarks to compare")
		return
	}
	nameW := len("benchmark")
	for _, d := range deltas {
		if len(d.Name) > nameW {
			nameW = len(d.Name)
		}
	}
	fmt.Fprintf(w, "%-*s  %-10s %-13s %-13s %-9s %s\n",
		nameW, "benchmark", "metric", "old", "new", "delta", "p")
	for _, d := range deltas {
		mark := "~"
		switch {
		case !d.tested():
			mark = "?"
		case d.Significant():
			mark = "*"
		}
		p := "n/a"
		if !math.IsNaN(d.P) {
			p = strconv.FormatFloat(d.P, 'f', 3, 64)
		}
		fmt.Fprintf(w, "%-*s  %-10s %-13s %-13s %-9s %s %s\n",
			nameW, d.Name, d.Metric,
			statCell(d.Old), statCell(d.New),
			fmt.Sprintf("%+.1f%%", d.Pct), p, mark)
	}
}

func statCell(s Stat) string {
	if s.N == 0 {
		return "-"
	}
	cell := siValue(s.Median)
	if s.N > 1 && s.Median != 0 {
		cell += fmt.Sprintf(" ±%.0f%%", s.Stddev/math.Abs(s.Median)*100)
	}
	return cell
}

// siValue prints a metric value compactly with an SI magnitude suffix.
func siValue(v float64) string {
	abs := math.Abs(v)
	switch {
	case abs >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case abs >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case abs >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	case abs == 0 || abs >= 1:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Budget is one regression budget: benchmarks whose name matches Pattern
// may not slow down (grow their Metric) by more than MaxPct percent.
type Budget struct {
	Pattern *regexp.Regexp
	Metric  string // "" = ns/op
	MaxPct  float64
}

// ParseBudgets parses a -gate spec: comma-separated `pattern:+N%` entries,
// each optionally naming a metric as `pattern:metric:+N%`.
//
//	AllPairs.*:+10%
//	Netsim:+5%,Routing:allocs/op:+0%
//
// The pattern is a Go regexp matched (unanchored, like -bench) against the
// benchmark name without its "Benchmark" prefix.
func ParseBudgets(spec string) ([]Budget, error) {
	var budgets []Budget
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.Split(entry, ":")
		if len(parts) < 2 || len(parts) > 3 {
			return nil, fmt.Errorf("benchkit: bad gate entry %q (want pattern:+N%% or pattern:metric:+N%%)", entry)
		}
		re, err := regexp.Compile(parts[0])
		if err != nil {
			return nil, fmt.Errorf("benchkit: bad gate pattern %q: %w", parts[0], err)
		}
		b := Budget{Pattern: re, Metric: "ns/op"}
		if len(parts) == 3 {
			b.Metric = parts[1]
		}
		pctStr := strings.TrimSuffix(strings.TrimPrefix(parts[len(parts)-1], "+"), "%")
		pct, err := strconv.ParseFloat(pctStr, 64)
		if err != nil || pct < 0 {
			return nil, fmt.Errorf("benchkit: bad gate budget %q (want +N%%)", parts[len(parts)-1])
		}
		b.MaxPct = pct
		budgets = append(budgets, b)
	}
	if len(budgets) == 0 {
		return nil, fmt.Errorf("benchkit: empty gate spec")
	}
	return budgets, nil
}

// Violation is a delta that broke its budget.
type Violation struct {
	Delta
	Budget Budget
}

func (v Violation) String() string {
	return fmt.Sprintf("%s %s regressed %+.1f%% (budget +%.0f%%, p=%.3f)",
		v.Name, v.Metric, v.Pct, v.Budget.MaxPct, v.P)
}

// Gate applies budgets to deltas. A delta violates its budget when its
// median regression exceeds MaxPct AND the regression is statistically
// significant — or, when either run carries too few samples for the rank
// test to have power, when the median delta alone exceeds the budget.
// Improvements (negative deltas) never violate.
func Gate(deltas []Delta, budgets []Budget) []Violation {
	var out []Violation
	for _, d := range deltas {
		for _, b := range budgets {
			if b.Metric != d.Metric || !b.Pattern.MatchString(d.Name) {
				continue
			}
			if d.Pct <= b.MaxPct {
				continue
			}
			if d.tested() && !d.Significant() {
				continue // over budget but within noise
			}
			out = append(out, Violation{Delta: d, Budget: b})
			break // one violation per delta is enough
		}
	}
	return out
}

// GatedNames returns the benchmark names among deltas that violated,
// deduplicated — the set to capture profiles for.
func GatedNames(violations []Violation) []string {
	seen := map[string]bool{}
	var names []string
	for _, v := range violations {
		if !seen[v.Name] {
			seen[v.Name] = true
			names = append(names, v.Name)
		}
	}
	return names
}
