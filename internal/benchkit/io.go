package benchkit

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// FileName returns the conventional record name for a run: BENCH_<id>.json.
func (r *Run) FileName() string { return "BENCH_" + r.ID + ".json" }

// WriteFile serializes the run (indented, trailing newline) to path. When
// path is a directory, the conventional BENCH_<id>.json name is appended.
// Returns the path actually written.
func (r *Run) WriteFile(path string) (string, error) {
	if fi, err := os.Stat(path); err == nil && fi.IsDir() {
		path = filepath.Join(path, r.FileName())
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	return path, os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile loads and validates a BENCH_*.json record. Summaries are
// recomputed from the raw samples so a hand-edited record can't disagree
// with itself.
func ReadFile(path string) (*Run, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var run Run
	if err := json.Unmarshal(data, &run); err != nil {
		return nil, fmt.Errorf("benchkit: %s: %w", path, err)
	}
	if err := run.CheckSchema(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	run.Summarize()
	return &run, nil
}
