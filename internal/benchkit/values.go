package benchkit

import "sort"

// ValueUnit is the metric unit ValueRun stores every sample under. Using a
// single fixed unit keeps the Diff/Gate machinery's (benchmark, metric)
// addressing intact while the "benchmark" axis carries arbitrary metric
// names instead of go-test benchmark names.
const ValueUnit = "value"

// ValueRun packages named scalar sample sets as a *Run so everything built
// for benchmark records — Diff's per-metric Mann-Whitney test, FormatTable,
// ParseBudgets/Gate — applies to any repeated measurements, not just
// `go test -bench` output. Each metric name becomes one Result holding one
// Sample per observation map that contains the name (metrics missing from
// some observations simply have fewer samples); Summaries are computed
// before returning. cmd/obsdiff feeds run-manifest metrics through this to
// gate simulation behavior the way cmd/bench gates ns/op.
func ValueRun(id string, env Env, observations []map[string]float64) *Run {
	run := &Run{Schema: SchemaVersion, ID: id, Env: env}
	names := map[string]bool{}
	for _, ob := range observations {
		for name := range ob {
			names[name] = true
		}
	}
	ordered := make([]string, 0, len(names))
	for name := range names {
		ordered = append(ordered, name)
	}
	sort.Strings(ordered)
	for _, name := range ordered {
		res := Result{Name: name}
		for _, ob := range observations {
			if v, ok := ob[name]; ok {
				res.Samples = append(res.Samples, Sample{Iters: 1, Metrics: map[string]float64{ValueUnit: v}})
			}
		}
		run.Results = append(run.Results, res)
	}
	run.Summarize()
	return run
}
