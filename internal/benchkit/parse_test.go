package benchkit

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkBuildHSN3Q4 	       2	  61234567 ns/op	 5120000 B/op	   12345 allocs/op
BenchmarkBuildHSN3Q4 	       2	  59876543 ns/op	 5120100 B/op	   12345 allocs/op
BenchmarkRouting-8   	  100000	     10432 ns/op	     2.500 hops/op	     320 B/op	       7 allocs/op
PASS
ok  	repro	1.234s
pkg: repro/internal/graph
BenchmarkAllPairsQ10 	       5	 200000000 ns/op
PASS
ok  	repro/internal/graph	2.000s
`

func TestParseStandardOutput(t *testing.T) {
	results, header, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if header["cpu"] != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Errorf("cpu header = %q", header["cpu"])
	}
	if header["goos"] != "linux" || header["goarch"] != "amd64" {
		t.Errorf("goos/goarch headers = %q/%q", header["goos"], header["goarch"])
	}
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3: %+v", len(results), results)
	}

	build := results[0]
	if build.Name != "BuildHSN3Q4" || build.Pkg != "repro" || build.Procs != 0 {
		t.Errorf("build result = %+v", build)
	}
	if len(build.Samples) != 2 {
		t.Fatalf("BuildHSN3Q4: %d samples, want 2 (repeated -count lines must accumulate)", len(build.Samples))
	}
	if build.Samples[0].Iters != 2 || build.Samples[0].Metrics["ns/op"] != 61234567 {
		t.Errorf("sample 0 = %+v", build.Samples[0])
	}
	if build.Samples[1].Metrics["B/op"] != 5120100 {
		t.Errorf("sample 1 B/op = %v", build.Samples[1].Metrics["B/op"])
	}

	// -8 proc suffix stripped into Procs; custom metric preserved.
	routing := results[1]
	if routing.Name != "Routing" || routing.Procs != 8 {
		t.Errorf("routing result = %+v", routing)
	}
	if routing.Samples[0].Metrics["hops/op"] != 2.5 {
		t.Errorf("custom metric hops/op = %v", routing.Samples[0].Metrics)
	}
	if routing.Samples[0].Metrics["allocs/op"] != 7 {
		t.Errorf("allocs/op = %v", routing.Samples[0].Metrics)
	}

	// Second package's pkg header tags its results.
	ap := results[2]
	if ap.Name != "AllPairsQ10" || ap.Pkg != "repro/internal/graph" {
		t.Errorf("allpairs result = %+v", ap)
	}
}

func TestParseMalformedLinesTolerated(t *testing.T) {
	input := strings.Join([]string{
		"BenchmarkGood 	 10	 100 ns/op",
		"BenchmarkTruncated 	 10	 100",         // odd field count
		"BenchmarkNotANumber 	 abc	 100 ns/op", // bad iteration count
		"BenchmarkBadValue 	 10	 xyz ns/op",    // bad metric value
		"Benchmark 	 10	 100 ns/op",            // empty name
		"BenchmarkZeroIters 	 0	 100 ns/op",    // impossible iters
		"random test log line",
		"--- FAIL: TestSomething (0.00s)",
		"    something_test.go:10: assertion failed",
		"BenchmarkAlsoGood 	 20	 50 ns/op	 1 B/op	 1 allocs/op",
	}, "\n")
	results, _, err := Parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want exactly the 2 well-formed ones: %+v", len(results), results)
	}
	if results[0].Name != "Good" || results[1].Name != "AlsoGood" {
		t.Errorf("names = %q, %q", results[0].Name, results[1].Name)
	}
}

func TestParseSubBenchmarkNames(t *testing.T) {
	// Sub-benchmarks keep their slash path; the -procs suffix still strips.
	input := "BenchmarkRun/uniform/rate=0.005-16 	 100	 1000 ns/op\n"
	results, _, err := Parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("results = %+v", results)
	}
	if results[0].Name != "Run/uniform/rate=0.005" || results[0].Procs != 16 {
		t.Errorf("got name %q procs %d", results[0].Name, results[0].Procs)
	}
}
