package benchkit

import (
	"math"
	"sort"
)

// Summarize computes the Stat block for one metric's samples.
func Summarize(vals []float64) Stat {
	st := Stat{N: len(vals)}
	if st.N == 0 {
		return st
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	st.Min, st.Max = sorted[0], sorted[st.N-1]
	st.Median = median(sorted)
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	st.Mean = sum / float64(st.N)
	if st.N > 1 {
		ss := 0.0
		for _, v := range sorted {
			d := v - st.Mean
			ss += d * d
		}
		st.Stddev = math.Sqrt(ss / float64(st.N-1))
	}
	return st
}

func median(sorted []float64) float64 {
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// MannWhitneyU runs the two-sided Mann-Whitney rank-sum test (the same
// test benchstat uses) on two metric sample sets and returns the p-value
// for "x and y are draws from the same distribution". Benchmark timings
// are rarely normal — they have heavy right tails from scheduler noise —
// so a rank test beats a t-test here.
//
// For tie-free small samples (n*m permutations enumerable) the null
// distribution of U is computed exactly by dynamic programming; otherwise
// the normal approximation with tie correction and continuity correction
// is used. Returns NaN when either side has no samples or when every
// observation is identical (no evidence either way).
func MannWhitneyU(x, y []float64) float64 {
	n, m := len(x), len(y)
	if n == 0 || m == 0 {
		return math.NaN()
	}
	// Rank the pooled samples, averaging ranks across ties.
	all := make([]float64, 0, n+m)
	all = append(all, x...)
	all = append(all, y...)
	sorted := append([]float64(nil), all...)
	sort.Float64s(sorted)
	rank := func(v float64) float64 {
		lo := sort.SearchFloat64s(sorted, v)
		hi := lo
		for hi < len(sorted) && sorted[hi] == v {
			hi++
		}
		return float64(lo+hi+1) / 2 // average of 1-based ranks lo+1..hi
	}
	rx := 0.0
	for _, v := range x {
		rx += rank(v)
	}
	u := rx - float64(n)*float64(n+1)/2 // U statistic for x

	// Tie structure, for both the exact-test guard and the variance fix.
	ties := false
	tieTerm := 0.0
	for i := 0; i < len(sorted); {
		j := i
		for j < len(sorted) && sorted[j] == sorted[i] {
			j++
		}
		if t := j - i; t > 1 {
			ties = true
			tieTerm += float64(t*t*t - t)
		}
		i = j
	}
	if sorted[0] == sorted[len(sorted)-1] {
		return math.NaN() // all observations identical
	}

	if !ties && n*m <= 400 {
		return exactMWU(n, m, u)
	}

	nm := float64(n) * float64(m)
	nTot := float64(n + m)
	mu := nm / 2
	sigma2 := nm / 12 * (nTot + 1 - tieTerm/(nTot*(nTot-1)))
	if sigma2 <= 0 {
		return math.NaN()
	}
	// Continuity-corrected two-sided normal tail.
	z := (math.Abs(u-mu) - 0.5) / math.Sqrt(sigma2)
	if z < 0 {
		z = 0
	}
	return 2 * 0.5 * math.Erfc(z/math.Sqrt2)
}

// exactMWU computes the exact two-sided p-value of the Mann-Whitney U
// statistic for tie-free samples of sizes n and m: the classic DP over
// "number of ways to reach rank-sum u with n of n+m elements".
func exactMWU(n, m int, u float64) float64 {
	maxU := n * m
	// count[k][v] = #subsets of size k with U contribution v; rolled array.
	count := make([][]float64, n+1)
	for k := range count {
		count[k] = make([]float64, maxU+1)
	}
	count[0][0] = 1
	// Each of the m "other" elements an x-element outranks adds 1 to U.
	// Standard recurrence: f(n, m, u) = f(n-1, m, u-m') summed via items.
	for item := 1; item <= n+m; item++ {
		for k := minInt(item, n); k >= 1; k-- {
			// Choosing pooled element with rank `item` as an x adds
			// (item - k) to U: it outranks item-k y-elements so far.
			add := item - k
			if add > maxU {
				continue
			}
			for v := maxU; v >= add; v-- {
				count[k][v] += count[k-1][v-add]
			}
		}
	}
	total := 0.0
	for _, c := range count[n] {
		total += c
	}
	// Two-sided: sum probabilities of outcomes at least as extreme as u
	// (distance from the mean nm/2).
	mu := float64(maxU) / 2
	d := math.Abs(u - mu)
	extreme := 0.0
	for v, c := range count[n] {
		if math.Abs(float64(v)-mu) >= d-1e-9 {
			extreme += c
		}
	}
	p := extreme / total
	if p > 1 {
		p = 1
	}
	return p
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
