package benchkit

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// mkRun builds a Run with one benchmark per entry; each value list becomes
// that benchmark's ns/op samples.
func mkRun(benchmarks map[string][]float64) *Run {
	run := &Run{Schema: SchemaVersion, ID: "test", Time: time.Unix(0, 0)}
	for name, vals := range benchmarks {
		res := Result{Name: name}
		for _, v := range vals {
			res.Samples = append(res.Samples, Sample{
				Iters:   100,
				Metrics: map[string]float64{"ns/op": v, "allocs/op": 10},
			})
		}
		run.Results = append(run.Results, res)
	}
	run.Summarize()
	return run
}

func TestGateFlagsSyntheticSlowdown(t *testing.T) {
	// The acceptance scenario: a ≥10% slowdown on a gated benchmark must
	// trip the gate; an unchanged benchmark must not.
	old := mkRun(map[string][]float64{
		"AllPairsHSN3Q4": {100, 101, 99, 100, 102},
		"Routing":        {50, 51, 49, 50, 52},
	})
	slow := mkRun(map[string][]float64{
		"AllPairsHSN3Q4": {115, 116, 114, 115, 117}, // +15%
		"Routing":        {50, 51, 49, 50, 52},      // unchanged
	})
	budgets, err := ParseBudgets("AllPairs.*:+10%,Routing:+10%")
	if err != nil {
		t.Fatal(err)
	}

	violations := Gate(Diff(old, slow, nil), budgets)
	if len(violations) != 1 {
		t.Fatalf("violations = %+v, want exactly the AllPairs one", violations)
	}
	if v := violations[0]; v.Name != "AllPairsHSN3Q4" || v.Metric != "ns/op" {
		t.Errorf("violation = %+v", v)
	}
	if violations[0].Pct < 10 {
		t.Errorf("violation pct = %v, want >= 10", violations[0].Pct)
	}

	// Unchanged run against itself: clean pass.
	if v := Gate(Diff(old, old, nil), budgets); len(v) != 0 {
		t.Errorf("self-comparison produced violations: %+v", v)
	}
}

func TestGateRequiresSignificanceWhenTestable(t *testing.T) {
	// Median is 12% up but the samples are wildly noisy and overlapping:
	// the rank test can't distinguish them, so the gate must not fire.
	old := mkRun(map[string][]float64{"Noisy": {100, 140, 90, 130, 95}})
	new := mkRun(map[string][]float64{"Noisy": {112, 100, 145, 92, 135}})
	budgets, _ := ParseBudgets("Noisy:+10%")
	if v := Gate(Diff(old, new, nil), budgets); len(v) != 0 {
		t.Errorf("noise tripped the gate: %+v", v)
	}
}

func TestGateFallsBackToMedianWithFewSamples(t *testing.T) {
	// One sample per side: no rank test possible, median delta decides.
	old := mkRun(map[string][]float64{"Single": {100}})
	new := mkRun(map[string][]float64{"Single": {120}})
	budgets, _ := ParseBudgets("Single:+10%")
	if v := Gate(Diff(old, new, nil), budgets); len(v) != 1 {
		t.Errorf("single-sample regression not caught: %+v", v)
	}
}

func TestGateIgnoresImprovements(t *testing.T) {
	old := mkRun(map[string][]float64{"Fast": {100, 101, 99, 100, 102}})
	new := mkRun(map[string][]float64{"Fast": {80, 81, 79, 80, 82}})
	budgets, _ := ParseBudgets("Fast:+0%")
	if v := Gate(Diff(old, new, nil), budgets); len(v) != 0 {
		t.Errorf("improvement tripped the gate: %+v", v)
	}
}

func TestGateMetricSelector(t *testing.T) {
	// pattern:metric:+N% watches a non-default metric.
	old := mkRun(map[string][]float64{"Alloc": {100, 100, 100, 100, 100}})
	new := mkRun(map[string][]float64{"Alloc": {100, 100, 100, 100, 100}})
	for i := range new.Results[0].Samples {
		new.Results[0].Samples[i].Metrics["allocs/op"] = 20 // 10 -> 20
	}
	new.Summarize()
	budgets, err := ParseBudgets("Alloc:allocs/op:+50%")
	if err != nil {
		t.Fatal(err)
	}
	v := Gate(Diff(old, new, nil), budgets)
	if len(v) != 1 || v[0].Metric != "allocs/op" {
		t.Errorf("allocs/op budget: violations = %+v", v)
	}
}

func TestParseBudgetsErrors(t *testing.T) {
	for _, bad := range []string{"", "NoBudget", "X:+ten%", "(:+10%", "a:b:c:+10%", "X:-10%"} {
		if _, err := ParseBudgets(bad); err == nil {
			t.Errorf("ParseBudgets(%q) accepted", bad)
		}
	}
	budgets, err := ParseBudgets("A.*:+10%, B:ns/op:+0%")
	if err != nil {
		t.Fatal(err)
	}
	if len(budgets) != 2 || budgets[0].MaxPct != 10 || budgets[1].MaxPct != 0 {
		t.Errorf("budgets = %+v", budgets)
	}
}

func TestFormatTableMarkers(t *testing.T) {
	old := mkRun(map[string][]float64{
		"Regressed": {100, 101, 99, 100, 102},
		"Same":      {100, 140, 90, 130, 95},
	})
	new := mkRun(map[string][]float64{
		"Regressed": {150, 151, 149, 150, 152},
		"Same":      {112, 100, 145, 92, 135},
	})
	var buf bytes.Buffer
	FormatTable(&buf, Diff(old, new, []string{"ns/op"}))
	out := buf.String()
	if !strings.Contains(out, "Regressed") || !strings.Contains(out, "+50.0%") {
		t.Errorf("table missing regression row:\n%s", out)
	}
	var starLine, tildeLine bool
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "Regressed") && strings.HasSuffix(strings.TrimSpace(line), "*") {
			starLine = true
		}
		if strings.Contains(line, "Same") && strings.HasSuffix(strings.TrimSpace(line), "~") {
			tildeLine = true
		}
	}
	if !starLine || !tildeLine {
		t.Errorf("significance markers wrong (star=%v tilde=%v):\n%s", starLine, tildeLine, out)
	}
}
