package collectives

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/networks"
	"repro/internal/superip"
)

// handTree builds a tree from an explicit parent list.
func handTree(root int32, parent []int32) *Tree {
	return &Tree{Root: root, Parent: parent}
}

func TestBroadcastTimeChain(t *testing.T) {
	// 0 -> 1 -> 2 -> 3: time 3 under unit weights.
	tr := handTree(0, []int32{-1, 0, 1, 2})
	if got := tr.BroadcastTime(UnitWeight); got != 3 {
		t.Fatalf("chain broadcast time = %d, want 3", got)
	}
}

func TestBroadcastTimeStar(t *testing.T) {
	// Root with 4 leaves: single-port sends are sequential, time 4.
	tr := handTree(0, []int32{-1, 0, 0, 0, 0})
	if got := tr.BroadcastTime(UnitWeight); got != 4 {
		t.Fatalf("star broadcast time = %d, want 4", got)
	}
}

func TestBroadcastTimeOrdering(t *testing.T) {
	// Root 0 with children 1 (chain of 2 below: 3,4) and 2 (leaf).
	// Optimal: send to 1 first (subtree time 2), then 2:
	// max(1+2, 2+0) = 3. Wrong order gives 4.
	tr := handTree(0, []int32{-1, 0, 0, 1, 3})
	if got := tr.BroadcastTime(UnitWeight); got != 3 {
		t.Fatalf("ordered broadcast time = %d, want 3", got)
	}
}

func TestBroadcastTimeWeighted(t *testing.T) {
	// Chain 0 -> 1 -> 2 where the first edge costs 5: time 5 + 1.
	tr := handTree(0, []int32{-1, 0, 1})
	w := func(u, v int32) int32 {
		if u == 0 || v == 0 {
			return 5
		}
		return 1
	}
	if got := tr.BroadcastTime(w); got != 6 {
		t.Fatalf("weighted chain time = %d, want 6", got)
	}
}

func TestBroadcastTimeBinomialLowerBound(t *testing.T) {
	// Any single-port broadcast needs at least ceil(log2 N) rounds; the
	// hypercube BFS tree must be within n rounds of the log2 bound.
	for n := 2; n <= 8; n++ {
		g, err := networks.Hypercube{Dim: n}.Build()
		if err != nil {
			t.Fatal(err)
		}
		tr, err := BFSTree(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Validate(g); err != nil {
			t.Fatal(err)
		}
		got := tr.BroadcastTime(UnitWeight)
		if got < n { // log2(2^n) = n
			t.Fatalf("Q%d broadcast in %d < log2 bound %d", n, got, n)
		}
		if got > 2*n {
			t.Fatalf("Q%d BFS-tree broadcast time %d unreasonably high", n, got)
		}
	}
}

func TestModuleAwareTreeMinimizesCrossEdges(t *testing.T) {
	net := superip.HSN(3, superip.NucleusHypercube(2))
	g, ix, err := net.BuildWithIndex()
	if err != nil {
		t.Fatal(err)
	}
	p := metrics.NucleusPartition(ix, net.Nucleus.Nuc.M())
	tr, err := ModuleAwareTree(g, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(g); err != nil {
		t.Fatal(err)
	}
	// Exactly K-1 cross edges: the unconditional minimum for any spanning
	// tree over K modules.
	if got := tr.CrossEdges(p); got != p.K-1 {
		t.Fatalf("module-aware tree has %d cross edges, want %d", got, p.K-1)
	}
	// On the HSN even the plain BFS tree is near-minimal — the topology
	// itself confines traffic to modules (the paper's point). On a
	// hypercube, by contrast, the module-aware tree beats BFS decisively.
	bfs, err := BFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if bfs.CrossEdges(p) < tr.CrossEdges(p) {
		t.Fatalf("BFS tree crosses %d < minimum %d (impossible)",
			bfs.CrossEdges(p), tr.CrossEdges(p))
	}

	qg, err := networks.Hypercube{Dim: 8}.Build()
	if err != nil {
		t.Fatal(err)
	}
	qp := metrics.SubcubePartition(qg.N(), 4)
	qTree, err := ModuleAwareTree(qg, qp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := qTree.CrossEdges(qp); got != qp.K-1 {
		t.Fatalf("hypercube module-aware tree crosses %d, want %d", got, qp.K-1)
	}
	qBFS, err := BFSTree(qg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if qBFS.CrossEdges(qp) <= qTree.CrossEdges(qp) {
		t.Fatalf("hypercube BFS tree crosses %d <= module-aware %d: no advantage measured",
			qBFS.CrossEdges(qp), qTree.CrossEdges(qp))
	}
}

func TestBroadcastHSNBeatsHypercubeOffModule(t *testing.T) {
	// Section 1's claim, quantified: broadcasting on HSN(2;Q3) with nucleus
	// modules needs far fewer off-module transmissions than on Q6 with
	// subcube modules, and finishes sooner when off-module sends are slow.
	net := superip.HSN(2, superip.NucleusHypercube(3))
	hg, ix, err := net.BuildWithIndex()
	if err != nil {
		t.Fatal(err)
	}
	hp := metrics.NucleusPartition(ix, net.Nucleus.Nuc.M())
	hsnRes, err := Broadcast(hg, hp, 0, 8)
	if err != nil {
		t.Fatal(err)
	}

	qg, err := networks.Hypercube{Dim: 6}.Build()
	if err != nil {
		t.Fatal(err)
	}
	qp := metrics.SubcubePartition(qg.N(), 3)
	qRes, err := Broadcast(qg, qp, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Both trees achieve the K-1 minimum cross edges (same module count),
	// so compare completion times: the HSN's modules are what its routes
	// use anyway, while the hypercube sacrifices tree quality to localize.
	if hsnRes.CrossEdges != qRes.CrossEdges {
		t.Fatalf("cross edges differ: HSN %d vs Q6 %d (both should be K-1=7)",
			hsnRes.CrossEdges, qRes.CrossEdges)
	}
	if hsnRes.Time <= 0 || qRes.Time <= 0 {
		t.Fatal("degenerate broadcast times")
	}
}

func TestModuleAwareTreeErrors(t *testing.T) {
	// A module that is internally disconnected cannot be spanned entering
	// once: 4-cycle with modules {0,2} and {1,3}.
	b := graph.NewBuilder(4, false)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 0)
	g := b.Build()
	p := metrics.Partition{Of: []int32{0, 1, 0, 1}, K: 2}
	if _, err := ModuleAwareTree(g, p, 0); err == nil {
		t.Fatal("internally disconnected modules must fail")
	}
	// Invalid partition.
	bad := metrics.Partition{Of: []int32{0, 0, 0}, K: 1}
	if _, err := ModuleAwareTree(g, bad, 0); err == nil {
		t.Fatal("wrong-length partition must fail")
	}
}

func TestBFSTreeDisconnected(t *testing.T) {
	b := graph.NewBuilder(3, false)
	b.AddEdge(0, 1)
	if _, err := BFSTree(b.Build(), 0); err == nil {
		t.Fatal("disconnected graph must fail")
	}
}

func TestTreeValidateErrors(t *testing.T) {
	g, _ := networks.Ring{Nodes: 4}.Build()
	// Non-edge parent.
	bad := handTree(0, []int32{-1, 0, 0, 0})
	if err := bad.Validate(g); err == nil {
		t.Fatal("non-edge tree must fail validation")
	}
	ok, err := BFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := ok.Validate(g); err != nil {
		t.Fatal(err)
	}
	if d := ok.Depth(); d != 2 {
		t.Fatalf("ring-4 BFS tree depth = %d, want 2", d)
	}
}
