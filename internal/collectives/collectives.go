// Package collectives implements collective-communication primitives on
// interconnection networks, quantifying the paper's Section 1 claim that on
// super-IP graphs "the required data movements when performing many
// important algorithms are largely confined within basic modules". A
// module-aware broadcast tree enters every module exactly once (the minimum
// possible number of off-module transmissions), and the single-port
// ("telephone model") broadcast time is computed exactly with configurable
// off-module link cost, so the on-/off-module trade-off is measurable.
package collectives

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/metrics"
)

// Tree is a rooted spanning tree: Parent[v] is v's parent (-1 at the root).
type Tree struct {
	Root   int32
	Parent []int32
}

// Validate checks that the tree spans the graph and follows its edges.
func (t *Tree) Validate(g *graph.Graph) error {
	if t.Parent[t.Root] != -1 {
		return fmt.Errorf("collectives: root has a parent")
	}
	seen := 0
	for v, p := range t.Parent {
		if int32(v) == t.Root {
			seen++
			continue
		}
		if p < 0 {
			return fmt.Errorf("collectives: node %d unreached", v)
		}
		if !g.HasEdge(p, int32(v)) {
			return fmt.Errorf("collectives: tree edge %d -> %d not in graph", p, v)
		}
		seen++
	}
	if seen != g.N() {
		return fmt.Errorf("collectives: tree covers %d of %d nodes", seen, g.N())
	}
	return nil
}

// Depth returns the maximum root-to-leaf hop count.
func (t *Tree) Depth() int {
	depth := make([]int, len(t.Parent))
	max := 0
	var dep func(v int32) int
	dep = func(v int32) int {
		if v == t.Root {
			return 0
		}
		if depth[v] == 0 {
			depth[v] = dep(t.Parent[v]) + 1
		}
		return depth[v]
	}
	for v := range t.Parent {
		if d := dep(int32(v)); d > max {
			max = d
		}
	}
	return max
}

// CrossEdges counts tree edges whose endpoints lie in different modules —
// the number of off-module transmissions one broadcast performs.
func (t *Tree) CrossEdges(p metrics.Partition) int {
	n := 0
	for v, par := range t.Parent {
		if par >= 0 && p.Of[v] != p.Of[par] {
			n++
		}
	}
	return n
}

// BFSTree returns the plain BFS spanning tree from src (the baseline that
// ignores module structure).
func BFSTree(g *graph.Graph, src int32) (*Tree, error) {
	parent := make([]int32, g.N())
	for i := range parent {
		parent[i] = -2
	}
	parent[src] = -1
	queue := []int32{src}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, v := range g.Neighbors(u) {
			if parent[v] == -2 {
				parent[v] = u
				queue = append(queue, v)
			}
		}
	}
	for v, p := range parent {
		if p == -2 {
			return nil, fmt.Errorf("collectives: node %d unreachable from %d", v, src)
		}
	}
	return &Tree{Root: src, Parent: parent}, nil
}

// ModuleAwareTree builds a spanning tree that enters every module exactly
// once: a BFS spanning tree of the quotient (module) graph decides one entry
// edge per module, and BFS inside each module from its entry node spans the
// rest. The resulting tree has exactly K-1 cross edges — the minimum any
// spanning tree can achieve — so broadcasts pay the fewest possible
// off-module transmissions.
func ModuleAwareTree(g *graph.Graph, p metrics.Partition, src int32) (*Tree, error) {
	if err := p.Validate(g.N()); err != nil {
		return nil, err
	}
	parent := make([]int32, g.N())
	for i := range parent {
		parent[i] = -2
	}
	parent[src] = -1
	// entry[c] = node through which module c was entered (-1 if not yet).
	entry := make([]int32, p.K)
	for i := range entry {
		entry[i] = -1
	}
	entry[p.Of[src]] = src

	// spanModule runs BFS inside module c from its entry node, returning
	// the member nodes (all reached; modules must be internally connected
	// for the minimum to be achievable — validated below).
	spanModule := func(c int32) []int32 {
		start := entry[c]
		members := []int32{start}
		for head := 0; head < len(members); head++ {
			u := members[head]
			for _, v := range g.Neighbors(u) {
				if p.Of[v] == c && parent[v] == -2 {
					parent[v] = u
					members = append(members, v)
				}
			}
		}
		return members
	}

	// BFS over modules.
	moduleQueue := []int32{p.Of[src]}
	for head := 0; head < len(moduleQueue); head++ {
		c := moduleQueue[head]
		members := spanModule(c)
		for _, u := range members {
			for _, v := range g.Neighbors(u) {
				cv := p.Of[v]
				if entry[cv] == -1 {
					entry[cv] = v
					parent[v] = u
					moduleQueue = append(moduleQueue, cv)
				}
			}
		}
	}
	for v, par := range parent {
		if par == -2 {
			return nil, fmt.Errorf("collectives: node %d unreachable (module %d not internally connected?)",
				v, p.Of[v])
		}
	}
	return &Tree{Root: src, Parent: parent}, nil
}

// BroadcastTime computes the optimal single-port broadcast completion time
// of the tree: each node sends to one child at a time; sending along edge
// (u,v) takes weight(u,v) cycles; a child starts relaying as soon as it has
// received. For each node the optimal send order is by descending subtree
// completion time (an exchange argument shows this is optimal regardless of
// the individual send durations).
func (t *Tree) BroadcastTime(weight func(u, v int32) int32) int {
	children := make([][]int32, len(t.Parent))
	for v, p := range t.Parent {
		if p >= 0 {
			children[p] = append(children[p], int32(v))
		}
	}
	// Iterative post-order: compute subtree times bottom-up.
	order := make([]int32, 0, len(t.Parent))
	stack := []int32{t.Root}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		order = append(order, u)
		stack = append(stack, children[u]...)
	}
	time := make([]int, len(t.Parent))
	for i := len(order) - 1; i >= 0; i-- {
		u := order[i]
		ch := children[u]
		if len(ch) == 0 {
			time[u] = 0
			continue
		}
		// Sort children by subtree completion time, descending.
		sort.Slice(ch, func(a, b int) bool { return time[ch[a]] > time[ch[b]] })
		elapsed, worst := 0, 0
		for _, c := range ch {
			elapsed += int(weight(u, c))
			if done := elapsed + time[c]; done > worst {
				worst = done
			}
		}
		time[u] = worst
	}
	return time[t.Root]
}

// UnitWeight is the all-links-equal weight function.
func UnitWeight(u, v int32) int32 { return 1 }

// ModuleWeight returns a weight function where off-module sends cost
// offCost cycles and on-module sends cost 1.
func ModuleWeight(p metrics.Partition, offCost int32) func(u, v int32) int32 {
	return func(u, v int32) int32 {
		if p.Of[u] == p.Of[v] {
			return 1
		}
		return offCost
	}
}

// Result summarizes one broadcast.
type Result struct {
	// Time is the single-port completion time under the given weights.
	Time int
	// CrossEdges is the number of off-module transmissions performed.
	CrossEdges int
	// Depth is the tree depth in hops.
	Depth int
}

// Broadcast builds the module-aware tree from src and evaluates it with
// off-module sends costing offCost.
func Broadcast(g *graph.Graph, p metrics.Partition, src int32, offCost int32) (Result, error) {
	tree, err := ModuleAwareTree(g, p, src)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Time:       tree.BroadcastTime(ModuleWeight(p, offCost)),
		CrossEdges: tree.CrossEdges(p),
		Depth:      tree.Depth(),
	}, nil
}
