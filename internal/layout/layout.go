// Package layout places interconnection networks on a 2-D grid and measures
// wire cost, in the spirit of the authors' companion "recursive grid layout"
// paper ([31] in the reproduced paper's references): nodes are assigned to
// grid points by recursive (Kernighan-Lin) bisection with alternating cut
// directions, and edges are costed by Manhattan wirelength. Hierarchical
// networks with small bisection width lay out with far less wire than
// hypercubes of the same size — the quantitative backdrop to Section 5's
// packaging arguments.
package layout

import (
	"fmt"
	"math/rand"

	"repro/internal/bisect"
	"repro/internal/graph"
)

// Point is a grid coordinate.
type Point struct{ X, Y int }

// Placement assigns one grid point per node.
type Placement struct {
	Pos  []Point
	Cols int
	Rows int
}

// Result summarizes the wire cost of a placement.
type Result struct {
	// TotalWirelength is the sum of Manhattan edge lengths.
	TotalWirelength int
	// MaxWirelength is the longest single edge.
	MaxWirelength int
	// AvgWirelength is TotalWirelength / #edges.
	AvgWirelength float64
	// Area is the bounding grid area Rows*Cols.
	Area int
}

// RecursiveBisection places the nodes of g on a near-square grid: the node
// set is recursively bisected (Kernighan-Lin on the induced subgraph) to
// produce a locality-preserving linear order, and the order is laid along a
// serpentine (boustrophedon) scan of the grid, so consecutive order
// positions are always grid-adjacent. Deterministic for a given seed.
// Intended for graphs up to a few thousand nodes.
func RecursiveBisection(g *graph.Graph, seed int64) (*Placement, error) {
	if g.N() == 0 {
		return nil, fmt.Errorf("layout: empty graph")
	}
	if g.N() > 1<<13 {
		return nil, fmt.Errorf("layout: %d nodes too large for KL-based placement", g.N())
	}
	cols := 1
	for cols*cols < g.N() {
		cols++
	}
	rows := (g.N() + cols - 1) / cols
	p := &Placement{Pos: make([]Point, g.N()), Cols: cols, Rows: rows}
	nodes := make([]int32, g.N())
	for i := range nodes {
		nodes[i] = int32(i)
	}
	rng := rand.New(rand.NewSource(seed))
	order := make([]int32, 0, g.N())
	orderNodes(g, nodes, rng, &order)
	for i, v := range order {
		row := i / cols
		col := i % cols
		if row%2 == 1 {
			col = cols - 1 - col // serpentine: reverse odd rows
		}
		p.Pos[v] = Point{col, row}
	}
	return p, nil
}

// orderNodes recursively bisects the node set and appends a
// locality-preserving order to out.
func orderNodes(g *graph.Graph, nodes []int32, rng *rand.Rand, out *[]int32) {
	if len(nodes) <= 2 {
		*out = append(*out, nodes...)
		return
	}
	sideA, sideB := partitionNodes(g, nodes, rng)
	orderNodes(g, sideA, rng, out)
	orderNodes(g, sideB, rng, out)
}

// partitionNodes bisects the node subset with one randomized KL pass on the
// induced subgraph.
func partitionNodes(g *graph.Graph, nodes []int32, rng *rand.Rand) ([]int32, []int32) {
	// Build the induced subgraph.
	idx := make(map[int32]int32, len(nodes))
	for i, v := range nodes {
		idx[v] = int32(i)
	}
	b := graph.NewBuilder(len(nodes), false)
	for i, v := range nodes {
		for _, u := range g.Neighbors(v) {
			if j, ok := idx[u]; ok && j > int32(i) {
				b.AddEdge(int32(i), j)
			}
		}
	}
	sub := b.Build()
	side := klSplit(sub, rng)
	var a, bb []int32
	for i, v := range nodes {
		if side[i] {
			bb = append(bb, v)
		} else {
			a = append(a, v)
		}
	}
	return a, bb
}

// klSplit produces a balanced bipartition of sub via the bisect package's
// refinement, starting from a random balanced split.
func klSplit(sub *graph.Graph, rng *rand.Rand) []bool {
	n := sub.N()
	perm := rng.Perm(n)
	side := make([]bool, n)
	for i, v := range perm {
		side[v] = i >= (n+1)/2
	}
	bisect.Refine(sub, side)
	return side
}

// Measure computes the wire cost of a placement.
func Measure(g *graph.Graph, p *Placement) Result {
	res := Result{Area: p.Cols * p.Rows}
	edges := 0
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(int32(u)) {
			if !g.Directed && v < int32(u) {
				continue
			}
			a, b := p.Pos[u], p.Pos[v]
			d := abs(a.X-b.X) + abs(a.Y-b.Y)
			res.TotalWirelength += d
			if d > res.MaxWirelength {
				res.MaxWirelength = d
			}
			edges++
		}
	}
	if edges > 0 {
		res.AvgWirelength = float64(res.TotalWirelength) / float64(edges)
	}
	return res
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Validate checks that the placement is injective and in bounds.
func (p *Placement) Validate() error {
	seen := map[Point]bool{}
	for u, pt := range p.Pos {
		if pt.X < 0 || pt.X >= p.Cols || pt.Y < 0 || pt.Y >= p.Rows {
			return fmt.Errorf("layout: node %d at %v out of %dx%d grid", u, pt, p.Cols, p.Rows)
		}
		if seen[pt] {
			return fmt.Errorf("layout: grid point %v used twice", pt)
		}
		seen[pt] = true
	}
	return nil
}
