package layout

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/networks"
	"repro/internal/superip"
)

func TestPlacementValidity(t *testing.T) {
	for _, spec := range []networks.Spec{
		networks.Ring{Nodes: 17},
		networks.Hypercube{Dim: 6},
		networks.Torus2D{Rows: 8, Cols: 8},
		networks.Star{Symbols: 5},
	} {
		g, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		p, err := RecursiveBisection(g, 1)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name(), err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", spec.Name(), err)
		}
		res := Measure(g, p)
		if res.TotalWirelength <= 0 || res.Area < g.N() {
			t.Fatalf("%s: degenerate layout %+v", spec.Name(), res)
		}
	}
}

func TestMeshLaysOutWell(t *testing.T) {
	// A planar mesh must lay out with low average wirelength (close to 1
	// per edge up to the heuristic's imperfection).
	g, err := networks.Mesh2D{Rows: 8, Cols: 8}.Build()
	if err != nil {
		t.Fatal(err)
	}
	p, err := RecursiveBisection(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	res := Measure(g, p)
	if res.AvgWirelength > 3.0 {
		t.Fatalf("mesh average wirelength %v too high", res.AvgWirelength)
	}
}

func TestHSNCheaperThanHypercube(t *testing.T) {
	// The locality claim quantified: at 256 nodes, HSN(2;Q4) needs less
	// total wire than Q8 under the same placement heuristic (it has both
	// fewer edges and stronger locality).
	q8, err := networks.Hypercube{Dim: 8}.Build()
	if err != nil {
		t.Fatal(err)
	}
	hsnG, err := superip.HSN(2, superip.NucleusHypercube(4)).Build()
	if err != nil {
		t.Fatal(err)
	}
	pq, err := RecursiveBisection(q8, 7)
	if err != nil {
		t.Fatal(err)
	}
	ph, err := RecursiveBisection(hsnG, 7)
	if err != nil {
		t.Fatal(err)
	}
	wq := Measure(q8, pq).TotalWirelength
	wh := Measure(hsnG, ph).TotalWirelength
	if wh >= wq {
		t.Fatalf("HSN wirelength %d should beat Q8's %d", wh, wq)
	}
	// Per-edge, the HSN should also be cheaper or comparable.
	aq := Measure(q8, pq).AvgWirelength
	ah := Measure(hsnG, ph).AvgWirelength
	if ah > aq*1.2 {
		t.Fatalf("HSN avg wirelength %v much worse than Q8's %v", ah, aq)
	}
}

func TestNucleusLocality(t *testing.T) {
	// Nodes of the same nucleus should end up close together: measure the
	// average intra-module vs inter-module wirelength on HSN(2;Q3).
	net := superip.HSN(2, superip.NucleusHypercube(3))
	g, ix, err := net.BuildWithIndex()
	if err != nil {
		t.Fatal(err)
	}
	part := metrics.NucleusPartition(ix, net.Nucleus.Nuc.M())
	p, err := RecursiveBisection(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	var intra, inter, nIntra, nInter int
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(int32(u)) {
			if v < int32(u) {
				continue
			}
			d := abs(p.Pos[u].X-p.Pos[v].X) + abs(p.Pos[u].Y-p.Pos[v].Y)
			if part.Of[u] == part.Of[v] {
				intra += d
				nIntra++
			} else {
				inter += d
				nInter++
			}
		}
	}
	if nIntra == 0 || nInter == 0 {
		t.Fatal("degenerate edge classes")
	}
	if float64(intra)/float64(nIntra) > float64(inter)/float64(nInter) {
		t.Fatalf("intra-module wires (%d/%d) should be shorter than inter-module (%d/%d)",
			intra, nIntra, inter, nInter)
	}
}

func TestErrors(t *testing.T) {
	if _, err := RecursiveBisection(graph.NewBuilder(0, false).Build(), 1); err == nil {
		t.Fatal("empty graph must fail")
	}
	big := graph.NewBuilder(1<<14, false)
	big.AddEdge(0, 1)
	if _, err := RecursiveBisection(big.Build(), 1); err == nil {
		t.Fatal("oversized graph must fail")
	}
}
