package route

import "fmt"

// PermRank returns the lexicographic rank (Lehmer code) of a permutation of
// 0..n-1 — the node id that networks.Star, RotationExchange, and Pancake
// assign to it, since they enumerate permutations in lexicographic order.
// It returns an error if p is not a permutation of 0..n-1.
func PermRank(p []byte) (int32, error) {
	n := len(p)
	if n == 0 || n > 12 {
		return 0, fmt.Errorf("route: permutation length %d out of rankable range", n)
	}
	factorials := make([]int64, n)
	factorials[0] = 1
	for i := 1; i < n; i++ {
		factorials[i] = factorials[i-1] * int64(i)
	}
	// rank = sum over i of (#{unused values below p[i]}) * (n-1-i)!
	var used uint16
	var rank int64
	for i := 0; i < n; i++ {
		v := int(p[i])
		if v < 0 || v >= n || used&(1<<uint(v)) != 0 {
			return 0, fmt.Errorf("route: %v is not a permutation of 0..%d", p, n-1)
		}
		smaller := 0
		for j := 0; j < v; j++ {
			if used&(1<<uint(j)) == 0 {
				smaller++
			}
		}
		used |= 1 << uint(v)
		rank += int64(smaller) * factorials[n-1-i]
	}
	return int32(rank), nil
}

// PermUnrank returns the permutation of 0..n-1 with lexicographic rank id.
// It is the inverse of PermRank.
func PermUnrank(n int, id int32) ([]byte, error) {
	if n <= 0 || n > 12 {
		return nil, fmt.Errorf("route: permutation length %d out of rankable range", n)
	}
	factorials := make([]int64, n)
	factorials[0] = 1
	for i := 1; i < n; i++ {
		factorials[i] = factorials[i-1] * int64(i)
	}
	r := int64(id)
	if r < 0 || r >= factorials[n-1]*int64(n) {
		return nil, fmt.Errorf("route: rank %d out of range for n=%d", id, n)
	}
	avail := make([]byte, n)
	for i := range avail {
		avail[i] = byte(i)
	}
	p := make([]byte, n)
	for i := 0; i < n; i++ {
		f := factorials[n-1-i]
		k := r / f
		r %= f
		p[i] = avail[k]
		avail = append(avail[:k], avail[k+1:]...)
	}
	return p, nil
}

// StarIDPath routes in the n-star graph directly in node-id space: ids are
// the lexicographic permutation ranks used by networks.Star, so the returned
// Path is valid on the built graph without any label translation. The route
// is the optimal cycle-sorting route of Star; its length equals StarDistance
// of the relative permutation.
func StarIDPath(n int, src, dst int32) (Path, error) {
	sp, err := PermUnrank(n, src)
	if err != nil {
		return nil, err
	}
	dp, err := PermUnrank(n, dst)
	if err != nil {
		return nil, err
	}
	labels, err := Star(sp, dp)
	if err != nil {
		return nil, err
	}
	p := make(Path, len(labels))
	for i, lab := range labels {
		id, err := PermRank(lab)
		if err != nil {
			return nil, err
		}
		p[i] = id
	}
	return p, nil
}
