// Package route implements network-specific routing algorithms for the
// comparison networks: e-cube routing for hypercubes, dimension-order
// routing for k-ary n-cubes, the optimal cycle-sorting algorithm for star
// graphs (the Cayley-graph "sorting" view of routing that Section 4
// generalizes to IP graphs), digit-shifting for de Bruijn graphs, and
// generic BFS next-hop tables for everything else.
package route

import (
	"fmt"

	"repro/internal/graph"
)

// Path is a sequence of node ids from source to destination inclusive.
type Path []int32

// Hops returns the number of edges traversed.
func (p Path) Hops() int { return len(p) - 1 }

// Validate checks that the path starts at src, ends at dst, and follows
// edges of g.
func (p Path) Validate(g *graph.Graph, src, dst int32) error {
	if len(p) == 0 || p[0] != src || p[len(p)-1] != dst {
		return fmt.Errorf("route: path endpoints wrong")
	}
	for i := 0; i+1 < len(p); i++ {
		if !g.HasEdge(p[i], p[i+1]) {
			return fmt.Errorf("route: step %d (%d -> %d) is not an edge", i, p[i], p[i+1])
		}
	}
	return nil
}

// Hypercube returns the e-cube route in Q_dim: correct differing bits from
// least significant to most significant. The path length equals the Hamming
// distance, which is optimal.
func Hypercube(dim int, src, dst int32) Path {
	p := Path{src}
	cur := src
	for bit := 0; bit < dim; bit++ {
		mask := int32(1) << uint(bit)
		if cur&mask != dst&mask {
			cur ^= mask
			p = append(p, cur)
		}
	}
	return p
}

// KAryNCube returns the dimension-order route in the k-ary n-cube: each
// coordinate moves along the shorter wraparound direction. Optimal.
func KAryNCube(k, dims int, src, dst int32) Path {
	p := Path{src}
	cur := int(src)
	stride := 1
	for d := 0; d < dims; d++ {
		sd := (cur / stride) % k
		dd := (int(dst) / stride) % k
		delta := (dd - sd + k) % k
		// Move along the shorter wraparound direction (ties go forward).
		step := 1
		count := delta
		if delta > k/2 {
			step = -1
			count = k - delta
		}
		for i := 0; i < count; i++ {
			digit := (cur / stride) % k
			next := (digit + step + k) % k
			cur += (next - digit) * stride
			p = append(p, int32(cur))
		}
		stride *= k
	}
	return p
}

// StarDistance returns the exact star-graph distance from permutation perm
// to the identity: sum over cycles of (k-1) if the cycle contains position 0
// else (k+1) — the classic Akers-Krishnamurthy result.
func StarDistance(perm []byte) int {
	n := len(perm)
	seen := make([]bool, n)
	d := 0
	for i := 0; i < n; i++ {
		if seen[i] || int(perm[i]) == i {
			seen[i] = true
			continue
		}
		k := 0
		containsFirst := false
		for j := i; !seen[j]; j = int(perm[j]) {
			seen[j] = true
			k++
			if j == 0 {
				containsFirst = true
			}
		}
		if containsFirst {
			d += k - 1
		} else {
			d += k + 1
		}
	}
	return d
}

// Star routes in the star graph by optimally sorting the source permutation
// into the destination permutation. Labels are permutations of 0..n-1; the
// returned sequence of labels starts at src and ends at dst, moving along
// star edges (swap position 0 with position i). The length always equals
// StarDistance of the relative permutation (optimal).
//
// Deprecated: the raw [][]byte label form cannot be consumed by graph- or
// topology-level code without a caller-supplied translation. Use StarIDPath,
// which routes directly in the node-id space of networks.Star and returns a
// Path like every other router in this package.
func Star(src, dst []byte) ([][]byte, error) {
	n := len(src)
	if len(dst) != n {
		return nil, fmt.Errorf("route: length mismatch")
	}
	// Work in the frame where dst is the identity: rel[i] = position in dst
	// of the symbol src[i].
	posInDst := make([]int, n)
	for i, v := range dst {
		posInDst[v] = i
	}
	cur := make([]byte, n)
	for i, v := range src {
		cur[i] = byte(posInDst[v])
	}
	path := [][]byte{append([]byte(nil), cur...)}
	swap := func(i int) {
		cur[0], cur[i] = cur[i], cur[0]
		path = append(path, append([]byte(nil), cur...))
	}
	for {
		x := int(cur[0])
		if x != 0 {
			// The symbol at the front belongs at position x: send it home.
			swap(x)
			continue
		}
		// Front is correct; find any out-of-place symbol and bring it in.
		done := true
		for i := 1; i < n; i++ {
			if int(cur[i]) != i {
				swap(i)
				done = false
				break
			}
		}
		if done {
			break
		}
	}
	// Translate the path back into the original symbol alphabet.
	out := make([][]byte, len(path))
	for s, lab := range path {
		t := make([]byte, n)
		for i, v := range lab {
			t[i] = dst[v]
		}
		out[s] = t
	}
	return out, nil
}

// DeBruijn routes in the directed base-b de Bruijn graph by shifting in
// destination digits, exploiting the longest overlap between the suffix of
// src and the prefix of dst; the path has at most dim hops and is the
// shortest shift-only route.
func DeBruijn(base, dim int, src, dst int32) Path {
	n := 1
	for i := 0; i < dim; i++ {
		n *= base
	}
	// Try overlap lengths from dim (identical) down to 0; keep = number of
	// low digits of src that already match the high digits of dst. keep = 0
	// always matches, so the loop always returns.
	for keep := dim; keep >= 0; keep-- {
		mod := 1
		for i := 0; i < keep; i++ {
			mod *= base
		}
		div := n / mod
		if int(src)%mod != int(dst)/div {
			continue
		}
		p := Path{src}
		cur := int(src)
		// Shift in the remaining dim-keep digits of dst.
		rem := int(dst) % div
		digits := make([]int, dim-keep)
		for i := dim - keep - 1; i >= 0; i-- {
			digits[i] = rem % base
			rem /= base
		}
		for _, dig := range digits {
			cur = (cur*base + dig) % n
			p = append(p, int32(cur))
		}
		return p
	}
	return Path{src}
}

// NextHopTable holds, for one destination, the next hop from every node on
// a shortest path (or -1 at the destination / unreachable nodes).
type NextHopTable []int32

// BFSNextHops computes next-hop tables toward dst for an arbitrary graph by
// reverse BFS. For undirected graphs the reverse graph is the graph itself.
func BFSNextHops(g *graph.Graph, dst int32) NextHopTable {
	// BFS from dst over reverse edges; parent of u on that tree is the next
	// hop from u toward dst.
	rev := g
	if g.Directed {
		rev = reverseOf(g)
	}
	next := make(NextHopTable, g.N())
	for i := range next {
		next[i] = -1
	}
	visited := make([]bool, g.N())
	visited[dst] = true
	queue := []int32{dst}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, u := range rev.Neighbors(v) {
			if !visited[u] {
				visited[u] = true
				next[u] = v
				queue = append(queue, u)
			}
		}
	}
	return next
}

func reverseOf(g *graph.Graph) *graph.Graph {
	b := graph.NewBuilder(g.N(), true)
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(int32(u)) {
			b.AddArc(v, int32(u))
		}
	}
	return b.Build()
}

// Follow expands a next-hop table into a full path from src.
func (t NextHopTable) Follow(src, dst int32) (Path, error) {
	p := Path{src}
	cur := src
	for cur != dst {
		nxt := t[cur]
		if nxt < 0 {
			return nil, fmt.Errorf("route: no next hop from %d toward %d", cur, dst)
		}
		cur = nxt
		p = append(p, cur)
		if len(p) > len(t)+1 {
			return nil, fmt.Errorf("route: next-hop loop detected")
		}
	}
	return p, nil
}

// BFSAllNextHops computes, for every node, ALL minimal next hops toward dst
// (neighbors whose distance to dst is exactly one less). Used for adaptive
// minimal routing.
func BFSAllNextHops(g *graph.Graph, dst int32) [][]int32 {
	rev := g
	if g.Directed {
		rev = reverseOf(g)
	}
	dist := rev.BFS(dst) // distance from every node TO dst along forward arcs
	out := make([][]int32, g.N())
	for u := 0; u < g.N(); u++ {
		du := dist[u]
		if du <= 0 {
			continue
		}
		for _, v := range g.Neighbors(int32(u)) {
			if dist[v] == du-1 {
				out[u] = append(out[u], v)
			}
		}
	}
	return out
}

// bfsTowardAvoiding computes, for every node, the hop distance TO dst along
// forward arcs over the live subgraph: nodes for which deadNode returns true
// and arcs for which deadLink returns true are excluded. Either predicate
// may be nil. Distances are graph.Unreachable where no live path exists (in
// particular everywhere when dst itself is dead).
func bfsTowardAvoiding(g *graph.Graph, dst int32, deadNode func(int32) bool, deadLink func(u, v int32) bool) []int32 {
	dist := make([]int32, g.N())
	for i := range dist {
		dist[i] = graph.Unreachable
	}
	if deadNode != nil && deadNode(dst) {
		return dist
	}
	rev := g
	if g.Directed {
		rev = reverseOf(g)
	}
	dist[dst] = 0
	queue := []int32{dst}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		dv := dist[v]
		for _, u := range rev.Neighbors(v) {
			if dist[u] != graph.Unreachable {
				continue
			}
			if deadNode != nil && deadNode(u) {
				continue
			}
			// The reverse arc v->u corresponds to the forward arc u->v.
			if deadLink != nil && deadLink(u, v) {
				continue
			}
			dist[u] = dv + 1
			queue = append(queue, u)
		}
	}
	return dist
}

// BFSNextHopsAvoiding is BFSNextHops restricted to the live subgraph: dead
// nodes and dead links are routed around. Entries are -1 at the destination
// and at nodes with no live path. This is the table-repair primitive of the
// fault-adaptive simulator: after a failure notification the affected
// tables are rebuilt against the surviving topology.
func BFSNextHopsAvoiding(g *graph.Graph, dst int32, deadNode func(int32) bool, deadLink func(u, v int32) bool) NextHopTable {
	dist := bfsTowardAvoiding(g, dst, deadNode, deadLink)
	next := make(NextHopTable, g.N())
	for i := range next {
		next[i] = -1
	}
	for u := 0; u < g.N(); u++ {
		du := dist[u]
		if du <= 0 {
			continue
		}
		for _, v := range g.Neighbors(int32(u)) {
			if dist[v] != du-1 {
				continue
			}
			if deadLink != nil && deadLink(int32(u), v) {
				continue
			}
			next[u] = v
			break
		}
	}
	return next
}

// BFSAllNextHopsAvoiding is BFSAllNextHops restricted to the live subgraph:
// for every node it lists ALL live minimal next hops toward dst (live
// neighbors one step closer over live links). Nodes with no live path get an
// empty list.
func BFSAllNextHopsAvoiding(g *graph.Graph, dst int32, deadNode func(int32) bool, deadLink func(u, v int32) bool) [][]int32 {
	dist := bfsTowardAvoiding(g, dst, deadNode, deadLink)
	out := make([][]int32, g.N())
	for u := 0; u < g.N(); u++ {
		du := dist[u]
		if du <= 0 {
			continue
		}
		for _, v := range g.Neighbors(int32(u)) {
			if dist[v] != du-1 {
				continue
			}
			if deadLink != nil && deadLink(int32(u), v) {
				continue
			}
			out[u] = append(out[u], v)
		}
	}
	return out
}

// FoldedHypercube routes in FQ_dim: when the Hamming distance to the
// destination exceeds (dim+1)/2 it is shorter to take the complement edge
// first and correct the remaining complemented bits. The resulting path is
// optimal (length min(h, dim+1-h)).
func FoldedHypercube(dim int, src, dst int32) Path {
	mask := int32(1)<<uint(dim) - 1
	h := 0
	for x := (src ^ dst) & mask; x != 0; x &= x - 1 {
		h++
	}
	if h <= dim-h+1 {
		return Hypercube(dim, src, dst)
	}
	// Complement edge first, then e-cube on the remaining dim-h bits.
	p := Path{src}
	cur := src ^ mask
	p = append(p, cur)
	rest := Hypercube(dim, cur, dst)
	return append(p, rest[1:]...)
}
