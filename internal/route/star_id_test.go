package route

import (
	"math/rand"
	"testing"

	"repro/internal/networks"
)

// TestPermRankRoundTrip checks that PermRank is the lexicographic rank
// (identity at 0, reverse at n!-1) and that PermUnrank inverts it, for all
// permutations up to n=6.
func TestPermRankRoundTrip(t *testing.T) {
	for n := 1; n <= 6; n++ {
		total := int32(1)
		for i := 2; i <= n; i++ {
			total *= int32(i)
		}
		prev := []byte(nil)
		for id := int32(0); id < total; id++ {
			p, err := PermUnrank(n, id)
			if err != nil {
				t.Fatalf("n=%d: PermUnrank(%d): %v", n, id, err)
			}
			if prev != nil && string(prev) >= string(p) {
				t.Fatalf("n=%d: ids not in lexicographic order at %d: %v >= %v", n, id, prev, p)
			}
			prev = append(prev[:0], p...)
			back, err := PermRank(p)
			if err != nil {
				t.Fatalf("n=%d: PermRank(%v): %v", n, p, err)
			}
			if back != id {
				t.Fatalf("n=%d: PermRank(PermUnrank(%d)) = %d", n, id, back)
			}
		}
	}
	if _, err := PermRank([]byte{0, 0, 2}); err == nil {
		t.Fatal("repeated symbol accepted")
	}
	if _, err := PermRank([]byte{0, 3}); err == nil {
		t.Fatal("out-of-range symbol accepted")
	}
	if _, err := PermUnrank(3, 6); err == nil {
		t.Fatal("out-of-range rank accepted")
	}
}

// TestStarIDPath checks that StarIDPath agrees with the deprecated
// label-space Star router and that its paths are valid, optimal routes on
// the graph networks.Star actually builds.
func TestStarIDPath(t *testing.T) {
	const n = 5
	g, err := networks.Star{Symbols: n}.Build()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		src := int32(rng.Intn(g.N()))
		dst := int32(rng.Intn(g.N()))
		p, err := StarIDPath(n, src, dst)
		if err != nil {
			t.Fatalf("StarIDPath(%d, %d): %v", src, dst, err)
		}
		if err := p.Validate(g, src, dst); err != nil {
			t.Fatalf("StarIDPath(%d, %d): %v", src, dst, err)
		}
		// Optimality: hops == StarDistance of the relative permutation.
		sp, _ := PermUnrank(n, src)
		dp, _ := PermUnrank(n, dst)
		posInDst := make([]int, n)
		for i, v := range dp {
			posInDst[v] = i
		}
		rel := make([]byte, n)
		for i, v := range sp {
			rel[i] = byte(posInDst[v])
		}
		if want := StarDistance(rel); p.Hops() != want {
			t.Fatalf("StarIDPath(%d, %d): %d hops, want %d", src, dst, p.Hops(), want)
		}
		// Agreement with the deprecated label-space form, step by step.
		labels, err := Star(sp, dp)
		if err != nil {
			t.Fatal(err)
		}
		if len(labels) != len(p) {
			t.Fatalf("label path has %d steps, id path %d", len(labels), len(p))
		}
		for i, lab := range labels {
			id, err := PermRank(lab)
			if err != nil || id != p[i] {
				t.Fatalf("step %d: label %v ranks to %d (%v), id path has %d", i, lab, id, err, p[i])
			}
		}
	}
}
