package route

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/networks"
)

func TestHypercubeRouting(t *testing.T) {
	dim := 8
	g, err := networks.Hypercube{Dim: dim}.Build()
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b uint16) bool {
		src := int32(a) & int32(g.N()-1)
		dst := int32(b) & int32(g.N()-1)
		p := Hypercube(dim, src, dst)
		if err := p.Validate(g, src, dst); err != nil {
			return false
		}
		// e-cube is optimal: hops == Hamming distance.
		ham := 0
		for x := src ^ dst; x != 0; x &= x - 1 {
			ham++
		}
		return p.Hops() == ham
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKAryNCubeRouting(t *testing.T) {
	for _, tc := range []struct{ k, dims int }{{4, 3}, {5, 2}, {3, 4}, {8, 2}, {2, 5}} {
		spec := networks.KAryNCube{K: tc.k, Dims: tc.dims}
		g, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(tc.k)))
		for trial := 0; trial < 300; trial++ {
			src := int32(rng.Intn(g.N()))
			dst := int32(rng.Intn(g.N()))
			p := KAryNCube(tc.k, tc.dims, src, dst)
			if err := p.Validate(g, src, dst); err != nil {
				t.Fatalf("%s: %v", spec.Name(), err)
			}
			// Dimension-order with shortest wrap is optimal on a torus.
			dist := g.BFS(src)
			if int(dist[dst]) != p.Hops() {
				t.Fatalf("%s: route %d hops, BFS %d", spec.Name(), p.Hops(), dist[dst])
			}
		}
	}
}

func TestStarDistanceAgainstBFS(t *testing.T) {
	spec := networks.Star{Symbols: 5}
	g, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	perms := allPerms(5)
	// Node 0 is the identity permutation in the deterministic enumeration.
	dist := g.BFS(0)
	for i, p := range perms {
		if got := StarDistance(p); got != int(dist[i]) {
			t.Fatalf("StarDistance(%v) = %d, BFS = %d", p, got, dist[i])
		}
	}
}

func TestStarRoutingOptimal(t *testing.T) {
	n := 5
	perms := allPerms(n)
	index := map[string]int32{}
	for i, p := range perms {
		index[string(p)] = int32(i)
	}
	spec := networks.Star{Symbols: n}
	g, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 400; trial++ {
		src := perms[rng.Intn(len(perms))]
		dst := perms[rng.Intn(len(perms))]
		path, err := Star(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		if string(path[0]) != string(src) || string(path[len(path)-1]) != string(dst) {
			t.Fatalf("path endpoints wrong: %v ... %v", path[0], path[len(path)-1])
		}
		// Each step must be a star move (swap of positions 0 and i).
		for s := 0; s+1 < len(path); s++ {
			a, b := path[s], path[s+1]
			diff := 0
			for i := range a {
				if a[i] != b[i] {
					diff++
				}
			}
			if diff != 2 || a[0] == b[0] {
				t.Fatalf("step %d is not a star move: %v -> %v", s, a, b)
			}
			if !g.HasEdge(index[string(a)], index[string(b)]) {
				t.Fatalf("step %d not an edge", s)
			}
		}
		// Optimality: path length equals BFS distance.
		dist := g.BFS(index[string(src)])
		if int(dist[index[string(dst)]]) != len(path)-1 {
			t.Fatalf("route %d hops, BFS %d", len(path)-1, dist[index[string(dst)]])
		}
	}
}

func TestDeBruijnRouting(t *testing.T) {
	for _, tc := range []struct{ base, dim int }{{2, 4}, {2, 7}, {3, 3}, {4, 3}} {
		spec := networks.DeBruijn{Base: tc.base, Dim: tc.dim}
		g, err := spec.BuildDirected()
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(tc.dim)))
		for trial := 0; trial < 200; trial++ {
			src := int32(rng.Intn(g.N()))
			dst := int32(rng.Intn(g.N()))
			p := DeBruijn(tc.base, tc.dim, src, dst)
			if p.Hops() > tc.dim {
				t.Fatalf("de Bruijn route too long: %d > %d", p.Hops(), tc.dim)
			}
			if p[0] != src || p[len(p)-1] != dst {
				t.Fatalf("endpoints wrong")
			}
			for i := 0; i+1 < len(p); i++ {
				if p[i] == p[i+1] {
					continue // self-loop at 00..0 / 11..1, stays put
				}
				if !g.HasEdge(p[i], p[i+1]) {
					t.Fatalf("step %d not an arc: %d -> %d", i, p[i], p[i+1])
				}
			}
		}
		// Identical src and dst: zero hops.
		if DeBruijn(tc.base, tc.dim, 5%int32(g.N()), 5%int32(g.N())).Hops() != 0 {
			t.Fatal("self route must be empty")
		}
	}
}

func TestBFSNextHops(t *testing.T) {
	for _, spec := range []networks.Spec{
		networks.CCC{Dim: 4},
		networks.ShuffleExchange{Dim: 5},
		networks.Petersen{},
	} {
		g, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(11))
		for trial := 0; trial < 50; trial++ {
			dst := int32(rng.Intn(g.N()))
			table := BFSNextHops(g, dst)
			src := int32(rng.Intn(g.N()))
			p, err := table.Follow(src, dst)
			if err != nil {
				t.Fatalf("%s: %v", spec.Name(), err)
			}
			if err := p.Validate(g, src, dst); err != nil {
				t.Fatalf("%s: %v", spec.Name(), err)
			}
			dist := g.BFS(src)
			if int(dist[dst]) != p.Hops() {
				t.Fatalf("%s: table route %d hops, BFS %d", spec.Name(), p.Hops(), dist[dst])
			}
		}
	}
}

func TestBFSNextHopsDirected(t *testing.T) {
	spec := networks.DeBruijn{Base: 2, Dim: 5}
	g, err := spec.BuildDirected()
	if err != nil {
		t.Fatal(err)
	}
	table := BFSNextHops(g, 7)
	p, err := table.Follow(19, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(g, 19, 7); err != nil {
		t.Fatal(err)
	}
	dist := g.BFS(19)
	if int(dist[7]) != p.Hops() {
		t.Fatalf("directed table route %d hops, BFS %d", p.Hops(), dist[7])
	}
}

func TestPathValidateErrors(t *testing.T) {
	g, _ := networks.Ring{Nodes: 5}.Build()
	if err := (Path{0, 2}).Validate(g, 0, 2); err == nil {
		t.Fatal("non-edge path must fail")
	}
	if err := (Path{0, 1}).Validate(g, 1, 0); err == nil {
		t.Fatal("wrong endpoints must fail")
	}
	if err := (Path{}).Validate(g, 0, 0); err == nil {
		t.Fatal("empty path must fail")
	}
}

// allPerms enumerates permutations of 0..n-1 in the same deterministic order
// as networks.Star.
func allPerms(n int) [][]byte {
	var out [][]byte
	cur := make([]byte, 0, n)
	used := make([]bool, n)
	var rec func()
	rec = func() {
		if len(cur) == n {
			out = append(out, append([]byte(nil), cur...))
			return
		}
		for v := 0; v < n; v++ {
			if !used[v] {
				used[v] = true
				cur = append(cur, byte(v))
				rec()
				cur = cur[:len(cur)-1]
				used[v] = false
			}
		}
	}
	rec()
	return out
}

func TestBFSAllNextHops(t *testing.T) {
	g, err := networks.KAryNCube{K: 4, Dims: 2}.Build()
	if err != nil {
		t.Fatal(err)
	}
	for dst := int32(0); dst < int32(g.N()); dst += 5 {
		all := BFSAllNextHops(g, dst)
		dist := g.BFS(dst) // undirected: dist to dst
		for u := 0; u < g.N(); u++ {
			if int32(u) == dst {
				if len(all[u]) != 0 {
					t.Fatalf("destination has next hops")
				}
				continue
			}
			if len(all[u]) == 0 {
				t.Fatalf("node %d has no minimal next hops", u)
			}
			for _, v := range all[u] {
				if dist[v] != dist[u]-1 {
					t.Fatalf("next hop %d from %d is not minimal", v, u)
				}
			}
			// Interior torus nodes with both coordinates unaligned have 2
			// minimal directions; verify multiplicity exists somewhere.
		}
		// Some node must have more than one minimal next hop on a torus.
		multi := false
		for u := range all {
			if len(all[u]) > 1 {
				multi = true
			}
		}
		if !multi {
			t.Fatal("torus should offer multiple minimal next hops")
		}
	}
}

func TestBFSAllNextHopsDirected(t *testing.T) {
	g, err := networks.DeBruijn{Base: 2, Dim: 4}.BuildDirected()
	if err != nil {
		t.Fatal(err)
	}
	all := BFSAllNextHops(g, 9)
	dist := reverseOf(g).BFS(9)
	for u := 0; u < g.N(); u++ {
		for _, v := range all[u] {
			if !g.HasEdge(int32(u), v) {
				t.Fatalf("next hop %d from %d is not an arc", v, u)
			}
			if dist[v] != dist[u]-1 {
				t.Fatalf("directed next hop %d from %d not minimal", v, u)
			}
		}
	}
}

func TestFoldedHypercubeRouting(t *testing.T) {
	for _, dim := range []int{3, 4, 5, 7} {
		g, err := networks.FoldedHypercube{Dim: dim}.Build()
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(dim)))
		for trial := 0; trial < 300; trial++ {
			src := int32(rng.Intn(g.N()))
			dst := int32(rng.Intn(g.N()))
			p := FoldedHypercube(dim, src, dst)
			if err := p.Validate(g, src, dst); err != nil {
				t.Fatalf("FQ%d: %v", dim, err)
			}
			dist := g.BFS(src)
			if int(dist[dst]) != p.Hops() {
				t.Fatalf("FQ%d: route %d hops, BFS %d (pair %d->%d)",
					dim, p.Hops(), dist[dst], src, dst)
			}
		}
	}
}

func TestBFSNextHopsAvoiding(t *testing.T) {
	g, err := networks.Hypercube{Dim: 4}.Build()
	if err != nil {
		t.Fatal(err)
	}
	// No predicates: must agree hop-count-wise with the plain tables.
	plain := BFSNextHops(g, 0)
	avoid := BFSNextHopsAvoiding(g, 0, nil, nil)
	for u := int32(0); u < int32(g.N()); u++ {
		if (plain[u] < 0) != (avoid[u] < 0) {
			t.Fatalf("node %d: reachability differs (%d vs %d)", u, plain[u], avoid[u])
		}
	}
	// Kill node 1 (a neighbor of 0): routes must avoid it yet all other
	// nodes stay routed (Q4 minus a node is connected).
	deadNode := func(v int32) bool { return v == 1 }
	avoid = BFSNextHopsAvoiding(g, 0, deadNode, nil)
	dist := g.BFS(0)
	for u := int32(0); u < int32(g.N()); u++ {
		if u == 0 {
			if avoid[u] != -1 {
				t.Fatalf("destination has a next hop %d", avoid[u])
			}
			continue
		}
		if u == 1 {
			continue
		}
		nh := avoid[u]
		if nh < 0 {
			t.Fatalf("node %d lost its route after one node fault", u)
		}
		if nh == 1 {
			t.Fatalf("node %d routes through the dead node", u)
		}
		if !g.HasEdge(u, nh) {
			t.Fatalf("next hop %d from %d is not an edge", nh, u)
		}
	}
	// The detour around the dead node lengthens some route by at most 2
	// in a hypercube: follow every table path and validate it.
	for u := int32(2); u < int32(g.N()); u++ {
		p, err := avoid.Follow(u, 0)
		if err != nil {
			t.Fatalf("follow from %d: %v", u, err)
		}
		if p.Hops() > int(dist[u])+2 {
			t.Fatalf("avoiding route from %d has %d hops, fault-free %d", u, p.Hops(), dist[u])
		}
	}
	// Dead destination: nothing is routed.
	avoid = BFSNextHopsAvoiding(g, 0, func(v int32) bool { return v == 0 }, nil)
	for u := range avoid {
		if avoid[u] != -1 {
			t.Fatalf("dead destination still routed from %d", u)
		}
	}
}

func TestBFSNextHopsAvoidingDeadLink(t *testing.T) {
	// Ring: killing link 0-1 forces node 1 the long way around.
	g, err := networks.Ring{Nodes: 8}.Build()
	if err != nil {
		t.Fatal(err)
	}
	deadLink := func(u, v int32) bool {
		return (u == 0 && v == 1) || (u == 1 && v == 0)
	}
	tbl := BFSNextHopsAvoiding(g, 0, nil, deadLink)
	if tbl[1] != 2 {
		t.Fatalf("node 1 should detour via 2, got %d", tbl[1])
	}
	p, err := tbl.Follow(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Hops() != 7 {
		t.Fatalf("detour around the dead link should take 7 hops, got %d", p.Hops())
	}
	// Cutting both ring links of node 1 isolates it: no route, everyone
	// else unaffected.
	deadLink2 := func(u, v int32) bool {
		return u == 1 || v == 1
	}
	tbl = BFSNextHopsAvoiding(g, 0, nil, deadLink2)
	if tbl[1] != -1 {
		t.Fatalf("isolated node still routed via %d", tbl[1])
	}
	if tbl[4] < 0 {
		t.Fatal("unaffected node lost its route")
	}
}

func TestBFSAllNextHopsAvoiding(t *testing.T) {
	g, err := networks.Hypercube{Dim: 4}.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Fault-free: must equal BFSAllNextHops.
	plain := BFSAllNextHops(g, 5)
	avoid := BFSAllNextHopsAvoiding(g, 5, nil, nil)
	for u := 0; u < g.N(); u++ {
		if len(plain[u]) != len(avoid[u]) {
			t.Fatalf("node %d: %d vs %d minimal hops", u, len(plain[u]), len(avoid[u]))
		}
	}
	// Killing one neighbor of the destination trims it from every option
	// list but leaves every survivor with at least one minimal hop.
	dead := g.Neighbors(5)[0]
	deadNode := func(v int32) bool { return v == dead }
	avoid = BFSAllNextHopsAvoiding(g, 5, deadNode, nil)
	for u := 0; u < g.N(); u++ {
		if int32(u) == 5 || int32(u) == dead {
			continue
		}
		if len(avoid[u]) == 0 {
			t.Fatalf("node %d has no live minimal hop after one fault", u)
		}
		for _, v := range avoid[u] {
			if v == dead {
				t.Fatalf("node %d still lists the dead node", u)
			}
		}
	}
}

func TestBFSNextHopsAvoidingDirected(t *testing.T) {
	// Directed de Bruijn: the avoiding table must respect arc directions
	// and the dead-arc predicate on forward arcs.
	g, err := networks.DeBruijn{Base: 2, Dim: 4}.BuildDirected()
	if err != nil {
		t.Fatal(err)
	}
	tbl := BFSNextHopsAvoiding(g, 3, nil, nil)
	for u := int32(0); u < int32(g.N()); u++ {
		if u == 3 || tbl[u] < 0 {
			continue
		}
		if !g.HasEdge(u, tbl[u]) {
			t.Fatalf("next hop %d from %d is not a forward arc", tbl[u], u)
		}
		if _, err := tbl.Follow(u, 3); err != nil {
			t.Fatalf("follow from %d: %v", u, err)
		}
	}
}
