package symbols

import (
	"bytes"
	"testing"
)

// FuzzLabelKey checks the label-identity invariants the interning machinery
// in internal/core relies on: Key is injective on label bytes (it IS the
// bytes), Clone preserves identity without aliasing, and MultisetKey is
// invariant under any reordering — in particular the rotations that
// cyclic-shift super-generators perform.
func FuzzLabelKey(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Add([]byte{1, 2, 1, 2, 1, 2})       // repeated seed, HSN(3;"12")
	f.Add([]byte{1, 2, 3, 4, 5, 6})       // distinct seed, sym-HSN(3;m=2)
	f.Add([]byte{0, 0, 0, 255, 255, 255}) // extreme symbol values
	f.Add([]byte{7, 7, 7, 7})

	f.Fuzz(func(t *testing.T, b []byte) {
		x := Label(b)

		// Key round-trips: the key is exactly the label bytes.
		if got := Label(x.Key()); !x.Equal(got) {
			t.Fatalf("Key round-trip: %v -> %q -> %v", x, x.Key(), got)
		}

		// Clone is equal but does not alias.
		c := x.Clone()
		if !x.Equal(c) || x.Key() != c.Key() {
			t.Fatalf("Clone not equal: %v vs %v", x, c)
		}
		if len(c) > 0 {
			c[0] ^= 0xff
			if x.Equal(c) {
				t.Fatalf("Clone aliases the original: %v", x)
			}
			c[0] ^= 0xff
		}

		// Equal agrees with bytes.Equal.
		if x.Equal(c) != bytes.Equal(x, c) {
			t.Fatalf("Equal disagrees with bytes.Equal on %v", x)
		}

		// MultisetKey is invariant under rotation (an index permutation).
		if len(x) > 1 {
			rot := append(x[1:].Clone(), x[0])
			if x.MultisetKey() != rot.MultisetKey() {
				t.Fatalf("MultisetKey not rotation-invariant: %v vs %v", x, rot)
			}
			// ...and under reversal.
			rev := x.Clone()
			for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
				rev[i], rev[j] = rev[j], rev[i]
			}
			if x.MultisetKey() != rev.MultisetKey() {
				t.Fatalf("MultisetKey not reversal-invariant: %v vs %v", x, rev)
			}
		}

		// HasDistinctSymbols must match a direct count.
		var seen [256]int
		distinct := true
		for _, v := range x {
			seen[v]++
			if seen[v] > 1 {
				distinct = false
			}
		}
		if x.HasDistinctSymbols() != distinct {
			t.Fatalf("HasDistinctSymbols(%v) = %v, want %v", x, x.HasDistinctSymbols(), distinct)
		}

		// IsRepetition(l=2) must agree with a direct comparison of halves.
		if len(x) > 0 && len(x)%2 == 0 {
			m := len(x) / 2
			want := bytes.Equal(x[:m], x[m:])
			if x.IsRepetition(2, m) != want {
				t.Fatalf("IsRepetition(2,%d) on %v = %v, want %v", m, x, x.IsRepetition(2, m), want)
			}
		}

		// Grouped/String must not panic for any group size.
		for _, gs := range []int{0, 1, 2, 3, len(x)} {
			_ = x.Grouped(gs)
		}
	})
}

// FuzzRankRadix checks that radix ranking round-trips through FromDigits for
// every label whose symbols fit the radix (the Fig. 1 node-numbering path).
func FuzzRankRadix(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3}, 4)
	f.Add([]byte{1, 0, 1, 0}, 2)
	f.Add([]byte{}, 2)
	f.Add([]byte{3, 3, 3}, 10)

	f.Fuzz(func(t *testing.T, b []byte, radix int) {
		if radix < 2 || radix > 16 || len(b) > 7 {
			t.Skip() // keep rank within int and the test fast
		}
		x := Label(b)
		r, err := x.RankRadix(radix)
		inRange := true
		for _, v := range x {
			if int(v) >= radix {
				inRange = false
			}
		}
		if inRange != (err == nil) {
			t.Fatalf("RankRadix(%v, %d): err = %v, symbols in range = %v", x, radix, err, inRange)
		}
		if err != nil {
			return
		}
		back := FromDigits(r, radix, len(x))
		if !x.Equal(back) {
			t.Fatalf("FromDigits(RankRadix(%v)) = %v", x, back)
		}
	})
}
