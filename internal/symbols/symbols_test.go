package symbols

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/perm"
)

func TestRepeatedSeed(t *testing.T) {
	s := RepeatedSeed(3, Label{1, 2})
	if s.Key() != string([]byte{1, 2, 1, 2, 1, 2}) {
		t.Fatalf("RepeatedSeed = %v", s)
	}
	if !s.IsRepetition(3, 2) {
		t.Fatal("RepeatedSeed must be a repetition")
	}
	if s.IsRepetition(2, 3) {
		t.Fatal("121 212 is not a repetition of two groups of three")
	}
	if s.HasDistinctSymbols() {
		t.Fatal("repeated seed cannot have distinct symbols")
	}
}

func TestDistinctSeed(t *testing.T) {
	s := DistinctSeed(3, 4)
	if len(s) != 12 {
		t.Fatalf("len = %d", len(s))
	}
	if !s.HasDistinctSymbols() {
		t.Fatal("DistinctSeed must have distinct symbols")
	}
	// S_i = (i-1)m+1 ... im per the paper.
	if s[0] != 1 || s[3] != 4 || s[4] != 5 || s[11] != 12 {
		t.Fatalf("DistinctSeed content = %v", s)
	}
}

func TestGroupAccess(t *testing.T) {
	s := Label{1, 2, 3, 4, 5, 6}
	g := s.Group(1, 2)
	if g[0] != 3 || g[1] != 4 {
		t.Fatalf("Group(1,2) = %v", g)
	}
	s.SetGroup(2, 2, Label{9, 9})
	if s[4] != 9 || s[5] != 9 {
		t.Fatalf("SetGroup failed: %v", s)
	}
}

func TestMultisetInvariantUnderPermutation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 1 + r.Intn(12)
		x := make(Label, k)
		for i := range x {
			x[i] = byte(r.Intn(4))
		}
		p := perm.Identity(k)
		r.Shuffle(k, func(i, j int) { p[i], p[j] = p[j], p[i] })
		y := Label(p.Permuted(x))
		return x.MultisetKey() == y.MultisetKey()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRankRadixRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		radix := 2 + r.Intn(6)
		k := 1 + r.Intn(8)
		x := make(Label, k)
		for i := range x {
			x[i] = byte(r.Intn(radix))
		}
		rank, err := x.RankRadix(radix)
		if err != nil {
			return false
		}
		return FromDigits(rank, radix, k).Equal(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRankRadixRange(t *testing.T) {
	if _, err := (Label{4, 0}).RankRadix(4); err == nil {
		t.Fatal("expected out-of-radix error")
	}
	r, err := (Label{1, 2, 3}).RankRadix(4)
	if err != nil || r != 1*16+2*4+3 {
		t.Fatalf("rank = %d, %v", r, err)
	}
}

func TestGrouped(t *testing.T) {
	s := Label{1, 2, 2, 1}
	if got := s.Grouped(2); got != "12 21" {
		t.Fatalf("Grouped(2) = %q", got)
	}
	if got := s.Grouped(0); got != "1221" {
		t.Fatalf("Grouped(0) = %q", got)
	}
	big := Label{11}
	if got := big.String(); got != "[11]" {
		t.Fatalf("big symbol = %q", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	x := Label{1, 2, 3}
	y := x.Clone()
	y[0] = 9
	if x[0] != 1 {
		t.Fatal("Clone aliases original")
	}
	if !x.Equal(Label{1, 2, 3}) || x.Equal(y) || x.Equal(Label{1, 2}) {
		t.Fatal("Equal misbehaves")
	}
}

func TestConstantAndIotaSeed(t *testing.T) {
	c := ConstantSeed(4, 7)
	for _, v := range c {
		if v != 7 {
			t.Fatalf("ConstantSeed = %v", c)
		}
	}
	i := IotaSeed(5)
	if !i.Equal(Label{1, 2, 3, 4, 5}) {
		t.Fatalf("IotaSeed = %v", i)
	}
}
