// Package symbols implements the multiset node labels of the IP graph model.
//
// A node of an IP graph is identified by a Label: a fixed-length sequence of
// symbols in which — unlike the Cayley graph model — repeated symbols are
// allowed. The package provides the two seed shapes used throughout the
// paper: repeated seeds (l identical super-symbols of m symbols, used by
// plain super-IP graphs) and distinct seeds (all l*m symbols distinct, used
// by symmetric super-IP graphs), plus radix ranking utilities used to number
// nodes as in the paper's Fig. 1.
package symbols

import (
	"fmt"
	"strings"
)

// Label is a node label of an IP graph: a sequence of (possibly repeated)
// symbols. Symbols are small non-negative integers stored as bytes.
type Label []byte

// Clone returns a copy of the label.
func (x Label) Clone() Label {
	y := make(Label, len(x))
	copy(y, x)
	return y
}

// Key returns a map key uniquely identifying the label.
func (x Label) Key() string { return string(x) }

// Equal reports whether two labels are identical.
func (x Label) Equal(y Label) bool {
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if x[i] != y[i] {
			return false
		}
	}
	return true
}

// String renders the label with super-symbol grouping when groupSize divides
// the length, e.g. "12 21 11". Symbols >= 10 are rendered in brackets.
func (x Label) String() string { return x.Grouped(0) }

// Grouped renders the label, inserting a space every groupSize symbols
// (groupSize <= 0 means no grouping).
func (x Label) Grouped(groupSize int) string {
	var b strings.Builder
	for i, v := range x {
		if groupSize > 0 && i > 0 && i%groupSize == 0 {
			b.WriteByte(' ')
		}
		if v < 10 {
			b.WriteByte('0' + v)
		} else {
			fmt.Fprintf(&b, "[%d]", v)
		}
	}
	return b.String()
}

// Group returns the i-th group (0-based) of m consecutive symbols, as a
// sub-slice of x (not a copy).
func (x Label) Group(i, m int) Label {
	return x[i*m : (i+1)*m]
}

// SetGroup overwrites the i-th group of m symbols with g.
func (x Label) SetGroup(i, m int, g Label) {
	copy(x[i*m:(i+1)*m], g)
}

// RepeatedSeed returns the seed label S1 S1 ... S1 (l copies) used by plain
// super-IP graphs, where S1 = base. For example RepeatedSeed(3, {1,2})
// yields 12 12 12, the seed of an HSN(3;G) whose nucleus seed is "12".
func RepeatedSeed(l int, base Label) Label {
	x := make(Label, 0, l*len(base))
	for i := 0; i < l; i++ {
		x = append(x, base...)
	}
	return x
}

// DistinctSeed returns the seed S1 S2 ... Sl with
// S_i = (i-1)m+1, (i-1)m+2, ..., im, used by symmetric super-IP graphs.
// All l*m symbols are distinct, so the resulting IP graph is a Cayley graph.
func DistinctSeed(l, m int) Label {
	x := make(Label, l*m)
	for i := range x {
		x[i] = byte(i + 1)
	}
	return x
}

// IotaSeed returns the label 1, 2, ..., k — the natural Cayley-graph seed.
func IotaSeed(k int) Label { return DistinctSeed(k, 1) }

// ConstantSeed returns the label consisting of k copies of symbol v.
func ConstantSeed(k int, v byte) Label {
	x := make(Label, k)
	for i := range x {
		x[i] = v
	}
	return x
}

// IsRepetition reports whether x consists of l identical groups of m symbols.
func (x Label) IsRepetition(l, m int) bool {
	if len(x) != l*m {
		return false
	}
	for i := 1; i < l; i++ {
		for t := 0; t < m; t++ {
			if x[i*m+t] != x[t] {
				return false
			}
		}
	}
	return true
}

// HasDistinctSymbols reports whether all symbols in x are distinct (the
// Cayley graph condition).
func (x Label) HasDistinctSymbols() bool {
	var seen [256]bool
	for _, v := range x {
		if seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// MultisetKey returns a canonical key of the multiset of symbols in x.
// Two labels reachable from one another by index permutations always have
// equal multiset keys.
func (x Label) MultisetKey() string {
	var count [256]int
	for _, v := range x {
		count[v]++
	}
	var b strings.Builder
	for v, c := range count {
		if c > 0 {
			fmt.Fprintf(&b, "%d:%d;", v, c)
		}
	}
	return b.String()
}

// RankRadix interprets the label as a number in the given radix with the
// leftmost symbol most significant, as used for the radix-4 node ranking in
// the paper's Fig. 1. Symbols must be < radix.
func (x Label) RankRadix(radix int) (int, error) {
	r := 0
	for _, v := range x {
		if int(v) >= radix {
			return 0, fmt.Errorf("symbols: symbol %d out of radix %d", v, radix)
		}
		r = r*radix + int(v)
	}
	return r, nil
}

// FromDigits builds a label from the radix digits of rank, most significant
// first, padded to length k.
func FromDigits(rank, radix, k int) Label {
	x := make(Label, k)
	for i := k - 1; i >= 0; i-- {
		x[i] = byte(rank % radix)
		rank /= radix
	}
	return x
}
