// Fault scheduling for the packet simulator: a FaultPlan is a deterministic
// list of link/node failure (and repair) events applied to the topology at
// specific cycles while a simulation runs. Plans are either hand-built
// (LinkDown/NodeDown) or generated from an MTBF-style random process
// (RandomFaults.Plan) with a fixed seed, so every degraded-mode run is
// reproducible.
package netsim

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// FaultKind distinguishes link faults from node faults.
type FaultKind uint8

const (
	// LinkFault disables one link; on undirected graphs both directions die.
	LinkFault FaultKind = iota
	// NodeFault disables a node: it stops injecting, forwarding, and
	// receiving, and every packet queued at it is dropped.
	NodeFault
)

func (k FaultKind) String() string {
	if k == NodeFault {
		return "node"
	}
	return "link"
}

// FaultEvent is one scheduled failure. A Repair cycle > Cycle makes the
// fault transient (the component heals at Repair); Repair <= Cycle means the
// fault is permanent.
type FaultEvent struct {
	Cycle  int
	Kind   FaultKind
	U, V   int32 // link endpoints; V ignored for node faults
	Repair int
}

// Transient reports whether the event heals.
func (e FaultEvent) Transient() bool { return e.Repair > e.Cycle }

// FaultPlan is an ordered schedule of failures injected during a run.
type FaultPlan struct {
	Events []FaultEvent
}

// LinkDown schedules link (u,v) to fail at cycle, healing at repair
// (repair <= cycle means permanent). Returns the plan for chaining.
func (p *FaultPlan) LinkDown(cycle int, u, v int32, repair int) *FaultPlan {
	p.Events = append(p.Events, FaultEvent{Cycle: cycle, Kind: LinkFault, U: u, V: v, Repair: repair})
	return p
}

// NodeDown schedules node u to fail at cycle, healing at repair
// (repair <= cycle means permanent). Returns the plan for chaining.
func (p *FaultPlan) NodeDown(cycle int, u int32, repair int) *FaultPlan {
	p.Events = append(p.Events, FaultEvent{Cycle: cycle, Kind: NodeFault, U: u, Repair: repair})
	return p
}

// Len returns the number of scheduled fault events.
func (p *FaultPlan) Len() int {
	if p == nil {
		return 0
	}
	return len(p.Events)
}

// Validate checks every event against a materialized graph. It is a thin
// wrapper over ValidateTopo, kept for callers that already hold the built
// graph.
func (p *FaultPlan) Validate(g *graph.Graph) error {
	return p.ValidateTopo(graphTopo{g})
}

// ValidateTopo checks every event against an id-space topology — endpoints
// in range, link events on actual edges (via the Neighbors oracle), and
// non-negative cycles — without ever materializing the graph, so fault plans
// for implicit multi-million-node instances are validated in O(events ·
// degree). Note FaultEvent ids are int32: on topologies with more than 2^31
// nodes a plan can only name the first 2^31 of them.
func (p *FaultPlan) ValidateTopo(t Topology) error {
	if p == nil {
		return nil
	}
	n := t.N()
	var buf []int64
	for i, e := range p.Events {
		if e.Cycle < 0 {
			return fmt.Errorf("netsim: fault %d at negative cycle %d", i, e.Cycle)
		}
		if e.U < 0 || int64(e.U) >= n {
			return fmt.Errorf("netsim: fault %d: node %d out of range", i, e.U)
		}
		if e.Kind == LinkFault {
			if e.V < 0 || int64(e.V) >= n {
				return fmt.Errorf("netsim: fault %d: node %d out of range", i, e.V)
			}
			buf = t.Neighbors(int64(e.U), buf)
			found := false
			for _, v := range buf {
				if v == int64(e.V) {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("netsim: fault %d: no link %d-%d in the topology", i, e.U, e.V)
			}
		}
	}
	return nil
}

// graphTopo adapts a materialized graph to the Topology interface for
// validation and plan generation (netsim deliberately does not import
// internal/topo, whose Materialized type plays the same role).
type graphTopo struct{ g *graph.Graph }

func (t graphTopo) N() int64       { return int64(t.g.N()) }
func (t graphTopo) MaxDegree() int { return t.g.MaxDegree() }
func (t graphTopo) Directed() bool { return t.g.Directed }
func (t graphTopo) Neighbors(u int64, buf []int64) []int64 {
	buf = buf[:0]
	for _, v := range t.g.Neighbors(int32(u)) {
		buf = append(buf, int64(v))
	}
	return buf
}

// sorted returns the events ordered by strike cycle (stable), leaving the
// plan itself untouched.
func (p *FaultPlan) sorted() []FaultEvent {
	if p == nil {
		return nil
	}
	evs := append([]FaultEvent(nil), p.Events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Cycle < evs[j].Cycle })
	return evs
}

// RandomFaults parameterizes an MTBF-style random fault process.
type RandomFaults struct {
	// MTBF is the mean number of cycles between fault arrivals network-wide
	// (geometric inter-arrival: each cycle strikes with probability 1/MTBF).
	MTBF float64
	// RepairTime is how many cycles a fault lasts before healing; 0 makes
	// every fault permanent.
	RepairTime int
	// NodeFraction is the probability that a fault kills a node instead of
	// a link (0 = link faults only).
	NodeFraction float64
	// Start and Horizon bound the strike window [Start, Horizon).
	Start, Horizon int
	// MaxFaults caps the number of generated events (0 = unlimited).
	MaxFaults int
	// Seed makes the plan deterministic.
	Seed int64
}

// Plan draws a deterministic fault schedule for g. The same graph, seed, and
// parameters always produce the same plan. Node 0 is never killed by a node
// fault (keeping at least one stable observer); links are drawn uniformly
// from the edge list, nodes uniformly from 1..N-1, and repeat strikes on a
// component already scheduled down at that cycle are simply re-drawn as
// independent events (the simulator handles overlap by reference counting).
func (r RandomFaults) Plan(g *graph.Graph) (*FaultPlan, error) {
	if r.MTBF <= 0 {
		return nil, fmt.Errorf("netsim: RandomFaults.MTBF must be positive, got %v", r.MTBF)
	}
	if r.NodeFraction < 0 || r.NodeFraction > 1 {
		return nil, fmt.Errorf("netsim: RandomFaults.NodeFraction %v out of [0,1]", r.NodeFraction)
	}
	if r.Horizon <= r.Start {
		return nil, fmt.Errorf("netsim: RandomFaults window [%d,%d) is empty", r.Start, r.Horizon)
	}
	rng := rand.New(rand.NewSource(r.Seed))
	edges := g.EdgeList()
	plan := &FaultPlan{}
	prob := 1 / r.MTBF
	for cycle := r.Start; cycle < r.Horizon; cycle++ {
		if r.MaxFaults > 0 && plan.Len() >= r.MaxFaults {
			break
		}
		if rng.Float64() >= prob {
			continue
		}
		repair := 0
		if r.RepairTime > 0 {
			repair = cycle + r.RepairTime
		}
		if rng.Float64() < r.NodeFraction && g.N() > 1 {
			plan.NodeDown(cycle, int32(1+rng.Intn(g.N()-1)), repair)
		} else if len(edges) > 0 {
			e := edges[rng.Intn(len(edges))]
			plan.LinkDown(cycle, e[0], e[1], repair)
		}
	}
	return plan, nil
}

// PlanTopo draws a deterministic fault schedule for an id-space topology —
// no edge list is ever built, so it works on implicit multi-million-node
// instances. Links are sampled node-first (a uniform node, then a uniform
// neighbor), which matches Plan's uniform-edge draw exactly on regular
// topologies; the RNG stream differs from Plan's, so the two generators
// produce different (but individually reproducible) schedules. Node 0 is
// never killed, as in Plan. Topologies with more than 2^31 nodes are
// rejected: FaultEvent ids are int32.
func (r RandomFaults) PlanTopo(t Topology) (*FaultPlan, error) {
	if r.MTBF <= 0 {
		return nil, fmt.Errorf("netsim: RandomFaults.MTBF must be positive, got %v", r.MTBF)
	}
	if r.NodeFraction < 0 || r.NodeFraction > 1 {
		return nil, fmt.Errorf("netsim: RandomFaults.NodeFraction %v out of [0,1]", r.NodeFraction)
	}
	if r.Horizon <= r.Start {
		return nil, fmt.Errorf("netsim: RandomFaults window [%d,%d) is empty", r.Start, r.Horizon)
	}
	n := t.N()
	if n > int64(1)<<31 {
		return nil, fmt.Errorf("netsim: topology has %d nodes; fault events address at most 2^31", n)
	}
	rng := rand.New(rand.NewSource(r.Seed))
	plan := &FaultPlan{}
	prob := 1 / r.MTBF
	var buf []int64
	for cycle := r.Start; cycle < r.Horizon; cycle++ {
		if r.MaxFaults > 0 && plan.Len() >= r.MaxFaults {
			break
		}
		if rng.Float64() >= prob {
			continue
		}
		repair := 0
		if r.RepairTime > 0 {
			repair = cycle + r.RepairTime
		}
		if rng.Float64() < r.NodeFraction && n > 1 {
			plan.NodeDown(cycle, int32(1+rng.Int63n(n-1)), repair)
			continue
		}
		// Sample a link: uniform node, then uniform neighbor. Isolated
		// nodes (impossible on the connected super-IP families) would make
		// this strike a no-op, which keeps the stream deterministic.
		u := rng.Int63n(n)
		buf = t.Neighbors(u, buf)
		if len(buf) == 0 {
			continue
		}
		plan.LinkDown(cycle, int32(u), int32(buf[rng.Intn(len(buf))]), repair)
	}
	return plan, nil
}
