// Fault scheduling for the packet simulator: a FaultPlan is a deterministic
// list of link/node failure (and repair) events applied to the topology at
// specific cycles while a simulation runs. Plans are either hand-built
// (LinkDown/NodeDown) or generated from an MTBF-style random process
// (RandomFaults.Plan) with a fixed seed, so every degraded-mode run is
// reproducible.
package netsim

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// FaultKind distinguishes link faults from node faults.
type FaultKind uint8

const (
	// LinkFault disables one link; on undirected graphs both directions die.
	LinkFault FaultKind = iota
	// NodeFault disables a node: it stops injecting, forwarding, and
	// receiving, and every packet queued at it is dropped.
	NodeFault
)

func (k FaultKind) String() string {
	if k == NodeFault {
		return "node"
	}
	return "link"
}

// FaultEvent is one scheduled failure. A Repair cycle > Cycle makes the
// fault transient (the component heals at Repair); Repair <= Cycle means the
// fault is permanent.
type FaultEvent struct {
	Cycle  int
	Kind   FaultKind
	U, V   int32 // link endpoints; V ignored for node faults
	Repair int
}

// Transient reports whether the event heals.
func (e FaultEvent) Transient() bool { return e.Repair > e.Cycle }

// FaultPlan is an ordered schedule of failures injected during a run.
type FaultPlan struct {
	Events []FaultEvent
}

// LinkDown schedules link (u,v) to fail at cycle, healing at repair
// (repair <= cycle means permanent). Returns the plan for chaining.
func (p *FaultPlan) LinkDown(cycle int, u, v int32, repair int) *FaultPlan {
	p.Events = append(p.Events, FaultEvent{Cycle: cycle, Kind: LinkFault, U: u, V: v, Repair: repair})
	return p
}

// NodeDown schedules node u to fail at cycle, healing at repair
// (repair <= cycle means permanent). Returns the plan for chaining.
func (p *FaultPlan) NodeDown(cycle int, u int32, repair int) *FaultPlan {
	p.Events = append(p.Events, FaultEvent{Cycle: cycle, Kind: NodeFault, U: u, Repair: repair})
	return p
}

// Len returns the number of scheduled fault events.
func (p *FaultPlan) Len() int {
	if p == nil {
		return 0
	}
	return len(p.Events)
}

// Validate checks every event against the topology: endpoints in range, link
// events on actual edges, and non-negative cycles.
func (p *FaultPlan) Validate(g *graph.Graph) error {
	if p == nil {
		return nil
	}
	for i, e := range p.Events {
		if e.Cycle < 0 {
			return fmt.Errorf("netsim: fault %d at negative cycle %d", i, e.Cycle)
		}
		if e.U < 0 || int(e.U) >= g.N() {
			return fmt.Errorf("netsim: fault %d: node %d out of range", i, e.U)
		}
		if e.Kind == LinkFault {
			if e.V < 0 || int(e.V) >= g.N() {
				return fmt.Errorf("netsim: fault %d: node %d out of range", i, e.V)
			}
			if !g.HasEdge(e.U, e.V) {
				return fmt.Errorf("netsim: fault %d: no link %d-%d in the topology", i, e.U, e.V)
			}
		}
	}
	return nil
}

// sorted returns the events ordered by strike cycle (stable), leaving the
// plan itself untouched.
func (p *FaultPlan) sorted() []FaultEvent {
	if p == nil {
		return nil
	}
	evs := append([]FaultEvent(nil), p.Events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Cycle < evs[j].Cycle })
	return evs
}

// RandomFaults parameterizes an MTBF-style random fault process.
type RandomFaults struct {
	// MTBF is the mean number of cycles between fault arrivals network-wide
	// (geometric inter-arrival: each cycle strikes with probability 1/MTBF).
	MTBF float64
	// RepairTime is how many cycles a fault lasts before healing; 0 makes
	// every fault permanent.
	RepairTime int
	// NodeFraction is the probability that a fault kills a node instead of
	// a link (0 = link faults only).
	NodeFraction float64
	// Start and Horizon bound the strike window [Start, Horizon).
	Start, Horizon int
	// MaxFaults caps the number of generated events (0 = unlimited).
	MaxFaults int
	// Seed makes the plan deterministic.
	Seed int64
}

// Plan draws a deterministic fault schedule for g. The same graph, seed, and
// parameters always produce the same plan. Node 0 is never killed by a node
// fault (keeping at least one stable observer); links are drawn uniformly
// from the edge list, nodes uniformly from 1..N-1, and repeat strikes on a
// component already scheduled down at that cycle are simply re-drawn as
// independent events (the simulator handles overlap by reference counting).
func (r RandomFaults) Plan(g *graph.Graph) (*FaultPlan, error) {
	if r.MTBF <= 0 {
		return nil, fmt.Errorf("netsim: RandomFaults.MTBF must be positive, got %v", r.MTBF)
	}
	if r.NodeFraction < 0 || r.NodeFraction > 1 {
		return nil, fmt.Errorf("netsim: RandomFaults.NodeFraction %v out of [0,1]", r.NodeFraction)
	}
	if r.Horizon <= r.Start {
		return nil, fmt.Errorf("netsim: RandomFaults window [%d,%d) is empty", r.Start, r.Horizon)
	}
	rng := rand.New(rand.NewSource(r.Seed))
	edges := g.EdgeList()
	plan := &FaultPlan{}
	prob := 1 / r.MTBF
	for cycle := r.Start; cycle < r.Horizon; cycle++ {
		if r.MaxFaults > 0 && plan.Len() >= r.MaxFaults {
			break
		}
		if rng.Float64() >= prob {
			continue
		}
		repair := 0
		if r.RepairTime > 0 {
			repair = cycle + r.RepairTime
		}
		if rng.Float64() < r.NodeFraction && g.N() > 1 {
			plan.NodeDown(cycle, int32(1+rng.Intn(g.N()-1)), repair)
		} else if len(edges) > 0 {
			e := edges[rng.Intn(len(edges))]
			plan.LinkDown(cycle, e[0], e[1], repair)
		}
	}
	return plan, nil
}
