package netsim

// Tests for observability on the implicit stack: the nil-probe fast path,
// a NopProbe, and a full collector set must produce bit-for-bit identical
// simulator statistics (probes observe, never steer); the router telemetry
// must surface through ImplicitStats and RouterObserver; and the
// module-aggregated collector must agree with the per-link one.

import (
	"io"
	"testing"

	"repro/internal/obs"
	"repro/internal/topo"
)

// implicitObsConfig builds the fixed implicit run the parity tests pin,
// with a fresh algebraic router per call so no suffix-cache state leaks
// between runs.
func implicitObsConfig(t *testing.T) (ImplicitConfig, *topo.Implicit) {
	t.Helper()
	net, imp, _, _ := faultTestNet(t)
	r, err := topo.NewAlgebraic(net.Super())
	if err != nil {
		t.Fatal(err)
	}
	return ImplicitConfig{Topo: imp, Router: r, InjectionRate: 0.02,
		WarmupCycles: 50, MeasureCycles: 500, Seed: 7}, imp
}

// stripQuantiles zeroes the fields only a latency-summary probe fills, so
// probed and unprobed runs compare with plain ==.
func stripQuantiles(st *Stats) {
	st.P50Latency, st.P95Latency, st.P99Latency = 0, 0, 0
}

// TestImplicitProbeGoldenParity is the zero-overhead-when-disabled
// contract, checked semantically: RunImplicit with a nil probe, a NopProbe,
// and the full collector stack must produce identical ImplicitStats —
// packet ids are assigned off the RNG path and every hook sits behind one
// nil check, so observation cannot perturb the run.
func TestImplicitProbeGoldenParity(t *testing.T) {
	base, _ := implicitObsConfig(t)
	want, err := RunImplicit(base)
	if err != nil {
		t.Fatal(err)
	}
	if want.Injected == 0 || want.Router.CacheMisses == 0 {
		t.Fatalf("baseline run too quiet to be a useful pin: %+v", want)
	}

	nop, _ := implicitObsConfig(t)
	nop.Probe = obs.NopProbe{}
	got, err := RunImplicit(nop)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("NopProbe diverged from nil probe:\nnil %+v\nnop %+v", want, got)
	}

	probed, imp := implicitObsConfig(t)
	hist := &obs.LatencyHist{}
	ts := obs.NewTimeSeries(imp.Module, 50)
	ms := obs.NewModuleSeries(imp.Module, 50)
	tr := &obs.Trace{SampleEvery: 4}
	probed.Probe = obs.Multi(hist, ts, ms, tr, &obs.Progress{Every: 200, W: io.Discard})
	full, err := RunImplicit(probed)
	if err != nil {
		t.Fatal(err)
	}
	if full.P50Latency <= 0 || full.P99Latency > float64(full.MaxLatency) {
		t.Fatalf("histogram did not surface quantiles: %+v", full)
	}
	stripQuantiles(&full.Stats)
	if full != want {
		t.Fatalf("collectors perturbed the run:\nnil    %+v\nprobed %+v", want, full)
	}
	if hist.Count() != int64(want.Delivered) {
		t.Fatalf("histogram saw %d deliveries, simulator %d", hist.Count(), want.Delivered)
	}
	if diff := hist.Mean() - want.AvgLatency; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("histogram mean %v != AvgLatency %v", hist.Mean(), want.AvgLatency)
	}
	if tr.Len() == 0 {
		t.Fatal("sampled tracer recorded nothing on the implicit run")
	}
}

// TestImplicitFaultyProbeGoldenParity is the degraded-mode counterpart:
// the full collector stack on RunImplicitFaulty must leave every field of
// ImplicitFaultStats untouched, including the fault and router counters.
func TestImplicitFaultyProbeGoldenParity(t *testing.T) {
	run := func(probe obs.Probe) ImplicitFaultStats {
		_, imp, fs, fa := faultTestNet(t)
		plan := faultyPlanFor(t, imp, 3)
		st, err := RunImplicitFaulty(ImplicitConfig{Topo: imp, Router: fa,
			InjectionRate: 0.05, WarmupCycles: 50, MeasureCycles: 400, Seed: 13,
			Probe: probe},
			ImplicitFaultConfig{Plan: plan, Faults: fs})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	want := run(nil)
	if want.FaultsInjected == 0 || want.RerouteEvents == 0 {
		t.Fatalf("baseline faulty run saw no faults: %+v", want)
	}
	if got := run(obs.NopProbe{}); got != want {
		t.Fatalf("NopProbe diverged on faulty run:\nnil %+v\nnop %+v", want, got)
	}
	hist := &obs.LatencyHist{}
	full := run(obs.Multi(hist, obs.NewTimeSeries(nil, 64), obs.NewModuleSeries(nil, 64), &obs.Trace{}))
	stripQuantiles(&full.Stats)
	if full != want {
		t.Fatalf("collectors perturbed the faulty run:\nnil    %+v\nprobed %+v", want, full)
	}
	if hist.Count() != int64(want.Delivered) {
		t.Fatalf("histogram saw %d deliveries, simulator %d", hist.Count(), want.Delivered)
	}
}

// routerRecorder captures the RouterStats forwarded through the
// RouterObserver hook.
type routerRecorder struct {
	obs.NopProbe
	got  obs.RouterStats
	seen bool
}

func (r *routerRecorder) ObserveRouter(rs obs.RouterStats) { r.got, r.seen = rs, true }

// TestImplicitRouterStatsSurfaced checks the router telemetry plumbing:
// ImplicitStats.Router carries the run's delta, the RouterObserver hook
// receives exactly the same snapshot (through Multi), and on a faulty run
// the router's reroute counters agree with the simulator's own accounting.
func TestImplicitRouterStatsSurfaced(t *testing.T) {
	cfg, _ := implicitObsConfig(t)
	rec := &routerRecorder{}
	cfg.Probe = obs.Multi(&obs.LatencyHist{}, rec)
	st, err := RunImplicit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Router.CacheMisses == 0 || st.Router.CacheHits == 0 {
		t.Fatalf("suffix-cache telemetry empty: %+v", st.Router)
	}
	// Every injected packet re-sources at least once, and carried hops
	// score hits; a fault-free run never trips the safety valve.
	if st.Router.CacheEvicted != 0 || st.Router.CacheClears != 0 ||
		st.Router.EpochPurges != 0 || st.Router.Reroutes != 0 {
		t.Fatalf("fault-free run shows fault-path telemetry: %+v", st.Router)
	}
	if !rec.seen {
		t.Fatal("RouterObserver hook never fired")
	}
	if rec.got != st.Router {
		t.Fatalf("ObserveRouter got %+v, stats carry %+v", rec.got, st.Router)
	}

	// Degraded mode: the RouterStats split must agree with the FaultStats
	// counters (both are deltas of the same underlying counters).
	_, imp, fs, fa := faultTestNet(t)
	plan := faultyPlanFor(t, imp, 5)
	fst, err := RunImplicitFaulty(ImplicitConfig{Topo: imp, Router: fa,
		InjectionRate: 0.05, WarmupCycles: 50, MeasureCycles: 400, Seed: 17},
		ImplicitFaultConfig{Plan: plan, Faults: fs})
	if err != nil {
		t.Fatal(err)
	}
	if fst.Router.Reroutes != uint64(fst.RerouteEvents) {
		t.Fatalf("Router.Reroutes %d != RerouteEvents %d", fst.Router.Reroutes, fst.RerouteEvents)
	}
	if fst.Router.DetourHops != uint64(fst.MisroutedHops) {
		t.Fatalf("Router.DetourHops %d != MisroutedHops %d", fst.Router.DetourHops, fst.MisroutedHops)
	}
	if fst.Router.ConjugateReroutes+fst.Router.LocalDetourReroutes != fst.Router.Reroutes {
		t.Fatalf("repair split does not partition the reroutes: %+v", fst.Router)
	}
	var depth uint64
	for _, c := range fst.Router.DetourDepth {
		depth += c
	}
	if depth != fst.Router.Reroutes {
		t.Fatalf("depth histogram accounts %d repairs, want %d: %+v",
			depth, fst.Router.Reroutes, fst.Router)
	}
	if fst.Router.EpochPurges == 0 {
		t.Fatalf("live fault plan should purge the cache at least once: %+v", fst.Router)
	}
}

// TestImplicitModuleSeriesMatchesTimeSeries runs both aggregation
// granularities side by side: total busy cycles must agree, and the
// module collector's inter-module busy total must equal the link
// collector's off-module busy total (same classification, different
// grouping). The module collector's state stays bounded by module count.
func TestImplicitModuleSeriesMatchesTimeSeries(t *testing.T) {
	cfg, imp := implicitObsConfig(t)
	cfg.OffModulePeriod = 4
	cfg.ModuleOf = imp.Module
	ts := obs.NewTimeSeries(imp.Module, 50)
	ms := obs.NewModuleSeries(imp.Module, 50)
	st, err := RunImplicit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2, _ := implicitObsConfig(t)
	cfg2.OffModulePeriod = 4
	cfg2.ModuleOf = imp.Module
	cfg2.Probe = obs.Multi(ts, ms)
	if _, err := RunImplicit(cfg2); err != nil {
		t.Fatal(err)
	}
	ts.Flush()
	ms.Flush()
	if st.Injected == 0 {
		t.Fatal("no traffic")
	}
	if ts.TotalBusy() != ms.TotalBusy() {
		t.Fatalf("TimeSeries busy %d != ModuleSeries busy %d", ts.TotalBusy(), ms.TotalBusy())
	}
	var offBusy int64
	for _, l := range ts.TopLinks(0) {
		if l.OffModule {
			offBusy += l.Busy
		}
	}
	var interBusy, intraBusy int64
	for _, m := range ms.TopModules(0) {
		interBusy += m.InterBusy
		intraBusy += m.IntraBusy
	}
	if interBusy != offBusy {
		t.Fatalf("inter-module busy %d != off-module link busy %d", interBusy, offBusy)
	}
	if intraBusy+interBusy != ms.TotalBusy() {
		t.Fatalf("class split %d + %d != total %d", intraBusy, interBusy, ms.TotalBusy())
	}
	if got, max := int64(ms.ActiveModules()), imp.Modules(); got > max {
		t.Fatalf("ModuleSeries tracks %d modules, topology has %d", got, max)
	}
	if ms.ActiveModules() == 0 || ts.ActiveLinks() == 0 {
		t.Fatal("collectors saw no activity")
	}
}
