package netsim

// Tests for the observability layer wired through Run and RunFaulty: the
// nil-probe fast path must reproduce the pre-instrumentation statistics bit
// for bit, probes must be pure observers (attaching them changes nothing),
// and the built-in collectors must agree with the simulator's own
// accounting (per-link utilization vs. hop counts, histogram mean vs.
// AvgLatency, trace lifecycles balancing).

import (
	"bytes"
	"encoding/json"
	"io"
	"strconv"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/networks"
	"repro/internal/obs"
	"repro/internal/superip"
)

// goldenHSNConfig is the fixed run the bit-for-bit regression tests pin.
func goldenHSNConfig(t *testing.T) Config {
	t.Helper()
	net := superip.HSN(2, superip.NucleusHypercube(3))
	g, ix, err := net.BuildWithIndex()
	if err != nil {
		t.Fatal(err)
	}
	p := metrics.NucleusPartition(ix, net.Nucleus.Nuc.M())
	return Config{Graph: g, Partition: &p, OffModulePeriod: 4,
		InjectionRate: 0.02, WarmupCycles: 200, MeasureCycles: 1500, Seed: 17}
}

// TestNilProbeGoldenParity pins Run and RunFaulty with a nil probe to the
// exact statistics the simulator produced before the observability layer
// existed (values captured from the pre-instrumentation build). Any drift —
// an extra RNG draw, a reordered event, a changed counter — fails here.
func TestNilProbeGoldenParity(t *testing.T) {
	st, err := Run(goldenHSNConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if st.Injected != 1901 || st.Delivered != 1901 || st.Expired != 0 ||
		st.AvgLatency != 7.077327722251447 || st.MaxLatency != 17 ||
		st.Throughput != 0.019802083333333335 {
		t.Fatalf("Run diverged from pre-instrumentation golden stats: %+v", st)
	}

	tg, err := networks.Torus2D{Rows: 8, Cols: 8}.Build()
	if err != nil {
		t.Fatal(err)
	}
	st2, err := Run(Config{Graph: tg, InjectionRate: 0.05, WarmupCycles: 100,
		MeasureCycles: 1200, Seed: 29, Flits: 4, CutThrough: true, Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Injected != 3839 || st2.Delivered != 3839 ||
		st2.AvgLatency != 5.5595207085178435 || st2.MaxLatency != 24 ||
		st2.Throughput != 0.04998697916666667 {
		t.Fatalf("adaptive cut-through Run diverged from golden stats: %+v", st2)
	}

	qg, err := networks.Hypercube{Dim: 5}.Build()
	if err != nil {
		t.Fatal(err)
	}
	plan := (&FaultPlan{}).LinkDown(200, 0, 1, 800).LinkDown(350, 2, 18, 0).NodeDown(500, 7, 1100)
	fs, err := RunFaulty(Config{Graph: qg, InjectionRate: 0.05, WarmupCycles: 100,
		MeasureCycles: 1500, Seed: 31}, FaultConfig{Plan: plan, NotifyDelay: 16})
	if err != nil {
		t.Fatal(err)
	}
	if fs.Injected != 2412 || fs.Delivered != 2412 || fs.Expired != 0 ||
		fs.AvgLatency != 2.6318407960199006 || fs.MaxLatency != 18 ||
		fs.Throughput != 0.05025 || fs.Lost != 0 || fs.Retransmitted != 0 ||
		fs.Duplicates != 0 || fs.MisroutedHops != 25 || fs.RerouteEvents != 158 ||
		fs.MeanTimeToReroute != 37.0253164556962 ||
		fs.FaultsInjected != 3 || fs.FaultsRepaired != 2 {
		t.Fatalf("RunFaulty diverged from pre-instrumentation golden stats: %+v", fs)
	}
}

// TestProbeDoesNotPerturbRun attaches the full collector stack and checks
// that every statistic the simulator computes itself is identical to the
// nil-probe run — probes watch, they never steer.
func TestProbeDoesNotPerturbRun(t *testing.T) {
	cfg := goldenHSNConfig(t)
	base, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hist := &obs.LatencyHist{}
	part := cfg.Partition
	ts := obs.NewTimeSeries(func(u int64) int64 { return int64(part.Of[u]) }, 50)
	trace := &obs.Trace{SampleEvery: 4}
	cfg.Probe = obs.Multi(hist, ts, trace, &obs.Progress{Every: 500, W: io.Discard})
	probed, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if probed.Injected != base.Injected || probed.Delivered != base.Delivered ||
		probed.Expired != base.Expired || probed.AvgLatency != base.AvgLatency ||
		probed.MaxLatency != base.MaxLatency || probed.Throughput != base.Throughput {
		t.Fatalf("probes perturbed the run:\nnil   %+v\nprobe %+v", base, probed)
	}
	// The histogram is the exact measured-latency population: its mean and
	// count must agree with the simulator's own accounting, and the
	// surfaced quantiles must be ordered and bounded by the max.
	if hist.Count() != int64(base.Delivered) {
		t.Fatalf("histogram saw %d deliveries, simulator %d", hist.Count(), base.Delivered)
	}
	if diff := hist.Mean() - base.AvgLatency; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("histogram mean %v != AvgLatency %v", hist.Mean(), base.AvgLatency)
	}
	if hist.Max() != base.MaxLatency {
		t.Fatalf("histogram max %d != MaxLatency %d", hist.Max(), base.MaxLatency)
	}
	if probed.P50Latency <= 0 || probed.P50Latency > probed.P95Latency ||
		probed.P95Latency > probed.P99Latency ||
		probed.P99Latency > float64(probed.MaxLatency) {
		t.Fatalf("quantiles not surfaced or out of order: p50=%v p95=%v p99=%v max=%d",
			probed.P50Latency, probed.P95Latency, probed.P99Latency, probed.MaxLatency)
	}
	if trace.Len() == 0 {
		t.Fatal("sampled tracer recorded nothing")
	}
}

// TestProbeDoesNotPerturbRunFaulty is the degraded-mode counterpart: the
// full collector stack on a faulty run must leave every FaultStats field
// untouched.
func TestProbeDoesNotPerturbRunFaulty(t *testing.T) {
	g := mustBuild(t, networks.Hypercube{Dim: 5}.Build)
	plan := (&FaultPlan{}).LinkDown(200, 0, 1, 800).LinkDown(350, 2, 18, 0).NodeDown(500, 7, 1100)
	cfg := Config{Graph: g, InjectionRate: 0.05, WarmupCycles: 100,
		MeasureCycles: 1500, Seed: 31}
	fc := FaultConfig{Plan: plan, NotifyDelay: 16}
	base, err := RunFaulty(cfg, fc)
	if err != nil {
		t.Fatal(err)
	}
	hist := &obs.LatencyHist{}
	trace := &obs.Trace{}
	cfg.Probe = obs.Multi(hist, obs.NewTimeSeries(nil, 100), trace)
	probed, err := RunFaulty(cfg, fc)
	if err != nil {
		t.Fatal(err)
	}
	probed.P50Latency, probed.P95Latency, probed.P99Latency = 0, 0, 0
	if probed != base {
		t.Fatalf("probes perturbed the faulty run:\nnil   %+v\nprobe %+v", base, probed)
	}
	if hist.Count() != int64(base.Delivered) {
		t.Fatalf("histogram saw %d deliveries, simulator %d", hist.Count(), base.Delivered)
	}
}

// TestTimeSeriesUtilizationMatchesHopCounts checks the acceptance
// invariant: on a deterministic period-1 single-flit run that drains
// completely, the summed per-link busy cycles (total and per exported CSV
// window) equal the total hops taken, which for minimal deterministic
// routing is the sum of shortest-path distances of the injected packets.
func TestTimeSeriesUtilizationMatchesHopCounts(t *testing.T) {
	g := mustBuild(t, networks.Torus2D{Rows: 4, Cols: 4}.Build)
	ts := obs.NewTimeSeries(nil, 64)
	rec := &injectRecorder{}
	st, err := Run(Config{Graph: g, InjectionRate: 0.05, WarmupCycles: 0,
		MeasureCycles: 400, Seed: 9, Probe: obs.Multi(ts, rec)})
	if err != nil {
		t.Fatal(err)
	}
	if st.Expired != 0 || st.Delivered != st.Injected {
		t.Fatalf("run did not drain: %+v", st)
	}
	// Expected occupancy: every packet (warmup 0 means all are measured and
	// recorded) takes exactly dist(src,dst) hops of one busy cycle each.
	var want int64
	for _, p := range rec.pairs {
		want += int64(g.BFS(int32(p[0]))[p[1]])
	}
	if got := ts.TotalBusy(); got != want {
		t.Fatalf("summed link busy cycles %d != summed shortest distances %d", got, want)
	}
	// The exported windows must account for every busy cycle too.
	ts.Flush()
	var buf bytes.Buffer
	if err := ts.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "cycle,width,src,dst,offmodule,queue,busy,util" {
		t.Fatalf("unexpected CSV header %q", lines[0])
	}
	var csvBusy int64
	for _, line := range lines[1:] {
		f := strings.Split(line, ",")
		if len(f) != 8 {
			t.Fatalf("CSV row %q has %d fields", line, len(f))
		}
		b, err := strconv.ParseInt(f[6], 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		csvBusy += b
	}
	if csvBusy != want {
		t.Fatalf("CSV busy column sums to %d, want %d", csvBusy, want)
	}
}

// injectRecorder captures (src, dst) of every injection.
type injectRecorder struct {
	obs.NopProbe
	pairs [][2]int64
}

func (r *injectRecorder) Inject(_ int, _ int64, src, dst int64, _ bool) {
	r.pairs = append(r.pairs, [2]int64{src, dst})
}

// TestExpiredCountsUndrainedPackets starves the drain window so measured
// packets are still in flight at the deadline; they must show up in Expired
// instead of silently vanishing into the Injected-Delivered gap.
func TestExpiredCountsUndrainedPackets(t *testing.T) {
	g := mustBuild(t, networks.Ring{Nodes: 16}.Build)
	st, err := Run(Config{Graph: g, InjectionRate: 0.2, WarmupCycles: 0,
		MeasureCycles: 200, DrainCycles: 1, Seed: 3, Flits: 8})
	if err != nil {
		t.Fatal(err)
	}
	if st.Expired == 0 {
		t.Fatal("a 1-cycle drain of 8-flit messages on a loaded ring must expire packets")
	}
	if st.Delivered+st.Expired != st.Injected {
		t.Fatalf("accounting leak: %d delivered + %d expired != %d injected",
			st.Delivered, st.Expired, st.Injected)
	}
}

// TestExpiredFaultyDeadlineLosses: with retransmission timers that never
// fire and a partitioned ring, cross-partition flows sit pending until the
// drain deadline — they must be counted both Lost and Expired.
func TestExpiredFaultyDeadlineLosses(t *testing.T) {
	g := mustBuild(t, networks.Ring{Nodes: 16}.Build)
	plan := (&FaultPlan{}).LinkDown(50, 0, 1, 0).LinkDown(50, 8, 9, 0)
	fs, err := RunFaulty(Config{Graph: g, InjectionRate: 0.02, WarmupCycles: 20,
		MeasureCycles: 600, DrainCycles: 200, Seed: 41},
		FaultConfig{Plan: plan, RetransmitTimeout: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if fs.Expired == 0 {
		t.Fatal("cross-partition flows should expire at the drain deadline")
	}
	if fs.Expired > fs.Lost {
		t.Fatalf("Expired %d exceeds Lost %d (must be a subset)", fs.Expired, fs.Lost)
	}
	if fs.Delivered+fs.Lost != fs.Injected {
		t.Fatalf("flow accounting leak: %+v", fs)
	}
}

// TestTraceLifecyclesBalance runs a faulty scenario with an exhaustive
// tracer and validates the emitted Chrome trace JSON: it parses, every
// event carries the mandatory fields, every async track opened at injection
// is closed exactly once (delivery or abandonment), and the fault timeline
// carries the scheduled fault events.
func TestTraceLifecyclesBalance(t *testing.T) {
	g := mustBuild(t, networks.Torus2D{Rows: 6, Cols: 6}.Build)
	plan := (&FaultPlan{}).LinkDown(100, 0, 1, 500).LinkDown(150, 6, 7, 0)
	trace := &obs.Trace{}
	fs, err := RunFaulty(Config{Graph: g, InjectionRate: 0.03, WarmupCycles: 50,
		MeasureCycles: 800, Seed: 61, Probe: trace},
		FaultConfig{Plan: plan, NotifyDelay: 100})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	counts := map[string]int{}
	faultEvents := 0
	for _, ev := range parsed.TraceEvents {
		ph, ok := ev["ph"].(string)
		if !ok {
			t.Fatalf("event without ph: %v", ev)
		}
		if ph != "M" {
			if _, ok := ev["ts"]; !ok {
				t.Fatalf("event without ts: %v", ev)
			}
		}
		counts[ph]++
		if ev["cat"] == "fault" {
			faultEvents++
		}
	}
	if counts["b"] == 0 {
		t.Fatal("no packet lifecycles traced")
	}
	if counts["b"] != counts["e"] {
		t.Fatalf("unbalanced lifecycles: %d begins, %d ends (delivered %d, lost %d)",
			counts["b"], counts["e"], fs.Delivered, fs.Lost)
	}
	// 2 faults struck, 1 repaired: 3 timeline instants.
	if faultEvents != 3 {
		t.Fatalf("fault timeline has %d events, want 3", faultEvents)
	}
	if counts["X"] == 0 {
		t.Fatal("no link-occupancy slices traced")
	}
}

// TestRerouteProbeMatchesRerouteEvents cross-checks the Reroute hook
// against the simulator's own RerouteEvents counter.
func TestRerouteProbeMatchesRerouteEvents(t *testing.T) {
	g := mustBuild(t, networks.Hypercube{Dim: 5}.Build)
	plan := (&FaultPlan{}).LinkDown(200, 0, 1, 0).LinkDown(300, 2, 18, 0)
	rec := &rerouteRecorder{}
	fs, err := RunFaulty(Config{Graph: g, InjectionRate: 0.03, WarmupCycles: 100,
		MeasureCycles: 1200, Seed: 83, Probe: rec},
		FaultConfig{Plan: plan, NotifyDelay: 10})
	if err != nil {
		t.Fatal(err)
	}
	if fs.RerouteEvents == 0 || rec.events != fs.RerouteEvents {
		t.Fatalf("Reroute hook fired %d times, RerouteEvents = %d", rec.events, fs.RerouteEvents)
	}
	if rec.lagSum != int64(fs.MeanTimeToReroute*float64(fs.RerouteEvents)+0.5) {
		t.Fatalf("hook lag sum %d inconsistent with MeanTimeToReroute %v over %d events",
			rec.lagSum, fs.MeanTimeToReroute, fs.RerouteEvents)
	}
}

type rerouteRecorder struct {
	obs.NopProbe
	events int
	lagSum int64
}

func (r *rerouteRecorder) Reroute(_ int, _ int64, lag int) {
	r.events++
	r.lagSum += int64(lag)
}
