package netsim

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/networks"
	"repro/internal/superip"
)

func TestLightLoadLatencyApproxAvgDistance(t *testing.T) {
	// Under very light uniform load with equal link speeds, the average
	// latency approaches the average shortest-path distance (plus queueing
	// noise, which is tiny at this rate).
	spec := networks.Hypercube{Dim: 6}
	g, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	st, err := Run(Config{
		Graph:         g,
		InjectionRate: 0.01,
		WarmupCycles:  200,
		MeasureCycles: 2000,
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Delivered == 0 || st.Delivered != st.Injected {
		t.Fatalf("delivered %d of %d", st.Delivered, st.Injected)
	}
	avg := g.AllPairs().AvgDistance
	if st.AvgLatency < avg {
		t.Fatalf("latency %v below average distance %v (impossible)", st.AvgLatency, avg)
	}
	if st.AvgLatency > avg*1.5 {
		t.Fatalf("latency %v too far above average distance %v at light load", st.AvgLatency, avg)
	}
}

func TestZeroRate(t *testing.T) {
	g, _ := networks.Ring{Nodes: 8}.Build()
	st, err := Run(Config{Graph: g, InjectionRate: 0, WarmupCycles: 10, MeasureCycles: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.Injected != 0 || st.Delivered != 0 || st.AvgLatency != 0 {
		t.Fatalf("zero-rate stats = %+v", st)
	}
}

func TestConfigErrors(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("nil graph must fail")
	}
	g, _ := networks.Ring{Nodes: 8}.Build()
	if _, err := Run(Config{Graph: g, InjectionRate: 2}); err == nil {
		t.Fatal("rate > 1 must fail")
	}
}

func TestOffModuleSlowdownIncreasesLatency(t *testing.T) {
	// Making off-module links slower must increase latency on a network
	// with off-module hops, and the increase must track how many off-module
	// hops routes need.
	net := superip.HSN(2, superip.NucleusHypercube(3))
	g, ix, err := net.BuildWithIndex()
	if err != nil {
		t.Fatal(err)
	}
	p := metrics.NucleusPartition(ix, net.Nucleus.Nuc.M())
	base, err := Run(Config{Graph: g, Partition: &p, OffModulePeriod: 1,
		InjectionRate: 0.01, WarmupCycles: 200, MeasureCycles: 2000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Run(Config{Graph: g, Partition: &p, OffModulePeriod: 8,
		InjectionRate: 0.01, WarmupCycles: 200, MeasureCycles: 2000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if slow.AvgLatency <= base.AvgLatency {
		t.Fatalf("slow off-module links did not increase latency: %v vs %v",
			slow.AvgLatency, base.AvgLatency)
	}
}

func TestIICostOrderingUnderSlowOffModuleLinks(t *testing.T) {
	// Section 5.4: with slow off-module links, the network with the smaller
	// II-cost should deliver lower latency. Compare the hypercube Q6 packed
	// into 8-node subcube modules (I-degree 3, I-diameter 3) against
	// HSN(2;Q3) packed into its nuclei (I-degree <= 1, I-diameter 1) at
	// equal size (64 nodes) and light load.
	cube, err := networks.Hypercube{Dim: 6}.Build()
	if err != nil {
		t.Fatal(err)
	}
	cubePart := metrics.SubcubePartition(cube.N(), 3)
	net := superip.HSN(2, superip.NucleusHypercube(3))
	hsnG, ix, err := net.BuildWithIndex()
	if err != nil {
		t.Fatal(err)
	}
	hsnPart := metrics.NucleusPartition(ix, net.Nucleus.Nuc.M())

	cubeStats, err := Run(Config{Graph: cube, Partition: &cubePart, OffModulePeriod: 8,
		InjectionRate: 0.005, WarmupCycles: 300, MeasureCycles: 3000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	hsnStats, err := Run(Config{Graph: hsnG, Partition: &hsnPart, OffModulePeriod: 8,
		InjectionRate: 0.005, WarmupCycles: 300, MeasureCycles: 3000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	iiCube := metrics.IICost(metrics.IDegree(cube, cubePart), int(metrics.IStats(cube, cubePart).Diameter))
	iiHSN := metrics.IICost(metrics.IDegree(hsnG, hsnPart), int(metrics.IStats(hsnG, hsnPart).Diameter))
	if iiHSN >= iiCube {
		t.Fatalf("II-cost of HSN (%v) should beat the hypercube (%v)", iiHSN, iiCube)
	}
	if hsnStats.AvgLatency >= cubeStats.AvgLatency {
		t.Fatalf("II-cost ordering not reflected in simulated latency: HSN %v vs Q6 %v",
			hsnStats.AvgLatency, cubeStats.AvgLatency)
	}
}

func TestHeavierLoadRaisesLatency(t *testing.T) {
	g, err := networks.KAryNCube{K: 4, Dims: 2}.Build()
	if err != nil {
		t.Fatal(err)
	}
	light, err := Run(Config{Graph: g, InjectionRate: 0.01, WarmupCycles: 200, MeasureCycles: 2000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := Run(Config{Graph: g, InjectionRate: 0.2, WarmupCycles: 200, MeasureCycles: 2000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if heavy.AvgLatency <= light.AvgLatency {
		t.Fatalf("heavier load should raise latency: %v vs %v", heavy.AvgLatency, light.AvgLatency)
	}
	if heavy.Throughput <= light.Throughput {
		t.Fatalf("heavier load should raise delivered throughput below saturation: %v vs %v",
			heavy.Throughput, light.Throughput)
	}
}

func TestDirectedGraphSimulation(t *testing.T) {
	spec := networks.DeBruijn{Base: 2, Dim: 5}
	g, err := spec.BuildDirected()
	if err != nil {
		t.Fatal(err)
	}
	st, err := Run(Config{Graph: g, InjectionRate: 0.02, WarmupCycles: 100, MeasureCycles: 1000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if st.Delivered == 0 {
		t.Fatal("no packets delivered on directed de Bruijn")
	}
}

func TestPatterns(t *testing.T) {
	// Transpose on 2^6 = 64 nodes: swap 3-bit halves.
	if got := Transpose(0b101011, 64, nil); got != 0b011101 {
		t.Fatalf("Transpose(101011) = %b", got)
	}
	// Self-paired nodes return themselves (injection skipped).
	if got := Transpose(0b101101, 64, nil); got != 0b101101 {
		t.Fatalf("Transpose fixed point = %b", got)
	}
	// Odd exponent falls back to complement.
	if got := Transpose(5, 32, nil); got != 5^31 {
		t.Fatalf("Transpose odd-exponent fallback = %d", got)
	}
	// Non-power-of-two sizes (e.g. star graphs, n = k!) fall through
	// Transpose -> BitComplement -> antipode: (src + n/2) mod n.
	if got := Transpose(5, 12, nil); got != 11 {
		t.Fatalf("Transpose non-power-of-two fallback = %d, want antipode 11", got)
	}
	if got := Transpose(20, 24, nil); got != 8 {
		t.Fatalf("Transpose(20, 24) = %d, want (20+12)%%24 = 8", got)
	}
	if got := BitComplement(5, 32, nil); got != 26 {
		t.Fatalf("BitComplement(5) = %d", got)
	}
	if got := BitComplement(3, 10, nil); got != 8 {
		t.Fatalf("BitComplement non-power-of-two = %d", got)
	}
	// The antipode fallback must stay a permutation (injective) so that
	// pattern sweeps on star graphs pair every node.
	seen := map[int32]bool{}
	for src := int32(0); src < 120; src++ {
		d := BitComplement(src, 120, nil)
		if d < 0 || d >= 120 || seen[d] {
			t.Fatalf("antipode fallback not a permutation at %d -> %d", src, d)
		}
		seen[d] = true
	}
	hs := mustHotspot(t, 1.0)
	r := rand.New(rand.NewSource(1))
	if got := hs(5, 16, r); got != 0 {
		t.Fatalf("Hotspot(1.0) = %d, want 0", got)
	}
}

// mustHotspot builds a hotspot pattern, failing the test on an invalid p.
func mustHotspot(tb testing.TB, p float64) PatternFunc {
	tb.Helper()
	pat, err := Hotspot(p)
	if err != nil {
		tb.Fatal(err)
	}
	return pat
}

// TestHotspotBounds pins the validity boundary of the hotspot probability:
// both endpoints of [0,1] are legal patterns, anything outside is rejected
// with an error.
func TestHotspotBounds(t *testing.T) {
	for _, p := range []float64{0, 1} {
		if _, err := Hotspot(p); err != nil {
			t.Fatalf("Hotspot(%v): unexpected error %v", p, err)
		}
	}
	for _, p := range []float64{-0.001, 1.001, -1, 2} {
		if _, err := Hotspot(p); err == nil {
			t.Fatalf("Hotspot(%v): expected error, got nil", p)
		}
	}
}

func TestPatternTrafficRuns(t *testing.T) {
	g, err := networks.Hypercube{Dim: 6}.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, pat := range []PatternFunc{Transpose, BitComplement, mustHotspot(t, 0.2)} {
		st, err := Run(Config{Graph: g, InjectionRate: 0.01, Pattern: pat,
			WarmupCycles: 100, MeasureCycles: 1000, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		if st.Delivered == 0 {
			t.Fatal("no packets delivered under pattern traffic")
		}
	}
	// Bit-complement traffic traverses the full diameter: latency >= n.
	st, err := Run(Config{Graph: g, InjectionRate: 0.005, Pattern: BitComplement,
		WarmupCycles: 100, MeasureCycles: 1000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if st.AvgLatency < 6 {
		t.Fatalf("complement traffic latency %v below diameter 6", st.AvgLatency)
	}
}

func TestMultiFlitMessages(t *testing.T) {
	g, err := networks.Ring{Nodes: 16}.Build()
	if err != nil {
		t.Fatal(err)
	}
	base := Config{Graph: g, InjectionRate: 0.005, WarmupCycles: 100,
		MeasureCycles: 2000, Seed: 5}

	saf := base
	saf.Flits = 8
	safStats, err := Run(saf)
	if err != nil {
		t.Fatal(err)
	}
	ct := saf
	ct.CutThrough = true
	ctStats, err := Run(ct)
	if err != nil {
		t.Fatal(err)
	}
	one := base
	oneStats, err := Run(one)
	if err != nil {
		t.Fatal(err)
	}
	// Longer messages cost more; cut-through pipelining beats
	// store-and-forward; single-flit is the floor.
	if !(oneStats.AvgLatency < ctStats.AvgLatency && ctStats.AvgLatency < safStats.AvgLatency) {
		t.Fatalf("latency ordering violated: 1-flit %v, cut-through %v, SAF %v",
			oneStats.AvgLatency, ctStats.AvgLatency, safStats.AvgLatency)
	}
}

func TestWormholeIDegreeArgument(t *testing.T) {
	// Section 5.3: "when wormhole or cut-through routing is used and
	// messages are long, the delay of a network with light traffic is
	// approximately proportional to its inter-cluster degree" — with long
	// cut-through messages and slow off-module links, HSN(2;Q3) (I-degree
	// < 1) must beat Q6 with subcube modules (I-degree 3).
	net := superip.HSN(2, superip.NucleusHypercube(3))
	hg, ix, err := net.BuildWithIndex()
	if err != nil {
		t.Fatal(err)
	}
	hp := metrics.NucleusPartition(ix, net.Nucleus.Nuc.M())
	qg, err := networks.Hypercube{Dim: 6}.Build()
	if err != nil {
		t.Fatal(err)
	}
	qp := metrics.SubcubePartition(qg.N(), 3)
	mk := func(g *graph.Graph, p *metrics.Partition) Stats {
		st, err := Run(Config{Graph: g, Partition: p, OffModulePeriod: 4,
			Flits: 16, CutThrough: true, InjectionRate: 0.002,
			WarmupCycles: 300, MeasureCycles: 3000, Seed: 6})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	hsnStats := mk(hg, &hp)
	qStats := mk(qg, &qp)
	if hsnStats.AvgLatency >= qStats.AvgLatency {
		t.Fatalf("long-message cut-through: HSN %v should beat Q6 %v",
			hsnStats.AvgLatency, qStats.AvgLatency)
	}
}

func TestAdaptiveRouting(t *testing.T) {
	g, err := networks.Torus2D{Rows: 8, Cols: 8}.Build()
	if err != nil {
		t.Fatal(err)
	}
	det, err := Run(Config{Graph: g, InjectionRate: 0.15, WarmupCycles: 200,
		MeasureCycles: 2000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	ad, err := Run(Config{Graph: g, InjectionRate: 0.15, WarmupCycles: 200,
		MeasureCycles: 2000, Seed: 11, Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	if ad.Delivered == 0 {
		t.Fatal("adaptive run delivered nothing")
	}
	// Adaptive minimal routing must not lengthen paths: latency stays in
	// the same ballpark (and usually improves under load).
	if ad.AvgLatency > det.AvgLatency*1.5 {
		t.Fatalf("adaptive latency %v far above deterministic %v", ad.AvgLatency, det.AvgLatency)
	}
}

func TestPeriodFuncHierarchy(t *testing.T) {
	// Two-level packaging: chips of 4 nodes inside boards of 16 on a
	// 64-node ring; chip-internal links cost 1, board-internal 2,
	// cross-board 8. Latency must increase with each level's slowdown.
	g, err := networks.Ring{Nodes: 64}.Build()
	if err != nil {
		t.Fatal(err)
	}
	levelPeriod := func(u, v int32) int {
		if u/4 == v/4 {
			return 1 // same chip
		}
		if u/16 == v/16 {
			return 2 // same board
		}
		return 8 // across boards
	}
	flat, err := Run(Config{Graph: g, InjectionRate: 0.01, WarmupCycles: 200,
		MeasureCycles: 2000, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	hier, err := Run(Config{Graph: g, InjectionRate: 0.01, WarmupCycles: 200,
		MeasureCycles: 2000, Seed: 13, PeriodFunc: levelPeriod})
	if err != nil {
		t.Fatal(err)
	}
	if hier.AvgLatency <= flat.AvgLatency {
		t.Fatalf("hierarchical link costs should raise latency: %v vs %v",
			hier.AvgLatency, flat.AvgLatency)
	}
	if hier.Delivered != hier.Injected {
		t.Fatalf("hierarchy run lost packets: %d of %d", hier.Delivered, hier.Injected)
	}
}

func TestLoadSweep(t *testing.T) {
	g, err := networks.Torus2D{Rows: 8, Cols: 8}.Build()
	if err != nil {
		t.Fatal(err)
	}
	rates := []float64{0.01, 0.05, 0.15}
	stats, err := LoadSweep(Config{Graph: g, WarmupCycles: 200, MeasureCycles: 1500, Seed: 21}, rates)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 3 {
		t.Fatalf("sweep returned %d points", len(stats))
	}
	// Delivered throughput grows with offered load below saturation, and
	// latency is non-decreasing.
	if !(stats[0].Throughput < stats[1].Throughput && stats[1].Throughput < stats[2].Throughput) {
		t.Fatalf("throughput curve not increasing: %v %v %v",
			stats[0].Throughput, stats[1].Throughput, stats[2].Throughput)
	}
	if stats[2].AvgLatency < stats[0].AvgLatency {
		t.Fatalf("latency decreased under load: %v -> %v", stats[0].AvgLatency, stats[2].AvgLatency)
	}
}

func TestSaturationOrderingMatchesThroughputBound(t *testing.T) {
	// Section 5.1: maximum throughput is inversely proportional to average
	// distance. The measured saturation ordering across a ring, a torus,
	// and a hypercube of 64 nodes must match the analytic bound ordering.
	type sys struct {
		name  string
		g     *graph.Graph
		bound float64
		sat   float64
	}
	var systems []sys
	for _, c := range []struct {
		name  string
		build func() (*graph.Graph, error)
	}{
		{"ring64", networks.Ring{Nodes: 64}.Build},
		{"torus8x8", networks.Torus2D{Rows: 8, Cols: 8}.Build},
		{"Q6", networks.Hypercube{Dim: 6}.Build},
	} {
		g, err := c.build()
		if err != nil {
			t.Fatal(err)
		}
		st := g.AllPairs()
		bound := metrics.ThroughputBound(g, st.AvgDistance)
		rate, _, err := Saturation(Config{Graph: g, WarmupCycles: 200,
			MeasureCycles: 1500, Seed: 3}, 0.9, 0.9, 7)
		if err != nil {
			t.Fatal(err)
		}
		systems = append(systems, sys{c.name, g, bound, rate})
	}
	for i := 0; i+1 < len(systems); i++ {
		a, b := systems[i], systems[i+1]
		if a.bound >= b.bound {
			t.Fatalf("bound ordering unexpected: %s %v vs %s %v", a.name, a.bound, b.name, b.bound)
		}
		if a.sat >= b.sat {
			t.Fatalf("saturation ordering does not match bounds: %s %v vs %s %v",
				a.name, a.sat, b.name, b.sat)
		}
		// The measured saturation tracks the analytic bound (the 0.9
		// acceptance criterion tolerates a few percent of oversubscription,
		// so allow 15% slack).
		if a.sat > a.bound*1.15 {
			t.Fatalf("%s: measured saturation %v far above bound %v", a.name, a.sat, a.bound)
		}
	}
}

func TestSaturationErrors(t *testing.T) {
	g, _ := networks.Ring{Nodes: 8}.Build()
	if _, _, err := Saturation(Config{Graph: g}, 0, 0.9, 3); err == nil {
		t.Fatal("bad hi must fail")
	}
	if _, _, err := Saturation(Config{Graph: g}, 0.5, 0, 3); err == nil {
		t.Fatal("bad accept must fail")
	}
	if _, _, err := Saturation(Config{Graph: g}, 1.5, 0.9, 3); err == nil {
		t.Fatal("hi > 1 must fail")
	}
	if _, _, err := Saturation(Config{Graph: g}, 0.5, 1.5, 3); err == nil {
		t.Fatal("accept > 1 must fail")
	}
	if _, _, err := Saturation(Config{Graph: g}, -0.1, 0.9, 3); err == nil {
		t.Fatal("negative hi must fail")
	}
}

func TestSaturationBoundaryAcceptFractions(t *testing.T) {
	// accept = 1 (every measured packet must drain) and hi = 1 are the
	// boundary of the valid parameter space; both must search successfully
	// and uphold the acceptance criterion at the returned rate.
	g, err := networks.Hypercube{Dim: 5}.Build()
	if err != nil {
		t.Fatal(err)
	}
	rate, best, err := Saturation(Config{Graph: g, WarmupCycles: 100,
		MeasureCycles: 800, Seed: 19}, 1, 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	if rate <= 0 {
		t.Fatal("Q5 must sustain some load at accept = 1")
	}
	if best.Delivered != best.Injected {
		t.Fatalf("accept = 1 returned a rate that loses packets: %+v", best)
	}
}

func TestSaturationHiBelowSaturation(t *testing.T) {
	// When the whole [0, hi] range is sustainable, the binary search must
	// converge to (nearly) hi itself rather than stall low.
	g, err := networks.Hypercube{Dim: 6}.Build()
	if err != nil {
		t.Fatal(err)
	}
	const hi = 0.01 // far below Q6 saturation
	rate, best, err := Saturation(Config{Graph: g, WarmupCycles: 100,
		MeasureCycles: 800, Seed: 19}, hi, 0.9, 6)
	if err != nil {
		t.Fatal(err)
	}
	if rate < hi*(1-1.0/64)-1e-12 {
		t.Fatalf("sustainable range [0,%v] but search stopped at %v", hi, rate)
	}
	if float64(best.Delivered) < 0.9*float64(best.Injected) {
		t.Fatalf("returned stats violate the acceptance criterion: %+v", best)
	}
}

func TestSaturationBestStatsMatchDirectRun(t *testing.T) {
	// The best Stats returned by the search must be exactly the Stats of a
	// direct Run at the returned rate (same config, same short drain).
	g, err := networks.Torus2D{Rows: 8, Cols: 8}.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Graph: g, WarmupCycles: 150, MeasureCycles: 1000, Seed: 27}
	rate, best, err := Saturation(cfg, 0.9, 0.9, 7)
	if err != nil {
		t.Fatal(err)
	}
	if rate == 0 {
		t.Fatal("torus must sustain some load")
	}
	direct := cfg
	direct.InjectionRate = rate
	direct.DrainCycles = 100 // the search's short-drain override
	st, err := Run(direct)
	if err != nil {
		t.Fatal(err)
	}
	if st != best {
		t.Fatalf("best stats do not reproduce at the returned rate:\nsearch %+v\ndirect %+v", best, st)
	}
}
