// Package netsim is a synchronous packet-switched network simulator used to
// back the paper's Section 5 performance arguments empirically. The paper
// argues analytically that, when transmissions over off-module links are
// slower (or more contended) than on-module links, the latency of a network
// under light load tracks its II-cost (inter-cluster degree times
// inter-cluster diameter) and the DD-/ID-costs in the equal-speed cases.
// The authors had no testbed; this simulator is the synthetic equivalent:
// one outgoing FIFO per directed link, configurable message length with
// store-and-forward or cut-through switching, uniform/transpose/complement/
// hotspot traffic patterns, and a configurable service period for
// off-module links.
package netsim

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/route"
)

// Config parameterizes a simulation run.
type Config struct {
	// Graph is the network topology (undirected or directed).
	Graph *graph.Graph
	// Partition optionally assigns nodes to modules; links inside a module
	// are fast, links between modules are slow. Nil means one module.
	Partition *metrics.Partition
	// OffModulePeriod is the service time in cycles of an off-module link
	// (on-module links always have period 1). 1 = all links equal.
	OffModulePeriod int
	// InjectionRate is the probability per node per cycle of injecting a
	// packet with a uniformly random destination.
	InjectionRate float64
	// WarmupCycles are simulated but packets injected during them are not
	// measured. MeasureCycles follow; then the run drains in-flight
	// measured packets for up to DrainCycles.
	WarmupCycles, MeasureCycles, DrainCycles int
	// Seed makes runs deterministic.
	Seed int64
	// Flits is the message length in flits (default 1). A link transmitting
	// a message stays busy for Flits * period cycles.
	Flits int
	// CutThrough, when true, lets the head flit proceed to the next node
	// after one link period while the tail still occupies the link
	// (cut-through / wormhole-style pipelining). When false, messages are
	// forwarded store-and-forward: the whole message must arrive before the
	// next hop begins.
	CutThrough bool
	// Pattern selects the destination for a packet injected at src (nil =
	// uniform random over the other nodes). See Uniform, Transpose,
	// BitComplement, Hotspot.
	Pattern PatternFunc
	// Adaptive, when true, spreads traffic across ALL minimal next hops
	// (random choice per packet per hop) instead of a single deterministic
	// shortest-path tree. Paths stay minimal; load balance improves.
	Adaptive bool
	// PeriodFunc, when non-nil, overrides Partition/OffModulePeriod with an
	// arbitrary per-link service time — e.g. a multi-level packaging
	// hierarchy (chip / board / cage) with different speeds per level.
	// Must return >= 1 for every link of the graph; Run validates this up
	// front and returns an error on violation.
	PeriodFunc func(u, v int32) int
	// Router, when non-nil, supplies next hops instead of the lazily built
	// per-destination BFS tables — typically a topo.Router such as the
	// algebraic super-IP router, whose per-node state is O(1) in the network
	// size. The router must make progress toward dst on the simulated graph:
	// every NextHop result must be a neighbor of the current node. Router is
	// incompatible with Adaptive (a router is a deterministic oracle; the
	// adaptive path needs the full minimal-next-hop sets).
	Router Router
	// Probe, when non-nil, receives per-event callbacks during the run
	// (injection, queueing, transmission, delivery, drops, retransmission,
	// faults, reroutes) — see internal/obs for the hook contract and the
	// built-in collectors. A nil Probe costs nothing: every hook sits
	// behind a nil check, and an uninstrumented run reproduces its Stats
	// bit for bit. Probes must not mutate simulator state.
	Probe obs.Probe
}

// normalize applies defaults and validates the configuration. It is shared
// by Run and RunFaulty so both reject the same bad inputs: a missing or
// trivial graph, an injection rate outside [0,1], and a PeriodFunc that
// returns a period < 1 on any link of the topology.
func (cfg *Config) normalize() error {
	g := cfg.Graph
	if g == nil || g.N() < 2 {
		return fmt.Errorf("netsim: need a graph with at least 2 nodes")
	}
	if cfg.OffModulePeriod < 1 {
		cfg.OffModulePeriod = 1
	}
	if cfg.InjectionRate < 0 || cfg.InjectionRate > 1 {
		return fmt.Errorf("netsim: injection rate %v out of [0,1]", cfg.InjectionRate)
	}
	if cfg.DrainCycles == 0 {
		cfg.DrainCycles = 10 * (cfg.WarmupCycles + cfg.MeasureCycles)
	}
	if cfg.Flits < 1 {
		cfg.Flits = 1
	}
	if cfg.Pattern == nil {
		cfg.Pattern = Uniform
	}
	if cfg.Router != nil && cfg.Adaptive {
		return fmt.Errorf("netsim: Router and Adaptive are mutually exclusive")
	}
	if cfg.PeriodFunc != nil {
		for u := 0; u < g.N(); u++ {
			for _, v := range g.Neighbors(int32(u)) {
				if p := cfg.PeriodFunc(int32(u), v); p < 1 {
					return fmt.Errorf("netsim: PeriodFunc(%d,%d) = %d, must be >= 1", u, v, p)
				}
			}
		}
	}
	return nil
}

// maxServicePeriod returns the largest link service period of the
// (normalized) configuration; it bounds the in-flight delay and sizes the
// arrival ring buffer.
func (cfg *Config) maxServicePeriod() int {
	maxPeriod := cfg.OffModulePeriod
	if cfg.PeriodFunc != nil {
		g := cfg.Graph
		for u := 0; u < g.N(); u++ {
			for _, v := range g.Neighbors(int32(u)) {
				if p := cfg.PeriodFunc(int32(u), v); p > maxPeriod {
					maxPeriod = p
				}
			}
		}
	}
	return maxPeriod
}

// Router is the per-hop routing oracle consumed by Run when Config.Router is
// set. It is satisfied by the routers of internal/topo (Table, Algebraic,
// HypercubeRouter, StarRouter); declaring it here keeps netsim decoupled from
// that package.
type Router interface {
	NextHop(cur, dst int64) (int64, error)
}

// PatternFunc picks a destination for a packet injected at src; returning
// src means "skip this injection" (used by patterns with fixed pairings).
type PatternFunc func(src int32, n int, rng *rand.Rand) int32

// Uniform is the default pattern: a uniformly random destination != src.
func Uniform(src int32, n int, rng *rand.Rand) int32 {
	d := int32(rng.Intn(n - 1))
	if d >= src {
		d++
	}
	return d
}

// Transpose sends node (x,y) to (y,x): the id's high and low bit halves are
// swapped. The swap is only well defined when n is a power of two with an
// even exponent (so the id splits into two equal halves). For every other
// size — odd exponents like n=32 as well as non-powers-of-two like n=12 —
// Transpose explicitly falls back to BitComplement(src, n, nil), which in
// turn degrades to the antipode (src + n/2) mod n when n is not a power of
// two. The fallback keeps sweeps over heterogeneous topologies (e.g. star
// graphs with n = k!) runnable with a single pattern flag.
func Transpose(src int32, n int, _ *rand.Rand) int32 {
	bitsN := 0
	for 1<<bitsN < n {
		bitsN++
	}
	if 1<<bitsN != n || bitsN%2 != 0 {
		return BitComplement(src, n, nil)
	}
	half := bitsN / 2
	lo := src & (1<<half - 1)
	hi := src >> half
	return lo<<half | hi
}

// BitComplement sends node src to its bitwise complement. Complementing
// only permutes the id space when n is a power of two; for any other size
// the function explicitly falls back to the antipode (src + n/2) mod n,
// which is the closest "maximally distant partner" analogue that stays a
// permutation (odd n pairs node i with i + floor(n/2), which is a
// derangement-like pairing rather than an involution).
func BitComplement(src int32, n int, _ *rand.Rand) int32 {
	bitsN := 0
	for 1<<bitsN < n {
		bitsN++
	}
	if 1<<bitsN == n {
		return src ^ int32(n-1)
	}
	return (src + int32(n/2)) % int32(n)
}

// Hotspot returns a pattern that sends traffic to node 0 with probability
// p and uniformly otherwise. p must lie in [0,1]: anything else would
// silently clamp inside rng.Float64() comparisons (p<0 behaves as 0, p>1 as
// 1) and misreport the offered hotspot fraction, so it is rejected instead.
func Hotspot(p float64) (PatternFunc, error) {
	if p < 0 || p > 1 || p != p {
		return nil, fmt.Errorf("netsim: hotspot probability %v out of [0,1]", p)
	}
	return func(src int32, n int, rng *rand.Rand) int32 {
		if rng.Float64() < p && src != 0 {
			return 0
		}
		return Uniform(src, n, rng)
	}, nil
}

// Stats reports the outcome of a run.
type Stats struct {
	// Injected counts measured packets (injected during the measurement
	// window); Delivered counts those that reached their destination before
	// the drain deadline.
	Injected, Delivered int
	// Expired counts measured packets still in flight when the drain
	// deadline hit; Injected == Delivered + Expired for fault-free runs.
	// (For faulty runs the analogous deadline losses are a subset of
	// FaultStats.Lost — see that field.)
	Expired int
	// AvgLatency is the mean delivery latency (cycles) of measured packets.
	AvgLatency float64
	// MaxLatency is the worst delivery latency observed.
	MaxLatency int
	// P50Latency, P95Latency and P99Latency are delivery-latency quantiles
	// in cycles (log-bucket interpolated), filled only when the run's
	// Probe carries a latency histogram (obs.LatencyHist, possibly inside
	// obs.Multi); zero otherwise.
	P50Latency, P95Latency, P99Latency float64
	// Throughput is delivered measured packets per node per cycle.
	Throughput float64
}

// LatencySummary is the optional interface a Probe implements to surface
// latency quantiles in Stats; obs.LatencyHist and obs.Multi satisfy it.
type LatencySummary interface {
	LatencyQuantile(q float64) float64
}

// fillQuantiles copies p50/p95/p99 out of the probe's histogram, when the
// probe carries one.
func (st *Stats) fillQuantiles(p obs.Probe) {
	if h, ok := p.(LatencySummary); ok {
		st.P50Latency = h.LatencyQuantile(0.50)
		st.P95Latency = h.LatencyQuantile(0.95)
		st.P99Latency = h.LatencyQuantile(0.99)
	}
}

// materializedPeriod is the link service-period policy of the materialized
// configurations, shared by Run and RunFaulty: PeriodFunc overrides
// everything, otherwise off-module links (per Partition) cost
// OffModulePeriod and on-module links cost 1.
func materializedPeriod(cfg *Config) func(u, v int64) int {
	return func(u, v int64) int {
		if cfg.PeriodFunc != nil {
			return cfg.PeriodFunc(int32(u), int32(v)) // >= 1, validated by normalize
		}
		if cfg.Partition == nil || cfg.Partition.Of[u] == cfg.Partition.Of[v] {
			return 1
		}
		return cfg.OffModulePeriod
	}
}

// Run executes the simulation. For runs that inject failures mid-flight see
// RunFaulty.
func Run(cfg Config) (Stats, error) {
	if err := cfg.normalize(); err != nil {
		return Stats{}, err
	}
	return runNormalized(cfg)
}

// runNormalized assembles the fault-free materialized variant of the engine
// and runs it. cfg must already be normalized; RunFaultyWithBaseline calls
// this directly so baseline and faulty runs share one setup pass.
func runNormalized(cfg Config) (Stats, error) {
	g := cfg.Graph
	n := g.N()
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Per-destination next-hop tables, built lazily.
	tables := make([]route.NextHopTable, n)
	var allTables [][][]int32
	if cfg.Adaptive {
		allTables = make([][][]int32, n)
	}

	st := Stats{}
	var latencySum int64
	inFlightMeasured := 0
	var nextID int64

	e := &engine{
		pb:         cfg.Probe, // nil fast path: no obs code runs uninstrumented
		store:      newDenseLinks(g),
		ring:       make([][]earrival, cfg.maxServicePeriod()*cfg.Flits+1),
		flits:      cfg.Flits,
		cutThrough: cfg.CutThrough,
		period:     materializedPeriod(&cfg),
		total:      cfg.WarmupCycles + cfg.MeasureCycles,
	}
	e.deadline = e.total + cfg.DrainCycles
	e.route = func(_ int, at int64, pkt *epacket) (int64, bool, error) {
		if cfg.Router != nil {
			nh, err := cfg.Router.NextHop(at, pkt.dst)
			if err != nil {
				return 0, false, err
			}
			return nh, true, nil
		}
		cur, dst := int32(at), int32(pkt.dst)
		if cfg.Adaptive {
			if allTables[dst] == nil {
				allTables[dst] = route.BFSAllNextHops(g, dst)
			}
			opts := allTables[dst][cur]
			if len(opts) == 0 {
				return 0, false, fmt.Errorf("netsim: no route from %d to %d", cur, dst)
			}
			return int64(opts[rng.Intn(len(opts))]), true, nil
		}
		if tables[dst] == nil {
			tables[dst] = route.BFSNextHops(g, dst)
		}
		nh := tables[dst][cur]
		if nh < 0 {
			return 0, false, fmt.Errorf("netsim: no route from %d to %d", cur, dst)
		}
		return int64(nh), true, nil
	}
	e.deliver = func(now int, at int64, pkt *epacket) {
		lat := now - pkt.born
		if pkt.measured {
			st.Delivered++
			inFlightMeasured--
			latencySum += int64(lat)
			if lat > st.MaxLatency {
				st.MaxLatency = lat
			}
		}
		if e.pb != nil {
			e.pb.Deliver(now, pkt.id, at, lat, pkt.measured)
		}
	}
	e.inject = func(now int) error {
		for u := 0; u < n; u++ {
			if rng.Float64() < cfg.InjectionRate {
				dst := cfg.Pattern(int32(u), n, rng)
				if dst == int32(u) || dst < 0 || int(dst) >= n {
					continue
				}
				measured := now >= cfg.WarmupCycles
				if measured {
					st.Injected++
					inFlightMeasured++
				}
				id := nextID
				nextID++
				if e.pb != nil {
					e.pb.Inject(now, id, int64(u), int64(dst), measured)
				}
				if err := e.enqueue(now, int64(u), epacket{id: id, dst: int64(dst), born: now, measured: measured}); err != nil {
					return err
				}
			}
		}
		return nil
	}
	e.canStop = func(int) bool { return inFlightMeasured == 0 }

	if err := e.run(); err != nil {
		return st, err
	}
	st.Expired = inFlightMeasured
	if st.Delivered > 0 {
		st.AvgLatency = float64(latencySum) / float64(st.Delivered)
	}
	if cfg.MeasureCycles > 0 {
		st.Throughput = float64(st.Delivered) / float64(n) / float64(cfg.MeasureCycles)
	}
	st.fillQuantiles(e.pb)
	return st, nil
}

// LoadSweep runs the simulation at each injection rate and returns the
// stats, the standard throughput-vs-offered-load curve of the evaluation
// harness. The config's InjectionRate field is ignored.
func LoadSweep(cfg Config, rates []float64) ([]Stats, error) {
	out := make([]Stats, 0, len(rates))
	for _, rate := range rates {
		c := cfg
		c.InjectionRate = rate
		st, err := Run(c)
		if err != nil {
			return nil, err
		}
		out = append(out, st)
	}
	return out, nil
}

// Saturation estimates the saturation throughput of the network: the
// highest injection rate at which at least accept (e.g. 0.9) of the
// measured packets are delivered by the drain deadline, found by binary
// search over [0, hi]. Returns the rate and its stats. The paper's Section
// 5.1 observation — maximum throughput inversely proportional to average
// distance — can be checked against metrics.ThroughputBound.
func Saturation(cfg Config, hi float64, accept float64, steps int) (float64, Stats, error) {
	if hi <= 0 || hi > 1 {
		return 0, Stats{}, fmt.Errorf("netsim: hi rate %v out of (0,1]", hi)
	}
	if accept <= 0 || accept > 1 {
		return 0, Stats{}, fmt.Errorf("netsim: accept fraction %v out of (0,1]", accept)
	}
	lo := 0.0
	var best Stats
	bestRate := 0.0
	for i := 0; i < steps; i++ {
		mid := (lo + hi) / 2
		c := cfg
		c.InjectionRate = mid
		// Keep the drain short: a sustainable rate leaves only in-flight
		// packets at the end of the measurement window, while an
		// over-saturated rate leaves a backlog that a short drain cannot
		// clear — which is exactly the signal the search needs.
		if c.DrainCycles == 0 {
			c.DrainCycles = 100
		}
		st, err := Run(c)
		if err != nil {
			return 0, Stats{}, err
		}
		if st.Injected > 0 && float64(st.Delivered) >= accept*float64(st.Injected) {
			lo, best, bestRate = mid, st, mid
		} else {
			hi = mid
		}
	}
	return bestRate, best, nil
}
