package netsim

import (
	"fmt"
	"testing"

	"repro/internal/networks"
	"repro/internal/superip"
	"repro/internal/topo"
)

// TestRunWithRouterMatchesTables checks that plugging a lazily materialized
// BFS table router (topo.Table) into Run reproduces the historical nil-Router
// path bit for bit: both consult identical tables and neither consumes
// randomness while routing.
func TestRunWithRouterMatchesTables(t *testing.T) {
	g, err := networks.Hypercube{Dim: 6}.Build()
	if err != nil {
		t.Fatal(err)
	}
	base := Config{Graph: g, InjectionRate: 0.02,
		WarmupCycles: 100, MeasureCycles: 1000, Seed: 11}
	want, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	withRouter := base
	withRouter.Router = topo.NewTable(g)
	got, err := Run(withRouter)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("stats diverge: with router %+v, tables %+v", got, want)
	}
}

// TestRunRouterAdaptiveConflict pins the config error: a deterministic
// router oracle cannot be combined with adaptive minimal routing.
func TestRunRouterAdaptiveConflict(t *testing.T) {
	g, err := networks.Hypercube{Dim: 3}.Build()
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(Config{Graph: g, InjectionRate: 0.01, MeasureCycles: 10,
		Router: topo.NewTable(g), Adaptive: true})
	if err == nil {
		t.Fatal("Router+Adaptive accepted")
	}
}

// TestRunWithAlgebraicRouter runs the materialized simulator with the
// paper's algebraic router over a super-IP graph and checks packets arrive.
func TestRunWithAlgebraicRouter(t *testing.T) {
	net := superip.HSN(2, superip.NucleusHypercube(2))
	g, ix, err := net.BuildWithIndex()
	if err != nil {
		t.Fatal(err)
	}
	r, err := topo.NewAlgebraicWith(net.Super(), topo.NewMaterialized(g, ix))
	if err != nil {
		t.Fatal(err)
	}
	st, err := Run(Config{Graph: g, InjectionRate: 0.02, Router: r,
		WarmupCycles: 100, MeasureCycles: 1000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if st.Delivered == 0 || st.Expired != 0 {
		t.Fatalf("algebraic-routed run lost packets: %+v", st)
	}
}

// TestRunImplicitHypercube drives the sparse simulator over the implicit
// Q10 with e-cube routing and checks conservation and latency sanity.
func TestRunImplicitHypercube(t *testing.T) {
	const dim = 10
	st, err := RunImplicit(ImplicitConfig{
		Topo:          topo.HypercubeTopo{Dim: dim},
		Router:        topo.HypercubeRouter{Dim: dim},
		InjectionRate: 0.01,
		WarmupCycles:  100, MeasureCycles: 1000, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Injected == 0 || st.Delivered == 0 {
		t.Fatalf("no traffic: %+v", st)
	}
	if st.Delivered+st.Expired != st.Injected {
		t.Fatalf("conservation violated: %+v", st)
	}
	// Uniform traffic on Q10 averages dim/2 = 5 hops; with queueing the
	// latency must be at least that and, at 1% load, not wildly above.
	if st.AvgLatency < 4 || st.AvgLatency > 20 {
		t.Fatalf("implausible average latency %v for light-load Q%d", st.AvgLatency, dim)
	}
}

// TestRunImplicitMatchesMaterializedSuperIP cross-checks the implicit
// simulator against the materialized one on the same super-IP network with
// the same algebraic routing discipline. The two runs consume randomness
// differently, so the comparison is statistical: delivery must be complete
// and the average latencies must agree to within a small factor.
func TestRunImplicitMatchesMaterializedSuperIP(t *testing.T) {
	net := superip.HSN(2, superip.NucleusHypercube(3))
	g, ix, err := net.BuildWithIndex()
	if err != nil {
		t.Fatal(err)
	}
	ar, err := topo.NewAlgebraicWith(net.Super(), topo.NewMaterialized(g, ix))
	if err != nil {
		t.Fatal(err)
	}
	mat, err := Run(Config{Graph: g, InjectionRate: 0.02, Router: ar,
		WarmupCycles: 200, MeasureCycles: 2000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	imp, err := topo.NewImplicit(net.Super())
	if err != nil {
		t.Fatal(err)
	}
	air, err := topo.NewAlgebraic(net.Super())
	if err != nil {
		t.Fatal(err)
	}
	ist, err := RunImplicit(ImplicitConfig{Topo: imp, Router: air,
		InjectionRate: 0.02, WarmupCycles: 200, MeasureCycles: 2000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if ist.Delivered == 0 || ist.Expired != 0 {
		t.Fatalf("implicit run lost packets: %+v", ist)
	}
	ratio := ist.AvgLatency / mat.AvgLatency
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("latency mismatch: implicit %v vs materialized %v", ist.AvgLatency, mat.AvgLatency)
	}
}

// TestRunImplicitOffModulePeriods checks that slowing off-module links via
// ModuleOf raises latency, mirroring the materialized simulator's partition
// behavior.
func TestRunImplicitOffModulePeriods(t *testing.T) {
	net := superip.HSN(2, superip.NucleusHypercube(3))
	imp, err := topo.NewImplicit(net.Super())
	if err != nil {
		t.Fatal(err)
	}
	r, err := topo.NewAlgebraic(net.Super())
	if err != nil {
		t.Fatal(err)
	}
	base := ImplicitConfig{Topo: imp, Router: r, InjectionRate: 0.01,
		WarmupCycles: 100, MeasureCycles: 1000, Seed: 2}
	fast, err := RunImplicit(base)
	if err != nil {
		t.Fatal(err)
	}
	slow := base
	slow.OffModulePeriod = 8
	slow.ModuleOf = imp.Module
	slowSt, err := RunImplicit(slow)
	if err != nil {
		t.Fatal(err)
	}
	if slowSt.AvgLatency <= fast.AvgLatency {
		t.Fatalf("off-module period 8 did not raise latency: %v vs %v",
			slowSt.AvgLatency, fast.AvgLatency)
	}
}

// TestRunImplicitDeterminism checks that identical configs reproduce
// identical stats, and that config errors are reported.
func TestRunImplicitDeterminism(t *testing.T) {
	cfg := ImplicitConfig{
		Topo:          topo.HypercubeTopo{Dim: 8},
		Router:        topo.HypercubeRouter{Dim: 8},
		InjectionRate: 0.05,
		WarmupCycles:  50, MeasureCycles: 500, Seed: 77,
	}
	a, err := RunImplicit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunImplicit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}

	bad := cfg
	bad.Router = nil
	if _, err := RunImplicit(bad); err == nil {
		t.Fatal("missing router accepted")
	}
	bad = cfg
	bad.InjectionRate = 1.5
	if _, err := RunImplicit(bad); err == nil {
		t.Fatal("injection rate 1.5 accepted")
	}
}

// loopRouter always routes to a fixed neighbor pair, never reaching dst.
type loopRouter struct{}

func (loopRouter) NextHop(cur, dst int64) (int64, error) {
	return cur ^ 1, nil // bounce between 2k and 2k+1 forever
}

// TestRunImplicitLivelockGuard checks that MaxHops converts a cycling
// router into an error instead of an unbounded run.
func TestRunImplicitLivelockGuard(t *testing.T) {
	_, err := RunImplicit(ImplicitConfig{
		Topo:          topo.HypercubeTopo{Dim: 6},
		Router:        loopRouter{},
		InjectionRate: 0.5,
		WarmupCycles:  10, MeasureCycles: 100, Seed: 1,
		MaxHops: 32,
	})
	if err == nil {
		t.Fatal("livelocked router not detected")
	}
	want := fmt.Sprintf("exceeded %d hops", 32)
	if got := err.Error(); !contains(got, want) {
		t.Fatalf("error %q does not mention hop bound", got)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
