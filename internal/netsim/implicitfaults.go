// Degraded-mode simulation over implicit topologies: RunImplicitFaulty is
// the marriage of RunImplicit (per-node-O(1) memory, never materializes the
// graph) and RunFaulty (scheduled link/node failures and repairs mid-run).
// Where RunFaulty repairs routes by rebuilding O(N) BFS tables, the implicit
// simulator owns no tables at all: it shares a FaultSink (topo.FaultSet)
// with a fault-aware algebraic router, applies the FaultPlan to it as the
// clock passes each event, and lets the router's generator-conjugate detours
// absorb the failures in O(route length) work per affected packet. Fault
// notification is immediate — the fault set IS the topology's liveness, and
// the router's epoch check purges stale cached routes the moment it changes
// — so there is no NotifyDelay and no retransmission protocol; a packet that
// cannot be rerouted (destination dead, region disconnected, or hop budget
// exhausted) is dropped and counted rather than recovered end-to-end.
package netsim

import (
	"fmt"
	"math/rand"

	"repro/internal/obs"
)

// FaultSink is the id-space liveness store shared between RunImplicitFaulty
// and a fault-aware router. It is satisfied by *topo.FaultSet; declaring it
// here keeps netsim decoupled from the topo package. Link mutations are
// directed arcs — the simulator calls both directions on undirected
// topologies.
type FaultSink interface {
	FailLink(u, v int64)
	RepairLink(u, v int64)
	FailNode(u int64)
	RepairNode(u int64)
	LinkDown(u, v int64) bool
	NodeDown(u int64) bool
	Blocked(u, v int64) bool
}

// flaggedRouter is the optional router extension that reports whether a hop
// belongs to a fault-detoured route; topo.FaultAware implements it. Without
// it, DeliveredDegraded stays zero.
type flaggedRouter interface {
	NextHopFlagged(cur, dst int64) (int64, bool, error)
}

// rerouteCounter is the optional router extension exposing cumulative
// reroute/detour-hop counters; topo.FaultAware implements it. The simulator
// snapshots the counters around the run to fill RerouteEvents and
// MisroutedHops.
type rerouteCounter interface {
	RerouteCounts() (reroutes, detourHops uint64)
}

// ImplicitFaultConfig parameterizes fault injection for RunImplicitFaulty.
type ImplicitFaultConfig struct {
	// Plan is the fault schedule (nil or empty = fault-free run). It is
	// validated against the implicit topology (ValidateTopo) — no graph is
	// ever built.
	Plan *FaultPlan
	// Faults is the liveness store the plan is applied to. It MUST be the
	// same object the fault-aware router consults (e.g. the topo.FaultSet a
	// topo.FaultAware was constructed with), otherwise packets keep routing
	// into dead components. Required whenever Plan is non-empty.
	Faults FaultSink
}

// RunImplicitFaulty executes the implicit-topology simulation under fc.Plan.
// With a nil/empty plan it consumes the RNG identically to RunImplicit and
// returns stat-identical results (the embedded Stats match field for field).
// Runs are deterministic in the configuration: fault application, algebraic
// rerouting, and packet drops consume no randomness.
//
// Degraded-mode semantics, mirroring RunFaulty where both have the concept:
//   - Scheduled faults (and repairs) are applied when the clock reaches
//     their cycle: link faults kill the arc (both arcs when the topology is
//     undirected), node faults kill the node and drop everything queued on
//     its outgoing links.
//   - A packet arriving at a dead node is lost.
//   - A packet stranded on a link that just died is re-routed from the
//     link's tail through the (fault-aware) router.
//   - Dead sources stay silent and dead destinations are not selected for
//     injection (the draws still happen, keeping the RNG stream aligned).
//   - A packet exceeding ImplicitConfig.MaxHops is dropped and counted
//     (HopLimitDrops + Lost) instead of aborting the run: under faults,
//     livelock-like trajectories are a property of the fault pattern, not
//     necessarily a router bug. Fault-free RunImplicit keeps its hard error.
//   - A router that cannot produce a next hop (destination dead or region
//     disconnected) costs the packet its life: Lost++, run continues.
func RunImplicitFaulty(cfg ImplicitConfig, fc ImplicitFaultConfig) (ImplicitFaultStats, error) {
	var out ImplicitFaultStats
	if err := cfg.normalize(); err != nil {
		return out, err
	}
	if fc.Plan.Len() > 0 && fc.Faults == nil {
		return out, fmt.Errorf("netsim: a fault plan needs a FaultSink shared with the router")
	}
	if err := fc.Plan.ValidateTopo(cfg.Topo); err != nil {
		return out, err
	}
	n := cfg.Topo.N()
	directed := cfg.Topo.Directed()
	rng := rand.New(rand.NewSource(cfg.Seed))
	faults := fc.Faults
	pb := cfg.Probe // nil-check fast path, as in RunImplicit
	flagged, _ := cfg.Router.(flaggedRouter)
	counter, _ := cfg.Router.(rerouteCounter)
	var baseReroutes, baseDetours uint64
	if counter != nil {
		baseReroutes, baseDetours = counter.RerouteCounts()
	}
	statser, _ := cfg.Router.(routerStatser)
	var routerBase obs.RouterStats
	if statser != nil {
		routerBase = statser.RouterStats()
	}

	// Scheduled events, bucketed by cycle (strike and repair).
	type topoChange struct {
		kind FaultKind
		u, v int64
		down bool
	}
	changesAt := map[int][]topoChange{}
	lastChange := -1
	for _, ev := range fc.Plan.sorted() {
		changesAt[ev.Cycle] = append(changesAt[ev.Cycle], topoChange{kind: ev.Kind, u: int64(ev.U), v: int64(ev.V), down: true})
		if ev.Cycle > lastChange {
			lastChange = ev.Cycle
		}
		if ev.Transient() {
			changesAt[ev.Repair] = append(changesAt[ev.Repair], topoChange{kind: ev.Kind, u: int64(ev.U), v: int64(ev.V), down: false})
			if ev.Repair > lastChange {
				lastChange = ev.Repair
			}
		}
	}

	st := &out.FaultStats
	var latencySum int64
	inFlightMeasured := 0

	sparse := newSparseLinks(cfg.Topo)
	e := &engine{
		pb:         pb,
		store:      sparse,
		ring:       make([][]earrival, cfg.OffModulePeriod*cfg.Flits+1),
		flits:      cfg.Flits,
		cutThrough: cfg.CutThrough,
		period:     implicitPeriod(&cfg),
		total:      cfg.WarmupCycles + cfg.MeasureCycles,
		hopLimit:   cfg.MaxHops,
	}
	e.deadline = e.total + cfg.DrainCycles

	// lose drops a packet; like RunFaulty, loss counters track measured
	// traffic only, so Injected == Delivered + Lost + Expired. The probe,
	// in contrast, sees every dropped copy (measured or not), tagged with
	// where and why it died.
	lose := func(now int, at int64, pkt *epacket, reason obs.DropReason) {
		if pkt.measured {
			st.Lost++
			inFlightMeasured--
		}
		if pb != nil {
			pb.Drop(now, pkt.id, at, reason)
		}
	}
	e.deliver = func(now int, at int64, pkt *epacket) {
		lat := now - pkt.born
		if pkt.measured {
			st.Delivered++
			if pkt.degraded {
				st.DeliveredDegraded++
			}
			inFlightMeasured--
			latencySum += int64(lat)
			if lat > st.MaxLatency {
				st.MaxLatency = lat
			}
		}
		if pb != nil {
			pb.Deliver(now, pkt.id, at, lat, pkt.measured)
		}
	}
	// Livelock watchdog: under faults a hop-budget overrun is a property of
	// the fault pattern, so the packet dies, not the run.
	e.onHopLimit = func(now int, at int64, pkt *epacket) error {
		if pkt.measured {
			st.HopLimitDrops++
		}
		lose(now, at, pkt, obs.DropHopLimit)
		return nil
	}
	e.route = func(now int, at int64, pkt *epacket) (int64, bool, error) {
		var nh int64
		var detoured bool
		var err error
		if flagged != nil {
			nh, detoured, err = flagged.NextHopFlagged(at, pkt.dst)
		} else {
			nh, err = cfg.Router.NextHop(at, pkt.dst)
		}
		if err != nil {
			// Destination dead or no fault-free route derivable: the packet
			// is lost; the run continues. (A non-neighbor next hop, by
			// contrast, is a router bug: the link store's hard error stops
			// the run.)
			lose(now, at, pkt, obs.DropNoRoute)
			return 0, false, nil
		}
		pkt.degraded = pkt.degraded || detoured
		return nh, true, nil
	}

	// strand re-routes everything queued on a link that just died, from the
	// link's tail node; dead-node drops are handled by applyChange.
	strand := func(now int, lk *elink) error {
		q := lk.queue
		lk.queue = nil
		for _, pkt := range q {
			if err := e.enqueue(now, lk.u, pkt); err != nil {
				return err
			}
		}
		return nil
	}
	applyChange := func(now int, c topoChange) error {
		switch c.kind {
		case NodeFault:
			if pb != nil {
				pb.Fault(now, c.u, -1, true, c.down)
			}
			if c.down {
				faults.FailNode(c.u)
				st.FaultsInjected++
				if faults.NodeDown(c.u) {
					// Everything queued on the dead node's outgoing links is
					// lost (first strike or overlapping, the queues are dead
					// either way).
					sparse.eachFrom(c.u, func(lk *elink) {
						for i := range lk.queue {
							lose(now, c.u, &lk.queue[i], obs.DropQueueKilled)
						}
						lk.queue = nil
					})
				}
			} else {
				faults.RepairNode(c.u)
				st.FaultsRepaired++
			}
		case LinkFault:
			if pb != nil {
				pb.Fault(now, c.u, c.v, false, c.down)
			}
			if c.down {
				faults.FailLink(c.u, c.v)
				if !directed {
					faults.FailLink(c.v, c.u)
				}
				st.FaultsInjected++
				// Re-route stranded queues through the fault-aware router.
				for _, arc := range [2][2]int64{{c.u, c.v}, {c.v, c.u}} {
					if directed && arc != [2]int64{c.u, c.v} {
						continue
					}
					if lk := sparse.peek(arc[0], arc[1]); lk != nil && len(lk.queue) > 0 {
						if err := strand(now, lk); err != nil {
							return err
						}
					}
				}
			} else {
				faults.RepairLink(c.u, c.v)
				if !directed {
					faults.RepairLink(c.v, c.u)
				}
				st.FaultsRepaired++
			}
		}
		return nil
	}
	// The fault-set epoch bump on each change invalidates the router's
	// cached source routes.
	e.applyChanges = func(now int) error {
		if cs, hit := changesAt[now]; hit {
			for _, c := range cs {
				if err := applyChange(now, c); err != nil {
					return err
				}
			}
		}
		return nil
	}
	e.arrivalDead = func(now int, node int64, pkt *epacket) bool {
		if faults != nil && faults.NodeDown(node) {
			// Arrived at a dead router: packet lost.
			lose(now, node, pkt, obs.DropDeadRouter)
			return true
		}
		return false
	}
	// Inject new traffic (same RNG stream as RunImplicit; dead sources and
	// sinks skip after the draws).
	var nextID int64
	scriptPos := 0
	e.inject = func(now int) error {
		for k := injectionCount(n, cfg.InjectionRate, rng); k > 0; k-- {
			src := rng.Int63n(n)
			var dst int64
			if cfg.Pattern != nil {
				dst = cfg.Pattern(src, n, rng)
			} else {
				dst = uniformDst64(src, n, rng)
			}
			if dst == src || dst < 0 || dst >= n {
				continue
			}
			if faults != nil && (faults.NodeDown(src) || faults.NodeDown(dst)) {
				continue // dead sources stay silent; dead sinks are skipped
			}
			measured := now >= cfg.WarmupCycles
			if measured {
				st.Injected++
				inFlightMeasured++
			}
			id := nextID
			nextID++
			if pb != nil {
				pb.Inject(now, id, src, dst, measured)
			}
			if err := e.enqueue(now, src, epacket{id: id, dst: dst, born: now, measured: measured}); err != nil {
				return err
			}
		}
		for scriptPos < len(cfg.Script) && cfg.Script[scriptPos].At == now {
			sc := cfg.Script[scriptPos]
			scriptPos++
			if faults != nil && (faults.NodeDown(sc.Src) || faults.NodeDown(sc.Dst)) {
				continue // scripted sends obey the same dead-endpoint rule
			}
			measured := now >= cfg.WarmupCycles
			if measured {
				st.Injected++
				inFlightMeasured++
			}
			id := nextID
			nextID++
			if pb != nil {
				pb.Inject(now, id, sc.Src, sc.Dst, measured)
			}
			if err := e.enqueue(now, sc.Src, epacket{id: id, dst: sc.Dst, born: now, measured: measured}); err != nil {
				return err
			}
		}
		return nil
	}
	e.canStop = func(now int) bool { return inFlightMeasured == 0 && now > lastChange }
	e.blocked = func(lk *elink) bool {
		// Dead tail or dead link: the queue waits for a repair (a link
		// strike re-routes it via strand; this path holds packets queued on
		// links that died while busy).
		return faults != nil && (faults.NodeDown(lk.u) || faults.LinkDown(lk.u, lk.v))
	}

	if err := e.run(); err != nil {
		return out, err
	}
	st.Expired = inFlightMeasured
	if st.Delivered > 0 {
		st.AvgLatency = float64(latencySum) / float64(st.Delivered)
	}
	if cfg.MeasureCycles > 0 {
		st.Throughput = float64(st.Delivered) / float64(n) / float64(cfg.MeasureCycles)
	}
	if counter != nil {
		re, dh := counter.RerouteCounts()
		st.RerouteEvents = int(re - baseReroutes)
		st.MisroutedHops = int(dh - baseDetours)
	}
	st.fillQuantiles(pb)
	if statser != nil {
		out.Router = statser.RouterStats().Delta(routerBase)
		if ro, ok := pb.(obs.RouterObserver); ok {
			ro.ObserveRouter(out.Router)
		}
	}
	return out, nil
}
