package netsim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/obs"
)

// Topology is the neighbor oracle consumed by RunImplicit. It is satisfied
// by the implementations of internal/topo (Implicit, Materialized,
// HypercubeTopo); declaring it here keeps netsim decoupled from that
// package. Neighbors must append to buf[:0] and return a sorted,
// deduplicated, self-loop-free slice. Directed tells the fault machinery
// whether a link fault kills one arc or both.
type Topology interface {
	N() int64
	MaxDegree() int
	Directed() bool
	Neighbors(u int64, buf []int64) []int64
}

// ImplicitConfig parameterizes a simulation over an implicit topology: no
// per-node arrays are ever allocated, so the memory footprint scales with
// the number of in-flight packets and busy links, not with N. This is what
// lets the simulator run super-IP instances 10x and more beyond the largest
// materializable graph.
type ImplicitConfig struct {
	// Topo answers neighbor queries; Router supplies next hops. Both must be
	// per-node O(1) in memory (e.g. topo.Implicit + topo.Algebraic) for the
	// run to stay independent of N. Router is mandatory: there is no table
	// fallback, because BFS tables are exactly the O(N) state this simulator
	// exists to avoid.
	Topo   Topology
	Router Router
	// InjectionRate is the probability per node per cycle of injecting a
	// packet. Per-node Bernoulli draws are simulated exactly for small
	// networks and by a Poisson/normal approximation of the aggregate
	// injection count for large ones (see injectionCount).
	InjectionRate float64
	// WarmupCycles, MeasureCycles, DrainCycles as in Config.
	WarmupCycles, MeasureCycles, DrainCycles int
	// Seed makes runs deterministic.
	Seed int64
	// Flits and CutThrough as in Config.
	Flits      int
	CutThrough bool
	// OffModulePeriod is the service time of links crossing module
	// boundaries as decided by ModuleOf; links inside a module (and all
	// links when ModuleOf is nil) have period 1.
	OffModulePeriod int
	// ModuleOf maps a node to its module id (e.g. topo.Modular.Module of the
	// nucleus-per-module packing). Nil means one module.
	ModuleOf func(u int64) int64
	// Pattern picks the destination for a packet injected at src (nil =
	// uniform random over the other nodes). Returning src skips the
	// injection, as in PatternFunc.
	Pattern func(src int64, n int64, rng *rand.Rand) int64
	// MaxHops aborts the run with an error if any packet exceeds it
	// (default 4096): algebraic routers are deterministic oracles, and a
	// buggy one could otherwise cycle a packet forever.
	MaxHops int
	// Probe observes the run (see internal/obs). Nil (the default) is the
	// fast path: no obs code runs and the stats are bit-for-bit identical
	// to an unprobed run — probes watch the simulation, they never steer
	// it. Event semantics on the sparse simulators are documented in the
	// obs package ("Probe semantics on implicit runs").
	Probe obs.Probe
}

// routerStatser is the optional router extension exposing the cumulative
// RouterStats telemetry snapshot; topo.Algebraic and topo.FaultAware
// implement it. The simulators snapshot it around a run and report the
// delta in ImplicitStats/ImplicitFaultStats.
type routerStatser interface {
	RouterStats() obs.RouterStats
}

// ImplicitStats extends the shared Stats with the router-side telemetry of
// an implicit run. The struct is comparable (fixed-size fields only), so
// determinism tests can compare whole results with ==.
type ImplicitStats struct {
	Stats
	// Router holds the suffix-cache and detour counters the run's Router
	// accumulated during this run (post-run snapshot minus pre-run
	// snapshot; occupancy is the post-run absolute value). Zero when the
	// Router does not expose RouterStats.
	Router obs.RouterStats
}

// ImplicitFaultStats extends FaultStats the same way for RunImplicitFaulty.
type ImplicitFaultStats struct {
	FaultStats
	// Router as in ImplicitStats; under faults it additionally carries the
	// epoch-purge counters and the conjugate vs. local-detour reroute
	// split with the detour-depth histogram.
	Router obs.RouterStats
}

func (cfg *ImplicitConfig) normalize() error {
	if cfg.Topo == nil || cfg.Topo.N() < 2 {
		return fmt.Errorf("netsim: need a topology with at least 2 nodes")
	}
	if cfg.Router == nil {
		return fmt.Errorf("netsim: implicit runs need a Router (no table fallback)")
	}
	if cfg.InjectionRate < 0 || cfg.InjectionRate > 1 {
		return fmt.Errorf("netsim: injection rate %v out of [0,1]", cfg.InjectionRate)
	}
	if cfg.OffModulePeriod < 1 {
		cfg.OffModulePeriod = 1
	}
	if cfg.DrainCycles == 0 {
		cfg.DrainCycles = 10 * (cfg.WarmupCycles + cfg.MeasureCycles)
	}
	if cfg.Flits < 1 {
		cfg.Flits = 1
	}
	if cfg.MaxHops < 1 {
		cfg.MaxHops = 4096
	}
	return nil
}

// injectionCount draws the number of packets injected this cycle. Up to
// 2^16 nodes the per-node Bernoulli draws are simulated exactly, matching
// the materialized simulator's semantics; beyond that the aggregate count is
// sampled from the Poisson approximation of Binomial(N, rate) (exact
// multiplicative sampling for small means, a normal approximation above),
// because iterating tens of millions of nodes every cycle would dominate the
// run. Sources are then drawn uniformly, so one node can inject twice in a
// cycle — a vanishing-probability event at the scales where the
// approximation is active.
func injectionCount(n int64, rate float64, rng *rand.Rand) int64 {
	if n <= 1<<16 {
		k := int64(0)
		for i := int64(0); i < n; i++ {
			if rng.Float64() < rate {
				k++
			}
		}
		return k
	}
	lambda := float64(n) * rate
	if lambda == 0 {
		return 0
	}
	if lambda < 30 {
		// Knuth's multiplicative Poisson sampler.
		limit := math.Exp(-lambda)
		k := int64(-1)
		p := 1.0
		for p > limit {
			k++
			p *= rng.Float64()
		}
		return k
	}
	k := int64(math.Round(lambda + math.Sqrt(lambda)*rng.NormFloat64()))
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	return k
}

type ipacket struct {
	id       int64
	dst      int64
	born     int
	hops     int
	measured bool
	// degraded marks a packet that took at least one fault detour
	// (RunImplicitFaulty only; always false in fault-free runs).
	degraded bool
}

// ilink is the FIFO of one directed link u -> v. Only links that currently
// hold or recently transmitted a packet exist in memory.
type ilink struct {
	u, v   int64
	queue  []ipacket
	freeAt int
}

// RunImplicit executes the simulation against an implicit topology. It is
// the sparse, per-node-O(1) counterpart of Run: link FIFOs and the future-
// arrival ring are allocated on demand and reclaimed when idle, and next
// hops come from the algebraic Router, so total memory is proportional to
// the in-flight packet population — independent of N. Runs are deterministic
// in the configuration (including Seed) and unperturbed by cfg.Probe.
func RunImplicit(cfg ImplicitConfig) (ImplicitStats, error) {
	var out ImplicitStats
	if err := cfg.normalize(); err != nil {
		return out, err
	}
	n := cfg.Topo.N()
	deg := int64(cfg.Topo.MaxDegree())
	rng := rand.New(rand.NewSource(cfg.Seed))
	pb := cfg.Probe // nil-check fast path: no obs code runs uninstrumented
	statser, _ := cfg.Router.(routerStatser)
	var routerBase obs.RouterStats
	if statser != nil {
		routerBase = statser.RouterStats()
	}

	period := func(u, v int64) int {
		if cfg.ModuleOf == nil || cfg.ModuleOf(u) == cfg.ModuleOf(v) {
			return 1
		}
		return cfg.OffModulePeriod
	}

	// Sparse link state: key = u*deg + port, where port is the index of the
	// target in u's sorted neighbor list. active keeps insertion order so
	// iteration (and therefore the whole run) is deterministic.
	links := make(map[int64]*ilink)
	var active []int64
	nbrBuf := make([]int64, 0, deg)
	linkFor := func(u, v int64) (*ilink, error) {
		nbrBuf = cfg.Topo.Neighbors(u, nbrBuf)
		port := sort.Search(len(nbrBuf), func(i int) bool { return nbrBuf[i] >= v })
		if port == len(nbrBuf) || nbrBuf[port] != v {
			return nil, fmt.Errorf("netsim: next hop %d from %d is not a neighbor", v, u)
		}
		key := u*deg + int64(port)
		lk, ok := links[key]
		if !ok {
			lk = &ilink{u: u, v: v}
			links[key] = lk
			active = append(active, key)
		}
		return lk, nil
	}

	maxDelay := cfg.OffModulePeriod * cfg.Flits
	type iarrival struct {
		node int64
		pkt  ipacket
	}
	ring := make([][]iarrival, maxDelay+1)

	st := &out.Stats
	var latencySum int64
	inFlightMeasured := 0
	enqueue := func(now int, at int64, pkt ipacket) error {
		if pkt.dst == at {
			lat := now - pkt.born
			if pkt.measured {
				st.Delivered++
				latencySum += int64(lat)
				if lat > st.MaxLatency {
					st.MaxLatency = lat
				}
			}
			if pb != nil {
				pb.Deliver(now, pkt.id, at, lat, pkt.measured)
			}
			return nil
		}
		if pkt.hops >= cfg.MaxHops {
			return fmt.Errorf("netsim: packet for %d exceeded %d hops at %d (router livelock?)", pkt.dst, cfg.MaxHops, at)
		}
		nh, err := cfg.Router.NextHop(at, pkt.dst)
		if err != nil {
			return err
		}
		lk, err := linkFor(at, nh)
		if err != nil {
			return err
		}
		lk.queue = append(lk.queue, pkt)
		if pb != nil {
			pb.Enqueue(now, pkt.id, at, nh, len(lk.queue))
		}
		return nil
	}

	uniformDst := func(src int64) int64 {
		d := rng.Int63n(n - 1)
		if d >= src {
			d++
		}
		return d
	}

	total := cfg.WarmupCycles + cfg.MeasureCycles
	deadline := total + cfg.DrainCycles
	var nextID int64
	for now := 0; now < deadline; now++ {
		if pb != nil {
			pb.Tick(now)
		}
		// Deliver arrivals scheduled for this cycle.
		slot := now % len(ring)
		for _, a := range ring[slot] {
			if a.pkt.measured && a.pkt.dst == a.node {
				inFlightMeasured--
			}
			if err := enqueue(now, a.node, a.pkt); err != nil {
				return out, err
			}
		}
		ring[slot] = ring[slot][:0]
		// Inject new traffic.
		if now < total {
			for k := injectionCount(n, cfg.InjectionRate, rng); k > 0; k-- {
				src := rng.Int63n(n)
				var dst int64
				if cfg.Pattern != nil {
					dst = cfg.Pattern(src, n, rng)
				} else {
					dst = uniformDst(src)
				}
				if dst == src || dst < 0 || dst >= n {
					continue
				}
				measured := now >= cfg.WarmupCycles
				if measured {
					st.Injected++
					inFlightMeasured++
				}
				id := nextID
				nextID++
				if pb != nil {
					pb.Inject(now, id, src, dst, measured)
				}
				if err := enqueue(now, src, ipacket{id: id, dst: dst, born: now, measured: measured}); err != nil {
					return out, err
				}
			}
		} else if inFlightMeasured == 0 {
			break
		}
		// Advance links: each free link transmits the head of its queue.
		// Idle links (empty queue, service period elapsed) are dropped from
		// the map; compaction preserves order for determinism.
		live := active[:0]
		for _, key := range active {
			lk := links[key]
			if len(lk.queue) == 0 {
				if lk.freeAt <= now {
					delete(links, key)
					continue
				}
				live = append(live, key)
				continue
			}
			if lk.freeAt > now {
				live = append(live, key)
				continue
			}
			pkt := lk.queue[0]
			lk.queue = lk.queue[1:]
			if len(lk.queue) == 0 {
				lk.queue = nil // release the backing array of drained FIFOs
			}
			p := period(lk.u, lk.v)
			occupy := p * cfg.Flits
			lk.freeAt = now + occupy
			delay := occupy
			if cfg.CutThrough {
				delay = p
			}
			pkt.hops++
			if pb != nil {
				pb.Hop(now, pkt.id, lk.u, lk.v, occupy, len(lk.queue))
			}
			ring[(now+delay)%len(ring)] = append(ring[(now+delay)%len(ring)], iarrival{node: lk.v, pkt: pkt})
			live = append(live, key)
		}
		active = live
	}
	st.Expired = inFlightMeasured
	if st.Delivered > 0 {
		st.AvgLatency = float64(latencySum) / float64(st.Delivered)
	}
	if cfg.MeasureCycles > 0 {
		st.Throughput = float64(st.Delivered) / float64(n) / float64(cfg.MeasureCycles)
	}
	st.fillQuantiles(pb)
	if statser != nil {
		out.Router = statser.RouterStats().Delta(routerBase)
		if ro, ok := pb.(obs.RouterObserver); ok {
			ro.ObserveRouter(out.Router)
		}
	}
	return out, nil
}
