package netsim

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/obs"
)

// Topology is the neighbor oracle consumed by RunImplicit. It is satisfied
// by the implementations of internal/topo (Implicit, Materialized,
// HypercubeTopo); declaring it here keeps netsim decoupled from that
// package. Neighbors must append to buf[:0] and return a sorted,
// deduplicated, self-loop-free slice. Directed tells the fault machinery
// whether a link fault kills one arc or both.
type Topology interface {
	N() int64
	MaxDegree() int
	Directed() bool
	Neighbors(u int64, buf []int64) []int64
}

// ImplicitConfig parameterizes a simulation over an implicit topology: no
// per-node arrays are ever allocated, so the memory footprint scales with
// the number of in-flight packets and busy links, not with N. This is what
// lets the simulator run super-IP instances 10x and more beyond the largest
// materializable graph.
type ImplicitConfig struct {
	// Topo answers neighbor queries; Router supplies next hops. Both must be
	// per-node O(1) in memory (e.g. topo.Implicit + topo.Algebraic) for the
	// run to stay independent of N. Router is mandatory: there is no table
	// fallback, because BFS tables are exactly the O(N) state this simulator
	// exists to avoid.
	Topo   Topology
	Router Router
	// InjectionRate is the probability per node per cycle of injecting a
	// packet. Per-node Bernoulli draws are simulated exactly for small
	// networks and by a Poisson/normal approximation of the aggregate
	// injection count for large ones (see injectionCount).
	InjectionRate float64
	// WarmupCycles, MeasureCycles, DrainCycles as in Config.
	WarmupCycles, MeasureCycles, DrainCycles int
	// Seed makes runs deterministic.
	Seed int64
	// Flits and CutThrough as in Config.
	Flits      int
	CutThrough bool
	// OffModulePeriod is the service time of links crossing module
	// boundaries as decided by ModuleOf; links inside a module (and all
	// links when ModuleOf is nil) have period 1.
	OffModulePeriod int
	// ModuleOf maps a node to its module id (e.g. topo.Modular.Module of the
	// nucleus-per-module packing). Nil means one module.
	ModuleOf func(u int64) int64
	// Pattern picks the destination for a packet injected at src (nil =
	// uniform random over the other nodes). Returning src skips the
	// injection, as in PatternFunc.
	Pattern func(src int64, n int64, rng *rand.Rand) int64
	// MaxHops aborts the run with an error if any packet exceeds it
	// (default 4096): algebraic routers are deterministic oracles, and a
	// buggy one could otherwise cycle a packet forever.
	MaxHops int
	// Script injects the listed packets at their scheduled cycles, after
	// that cycle's random injections (entries are stably sorted by At, so
	// same-cycle order is preserved). Scripted injections consume no
	// randomness — adding a script leaves the random traffic stream
	// bit-for-bit untouched — and are counted in the stats like any other
	// injection (measured iff At >= WarmupCycles). Every At must lie in
	// [0, WarmupCycles+MeasureCycles). This is how a collective schedule
	// (e.g. the sends of a collectives broadcast tree) is replayed through
	// the simulator, typically with InjectionRate 0 against an idle
	// network or a positive rate for background load.
	Script []Injection
	// Probe observes the run (see internal/obs). Nil (the default) is the
	// fast path: no obs code runs and the stats are bit-for-bit identical
	// to an unprobed run — probes watch the simulation, they never steer
	// it. Event semantics on the sparse simulators are documented in the
	// obs package ("Probe semantics on implicit runs").
	Probe obs.Probe
}

// routerStatser is the optional router extension exposing the cumulative
// RouterStats telemetry snapshot; topo.Algebraic and topo.FaultAware
// implement it. The simulators snapshot it around a run and report the
// delta in ImplicitStats/ImplicitFaultStats.
type routerStatser interface {
	RouterStats() obs.RouterStats
}

// ImplicitStats extends the shared Stats with the router-side telemetry of
// an implicit run. The struct is comparable (fixed-size fields only), so
// determinism tests can compare whole results with ==.
type ImplicitStats struct {
	Stats
	// Router holds the suffix-cache and detour counters the run's Router
	// accumulated during this run (post-run snapshot minus pre-run
	// snapshot; occupancy is the post-run absolute value). Zero when the
	// Router does not expose RouterStats.
	Router obs.RouterStats
}

// ImplicitFaultStats extends FaultStats the same way for RunImplicitFaulty.
type ImplicitFaultStats struct {
	FaultStats
	// Router as in ImplicitStats; under faults it additionally carries the
	// epoch-purge counters and the conjugate vs. local-detour reroute
	// split with the detour-depth histogram.
	Router obs.RouterStats
}

// Injection is one scripted packet injection; see ImplicitConfig.Script.
type Injection struct {
	At  int   // cycle to inject on, in [0, WarmupCycles+MeasureCycles)
	Src int64 // source node
	Dst int64 // destination node, != Src
}

func (cfg *ImplicitConfig) normalize() error {
	if cfg.Topo == nil || cfg.Topo.N() < 2 {
		return fmt.Errorf("netsim: need a topology with at least 2 nodes")
	}
	if cfg.Router == nil {
		return fmt.Errorf("netsim: implicit runs need a Router (no table fallback)")
	}
	if cfg.InjectionRate < 0 || cfg.InjectionRate > 1 {
		return fmt.Errorf("netsim: injection rate %v out of [0,1]", cfg.InjectionRate)
	}
	if cfg.OffModulePeriod < 1 {
		cfg.OffModulePeriod = 1
	}
	if cfg.DrainCycles == 0 {
		cfg.DrainCycles = 10 * (cfg.WarmupCycles + cfg.MeasureCycles)
	}
	if cfg.Flits < 1 {
		cfg.Flits = 1
	}
	if cfg.MaxHops < 1 {
		cfg.MaxHops = 4096
	}
	n := cfg.Topo.N()
	for i, sc := range cfg.Script {
		if sc.At < 0 || sc.At >= cfg.WarmupCycles+cfg.MeasureCycles {
			return fmt.Errorf("netsim: scripted injection %d at cycle %d outside [0,%d)",
				i, sc.At, cfg.WarmupCycles+cfg.MeasureCycles)
		}
		if sc.Src < 0 || sc.Src >= n || sc.Dst < 0 || sc.Dst >= n || sc.Src == sc.Dst {
			return fmt.Errorf("netsim: scripted injection %d: invalid pair %d -> %d", i, sc.Src, sc.Dst)
		}
	}
	sort.SliceStable(cfg.Script, func(i, j int) bool { return cfg.Script[i].At < cfg.Script[j].At })
	return nil
}

// implicitPeriod is the link service-period policy of the implicit
// configurations, shared by RunImplicit and RunImplicitFaulty: links
// crossing a ModuleOf boundary cost OffModulePeriod, everything else 1.
func implicitPeriod(cfg *ImplicitConfig) func(u, v int64) int {
	return func(u, v int64) int {
		if cfg.ModuleOf == nil || cfg.ModuleOf(u) == cfg.ModuleOf(v) {
			return 1
		}
		return cfg.OffModulePeriod
	}
}

// RunImplicit executes the simulation against an implicit topology. It is
// the sparse, per-node-O(1) counterpart of Run: link FIFOs and the future-
// arrival ring are allocated on demand and reclaimed when idle, and next
// hops come from the algebraic Router, so total memory is proportional to
// the in-flight packet population — independent of N. Runs are deterministic
// in the configuration (including Seed) and unperturbed by cfg.Probe.
func RunImplicit(cfg ImplicitConfig) (ImplicitStats, error) {
	var out ImplicitStats
	if err := cfg.normalize(); err != nil {
		return out, err
	}
	n := cfg.Topo.N()
	rng := rand.New(rand.NewSource(cfg.Seed))
	statser, _ := cfg.Router.(routerStatser)
	var routerBase obs.RouterStats
	if statser != nil {
		routerBase = statser.RouterStats()
	}

	st := &out.Stats
	var latencySum int64
	inFlightMeasured := 0
	var nextID int64

	e := &engine{
		pb:         cfg.Probe, // nil fast path: no obs code runs uninstrumented
		store:      newSparseLinks(cfg.Topo),
		ring:       make([][]earrival, cfg.OffModulePeriod*cfg.Flits+1),
		flits:      cfg.Flits,
		cutThrough: cfg.CutThrough,
		period:     implicitPeriod(&cfg),
		total:      cfg.WarmupCycles + cfg.MeasureCycles,
		hopLimit:   cfg.MaxHops,
	}
	e.deadline = e.total + cfg.DrainCycles
	e.route = func(_ int, at int64, pkt *epacket) (int64, bool, error) {
		nh, err := cfg.Router.NextHop(at, pkt.dst)
		if err != nil {
			return 0, false, err
		}
		return nh, true, nil
	}
	// Algebraic routers are deterministic oracles: a packet that exceeds
	// the hop budget in a fault-free run means a cycling router, which is a
	// bug, so the run aborts.
	e.onHopLimit = func(_ int, at int64, pkt *epacket) error {
		return fmt.Errorf("netsim: packet for %d exceeded %d hops at %d (router livelock?)", pkt.dst, cfg.MaxHops, at)
	}
	e.deliver = func(now int, at int64, pkt *epacket) {
		lat := now - pkt.born
		if pkt.measured {
			st.Delivered++
			inFlightMeasured--
			latencySum += int64(lat)
			if lat > st.MaxLatency {
				st.MaxLatency = lat
			}
		}
		if e.pb != nil {
			e.pb.Deliver(now, pkt.id, at, lat, pkt.measured)
		}
	}
	scriptPos := 0
	e.inject = func(now int) error {
		for k := injectionCount(n, cfg.InjectionRate, rng); k > 0; k-- {
			src := rng.Int63n(n)
			var dst int64
			if cfg.Pattern != nil {
				dst = cfg.Pattern(src, n, rng)
			} else {
				dst = uniformDst64(src, n, rng)
			}
			if dst == src || dst < 0 || dst >= n {
				continue
			}
			measured := now >= cfg.WarmupCycles
			if measured {
				st.Injected++
				inFlightMeasured++
			}
			id := nextID
			nextID++
			if e.pb != nil {
				e.pb.Inject(now, id, src, dst, measured)
			}
			if err := e.enqueue(now, src, epacket{id: id, dst: dst, born: now, measured: measured}); err != nil {
				return err
			}
		}
		for scriptPos < len(cfg.Script) && cfg.Script[scriptPos].At == now {
			sc := cfg.Script[scriptPos]
			scriptPos++
			measured := now >= cfg.WarmupCycles
			if measured {
				st.Injected++
				inFlightMeasured++
			}
			id := nextID
			nextID++
			if e.pb != nil {
				e.pb.Inject(now, id, sc.Src, sc.Dst, measured)
			}
			if err := e.enqueue(now, sc.Src, epacket{id: id, dst: sc.Dst, born: now, measured: measured}); err != nil {
				return err
			}
		}
		return nil
	}
	e.canStop = func(int) bool { return inFlightMeasured == 0 }

	if err := e.run(); err != nil {
		return out, err
	}
	st.Expired = inFlightMeasured
	if st.Delivered > 0 {
		st.AvgLatency = float64(latencySum) / float64(st.Delivered)
	}
	if cfg.MeasureCycles > 0 {
		st.Throughput = float64(st.Delivered) / float64(n) / float64(cfg.MeasureCycles)
	}
	st.fillQuantiles(e.pb)
	if statser != nil {
		out.Router = statser.RouterStats().Delta(routerBase)
		if ro, ok := e.pb.(obs.RouterObserver); ok {
			ro.ObserveRouter(out.Router)
		}
	}
	return out, nil
}
