// Sharded parallel simulation: RunSharded partitions an implicit topology's
// nodes by module id into fixed logical lanes, runs one engine per lane, and
// executes the lanes on Shards worker goroutines under a conservative
// lookahead window — classic conservative parallel discrete-event simulation
// with the window set to the minimum cross-lane link delay. Because lanes
// (not workers) own all mutable state — link FIFOs, arrival rings, RNG
// streams, routers, fault sets, statistics, probe buffers — and cross-lane
// packets are exchanged only at window barriers in a fixed (destination
// lane, source lane, FIFO order) merge, the results are bit-for-bit
// identical for every Shards value: Shards chooses how many lanes run at
// once, never what they compute. TestShardedDeterminism pins this.
//
// The window works because lanes partition modules: every cross-lane link
// crosses a module boundary, so its delay is exactly OffModulePeriod (cut-
// through) or OffModulePeriod*Flits (store-and-forward) cycles, and a packet
// transmitted during window k cannot arrive before window k+1 begins. Intra-
// lane traffic never waits for a barrier.
//
// RunSharded draws its own per-lane RNG streams (split from Seed), so its
// statistics are not comparable packet-for-packet with RunImplicit's single
// global stream; the sequential engines remain the reference for that. What
// the sharded run preserves is the model: same injection law per node, same
// routing, same link service, same fault semantics as RunImplicitFaulty.
package netsim

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/obs"
)

// ModuleSpace is the closed-form module partition the sharded simulator
// shards by: a dense module id space with uniform module size and an O(1)
// inverse enumeration. topo.Implicit (nucleus-per-module packing) and
// topo.SubcubeSpace (hypercube subcubes) implement it. Implementations must
// be safe for concurrent use — every lane queries the space while routing
// cross-lane traffic.
type ModuleSpace interface {
	// Modules returns the module count M_total; ids are dense in [0, M_total).
	Modules() int64
	// Module returns the module id of node u.
	Module(u int64) int64
	// ModuleSize returns the uniform node count of every module.
	ModuleSize() int64
	// ModuleNode returns the off-th node of module mod, off in
	// [0, ModuleSize()); enumerating off yields each member exactly once.
	ModuleNode(mod, off int64) int64
}

// identitySpace is the degenerate partition used when no ModuleSpace is
// configured: every node is its own module (and all links have period 1,
// mirroring ImplicitConfig.ModuleOf == nil).
type identitySpace struct{ n int64 }

func (s identitySpace) Modules() int64              { return s.n }
func (s identitySpace) Module(u int64) int64        { return u }
func (s identitySpace) ModuleSize() int64           { return 1 }
func (s identitySpace) ModuleNode(m, _ int64) int64 { return m }

// ShardedConfig parameterizes RunSharded.
type ShardedConfig struct {
	// NewLane builds one lane's private simulation oracles: the topology,
	// the router, and (for faulty runs) the fault sink the router consults.
	// It is called Lanes times, because none of the three is required to be
	// safe for concurrent use — each lane owns its own instances (e.g. one
	// topo.NewImplicit + topo.NewFaultAware + topo.NewFaultSet triple per
	// call). Fault-free runs may return a nil FaultSink.
	NewLane func() (Topology, Router, FaultSink, error)
	// Space is the module partition to shard by; lane(u) = Module(u) %
	// Lanes. Links crossing a module boundary cost OffModulePeriod, links
	// inside a module cost 1. Nil means no module structure: every link has
	// period 1 and nodes are dealt to lanes round-robin by id.
	Space ModuleSpace
	// InjectionRate, WarmupCycles, MeasureCycles, DrainCycles, Seed, Flits,
	// CutThrough, OffModulePeriod, MaxHops as in ImplicitConfig. Seed is
	// split into per-lane streams, so two runs differing only in Shards
	// draw identical randomness.
	InjectionRate                            float64
	WarmupCycles, MeasureCycles, DrainCycles int
	Seed                                     int64
	Flits                                    int
	CutThrough                               bool
	OffModulePeriod                          int
	MaxHops                                  int
	// Shards is the worker goroutine count (default 1). Any value from 1
	// to Lanes produces identical results; values above Lanes are clamped.
	Shards int
	// Lanes is the logical partition count (default 64). It IS part of the
	// run's identity: changing Lanes re-deals nodes to RNG streams and
	// changes results; changing Shards never does.
	Lanes int
	// Plan schedules faults as in ImplicitFaultConfig (nil/empty =
	// fault-free). Every lane applies the full plan to its own FaultSink at
	// the scheduled cycles — liveness is global knowledge — while queue
	// kills and stranded-packet re-routes happen only in the owning lane.
	Plan *FaultPlan
	// Pattern as in ImplicitConfig; it must depend only on its arguments
	// (it is called from concurrent lanes with per-lane RNGs).
	Pattern func(src int64, n int64, rng *rand.Rand) int64
	// Probe observes the run. Lanes buffer their events privately
	// (obs.EventLog) and the coordinator replays them between windows —
	// Tick(c), then each lane's cycle-c events in lane order — so the
	// probe runs on one goroutine and sees one deterministic sequence
	// regardless of Shards.
	Probe obs.Probe
}

func (cfg *ShardedConfig) normalize() error {
	if cfg.NewLane == nil {
		return fmt.Errorf("netsim: sharded runs need a NewLane factory")
	}
	if cfg.InjectionRate < 0 || cfg.InjectionRate > 1 {
		return fmt.Errorf("netsim: injection rate %v out of [0,1]", cfg.InjectionRate)
	}
	if cfg.Lanes < 1 {
		cfg.Lanes = 64
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.Shards > cfg.Lanes {
		cfg.Shards = cfg.Lanes
	}
	if cfg.OffModulePeriod < 1 {
		cfg.OffModulePeriod = 1
	}
	if cfg.DrainCycles == 0 {
		cfg.DrainCycles = 10 * (cfg.WarmupCycles + cfg.MeasureCycles)
	}
	if cfg.Flits < 1 {
		cfg.Flits = 1
	}
	if cfg.MaxHops < 1 {
		cfg.MaxHops = 4096
	}
	return nil
}

// laneSeed splits the run seed into per-lane streams (splitmix64 finalizer:
// well-mixed, collision-free in the lane index).
func laneSeed(seed int64, lane int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(lane+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// laneSend is one cross-lane packet in a lane's outbox: deliver pkt to node
// at the given cycle, in the destination lane's ring.
type laneSend struct {
	cycle int
	node  int64
	pkt   epacket
}

// laneChange is a scheduled fault event in the form every lane applies.
type laneChange struct {
	kind FaultKind
	u, v int64
	down bool
}

// planChanges buckets the plan by cycle and returns the last event cycle
// (-1 for an empty plan). The map is built once and read concurrently.
func planChanges(p *FaultPlan) (map[int][]laneChange, int) {
	changesAt := map[int][]laneChange{}
	lastChange := -1
	for _, ev := range p.sorted() {
		changesAt[ev.Cycle] = append(changesAt[ev.Cycle], laneChange{kind: ev.Kind, u: int64(ev.U), v: int64(ev.V), down: true})
		if ev.Cycle > lastChange {
			lastChange = ev.Cycle
		}
		if ev.Transient() {
			changesAt[ev.Repair] = append(changesAt[ev.Repair], laneChange{kind: ev.Kind, u: int64(ev.U), v: int64(ev.V), down: false})
			if ev.Repair > lastChange {
				lastChange = ev.Repair
			}
		}
	}
	return changesAt, lastChange
}

// simLane is one lane: an engine plus everything it owns.
type simLane struct {
	idx    int
	topo   Topology
	router Router
	faults FaultSink
	eng    *engine
	sparse *sparseLinks
	rng    *rand.Rand
	log    *obs.EventLog
	outbox [][]laneSend // indexed by destination lane

	st         FaultStats
	latencySum int64
	inFlight   int // measured packets injected here minus measured packets retired here (may go negative; the lane sum is the global in-flight count)
	nOwned     int64
	nextSeq    int64
	err        error

	statser                 routerStatser
	routerBase              obs.RouterStats
	counter                 rerouteCounter
	rerouteBase, detourBase uint64
}

// RunSharded executes the implicit-topology simulation partitioned into
// cfg.Lanes lanes on cfg.Shards workers. Results are deterministic in the
// configuration minus Shards: for fixed everything-else, every Shards value
// produces identical ImplicitFaultStats and an identical probe event
// sequence. With a nil/empty Plan the fault machinery is disabled and the
// run mirrors RunImplicit's semantics; with a plan it mirrors
// RunImplicitFaulty's (drops counted, no retransmission).
func RunSharded(cfg ShardedConfig) (ImplicitFaultStats, error) {
	var out ImplicitFaultStats
	if err := cfg.normalize(); err != nil {
		return out, err
	}
	faulty := cfg.Plan.Len() > 0

	lanes := make([]*simLane, cfg.Lanes)
	for i := range lanes {
		t, r, fs, err := cfg.NewLane()
		if err != nil {
			return out, fmt.Errorf("netsim: lane %d: %w", i, err)
		}
		if t == nil || r == nil {
			return out, fmt.Errorf("netsim: lane %d: NewLane returned a nil topology or router", i)
		}
		if faulty && fs == nil {
			return out, fmt.Errorf("netsim: lane %d: a fault plan needs a FaultSink shared with the lane's router", i)
		}
		lanes[i] = &simLane{idx: i, topo: t, router: r, faults: fs}
	}
	n := lanes[0].topo.N()
	if n < 2 {
		return out, fmt.Errorf("netsim: need a topology with at least 2 nodes")
	}
	directed := lanes[0].topo.Directed()
	for _, ln := range lanes[1:] {
		if ln.topo.N() != n {
			return out, fmt.Errorf("netsim: lane %d topology has %d nodes, lane 0 has %d", ln.idx, ln.topo.N(), n)
		}
	}
	if err := cfg.Plan.ValidateTopo(lanes[0].topo); err != nil {
		return out, err
	}

	space := cfg.Space
	if space == nil {
		space = identitySpace{n: n}
	}
	if space.Modules()*space.ModuleSize() != n {
		return out, fmt.Errorf("netsim: module space covers %d*%d nodes, topology has %d",
			space.Modules(), space.ModuleSize(), n)
	}
	L := int64(cfg.Lanes)
	laneOf := func(u int64) int { return int(space.Module(u) % L) }
	period := func(u, v int64) int {
		if cfg.Space == nil || space.Module(u) == space.Module(v) {
			return 1
		}
		return cfg.OffModulePeriod
	}
	// The conservative lookahead: every cross-lane link crosses a module
	// boundary, so its delay is exactly this many cycles and arrivals from
	// window k land in window k+1 or later.
	crossPeriod := 1
	if cfg.Space != nil {
		crossPeriod = cfg.OffModulePeriod
	}
	window := crossPeriod
	if !cfg.CutThrough {
		window *= cfg.Flits
	}
	ringLen := crossPeriod*cfg.Flits + 1

	total := cfg.WarmupCycles + cfg.MeasureCycles
	deadline := total + cfg.DrainCycles
	changesAt, lastChange := planChanges(cfg.Plan)
	M, S := space.Modules(), space.ModuleSize()

	for _, ln := range lanes {
		ln := ln
		ln.rng = rand.New(rand.NewSource(laneSeed(cfg.Seed, ln.idx)))
		ln.outbox = make([][]laneSend, cfg.Lanes)
		ln.sparse = newSparseLinks(ln.topo)
		if int64(ln.idx) < M {
			ln.nOwned = ((M-1-int64(ln.idx))/L + 1) * S
		}
		ln.statser, _ = ln.router.(routerStatser)
		if ln.statser != nil {
			ln.routerBase = ln.statser.RouterStats()
		}
		ln.counter, _ = ln.router.(rerouteCounter)
		if ln.counter != nil {
			ln.rerouteBase, ln.detourBase = ln.counter.RerouteCounts()
		}
		ln.eng = &engine{
			store:      ln.sparse,
			ring:       make([][]earrival, ringLen),
			flits:      cfg.Flits,
			cutThrough: cfg.CutThrough,
			period:     period,
			total:      total,
			deadline:   deadline,
			hopLimit:   cfg.MaxHops,
			canStop:    func(int) bool { return false }, // the coordinator stops runs at barriers
		}
		if cfg.Probe != nil {
			ln.log = &obs.EventLog{}
			ln.eng.pb = ln.log
		}
		e, pb := ln.eng, ln.eng.pb
		lose := func(now int, at int64, pkt *epacket, reason obs.DropReason) {
			if pkt.measured {
				ln.st.Lost++
				ln.inFlight--
			}
			if pb != nil {
				pb.Drop(now, pkt.id, at, reason)
			}
		}
		e.deliver = func(now int, at int64, pkt *epacket) {
			lat := now - pkt.born
			if pkt.measured {
				ln.st.Delivered++
				if pkt.degraded {
					ln.st.DeliveredDegraded++
				}
				ln.inFlight--
				ln.latencySum += int64(lat)
				if lat > ln.st.MaxLatency {
					ln.st.MaxLatency = lat
				}
			}
			if pb != nil {
				pb.Deliver(now, pkt.id, at, lat, pkt.measured)
			}
		}
		flagged, _ := ln.router.(flaggedRouter)
		e.route = func(now int, at int64, pkt *epacket) (int64, bool, error) {
			var nh int64
			var detoured bool
			var err error
			if faulty && flagged != nil {
				nh, detoured, err = flagged.NextHopFlagged(at, pkt.dst)
			} else {
				nh, err = ln.router.NextHop(at, pkt.dst)
			}
			if err != nil {
				if !faulty {
					return 0, false, err
				}
				lose(now, at, pkt, obs.DropNoRoute)
				return 0, false, nil
			}
			pkt.degraded = pkt.degraded || detoured
			return nh, true, nil
		}
		e.onHopLimit = func(now int, at int64, pkt *epacket) error {
			if !faulty {
				return fmt.Errorf("netsim: packet for %d exceeded %d hops at %d (router livelock?)", pkt.dst, cfg.MaxHops, at)
			}
			if pkt.measured {
				ln.st.HopLimitDrops++
			}
			lose(now, at, pkt, obs.DropHopLimit)
			return nil
		}
		e.crossSend = func(now, delay int, dst int64, pkt epacket) bool {
			d := laneOf(dst)
			if d == ln.idx {
				return false
			}
			ln.outbox[d] = append(ln.outbox[d], laneSend{cycle: now + delay, node: dst, pkt: pkt})
			return true
		}
		e.inject = func(now int) error {
			for k := injectionCount(ln.nOwned, cfg.InjectionRate, ln.rng); k > 0; k-- {
				i := ln.rng.Int63n(ln.nOwned)
				src := space.ModuleNode(int64(ln.idx)+(i/S)*L, i%S)
				var dst int64
				if cfg.Pattern != nil {
					dst = cfg.Pattern(src, n, ln.rng)
				} else {
					dst = uniformDst64(src, n, ln.rng)
				}
				if dst == src || dst < 0 || dst >= n {
					continue
				}
				if faulty && (ln.faults.NodeDown(src) || ln.faults.NodeDown(dst)) {
					continue // dead sources stay silent; dead sinks are skipped
				}
				measured := now >= cfg.WarmupCycles
				if measured {
					ln.st.Injected++
					ln.inFlight++
				}
				id := ln.nextSeq*L + int64(ln.idx) // unique and Shards-independent
				ln.nextSeq++
				if pb != nil {
					pb.Inject(now, id, src, dst, measured)
				}
				if err := e.enqueue(now, src, epacket{id: id, dst: dst, born: now, measured: measured}); err != nil {
					return err
				}
			}
			return nil
		}
		if faulty {
			strand := func(now int, lk *elink) error {
				q := lk.queue
				lk.queue = nil
				for _, pkt := range q {
					if err := e.enqueue(now, lk.u, pkt); err != nil {
						return err
					}
				}
				return nil
			}
			// Every lane applies the liveness change to its own sink (the
			// routers need global knowledge); only the lane owning the
			// affected queues performs the side effects and emits the probe
			// event.
			applyChange := func(now int, c laneChange) error {
				switch c.kind {
				case NodeFault:
					owned := laneOf(c.u) == ln.idx
					if owned && pb != nil {
						pb.Fault(now, c.u, -1, true, c.down)
					}
					if !c.down {
						ln.faults.RepairNode(c.u)
						return nil
					}
					ln.faults.FailNode(c.u)
					if owned && ln.faults.NodeDown(c.u) {
						ln.sparse.eachFrom(c.u, func(lk *elink) {
							for i := range lk.queue {
								lose(now, c.u, &lk.queue[i], obs.DropQueueKilled)
							}
							lk.queue = nil
						})
					}
				case LinkFault:
					if laneOf(c.u) == ln.idx && pb != nil {
						pb.Fault(now, c.u, c.v, false, c.down)
					}
					if !c.down {
						ln.faults.RepairLink(c.u, c.v)
						if !directed {
							ln.faults.RepairLink(c.v, c.u)
						}
						return nil
					}
					ln.faults.FailLink(c.u, c.v)
					if !directed {
						ln.faults.FailLink(c.v, c.u)
					}
					for _, arc := range [2][2]int64{{c.u, c.v}, {c.v, c.u}} {
						if directed && arc != [2]int64{c.u, c.v} {
							continue
						}
						if laneOf(arc[0]) != ln.idx {
							continue
						}
						if lk := ln.sparse.peek(arc[0], arc[1]); lk != nil && len(lk.queue) > 0 {
							if err := strand(now, lk); err != nil {
								return err
							}
						}
					}
				}
				return nil
			}
			e.applyChanges = func(now int) error {
				if cs, hit := changesAt[now]; hit {
					for _, c := range cs {
						if err := applyChange(now, c); err != nil {
							return err
						}
					}
				}
				return nil
			}
			e.arrivalDead = func(now int, node int64, pkt *epacket) bool {
				if ln.faults.NodeDown(node) {
					lose(now, node, pkt, obs.DropDeadRouter)
					return true
				}
				return false
			}
			e.blocked = func(lk *elink) bool {
				return ln.faults.NodeDown(lk.u) || ln.faults.LinkDown(lk.u, lk.v)
			}
		}
	}

	// The window loop: lanes run [start, end) in parallel, then the
	// coordinator merges cross-lane outboxes in (destination lane, source
	// lane, FIFO) order, replays the probe, and decides termination.
	start := 0
	for start < deadline {
		if start >= total {
			inFlight := 0
			for _, ln := range lanes {
				inFlight += ln.inFlight
			}
			if inFlight == 0 && start > lastChange {
				break
			}
		}
		end := start + window
		if end > deadline {
			end = deadline
		}
		if cfg.Shards == 1 {
			for _, ln := range lanes {
				ln.runWindow(start, end)
			}
		} else {
			var wg sync.WaitGroup
			for w := 0; w < cfg.Shards; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for li := w; li < cfg.Lanes; li += cfg.Shards {
						lanes[li].runWindow(start, end)
					}
				}(w)
			}
			wg.Wait()
		}
		for _, ln := range lanes {
			if ln.err != nil {
				return out, ln.err
			}
		}
		for _, dst := range lanes {
			for _, src := range lanes {
				box := src.outbox[dst.idx]
				for _, snd := range box {
					slot := snd.cycle % ringLen
					dst.eng.ring[slot] = append(dst.eng.ring[slot], earrival{node: snd.node, pkt: snd.pkt})
				}
				src.outbox[dst.idx] = box[:0]
			}
		}
		if cfg.Probe != nil {
			for c := start; c < end; c++ {
				cfg.Probe.Tick(c)
				for _, ln := range lanes {
					ln.log.ReplayCycle(c, cfg.Probe)
				}
			}
			for _, ln := range lanes {
				ln.log.Reset()
			}
		}
		start = end
	}

	st := &out.FaultStats
	var latencySum int64
	inFlight := 0
	anyRouterStats := false
	for _, ln := range lanes {
		st.Injected += ln.st.Injected
		st.Delivered += ln.st.Delivered
		st.Lost += ln.st.Lost
		st.DeliveredDegraded += ln.st.DeliveredDegraded
		st.HopLimitDrops += ln.st.HopLimitDrops
		if ln.st.MaxLatency > st.MaxLatency {
			st.MaxLatency = ln.st.MaxLatency
		}
		latencySum += ln.latencySum
		inFlight += ln.inFlight
		if ln.counter != nil {
			re, dh := ln.counter.RerouteCounts()
			st.RerouteEvents += int(re - ln.rerouteBase)
			st.MisroutedHops += int(dh - ln.detourBase)
		}
		if ln.statser != nil {
			anyRouterStats = true
			out.Router = out.Router.Add(ln.statser.RouterStats().Delta(ln.routerBase))
		}
	}
	st.Expired = inFlight
	if st.Delivered > 0 {
		st.AvgLatency = float64(latencySum) / float64(st.Delivered)
	}
	if cfg.MeasureCycles > 0 {
		st.Throughput = float64(st.Delivered) / float64(n) / float64(cfg.MeasureCycles)
	}
	if faulty {
		// Fault event accounting is deterministic from the plan and the stop
		// cycle (every lane applied the same events at the same cycles).
		for _, ev := range cfg.Plan.sorted() {
			if ev.Cycle < start {
				st.FaultsInjected++
			}
			if ev.Transient() && ev.Repair < start {
				st.FaultsRepaired++
			}
		}
	}
	st.fillQuantiles(cfg.Probe)
	if anyRouterStats {
		if ro, ok := cfg.Probe.(obs.RouterObserver); ok {
			ro.ObserveRouter(out.Router)
		}
	}
	return out, nil
}

// runWindow steps the lane's engine through cycles [start, end); an error
// parks in ln.err for the coordinator (lane errors must not tear down other
// lanes mid-window).
func (ln *simLane) runWindow(start, end int) {
	if ln.err != nil {
		return
	}
	for c := start; c < end; c++ {
		if _, err := ln.eng.step(c); err != nil {
			ln.err = err
			return
		}
	}
}
