package netsim

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/obs"
	"repro/internal/superip"
	"repro/internal/topo"
)

// recProbe flattens every probe event — Ticks included — into one string
// per event, in arrival order. Two runs with equal recProbe contents
// produced byte-identical instrumented manifests.
type recProbe struct{ lines []string }

func (r *recProbe) add(s string) { r.lines = append(r.lines, s) }

func (r *recProbe) Tick(c int) { r.add(fmt.Sprintf("tick %d", c)) }
func (r *recProbe) Inject(c int, id int64, src, dst int64, m bool) {
	r.add(fmt.Sprintf("inject %d %d %d %d %v", c, id, src, dst, m))
}
func (r *recProbe) Enqueue(c int, id int64, at, next int64, q int) {
	r.add(fmt.Sprintf("enqueue %d %d %d %d %d", c, id, at, next, q))
}
func (r *recProbe) Hop(c int, id int64, from, to int64, occ, q int) {
	r.add(fmt.Sprintf("hop %d %d %d %d %d %d", c, id, from, to, occ, q))
}
func (r *recProbe) Deliver(c int, id int64, node int64, lat int, m bool) {
	r.add(fmt.Sprintf("deliver %d %d %d %d %v", c, id, node, lat, m))
}
func (r *recProbe) Drop(c int, id int64, at int64, reason obs.DropReason) {
	r.add(fmt.Sprintf("drop %d %d %d %s", c, id, at, reason))
}
func (r *recProbe) Retransmit(c int, id int64, src int64, n int) {
	r.add(fmt.Sprintf("retx %d %d %d %d", c, id, src, n))
}
func (r *recProbe) Fault(c int, u, v int64, node, down bool) {
	r.add(fmt.Sprintf("fault %d %d %d %v %v", c, u, v, node, down))
}
func (r *recProbe) Reroute(c int, dst int64, lag int) {
	r.add(fmt.Sprintf("reroute %d %d %d", c, dst, lag))
}

func shardedHotspot(p float64) func(int64, int64, *rand.Rand) int64 {
	return func(src, n int64, rng *rand.Rand) int64 {
		if rng.Float64() < p {
			return 0 // src==0 returns src and the injection is skipped
		}
		return uniformDst64(src, n, rng)
	}
}

type shardScenario struct {
	name string
	cfg  ShardedConfig // Seed, Shards, Probe filled by the test
}

// shardScenarios builds the determinism grid: four topology families
// (Q6 and Q8 subcube-partitioned hypercubes, HSN(2;Q2) and HSN(2;Q3)
// super-IP graphs) crossed with uniform, hotspot, and faulty traffic.
func shardScenarios(t *testing.T) []shardScenario {
	t.Helper()
	var out []shardScenario

	cube := func(dim, low int, plan *FaultPlan, pattern func(int64, int64, *rand.Rand) int64) ShardedConfig {
		ht := topo.HypercubeTopo{Dim: dim}
		return ShardedConfig{
			NewLane: func() (Topology, Router, FaultSink, error) {
				if plan.Len() == 0 {
					return ht, topo.HypercubeRouter{Dim: dim}, nil, nil
				}
				fs := topo.NewFaultSet()
				return ht, topo.NewFaultAware(ht, topo.HypercubeRouter{Dim: dim}, fs), fs, nil
			},
			Space:           topo.SubcubeSpace{Dim: dim, Low: low},
			InjectionRate:   0.02,
			WarmupCycles:    30,
			MeasureCycles:   120,
			OffModulePeriod: 4,
			Lanes:           8,
			Plan:            plan,
			Pattern:         pattern,
		}
	}
	hsn := func(nucDim int, plan func(*topo.Implicit) *FaultPlan, pattern func(int64, int64, *rand.Rand) int64) ShardedConfig {
		net := superip.HSN(2, superip.NucleusHypercube(nucDim))
		space, err := topo.NewImplicit(net.Super())
		if err != nil {
			t.Fatal(err)
		}
		var p *FaultPlan
		if plan != nil {
			p = plan(space)
		}
		return ShardedConfig{
			NewLane: func() (Topology, Router, FaultSink, error) {
				imp, err := topo.NewImplicit(net.Super())
				if err != nil {
					return nil, nil, nil, err
				}
				air, err := topo.NewAlgebraic(net.Super())
				if err != nil {
					return nil, nil, nil, err
				}
				if p.Len() == 0 {
					return imp, air, nil, nil
				}
				fs := topo.NewFaultSet()
				return imp, topo.NewFaultAware(imp, air, fs), fs, nil
			},
			Space:           space,
			InjectionRate:   0.02,
			WarmupCycles:    30,
			MeasureCycles:   120,
			OffModulePeriod: 4,
			Lanes:           8,
			Plan:            p,
			Pattern:         pattern,
		}
	}

	q6plan := (&FaultPlan{}).LinkDown(40, 0, 1, 0).NodeDown(60, 9, 150).LinkDown(70, 5, 7, 120)
	randPlan := func(imp *topo.Implicit) *FaultPlan {
		p, err := (RandomFaults{MTBF: 60, RepairTime: 150, NodeFraction: 0.25,
			Start: 40, Horizon: 150, MaxFaults: 4, Seed: 2}).PlanTopo(imp)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	out = append(out,
		shardScenario{"q6/uniform", cube(6, 3, nil, nil)},
		shardScenario{"q6/hotspot", cube(6, 3, nil, shardedHotspot(0.2))},
		shardScenario{"q6/faulty", cube(6, 3, q6plan, nil)},
		shardScenario{"q8/uniform", cube(8, 4, nil, nil)},
		shardScenario{"q8/hotspot", cube(8, 4, nil, shardedHotspot(0.2))},
		shardScenario{"q8/faulty", cube(8, 4, q6plan, nil)},
		shardScenario{"hsn2q2/uniform", hsn(2, nil, nil)},
		shardScenario{"hsn2q2/hotspot", hsn(2, nil, shardedHotspot(0.2))},
		shardScenario{"hsn2q2/faulty", hsn(2, randPlan, nil)},
		shardScenario{"hsn2q3/uniform", hsn(3, nil, nil)},
		shardScenario{"hsn2q3/hotspot", hsn(3, nil, shardedHotspot(0.2))},
		shardScenario{"hsn2q3/faulty", hsn(3, randPlan, nil)},
	)
	// One store-and-forward multi-flit variant: the window stretches to
	// OffModulePeriod*Flits and the merge slots shift.
	saf := cube(6, 3, nil, nil)
	saf.Flits = 2
	out = append(out, shardScenario{"q6/uniform-flits2", saf})
	// And one cut-through variant with the shortened window.
	ct := cube(6, 3, q6plan, nil)
	ct.Flits = 2
	ct.CutThrough = true
	out = append(out, shardScenario{"q6/faulty-flits2cut", ct})
	return out
}

// TestShardedDeterminism is the shard-count invariance property suite:
// for every scenario and seed, Shards ∈ {1,2,4,8} must produce identical
// ImplicitFaultStats (compared with ==) and an identical flattened probe
// event stream — the worker count maps lanes to goroutines and nothing
// else. It also checks measured-packet conservation on every run.
func TestShardedDeterminism(t *testing.T) {
	for _, sc := range shardScenarios(t) {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			for _, seed := range []int64{1, 2} {
				var refStats ImplicitFaultStats
				var refEvents []string
				for _, shards := range []int{1, 2, 4, 8} {
					cfg := sc.cfg
					cfg.Seed = seed
					cfg.Shards = shards
					rec := &recProbe{}
					cfg.Probe = rec
					st, err := RunSharded(cfg)
					if err != nil {
						t.Fatalf("seed %d shards %d: %v", seed, shards, err)
					}
					if st.Injected == 0 || st.Delivered == 0 {
						t.Fatalf("seed %d shards %d: degenerate run: %+v", seed, shards, st.Stats)
					}
					if got := st.Delivered + st.Lost + st.Expired; got != st.Injected {
						t.Fatalf("seed %d shards %d: delivered %d + lost %d + expired %d != injected %d",
							seed, shards, st.Delivered, st.Lost, st.Expired, st.Injected)
					}
					if shards == 1 {
						refStats, refEvents = st, rec.lines
						continue
					}
					if st != refStats {
						t.Errorf("seed %d shards %d: stats diverge from shards=1:\n got %+v\nwant %+v",
							seed, shards, st, refStats)
					}
					if len(rec.lines) != len(refEvents) {
						t.Errorf("seed %d shards %d: %d probe events, shards=1 had %d",
							seed, shards, len(rec.lines), len(refEvents))
						continue
					}
					for i := range rec.lines {
						if rec.lines[i] != refEvents[i] {
							t.Errorf("seed %d shards %d: event %d diverges: %q vs %q",
								seed, shards, i, rec.lines[i], refEvents[i])
							break
						}
					}
				}
			}
		})
	}
}

// TestShardedUnprobed pins the probe-neutrality of the sharded runner: an
// uninstrumented run returns the same stats as an instrumented one.
func TestShardedUnprobed(t *testing.T) {
	sc := shardScenarios(t)[2] // q6/faulty
	cfg := sc.cfg
	cfg.Seed = 7
	cfg.Shards = 4
	bare, err := RunSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Probe = &recProbe{}
	probed, err := RunSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bare != probed {
		t.Fatalf("probe perturbed the run:\n bare %+v\nprobed %+v", bare, probed)
	}
}

// TestShardedRaceHammer drives a multi-worker faulty run hard enough for
// the race detector (CI runs this package with -race -count=2) to see every
// cross-lane code path: outbox merges, barrier replay, fault application.
func TestShardedRaceHammer(t *testing.T) {
	ht := topo.HypercubeTopo{Dim: 8}
	plan := (&FaultPlan{}).LinkDown(40, 0, 1, 0).NodeDown(60, 9, 150).LinkDown(70, 5, 7, 120)
	cfg := ShardedConfig{
		NewLane: func() (Topology, Router, FaultSink, error) {
			fs := topo.NewFaultSet()
			return ht, topo.NewFaultAware(ht, topo.HypercubeRouter{Dim: 8}, fs), fs, nil
		},
		Space:           topo.SubcubeSpace{Dim: 8, Low: 4},
		InjectionRate:   0.05,
		WarmupCycles:    40,
		MeasureCycles:   160,
		OffModulePeriod: 2,
		Lanes:           16,
		Shards:          4,
		Plan:            plan,
		Seed:            11,
		Probe:           &recProbe{},
	}
	st, err := RunSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Delivered == 0 {
		t.Fatalf("degenerate hammer run: %+v", st.Stats)
	}
}
