// The unified simulation engine. The four public entry points — Run,
// RunFaulty, RunImplicit, RunImplicitFaulty — used to be four near-duplicate
// event loops; they are now four configurations of the one engine in this
// file: one packet struct (epacket), one link-FIFO/active-list core
// (linkStore: dense for materialized graphs, sparse for implicit
// topologies), one future-arrival ring, one injection sampler, and one
// per-cycle phase order
//
//	tick → apply topology changes → deliver arrivals → fire retransmission
//	timers → inject (or test the drain break) → advance links
//
// parameterized by closures for the parts that genuinely differ: routing
// (BFS tables / adaptive spread / algebraic Router, with or without fault
// detours), delivery bookkeeping (plain counters vs. flow-table duplicate
// suppression), hop-limit policy (hard error vs. counted drop), and fault
// handling. The closures capture each variant's statistics directly, so the
// engine itself holds no Stats.
//
// Bit-for-bit compatibility contract: every variant must consume the run's
// RNG in exactly the order the pre-refactor loops did (injection draws,
// adaptive/detour choices) and emit probe events in the same sequence.
// TestEngineGoldenParity pins this against fixtures recorded from the
// original loops.
package netsim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/graph"
	"repro/internal/obs"
)

// epacket is the one in-flight packet representation shared by all engine
// variants. Materialized runs use only the narrow prefix (id, dst, born,
// measured); ttl backs RunFaulty's detour budget, hops the livelock
// watchdogs, and degraded RunImplicitFaulty's detoured-delivery counter.
// For RunFaulty, id doubles as the flow sequence number.
type epacket struct {
	id       int64
	dst      int64
	born     int
	hops     int
	ttl      int
	measured bool
	degraded bool
}

// elink is the FIFO of one directed link u -> v. downCnt is the
// reference-counted liveness used by the materialized fault simulator
// (overlapping transient faults); the implicit fault simulator keeps
// liveness in its FaultSink instead.
type elink struct {
	u, v    int64
	queue   []epacket
	freeAt  int
	downCnt int
}

// earrival is one scheduled packet arrival in the future-arrival ring.
type earrival struct {
	node int64
	pkt  epacket
}

// linkStore is the adjacency-side parameterization of the engine: how link
// FIFOs are stored and in what deterministic order the advance phase visits
// them. denseLinks materializes one FIFO per directed edge of a
// *graph.Graph; sparseLinks keeps only links that currently hold (or
// recently transmitted) a packet, keyed by the implicit topology's
// (node, port) pair.
type linkStore interface {
	// get returns the FIFO of arc u->v, creating it if needed. It errors
	// when v is not a neighbor of u — a routing-layer bug.
	get(u, v int64) (*elink, error)
	// advance visits the store's links in its deterministic order and
	// transmits the queue head of every link that is free and not blocked.
	advance(now int, e *engine) error
}

// engine is the shared clock/link/arrival core. The exported Run* functions
// assemble one, point the hook closures at their own statistics, and call
// run(). Hooks left nil are skipped (fault-free variants have no
// applyChanges/fireRetries/arrivalDead/blocked phase at all).
type engine struct {
	pb         obs.Probe
	store      linkStore
	ring       [][]earrival
	flits      int
	cutThrough bool
	period     func(u, v int64) int

	total    int // warmup + measure: injection stops here
	deadline int // total + drain: the run stops here

	// route picks the next hop for pkt at node `at`. ok=false drops the
	// copy (the hook has done the accounting); err aborts the run.
	route func(now int, at int64, pkt *epacket) (nh int64, ok bool, err error)
	// deliver performs delivery bookkeeping for a packet that reached
	// pkt.dst (stats, flow state, probe call).
	deliver func(now int, at int64, pkt *epacket)
	// hopLimit > 0 enables the livelock watchdog: a packet with hops >=
	// hopLimit is handed to onHopLimit instead of being routed, which
	// either accounts a drop (nil error) or aborts the run.
	hopLimit   int
	onHopLimit func(now int, at int64, pkt *epacket) error

	// Optional per-cycle phases, in engine.run order.
	applyChanges func(now int) error
	arrivalDead  func(now int, node int64, pkt *epacket) bool
	fireRetries  func(now int) error
	inject       func(now int) error
	canStop      func(now int) bool
	// blocked gates the advance phase: a true return holds the link's
	// queue this cycle (dead node, dead link).
	blocked func(lk *elink) bool
	// crossSend intercepts a transmitted packet whose head node another
	// lane owns (sharded runs): a true return means the hook captured the
	// packet (into a cross-lane outbox) and it must not enter the local
	// arrival ring. Nil — every sequential variant — keeps everything local.
	crossSend func(now, delay int, dst int64, pkt epacket) bool
}

// run executes the clock loop until the drain deadline, the variant's early
// break, or an error.
func (e *engine) run() error {
	for now := 0; now < e.deadline; now++ {
		stop, err := e.step(now)
		if err != nil {
			return err
		}
		if stop {
			break
		}
	}
	return nil
}

// step executes one cycle of the clock loop: tick, topology changes,
// arrivals, retransmission timers, injection (or the drain break), link
// advance. The sharded simulator drives lanes through it window by window;
// run() is the sequential wrapper. stop reports the variant's early break.
func (e *engine) step(now int) (stop bool, err error) {
	if e.pb != nil {
		e.pb.Tick(now)
	}
	if e.applyChanges != nil {
		if err := e.applyChanges(now); err != nil {
			return false, err
		}
	}
	slot := now % len(e.ring)
	for i := range e.ring[slot] {
		a := &e.ring[slot][i]
		if e.arrivalDead != nil && e.arrivalDead(now, a.node, &a.pkt) {
			continue
		}
		if err := e.enqueue(now, a.node, a.pkt); err != nil {
			return false, err
		}
	}
	e.ring[slot] = e.ring[slot][:0]
	if e.fireRetries != nil {
		if err := e.fireRetries(now); err != nil {
			return false, err
		}
	}
	if now < e.total {
		if err := e.inject(now); err != nil {
			return false, err
		}
	} else if e.canStop(now) {
		return true, nil
	}
	if err := e.store.advance(now, e); err != nil {
		return false, err
	}
	return false, nil
}

// enqueue routes one packet copy at node `at`: deliver it, drop it on the
// hop watchdog, or append it to the next hop's link FIFO.
func (e *engine) enqueue(now int, at int64, pkt epacket) error {
	if pkt.dst == at {
		e.deliver(now, at, &pkt)
		return nil
	}
	if e.hopLimit > 0 && pkt.hops >= e.hopLimit {
		return e.onHopLimit(now, at, &pkt)
	}
	nh, ok, err := e.route(now, at, &pkt)
	if err != nil {
		return err
	}
	if !ok {
		return nil
	}
	lk, err := e.store.get(at, nh)
	if err != nil {
		return err
	}
	lk.queue = append(lk.queue, pkt)
	if e.pb != nil {
		e.pb.Enqueue(now, pkt.id, at, nh, len(lk.queue))
	}
	return nil
}

// transmit moves the queue head of a free link onto the arrival ring.
func (e *engine) transmit(now int, lk *elink) {
	pkt := lk.queue[0]
	lk.queue = lk.queue[1:]
	p := e.period(lk.u, lk.v)
	occupy := p * e.flits
	lk.freeAt = now + occupy
	delay := occupy // store-and-forward: the whole message arrives together
	if e.cutThrough {
		delay = p // head proceeds while the tail drains
	}
	pkt.hops++
	if e.pb != nil {
		e.pb.Hop(now, pkt.id, lk.u, lk.v, occupy, len(lk.queue))
	}
	if e.crossSend != nil && e.crossSend(now, delay, lk.v, pkt) {
		return
	}
	s := (now + delay) % len(e.ring)
	e.ring[s] = append(e.ring[s], earrival{node: lk.v, pkt: pkt})
}

// ---------------------------------------------------------------------------
// Dense link store: one FIFO per directed edge of a materialized graph,
// visited in (node, adjacency slot) order.

type denseLinks struct {
	links  [][]elink
	slotOf []map[int32]int
}

func newDenseLinks(g *graph.Graph) *denseLinks {
	n := g.N()
	d := &denseLinks{links: make([][]elink, n), slotOf: make([]map[int32]int, n)}
	for u := 0; u < n; u++ {
		adj := g.Neighbors(int32(u))
		d.links[u] = make([]elink, len(adj))
		d.slotOf[u] = make(map[int32]int, len(adj))
		for s, v := range adj {
			d.links[u][s] = elink{u: int64(u), v: int64(v)}
			d.slotOf[u][v] = s
		}
	}
	return d
}

func (d *denseLinks) get(u, v int64) (*elink, error) {
	s, ok := d.slotOf[u][int32(v)]
	if !ok {
		return nil, fmt.Errorf("netsim: next hop %d from %d is not a neighbor", v, u)
	}
	return &d.links[u][s], nil
}

// at returns the FIFO of arc u->v, or nil when v is not a neighbor of u.
// The fault machinery uses it for liveness marks and queue kills.
func (d *denseLinks) at(u, v int64) *elink {
	s, ok := d.slotOf[u][int32(v)]
	if !ok {
		return nil
	}
	return &d.links[u][s]
}

func (d *denseLinks) advance(now int, e *engine) error {
	for u := range d.links {
		for s := range d.links[u] {
			lk := &d.links[u][s]
			if len(lk.queue) == 0 || lk.freeAt > now {
				continue
			}
			if e.blocked != nil && e.blocked(lk) {
				continue
			}
			e.transmit(now, lk)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Sparse link store: only links that currently hold or recently transmitted
// a packet exist, keyed by u*maxDegree + port (port = index of the target in
// u's sorted neighbor list). The active list keeps insertion order so the
// advance phase — and therefore the whole run — is deterministic; idle links
// are reclaimed. This is the link-FIFO key math previously copy-pasted
// between the two implicit simulators.

type sparseLinks struct {
	topo   Topology
	deg    int64
	links  map[int64]*elink
	active []int64
	nbrBuf []int64
}

func newSparseLinks(t Topology) *sparseLinks {
	deg := int64(t.MaxDegree())
	return &sparseLinks{
		topo:   t,
		deg:    deg,
		links:  make(map[int64]*elink),
		nbrBuf: make([]int64, 0, deg),
	}
}

// port returns the index of v in u's sorted neighbor list, or -1 when v is
// not a neighbor of u.
func (s *sparseLinks) port(u, v int64) int {
	s.nbrBuf = s.topo.Neighbors(u, s.nbrBuf)
	p := sort.Search(len(s.nbrBuf), func(i int) bool { return s.nbrBuf[i] >= v })
	if p == len(s.nbrBuf) || s.nbrBuf[p] != v {
		return -1
	}
	return p
}

func (s *sparseLinks) get(u, v int64) (*elink, error) {
	p := s.port(u, v)
	if p < 0 {
		return nil, fmt.Errorf("netsim: next hop %d from %d is not a neighbor", v, u)
	}
	key := u*s.deg + int64(p)
	lk, ok := s.links[key]
	if !ok {
		lk = &elink{u: u, v: v}
		s.links[key] = lk
		s.active = append(s.active, key)
	}
	return lk, nil
}

// peek returns the FIFO of arc u->v when it exists, nil otherwise (v not a
// neighbor, or the link currently idle and reclaimed).
func (s *sparseLinks) peek(u, v int64) *elink {
	p := s.port(u, v)
	if p < 0 {
		return nil
	}
	return s.links[u*s.deg+int64(p)]
}

// eachFrom visits the live FIFOs of u's outgoing links in port order.
func (s *sparseLinks) eachFrom(u int64, fn func(*elink)) {
	for port := int64(0); port < s.deg; port++ {
		if lk, ok := s.links[u*s.deg+port]; ok {
			fn(lk)
		}
	}
}

func (s *sparseLinks) advance(now int, e *engine) error {
	live := s.active[:0]
	for _, key := range s.active {
		lk := s.links[key]
		if len(lk.queue) == 0 {
			if lk.freeAt <= now {
				delete(s.links, key)
				continue
			}
			live = append(live, key)
			continue
		}
		if lk.freeAt > now {
			live = append(live, key)
			continue
		}
		if e.blocked != nil && e.blocked(lk) {
			// Dead tail or dead link: the queue waits for a repair.
			live = append(live, key)
			continue
		}
		e.transmit(now, lk)
		if len(lk.queue) == 0 {
			lk.queue = nil // release the backing array of drained FIFOs
		}
		live = append(live, key)
	}
	s.active = live
	return nil
}

// ---------------------------------------------------------------------------
// Injection sampling, shared by the implicit simulators and the sharded
// engine.

// injectionCount draws the number of packets injected this cycle. Up to
// 2^16 nodes the per-node Bernoulli draws are simulated exactly, matching
// the materialized simulator's semantics; beyond that the aggregate count is
// sampled from the Poisson approximation of Binomial(N, rate) (exact
// multiplicative sampling for small means, a normal approximation above),
// because iterating tens of millions of nodes every cycle would dominate the
// run. Sources are then drawn uniformly, so one node can inject twice in a
// cycle — a vanishing-probability event at the scales where the
// approximation is active.
func injectionCount(n int64, rate float64, rng *rand.Rand) int64 {
	if n <= 1<<16 {
		k := int64(0)
		for i := int64(0); i < n; i++ {
			if rng.Float64() < rate {
				k++
			}
		}
		return k
	}
	lambda := float64(n) * rate
	if lambda == 0 {
		return 0
	}
	if lambda < 30 {
		// Knuth's multiplicative Poisson sampler.
		limit := math.Exp(-lambda)
		k := int64(-1)
		p := 1.0
		for p > limit {
			k++
			p *= rng.Float64()
		}
		return k
	}
	k := int64(math.Round(lambda + math.Sqrt(lambda)*rng.NormFloat64()))
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	return k
}

// uniformDst64 draws a uniformly random destination != src over [0, n).
func uniformDst64(src, n int64, rng *rand.Rand) int64 {
	d := rng.Int63n(n - 1)
	if d >= src {
		d++
	}
	return d
}
