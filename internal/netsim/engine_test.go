package netsim

import (
	"math"
	"math/rand"
	"testing"
)

// TestInjectionCountExactRegime pins the exact-Bernoulli regime (n <= 2^16):
// the count is the sum of n per-node coin flips, so rate 0 and rate 1 are
// exact, the draw count is exactly n (the stream position after a call is
// independent of the outcomes), and the empirical mean tracks n*rate.
func TestInjectionCountExactRegime(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int64{1, 100, 1 << 16} {
		if k := injectionCount(n, 0, rng); k != 0 {
			t.Fatalf("n=%d rate=0: k=%d", n, k)
		}
		if k := injectionCount(n, 1, rng); k != n {
			t.Fatalf("n=%d rate=1: k=%d, want %d", n, k, n)
		}
	}
	// Stream alignment: two RNGs from the same seed must stay in lockstep
	// across a call regardless of rate, because every node always draws.
	a, b := rand.New(rand.NewSource(7)), rand.New(rand.NewSource(7))
	injectionCount(1000, 0.001, a)
	injectionCount(1000, 0.999, b)
	if x, y := a.Int63(), b.Int63(); x != y {
		t.Fatalf("exact regime consumed rate-dependent draw counts: %d vs %d", x, y)
	}
	// Empirical mean over repeated cycles.
	const n, rate, rounds = 4096, 0.01, 400
	sum := int64(0)
	for i := 0; i < rounds; i++ {
		sum += injectionCount(n, rate, rng)
	}
	mean := float64(sum) / rounds
	want := float64(n) * rate
	if math.Abs(mean-want) > 0.15*want {
		t.Fatalf("exact regime mean %.2f, want ~%.2f", mean, want)
	}
}

// TestInjectionCountPoissonRegime pins the small-lambda approximation branch
// (n > 2^16, n*rate < 30): Knuth's multiplicative sampler, nonnegative, with
// the right mean.
func TestInjectionCountPoissonRegime(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n = int64(1<<16) + 1 // smallest n on the approximate side of the boundary
	rate := 29.0 / float64(n)  // lambda just under the 30 cutoff
	const rounds = 2000
	sum := int64(0)
	for i := 0; i < rounds; i++ {
		k := injectionCount(n, rate, rng)
		if k < 0 {
			t.Fatalf("negative count %d", k)
		}
		sum += k
	}
	mean := float64(sum) / rounds
	if math.Abs(mean-29.0) > 0.1*29.0 {
		t.Fatalf("poisson regime mean %.2f, want ~29", mean)
	}
	if k := injectionCount(n, 0, rng); k != 0 {
		t.Fatalf("lambda=0 must return 0, got %d", k)
	}
}

// TestInjectionCountNormalRegime pins the large-lambda branch (n > 2^16,
// n*rate >= 30): normal approximation, clamped into [0, n].
func TestInjectionCountNormalRegime(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = int64(1 << 20)
	const rate = 0.001 // lambda = 1048.576
	lambda := float64(n) * rate
	const rounds = 2000
	sum := int64(0)
	for i := 0; i < rounds; i++ {
		k := injectionCount(n, rate, rng)
		if k < 0 || k > n {
			t.Fatalf("count %d outside [0,%d]", k, n)
		}
		sum += k
	}
	mean := float64(sum) / rounds
	if math.Abs(mean-lambda) > 0.05*lambda {
		t.Fatalf("normal regime mean %.2f, want ~%.2f", mean, lambda)
	}
	// The upper clamp: rate 1 makes the normal draw hug n; every sample
	// must stay within the population.
	for i := 0; i < 50; i++ {
		if k := injectionCount(n, 1, rng); k > n {
			t.Fatalf("clamp failed: %d > %d", k, n)
		}
	}
}

// countingSource wraps a rand.Source and counts the raw Int63 draws pulled
// through it — one per Float64, so it measures exactly how many per-node
// draws a sampler consumed.
type countingSource struct {
	src   rand.Source
	draws int
}

func (c *countingSource) Int63() int64 { c.draws++; return c.src.Int63() }
func (c *countingSource) Seed(s int64) { c.src.Seed(s) }

// TestInjectionCountRegimeBoundary checks the exact/approximate switch at
// n = 2^16: at the boundary the exact sampler runs (one draw per node), one
// node beyond it the aggregate samplers run (O(lambda) or O(1) draws).
func TestInjectionCountRegimeBoundary(t *testing.T) {
	drawsUsed := func(n int64, rate float64) int {
		cs := &countingSource{src: rand.NewSource(42)}
		injectionCount(n, rate, rand.New(cs))
		return cs.draws
	}
	if got := drawsUsed(1<<16, 0.0001); got != 1<<16 {
		t.Fatalf("n=2^16 used %d draws, want %d (exact regime)", got, 1<<16)
	}
	if got := drawsUsed(1<<16+1, 0.0001); got >= 1<<10 {
		t.Fatalf("n=2^16+1 used %d draws, want O(lambda) (approximate regime)", got)
	}
}

// TestUniformDst64 checks the shifted-draw destination sampler: never the
// source, covers every other node, uniform to statistical tolerance.
func TestUniformDst64(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const n = 8
	const src = 3
	counts := map[int64]int{}
	const rounds = 14000
	for i := 0; i < rounds; i++ {
		d := uniformDst64(src, n, rng)
		if d == src || d < 0 || d >= n {
			t.Fatalf("dst %d invalid for src %d, n %d", d, src, n)
		}
		counts[d]++
	}
	want := float64(rounds) / (n - 1)
	for d := int64(0); d < n; d++ {
		if d == src {
			continue
		}
		if c := counts[d]; math.Abs(float64(c)-want) > 0.1*want {
			t.Fatalf("dst %d drawn %d times, want ~%.0f", d, c, want)
		}
	}
}
