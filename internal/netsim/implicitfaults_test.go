package netsim

import (
	"math/rand"
	"os"
	"testing"

	"repro/internal/superip"
	"repro/internal/topo"
)

// faultTestNet builds the small symmetric family most fault tests run on,
// returning the implicit topology, a fault set, and a fault-aware algebraic
// router sharing it.
func faultTestNet(t testing.TB) (*superip.Net, *topo.Implicit, *topo.FaultSet, *topo.FaultAware) {
	t.Helper()
	net := superip.HSN(3, superip.NucleusHypercube(2)).SymmetricVariant()
	imp, err := topo.NewImplicit(net.Super())
	if err != nil {
		t.Fatal(err)
	}
	inner, err := topo.NewAlgebraic(net.Super())
	if err != nil {
		t.Fatal(err)
	}
	fs := topo.NewFaultSet()
	return net, imp, fs, topo.NewFaultAware(imp, inner, fs)
}

// TestRunImplicitFaultyEmptyPlanIdentical pins the acceptance criterion: a
// fault-free RunImplicitFaulty with a FaultAware router is stat-identical to
// the plain Algebraic RunImplicit — same RNG stream, same routes, same
// Stats, and zeroed fault counters.
func TestRunImplicitFaultyEmptyPlanIdentical(t *testing.T) {
	net, imp, _, fa := faultTestNet(t)
	plain, err := topo.NewAlgebraic(net.Super())
	if err != nil {
		t.Fatal(err)
	}
	cfg := ImplicitConfig{Topo: imp, Router: plain, InjectionRate: 0.02,
		WarmupCycles: 50, MeasureCycles: 500, Seed: 7}
	want, err := RunImplicit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Router = fa
	got, err := RunImplicitFaulty(cfg, ImplicitFaultConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats != want.Stats {
		t.Fatalf("fault-free stats diverge:\nfaulty run: %+v\nplain run:  %+v", got.Stats, want)
	}
	if got.Lost != 0 || got.DeliveredDegraded != 0 || got.HopLimitDrops != 0 ||
		got.RerouteEvents != 0 || got.MisroutedHops != 0 ||
		got.FaultsInjected != 0 || got.FaultsRepaired != 0 {
		t.Fatalf("fault-free run has nonzero fault counters: %+v", got)
	}
}

// faultyPlanFor returns a moderate deterministic plan for the test family:
// a few transient and permanent link faults plus one transient node fault,
// all in implicit id space.
func faultyPlanFor(t *testing.T, imp *topo.Implicit, seed int64) *FaultPlan {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	plan := &FaultPlan{}
	var buf []int64
	for i := 0; i < 6; i++ {
		u := rng.Int63n(imp.N())
		buf = imp.Neighbors(u, buf)
		v := buf[rng.Intn(len(buf))]
		repair := 0
		if i%2 == 0 {
			repair = 80 + 40*i
		}
		plan.LinkDown(10+15*i, int32(u), int32(v), repair)
	}
	plan.NodeDown(60, int32(1+rng.Int63n(imp.N()-1)), 200)
	return plan
}

// TestRunImplicitFaultyDeterministic reruns an identical faulty
// configuration and requires identical degraded-mode statistics: fault
// application, rerouting, and drops must consume no randomness.
func TestRunImplicitFaultyDeterministic(t *testing.T) {
	run := func() ImplicitFaultStats {
		_, imp, fs, fa := faultTestNet(t)
		plan := faultyPlanFor(t, imp, 3)
		st, err := RunImplicitFaulty(ImplicitConfig{Topo: imp, Router: fa,
			InjectionRate: 0.05, WarmupCycles: 50, MeasureCycles: 400, Seed: 13},
			ImplicitFaultConfig{Plan: plan, Faults: fs})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("faulty runs diverge:\n%+v\n%+v", a, b)
	}
}

// TestRunImplicitFaultyDelivery checks the degraded-mode accounting on a
// run with real faults: conservation (Injected = Delivered + Lost +
// Expired), faults applied and repaired as scheduled, and the router
// actually rerouting.
func TestRunImplicitFaultyDelivery(t *testing.T) {
	_, imp, fs, fa := faultTestNet(t)
	plan := faultyPlanFor(t, imp, 5)
	st, err := RunImplicitFaulty(ImplicitConfig{Topo: imp, Router: fa,
		InjectionRate: 0.05, WarmupCycles: 50, MeasureCycles: 400, Seed: 17},
		ImplicitFaultConfig{Plan: plan, Faults: fs})
	if err != nil {
		t.Fatal(err)
	}
	if st.Injected == 0 {
		t.Fatal("no traffic injected")
	}
	if st.Injected != st.Delivered+st.Lost+st.Expired {
		t.Fatalf("conservation violated: %d injected, %d delivered + %d lost + %d expired",
			st.Injected, st.Delivered, st.Lost, st.Expired)
	}
	if st.FaultsInjected != 7 {
		t.Fatalf("FaultsInjected = %d, plan has 7 strikes", st.FaultsInjected)
	}
	if st.FaultsRepaired != 4 {
		t.Fatalf("FaultsRepaired = %d, plan has 4 transient faults", st.FaultsRepaired)
	}
	if st.RerouteEvents == 0 {
		t.Fatal("no reroutes despite permanent link faults under sustained traffic")
	}
	if st.DeliveredDegraded == 0 {
		t.Fatal("no degraded deliveries despite reroutes")
	}
	if float64(st.Delivered) < 0.95*float64(st.Injected) {
		t.Fatalf("delivered only %d of %d under a light fault load", st.Delivered, st.Injected)
	}
}

// TestRunImplicitFaultyMaxHopsDrop pins the satellite semantics: under
// faults, a hop-budget overrun drops the packet and counts it instead of
// aborting the run (which fault-free RunImplicit rightly does).
func TestRunImplicitFaultyMaxHopsDrop(t *testing.T) {
	ht := topo.HypercubeTopo{Dim: 6}
	fs := topo.NewFaultSet()
	plan := (&FaultPlan{}).LinkDown(0, 0, 1, 0)
	st, err := RunImplicitFaulty(ImplicitConfig{Topo: ht, Router: loopRouter{},
		InjectionRate: 0.02, WarmupCycles: 5, MeasureCycles: 50, DrainCycles: 200,
		Seed: 2, MaxHops: 32},
		ImplicitFaultConfig{Plan: plan, Faults: fs})
	if err != nil {
		t.Fatalf("hop overrun under faults must not abort the run: %v", err)
	}
	if st.HopLimitDrops == 0 {
		t.Fatal("loop router under faults produced no hop-limit drops")
	}
	if st.Lost < st.HopLimitDrops {
		t.Fatalf("HopLimitDrops %d not accounted in Lost %d", st.HopLimitDrops, st.Lost)
	}
	if st.Injected != st.Delivered+st.Lost+st.Expired {
		t.Fatalf("conservation violated: %+v", st.Stats)
	}
}

// TestRunImplicitFaultyMatchesRunFaulty is the cross-simulator agreement
// check: the same physical faults (translated between id spaces through
// labels) under statistically identical traffic must produce comparable
// delivered fractions and latencies in the materialized RunFaulty and the
// implicit RunImplicitFaulty.
func TestRunImplicitFaultyMatchesRunFaulty(t *testing.T) {
	net, imp, fs, fa := faultTestNet(t)
	g, ix, err := net.BuildWithIndex()
	if err != nil {
		t.Fatal(err)
	}
	// Three permanent link faults, chosen in implicit id space, applied
	// from cycle 0 in both simulators.
	rng := rand.New(rand.NewSource(41))
	implicitPlan := &FaultPlan{}
	matPlan := &FaultPlan{}
	var buf []int64
	for i := 0; i < 3; i++ {
		u := rng.Int63n(imp.N())
		buf = imp.Neighbors(u, buf)
		v := buf[rng.Intn(len(buf))]
		implicitPlan.LinkDown(0, int32(u), int32(v), 0)
		matPlan.LinkDown(0, ix.ID(imp.Label(u)), ix.ID(imp.Label(v)), 0)
	}

	ist, err := RunImplicitFaulty(ImplicitConfig{Topo: imp, Router: fa,
		InjectionRate: 0.02, WarmupCycles: 100, MeasureCycles: 2000, Seed: 19},
		ImplicitFaultConfig{Plan: implicitPlan, Faults: fs})
	if err != nil {
		t.Fatal(err)
	}
	mst, err := RunFaulty(Config{Graph: g, InjectionRate: 0.02,
		WarmupCycles: 100, MeasureCycles: 2000, Seed: 19},
		FaultConfig{Plan: matPlan})
	if err != nil {
		t.Fatal(err)
	}
	ifrac := float64(ist.Delivered) / float64(ist.Injected)
	mfrac := float64(mst.Delivered) / float64(mst.Injected)
	if ifrac < 0.99 {
		t.Fatalf("implicit delivered fraction %.4f under 3 link faults (fault-aware routing should lose nothing)", ifrac)
	}
	if mfrac < 0.99 {
		t.Fatalf("materialized delivered fraction %.4f", mfrac)
	}
	if ist.AvgLatency <= 0 || mst.AvgLatency <= 0 {
		t.Fatal("missing latencies")
	}
	if r := ist.AvgLatency / mst.AvgLatency; r < 0.7 || r > 1.4 {
		t.Fatalf("latency ratio implicit/materialized = %.3f (implicit %.2f, materialized %.2f)",
			r, ist.AvgLatency, mst.AvgLatency)
	}
}

// TestRunImplicitFaultyKMinusOneZeroLoss is the small-scale version of the
// headline acceptance run: κ−1 adversarial link faults cut every disjoint
// route but one between a fixed pair, and a run injecting only that pair's
// traffic must deliver 100% — degraded, but complete.
func TestRunImplicitFaultyKMinusOneZeroLoss(t *testing.T) {
	net, imp, fs, fa := faultTestNet(t)
	router, err := topo.NewAlgebraic(net.Super())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 5; trial++ {
		n := imp.N()
		src := rng.Int63n(n)
		dst := rng.Int63n(n - 1)
		if dst >= src {
			dst++
		}
		routes, err := topo.DisjointRoutes(imp, router, src, dst)
		if err != nil {
			t.Fatal(err)
		}
		if len(routes) != net.Degree() {
			t.Fatalf("%d routes, want κ = %d", len(routes), net.Degree())
		}
		// Cut the first link of κ−1 routes. The disjoint routes leave src by
		// κ distinct arcs, so sparing one route whose first hop differs from
		// the router's primary path guarantees the primary is blocked while a
		// fully intact alternative survives (routes are edge-disjoint).
		primary, err := router.Path(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		spare := -1
		for i, rt := range routes {
			if rt[1] != primary[1] {
				spare = i
				break
			}
		}
		if spare < 0 {
			t.Fatal("every disjoint route shares the primary's first hop")
		}
		plan := &FaultPlan{}
		for i, rt := range routes {
			if i == spare {
				continue
			}
			plan.LinkDown(0, int32(rt[0]), int32(rt[1]), 0)
		}
		fs.Reset()
		st, err := RunImplicitFaulty(ImplicitConfig{Topo: imp, Router: fa,
			InjectionRate: 1.0, WarmupCycles: 0, MeasureCycles: 50, Seed: 61,
			Pattern: func(s, n int64, _ *rand.Rand) int64 {
				if s == src {
					return dst
				}
				return s // only the chosen pair injects
			}},
			ImplicitFaultConfig{Plan: plan, Faults: fs})
		if err != nil {
			t.Fatal(err)
		}
		if st.Injected == 0 {
			t.Fatal("pair never injected")
		}
		if st.Delivered != st.Injected || st.Lost != 0 || st.Expired != 0 {
			t.Fatalf("κ−1 faults lost traffic: %+v", st)
		}
		if st.DeliveredDegraded == 0 {
			t.Fatal("primary route was cut; deliveries should be degraded")
		}
	}
}

// TestRunImplicitFaultyBigSym is the 25M-node acceptance run: κ−1
// adversarial link faults around a route on sym-HSN(4;Q5) — far past the
// materialization ceiling — lose nothing. Run with REPRO_BIG=1.
func TestRunImplicitFaultyBigSym(t *testing.T) {
	if os.Getenv("REPRO_BIG") == "" {
		t.Skip("set REPRO_BIG=1 to run the 25M-node κ−1 fault check")
	}
	net := superip.HSN(4, superip.NucleusHypercube(5)).SymmetricVariant()
	imp, err := topo.NewImplicit(net.Super())
	if err != nil {
		t.Fatal(err)
	}
	router, err := topo.NewAlgebraic(net.Super())
	if err != nil {
		t.Fatal(err)
	}
	inner, err := topo.NewAlgebraic(net.Super())
	if err != nil {
		t.Fatal(err)
	}
	fs := topo.NewFaultSet()
	fa := topo.NewFaultAware(imp, inner, fs)
	n := imp.N()
	if n != 25165824 {
		t.Fatalf("sym-HSN(4;Q5) has %d nodes, expected 25165824", n)
	}
	rng := rand.New(rand.NewSource(71))
	src := rng.Int63n(n)
	dst := rng.Int63n(n - 1)
	if dst >= src {
		dst++
	}
	routes, err := topo.DisjointRoutes(imp, router, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(routes) != net.Degree() {
		t.Fatalf("%d disjoint routes, want κ = %d", len(routes), net.Degree())
	}
	primary, err := router.Path(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	spare := -1
	for i, rt := range routes {
		if rt[1] != primary[1] {
			spare = i
			break
		}
	}
	if spare < 0 {
		t.Fatal("every disjoint route shares the primary's first hop")
	}
	plan := &FaultPlan{}
	for i, rt := range routes {
		if i == spare {
			continue
		}
		plan.LinkDown(0, int32(rt[0]), int32(rt[1]), 0)
	}
	// First, the pair itself: walk the fault-aware router hop by hop with
	// the κ−1 faults live. At 25M nodes uniform injection essentially never
	// draws the chosen src, so the sim below cannot exercise this pair.
	for i, rt := range routes {
		if i == spare {
			continue
		}
		fs.FailLinkBoth(rt[0], rt[1])
	}
	cur, degradedSeen := src, false
	bound := 4*len(primary) + fa.MaxDetourTTL + 64
	for hops := 0; cur != dst; hops++ {
		if hops > bound {
			t.Fatalf("pair walk exceeded %d hops (primary has %d)", bound, len(primary)-1)
		}
		nxt, deg, err := fa.NextHopFlagged(cur, dst)
		if err != nil {
			t.Fatalf("κ−1 faults made the pair unroutable at %d: %v", cur, err)
		}
		if fs.Blocked(cur, nxt) {
			t.Fatalf("router crossed failed link %d -> %d", cur, nxt)
		}
		degradedSeen = degradedSeen || deg
		cur = nxt
	}
	if !degradedSeen {
		t.Fatal("primary route was cut; the walk should be flagged degraded")
	}
	reroutes, detourHops := fa.RerouteCounts()
	if reroutes == 0 {
		t.Fatal("no reroutes recorded for the cut pair")
	}
	if int(detourHops) > bound {
		t.Fatalf("detour search spent %d hops, want O(route length) ~ %d", detourHops, len(primary))
	}

	// Then system-wide zero loss: uniform background traffic over all 25M
	// nodes with the same faults applied by the scheduler (fs reset first so
	// the plan's strikes are the only live faults; refcounts stay balanced).
	fs.Reset()
	st, err := RunImplicitFaulty(ImplicitConfig{Topo: imp, Router: fa,
		InjectionRate: 2e-7, WarmupCycles: 20, MeasureCycles: 200, Seed: 73},
		ImplicitFaultConfig{Plan: plan, Faults: fs})
	if err != nil {
		t.Fatal(err)
	}
	if st.Injected == 0 {
		t.Fatal("no background traffic injected")
	}
	if st.Delivered != st.Injected || st.Lost != 0 || st.Expired != 0 {
		t.Fatalf("κ−1 faults on the 25M-node instance lost traffic: %+v", st)
	}
}

// TestValidateTopoMatchesValidate checks the satellite refactor: the
// topology-generic validation accepts exactly what the graph-based wrapper
// accepts, and both reject out-of-range nodes and non-edges.
func TestValidateTopoMatchesValidate(t *testing.T) {
	net, imp, _, _ := faultTestNet(t)
	g, _, err := net.BuildWithIndex()
	if err != nil {
		t.Fatal(err)
	}
	// Note: implicit and materialized id spaces differ, so cross-validate
	// structural properties per space rather than one plan on both.
	good := faultyPlanFor(t, imp, 9)
	if err := good.ValidateTopo(imp); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	gplan, err := RandomFaults{MTBF: 20, Horizon: 200, Seed: 4}.Plan(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := gplan.Validate(g); err != nil {
		t.Fatalf("graph-drawn plan rejected by wrapper: %v", err)
	}

	bad := &FaultPlan{}
	bad.NodeDown(0, int32(imp.N()), 0)
	if err := bad.ValidateTopo(imp); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	var buf []int64
	buf = imp.Neighbors(0, buf)
	nonNbr := int64(1)
	for _, v := range buf {
		if v == nonNbr {
			nonNbr = v + 1 // neighbors are sorted; walk past collisions
		}
	}
	bad2 := &FaultPlan{}
	bad2.LinkDown(0, 0, int32(nonNbr), 0)
	if err := bad2.ValidateTopo(imp); err == nil {
		t.Fatalf("non-edge 0-%d accepted", nonNbr)
	}
	bad3 := &FaultPlan{}
	bad3.LinkDown(-1, 0, int32(buf[0]), 0)
	if err := bad3.ValidateTopo(imp); err == nil {
		t.Fatal("negative cycle accepted")
	}
}

// TestPlanTopoDeterministic pins PlanTopo: same seed, same schedule; every
// event validates against the topology it was drawn for.
func TestPlanTopoDeterministic(t *testing.T) {
	_, imp, _, _ := faultTestNet(t)
	gen := RandomFaults{MTBF: 10, RepairTime: 50, NodeFraction: 0.2, Horizon: 500, Seed: 6}
	a, err := gen.PlanTopo(imp)
	if err != nil {
		t.Fatal(err)
	}
	b, err := gen.PlanTopo(imp)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("plan lengths differ: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a.Events[i], b.Events[i])
		}
	}
	if len(a.Events) == 0 {
		t.Fatal("MTBF 10 over 500 cycles drew no faults")
	}
	if err := a.ValidateTopo(imp); err != nil {
		t.Fatalf("generated plan invalid: %v", err)
	}
}
