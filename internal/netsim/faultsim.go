// Fault-tolerant operation: RunFaulty executes the packet simulator while a
// FaultPlan kills (and possibly heals) links and nodes mid-run. Three layers
// keep traffic flowing, mirroring how real interconnects operate through
// failures:
//
//  1. Fault-adaptive routing. Per-destination next-hop tables are rebuilt
//     against the surviving topology when a failure (or repair) notification
//     arrives (route.BFSNextHopsAvoiding); notifications propagate after
//     FaultConfig.NotifyDelay cycles, during which packets route on stale
//     tables.
//  2. Local detour. A packet whose tabled next hop is dead (stale table, or
//     no live minimal hop at all) misroutes to a random live neighbor,
//     spending one unit of a bounded detour TTL; when the TTL or all
//     neighbors are exhausted the copy is dropped.
//  3. End-to-end reliability. Every packet is a flow tracked at its source:
//     if no copy reaches the destination within a timeout the source
//     retransmits with exponential backoff, up to MaxRetries; destinations
//     suppress duplicate copies by sequence number. A hop-count watchdog
//     kills livelocked copies, and flows whose endpoints are disconnected
//     are detected and reported.
//
// The degraded-mode statistics (FaultStats) extend the fault-free Stats with
// loss, retransmission, misroute, reroute-latency, and disconnection
// counters, plus the latency inflation against a fault-free baseline.
package netsim

import (
	"fmt"
	"math/rand"

	"repro/internal/obs"
	"repro/internal/route"
)

// FaultConfig parameterizes fault injection and the recovery protocol.
type FaultConfig struct {
	// Plan is the fault schedule (nil or empty = fault-free run).
	Plan *FaultPlan
	// RetransmitTimeout is the source-side timeout in cycles before the
	// first retransmission of an undelivered packet; it doubles on every
	// retry (exponential backoff). 0 selects the default (64).
	RetransmitTimeout int
	// MaxRetries bounds retransmissions per flow. 0 selects the default
	// (8); a negative value disables retransmission entirely.
	MaxRetries int
	// DetourTTL is the per-transmission misroute budget: how many non-
	// minimal detour hops one copy may take around dead components. 0
	// selects the default (16); a negative value disables detours.
	DetourTTL int
	// NotifyDelay is how many cycles a topology change takes to reach the
	// routing layer; until then tables stay stale and packets rely on
	// detours. The rebuild itself uses the true current topology.
	NotifyDelay int
}

func (fc *FaultConfig) normalize() error {
	if fc.RetransmitTimeout < 0 {
		return fmt.Errorf("netsim: negative RetransmitTimeout %d", fc.RetransmitTimeout)
	}
	if fc.RetransmitTimeout == 0 {
		fc.RetransmitTimeout = 64
	}
	if fc.MaxRetries == 0 {
		fc.MaxRetries = 8
	}
	if fc.DetourTTL == 0 {
		fc.DetourTTL = 16
	}
	if fc.NotifyDelay < 0 {
		return fmt.Errorf("netsim: negative NotifyDelay %d", fc.NotifyDelay)
	}
	return nil
}

// FaultStats extends Stats with degraded-mode counters. Injected counts
// measured flows (originals, not retransmissions); every measured flow ends
// as either Delivered or Lost.
type FaultStats struct {
	Stats
	// Lost counts measured flows abandoned after MaxRetries retransmissions
	// (or still undelivered at the drain deadline).
	Lost int
	// Retransmitted counts source-side retransmissions of measured flows.
	Retransmitted int
	// Duplicates counts copies of measured flows that arrived after the
	// flow was already delivered (suppressed at the destination).
	Duplicates int
	// MisroutedHops counts detour hops taken because the tabled next hop
	// was dead or no minimal live hop existed.
	MisroutedHops int
	// RerouteEvents counts per-destination next-hop table rebuilds
	// triggered by fault/repair notifications.
	RerouteEvents int
	// MeanTimeToReroute is the mean number of cycles (simulator cycles,
	// the same unit as latencies and NotifyDelay) between a topology
	// change and the (lazy, notification-delayed) rebuild of a table that
	// change invalidated.
	MeanTimeToReroute float64
	// DisconnectedPairs counts lost measured flows whose source and
	// destination had no live path when the flow was abandoned.
	DisconnectedPairs int
	// FaultsInjected and FaultsRepaired count fault events applied and
	// healed during the run.
	FaultsInjected, FaultsRepaired int
	// LatencyInflation is AvgLatency divided by the fault-free baseline
	// latency; it is only filled in by RunFaultyWithBaseline (0 otherwise).
	LatencyInflation float64
	// DeliveredDegraded counts measured packets that were delivered over a
	// route that deviated from the primary algebraic route because of
	// faults (RunImplicitFaulty with a fault-aware router only).
	DeliveredDegraded int
	// HopLimitDrops counts measured packets dropped by the MaxHops
	// watchdog, a subset of Lost (RunImplicitFaulty only; RunFaulty's
	// watchdog drops copies, which surface as Lost or Retransmitted).
	HopLimitDrops int
}

// fpacket is one in-flight copy of a flow.
type fpacket struct {
	dst      int32
	seq      int32
	ttl      int // remaining detour budget for this copy
	hops     int // total hops taken (livelock watchdog)
	measured bool
}

// flowState is the source-side record backing retransmission.
type flowState struct {
	src, dst int32
	born     int
	timeout  int // current backoff value
	attempt  int // retransmissions performed
	measured bool
	done     bool // delivered or abandoned
}

// RunFaulty executes the simulation under cfg while applying fc.Plan.
// With a nil/empty plan and default protocol parameters it reproduces
// Run(cfg) exactly (same RNG draw sequence).
func RunFaulty(cfg Config, fc FaultConfig) (FaultStats, error) {
	if err := cfg.normalize(); err != nil {
		return FaultStats{}, err
	}
	if err := fc.normalize(); err != nil {
		return FaultStats{}, err
	}
	g := cfg.Graph
	n := g.N()
	if err := fc.Plan.Validate(g); err != nil {
		return FaultStats{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	pb := cfg.Probe // nil-check fast path, as in Run

	// ---- topology liveness (reference-counted for overlapping faults) ----
	nodeDownCnt := make([]int, n)
	links := make([][]faultLink, n)
	slotOf := make([]map[int32]int, n)
	for u := 0; u < n; u++ {
		adj := g.Neighbors(int32(u))
		links[u] = make([]faultLink, len(adj))
		slotOf[u] = make(map[int32]int, len(adj))
		for s, v := range adj {
			slotOf[u][v] = s
		}
	}
	nodeDead := func(v int32) bool { return nodeDownCnt[v] > 0 }
	linkDead := func(u, v int32) bool { return links[u][slotOf[u][v]].downCnt > 0 }

	// Epoch bookkeeping: epochCycle[e] is the cycle at which epoch e began
	// (one bump per cycle that changed the topology).
	epochCycle := []int{0}
	topoEpoch := 0
	visEpoch := 0 // epochs whose changes have propagated (NotifyDelay old)

	// Scheduled events, bucketed by cycle.
	type topoChange struct {
		kind FaultKind
		u, v int32
		down bool
	}
	changesAt := map[int][]topoChange{}
	for _, e := range fc.Plan.sorted() {
		changesAt[e.Cycle] = append(changesAt[e.Cycle], topoChange{kind: e.Kind, u: e.U, v: e.V, down: true})
		if e.Transient() {
			changesAt[e.Repair] = append(changesAt[e.Repair], topoChange{kind: e.Kind, u: e.U, v: e.V, down: false})
		}
	}

	// ---- routing tables, rebuilt lazily on visible topology changes ----
	tables := make([]route.NextHopTable, n)
	tableEpoch := make([]int, n)
	var allTables [][][]int32
	if cfg.Adaptive {
		allTables = make([][][]int32, n)
	}
	st := FaultStats{}
	var rerouteLagSum int64
	freshen := func(dst int32, now int) {
		built := cfg.Adaptive && allTables[dst] != nil || !cfg.Adaptive && tables[dst] != nil
		if built && tableEpoch[dst] >= visEpoch {
			return
		}
		if built {
			// The first change this table missed began epoch tableEpoch+1.
			st.RerouteEvents++
			lag := now - epochCycle[tableEpoch[dst]+1]
			rerouteLagSum += int64(lag)
			if pb != nil {
				pb.Reroute(now, int64(dst), lag)
			}
		}
		if cfg.Adaptive {
			allTables[dst] = route.BFSAllNextHopsAvoiding(g, dst, nodeDead, linkDead)
		} else {
			tables[dst] = route.BFSNextHopsAvoiding(g, dst, nodeDead, linkDead)
		}
		tableEpoch[dst] = topoEpoch
	}
	// nextHop picks the forwarding hop for a copy at node `at`, preferring
	// the (possibly stale) table and falling back to a TTL-bounded detour.
	// ok=false means the copy is dropped.
	nextHop := func(at int32, p *fpacket, now int) (nh int32, ok bool) {
		freshen(p.dst, now)
		if cfg.Adaptive {
			opts := allTables[p.dst][at]
			// Filter to currently-live options (the table may be stale).
			live := opts[:0:0]
			for _, v := range opts {
				if !nodeDead(v) && !linkDead(at, v) {
					live = append(live, v)
				}
			}
			if len(live) > 0 {
				return live[rng.Intn(len(live))], true
			}
		} else {
			h := tables[p.dst][at]
			if h >= 0 && !nodeDead(h) && !linkDead(at, h) {
				return h, true
			}
		}
		// Detour: misroute to a random live neighbor.
		if p.ttl <= 0 {
			if pb != nil {
				pb.Drop(now, int64(p.seq), int64(at), obs.DropTTL)
			}
			return 0, false
		}
		adj := g.Neighbors(at)
		var live []int32
		for _, v := range adj {
			if !nodeDead(v) && !linkDead(at, v) {
				live = append(live, v)
			}
		}
		if len(live) == 0 {
			if pb != nil {
				pb.Drop(now, int64(p.seq), int64(at), obs.DropNoRoute)
			}
			return 0, false
		}
		p.ttl--
		st.MisroutedHops++
		return live[rng.Intn(len(live))], true
	}

	// ---- link service periods (validated by normalize) ----
	period := func(u, v int32) int {
		if cfg.PeriodFunc != nil {
			return cfg.PeriodFunc(u, v)
		}
		if cfg.Partition == nil || cfg.Partition.Of[u] == cfg.Partition.Of[v] {
			return 1
		}
		return cfg.OffModulePeriod
	}
	maxDelay := cfg.maxServicePeriod() * cfg.Flits
	type arrival struct {
		node int32
		pkt  fpacket
	}
	ring := make([][]arrival, maxDelay+1)

	// ---- flow table and retransmission schedule ----
	var flows []flowState
	retryAt := map[int][]int32{}
	outstandingMeasured := 0
	var latencySum int64
	hopLimit := 8 * n

	reachable := func(src, dst int32) bool {
		if nodeDead(src) || nodeDead(dst) {
			return false
		}
		t := route.BFSNextHopsAvoiding(g, dst, nodeDead, linkDead)
		return t[src] >= 0
	}
	abandon := func(now int, seq int32) {
		f := &flows[seq]
		f.done = true
		if pb != nil {
			pb.Drop(now, int64(seq), int64(f.src), obs.DropAbandoned)
		}
		if !f.measured {
			return
		}
		st.Lost++
		outstandingMeasured--
		if !reachable(f.src, f.dst) {
			st.DisconnectedPairs++
		}
	}

	// enqueue routes one copy from node `at`: deliver, forward, or drop.
	var enqueue func(now int, at int32, pkt fpacket)
	enqueue = func(now int, at int32, pkt fpacket) {
		f := &flows[pkt.seq]
		if pkt.dst == at {
			if f.done {
				if f.measured {
					st.Duplicates++
				}
				if pb != nil {
					pb.Drop(now, int64(pkt.seq), int64(at), obs.DropDuplicate)
				}
				return
			}
			f.done = true
			lat := now - f.born
			if f.measured {
				st.Delivered++
				outstandingMeasured--
				latencySum += int64(lat)
				if lat > st.MaxLatency {
					st.MaxLatency = lat
				}
			}
			if pb != nil {
				pb.Deliver(now, int64(pkt.seq), int64(at), lat, f.measured)
			}
			return
		}
		if pkt.hops >= hopLimit { // livelock watchdog
			if pb != nil {
				pb.Drop(now, int64(pkt.seq), int64(at), obs.DropHopLimit)
			}
			return
		}
		nh, ok := nextHop(at, &pkt, now)
		if !ok {
			return // copy dropped; the source timeout recovers the flow
		}
		q := &links[at][slotOf[at][nh]].queue
		*q = append(*q, pkt)
		if pb != nil {
			pb.Enqueue(now, int64(pkt.seq), int64(at), int64(nh), len(*q))
		}
	}

	applyChange := func(now int, c topoChange) {
		switch c.kind {
		case NodeFault:
			if pb != nil {
				pb.Fault(now, int64(c.u), -1, true, c.down)
			}
			if c.down {
				nodeDownCnt[c.u]++
				st.FaultsInjected++
				if nodeDownCnt[c.u] == 1 {
					// Everything queued at the dead node is lost.
					for s := range links[c.u] {
						if pb != nil {
							for _, pkt := range links[c.u][s].queue {
								pb.Drop(now, int64(pkt.seq), int64(c.u), obs.DropQueueKilled)
							}
						}
						links[c.u][s].queue = links[c.u][s].queue[:0]
					}
				}
			} else {
				nodeDownCnt[c.u]--
				st.FaultsRepaired++
			}
		case LinkFault:
			if pb != nil {
				pb.Fault(now, int64(c.u), int64(c.v), false, c.down)
			}
			mark := func(a, b int32) {
				lk := &links[a][slotOf[a][b]]
				if c.down {
					lk.downCnt++
					if lk.downCnt == 1 && len(lk.queue) > 0 {
						// Re-route the stranded queue from node a.
						q := lk.queue
						lk.queue = nil
						for _, pkt := range q {
							enqueue(now, a, pkt)
						}
					}
				} else {
					lk.downCnt--
				}
			}
			mark(c.u, c.v)
			if !g.Directed {
				mark(c.v, c.u)
			}
			if c.down {
				st.FaultsInjected++
			} else {
				st.FaultsRepaired++
			}
		}
	}

	total := cfg.WarmupCycles + cfg.MeasureCycles
	deadline := total + cfg.DrainCycles
	for now := 0; now < deadline; now++ {
		if pb != nil {
			pb.Tick(now)
		}
		// 1. Apply scheduled topology changes.
		if cs, hit := changesAt[now]; hit {
			for _, c := range cs {
				applyChange(now, c)
			}
			topoEpoch++
			epochCycle = append(epochCycle, now)
		}
		for visEpoch < topoEpoch && epochCycle[visEpoch+1]+fc.NotifyDelay <= now {
			visEpoch++
		}
		// 2. Deliver arrivals scheduled for this cycle.
		slot := now % len(ring)
		for _, a := range ring[slot] {
			if nodeDead(a.node) {
				if pb != nil {
					pb.Drop(now, int64(a.pkt.seq), int64(a.node), obs.DropDeadRouter)
				}
				continue // arrived at a dead router: copy lost
			}
			enqueue(now, a.node, a.pkt)
		}
		ring[slot] = ring[slot][:0]
		// 3. Fire retransmission timers.
		if seqs, hit := retryAt[now]; hit {
			for _, seq := range seqs {
				f := &flows[seq]
				if f.done {
					continue
				}
				if fc.MaxRetries < 0 || f.attempt >= fc.MaxRetries {
					abandon(now, seq)
					continue
				}
				f.attempt++
				if f.measured {
					st.Retransmitted++
				}
				if pb != nil {
					pb.Retransmit(now, int64(seq), int64(f.src), f.attempt)
				}
				f.timeout *= 2
				retryAt[now+f.timeout] = append(retryAt[now+f.timeout], seq)
				if !nodeDead(f.src) {
					enqueue(now, f.src, fpacket{dst: f.dst, seq: seq, ttl: maxInt(fc.DetourTTL, 0), measured: f.measured})
				}
			}
			delete(retryAt, now)
		}
		// 4. Inject new traffic.
		if now < total {
			for u := 0; u < n; u++ {
				if rng.Float64() >= cfg.InjectionRate {
					continue
				}
				dst := cfg.Pattern(int32(u), n, rng)
				if dst == int32(u) || dst < 0 || int(dst) >= n {
					continue
				}
				if nodeDead(int32(u)) || nodeDead(dst) {
					continue // dead sources stay silent; dead sinks are skipped
				}
				measured := now >= cfg.WarmupCycles
				seq := int32(len(flows))
				flows = append(flows, flowState{src: int32(u), dst: dst, born: now,
					timeout: fc.RetransmitTimeout, measured: measured})
				if measured {
					st.Injected++
					outstandingMeasured++
				}
				if pb != nil {
					pb.Inject(now, int64(seq), int64(u), int64(dst), measured)
				}
				retryAt[now+fc.RetransmitTimeout] = append(retryAt[now+fc.RetransmitTimeout], seq)
				enqueue(now, int32(u), fpacket{dst: dst, seq: seq, ttl: maxInt(fc.DetourTTL, 0), measured: measured})
			}
		} else if outstandingMeasured == 0 {
			break
		}
		// 5. Advance links: each live, free link transmits its queue head.
		for u := 0; u < n; u++ {
			if nodeDead(int32(u)) {
				continue
			}
			adj := g.Neighbors(int32(u))
			for s := range links[u] {
				lk := &links[u][s]
				if lk.downCnt > 0 || len(lk.queue) == 0 || lk.freeAt > now {
					continue
				}
				pkt := lk.queue[0]
				lk.queue = lk.queue[1:]
				pkt.hops++
				p := period(int32(u), adj[s])
				occupy := p * cfg.Flits
				lk.freeAt = now + occupy
				delay := occupy
				if cfg.CutThrough {
					delay = p
				}
				if pb != nil {
					pb.Hop(now, int64(pkt.seq), int64(u), int64(adj[s]), occupy, len(lk.queue))
				}
				ring[(now+delay)%len(ring)] = append(ring[(now+delay)%len(ring)], arrival{node: adj[s], pkt: pkt})
			}
		}
	}
	// Flows still pending at the deadline are lost; the measured ones are
	// the drain-deadline expiries (a subset of Lost).
	for seq := range flows {
		if !flows[seq].done {
			if flows[seq].measured {
				st.Expired++
			}
			abandon(deadline, int32(seq))
		}
	}
	if st.Delivered > 0 {
		st.AvgLatency = float64(latencySum) / float64(st.Delivered)
	}
	if st.RerouteEvents > 0 {
		st.MeanTimeToReroute = float64(rerouteLagSum) / float64(st.RerouteEvents)
	}
	if cfg.MeasureCycles > 0 {
		st.Throughput = float64(st.Delivered) / float64(n) / float64(cfg.MeasureCycles)
	}
	st.fillQuantiles(pb)
	return st, nil
}

// faultLink is one directed link with liveness and an outgoing FIFO.
type faultLink struct {
	queue   []fpacket
	freeAt  int
	downCnt int
}

// RunFaultyWithBaseline runs cfg fault-free (Run) and under the plan
// (RunFaulty), and returns the degraded stats with LatencyInflation filled
// in as faulty/baseline average latency, plus the baseline itself.
func RunFaultyWithBaseline(cfg Config, fc FaultConfig) (FaultStats, Stats, error) {
	// The baseline is a reference run: detach any probe so collectors see
	// only the faulty run's traffic.
	baseCfg := cfg
	baseCfg.Probe = nil
	base, err := Run(baseCfg)
	if err != nil {
		return FaultStats{}, Stats{}, err
	}
	faulty, err := RunFaulty(cfg, fc)
	if err != nil {
		return FaultStats{}, Stats{}, err
	}
	if base.AvgLatency > 0 {
		faulty.LatencyInflation = faulty.AvgLatency / base.AvgLatency
	}
	return faulty, base, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
