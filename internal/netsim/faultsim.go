// Fault-tolerant operation: RunFaulty executes the packet simulator while a
// FaultPlan kills (and possibly heals) links and nodes mid-run. Three layers
// keep traffic flowing, mirroring how real interconnects operate through
// failures:
//
//  1. Fault-adaptive routing. Per-destination next-hop tables are rebuilt
//     against the surviving topology when a failure (or repair) notification
//     arrives (route.BFSNextHopsAvoiding); notifications propagate after
//     FaultConfig.NotifyDelay cycles, during which packets route on stale
//     tables.
//  2. Local detour. A packet whose tabled next hop is dead (stale table, or
//     no live minimal hop at all) misroutes to a random live neighbor,
//     spending one unit of a bounded detour TTL; when the TTL or all
//     neighbors are exhausted the copy is dropped.
//  3. End-to-end reliability. Every packet is a flow tracked at its source:
//     if no copy reaches the destination within a timeout the source
//     retransmits with exponential backoff, up to MaxRetries; destinations
//     suppress duplicate copies by sequence number. A hop-count watchdog
//     kills livelocked copies, and flows whose endpoints are disconnected
//     are detected and reported.
//
// The degraded-mode statistics (FaultStats) extend the fault-free Stats with
// loss, retransmission, misroute, reroute-latency, and disconnection
// counters, plus the latency inflation against a fault-free baseline.
package netsim

import (
	"fmt"
	"math/rand"

	"repro/internal/obs"
	"repro/internal/route"
)

// FaultConfig parameterizes fault injection and the recovery protocol.
type FaultConfig struct {
	// Plan is the fault schedule (nil or empty = fault-free run).
	Plan *FaultPlan
	// RetransmitTimeout is the source-side timeout in cycles before the
	// first retransmission of an undelivered packet; it doubles on every
	// retry (exponential backoff). 0 selects the default (64).
	RetransmitTimeout int
	// MaxRetries bounds retransmissions per flow. 0 selects the default
	// (8); a negative value disables retransmission entirely.
	MaxRetries int
	// DetourTTL is the per-transmission misroute budget: how many non-
	// minimal detour hops one copy may take around dead components. 0
	// selects the default (16); a negative value disables detours.
	DetourTTL int
	// NotifyDelay is how many cycles a topology change takes to reach the
	// routing layer; until then tables stay stale and packets rely on
	// detours. The rebuild itself uses the true current topology.
	NotifyDelay int
}

func (fc *FaultConfig) normalize() error {
	if fc.RetransmitTimeout < 0 {
		return fmt.Errorf("netsim: negative RetransmitTimeout %d", fc.RetransmitTimeout)
	}
	if fc.RetransmitTimeout == 0 {
		fc.RetransmitTimeout = 64
	}
	if fc.MaxRetries == 0 {
		fc.MaxRetries = 8
	}
	if fc.DetourTTL == 0 {
		fc.DetourTTL = 16
	}
	if fc.NotifyDelay < 0 {
		return fmt.Errorf("netsim: negative NotifyDelay %d", fc.NotifyDelay)
	}
	return nil
}

// FaultStats extends Stats with degraded-mode counters. Injected counts
// measured flows (originals, not retransmissions); every measured flow ends
// as either Delivered or Lost.
type FaultStats struct {
	Stats
	// Lost counts measured flows abandoned after MaxRetries retransmissions
	// (or still undelivered at the drain deadline).
	Lost int
	// Retransmitted counts source-side retransmissions of measured flows.
	Retransmitted int
	// Duplicates counts copies of measured flows that arrived after the
	// flow was already delivered (suppressed at the destination).
	Duplicates int
	// MisroutedHops counts detour hops taken because the tabled next hop
	// was dead or no minimal live hop existed.
	MisroutedHops int
	// RerouteEvents counts per-destination next-hop table rebuilds
	// triggered by fault/repair notifications.
	RerouteEvents int
	// MeanTimeToReroute is the mean number of cycles (simulator cycles,
	// the same unit as latencies and NotifyDelay) between a topology
	// change and the (lazy, notification-delayed) rebuild of a table that
	// change invalidated.
	MeanTimeToReroute float64
	// DisconnectedPairs counts lost measured flows whose source and
	// destination had no live path when the flow was abandoned.
	DisconnectedPairs int
	// FaultsInjected and FaultsRepaired count fault events applied and
	// healed during the run.
	FaultsInjected, FaultsRepaired int
	// LatencyInflation is AvgLatency divided by the fault-free baseline
	// latency; it is only filled in by RunFaultyWithBaseline (0 otherwise).
	LatencyInflation float64
	// DeliveredDegraded counts measured packets that were delivered over a
	// route that deviated from the primary algebraic route because of
	// faults (RunImplicitFaulty with a fault-aware router only).
	DeliveredDegraded int
	// HopLimitDrops counts measured packets dropped by the MaxHops
	// watchdog, a subset of Lost (RunImplicitFaulty only; RunFaulty's
	// watchdog drops copies, which surface as Lost or Retransmitted).
	HopLimitDrops int
}

// flowState is the source-side record backing retransmission. The in-flight
// copies themselves are epackets whose id is the flow sequence number.
type flowState struct {
	src, dst int32
	born     int
	timeout  int // current backoff value
	attempt  int // retransmissions performed
	measured bool
	done     bool // delivered or abandoned
}

// RunFaulty executes the simulation under cfg while applying fc.Plan.
// With a nil/empty plan and default protocol parameters it reproduces
// Run(cfg) exactly (same RNG draw sequence).
func RunFaulty(cfg Config, fc FaultConfig) (FaultStats, error) {
	if err := cfg.normalize(); err != nil {
		return FaultStats{}, err
	}
	if err := fc.normalize(); err != nil {
		return FaultStats{}, err
	}
	if err := fc.Plan.Validate(cfg.Graph); err != nil {
		return FaultStats{}, err
	}
	return runFaultyNormalized(cfg, fc)
}

// runFaultyNormalized assembles the degraded-mode materialized variant of
// the engine and runs it. cfg, fc, and the plan must already be
// normalized/validated; RunFaultyWithBaseline calls this directly so
// baseline and faulty runs share one setup pass.
func runFaultyNormalized(cfg Config, fc FaultConfig) (FaultStats, error) {
	g := cfg.Graph
	n := g.N()
	rng := rand.New(rand.NewSource(cfg.Seed))
	pb := cfg.Probe // nil-check fast path, as in Run

	// ---- topology liveness (reference-counted for overlapping faults) ----
	nodeDownCnt := make([]int, n)
	dense := newDenseLinks(g)
	nodeDead := func(v int32) bool { return nodeDownCnt[v] > 0 }
	linkDead := func(u, v int32) bool { return dense.at(int64(u), int64(v)).downCnt > 0 }

	// Epoch bookkeeping: epochCycle[e] is the cycle at which epoch e began
	// (one bump per cycle that changed the topology).
	epochCycle := []int{0}
	topoEpoch := 0
	visEpoch := 0 // epochs whose changes have propagated (NotifyDelay old)

	// Scheduled events, bucketed by cycle.
	type topoChange struct {
		kind FaultKind
		u, v int32
		down bool
	}
	changesAt := map[int][]topoChange{}
	for _, e := range fc.Plan.sorted() {
		changesAt[e.Cycle] = append(changesAt[e.Cycle], topoChange{kind: e.Kind, u: e.U, v: e.V, down: true})
		if e.Transient() {
			changesAt[e.Repair] = append(changesAt[e.Repair], topoChange{kind: e.Kind, u: e.U, v: e.V, down: false})
		}
	}

	// ---- routing tables, rebuilt lazily on visible topology changes ----
	tables := make([]route.NextHopTable, n)
	tableEpoch := make([]int, n)
	var allTables [][][]int32
	if cfg.Adaptive {
		allTables = make([][][]int32, n)
	}
	st := FaultStats{}
	var rerouteLagSum int64
	freshen := func(dst int32, now int) {
		built := cfg.Adaptive && allTables[dst] != nil || !cfg.Adaptive && tables[dst] != nil
		if built && tableEpoch[dst] >= visEpoch {
			return
		}
		if built {
			// The first change this table missed began epoch tableEpoch+1.
			st.RerouteEvents++
			lag := now - epochCycle[tableEpoch[dst]+1]
			rerouteLagSum += int64(lag)
			if pb != nil {
				pb.Reroute(now, int64(dst), lag)
			}
		}
		if cfg.Adaptive {
			allTables[dst] = route.BFSAllNextHopsAvoiding(g, dst, nodeDead, linkDead)
		} else {
			tables[dst] = route.BFSNextHopsAvoiding(g, dst, nodeDead, linkDead)
		}
		tableEpoch[dst] = topoEpoch
	}

	// ---- flow table and retransmission schedule ----
	var flows []flowState
	retryAt := map[int][]int32{}
	outstandingMeasured := 0
	var latencySum int64

	e := &engine{
		pb:         pb,
		store:      dense,
		ring:       make([][]earrival, cfg.maxServicePeriod()*cfg.Flits+1),
		flits:      cfg.Flits,
		cutThrough: cfg.CutThrough,
		period:     materializedPeriod(&cfg),
		total:      cfg.WarmupCycles + cfg.MeasureCycles,
		hopLimit:   8 * n, // livelock watchdog
	}
	e.deadline = e.total + cfg.DrainCycles

	// route picks the forwarding hop for a copy at node `at`, preferring
	// the (possibly stale) table and falling back to a TTL-bounded detour.
	// ok=false means the copy is dropped; the source timeout recovers the
	// flow.
	e.route = func(now int, at64 int64, pkt *epacket) (int64, bool, error) {
		at, dst := int32(at64), int32(pkt.dst)
		freshen(dst, now)
		if cfg.Adaptive {
			opts := allTables[dst][at]
			// Filter to currently-live options (the table may be stale).
			live := opts[:0:0]
			for _, v := range opts {
				if !nodeDead(v) && !linkDead(at, v) {
					live = append(live, v)
				}
			}
			if len(live) > 0 {
				return int64(live[rng.Intn(len(live))]), true, nil
			}
		} else {
			h := tables[dst][at]
			if h >= 0 && !nodeDead(h) && !linkDead(at, h) {
				return int64(h), true, nil
			}
		}
		// Detour: misroute to a random live neighbor.
		if pkt.ttl <= 0 {
			if pb != nil {
				pb.Drop(now, pkt.id, at64, obs.DropTTL)
			}
			return 0, false, nil
		}
		adj := g.Neighbors(at)
		var live []int32
		for _, v := range adj {
			if !nodeDead(v) && !linkDead(at, v) {
				live = append(live, v)
			}
		}
		if len(live) == 0 {
			if pb != nil {
				pb.Drop(now, pkt.id, at64, obs.DropNoRoute)
			}
			return 0, false, nil
		}
		pkt.ttl--
		st.MisroutedHops++
		return int64(live[rng.Intn(len(live))]), true, nil
	}
	// The hop-count watchdog kills livelocked copies; the flow recovers at
	// the source.
	e.onHopLimit = func(now int, at int64, pkt *epacket) error {
		if pb != nil {
			pb.Drop(now, pkt.id, at, obs.DropHopLimit)
		}
		return nil
	}

	reachable := func(src, dst int32) bool {
		if nodeDead(src) || nodeDead(dst) {
			return false
		}
		t := route.BFSNextHopsAvoiding(g, dst, nodeDead, linkDead)
		return t[src] >= 0
	}
	abandon := func(now int, seq int32) {
		f := &flows[seq]
		f.done = true
		if pb != nil {
			pb.Drop(now, int64(seq), int64(f.src), obs.DropAbandoned)
		}
		if !f.measured {
			return
		}
		st.Lost++
		outstandingMeasured--
		if !reachable(f.src, f.dst) {
			st.DisconnectedPairs++
		}
	}

	// Delivery consults the flow table: late copies of an already-done flow
	// are suppressed as duplicates.
	e.deliver = func(now int, at int64, pkt *epacket) {
		f := &flows[pkt.id]
		if f.done {
			if f.measured {
				st.Duplicates++
			}
			if pb != nil {
				pb.Drop(now, pkt.id, at, obs.DropDuplicate)
			}
			return
		}
		f.done = true
		lat := now - f.born
		if f.measured {
			st.Delivered++
			outstandingMeasured--
			latencySum += int64(lat)
			if lat > st.MaxLatency {
				st.MaxLatency = lat
			}
		}
		if pb != nil {
			pb.Deliver(now, pkt.id, at, lat, f.measured)
		}
	}

	applyChange := func(now int, c topoChange) error {
		switch c.kind {
		case NodeFault:
			if pb != nil {
				pb.Fault(now, int64(c.u), -1, true, c.down)
			}
			if c.down {
				nodeDownCnt[c.u]++
				st.FaultsInjected++
				if nodeDownCnt[c.u] == 1 {
					// Everything queued at the dead node is lost.
					for s := range dense.links[c.u] {
						lk := &dense.links[c.u][s]
						if pb != nil {
							for _, pkt := range lk.queue {
								pb.Drop(now, pkt.id, int64(c.u), obs.DropQueueKilled)
							}
						}
						lk.queue = lk.queue[:0]
					}
				}
			} else {
				nodeDownCnt[c.u]--
				st.FaultsRepaired++
			}
		case LinkFault:
			if pb != nil {
				pb.Fault(now, int64(c.u), int64(c.v), false, c.down)
			}
			mark := func(a, b int32) error {
				lk := dense.at(int64(a), int64(b))
				if c.down {
					lk.downCnt++
					if lk.downCnt == 1 && len(lk.queue) > 0 {
						// Re-route the stranded queue from node a.
						q := lk.queue
						lk.queue = nil
						for _, pkt := range q {
							if err := e.enqueue(now, int64(a), pkt); err != nil {
								return err
							}
						}
					}
				} else {
					lk.downCnt--
				}
				return nil
			}
			if err := mark(c.u, c.v); err != nil {
				return err
			}
			if !g.Directed {
				if err := mark(c.v, c.u); err != nil {
					return err
				}
			}
			if c.down {
				st.FaultsInjected++
			} else {
				st.FaultsRepaired++
			}
		}
		return nil
	}
	e.applyChanges = func(now int) error {
		if cs, hit := changesAt[now]; hit {
			for _, c := range cs {
				if err := applyChange(now, c); err != nil {
					return err
				}
			}
			topoEpoch++
			epochCycle = append(epochCycle, now)
		}
		for visEpoch < topoEpoch && epochCycle[visEpoch+1]+fc.NotifyDelay <= now {
			visEpoch++
		}
		return nil
	}
	e.arrivalDead = func(now int, node int64, pkt *epacket) bool {
		if nodeDead(int32(node)) {
			if pb != nil {
				pb.Drop(now, pkt.id, node, obs.DropDeadRouter)
			}
			return true // arrived at a dead router: copy lost
		}
		return false
	}
	e.fireRetries = func(now int) error {
		seqs, hit := retryAt[now]
		if !hit {
			return nil
		}
		for _, seq := range seqs {
			f := &flows[seq]
			if f.done {
				continue
			}
			if fc.MaxRetries < 0 || f.attempt >= fc.MaxRetries {
				abandon(now, seq)
				continue
			}
			f.attempt++
			if f.measured {
				st.Retransmitted++
			}
			if pb != nil {
				pb.Retransmit(now, int64(seq), int64(f.src), f.attempt)
			}
			f.timeout *= 2
			retryAt[now+f.timeout] = append(retryAt[now+f.timeout], seq)
			if !nodeDead(f.src) {
				if err := e.enqueue(now, int64(f.src), epacket{id: int64(seq), dst: int64(f.dst),
					born: now, ttl: maxInt(fc.DetourTTL, 0), measured: f.measured}); err != nil {
					return err
				}
			}
		}
		delete(retryAt, now)
		return nil
	}
	e.inject = func(now int) error {
		for u := 0; u < n; u++ {
			if rng.Float64() >= cfg.InjectionRate {
				continue
			}
			dst := cfg.Pattern(int32(u), n, rng)
			if dst == int32(u) || dst < 0 || int(dst) >= n {
				continue
			}
			if nodeDead(int32(u)) || nodeDead(dst) {
				continue // dead sources stay silent; dead sinks are skipped
			}
			measured := now >= cfg.WarmupCycles
			seq := int32(len(flows))
			flows = append(flows, flowState{src: int32(u), dst: dst, born: now,
				timeout: fc.RetransmitTimeout, measured: measured})
			if measured {
				st.Injected++
				outstandingMeasured++
			}
			if pb != nil {
				pb.Inject(now, int64(seq), int64(u), int64(dst), measured)
			}
			retryAt[now+fc.RetransmitTimeout] = append(retryAt[now+fc.RetransmitTimeout], seq)
			if err := e.enqueue(now, int64(u), epacket{id: int64(seq), dst: int64(dst),
				born: now, ttl: maxInt(fc.DetourTTL, 0), measured: measured}); err != nil {
				return err
			}
		}
		return nil
	}
	e.canStop = func(int) bool { return outstandingMeasured == 0 }
	e.blocked = func(lk *elink) bool { return nodeDownCnt[lk.u] > 0 || lk.downCnt > 0 }

	if err := e.run(); err != nil {
		return st, err
	}
	// Flows still pending at the deadline are lost; the measured ones are
	// the drain-deadline expiries (a subset of Lost).
	for seq := range flows {
		if !flows[seq].done {
			if flows[seq].measured {
				st.Expired++
			}
			abandon(e.deadline, int32(seq))
		}
	}
	if st.Delivered > 0 {
		st.AvgLatency = float64(latencySum) / float64(st.Delivered)
	}
	if st.RerouteEvents > 0 {
		st.MeanTimeToReroute = float64(rerouteLagSum) / float64(st.RerouteEvents)
	}
	if cfg.MeasureCycles > 0 {
		st.Throughput = float64(st.Delivered) / float64(n) / float64(cfg.MeasureCycles)
	}
	st.fillQuantiles(pb)
	return st, nil
}

// RunFaultyWithBaseline runs cfg fault-free (Run) and under the plan
// (RunFaulty), and returns the degraded stats with LatencyInflation filled
// in as faulty/baseline average latency, plus the baseline itself. Both runs
// share one setup pass: the configuration is normalized and the plan
// validated once, then the two engine variants are assembled from the same
// normalized inputs.
func RunFaultyWithBaseline(cfg Config, fc FaultConfig) (FaultStats, Stats, error) {
	if err := cfg.normalize(); err != nil {
		return FaultStats{}, Stats{}, err
	}
	if err := fc.normalize(); err != nil {
		return FaultStats{}, Stats{}, err
	}
	if err := fc.Plan.Validate(cfg.Graph); err != nil {
		return FaultStats{}, Stats{}, err
	}
	// The baseline is a reference run: detach any probe so collectors see
	// only the faulty run's traffic.
	baseCfg := cfg
	baseCfg.Probe = nil
	base, err := runNormalized(baseCfg)
	if err != nil {
		return FaultStats{}, Stats{}, err
	}
	faulty, err := runFaultyNormalized(cfg, fc)
	if err != nil {
		return FaultStats{}, Stats{}, err
	}
	if base.AvgLatency > 0 {
		faulty.LatencyInflation = faulty.AvgLatency / base.AvgLatency
	}
	return faulty, base, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
