package netsim

import (
	"testing"

	"repro/internal/networks"
	"repro/internal/obs"
	"repro/internal/superip"
	"repro/internal/topo"
)

// Micro-benchmarks for the simulator's building blocks, sized so one
// iteration is cheap enough for tight -count loops under cmd/bench. All
// report allocations: the simulator's hot loop is supposed to be
// allocation-free per cycle, so an allocs/op regression here is a bug
// signal on its own, not just a speed signal.

// BenchmarkRunQ6 is one small fault-free run: the hypercube baseline every
// latency comparison in the Section 5.4 scenario rests on.
func BenchmarkRunQ6(b *testing.B) {
	g, err := (networks.Hypercube{Dim: 6}).Build()
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{Graph: g, InjectionRate: 0.01, WarmupCycles: 50, MeasureCycles: 300}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFaultPlanGen measures random fault-schedule generation
// (validation included) on the same substrate.
func BenchmarkFaultPlanGen(b *testing.B) {
	g, err := (networks.Hypercube{Dim: 6}).Build()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (RandomFaults{
			MTBF: 100, RepairTime: 150, Start: 50, Horizon: 500,
			MaxFaults: 8, Seed: int64(i + 1),
		}).Plan(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunFaultyQ6 prices the degraded-mode loop (reroutes, detours,
// retransmissions) against BenchmarkRunQ6.
func BenchmarkRunFaultyQ6(b *testing.B) {
	g, err := (networks.Hypercube{Dim: 6}).Build()
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{Graph: g, InjectionRate: 0.01, WarmupCycles: 50, MeasureCycles: 300}
	plan, err := (RandomFaults{
		MTBF: 100, RepairTime: 150, Start: cfg.WarmupCycles,
		Horizon: cfg.WarmupCycles + cfg.MeasureCycles, MaxFaults: 4, Seed: 1,
	}).Plan(g)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, err := RunFaulty(cfg, FaultConfig{Plan: plan}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunImplicitQ6 measures the sparse implicit-topology simulator on
// the same workload as BenchmarkRunQ6 (Q6, uniform traffic, 1% load), so the
// two rows in the baseline bound the cost of trading materialized tables for
// on-the-fly algebraic state.
func BenchmarkRunImplicitQ6(b *testing.B) {
	cfg := ImplicitConfig{
		Topo:          topo.HypercubeTopo{Dim: 6},
		Router:        topo.HypercubeRouter{Dim: 6},
		InjectionRate: 0.01,
		WarmupCycles:  50, MeasureCycles: 300,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, err := RunImplicit(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunImplicitQ6Probed measures the BenchmarkRunImplicitQ6 workload
// with collectors attached (latency histogram, module-aggregated series, and
// a sparse per-link time series) — the price of observing an implicit run.
// Comparing against the nil-probe row above bounds the whole observability
// layer; the nil-probe row itself must not move when probes are added to the
// simulator (zero-overhead-when-disabled).
func BenchmarkRunImplicitQ6Probed(b *testing.B) {
	cfg := ImplicitConfig{
		Topo:          topo.HypercubeTopo{Dim: 6},
		Router:        topo.HypercubeRouter{Dim: 6},
		InjectionRate: 0.01,
		WarmupCycles:  50, MeasureCycles: 300,
	}
	moduleOf := func(u int64) int64 { return u >> 3 }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		cfg.Probe = obs.Multi(
			&obs.LatencyHist{},
			obs.NewModuleSeries(moduleOf, 50),
			obs.NewTimeSeries(moduleOf, 50),
		)
		if _, err := RunImplicit(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunImplicitFaultyQ6 measures the degraded-mode implicit simulator
// on the BenchmarkRunImplicitQ6 workload plus a small permanent-fault plan,
// so the baseline bounds what the fault machinery (fault set consultation,
// change scheduling, reroute bookkeeping) costs over the fault-free path.
func BenchmarkRunImplicitFaultyQ6(b *testing.B) {
	ht := topo.HypercubeTopo{Dim: 6}
	plan := (&FaultPlan{}).
		LinkDown(60, 0, 1, 0).
		LinkDown(80, 5, 7, 200).
		LinkDown(120, 33, 37, 0)
	cfg := ImplicitConfig{
		Topo:          ht,
		InjectionRate: 0.01,
		WarmupCycles:  50, MeasureCycles: 300,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		fs := topo.NewFaultSet()
		cfg.Router = topo.NewFaultAware(ht, topo.HypercubeRouter{Dim: 6}, fs)
		if _, err := RunImplicitFaulty(cfg, ImplicitFaultConfig{Plan: plan, Faults: fs}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHotspotPattern measures destination selection under the skewed
// traffic pattern (per-packet work on the injection path).
func BenchmarkHotspotPattern(b *testing.B) {
	g, err := (networks.Hypercube{Dim: 6}).Build()
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{
		Graph: g, InjectionRate: 0.01, WarmupCycles: 50, MeasureCycles: 300,
		Pattern: mustHotspot(b, 0.2),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunShardedQ6 prices the sharded engine's coordination machinery
// against BenchmarkRunImplicitQ6: same Q6 workload, one worker, uniform
// link period 1 — so the conservative window is a single cycle and every
// cycle pays a full barrier + merge + lane sweep. This is the worst case
// for the coordinator; the delta over RunImplicitQ6 is pure sharding
// overhead. pkts/s is delivered measured packets per wall-clock second.
func BenchmarkRunShardedQ6(b *testing.B) {
	ht := topo.HypercubeTopo{Dim: 6}
	cfg := ShardedConfig{
		NewLane: func() (Topology, Router, FaultSink, error) {
			return ht, topo.HypercubeRouter{Dim: 6}, nil, nil
		},
		Space:         topo.SubcubeSpace{Dim: 6, Low: 3},
		InjectionRate: 0.01,
		WarmupCycles:  50, MeasureCycles: 300,
		Lanes: 8,
	}
	var delivered int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		st, err := RunSharded(cfg)
		if err != nil {
			b.Fatal(err)
		}
		delivered += int64(st.Delivered)
	}
	b.ReportMetric(float64(delivered)/b.Elapsed().Seconds(), "pkts/s")
}

// BenchmarkRunImplicitSharded is the intended regime of the sharded engine:
// a super-IP instance (HSN(2;Q4), algebraic routing, off-module period 4 so
// the lookahead window is 4 cycles) stepped by two workers. Compare pkts/s
// here against BenchmarkRunShardedQ6 and the EXPERIMENTS.md scaling table;
// allocs/op guards the per-window merge paths staying growth-free.
func BenchmarkRunImplicitSharded(b *testing.B) {
	net := superip.HSN(2, superip.NucleusHypercube(4))
	space, err := topo.NewImplicit(net.Super())
	if err != nil {
		b.Fatal(err)
	}
	cfg := ShardedConfig{
		NewLane: func() (Topology, Router, FaultSink, error) {
			imp, err := topo.NewImplicit(net.Super())
			if err != nil {
				return nil, nil, nil, err
			}
			air, err := topo.NewAlgebraic(net.Super())
			return imp, air, nil, err
		},
		Space:         space,
		InjectionRate: 0.01,
		WarmupCycles:  50, MeasureCycles: 300,
		OffModulePeriod: 4,
		Lanes:           8,
		Shards:          2,
	}
	var delivered int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		st, err := RunSharded(cfg)
		if err != nil {
			b.Fatal(err)
		}
		delivered += int64(st.Delivered)
	}
	b.ReportMetric(float64(delivered)/b.Elapsed().Seconds(), "pkts/s")
}
