package netsim

import (
	"math"
	"testing"

	"repro/internal/faults"
	"repro/internal/graph"
	"repro/internal/networks"
	"repro/internal/superip"
)

func TestRunFaultyEmptyPlanMatchesRun(t *testing.T) {
	// With no faults and generous protocol parameters, RunFaulty consumes
	// the RNG in exactly the same order as Run and must reproduce its
	// statistics bit for bit (no spurious retransmissions at light load).
	// This holds when BFSNextHops and BFSNextHopsAvoiding break minimal-
	// route ties identically, which is the case on Q6; on topologies where
	// the variants pick different (equally minimal) hops, fault-free
	// latency may drift by a fraction of a percent.
	for _, adaptive := range []bool{false, true} {
		cfg := Config{Graph: mustBuild(t, networks.Hypercube{Dim: 6}.Build),
			InjectionRate: 0.02, WarmupCycles: 200, MeasureCycles: 1500,
			Seed: 17, Adaptive: adaptive}
		base, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		fs, err := RunFaulty(cfg, FaultConfig{RetransmitTimeout: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		if fs.Injected != base.Injected || fs.Delivered != base.Delivered ||
			fs.MaxLatency != base.MaxLatency ||
			math.Abs(fs.AvgLatency-base.AvgLatency) > 1e-12 {
			t.Fatalf("adaptive=%v: fault-free RunFaulty diverged from Run:\n%+v\nvs %+v",
				adaptive, fs.Stats, base)
		}
		if fs.Lost != 0 || fs.Retransmitted != 0 || fs.MisroutedHops != 0 ||
			fs.RerouteEvents != 0 || fs.FaultsInjected != 0 {
			t.Fatalf("adaptive=%v: fault-free run reported fault activity: %+v", adaptive, fs)
		}
	}
}

func TestLinkFaultsBelowConnectivityDeliverEverything(t *testing.T) {
	// Acceptance criterion: on a kappa-connected network, any kappa-1
	// permanent faults leave the graph connected, so with table repair,
	// detours, and retransmission every measured packet must be delivered.
	net := superip.HSN(2, superip.NucleusHypercube(3))
	g, err := net.Build()
	if err != nil {
		t.Fatal(err)
	}
	kappa, err := faults.VertexConnectivity(g)
	if err != nil {
		t.Fatal(err)
	}
	if kappa < 2 {
		t.Fatalf("HSN(2;Q3) kappa = %d, need >= 2 for the scenario", kappa)
	}
	// kappa-1 random link faults striking inside the measurement window.
	plan, err := RandomFaults{MTBF: 150, Start: 250, Horizon: 2000,
		MaxFaults: kappa - 1, Seed: 99}.Plan(g)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Len() != kappa-1 {
		t.Fatalf("plan drew %d faults, want %d", plan.Len(), kappa-1)
	}
	fs, err := RunFaulty(Config{Graph: g, InjectionRate: 0.02,
		WarmupCycles: 200, MeasureCycles: 2000, Seed: 23},
		FaultConfig{Plan: plan, NotifyDelay: 8})
	if err != nil {
		t.Fatal(err)
	}
	if fs.Injected == 0 {
		t.Fatal("nothing injected")
	}
	if fs.Delivered != fs.Injected || fs.Lost != 0 {
		t.Fatalf("lost packets below the connectivity bound: delivered %d of %d, lost %d",
			fs.Delivered, fs.Injected, fs.Lost)
	}
	if fs.FaultsInjected != kappa-1 {
		t.Fatalf("FaultsInjected = %d, want %d", fs.FaultsInjected, kappa-1)
	}
	if fs.RerouteEvents == 0 {
		t.Fatal("faults struck but no routing table was ever repaired")
	}
}

func TestTransientLinkFaultHealsAndRepairs(t *testing.T) {
	// A 2-connected ring survives one link fault; the fault heals mid-run
	// and both the injection and the repair must be counted.
	g := mustBuild(t, networks.Ring{Nodes: 16}.Build)
	plan := (&FaultPlan{}).LinkDown(300, 0, 1, 900)
	fs, err := RunFaulty(Config{Graph: g, InjectionRate: 0.02,
		WarmupCycles: 100, MeasureCycles: 1500, Seed: 5},
		FaultConfig{Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	if fs.FaultsInjected != 1 || fs.FaultsRepaired != 1 {
		t.Fatalf("fault accounting: injected %d repaired %d", fs.FaultsInjected, fs.FaultsRepaired)
	}
	if fs.Delivered != fs.Injected || fs.Lost != 0 {
		t.Fatalf("transient fault on a 2-connected ring lost traffic: %+v", fs)
	}
}

func TestNodeFaultLosesOnlyAffectedFlows(t *testing.T) {
	// Killing one node of Q5 mid-run: flows to it that are already in
	// flight are lost (sources stop addressing a node they know is dead),
	// everything else reroutes (Q5 minus a node stays connected), and the
	// delivered/lost split exactly covers the measured injections. Hotspot
	// traffic aimed at the victim guarantees pending flows at kill time.
	g := mustBuild(t, networks.Hypercube{Dim: 5}.Build)
	plan := (&FaultPlan{}).NodeDown(500, 0, 0)
	fs, err := RunFaulty(Config{Graph: g, InjectionRate: 0.1,
		Pattern: mustHotspot(t, 0.5), WarmupCycles: 100, MeasureCycles: 2000, Seed: 31},
		FaultConfig{Plan: plan, NotifyDelay: 4})
	if err != nil {
		t.Fatal(err)
	}
	if fs.Delivered+fs.Lost != fs.Injected {
		t.Fatalf("flow accounting leak: %d delivered + %d lost != %d injected",
			fs.Delivered, fs.Lost, fs.Injected)
	}
	if fs.Lost == 0 {
		t.Fatal("flows addressed to the dead node should be lost")
	}
	if fs.DisconnectedPairs != fs.Lost {
		t.Fatalf("every lost flow involves the dead endpoint: lost %d, disconnected %d",
			fs.Lost, fs.DisconnectedPairs)
	}
	if float64(fs.Lost) > 0.2*float64(fs.Injected) {
		t.Fatalf("one dead node of 32 lost %d of %d flows", fs.Lost, fs.Injected)
	}
}

func TestDisconnectionDetectedOnPartitionedRing(t *testing.T) {
	// Two link faults split a ring into two arcs; cross-partition flows
	// must be detected as disconnected and counted lost, same-side flows
	// still delivered.
	g := mustBuild(t, networks.Ring{Nodes: 16}.Build)
	plan := (&FaultPlan{}).LinkDown(150, 0, 1, 0).LinkDown(150, 8, 9, 0)
	fs, err := RunFaulty(Config{Graph: g, InjectionRate: 0.02,
		WarmupCycles: 100, MeasureCycles: 1200, Seed: 41},
		FaultConfig{Plan: plan, MaxRetries: 3, RetransmitTimeout: 32})
	if err != nil {
		t.Fatal(err)
	}
	if fs.Lost == 0 || fs.DisconnectedPairs == 0 {
		t.Fatalf("partitioned ring should lose cross flows: %+v", fs)
	}
	if fs.Delivered == 0 {
		t.Fatal("same-side flows should still be delivered")
	}
	if fs.Delivered+fs.Lost != fs.Injected {
		t.Fatalf("flow accounting leak: %+v", fs)
	}
}

func TestAggressiveTimeoutForcesDuplicates(t *testing.T) {
	// A timeout far below the actual delivery latency triggers spurious
	// retransmissions; the duplicate suppression at the destination must
	// swallow the extra copies while every flow is still delivered once.
	g := mustBuild(t, networks.Ring{Nodes: 16}.Build)
	fs, err := RunFaulty(Config{Graph: g, InjectionRate: 0.01,
		WarmupCycles: 50, MeasureCycles: 1000, Seed: 53, Flits: 4},
		FaultConfig{RetransmitTimeout: 2})
	if err != nil {
		t.Fatal(err)
	}
	if fs.Retransmitted == 0 {
		t.Fatal("timeout of 2 cycles on a diameter-8 ring must retransmit")
	}
	if fs.Duplicates == 0 {
		t.Fatal("racing copies should produce suppressed duplicates")
	}
	if fs.Delivered != fs.Injected || fs.Lost != 0 {
		t.Fatalf("spurious retransmissions must not lose flows: %+v", fs)
	}
}

func TestDetourKeepsPacketsFlowingBeforeTablesRepair(t *testing.T) {
	// With a long notification delay, stale tables keep pointing at the
	// dead link; packets must detour around it (misrouted hops observed)
	// rather than wait for the rebuild.
	g := mustBuild(t, networks.Torus2D{Rows: 6, Cols: 6}.Build)
	plan := (&FaultPlan{}).LinkDown(200, 0, 1, 0).LinkDown(200, 7, 13, 0)
	fs, err := RunFaulty(Config{Graph: g, InjectionRate: 0.05,
		WarmupCycles: 100, MeasureCycles: 1500, Seed: 61},
		FaultConfig{Plan: plan, NotifyDelay: 400})
	if err != nil {
		t.Fatal(err)
	}
	if fs.MisroutedHops == 0 {
		t.Fatal("stale tables with a 400-cycle notify delay must force detours")
	}
	if fs.Delivered != fs.Injected {
		t.Fatalf("torus stays connected; nothing may be lost: %+v", fs)
	}
	if fs.MeanTimeToReroute < float64(400) {
		t.Fatalf("mean time-to-reroute %v below the notification delay", fs.MeanTimeToReroute)
	}
}

func TestRandomFaultPlanDeterministicAndValid(t *testing.T) {
	g := mustBuild(t, networks.Hypercube{Dim: 4}.Build)
	mk := func(seed int64) *FaultPlan {
		p, err := RandomFaults{MTBF: 50, RepairTime: 100, NodeFraction: 0.3,
			Horizon: 2000, Seed: seed}.Plan(g)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	a, b := mk(7), mk(7)
	if len(a.Events) != len(b.Events) {
		t.Fatalf("same seed, different plan sizes: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("same seed, event %d differs: %+v vs %+v", i, a.Events[i], b.Events[i])
		}
	}
	if len(a.Events) == 0 {
		t.Fatal("MTBF 50 over 2000 cycles should draw some faults")
	}
	if err := a.Validate(g); err != nil {
		t.Fatalf("generated plan invalid: %v", err)
	}
	c := mk(8)
	same := len(a.Events) == len(c.Events)
	if same {
		for i := range a.Events {
			if a.Events[i] != c.Events[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical plans")
	}
	// Transient faults must carry their repair cycle.
	for _, e := range a.Events {
		if !e.Transient() || e.Repair != e.Cycle+100 {
			t.Fatalf("repair time not honored: %+v", e)
		}
	}
}

func TestRandomFaultPlanErrors(t *testing.T) {
	g := mustBuild(t, networks.Ring{Nodes: 8}.Build)
	if _, err := (RandomFaults{MTBF: 0, Horizon: 100}).Plan(g); err == nil {
		t.Fatal("MTBF 0 must fail")
	}
	if _, err := (RandomFaults{MTBF: 10, Horizon: 0}).Plan(g); err == nil {
		t.Fatal("empty window must fail")
	}
	if _, err := (RandomFaults{MTBF: 10, Horizon: 100, NodeFraction: 2}).Plan(g); err == nil {
		t.Fatal("NodeFraction > 1 must fail")
	}
}

func TestFaultPlanValidate(t *testing.T) {
	g := mustBuild(t, networks.Ring{Nodes: 8}.Build)
	if err := (&FaultPlan{}).LinkDown(10, 0, 4, 0).Validate(g); err == nil {
		t.Fatal("0-4 is not a ring link; Validate must reject it")
	}
	if err := (&FaultPlan{}).NodeDown(10, 99, 0).Validate(g); err == nil {
		t.Fatal("node out of range must be rejected")
	}
	if err := (&FaultPlan{}).LinkDown(-1, 0, 1, 0).Validate(g); err == nil {
		t.Fatal("negative cycle must be rejected")
	}
	var nilPlan *FaultPlan
	if err := nilPlan.Validate(g); err != nil {
		t.Fatalf("nil plan is a valid empty plan: %v", err)
	}
	if nilPlan.Len() != 0 {
		t.Fatal("nil plan length")
	}
}

func TestFaultConfigErrors(t *testing.T) {
	g := mustBuild(t, networks.Ring{Nodes: 8}.Build)
	cfg := Config{Graph: g, InjectionRate: 0.01, WarmupCycles: 10, MeasureCycles: 50}
	if _, err := RunFaulty(cfg, FaultConfig{RetransmitTimeout: -1}); err == nil {
		t.Fatal("negative timeout must fail")
	}
	if _, err := RunFaulty(cfg, FaultConfig{NotifyDelay: -1}); err == nil {
		t.Fatal("negative notify delay must fail")
	}
	bad := (&FaultPlan{}).LinkDown(10, 0, 5, 0)
	if _, err := RunFaulty(cfg, FaultConfig{Plan: bad}); err == nil {
		t.Fatal("plan referencing a non-link must fail")
	}
}

func TestPeriodFuncValidation(t *testing.T) {
	// Satellite: Run must reject a PeriodFunc that returns < 1 instead of
	// silently clamping it.
	g := mustBuild(t, networks.Ring{Nodes: 8}.Build)
	cfg := Config{Graph: g, InjectionRate: 0.01, WarmupCycles: 10,
		MeasureCycles: 100, PeriodFunc: func(u, v int32) int { return 0 }}
	if _, err := Run(cfg); err == nil {
		t.Fatal("PeriodFunc returning 0 must be rejected by Run")
	}
	if _, err := RunFaulty(cfg, FaultConfig{}); err == nil {
		t.Fatal("PeriodFunc returning 0 must be rejected by RunFaulty")
	}
	cfg.PeriodFunc = func(u, v int32) int { return -3 }
	if _, err := Run(cfg); err == nil {
		t.Fatal("negative period must be rejected")
	}
}

func TestRunFaultyWithBaselineInflation(t *testing.T) {
	// Permanent faults on a torus force longer routes and queueing: the
	// latency inflation factor must come back >= 1.
	g := mustBuild(t, networks.Torus2D{Rows: 6, Cols: 6}.Build)
	plan := (&FaultPlan{}).LinkDown(100, 0, 1, 0).LinkDown(100, 6, 7, 0).NodeDown(400, 21, 0)
	fs, base, err := RunFaultyWithBaseline(Config{Graph: g, InjectionRate: 0.03,
		WarmupCycles: 100, MeasureCycles: 1500, Seed: 71},
		FaultConfig{Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	if base.Delivered == 0 || fs.Delivered == 0 {
		t.Fatalf("baseline %+v / faulty %+v delivered nothing", base, fs)
	}
	if fs.LatencyInflation < 1 {
		t.Fatalf("faults should not speed the network up: inflation %v", fs.LatencyInflation)
	}
}

func TestRunFaultyAdaptiveUnderFaults(t *testing.T) {
	// Adaptive (multi-minimal-hop) routing must also survive faults below
	// the connectivity bound.
	g := mustBuild(t, networks.Hypercube{Dim: 5}.Build)
	plan := (&FaultPlan{}).LinkDown(200, 0, 1, 0).LinkDown(300, 2, 18, 0)
	fs, err := RunFaulty(Config{Graph: g, InjectionRate: 0.03, Adaptive: true,
		WarmupCycles: 100, MeasureCycles: 1500, Seed: 83},
		FaultConfig{Plan: plan, NotifyDelay: 10})
	if err != nil {
		t.Fatal(err)
	}
	if fs.Delivered != fs.Injected || fs.Lost != 0 {
		t.Fatalf("adaptive run lost traffic below connectivity: %+v", fs)
	}
}

func mustBuild(t *testing.T, build func() (*graph.Graph, error)) *graph.Graph {
	t.Helper()
	g, err := build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}
