package netsim

import (
	"testing"

	"repro/internal/collectives"
	"repro/internal/metrics"
	"repro/internal/networks"
	"repro/internal/topo"
)

// broadcastScript flattens a collectives broadcast tree into scripted
// injections under the single-port telephone model: each node sends to its
// children one at a time (in the BroadcastTime-optimal descending-subtree
// order this test doesn't need; FIFO order suffices for a schedule), and a
// child's sends start only after its own copy has arrived. Send cycles are
// scheduled with the given per-edge duration function.
func broadcastScript(tr *collectives.Tree, weight func(u, v int32) int32) []Injection {
	children := make([][]int32, len(tr.Parent))
	for v, p := range tr.Parent {
		if p >= 0 {
			children[p] = append(children[p], int32(v))
		}
	}
	var script []Injection
	ready := make([]int, len(tr.Parent)) // cycle the node holds the message
	queue := []int32{tr.Root}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		at := ready[u]
		for _, c := range children[u] {
			script = append(script, Injection{At: at, Src: int64(u), Dst: int64(c)})
			at += int(weight(u, int32(c)))
			ready[c] = at // conservative: the child holds it once the send completes
			queue = append(queue, c)
		}
	}
	return script
}

// TestScriptedBroadcastSmoke replays a module-aware broadcast tree of Q6
// through RunImplicit as a scripted injection pattern on an otherwise idle
// network (InjectionRate 0): every scripted send must be delivered, nothing
// may expire, and the same script must also ride on top of random
// background traffic without perturbing the random stream.
func TestScriptedBroadcastSmoke(t *testing.T) {
	g, err := networks.Hypercube{Dim: 6}.Build()
	if err != nil {
		t.Fatal(err)
	}
	part := metrics.SubcubePartition(g.N(), 3)
	tree, err := collectives.ModuleAwareTree(g, part, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate(g); err != nil {
		t.Fatal(err)
	}
	script := broadcastScript(tree, collectives.ModuleWeight(part, 4))
	if len(script) != g.N()-1 {
		t.Fatalf("broadcast script has %d sends, want %d", len(script), g.N()-1)
	}

	ht := topo.HypercubeTopo{Dim: 6}
	moduleOf := func(u int64) int64 { return u >> 3 } // matches SubcubePartition(n, 3)
	cfg := ImplicitConfig{
		Topo: ht, Router: topo.HypercubeRouter{Dim: 6},
		InjectionRate: 0, WarmupCycles: 0, MeasureCycles: 400,
		OffModulePeriod: 4, ModuleOf: moduleOf, Flits: 1,
		Script: script, Seed: 1,
	}
	st, err := RunImplicit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Injected != len(script) || st.Delivered != len(script) || st.Expired != 0 {
		t.Fatalf("broadcast replay: injected %d delivered %d expired %d, want %d/%d/0",
			st.Injected, st.Delivered, st.Expired, len(script), len(script))
	}
	// Every tree edge is one hop, so no scripted packet should take longer
	// than the off-module service period; the broadcast completes within
	// the telephone-model bound plus per-hop service.
	if st.MaxLatency > 4*cfg.Flits+4 {
		t.Fatalf("scripted hop latency %d implausibly high", st.MaxLatency)
	}

	// Script neutrality: the random background traffic of a scripted run
	// must be bit-for-bit the traffic of the unscripted run (scripted
	// injections consume no randomness).
	base := cfg
	base.Script = nil
	base.InjectionRate = 0.01
	withScript := cfg
	withScript.InjectionRate = 0.01
	a, err := RunImplicit(base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunImplicit(withScript)
	if err != nil {
		t.Fatal(err)
	}
	if b.Injected != a.Injected+len(script) {
		t.Fatalf("scripted run injected %d, want background %d + script %d",
			b.Injected, a.Injected, len(script))
	}
	if b.Delivered != a.Delivered+len(script) {
		t.Fatalf("scripted run delivered %d, want background %d + script %d",
			b.Delivered, a.Delivered, len(script))
	}
}

// TestScriptValidation pins the Script error paths: out-of-window cycles
// and invalid endpoint pairs are rejected up front.
func TestScriptValidation(t *testing.T) {
	ht := topo.HypercubeTopo{Dim: 3}
	base := ImplicitConfig{Topo: ht, Router: topo.HypercubeRouter{Dim: 3},
		WarmupCycles: 10, MeasureCycles: 20, Seed: 1}
	for name, script := range map[string][]Injection{
		"late":     {{At: 30, Src: 0, Dst: 1}},
		"negative": {{At: -1, Src: 0, Dst: 1}},
		"self":     {{At: 0, Src: 2, Dst: 2}},
		"badsrc":   {{At: 0, Src: -1, Dst: 1}},
		"baddst":   {{At: 0, Src: 0, Dst: 8}},
	} {
		cfg := base
		cfg.Script = script
		if _, err := RunImplicit(cfg); err == nil {
			t.Errorf("%s: invalid script accepted", name)
		}
	}
}
