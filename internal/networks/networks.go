// Package networks provides direct (non-IP-model) constructions of the
// classical interconnection networks that the paper compares against, each
// with closed-form topological statistics (size, degree, diameter). Every
// closed form is validated against exhaustive BFS in the test suite on all
// instances small enough to build, so the analytic values used for the
// paper's large-scale comparison figures are trustworthy.
package networks

import (
	"fmt"

	"repro/internal/graph"
)

// Spec describes a parameterized network family instance: its analytic
// statistics, and how to realize it as a concrete graph.
type Spec interface {
	// Name returns a short identifier such as "Q10" or "star(7)".
	Name() string
	// N returns the number of nodes.
	N() int
	// Degree returns the maximum node degree.
	Degree() int
	// Diameter returns the diameter (undirected hop distance).
	Diameter() int
	// Build realizes the network as a graph.
	Build() (*graph.Graph, error)
}

// ---------------------------------------------------------------- Ring

// Ring is the cycle C_n.
type Ring struct{ Nodes int }

func (r Ring) Name() string { return fmt.Sprintf("ring(%d)", r.Nodes) }
func (r Ring) N() int       { return r.Nodes }
func (r Ring) Degree() int {
	if r.Nodes <= 2 {
		return r.Nodes - 1
	}
	return 2
}
func (r Ring) Diameter() int { return r.Nodes / 2 }
func (r Ring) Build() (*graph.Graph, error) {
	if r.Nodes < 1 {
		return nil, fmt.Errorf("networks: ring needs >= 1 node")
	}
	b := graph.NewBuilder(r.Nodes, false)
	for i := 0; i < r.Nodes; i++ {
		b.AddEdge(int32(i), int32((i+1)%r.Nodes))
	}
	return b.Build(), nil
}

// ---------------------------------------------------------------- Complete

// Complete is the complete graph K_n.
type Complete struct{ Nodes int }

func (c Complete) Name() string { return fmt.Sprintf("K%d", c.Nodes) }
func (c Complete) N() int       { return c.Nodes }
func (c Complete) Degree() int  { return c.Nodes - 1 }
func (c Complete) Diameter() int {
	if c.Nodes <= 1 {
		return 0
	}
	return 1
}
func (c Complete) Build() (*graph.Graph, error) {
	b := graph.NewBuilder(c.Nodes, false)
	for i := 0; i < c.Nodes; i++ {
		for j := i + 1; j < c.Nodes; j++ {
			b.AddEdge(int32(i), int32(j))
		}
	}
	return b.Build(), nil
}

// ---------------------------------------------------------------- Hypercube

// Hypercube is the binary n-cube Q_n.
type Hypercube struct{ Dim int }

func (h Hypercube) Name() string  { return fmt.Sprintf("Q%d", h.Dim) }
func (h Hypercube) N() int        { return 1 << h.Dim }
func (h Hypercube) Degree() int   { return h.Dim }
func (h Hypercube) Diameter() int { return h.Dim }
func (h Hypercube) Build() (*graph.Graph, error) {
	if h.Dim < 0 || h.Dim > 26 {
		return nil, fmt.Errorf("networks: hypercube dimension %d out of buildable range", h.Dim)
	}
	n := 1 << h.Dim
	b := graph.NewBuilder(n, false)
	for u := 0; u < n; u++ {
		for bit := 0; bit < h.Dim; bit++ {
			v := u ^ (1 << bit)
			if v > u {
				b.AddEdge(int32(u), int32(v))
			}
		}
	}
	return b.Build(), nil
}

// AvgDistance returns the exact average distance of Q_n over ordered
// distinct pairs: (n/2) * N/(N-1).
func (h Hypercube) AvgDistance() float64 {
	n := float64(h.N())
	return float64(h.Dim) / 2 * n / (n - 1)
}

// -------------------------------------------------------- Folded hypercube

// FoldedHypercube is FQ_n: the hypercube plus a complement edge per node.
type FoldedHypercube struct{ Dim int }

func (h FoldedHypercube) Name() string { return fmt.Sprintf("FQ%d", h.Dim) }
func (h FoldedHypercube) N() int       { return 1 << h.Dim }
func (h FoldedHypercube) Degree() int  { return h.Dim + 1 }
func (h FoldedHypercube) Diameter() int {
	return (h.Dim + 1) / 2
}
func (h FoldedHypercube) Build() (*graph.Graph, error) {
	if h.Dim < 1 || h.Dim > 26 {
		return nil, fmt.Errorf("networks: folded hypercube dimension %d out of range", h.Dim)
	}
	n := 1 << h.Dim
	b := graph.NewBuilder(n, false)
	mask := n - 1
	for u := 0; u < n; u++ {
		for bit := 0; bit < h.Dim; bit++ {
			v := u ^ (1 << bit)
			if v > u {
				b.AddEdge(int32(u), int32(v))
			}
		}
		if c := u ^ mask; c > u {
			b.AddEdge(int32(u), int32(c))
		}
	}
	return b.Build(), nil
}

// ----------------------------------------------------- Generalized hypercube

// GeneralizedHypercube is the GHC of Bhuyan and Agrawal: nodes are mixed-radix
// vectors; two nodes are adjacent iff they differ in exactly one coordinate
// (each coordinate induces a complete graph).
type GeneralizedHypercube struct{ Radices []int }

func (g GeneralizedHypercube) Name() string {
	return fmt.Sprintf("GHC%v", g.Radices)
}
func (g GeneralizedHypercube) N() int {
	n := 1
	for _, r := range g.Radices {
		n *= r
	}
	return n
}
func (g GeneralizedHypercube) Degree() int {
	d := 0
	for _, r := range g.Radices {
		d += r - 1
	}
	return d
}
func (g GeneralizedHypercube) Diameter() int { return len(g.Radices) }
func (g GeneralizedHypercube) Build() (*graph.Graph, error) {
	n := g.N()
	if n < 1 || n > 1<<22 {
		return nil, fmt.Errorf("networks: GHC size %d out of buildable range", n)
	}
	for _, r := range g.Radices {
		if r < 2 {
			return nil, fmt.Errorf("networks: GHC radix must be >= 2")
		}
	}
	b := graph.NewBuilder(n, false)
	strides := make([]int, len(g.Radices))
	s := 1
	for i := range g.Radices {
		strides[i] = s
		s *= g.Radices[i]
	}
	for u := 0; u < n; u++ {
		for i, r := range g.Radices {
			digit := (u / strides[i]) % r
			for other := 0; other < r; other++ {
				if other == digit {
					continue
				}
				v := u + (other-digit)*strides[i]
				if v > u {
					b.AddEdge(int32(u), int32(v))
				}
			}
		}
	}
	return b.Build(), nil
}

// ------------------------------------------------------------ k-ary n-cube

// KAryNCube is the k-ary n-cube (torus): n coordinates modulo k, with +-1
// wraparound edges per coordinate.
type KAryNCube struct{ K, Dims int }

func (t KAryNCube) Name() string { return fmt.Sprintf("%d-ary %d-cube", t.K, t.Dims) }
func (t KAryNCube) N() int {
	n := 1
	for i := 0; i < t.Dims; i++ {
		n *= t.K
	}
	return n
}
func (t KAryNCube) Degree() int {
	if t.K == 2 {
		return t.Dims
	}
	return 2 * t.Dims
}
func (t KAryNCube) Diameter() int { return t.Dims * (t.K / 2) }
func (t KAryNCube) Build() (*graph.Graph, error) {
	n := t.N()
	if t.K < 2 || t.Dims < 1 || n > 1<<22 {
		return nil, fmt.Errorf("networks: k-ary n-cube parameters out of range")
	}
	b := graph.NewBuilder(n, false)
	stride := 1
	for d := 0; d < t.Dims; d++ {
		for u := 0; u < n; u++ {
			digit := (u / stride) % t.K
			up := u + ((digit+1)%t.K-digit)*stride
			b.AddEdge(int32(u), int32(up))
		}
		stride *= t.K
	}
	return b.Build(), nil
}

// ---------------------------------------------------------------- 2D torus

// Torus2D is the R x C wraparound grid.
type Torus2D struct{ Rows, Cols int }

func (t Torus2D) Name() string { return fmt.Sprintf("torus(%dx%d)", t.Rows, t.Cols) }
func (t Torus2D) N() int       { return t.Rows * t.Cols }
func (t Torus2D) Degree() int {
	d := 0
	for _, s := range []int{t.Rows, t.Cols} {
		switch {
		case s >= 3:
			d += 2
		case s == 2:
			d++
		}
	}
	return d
}
func (t Torus2D) Diameter() int { return t.Rows/2 + t.Cols/2 }
func (t Torus2D) Build() (*graph.Graph, error) {
	if t.Rows < 1 || t.Cols < 1 || t.N() > 1<<22 {
		return nil, fmt.Errorf("networks: torus dimensions out of range")
	}
	b := graph.NewBuilder(t.N(), false)
	id := func(r, c int) int32 { return int32(r*t.Cols + c) }
	for r := 0; r < t.Rows; r++ {
		for c := 0; c < t.Cols; c++ {
			if t.Cols > 1 {
				b.AddEdge(id(r, c), id(r, (c+1)%t.Cols))
			}
			if t.Rows > 1 {
				b.AddEdge(id(r, c), id((r+1)%t.Rows, c))
			}
		}
	}
	return b.Build(), nil
}

// ---------------------------------------------------------------- 2D mesh

// Mesh2D is the R x C grid without wraparound.
type Mesh2D struct{ Rows, Cols int }

func (m Mesh2D) Name() string { return fmt.Sprintf("mesh(%dx%d)", m.Rows, m.Cols) }
func (m Mesh2D) N() int       { return m.Rows * m.Cols }
func (m Mesh2D) Degree() int {
	d := 0
	if m.Rows > 1 {
		d += 2
	}
	if m.Cols > 1 {
		d += 2
	}
	if m.Rows == 2 {
		d--
	}
	if m.Cols == 2 {
		d--
	}
	return d
}
func (m Mesh2D) Diameter() int { return m.Rows - 1 + m.Cols - 1 }
func (m Mesh2D) Build() (*graph.Graph, error) {
	if m.Rows < 1 || m.Cols < 1 || m.N() > 1<<22 {
		return nil, fmt.Errorf("networks: mesh dimensions out of range")
	}
	b := graph.NewBuilder(m.N(), false)
	id := func(r, c int) int32 { return int32(r*m.Cols + c) }
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			if c+1 < m.Cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < m.Rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return b.Build(), nil
}

// ---------------------------------------------------------------- Petersen

// Petersen is the Petersen graph: 10 nodes, 3-regular, diameter 2.
type Petersen struct{}

func (Petersen) Name() string  { return "Petersen" }
func (Petersen) N() int        { return 10 }
func (Petersen) Degree() int   { return 3 }
func (Petersen) Diameter() int { return 2 }
func (Petersen) Build() (*graph.Graph, error) {
	b := graph.NewBuilder(10, false)
	for i := 0; i < 5; i++ {
		b.AddEdge(int32(i), int32((i+1)%5))     // outer cycle
		b.AddEdge(int32(i+5), int32((i+2)%5+5)) // inner pentagram
		b.AddEdge(int32(i), int32(i+5))         // spokes
	}
	return b.Build(), nil
}

// ---------------------------------------------------------------- Star graph

// Star is the n-star graph: nodes are permutations of n symbols, edges swap
// the first symbol with the i-th.
type Star struct{ Symbols int }

func (s Star) Name() string { return fmt.Sprintf("star(%d)", s.Symbols) }
func (s Star) N() int {
	n := 1
	for i := 2; i <= s.Symbols; i++ {
		n *= i
	}
	return n
}
func (s Star) Degree() int   { return s.Symbols - 1 }
func (s Star) Diameter() int { return 3 * (s.Symbols - 1) / 2 }
func (s Star) Build() (*graph.Graph, error) {
	if s.Symbols < 2 || s.Symbols > 9 {
		return nil, fmt.Errorf("networks: star size %d out of buildable range", s.Symbols)
	}
	n := s.Symbols
	perms := allPermutations(n)
	index := make(map[string]int32, len(perms))
	for i, p := range perms {
		index[string(p)] = int32(i)
	}
	b := graph.NewBuilder(len(perms), false)
	for i, p := range perms {
		for j := 1; j < n; j++ {
			q := append([]byte(nil), p...)
			q[0], q[j] = q[j], q[0]
			b.AddEdge(int32(i), index[string(q)])
		}
	}
	return b.Build(), nil
}

// allPermutations enumerates the permutations of 0..n-1 in a deterministic
// order.
func allPermutations(n int) [][]byte {
	var out [][]byte
	cur := make([]byte, 0, n)
	used := make([]bool, n)
	var rec func()
	rec = func() {
		if len(cur) == n {
			out = append(out, append([]byte(nil), cur...))
			return
		}
		for v := 0; v < n; v++ {
			if !used[v] {
				used[v] = true
				cur = append(cur, byte(v))
				rec()
				cur = cur[:len(cur)-1]
				used[v] = false
			}
		}
	}
	rec()
	return out
}

// ---------------------------------------------------------------- de Bruijn

// DeBruijn is the base-b, dimension-n de Bruijn graph, realized as an
// undirected graph (the usual interconnection-network view): node u is
// adjacent to its shift successors and predecessors. Degree <= 2b (less at
// nodes whose shifts collide, e.g. 00..0).
type DeBruijn struct{ Base, Dim int }

func (d DeBruijn) Name() string { return fmt.Sprintf("deBruijn(%d,%d)", d.Base, d.Dim) }
func (d DeBruijn) N() int {
	n := 1
	for i := 0; i < d.Dim; i++ {
		n *= d.Base
	}
	return n
}
func (d DeBruijn) Degree() int   { return 2 * d.Base }
func (d DeBruijn) Diameter() int { return d.Dim }
func (d DeBruijn) Build() (*graph.Graph, error) {
	n := d.N()
	if d.Base < 2 || d.Dim < 1 || n > 1<<22 {
		return nil, fmt.Errorf("networks: de Bruijn parameters out of range")
	}
	b := graph.NewBuilder(n, false)
	for u := 0; u < n; u++ {
		base := (u * d.Base) % n
		for c := 0; c < d.Base; c++ {
			b.AddEdge(int32(u), int32(base+c))
		}
	}
	return b.Build(), nil
}

// BuildDirected returns the directed de Bruijn graph (out-degree Base).
func (d DeBruijn) BuildDirected() (*graph.Graph, error) {
	n := d.N()
	if d.Base < 2 || d.Dim < 1 || n > 1<<22 {
		return nil, fmt.Errorf("networks: de Bruijn parameters out of range")
	}
	b := graph.NewBuilder(n, true)
	for u := 0; u < n; u++ {
		base := (u * d.Base) % n
		for c := 0; c < d.Base; c++ {
			b.AddArc(int32(u), int32(base+c))
		}
	}
	return b.Build(), nil
}

// ---------------------------------------------------------- Shuffle-exchange

// ShuffleExchange is the n-dimensional (binary) shuffle-exchange network:
// nodes are n-bit strings; the exchange edge flips the low bit and the
// shuffle edges rotate the string.
type ShuffleExchange struct{ Dim int }

func (s ShuffleExchange) Name() string  { return fmt.Sprintf("SE(%d)", s.Dim) }
func (s ShuffleExchange) N() int        { return 1 << s.Dim }
func (s ShuffleExchange) Degree() int   { return 3 }
func (s ShuffleExchange) Diameter() int { return 2*s.Dim - 1 }
func (s ShuffleExchange) Build() (*graph.Graph, error) {
	if s.Dim < 2 || s.Dim > 22 {
		return nil, fmt.Errorf("networks: shuffle-exchange dimension out of range")
	}
	n := 1 << s.Dim
	mask := n - 1
	b := graph.NewBuilder(n, false)
	for u := 0; u < n; u++ {
		b.AddEdge(int32(u), int32(u^1))                    // exchange
		shuffled := ((u << 1) | (u >> (s.Dim - 1))) & mask // rotate left
		b.AddEdge(int32(u), int32(shuffled))               // shuffle
	}
	return b.Build(), nil
}

// ------------------------------------------------------- Cube-connected cycles

// CCC is the cube-connected cycles network CCC(n): each hypercube node is
// replaced by an n-cycle; cycle position i carries the dimension-i cube edge.
type CCC struct{ Dim int }

func (c CCC) Name() string { return fmt.Sprintf("CCC(%d)", c.Dim) }
func (c CCC) N() int       { return c.Dim * (1 << c.Dim) }
func (c CCC) Degree() int {
	// For n <= 2 the n-cycle degenerates (no cycle edge at n = 1, a single
	// cycle edge at n = 2), so nodes have fewer than 3 neighbors.
	if c.Dim <= 2 {
		return c.Dim
	}
	return 3
}

// Diameter returns the exact CCC diameter: 2n + floor(n/2) - 2 for n >= 4,
// with the small cases taken from exhaustive BFS (validated in tests).
func (c CCC) Diameter() int {
	switch c.Dim {
	case 1:
		return 1
	case 2:
		return 4
	case 3:
		return 6
	default:
		return 2*c.Dim + c.Dim/2 - 2
	}
}

func (c CCC) Build() (*graph.Graph, error) {
	if c.Dim < 1 || c.N() > 1<<22 {
		return nil, fmt.Errorf("networks: CCC dimension out of range")
	}
	n := c.Dim
	b := graph.NewBuilder(c.N(), false)
	id := func(w, i int) int32 { return int32(w*n + i) }
	for w := 0; w < 1<<n; w++ {
		for i := 0; i < n; i++ {
			if n > 1 {
				b.AddEdge(id(w, i), id(w, (i+1)%n))
			}
			b.AddEdge(id(w, i), id(w^(1<<i), i))
		}
	}
	return b.Build(), nil
}

// ----------------------------------------------------- Rotation-exchange

// RotationExchange is the rotation-exchange network of Yeh and Varvarigos
// (cited in the paper): a trivalent variant of the star graph — the Cayley
// graph of the symmetric group with generators {rotate left, rotate right,
// exchange the first two symbols}. Degree 3, n! nodes; its diameter has no
// simple closed form, so Diameter returns the BFS-measured value for small
// n and -1 beyond.
type RotationExchange struct{ Symbols int }

func (r RotationExchange) Name() string { return fmt.Sprintf("REN(%d)", r.Symbols) }
func (r RotationExchange) N() int {
	n := 1
	for i := 2; i <= r.Symbols; i++ {
		n *= i
	}
	return n
}

// Degree returns 3 for n >= 3 (rotate-left, rotate-right, exchange).
func (r RotationExchange) Degree() int {
	if r.Symbols <= 2 {
		return 1
	}
	if r.Symbols == 3 {
		return 3 // rotations coincide pairwise only for n <= 2
	}
	return 3
}

// Diameter returns -1: measure via BFS (no closed form implemented).
func (r RotationExchange) Diameter() int { return -1 }

func (r RotationExchange) Build() (*graph.Graph, error) {
	if r.Symbols < 2 || r.Symbols > 9 {
		return nil, fmt.Errorf("networks: rotation-exchange size %d out of buildable range", r.Symbols)
	}
	n := r.Symbols
	perms := allPermutations(n)
	index := make(map[string]int32, len(perms))
	for i, p := range perms {
		index[string(p)] = int32(i)
	}
	b := graph.NewBuilder(len(perms), false)
	rotate := func(p []byte, dir int) []byte {
		q := make([]byte, n)
		for i := range q {
			q[i] = p[((i+dir)%n+n)%n]
		}
		return q
	}
	for i, p := range perms {
		b.AddEdge(int32(i), index[string(rotate(p, 1))])
		b.AddEdge(int32(i), index[string(rotate(p, -1))])
		q := append([]byte(nil), p...)
		q[0], q[1] = q[1], q[0]
		b.AddEdge(int32(i), index[string(q)])
	}
	return b.Build(), nil
}

// -------------------------------------------------- Star-connected cycles

// StarConnectedCycles is the SCC network of Latifi, Azevedo and Bagherzadeh
// (the paper's reference [20]): a fixed-degree star-graph variant in which
// every star node becomes an (n-1)-cycle and cycle position i carries the
// star edge (1,i+1). Nodes are (permutation, position) pairs; degree 3.
type StarConnectedCycles struct{ Symbols int }

func (s StarConnectedCycles) Name() string {
	return fmt.Sprintf("SCC(%d)", s.Symbols)
}

// N returns (n-1) * n!.
func (s StarConnectedCycles) N() int {
	f := 1
	for i := 2; i <= s.Symbols; i++ {
		f *= i
	}
	return (s.Symbols - 1) * f
}

// Degree returns 3 for n >= 4 (two cycle edges plus the star edge).
func (s StarConnectedCycles) Degree() int {
	if s.Symbols <= 3 {
		return 2
	}
	return 3
}

// Diameter has no simple closed form; measure via BFS.
func (s StarConnectedCycles) Diameter() int { return -1 }

func (s StarConnectedCycles) Build() (*graph.Graph, error) {
	n := s.Symbols
	if n < 3 || n > 7 {
		return nil, fmt.Errorf("networks: SCC size %d out of buildable range", n)
	}
	perms := allPermutations(n)
	index := make(map[string]int32, len(perms))
	for i, p := range perms {
		index[string(p)] = int32(i)
	}
	c := n - 1 // cycle length
	id := func(p int32, pos int) int32 { return p*int32(c) + int32(pos) }
	b := graph.NewBuilder(len(perms)*c, false)
	for pi, p := range perms {
		for pos := 0; pos < c; pos++ {
			if c > 1 {
				b.AddEdge(id(int32(pi), pos), id(int32(pi), (pos+1)%c))
			}
			// Star edge (1, pos+2): swap symbol 0 with symbol pos+1.
			q := append([]byte(nil), p...)
			q[0], q[pos+1] = q[pos+1], q[0]
			b.AddEdge(id(int32(pi), pos), id(index[string(q)], pos))
		}
	}
	return b.Build(), nil
}

// ---------------------------------------------------------------- Pancake

// Pancake is the n-pancake graph: permutations of n symbols with prefix
// reversals of length 2..n as edges. Degree n-1; its diameter has no closed
// form — known exact values (sequence A058986) are tabled up to n = 13.
type Pancake struct{ Symbols int }

func (p Pancake) Name() string { return fmt.Sprintf("pancake(%d)", p.Symbols) }
func (p Pancake) N() int {
	n := 1
	for i := 2; i <= p.Symbols; i++ {
		n *= i
	}
	return n
}
func (p Pancake) Degree() int { return p.Symbols - 1 }

// Diameter returns the known exact pancake diameter for n <= 13, -1 beyond.
func (p Pancake) Diameter() int {
	known := []int{0, 0, 1, 3, 4, 5, 7, 8, 9, 10, 11, 13, 14, 15}
	if p.Symbols < len(known) {
		return known[p.Symbols]
	}
	return -1
}

func (p Pancake) Build() (*graph.Graph, error) {
	n := p.Symbols
	if n < 2 || n > 8 {
		return nil, fmt.Errorf("networks: pancake size %d out of buildable range", n)
	}
	perms := allPermutations(n)
	index := make(map[string]int32, len(perms))
	for i, q := range perms {
		index[string(q)] = int32(i)
	}
	b := graph.NewBuilder(len(perms), false)
	for i, q := range perms {
		for k := 2; k <= n; k++ {
			r := append([]byte(nil), q...)
			for a, z := 0, k-1; a < z; a, z = a+1, z-1 {
				r[a], r[z] = r[z], r[a]
			}
			b.AddEdge(int32(i), index[string(r)])
		}
	}
	return b.Build(), nil
}

// ---------------------------------------------------------- Wrapped butterfly

// WrappedButterfly is the n-dimensional wrapped butterfly: nodes (w, i) with
// w an n-bit string and level i mod n; node (w,i) connects to (w, i+1) and
// (w XOR 2^i, i+1) with the last level wrapping to the first. Degree 4.
type WrappedButterfly struct{ Dim int }

func (w WrappedButterfly) Name() string { return fmt.Sprintf("BF(%d)", w.Dim) }
func (w WrappedButterfly) N() int       { return w.Dim * (1 << w.Dim) }
func (w WrappedButterfly) Degree() int {
	if w.Dim == 1 {
		return 1
	}
	if w.Dim == 2 {
		// Straight and cross edges between the two levels partially
		// coincide after dedup.
		return 4
	}
	return 4
}

// Diameter returns the known closed form n + floor(n/2) for n >= 3; small
// cases are measured in tests.
func (w WrappedButterfly) Diameter() int {
	switch w.Dim {
	case 1:
		return 1
	case 2:
		return 2
	default:
		return w.Dim + w.Dim/2
	}
}

func (w WrappedButterfly) Build() (*graph.Graph, error) {
	n := w.Dim
	if n < 1 || w.N() > 1<<22 {
		return nil, fmt.Errorf("networks: butterfly dimension %d out of range", n)
	}
	id := func(word, lvl int) int32 { return int32(word*n + lvl) }
	b := graph.NewBuilder(w.N(), false)
	for word := 0; word < 1<<n; word++ {
		for lvl := 0; lvl < n; lvl++ {
			next := (lvl + 1) % n
			b.AddEdge(id(word, lvl), id(word, next))          // straight
			b.AddEdge(id(word, lvl), id(word^(1<<lvl), next)) // cross
		}
	}
	return b.Build(), nil
}
