package networks

import (
	"testing"
)

// checkSpec builds the network and verifies every analytic statistic
// against the realized graph (BFS diameter, max degree, node count).
func checkSpec(t *testing.T, s Spec) {
	t.Helper()
	g, err := s.Build()
	if err != nil {
		t.Fatalf("%s: %v", s.Name(), err)
	}
	if g.N() != s.N() {
		t.Fatalf("%s: built %d nodes, analytic %d", s.Name(), g.N(), s.N())
	}
	if g.MaxDegree() != s.Degree() {
		t.Fatalf("%s: built degree %d, analytic %d", s.Name(), g.MaxDegree(), s.Degree())
	}
	st := g.AllPairs()
	if !st.Connected {
		t.Fatalf("%s: not connected", s.Name())
	}
	if int(st.Diameter) != s.Diameter() {
		t.Fatalf("%s: built diameter %d, analytic %d", s.Name(), st.Diameter, s.Diameter())
	}
}

func TestRing(t *testing.T) {
	for _, n := range []int{3, 4, 5, 8, 17, 64} {
		checkSpec(t, Ring{Nodes: n})
	}
}

func TestComplete(t *testing.T) {
	for _, n := range []int{2, 3, 5, 16} {
		checkSpec(t, Complete{Nodes: n})
	}
}

func TestHypercube(t *testing.T) {
	for d := 1; d <= 12; d++ {
		checkSpec(t, Hypercube{Dim: d})
	}
	h := Hypercube{Dim: 4}
	g, _ := h.Build()
	st := g.AllPairs()
	if diff := st.AvgDistance - h.AvgDistance(); diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("Q4 avg distance %v, analytic %v", st.AvgDistance, h.AvgDistance())
	}
}

func TestFoldedHypercube(t *testing.T) {
	for d := 2; d <= 12; d++ {
		checkSpec(t, FoldedHypercube{Dim: d})
	}
	// FQ4 is the Fig 2 baseline: degree 5, diameter 2, 16 nodes.
	fq := FoldedHypercube{Dim: 4}
	if fq.Degree() != 5 || fq.Diameter() != 2 || fq.N() != 16 {
		t.Fatalf("FQ4 analytic stats wrong: %d %d %d", fq.Degree(), fq.Diameter(), fq.N())
	}
}

func TestGeneralizedHypercube(t *testing.T) {
	for _, radices := range [][]int{{2, 2, 2}, {3, 3}, {4, 4, 4}, {2, 3, 4}, {5, 6}} {
		checkSpec(t, GeneralizedHypercube{Radices: radices})
	}
	if _, err := (GeneralizedHypercube{Radices: []int{1, 2}}).Build(); err == nil {
		t.Fatal("radix 1 must fail")
	}
}

func TestKAryNCube(t *testing.T) {
	for _, c := range []KAryNCube{
		{K: 2, Dims: 3}, {K: 3, Dims: 2}, {K: 4, Dims: 3}, {K: 5, Dims: 2},
		{K: 8, Dims: 2}, {K: 3, Dims: 4}, {K: 16, Dims: 1},
	} {
		checkSpec(t, c)
	}
}

func TestTorus2D(t *testing.T) {
	for _, c := range []Torus2D{
		{4, 4}, {3, 5}, {2, 6}, {8, 8}, {5, 5}, {2, 2},
	} {
		checkSpec(t, c)
	}
	// A 2D torus is the k-ary 2-cube when square.
	sq := Torus2D{6, 6}
	k := KAryNCube{K: 6, Dims: 2}
	if sq.N() != k.N() || sq.Degree() != k.Degree() || sq.Diameter() != k.Diameter() {
		t.Fatal("square torus disagrees with 6-ary 2-cube")
	}
}

func TestMesh2D(t *testing.T) {
	for _, c := range []Mesh2D{{4, 4}, {1, 7}, {2, 5}, {3, 9}} {
		checkSpec(t, c)
	}
}

func TestPetersen(t *testing.T) {
	checkSpec(t, Petersen{})
	g, _ := Petersen{}.Build()
	if ok, _ := g.UniformDistanceProfiles(); !ok {
		t.Fatal("Petersen is vertex-transitive; profiles must be uniform")
	}
}

func TestStar(t *testing.T) {
	for n := 2; n <= 7; n++ {
		checkSpec(t, Star{Symbols: n})
	}
}

func TestDeBruijn(t *testing.T) {
	for _, c := range []DeBruijn{{2, 2}, {2, 3}, {2, 6}, {3, 3}, {4, 2}} {
		g, err := c.Build()
		if err != nil {
			t.Fatal(err)
		}
		if g.N() != c.N() {
			t.Fatalf("%s: %d nodes", c.Name(), g.N())
		}
		// Degree <= 2b with equality somewhere (except degenerate sizes).
		if g.MaxDegree() > c.Degree() {
			t.Fatalf("%s: degree %d exceeds bound %d", c.Name(), g.MaxDegree(), c.Degree())
		}
		st := g.AllPairs()
		// Undirected diameter <= directed diameter = Dim.
		if int(st.Diameter) > c.Diameter() {
			t.Fatalf("%s: diameter %d > %d", c.Name(), st.Diameter, c.Diameter())
		}
		// Directed variant: out-degree Base, diameter exactly Dim.
		dg, err := c.BuildDirected()
		if err != nil {
			t.Fatal(err)
		}
		dst := dg.AllPairs()
		if int(dst.Diameter) != c.Diameter() {
			t.Fatalf("%s directed diameter %d, want %d", c.Name(), dst.Diameter, c.Diameter())
		}
	}
}

func TestShuffleExchange(t *testing.T) {
	for d := 2; d <= 10; d++ {
		s := ShuffleExchange{Dim: d}
		g, err := s.Build()
		if err != nil {
			t.Fatal(err)
		}
		if g.N() != s.N() {
			t.Fatalf("SE(%d): %d nodes", d, g.N())
		}
		if g.MaxDegree() > 3 {
			t.Fatalf("SE(%d): degree %d", d, g.MaxDegree())
		}
		st := g.AllPairs()
		if int(st.Diameter) != s.Diameter() {
			t.Fatalf("SE(%d): diameter %d, want %d", d, st.Diameter, s.Diameter())
		}
	}
}

func TestCCC(t *testing.T) {
	for d := 1; d <= 9; d++ {
		c := CCC{Dim: d}
		g, err := c.Build()
		if err != nil {
			t.Fatal(err)
		}
		if g.N() != c.N() {
			t.Fatalf("CCC(%d): %d nodes, want %d", d, g.N(), c.N())
		}
		if g.MaxDegree() != c.Degree() {
			t.Fatalf("CCC(%d): degree %d, want %d", d, g.MaxDegree(), c.Degree())
		}
		st := g.AllPairs()
		if int(st.Diameter) != c.Diameter() {
			t.Fatalf("CCC(%d): diameter %d, analytic %d", d, st.Diameter, c.Diameter())
		}
	}
}

func TestBuildRangeErrors(t *testing.T) {
	cases := []Spec{
		Hypercube{Dim: 30},
		Star{Symbols: 12},
		KAryNCube{K: 1, Dims: 2},
		DeBruijn{Base: 1, Dim: 3},
		ShuffleExchange{Dim: 1},
		Ring{Nodes: 0},
	}
	for _, c := range cases {
		if _, err := c.Build(); err == nil {
			t.Fatalf("%s: expected build error", c.Name())
		}
	}
}

func TestRotationExchange(t *testing.T) {
	for n := 3; n <= 6; n++ {
		r := RotationExchange{Symbols: n}
		g, err := r.Build()
		if err != nil {
			t.Fatal(err)
		}
		if g.N() != r.N() {
			t.Fatalf("REN(%d): %d nodes, want %d", n, g.N(), r.N())
		}
		if g.MaxDegree() > 3 {
			t.Fatalf("REN(%d): degree %d > 3", n, g.MaxDegree())
		}
		st := g.AllPairs()
		if !st.Connected {
			t.Fatalf("REN(%d) disconnected", n)
		}
		// A trivalent network: diameter at least n-1; sanity only.
		if st.Diameter < int32(n-1) {
			t.Fatalf("REN(%d) diameter %d suspiciously small", n, st.Diameter)
		}
	}
	if _, err := (RotationExchange{Symbols: 12}).Build(); err == nil {
		t.Fatal("oversized REN must fail")
	}
}

func TestStarConnectedCycles(t *testing.T) {
	for n := 4; n <= 5; n++ {
		s := StarConnectedCycles{Symbols: n}
		g, err := s.Build()
		if err != nil {
			t.Fatal(err)
		}
		if g.N() != s.N() {
			t.Fatalf("SCC(%d): %d nodes, want %d", n, g.N(), s.N())
		}
		if !g.IsRegular() || g.MaxDegree() != 3 {
			t.Fatalf("SCC(%d): degrees %v, want 3-regular", n, g.DegreeHistogram())
		}
		if !g.AllPairs().Connected {
			t.Fatalf("SCC(%d) disconnected", n)
		}
	}
	if _, err := (StarConnectedCycles{Symbols: 9}).Build(); err == nil {
		t.Fatal("oversized SCC must fail")
	}
}

func TestPancake(t *testing.T) {
	for n := 2; n <= 7; n++ {
		checkSpec(t, Pancake{Symbols: n})
	}
	if (Pancake{Symbols: 20}).Diameter() != -1 {
		t.Fatal("unknown diameters must report -1")
	}
	if _, err := (Pancake{Symbols: 11}).Build(); err == nil {
		t.Fatal("oversized pancake must fail")
	}
}

func TestWrappedButterfly(t *testing.T) {
	for n := 3; n <= 8; n++ {
		checkSpec(t, WrappedButterfly{Dim: n})
	}
	// Small degenerate cases: verify size and connectivity only.
	for n := 1; n <= 2; n++ {
		g, err := WrappedButterfly{Dim: n}.Build()
		if err != nil {
			t.Fatal(err)
		}
		if g.N() != n*(1<<n) || !g.AllPairs().Connected {
			t.Fatalf("BF(%d) degenerate case wrong", n)
		}
	}
}
