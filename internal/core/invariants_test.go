package core

import (
	"testing"

	"repro/internal/perm"
)

// completeCN builds the complete cyclic-shift network CN(l;G) of Section 3.3
// with super-generators L(1,m) .. L(l-1,m).
func completeCN(l int, nuc Nucleus, symmetric bool) *SuperIP {
	m := nuc.M()
	gens := make([]perm.Perm, 0, l-1)
	for i := 1; i < l; i++ {
		gens = append(gens, perm.BlockLeftShift(l, m, i))
	}
	return &SuperIP{Name: "CN", L: l, Nucleus: nuc, SuperGens: gens, Symmetric: symmetric}
}

// dirCN builds the directed cyclic-shift network with the single shift {L}.
func dirCN(l int, nuc Nucleus, symmetric bool) *SuperIP {
	m := nuc.M()
	return &SuperIP{
		Name:      "dir-CN",
		L:         l,
		Nucleus:   nuc,
		SuperGens: []perm.Perm{perm.BlockLeftShift(l, m, 1)},
		Symmetric: symmetric,
	}
}

func factorial(n int) int {
	f := 1
	for i := 2; i <= n; i++ {
		f *= i
	}
	return f
}

func pow(m, l int) int {
	p := 1
	for i := 0; i < l; i++ {
		p *= m
	}
	return p
}

// TestInvariantNodeCounts checks the paper-predicted node counts over a grid
// of small instances: Theorem 3.2 gives N = M^l for plain super-IP graphs;
// the Section 3.5 extension multiplies by the number of reachable
// super-symbol arrangements — l! for the transposition (HSN) and flip (SFN)
// families, l for the cyclic-shift (CN) families.
func TestInvariantNodeCounts(t *testing.T) {
	type family struct {
		name string
		mk   func(l int, nuc Nucleus, sym bool) *SuperIP
		// arrangements(l) for the symmetric variant
		arr func(l int) int
	}
	families := []family{
		{"HSN", hsn, factorial},
		{"SFN", superFlip, factorial},
		{"ringCN", ringCN, func(l int) int { return l }},
		{"CN", completeCN, func(l int) int { return l }},
		{"dirCN", dirCN, func(l int) int { return l }},
	}
	for _, fam := range families {
		for _, n := range []int{2, 3} {
			for _, l := range []int{2, 3} {
				if fam.name == "ringCN" && l < 3 {
					continue // for l = 2, L and R coincide; covered by HSN/CN
				}
				M := 1 << n // nucleusQ(n) has 2^n states
				for _, sym := range []bool{false, true} {
					s := fam.mk(l, nucleusQ(n), sym)
					_, ix, err := s.Build(BuildOptions{})
					if err != nil {
						t.Fatalf("%s(%d;Q%d) sym=%v: %v", fam.name, l, n, sym, err)
					}
					want := pow(M, l)
					if sym {
						want *= fam.arr(l)
					}
					if ix.N() != want {
						t.Errorf("%s(%d;Q%d) sym=%v: N = %d, want %d",
							fam.name, l, n, sym, ix.N(), want)
					}
					// Cross-check against the model's own prediction.
					if predicted, err := s.ExpectedSize(); err != nil {
						t.Fatalf("%s(%d;Q%d): ExpectedSize: %v", fam.name, l, n, err)
					} else if predicted != ix.N() {
						t.Errorf("%s(%d;Q%d) sym=%v: ExpectedSize = %d, built %d",
							fam.name, l, n, sym, predicted, ix.N())
					}
				}
			}
		}
	}
}

// TestInvariantRegularityAndDegree checks the degree law on symmetric
// variants: distinct-seed super-IP graphs are Cayley graphs, hence regular,
// and with all generator images distinct their degree is exactly the
// generator count d_N + d_S (Theorem 3.1's upper bound met with equality).
func TestInvariantRegularityAndDegree(t *testing.T) {
	cases := []struct {
		name   string
		s      *SuperIP
		degree int
	}{
		{"sym-HSN(3;Q2)", hsn(3, nucleusQ(2), true), 2 + 2},
		{"sym-HSN(2;Q3)", hsn(2, nucleusQ(3), true), 3 + 1},
		{"sym-SFN(3;Q2)", superFlip(3, nucleusQ(2), true), 2 + 2},
		{"sym-ringCN(3;Q2)", ringCN(3, nucleusQ(2), true), 2 + 2},
		{"sym-CN(3;Q2)", completeCN(3, nucleusQ(2), true), 2 + 2},
	}
	for _, c := range cases {
		g, ix, err := c.s.Build(BuildOptions{})
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if !g.IsRegular() {
			t.Errorf("%s: symmetric super-IP graphs are Cayley graphs and must be regular (degrees %d..%d)",
				c.name, g.MinDegree(), g.MaxDegree())
		}
		if g.MaxDegree() != c.degree {
			t.Errorf("%s: degree = %d, want %d", c.name, g.MaxDegree(), c.degree)
		}
		if id := ix.ID(c.s.SeedLabel()); id != 0 {
			t.Errorf("%s: seed must be node 0, got %d", c.name, id)
		}
		if !g.Symmetrized().IsConnected() {
			t.Errorf("%s: IP graphs are connected by construction", c.name)
		}
	}
}

// TestInvariantInverseClosureUndirected checks that generator sets closed
// under inverse yield undirected graphs and non-closed sets directed ones,
// across the family grid.
func TestInvariantInverseClosureUndirected(t *testing.T) {
	cases := []struct {
		name string
		s    *SuperIP
	}{
		{"HSN(2;Q2)", hsn(2, nucleusQ(2), false)},
		{"HSN(3;Q3)", hsn(3, nucleusQ(3), false)},
		{"SFN(3;Q2)", superFlip(3, nucleusQ(2), false)},
		{"ringCN(3;Q2)", ringCN(3, nucleusQ(2), false)},
		{"CN(3;Q2)", completeCN(3, nucleusQ(2), false)},
		{"dirCN(3;Q2)", dirCN(3, nucleusQ(2), false)},
		{"dirCN(2;Q2)", dirCN(2, nucleusQ(2), false)}, // L = R for l=2: closed
		{"sym-dirCN(3;Q2)", dirCN(3, nucleusQ(2), true)},
	}
	for _, c := range cases {
		ip := c.s.IPGraph()
		closed := perm.ClosedUnderInverse(ip.Gens)
		g, _, err := c.s.Build(BuildOptions{})
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if g.Directed == closed {
			t.Errorf("%s: inverse-closed=%v but directed=%v", c.name, closed, g.Directed)
		}
		if g.Directed {
			// Directed IP graphs must still be strongly connected: every
			// generator is a permutation, so its action is invertible.
			if !g.IsConnected() {
				t.Errorf("%s: directed IP graph must be strongly connected", c.name)
			}
		}
	}
}

// TestInvariantBFSLevelOrder checks the id-assignment contract both builders
// share: node ids are nondecreasing in BFS distance from the seed, so the
// index order is a valid level order (this is what makes the parallel
// level-synchronous assignment equivalent to the sequential one).
func TestInvariantBFSLevelOrder(t *testing.T) {
	for _, workers := range []int{1, 4} {
		s := hsn(3, nucleusQ(2), true)
		g, ix, err := s.Build(BuildOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		dist := g.Symmetrized().BFS(0)
		for id := 1; id < ix.N(); id++ {
			if dist[id] < dist[id-1] {
				t.Fatalf("workers=%d: node %d at distance %d precedes node %d at distance %d",
					workers, id-1, dist[id-1], id, dist[id])
			}
		}
	}
}

// TestInvariantLimitSequential is the regression test for Limit enforcement
// on the sequential path: the error must name the family, report the
// attempted vertex count, and fire before the over-limit node contributes
// arcs (no partial result escapes).
func TestInvariantLimitSequential(t *testing.T) {
	var gens []perm.Perm
	for i := 1; i < 7; i++ {
		gens = append(gens, perm.Transposition(7, 0, i))
	}
	ip := Cayley("S7", gens, nil)
	g, ix, err := ip.BuildSeq(BuildOptions{Limit: 100})
	if err == nil {
		t.Fatal("expected limit error for 7! nodes")
	}
	if g != nil || ix != nil {
		t.Fatal("limit violation must not return a partial graph")
	}
	want := "core: S7 exceeds vertex limit 100 (attempted 101 vertices)"
	if err.Error() != want {
		t.Fatalf("limit error = %q, want %q", err, want)
	}
}
