package core

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/perm"
	"repro/internal/symbols"
)

// Represent constructs an IP graph isomorphic to an arbitrary undirected
// graph g, demonstrating Theorem 2.1 (any graph has an IP-graph
// representation) constructively:
//
//  1. Greedily partition the edges of g into matchings (a greedy proper edge
//     coloring uses at most 2*maxDegree-1 colors).
//  2. Encode node i as the "one-hot" label with symbol 2 at position i and
//     symbol 1 elsewhere — a label with heavily repeated symbols, which is
//     exactly what the IP model permits and the Cayley model forbids.
//  3. Each matching becomes one generator: the product of the transpositions
//     (u v) over its edges. Applying it to a one-hot label moves the unique
//     '2' along the matched edge (or fixes it if the node is unmatched, a
//     self-loop that the graph builder drops).
//
// The returned mapping sends node i of g to the IP-graph node holding the
// one-hot label of i. g must be connected (an IP graph is always connected
// by construction).
func Represent(name string, g *graph.Graph) (*IPGraph, []int32, error) {
	if g.Directed {
		return nil, nil, fmt.Errorf("core: Represent requires an undirected graph")
	}
	if !g.IsConnected() {
		return nil, nil, fmt.Errorf("core: Represent requires a connected graph (IP graphs are connected)")
	}
	n := g.N()
	if n == 0 {
		return nil, nil, fmt.Errorf("core: empty graph")
	}
	// Greedy proper edge coloring: for each edge pick the smallest color
	// unused at both endpoints.
	type edge struct{ u, v int32 }
	var edges []edge
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(int32(u)) {
			if v > int32(u) {
				edges = append(edges, edge{int32(u), v})
			}
		}
	}
	colorsAt := make([]map[int]bool, n)
	for i := range colorsAt {
		colorsAt[i] = map[int]bool{}
	}
	var matchings [][]edge
	for _, e := range edges {
		c := 0
		for colorsAt[e.u][c] || colorsAt[e.v][c] {
			c++
		}
		colorsAt[e.u][c] = true
		colorsAt[e.v][c] = true
		for len(matchings) <= c {
			matchings = append(matchings, nil)
		}
		matchings[c] = append(matchings[c], e)
	}
	gens := make([]perm.Perm, len(matchings))
	names := make([]string, len(matchings))
	for c, match := range matchings {
		p := perm.Identity(n)
		for _, e := range match {
			p[e.u], p[e.v] = p[e.v], p[e.u]
		}
		gens[c] = p
		names[c] = fmt.Sprintf("matching%d", c)
	}
	seed := symbols.ConstantSeed(n, 1)
	seed[0] = 2
	ip := &IPGraph{Name: name, Seed: seed, Gens: gens, GenNames: names}
	// The IP graph enumerates one-hot labels in BFS order from node 0 of g;
	// build the mapping by looking up each one-hot label.
	built, ix, err := ip.Build(BuildOptions{})
	if err != nil {
		return nil, nil, err
	}
	if built.N() != n {
		return nil, nil, fmt.Errorf("core: representation has %d nodes, want %d", built.N(), n)
	}
	mapping := make([]int32, n)
	oneHot := symbols.ConstantSeed(n, 1)
	for i := 0; i < n; i++ {
		oneHot[i] = 2
		id := ix.ID(oneHot)
		if id < 0 {
			return nil, nil, fmt.Errorf("core: one-hot label of node %d not enumerated", i)
		}
		mapping[i] = id
		oneHot[i] = 1
	}
	return ip, mapping, nil
}
