package core

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/symbols"
)

// CayleyAutomorphism constructs the explicit automorphism of a built Cayley
// graph (an IP graph with distinct seed symbols) that maps node `from` to
// node `to`: the symbol substitution h with h(labelFrom[i]) = labelTo[i].
//
// Why this works: our edges are x -> x∘g (the generator permutes index
// positions), and a symbol substitution acts on the left — (h∘x)∘g =
// h∘(x∘g) — so relabeling symbols by h maps edges to edges. Substituting h
// into `from`'s label yields `to`'s label, so the substitution realizes a
// graph automorphism carrying from to to. This turns the Section 3.5
// vertex-symmetry claim into a checkable certificate.
//
// The returned slice maps each node id to its image id.
func CayleyAutomorphism(ix *Index, from, to int32) ([]int32, error) {
	lf, lt := ix.Label(from), ix.Label(to)
	if !lf.HasDistinctSymbols() {
		return nil, fmt.Errorf("core: node %d label has repeated symbols (not a Cayley graph)", from)
	}
	var h [256]byte
	var set [256]bool
	for i := range lf {
		if set[lf[i]] && h[lf[i]] != lt[i] {
			return nil, fmt.Errorf("core: inconsistent substitution at symbol %d", lf[i])
		}
		h[lf[i]] = lt[i]
		set[lf[i]] = true
	}
	mapping := make([]int32, ix.N())
	img := make(symbols.Label, len(lf))
	for u := int32(0); u < int32(ix.N()); u++ {
		lu := ix.Label(u)
		for i, s := range lu {
			if !set[s] {
				return nil, fmt.Errorf("core: node %d uses symbol %d absent from the seed alphabet", u, s)
			}
			img[i] = h[s]
		}
		v := ix.ID(img)
		if v < 0 {
			return nil, fmt.Errorf("core: substitution image of node %d is not a vertex", u)
		}
		mapping[u] = v
	}
	return mapping, nil
}

// CertifyVertexTransitive proves vertex-transitivity of a built Cayley
// graph by constructing and verifying, for every node v, an automorphism
// mapping node 0 to v. Returns an error naming the first node that cannot
// be certified. For non-Cayley IP graphs it fails on the first repeated
// symbol.
func CertifyVertexTransitive(g *graph.Graph, ix *Index) error {
	for v := int32(0); v < int32(g.N()); v++ {
		mapping, err := CayleyAutomorphism(ix, 0, v)
		if err != nil {
			return fmt.Errorf("core: node %d: %v", v, err)
		}
		if mapping[0] != v {
			return fmt.Errorf("core: automorphism for node %d maps 0 to %d", v, mapping[0])
		}
		if err := graph.VerifyIsomorphism(g, g, mapping); err != nil {
			return fmt.Errorf("core: node %d: %v", v, err)
		}
	}
	return nil
}
