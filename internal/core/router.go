package core

import (
	"fmt"

	"repro/internal/perm"
	"repro/internal/symbols"
)

// Router implements the routing algorithm of Theorem 4.1 (plain super-IP
// graphs) and Theorem 4.3 (symmetric super-IP graphs): sort the leftmost
// super-symbol with nucleus generators, then follow a covering schedule of
// super-generators, sorting each super-symbol the first time it reaches the
// leftmost position. The number of hops never exceeds l*D_G + t (resp.
// l*D_G + t_S), which equals the network diameter.
//
// A Router is not safe for concurrent use (it memoizes nucleus routing
// trees).
type Router struct {
	s        *SuperIP
	nuc      *nucleusInfo
	numNuc   int
	sched    *Schedule // plain-case schedule, shared by all routes
	revArcs  [][]revArc
	nucTrees map[int32][]int32 // target state id -> nextGen per state
}

type revArc struct {
	src int32
	gen int32
}

// Path is a route through a super-IP graph: the sequence of generator
// indices (into SuperIP.IPGraph().Gens) and all intermediate labels.
type Path struct {
	Gens   []int
	Labels []symbols.Label
}

// Hops returns the number of edges traversed.
func (p *Path) Hops() int { return len(p.Gens) }

// SuperSteps returns the number of super-generator applications — the number
// of off-module (inter-cluster) transmissions when each nucleus is packed
// into one module.
func (p *Path) SuperSteps(numNucleusGens int) int {
	n := 0
	for _, g := range p.Gens {
		if g >= numNucleusGens {
			n++
		}
	}
	return n
}

// NewRouter prepares routing state for a super-IP graph.
func NewRouter(s *SuperIP) (*Router, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	nuc, err := s.nucleus()
	if err != nil {
		return nil, err
	}
	r := &Router{
		s:        s,
		nuc:      nuc,
		numNuc:   len(s.Nucleus.Gens),
		nucTrees: map[int32][]int32{},
	}
	if !s.Symmetric {
		sched, err := s.MinCoverSchedule()
		if err != nil {
			return nil, err
		}
		r.sched = sched
	}
	// Reverse arcs of the nucleus state graph, labeled with the generator
	// that produces them, for building per-target shortest-path trees.
	r.revArcs = make([][]revArc, nuc.ix.N())
	buf := make(symbols.Label, len(nuc.seed))
	for id := int32(0); id < int32(nuc.ix.N()); id++ {
		x := nuc.ix.Label(id)
		for gi, g := range nuc.gens {
			g.Apply(buf, x)
			dest := nuc.ix.ID(buf)
			if dest < 0 {
				return nil, fmt.Errorf("core: nucleus state space not closed under generator %d", gi)
			}
			if dest != id {
				r.revArcs[dest] = append(r.revArcs[dest], revArc{src: id, gen: int32(gi)})
			}
		}
	}
	return r, nil
}

// nucTree returns (building if needed) the routing tree toward target state:
// nextGen[state] is the nucleus generator to apply at state on a shortest
// path to target, or -1 at the target itself / unreachable states.
func (r *Router) nucTree(target int32) []int32 {
	if tree, ok := r.nucTrees[target]; ok {
		return tree
	}
	n := r.nuc.ix.N()
	tree := make([]int32, n)
	for i := range tree {
		tree[i] = -1
	}
	queue := make([]int32, 0, n)
	queue = append(queue, target)
	visited := make([]bool, n)
	visited[target] = true
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, a := range r.revArcs[v] {
			if !visited[a.src] {
				visited[a.src] = true
				tree[a.src] = a.gen
				queue = append(queue, a.src)
			}
		}
	}
	r.nucTrees[target] = tree
	return tree
}

// normalizeBlock maps a block's content into the canonical nucleus symbol
// range by subtracting the color offset (symmetric graphs only; offset 0 for
// plain graphs), returning the canonical state id.
func (r *Router) blockStateID(content symbols.Label) (int32, byte, error) {
	var offset byte
	if r.s.Symmetric {
		m := r.s.Nucleus.M()
		min := content[0]
		for _, v := range content[1:] {
			if v < min {
				min = v
			}
		}
		color := (int(min) - 1) / m
		offset = byte(color * m)
	}
	canon := make(symbols.Label, len(content))
	for i, v := range content {
		canon[i] = v - offset
	}
	id := r.nuc.ix.ID(canon)
	if id < 0 {
		return 0, 0, fmt.Errorf("core: block content %v is not a nucleus state", content)
	}
	return id, offset, nil
}

// Route computes a path from src to dst following the paper's algorithm.
func (r *Router) Route(src, dst symbols.Label) (*Path, error) {
	m := r.s.Nucleus.M()
	l := r.s.L
	if len(src) != l*m || len(dst) != l*m {
		return nil, fmt.Errorf("core: labels must have %d symbols", l*m)
	}
	sched := r.sched
	if r.s.Symmetric {
		target, err := r.symmetricTarget(src, dst)
		if err != nil {
			return nil, err
		}
		sched, err = r.s.CoverScheduleTo(target)
		if err != nil {
			return nil, err
		}
	} else {
		// Plain graphs: blocks are interchangeable, but contents must match
		// the destination exactly, so verify multisets agree per the model.
		if src.MultisetKey() != dst.MultisetKey() {
			return nil, fmt.Errorf("core: src and dst are not in the same IP graph (symbol multisets differ)")
		}
	}
	d := sched.FinalPositions()
	first := sched.FirstLeftmost()

	cur := src.Clone()
	path := &Path{Labels: []symbols.Label{cur.Clone()}}
	apply := func(genIdx int, g perm.Perm) {
		next := make(symbols.Label, len(cur))
		g.Apply(next, cur)
		if next.Equal(cur) {
			// The generator fixes this label (e.g. swapping two identical
			// super-symbols): a self-loop, not an edge, and physically no
			// transmission — skip it but keep following the schedule.
			return
		}
		cur = next
		path.Gens = append(path.Gens, genIdx)
		path.Labels = append(path.Labels, cur.Clone())
	}
	full := r.s.IPGraph()
	for step := 0; step <= sched.T(); step++ {
		if cur.Equal(dst) {
			return path, nil
		}
		orig := sched.Arrs[step][0]
		if first[orig] == step {
			// First time this super-symbol is leftmost: sort its content to
			// the destination's super-symbol at its final position.
			want := dst.Group(d[orig], m)
			if err := r.sortLeftmost(func() symbols.Label { return cur }, want, func(gi int) {
				apply(gi, full.Gens[gi])
			}); err != nil {
				return nil, err
			}
		}
		if step < sched.T() {
			mi := sched.Moves[step]
			apply(r.numNuc+mi, full.Gens[r.numNuc+mi])
		}
	}
	if !cur.Equal(dst) {
		return nil, fmt.Errorf("core: route ended at %v, want %v", cur, dst)
	}
	return path, nil
}

// sortLeftmost emits nucleus generator applications transforming the
// leftmost block of the current label into want. getCur must return the
// up-to-date label; emit applies the generator with the given index (in the
// full generator list) to it.
func (r *Router) sortLeftmost(getCur func() symbols.Label, want symbols.Label, emit func(int)) error {
	m := r.s.Nucleus.M()
	curID, offset, err := r.blockStateID(getCur().Group(0, m))
	if err != nil {
		return err
	}
	wantCanon := make(symbols.Label, m)
	for i, v := range want {
		wantCanon[i] = v - offset
	}
	wantID := r.nuc.ix.ID(wantCanon)
	if wantID < 0 {
		return fmt.Errorf("core: target block %v is not a nucleus state", want)
	}
	tree := r.nucTree(wantID)
	for curID != wantID {
		gi := tree[curID]
		if gi < 0 {
			return fmt.Errorf("core: nucleus state %d cannot reach %d", curID, wantID)
		}
		emit(int(gi))
		// Recompute the current state id from the updated label.
		curID, _, err = r.blockStateID(getCur().Group(0, m))
		if err != nil {
			return err
		}
	}
	return nil
}

// symmetricTarget computes the required final arrangement for a symmetric
// route: target[pos] = index of the source super-symbol (by position in src)
// whose color matches dst's color at pos.
func (r *Router) symmetricTarget(src, dst symbols.Label) (perm.Perm, error) {
	m := r.s.Nucleus.M()
	l := r.s.L
	colorAt := func(x symbols.Label, pos int) int {
		blk := x.Group(pos, m)
		min := blk[0]
		for _, v := range blk[1:] {
			if v < min {
				min = v
			}
		}
		return (int(min) - 1) / m
	}
	srcPosOfColor := make([]int, l)
	for i := range srcPosOfColor {
		srcPosOfColor[i] = -1
	}
	for pos := 0; pos < l; pos++ {
		c := colorAt(src, pos)
		if c < 0 || c >= l || srcPosOfColor[c] >= 0 {
			return nil, fmt.Errorf("core: src has invalid color structure at block %d", pos)
		}
		srcPosOfColor[c] = pos
	}
	target := make(perm.Perm, l)
	for pos := 0; pos < l; pos++ {
		c := colorAt(dst, pos)
		if c < 0 || c >= l || srcPosOfColor[c] < 0 {
			return nil, fmt.Errorf("core: dst color %d at block %d missing in src", c, pos)
		}
		target[pos] = srcPosOfColor[c]
	}
	if err := target.Validate(); err != nil {
		return nil, err
	}
	return target, nil
}
