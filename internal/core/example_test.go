package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/perm"
	"repro/internal/superip"
	"repro/internal/symbols"
)

// ExampleIPGraph_Build reproduces the paper's Section 2 example: the seed
// 123123 with generators (1,2), (1,3), and the half-label rotation generates
// a 36-node IP graph.
func ExampleIPGraph_Build() {
	ip := &core.IPGraph{
		Name: "paper-example",
		Seed: symbols.Label{1, 2, 3, 1, 2, 3},
		Gens: []perm.Perm{
			perm.Transposition(6, 0, 1),
			perm.Transposition(6, 0, 2),
			perm.BlockLeftShift(2, 3, 1),
		},
	}
	g, ix, err := ip.Build(core.BuildOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println("nodes:", ix.N())
	fmt.Println("max degree:", g.MaxDegree())
	// Output:
	// nodes: 36
	// max degree: 3
}

// ExampleIPGraph_ShortestPath solves a ball-arrangement game optimally via
// bidirectional search over labels, without enumerating the state space.
func ExampleIPGraph_ShortestPath() {
	ip := &core.IPGraph{
		Name: "game",
		Seed: symbols.Label{1, 2, 3, 1, 2, 3},
		Gens: []perm.Perm{
			perm.Transposition(6, 0, 1),
			perm.Transposition(6, 0, 2),
			perm.BlockLeftShift(2, 3, 1),
		},
		GenNames: []string{"(1 2)", "(1 3)", "rotate"},
	}
	moves, err := ip.ShortestPath(
		symbols.Label{1, 2, 3, 1, 2, 3},
		symbols.Label{3, 2, 1, 1, 2, 3}, 0)
	if err != nil {
		panic(err)
	}
	for _, m := range moves {
		fmt.Println(ip.GenName(m))
	}
	// Output:
	// (1 3)
}

// ExampleNewRouter routes in HSN(2;Q2) = HCN(2,2) without diameter links
// with the Theorem 4.1 algorithm: sort the leftmost super-symbol, swap,
// sort again.
func ExampleNewRouter() {
	net := superip.HSN(2, superip.NucleusHypercube(2))
	_, ix, err := net.BuildWithIndex()
	if err != nil {
		panic(err)
	}
	r, err := net.Router()
	if err != nil {
		panic(err)
	}
	src := ix.Label(0)
	dst := ix.Label(int32(ix.N() - 1))
	path, err := r.Route(src, dst)
	if err != nil {
		panic(err)
	}
	fmt.Println("hops:", path.Hops(), "<= diameter", net.Diameter())
	// Output:
	// hops: 5 <= diameter 5
}
