package core

import (
	"testing"

	"repro/internal/perm"
	"repro/internal/symbols"
)

// nucleusK builds the complete graph K_k as a nucleus: k distinct symbols
// with one transposition generator (1,i) per other position would give a
// star; instead we use all transpositions of position 1 with i plus... K_k
// as an IP graph: seed "12...k"? The complete graph on k nodes arises from a
// single-symbol viewpoint: use k symbols with one '2' marker and the
// matchings realizing K_k. Simplest faithful nucleus: one-hot labels with
// all transpositions (i j) involving the marker... all transpositions (1,i)
// move the marker only when it sits at 1. To get K_k cleanly we use the
// one-hot encoding with ALL transpositions (i,j): the marker moves from any
// position to any other, giving K_k.
func nucleusK(k int) Nucleus {
	seed := symbols.ConstantSeed(k, 1)
	seed[0] = 2
	var gens []perm.Perm
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			gens = append(gens, perm.Transposition(k, i, j))
		}
	}
	return Nucleus{Name: "K", Seed: seed, Gens: gens}
}

func TestTheorem32SizeLaw(t *testing.T) {
	// Theorem 3.2: a (plain) super-IP graph has N = M^l nodes.
	cases := []struct {
		s *SuperIP
		m int
	}{
		{hsn(2, nucleusQ(2), false), 4},
		{hsn(3, nucleusQ(2), false), 4},
		{hsn(2, nucleusQ(3), false), 8},
		{hsn(4, nucleusQ(2), false), 4},
		{ringCN(3, nucleusQ(2), false), 4},
		{ringCN(4, nucleusQ(2), false), 4},
		{superFlip(3, nucleusQ(2), false), 4},
		{hsn(2, nucleusK(5), false), 5},
		{ringCN(3, nucleusK(4), false), 4},
	}
	for _, c := range cases {
		mGot, err := c.s.NucleusSize()
		if err != nil {
			t.Fatalf("%s: %v", c.s.Name, err)
		}
		if mGot != c.m {
			t.Fatalf("%s nucleus size = %d, want %d", c.s.Name, mGot, c.m)
		}
		want, err := c.s.ExpectedSize()
		if err != nil {
			t.Fatal(err)
		}
		_, ix, err := c.s.Build(BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if ix.N() != want {
			t.Fatalf("%s(l=%d) has %d nodes, Theorem 3.2 predicts %d", c.s.Name, c.s.L, ix.N(), want)
		}
	}
}

func TestTheorem31DegreeBound(t *testing.T) {
	// Theorem 3.1: degree <= number of generators.
	for _, s := range []*SuperIP{
		hsn(3, nucleusQ(2), false),
		ringCN(4, nucleusQ(2), false),
		superFlip(3, nucleusQ(2), false),
		hsn(2, nucleusQ(3), true),
	} {
		g, _, err := s.Build(BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		bound := len(s.Nucleus.Gens) + len(s.SuperGens)
		if g.MaxDegree() > bound {
			t.Fatalf("%s degree %d exceeds generator count %d", s.Name, g.MaxDegree(), bound)
		}
	}
}

func TestScheduleTEqualsLMinus1(t *testing.T) {
	// Section 4: t >= l-1 always, and t = l-1 for every family of Section 3.
	for l := 2; l <= 6; l++ {
		for _, s := range []*SuperIP{
			hsn(l, nucleusQ(2), false),
			ringCN(l, nucleusQ(2), false),
			superFlip(l, nucleusQ(2), false),
		} {
			sched, err := s.MinCoverSchedule()
			if err != nil {
				t.Fatalf("%s l=%d: %v", s.Name, l, err)
			}
			if sched.T() != l-1 {
				t.Fatalf("%s l=%d: t = %d, want %d", s.Name, l, sched.T(), l-1)
			}
			// The schedule must bring every super-symbol to the leftmost
			// position at least once.
			first := sched.FirstLeftmost()
			for b, f := range first {
				if f < 0 {
					t.Fatalf("%s l=%d: super-symbol %d never leftmost", s.Name, l, b)
				}
			}
			// Final positions must be a permutation.
			d := sched.FinalPositions()
			if err := perm.Perm(d).Validate(); err != nil {
				t.Fatalf("%s l=%d: FinalPositions invalid: %v", s.Name, l, err)
			}
		}
	}
}

func TestTheorem41DiameterExact(t *testing.T) {
	// Theorem 4.1: diameter = l*D_G + t, verified by exhaustive BFS.
	for _, s := range []*SuperIP{
		hsn(2, nucleusQ(2), false), // HCN(2,2) w/o diameter links
		hsn(3, nucleusQ(2), false), // Fig 1b
		hsn(2, nucleusQ(3), false), // HCN(3,3) w/o diameter links
		hsn(4, nucleusQ(2), false), // deeper hierarchy
		ringCN(2, nucleusQ(2), false),
		ringCN(3, nucleusQ(2), false),
		ringCN(4, nucleusQ(2), false),
		ringCN(3, nucleusQ(3), false),
		superFlip(2, nucleusQ(2), false),
		superFlip(3, nucleusQ(2), false),
		superFlip(4, nucleusQ(2), false),
		hsn(3, nucleusK(4), false),
		ringCN(3, nucleusK(4), false),
	} {
		g, _, err := s.Build(BuildOptions{})
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		st := g.AllPairs()
		if !st.Connected {
			t.Fatalf("%s(l=%d) disconnected", s.Name, s.L)
		}
		want, err := s.TheoreticalDiameter()
		if err != nil {
			t.Fatal(err)
		}
		if int(st.Diameter) != want {
			t.Fatalf("%s(l=%d) diameter = %d, Theorem 4.1 predicts %d",
				s.Name, s.L, st.Diameter, want)
		}
	}
}

func TestCorollary42DiameterFormula(t *testing.T) {
	// Corollary 4.2: the diameter of an N-node HSN, ring-CN, or super-flip
	// network is (D_G + 1) * log_M(N) - 1 (with t = l-1 and N = M^l).
	for l := 2; l <= 4; l++ {
		for _, s := range []*SuperIP{
			hsn(l, nucleusQ(2), false),
			ringCN(l, nucleusQ(2), false),
			superFlip(l, nucleusQ(2), false),
		} {
			dg, err := s.NucleusDiameter()
			if err != nil {
				t.Fatal(err)
			}
			want := (dg+1)*l - 1 // l = log_M N
			got, err := s.TheoreticalDiameter()
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("%s l=%d: diameter %d, Corollary 4.2 predicts %d", s.Name, l, got, want)
			}
		}
	}
}

func TestSymmetricSuperIPSizes(t *testing.T) {
	// Section 3.5: a symmetric HSN(l;G) has l!*M^l nodes; a symmetric
	// ring-CN(l;G) has l*M^l nodes (l reachable cyclic arrangements).
	fact := func(n int) int {
		f := 1
		for i := 2; i <= n; i++ {
			f *= i
		}
		return f
	}
	for l := 2; l <= 3; l++ {
		sh := hsn(l, nucleusQ(2), true)
		_, ix, err := sh.Build(BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		m, _ := sh.NucleusSize()
		want := fact(l)
		for i := 0; i < l; i++ {
			want *= m
		}
		if ix.N() != want {
			t.Fatalf("symmetric HSN(l=%d) has %d nodes, want %d", l, ix.N(), want)
		}
		exp, err := sh.ExpectedSize()
		if err != nil || exp != want {
			t.Fatalf("ExpectedSize = %d (%v), want %d", exp, err, want)
		}
	}
	for _, l := range []int{3, 4} {
		sc := ringCN(l, nucleusQ(2), true)
		_, ix, err := sc.Build(BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		m, _ := sc.NucleusSize()
		want := l
		for i := 0; i < l; i++ {
			want *= m
		}
		if ix.N() != want {
			t.Fatalf("symmetric ring-CN(l=%d) has %d nodes, want %d", l, ix.N(), want)
		}
	}
}

func TestSymmetricSuperIPIsRegularAndVertexSymmetric(t *testing.T) {
	// Section 3.5: symmetric super-IP graphs are Cayley graphs, hence
	// vertex-symmetric and regular.
	for _, s := range []*SuperIP{
		hsn(2, nucleusQ(2), true),
		hsn(3, nucleusQ(2), true),
		ringCN(3, nucleusQ(2), true),
		superFlip(3, nucleusQ(2), true),
	} {
		if !s.IPGraph().IsCayley() {
			t.Fatalf("%s symmetric variant must satisfy the Cayley condition", s.Name)
		}
		g, _, err := s.Build(BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !g.IsRegular() {
			t.Fatalf("symmetric %s not regular: degrees %v", s.Name, g.DegreeHistogram())
		}
		if ok, w := g.UniformDistanceProfiles(); !ok {
			t.Fatalf("symmetric %s has non-uniform distance profiles at %v", s.Name, w)
		}
	}
}

func TestTheorem43SymmetricDiameter(t *testing.T) {
	// Theorem 4.3: the diameter of a symmetric super-IP graph is l*D_G + t_S.
	for _, s := range []*SuperIP{
		hsn(2, nucleusQ(2), true),
		hsn(3, nucleusQ(2), true),
		ringCN(3, nucleusQ(2), true),
		superFlip(2, nucleusQ(2), true),
		superFlip(3, nucleusQ(2), true),
	} {
		g, _, err := s.Build(BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		st := g.AllPairs()
		want, err := s.TheoreticalDiameter()
		if err != nil {
			t.Fatal(err)
		}
		if int(st.Diameter) != want {
			t.Fatalf("symmetric %s(l=%d): diameter = %d, Theorem 4.3 predicts %d",
				s.Name, s.L, st.Diameter, want)
		}
	}
}

func TestTSymVsT(t *testing.T) {
	// t_S >= t always; for l = 2 transposition super-generators t = 1 but
	// t_S = 2 (returning to the identity arrangement costs one more swap).
	s := hsn(2, nucleusQ(2), false)
	sched, err := s.MinCoverSchedule()
	if err != nil {
		t.Fatal(err)
	}
	tS, err := s.TSym()
	if err != nil {
		t.Fatal(err)
	}
	if sched.T() != 1 || tS != 2 {
		t.Fatalf("HSN(2): t = %d (want 1), t_S = %d (want 2)", sched.T(), tS)
	}
}

func TestSuperIPValidateErrors(t *testing.T) {
	nuc := nucleusQ(2)
	bad := &SuperIP{Name: "bad", L: 1, Nucleus: nuc}
	if err := bad.Validate(); err == nil {
		t.Fatal("l = 1 must fail")
	}
	bad = &SuperIP{Name: "bad", L: 2, Nucleus: Nucleus{}}
	if err := bad.Validate(); err == nil {
		t.Fatal("empty nucleus must fail")
	}
	bad = &SuperIP{Name: "bad", L: 2, Nucleus: nuc}
	if err := bad.Validate(); err == nil {
		t.Fatal("no super-generators must fail")
	}
	// A generator that is not block-structured must be rejected.
	notBlock := perm.Transposition(8, 0, 4)
	bad = &SuperIP{Name: "bad", L: 2, Nucleus: nuc, SuperGens: []perm.Perm{notBlock}}
	if err := bad.Validate(); err == nil {
		t.Fatal("non-block super-generator must fail")
	}
	// A super-generator set that never moves block 2 to the front must fail.
	stuck := perm.BlockTransposition(3, 4, 1, 2)
	bad = &SuperIP{Name: "bad", L: 3, Nucleus: nuc, SuperGens: []perm.Perm{stuck}}
	if err := bad.Validate(); err == nil {
		t.Fatal("super-generators that never reach leftmost must fail")
	}
}

func TestBlockPerms(t *testing.T) {
	s := ringCN(4, nucleusQ(2), false)
	bps, err := s.BlockPerms()
	if err != nil {
		t.Fatal(err)
	}
	if len(bps) != 2 {
		t.Fatalf("ring-CN has %d block perms", len(bps))
	}
	// L shifts blocks left: block perm [1 2 3 0].
	if !bps[0].Equal(perm.Perm{1, 2, 3, 0}) {
		t.Fatalf("L block perm = %v", bps[0])
	}
	if !bps[1].Equal(perm.Perm{3, 0, 1, 2}) {
		t.Fatalf("R block perm = %v", bps[1])
	}
}

func TestGameSolveOnStar(t *testing.T) {
	var gens []perm.Perm
	for i := 1; i < 4; i++ {
		gens = append(gens, perm.Transposition(4, 0, i))
	}
	game := NewGame(*Cayley("S4", gens, nil))
	start := symbols.Label{1, 2, 3, 4}
	target := symbols.Label{2, 1, 4, 3}
	sol, err := game.Solve(start, target, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Distance in the 4-star from 1234 to 2143: sorting 2143 -> 1234 takes
	// exactly 4 star moves (two 2-cycles, neither containing position 1).
	if sol.Steps() != 4 {
		t.Fatalf("solution length = %d, want 4", sol.Steps())
	}
	if !sol.States[len(sol.States)-1].Equal(target) {
		t.Fatal("solution does not reach target")
	}
	// Solving to itself is a zero-length solution.
	sol, err = game.Solve(start, start, 0)
	if err != nil || sol.Steps() != 0 {
		t.Fatalf("identity solve: %v, steps %d", err, sol.Steps())
	}
}

func TestGameSolveErrors(t *testing.T) {
	gens := []perm.Perm{perm.Transposition(3, 0, 1), perm.Transposition(3, 0, 2)}
	game := NewGame(IPGraph{Name: "g", Seed: symbols.Label{1, 1, 2}, Gens: gens})
	if _, err := game.Solve(symbols.Label{1, 1, 2}, symbols.Label{1, 2, 2}, 0); err == nil {
		t.Fatal("different multisets must fail")
	}
	if _, err := game.Solve(symbols.Label{1, 1}, symbols.Label{1, 1, 2}, 0); err == nil {
		t.Fatal("wrong length must fail")
	}
	// Unreachable target within the same multiset: with only the rotation
	// generator on 4 symbols, 1122 can reach only its rotations, not 1212.
	rotGame := NewGame(IPGraph{
		Name: "rot",
		Seed: symbols.Label{1, 1, 2, 2},
		Gens: []perm.Perm{perm.Rotation(4, 1), perm.Rotation(4, 3)},
	})
	if _, err := rotGame.Solve(symbols.Label{1, 1, 2, 2}, symbols.Label{1, 2, 1, 2}, 0); err == nil {
		t.Fatal("unreachable configuration must fail")
	}
	if _, err := rotGame.Solve(symbols.Label{1, 1, 2, 2}, symbols.Label{2, 2, 1, 1}, 0); err != nil {
		t.Fatalf("rotation by two should be solvable: %v", err)
	}
}

func TestGameSolveMatchesShortestPath(t *testing.T) {
	// The two solvers — full-enumeration BFS (Game.Solve) and bidirectional
	// label search (ShortestPath) — must agree on solution lengths.
	ip := IPGraph{
		Name: "cross-check",
		Seed: symbols.Label{1, 2, 3, 1, 2, 3},
		Gens: []perm.Perm{
			perm.Transposition(6, 0, 1),
			perm.Transposition(6, 0, 2),
			perm.BlockLeftShift(2, 3, 1),
		},
	}
	game := NewGame(ip)
	_, ix, err := ip.Build(BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < ix.N(); u++ {
		for v := 0; v < ix.N(); v += 3 {
			src, dst := ix.Label(int32(u)), ix.Label(int32(v))
			sol, err := game.Solve(src, dst, 0)
			if err != nil {
				t.Fatal(err)
			}
			moves, err := ip.ShortestPath(src, dst, 0)
			if err != nil {
				t.Fatal(err)
			}
			if sol.Steps() != len(moves) {
				t.Fatalf("%v -> %v: Game.Solve %d steps, ShortestPath %d",
					src, dst, sol.Steps(), len(moves))
			}
		}
	}
}
