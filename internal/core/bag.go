package core

import (
	"fmt"

	"repro/internal/symbols"
)

// Game is the ball-arrangement game (BAG) of Section 2: k balls, each
// stamped with a number (repeats allowed), and a fixed set of permissible
// moves, each a permutation of the balls. Solving the game means finding a
// shortest move sequence transforming a start configuration into a target
// configuration. The state-transition graph of the game is exactly the IP
// graph with the start configuration as seed and the moves as generators.
type Game struct {
	IP IPGraph
}

// NewGame wraps an IP graph specification as a ball-arrangement game.
func NewGame(ip IPGraph) *Game { return &Game{IP: ip} }

// Solution is a solved game: the sequence of moves (generator indices) and
// the intermediate configurations, including start and target.
type Solution struct {
	Moves  []int
	States []symbols.Label
}

// Steps returns the number of moves in the solution.
func (s *Solution) Steps() int { return len(s.Moves) }

// Solve finds a shortest move sequence from start to target, or an error if
// the target is unreachable. It searches breadth-first over configurations,
// so it explores at most the full IP-graph vertex set (bounded by limit if
// nonzero).
func (g *Game) Solve(start, target symbols.Label, limit int) (*Solution, error) {
	if len(start) != len(g.IP.Seed) || len(target) != len(g.IP.Seed) {
		return nil, fmt.Errorf("core: configuration length must be %d", len(g.IP.Seed))
	}
	if start.MultisetKey() != target.MultisetKey() {
		return nil, fmt.Errorf("core: start and target have different ball multisets (%s vs %s)",
			start.MultisetKey(), target.MultisetKey())
	}
	if err := g.IP.Validate(); err != nil {
		return nil, err
	}
	type prev struct {
		id   int32
		move int
	}
	labels := []symbols.Label{start.Clone()}
	byKey := map[string]int32{start.Key(): 0}
	parents := []prev{{-1, -1}}
	targetKey := target.Key()
	goal := int32(-1)
	if targetKey == start.Key() {
		goal = 0
	}
	buf := make(symbols.Label, len(start))
	for head := 0; head < len(labels) && goal < 0; head++ {
		x := labels[head]
		for mi, m := range g.IP.Gens {
			m.Apply(buf, x)
			key := buf.Key()
			if _, ok := byKey[key]; ok {
				continue
			}
			id := int32(len(labels))
			labels = append(labels, buf.Clone())
			byKey[key] = id
			parents = append(parents, prev{int32(head), mi})
			if limit > 0 && len(labels) > limit {
				return nil, fmt.Errorf("core: game state space exceeds limit %d", limit)
			}
			if key == targetKey {
				goal = id
				break
			}
		}
	}
	if goal < 0 {
		return nil, fmt.Errorf("core: target %s unreachable from %s", target, start)
	}
	// Reconstruct the move sequence.
	var moves []int
	for id := goal; parents[id].id >= 0; id = parents[id].id {
		moves = append(moves, parents[id].move)
	}
	for i, j := 0, len(moves)-1; i < j; i, j = i+1, j-1 {
		moves[i], moves[j] = moves[j], moves[i]
	}
	sol := &Solution{Moves: moves, States: make([]symbols.Label, 0, len(moves)+1)}
	cur := start.Clone()
	sol.States = append(sol.States, cur.Clone())
	for _, mi := range moves {
		next := make(symbols.Label, len(cur))
		g.IP.Gens[mi].Apply(next, cur)
		cur = next
		sol.States = append(sol.States, cur.Clone())
	}
	if !cur.Equal(target) {
		return nil, fmt.Errorf("core: internal error: replayed solution ends at %s, want %s", cur, target)
	}
	return sol, nil
}
