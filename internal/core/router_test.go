package core

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/perm"
	"repro/internal/symbols"
)

// validateAllRoutes routes every ordered node pair of s and checks that each
// route follows real edges, ends at the destination, respects the Theorem
// 4.1/4.3 hop bound, and uses at most tBound super-generator steps.
func validateAllRoutes(t *testing.T, s *SuperIP) {
	t.Helper()
	g, ix, err := s.Build(BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRouter(s)
	if err != nil {
		t.Fatal(err)
	}
	bound, err := s.TheoreticalDiameter()
	if err != nil {
		t.Fatal(err)
	}
	var tBound int
	if s.Symmetric {
		tBound, err = s.TSym()
	} else {
		var sched *Schedule
		sched, err = s.MinCoverSchedule()
		if err == nil {
			tBound = sched.T()
		}
	}
	if err != nil {
		t.Fatal(err)
	}
	numNuc := len(s.Nucleus.Gens)
	worstHops := 0
	for u := 0; u < ix.N(); u++ {
		for v := 0; v < ix.N(); v++ {
			src, dst := ix.Label(int32(u)), ix.Label(int32(v))
			path, err := r.Route(src, dst)
			if err != nil {
				t.Fatalf("%s: route %v -> %v: %v", s.Name, src, dst, err)
			}
			if !path.Labels[len(path.Labels)-1].Equal(dst) {
				t.Fatalf("%s: route %v -> %v ends at %v", s.Name, src, dst,
					path.Labels[len(path.Labels)-1])
			}
			if path.Hops() > bound {
				t.Fatalf("%s: route %v -> %v takes %d hops, bound %d",
					s.Name, src, dst, path.Hops(), bound)
			}
			if ss := path.SuperSteps(numNuc); ss > tBound {
				t.Fatalf("%s: route %v -> %v uses %d super-steps, bound %d",
					s.Name, src, dst, ss, tBound)
			}
			// Every consecutive label pair must be an edge of the graph.
			for i := 0; i+1 < len(path.Labels); i++ {
				a, b := ix.ID(path.Labels[i]), ix.ID(path.Labels[i+1])
				if a < 0 || b < 0 || !g.HasEdge(a, b) {
					t.Fatalf("%s: route step %d (%v -> %v) is not an edge",
						s.Name, i, path.Labels[i], path.Labels[i+1])
				}
			}
			if path.Hops() > worstHops {
				worstHops = path.Hops()
			}
		}
	}
	// The routing algorithm is worst-case optimal: some pair must need
	// exactly the diameter.
	if worstHops != bound {
		t.Fatalf("%s: worst route = %d hops, want the full bound %d (routing should be tight)",
			s.Name, worstHops, bound)
	}
}

func TestRouterHSN(t *testing.T) {
	validateAllRoutes(t, hsn(2, nucleusQ(2), false))
	validateAllRoutes(t, hsn(3, nucleusQ(2), false))
}

func TestRouterRingCN(t *testing.T) {
	validateAllRoutes(t, ringCN(3, nucleusQ(2), false))
	validateAllRoutes(t, ringCN(4, nucleusQ(2), false))
}

func TestRouterSuperFlip(t *testing.T) {
	validateAllRoutes(t, superFlip(3, nucleusQ(2), false))
}

func TestRouterSymmetric(t *testing.T) {
	validateAllRoutes(t, hsn(2, nucleusQ(2), true))
	validateAllRoutes(t, ringCN(3, nucleusQ(2), true))
}

func TestRouterRejectsForeignLabels(t *testing.T) {
	s := hsn(2, nucleusQ(2), false)
	r, err := NewRouter(s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Route(symbols.Label{1, 2}, symbols.Label{2, 1}); err == nil {
		t.Fatal("wrong-length labels must fail")
	}
	// Different symbol multisets cannot be in the same IP graph.
	src := s.SeedLabel()
	dst := src.Clone()
	dst[0] = 9
	if _, err := r.Route(src, dst); err == nil {
		t.Fatal("foreign multiset must fail")
	}
}

func TestRouterMatchesBFSOnWorstPair(t *testing.T) {
	// For the extremal pair A...A -> B...B (contents at nucleus diameter),
	// the route length must equal the BFS distance l*D_G + t exactly.
	s := hsn(3, nucleusQ(2), false)
	g, ix, err := s.Build(BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRouter(s)
	if err != nil {
		t.Fatal(err)
	}
	// Nucleus Q2 pair at distance 2: "1212" and "2121".
	a := symbols.RepeatedSeed(3, symbols.Label{1, 2, 1, 2})
	b := symbols.RepeatedSeed(3, symbols.Label{2, 1, 2, 1})
	path, err := r.Route(a, b)
	if err != nil {
		t.Fatal(err)
	}
	dist := g.BFS(ix.ID(a))
	if int(dist[ix.ID(b)]) != path.Hops() {
		t.Fatalf("route %d hops, BFS distance %d", path.Hops(), dist[ix.ID(b)])
	}
	want, _ := s.TheoreticalDiameter()
	if path.Hops() != want {
		t.Fatalf("extremal pair routed in %d hops, want diameter %d", path.Hops(), want)
	}
}

func TestRepresentTheorem21(t *testing.T) {
	// Theorem 2.1 (constructive demonstration): arbitrary connected graphs
	// have IP-graph representations.
	petersen := buildPetersen()
	ip, mapping, err := Represent("petersen", petersen)
	if err != nil {
		t.Fatal(err)
	}
	built, _, err := ip.Build(BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.VerifyIsomorphism(petersen, built, mapping); err != nil {
		t.Fatalf("Petersen representation: %v", err)
	}

	// Random connected graphs.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(20)
		b := graph.NewBuilder(n, false)
		// Random spanning tree for connectivity plus random extra edges.
		for v := 1; v < n; v++ {
			b.AddEdge(int32(rng.Intn(v)), int32(v))
		}
		for e := 0; e < n; e++ {
			b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
		}
		g := b.Build()
		ip, mapping, err := Represent("rand", g)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		built, _, err := ip.Build(BuildOptions{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := graph.VerifyIsomorphism(g, built, mapping); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// The representation must genuinely use repeated symbols (it is an
		// IP graph that is not a Cayley graph for n > 2).
		if n > 2 && ip.IsCayley() {
			t.Fatalf("trial %d: representation unexpectedly Cayley", trial)
		}
	}
}

func TestRepresentErrors(t *testing.T) {
	b := graph.NewBuilder(4, false)
	b.AddEdge(0, 1) // leaves 2,3 isolated
	if _, _, err := Represent("x", b.Build()); err == nil {
		t.Fatal("disconnected graph must fail")
	}
	d := graph.NewBuilder(2, true)
	d.AddEdge(0, 1)
	if _, _, err := Represent("x", d.Build()); err == nil {
		t.Fatal("directed graph must fail")
	}
}

// buildPetersen constructs the Petersen graph: outer 5-cycle 0-4, inner
// pentagram 5-9, spokes i -> i+5.
func buildPetersen() *graph.Graph {
	b := graph.NewBuilder(10, false)
	for i := 0; i < 5; i++ {
		b.AddEdge(int32(i), int32((i+1)%5))
		b.AddEdge(int32(i+5), int32((i+2)%5+5))
		b.AddEdge(int32(i), int32(i+5))
	}
	return b.Build()
}

func TestRouterOnLargerInstanceSampled(t *testing.T) {
	// HSN(2;Q4) has 256 nodes; validate a random sample of routes.
	s := hsn(2, nucleusQ(4), false)
	g, ix, err := s.Build(BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRouter(s)
	if err != nil {
		t.Fatal(err)
	}
	bound, _ := s.TheoreticalDiameter()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		u := int32(rng.Intn(ix.N()))
		v := int32(rng.Intn(ix.N()))
		path, err := r.Route(ix.Label(u), ix.Label(v))
		if err != nil {
			t.Fatal(err)
		}
		if path.Hops() > bound {
			t.Fatalf("route exceeds bound: %d > %d", path.Hops(), bound)
		}
		for i := 0; i+1 < len(path.Labels); i++ {
			a, b := ix.ID(path.Labels[i]), ix.ID(path.Labels[i+1])
			if !g.HasEdge(a, b) {
				t.Fatalf("non-edge on route at step %d", i)
			}
		}
		if !path.Labels[len(path.Labels)-1].Equal(ix.Label(v)) {
			t.Fatal("route does not reach destination")
		}
	}
}

func BenchmarkRouteHSN3Q2(b *testing.B) {
	s := hsn(3, nucleusQ(2), false)
	_, ix, err := s.Build(BuildOptions{})
	if err != nil {
		b.Fatal(err)
	}
	r, err := NewRouter(s)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := int32(rng.Intn(ix.N()))
		v := int32(rng.Intn(ix.N()))
		if _, err := r.Route(ix.Label(u), ix.Label(v)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildHSN2Q4(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := hsn(2, nucleusQ(4), false)
		if _, _, err := s.Build(BuildOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

var _ = perm.Identity // keep perm imported for helpers above
