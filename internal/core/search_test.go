package core

import (
	"math/rand"
	"testing"

	"repro/internal/perm"
	"repro/internal/symbols"
)

// checkOptimalSearch verifies that ShortestPath returns valid, optimal
// paths for every ordered pair of the (small) IP graph.
func checkOptimalSearch(t *testing.T, ip *IPGraph) {
	t.Helper()
	g, ix, err := ip.Build(BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < ix.N(); u++ {
		dist := g.BFS(int32(u))
		for v := 0; v < ix.N(); v++ {
			src, dst := ix.Label(int32(u)), ix.Label(int32(v))
			moves, err := ip.ShortestPath(src, dst, 0)
			if err != nil {
				t.Fatalf("%s: %v -> %v: %v", ip.Name, src, dst, err)
			}
			states, err := ip.ApplyMoves(src, moves)
			if err != nil {
				t.Fatal(err)
			}
			if !states[len(states)-1].Equal(dst) {
				t.Fatalf("%s: path %v -> %v ends at %v", ip.Name, src, dst, states[len(states)-1])
			}
			// Count only real hops (generators may fix a label).
			hops := 0
			for i := 0; i+1 < len(states); i++ {
				if !states[i].Equal(states[i+1]) {
					hops++
				}
			}
			if hops != int(dist[v]) {
				t.Fatalf("%s: %v -> %v: search %d hops, BFS %d", ip.Name, src, dst, hops, dist[v])
			}
		}
	}
}

func TestShortestPathHSN(t *testing.T) {
	checkOptimalSearch(t, hsn(2, nucleusQ(2), false).IPGraph())
}

func TestShortestPathRingCN(t *testing.T) {
	checkOptimalSearch(t, ringCN(3, nucleusQ(2), false).IPGraph())
}

func TestShortestPathStar(t *testing.T) {
	var gens []perm.Perm
	for i := 1; i < 5; i++ {
		gens = append(gens, perm.Transposition(5, 0, i))
	}
	checkOptimalSearch(t, Cayley("S5-search", gens, nil))
}

func TestShortestPathDirected(t *testing.T) {
	// De Bruijn generators are not inverse-closed; the bidirectional
	// search must still find shortest directed paths.
	n := 5
	rot := perm.BlockLeftShift(n, 2, 1)
	swapLast := perm.Transposition(2*n, 2*n-2, 2*n-1)
	ip := &IPGraph{
		Name: "deBruijn-search",
		Seed: symbols.RepeatedSeed(n, symbols.Label{1, 2}),
		Gens: []perm.Perm{rot, perm.Compose(rot, swapLast)},
	}
	g, ix, err := ip.Build(BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 300; trial++ {
		u := int32(rng.Intn(ix.N()))
		v := int32(rng.Intn(ix.N()))
		moves, err := ip.ShortestPath(ix.Label(u), ix.Label(v), 0)
		if err != nil {
			t.Fatal(err)
		}
		states, err := ip.ApplyMoves(ix.Label(u), moves)
		if err != nil {
			t.Fatal(err)
		}
		if !states[len(states)-1].Equal(ix.Label(v)) {
			t.Fatal("directed search misses destination")
		}
		hops := 0
		for i := 0; i+1 < len(states); i++ {
			if !states[i].Equal(states[i+1]) {
				hops++
			}
		}
		dist := g.BFS(u)
		if hops != int(dist[v]) {
			t.Fatalf("directed: search %d hops, BFS %d (pair %d -> %d)", hops, dist[v], u, v)
		}
	}
}

func TestShortestPathOnUnbuildableScale(t *testing.T) {
	// HSN(3;Q4) has 4096 nodes; the point of the bidirectional search is
	// that a single query touches only a tiny fraction of them.
	s := hsn(3, nucleusQ(4), false)
	ip := s.IPGraph()
	src := s.SeedLabel()
	// A distant destination: all blocks at nucleus-diameter content.
	dst := symbols.RepeatedSeed(3, symbols.Label{2, 1, 2, 1, 2, 1, 2, 1})
	moves, err := ip.ShortestPath(src, dst, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.TheoreticalDiameter()
	if err != nil {
		t.Fatal(err)
	}
	hops := 0
	states, _ := ip.ApplyMoves(src, moves)
	for i := 0; i+1 < len(states); i++ {
		if !states[i].Equal(states[i+1]) {
			hops++
		}
	}
	if hops != want {
		t.Fatalf("extremal pair distance %d, Theorem 4.1 diameter %d", hops, want)
	}
}

func TestShortestPathErrors(t *testing.T) {
	s := hsn(2, nucleusQ(2), false)
	ip := s.IPGraph()
	if _, err := ip.ShortestPath(symbols.Label{1}, s.SeedLabel(), 0); err == nil {
		t.Fatal("wrong length must fail")
	}
	foreign := s.SeedLabel()
	foreign[0] = 9
	if _, err := ip.ShortestPath(s.SeedLabel(), foreign, 0); err == nil {
		t.Fatal("foreign multiset must fail")
	}
	// Limit exceeded.
	far := symbols.RepeatedSeed(2, symbols.Label{2, 1, 2, 1})
	if _, err := ip.ShortestPath(s.SeedLabel(), far, 2); err == nil {
		t.Fatal("tiny limit must fail")
	}
	// Unreachable within same multiset: rotation-only game.
	rotOnly := &IPGraph{
		Name: "rot",
		Seed: symbols.Label{1, 1, 2, 2},
		Gens: []perm.Perm{perm.Rotation(4, 1), perm.Rotation(4, 3)},
	}
	if _, err := rotOnly.ShortestPath(symbols.Label{1, 1, 2, 2}, symbols.Label{1, 2, 1, 2}, 0); err == nil {
		t.Fatal("unreachable label must fail")
	}
	// Identity query.
	moves, err := ip.ShortestPath(s.SeedLabel(), s.SeedLabel(), 0)
	if err != nil || len(moves) != 0 {
		t.Fatalf("identity query: %v, %v", moves, err)
	}
	if _, err := ip.ApplyMoves(s.SeedLabel(), []int{99}); err == nil {
		t.Fatal("bad move index must fail")
	}
}
