package core

import (
	"errors"
	"fmt"

	"repro/internal/graph"
	"repro/internal/perm"
	"repro/internal/symbols"
)

// Nucleus specifies the small IP graph that forms the basic module of a
// super-IP graph: its seed is one super-symbol of the super-IP graph's seed
// and its generators are the nucleus generators (Section 3.1).
type Nucleus struct {
	Name     string
	Seed     symbols.Label
	Gens     []perm.Perm
	GenNames []string
}

// M returns the number of symbols in the nucleus seed (the super-symbol
// length m).
func (nc *Nucleus) M() int { return len(nc.Seed) }

// IPGraph returns the nucleus as a standalone IP graph.
func (nc *Nucleus) IPGraph() *IPGraph {
	return &IPGraph{Name: nc.Name, Seed: nc.Seed, Gens: nc.Gens, GenNames: nc.GenNames}
}

// SuperIP specifies a super-IP graph (Section 3.1): L super-symbols of
// m = Nucleus.M() symbols each, nucleus generators acting on the leftmost
// super-symbol, and super-generators permuting whole super-symbols.
//
// If Symmetric is true the repeated seed S1 S1 ... S1 is replaced by the
// distinct-symbol seed S1 S2 ... Sl of Section 3.5, yielding a symmetric
// super-IP graph (a Cayley graph, hence vertex-symmetric and regular).
type SuperIP struct {
	Name          string
	L             int
	Nucleus       Nucleus
	SuperGens     []perm.Perm
	SuperGenNames []string
	Symmetric     bool

	nuc *nucleusInfo // lazily computed nucleus artifacts
}

type nucleusInfo struct {
	g        *graph.Graph
	ix       *Index
	diameter int
	seed     symbols.Label
	gens     []perm.Perm
}

// Validate checks the structural constraints of the super-IP definition:
// consistent sizes and block-structured super-generators, and that every
// super-symbol can reach the leftmost position (required by Section 3.1).
func (s *SuperIP) Validate() error {
	if s.L < 2 {
		return errors.New("core: super-IP graph needs l >= 2 super-symbols")
	}
	m := s.Nucleus.M()
	if m == 0 {
		return errors.New("core: empty nucleus seed")
	}
	if len(s.Nucleus.Gens) == 0 {
		return errors.New("core: nucleus has no generators")
	}
	for i, g := range s.Nucleus.Gens {
		if len(g) != m {
			return fmt.Errorf("core: nucleus generator %d has size %d, want %d", i, len(g), m)
		}
	}
	if len(s.SuperGens) == 0 {
		return errors.New("core: no super-generators")
	}
	for i, g := range s.SuperGens {
		if len(g) != s.L*m {
			return fmt.Errorf("core: super-generator %d has size %d, want %d", i, len(g), s.L*m)
		}
		if _, err := s.blockPerm(g); err != nil {
			return fmt.Errorf("core: super-generator %d: %v", i, err)
		}
	}
	// Every super-symbol must be able to reach the leftmost position.
	reach := s.leftmostReachable()
	for b := 0; b < s.L; b++ {
		if !reach[b] {
			return fmt.Errorf("core: super-symbol %d can never reach the leftmost position", b+1)
		}
	}
	return nil
}

// blockPerm extracts the block-level permutation bp of a super-generator:
// the i-th block of the output is the bp[i]-th block of the input. It errors
// if g does not permute whole blocks.
func (s *SuperIP) blockPerm(g perm.Perm) (perm.Perm, error) {
	m := s.Nucleus.M()
	bp := make(perm.Perm, s.L)
	for b := 0; b < s.L; b++ {
		src := g[b*m]
		if src%m != 0 {
			return nil, fmt.Errorf("block %d does not start at a block boundary (reads position %d)", b, src)
		}
		bp[b] = src / m
		for t := 1; t < m; t++ {
			if g[b*m+t] != src+t {
				return nil, fmt.Errorf("block %d is not moved contiguously", b)
			}
		}
	}
	if err := bp.Validate(); err != nil {
		return nil, err
	}
	return bp, nil
}

// BlockPerms returns the block-level permutations of all super-generators.
func (s *SuperIP) BlockPerms() ([]perm.Perm, error) {
	bps := make([]perm.Perm, len(s.SuperGens))
	for i, g := range s.SuperGens {
		bp, err := s.blockPerm(g)
		if err != nil {
			return nil, err
		}
		bps[i] = bp
	}
	return bps, nil
}

// leftmostReachable computes which original block indices can ever occupy
// the leftmost position under some sequence of super-generators.
func (s *SuperIP) leftmostReachable() []bool {
	bps, err := s.BlockPerms()
	if err != nil {
		return make([]bool, s.L)
	}
	// BFS over arrangements would be exponential; instead track the set of
	// blocks that can appear at position 0. arr[i] = original block at pos i;
	// applying bp yields arr'[0] = arr[bp[0]]. Reachability of "block b at
	// position 0" is a reachability problem on the L! arrangement space, but
	// a simpler sufficient computation works because super-generator sets in
	// practice are small: do BFS over arrangements with memoization, capped.
	reach := make([]bool, s.L)
	start := perm.Identity(s.L)
	seen := map[string]bool{arrKey(start): true}
	frontier := []perm.Perm{start}
	reach[start[0]] = true
	for len(frontier) > 0 {
		var next []perm.Perm
		for _, arr := range frontier {
			for _, bp := range bps {
				na := make(perm.Perm, s.L)
				for i := range na {
					na[i] = arr[bp[i]]
				}
				k := arrKey(na)
				if !seen[k] {
					seen[k] = true
					reach[na[0]] = true
					next = append(next, na)
				}
			}
		}
		frontier = next
	}
	return reach
}

func arrKey(arr perm.Perm) string {
	b := make([]byte, len(arr))
	for i, v := range arr {
		b[i] = byte(v)
	}
	return string(b)
}

// SeedLabel returns the seed of the full super-IP graph: l copies of the
// nucleus seed for a plain super-IP graph, or the distinct-symbol seed
// S1 S2 ... Sl for a symmetric one.
func (s *SuperIP) SeedLabel() symbols.Label {
	if s.Symmetric {
		return symbols.DistinctSeed(s.L, s.Nucleus.M())
	}
	return symbols.RepeatedSeed(s.L, s.Nucleus.Seed)
}

// nucleusSeed is the seed of the effective nucleus graph: the leftmost
// super-symbol of the full seed.
func (s *SuperIP) nucleusSeed() symbols.Label {
	return s.SeedLabel()[:s.Nucleus.M()]
}

// IPGraph assembles the full IP graph specification: nucleus generators
// lifted to act on the leftmost super-symbol, followed by the
// super-generators.
func (s *SuperIP) IPGraph() *IPGraph {
	m := s.Nucleus.M()
	k := s.L * m
	gens := make([]perm.Perm, 0, len(s.Nucleus.Gens)+len(s.SuperGens))
	names := make([]string, 0, cap(gens))
	for i, g := range s.Nucleus.Gens {
		gens = append(gens, perm.Lift(g, k))
		if s.Nucleus.GenNames != nil {
			names = append(names, s.Nucleus.GenNames[i])
		} else {
			names = append(names, "nuc"+g.String())
		}
	}
	for i, g := range s.SuperGens {
		gens = append(gens, g)
		if s.SuperGenNames != nil {
			names = append(names, s.SuperGenNames[i])
		} else {
			names = append(names, "super"+g.String())
		}
	}
	return &IPGraph{Name: s.Name, Seed: s.SeedLabel(), Gens: gens, GenNames: names}
}

// NumNucleusGens returns the number of nucleus generators (d_N in Thm 4.4).
func (s *SuperIP) NumNucleusGens() int { return len(s.Nucleus.Gens) }

// NumSuperGens returns the number of super-generators (d_S in Thm 4.4).
// By Theorem 3.1 this bounds the inter-cluster degree.
func (s *SuperIP) NumSuperGens() int { return len(s.SuperGens) }

// nucleus lazily builds the effective nucleus graph and its diameter.
func (s *SuperIP) nucleus() (*nucleusInfo, error) {
	if s.nuc != nil {
		return s.nuc, nil
	}
	ipn := &IPGraph{
		Name: s.Nucleus.Name,
		Seed: s.nucleusSeed(),
		Gens: s.Nucleus.Gens,
	}
	// Nucleus graphs are small (M nodes); the sequential builder avoids
	// pointless per-level worker spawning.
	g, ix, err := ipn.Build(BuildOptions{Workers: 1})
	if err != nil {
		return nil, err
	}
	st := g.Symmetrized().AllPairs()
	if !st.Connected {
		return nil, fmt.Errorf("core: nucleus %s is not connected", s.Nucleus.Name)
	}
	s.nuc = &nucleusInfo{g: g, ix: ix, diameter: int(st.Diameter), seed: ipn.Seed, gens: ipn.Gens}
	return s.nuc, nil
}

// NucleusSize returns M, the number of nodes of the (effective) nucleus
// graph.
func (s *SuperIP) NucleusSize() (int, error) {
	nuc, err := s.nucleus()
	if err != nil {
		return 0, err
	}
	return nuc.ix.N(), nil
}

// NucleusDiameter returns D_G, the diameter of the nucleus graph.
func (s *SuperIP) NucleusDiameter() (int, error) {
	nuc, err := s.nucleus()
	if err != nil {
		return 0, err
	}
	return nuc.diameter, nil
}

// NumArrangements returns the number of distinct super-symbol orderings
// reachable from the identity arrangement (l! for transposition or flip
// super-generators, l for cyclic shifts). For a plain super-IP graph the
// arrangement is unobservable; for a symmetric one it multiplies the size.
func (s *SuperIP) NumArrangements() (int, error) {
	bps, err := s.BlockPerms()
	if err != nil {
		return 0, err
	}
	group, err := perm.GroupClosure(bps, 0)
	if err != nil {
		return 0, err
	}
	return len(group), nil
}

// ExpectedSize returns the node count predicted by Theorem 3.2 (plain:
// N = M^l) and its Section 3.5 extension (symmetric: N = A * M^l where A is
// the number of reachable super-symbol arrangements).
func (s *SuperIP) ExpectedSize() (int, error) {
	m, err := s.NucleusSize()
	if err != nil {
		return 0, err
	}
	size := 1
	for i := 0; i < s.L; i++ {
		size *= m
	}
	if s.Symmetric {
		a, err := s.NumArrangements()
		if err != nil {
			return 0, err
		}
		size *= a
	}
	return size, nil
}

// Build enumerates the full super-IP graph. BuildOptions.Workers selects
// sequential vs parallel enumeration; the result is identical either way.
func (s *SuperIP) Build(opt BuildOptions) (*graph.Graph, *Index, error) {
	if err := s.Validate(); err != nil {
		return nil, nil, err
	}
	if opt.GroupSize == 0 {
		opt.GroupSize = s.Nucleus.M()
	}
	return s.IPGraph().Build(opt)
}

// TheoreticalDiameter returns the diameter predicted by Theorem 4.1
// (plain: l*D_G + t) or Theorem 4.3 (symmetric: l*D_G + t_S).
func (s *SuperIP) TheoreticalDiameter() (int, error) {
	dg, err := s.NucleusDiameter()
	if err != nil {
		return 0, err
	}
	var t int
	if s.Symmetric {
		t, err = s.TSym()
	} else {
		var sched *Schedule
		sched, err = s.MinCoverSchedule()
		if err == nil {
			t = sched.T()
		}
	}
	if err != nil {
		return 0, err
	}
	return s.L*dg + t, nil
}
