// Package core implements the index-permutation (IP) graph model of Yeh and
// Parhami (ICPP 1999), the paper's primary contribution.
//
// An IP graph is defined by a seed label and a set of generators, each an
// index permutation. The vertices are all labels obtainable by repeatedly
// applying generators to the seed; the edges are the generator actions.
// Unlike the Cayley graph model, the seed may contain repeated symbols, so
// the vertex set is generally a proper subset of an orbit of the symmetric
// group and its size depends on the seed's symbol multiset.
//
// The package also implements the paper's ball-arrangement game (Section 2),
// super-IP graphs with nucleus and super-generators (Section 3), the
// Theorem 4.1/4.3 routing algorithm and diameter formulas (Section 4), and a
// constructive demonstration of Theorem 2.1 (every graph has an IP-graph
// representation).
package core

import (
	"errors"
	"fmt"
	"runtime"

	"repro/internal/graph"
	"repro/internal/perm"
	"repro/internal/symbols"
)

// IPGraph specifies an index-permutation graph: a seed label plus a set of
// index-permutation generators. Use Build to enumerate its vertex set and
// realize it as a concrete graph.
type IPGraph struct {
	// Name is a human-readable identifier used in diagnostics and DOT output.
	Name string
	// Seed is the seed element; generators are applied to it and to every
	// generated element.
	Seed symbols.Label
	// Gens are the generators. Each must be a permutation of len(Seed)
	// positions.
	Gens []perm.Perm
	// GenNames optionally names each generator (for routing traces).
	GenNames []string
}

// Validate checks structural consistency of the definition.
func (ip *IPGraph) Validate() error {
	if len(ip.Seed) == 0 {
		return errors.New("core: empty seed")
	}
	if len(ip.Gens) == 0 {
		return errors.New("core: no generators")
	}
	for i, g := range ip.Gens {
		if len(g) != len(ip.Seed) {
			return fmt.Errorf("core: generator %d has size %d, seed has %d symbols", i, len(g), len(ip.Seed))
		}
		if err := g.Validate(); err != nil {
			return fmt.Errorf("core: generator %d: %v", i, err)
		}
	}
	if ip.GenNames != nil && len(ip.GenNames) != len(ip.Gens) {
		return fmt.Errorf("core: %d generator names for %d generators", len(ip.GenNames), len(ip.Gens))
	}
	return nil
}

// GenName returns a printable name for generator i.
func (ip *IPGraph) GenName(i int) string {
	if ip.GenNames != nil && ip.GenNames[i] != "" {
		return ip.GenNames[i]
	}
	return ip.Gens[i].String()
}

// Index maps between node ids and labels of a built IP graph. Node ids are
// assigned in BFS discovery order from the seed (the seed is node 0), which
// makes builds deterministic: the parallel builder assigns exactly the same
// ids as the sequential one (see parallel.go).
//
// Internally the key->id map is hash-sharded (power-of-two shard count) so
// the parallel builder can intern labels from many goroutines without a
// global lock; a sequentially built Index uses a single shard and skips
// hashing entirely.
type Index struct {
	mask   uint32
	shards []map[string]int32
	labels []symbols.Label
}

// newIndex returns an empty Index with the given power-of-two shard count.
func newIndex(shardCount int) *Index {
	if shardCount < 1 || shardCount&(shardCount-1) != 0 {
		panic("core: index shard count must be a power of two")
	}
	shards := make([]map[string]int32, shardCount)
	for i := range shards {
		shards[i] = map[string]int32{}
	}
	return &Index{mask: uint32(shardCount - 1), shards: shards}
}

// labelHash is FNV-1a over the label bytes; its low bits pick the shard.
// The hash only routes keys to shards — node ids never depend on it, so any
// change of hash or shard count leaves built graphs bit-identical.
func labelHash(x []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range x {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// shardFor returns the intern map responsible for label x.
func (ix *Index) shardFor(x []byte) map[string]int32 {
	if ix.mask == 0 {
		return ix.shards[0]
	}
	return ix.shards[uint32(labelHash(x))&ix.mask]
}

// N returns the number of enumerated labels.
func (ix *Index) N() int { return len(ix.labels) }

// Label returns the label of node id.
func (ix *Index) Label(id int32) symbols.Label { return ix.labels[id] }

// ID returns the node id of a label, or -1 if the label is not a vertex.
func (ix *Index) ID(x symbols.Label) int32 {
	if id, ok := ix.shardFor(x)[string(x)]; ok {
		return id
	}
	return -1
}

// add interns x (cloning it) and reports whether it was new.
func (ix *Index) add(x symbols.Label) (int32, bool) {
	m := ix.shardFor(x)
	if id, ok := m[string(x)]; ok {
		return id, false
	}
	c := x.Clone()
	id := int32(len(ix.labels))
	m[c.Key()] = id
	ix.labels = append(ix.labels, c)
	return id, true
}

// BuildOptions controls Build.
type BuildOptions struct {
	// Limit aborts enumeration if more than Limit vertices are found
	// (0 means no limit). Protects against accidentally huge graphs.
	Limit int
	// AttachLabels stores each node's label string on the produced graph
	// (grouped by GroupSize symbols if nonzero).
	AttachLabels bool
	// GroupSize is the super-symbol length used when rendering labels.
	GroupSize int
	// Workers selects the enumeration strategy: 1 forces the sequential
	// builder, n > 1 runs the parallel level-synchronous builder with n
	// workers, and 0 falls back to DefaultWorkers (and then GOMAXPROCS).
	// The built graph and index are bit-identical for every worker count.
	Workers int
	// Observe, when non-nil, receives one LevelStats record per completed
	// BFS level: frontier sizes, per-phase wall times, intern-table
	// occupancy, and arena bytes. Observation requires the level-structured
	// enumerator, so a non-nil Observe routes the build through the
	// parallel builder even at Workers == 1 (whose output is byte-identical
	// to the sequential oracle). The callback runs synchronously between
	// levels; keep it cheap.
	Observe func(LevelStats)
}

// DefaultWorkers, when positive, is the worker count used by Build whenever
// BuildOptions.Workers is zero; when itself zero, GOMAXPROCS is used. CLI
// front-ends set it once at startup (-parallel/-workers flags); it is not
// synchronized, so set it before building from multiple goroutines.
var DefaultWorkers int

// effectiveWorkers resolves the Workers option against the defaults.
func effectiveWorkers(opt BuildOptions) int {
	w := opt.Workers
	if w == 0 {
		w = DefaultWorkers
	}
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Build enumerates the IP graph by breadth-first search from the seed and
// returns the realized graph plus the label index. If the generator set is
// closed under inverse the result is undirected; otherwise it is a directed
// graph (as for de Bruijn-style generators).
//
// With more than one worker (see BuildOptions.Workers) the enumeration is
// parallel and level-synchronous; node ids, edge order, and labels are
// guaranteed bit-identical to BuildSeq regardless of the worker count.
func (ip *IPGraph) Build(opt BuildOptions) (*graph.Graph, *Index, error) {
	if err := ip.Validate(); err != nil {
		return nil, nil, err
	}
	if w := effectiveWorkers(opt); w > 1 || opt.Observe != nil {
		return ip.buildParallel(opt, w)
	}
	return ip.buildSeq(opt)
}

// BuildSeq is the sequential single-threaded enumerator. It is retained as
// the oracle the parallel builder is differenced against: the determinism
// tests assert Build produces byte-identical output for every worker count.
func (ip *IPGraph) BuildSeq(opt BuildOptions) (*graph.Graph, *Index, error) {
	if err := ip.Validate(); err != nil {
		return nil, nil, err
	}
	return ip.buildSeq(opt)
}

func (ip *IPGraph) buildSeq(opt BuildOptions) (*graph.Graph, *Index, error) {
	ix := newIndex(1)
	ix.add(ip.Seed)
	// arcs[u*len(Gens)+j] is the node reached from u by generator j.
	arcs := make([]int32, 0, 64*len(ip.Gens))
	buf := make(symbols.Label, len(ip.Seed))
	for head := 0; head < len(ix.labels); head++ {
		x := ix.labels[head]
		for _, g := range ip.Gens {
			g.Apply(buf, x)
			v, fresh := ix.add(buf)
			if fresh && opt.Limit > 0 && len(ix.labels) > opt.Limit {
				// Checked before the over-limit node contributes any arc.
				return nil, nil, ip.limitErr(opt.Limit, len(ix.labels))
			}
			arcs = append(arcs, v)
		}
	}
	return ip.finish(ix, arcs, opt)
}

// limitErr reports a BuildOptions.Limit violation, naming the family and the
// number of vertices enumeration had reached when it was cut off.
func (ip *IPGraph) limitErr(limit, attempted int) error {
	name := ip.Name
	if name == "" {
		name = "IP graph"
	}
	return fmt.Errorf("core: %s exceeds vertex limit %d (attempted %d vertices)", name, limit, attempted)
}

// finish realizes the enumerated arc table as a CSR graph. Both builders
// produce the identical flat arc layout (node-major, generator-minor), so
// sharing this epilogue guarantees the realized graphs match exactly.
func (ip *IPGraph) finish(ix *Index, arcs []int32, opt BuildOptions) (*graph.Graph, *Index, error) {
	undirected := perm.ClosedUnderInverse(ip.Gens)
	G := len(ip.Gens)
	b := graph.NewBuilder(len(ix.labels), !undirected)
	for u := 0; u < len(ix.labels); u++ {
		for j := 0; j < G; j++ {
			v := arcs[u*G+j]
			if undirected {
				b.AddEdge(int32(u), v)
			} else {
				b.AddArc(int32(u), v)
			}
		}
	}
	g := b.Build()
	if opt.AttachLabels {
		for id, lbl := range ix.labels {
			b2 := lbl.Grouped(opt.GroupSize)
			if g.Labels == nil {
				g.Labels = make([]string, g.N())
			}
			g.Labels[id] = b2
		}
	}
	return g, ix, nil
}

// MustBuild is Build that panics on error, for tests and examples.
func (ip *IPGraph) MustBuild(opt BuildOptions) (*graph.Graph, *Index) {
	g, ix, err := ip.Build(opt)
	if err != nil {
		panic(err)
	}
	return g, ix
}

// IsCayley reports whether the IP graph satisfies the Cayley-graph condition
// of the underlying model: all seed symbols distinct. (Every Cayley graph is
// an IP graph; the converse fails when symbols repeat.)
func (ip *IPGraph) IsCayley() bool { return ip.Seed.HasDistinctSymbols() }

// Cayley builds the Cayley graph of the group generated by gens, i.e. the IP
// graph with the distinct-symbol seed 1..k. This realizes the paper's
// observation that the Cayley graph model is the distinct-symbols special
// case of the IP graph model.
func Cayley(name string, gens []perm.Perm, names []string) *IPGraph {
	if len(gens) == 0 {
		panic("core: Cayley requires at least one generator")
	}
	return &IPGraph{
		Name:     name,
		Seed:     symbols.IotaSeed(len(gens[0])),
		Gens:     gens,
		GenNames: names,
	}
}
