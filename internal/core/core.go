// Package core implements the index-permutation (IP) graph model of Yeh and
// Parhami (ICPP 1999), the paper's primary contribution.
//
// An IP graph is defined by a seed label and a set of generators, each an
// index permutation. The vertices are all labels obtainable by repeatedly
// applying generators to the seed; the edges are the generator actions.
// Unlike the Cayley graph model, the seed may contain repeated symbols, so
// the vertex set is generally a proper subset of an orbit of the symmetric
// group and its size depends on the seed's symbol multiset.
//
// The package also implements the paper's ball-arrangement game (Section 2),
// super-IP graphs with nucleus and super-generators (Section 3), the
// Theorem 4.1/4.3 routing algorithm and diameter formulas (Section 4), and a
// constructive demonstration of Theorem 2.1 (every graph has an IP-graph
// representation).
package core

import (
	"errors"
	"fmt"

	"repro/internal/graph"
	"repro/internal/perm"
	"repro/internal/symbols"
)

// IPGraph specifies an index-permutation graph: a seed label plus a set of
// index-permutation generators. Use Build to enumerate its vertex set and
// realize it as a concrete graph.
type IPGraph struct {
	// Name is a human-readable identifier used in diagnostics and DOT output.
	Name string
	// Seed is the seed element; generators are applied to it and to every
	// generated element.
	Seed symbols.Label
	// Gens are the generators. Each must be a permutation of len(Seed)
	// positions.
	Gens []perm.Perm
	// GenNames optionally names each generator (for routing traces).
	GenNames []string
}

// Validate checks structural consistency of the definition.
func (ip *IPGraph) Validate() error {
	if len(ip.Seed) == 0 {
		return errors.New("core: empty seed")
	}
	if len(ip.Gens) == 0 {
		return errors.New("core: no generators")
	}
	for i, g := range ip.Gens {
		if len(g) != len(ip.Seed) {
			return fmt.Errorf("core: generator %d has size %d, seed has %d symbols", i, len(g), len(ip.Seed))
		}
		if err := g.Validate(); err != nil {
			return fmt.Errorf("core: generator %d: %v", i, err)
		}
	}
	if ip.GenNames != nil && len(ip.GenNames) != len(ip.Gens) {
		return fmt.Errorf("core: %d generator names for %d generators", len(ip.GenNames), len(ip.Gens))
	}
	return nil
}

// GenName returns a printable name for generator i.
func (ip *IPGraph) GenName(i int) string {
	if ip.GenNames != nil && ip.GenNames[i] != "" {
		return ip.GenNames[i]
	}
	return ip.Gens[i].String()
}

// Index maps between node ids and labels of a built IP graph. Node ids are
// assigned in BFS discovery order from the seed (the seed is node 0), which
// makes builds deterministic.
type Index struct {
	byKey  map[string]int32
	labels []symbols.Label
}

// N returns the number of enumerated labels.
func (ix *Index) N() int { return len(ix.labels) }

// Label returns the label of node id.
func (ix *Index) Label(id int32) symbols.Label { return ix.labels[id] }

// ID returns the node id of a label, or -1 if the label is not a vertex.
func (ix *Index) ID(x symbols.Label) int32 {
	if id, ok := ix.byKey[x.Key()]; ok {
		return id
	}
	return -1
}

// BuildOptions controls Build.
type BuildOptions struct {
	// Limit aborts enumeration if more than Limit vertices are found
	// (0 means no limit). Protects against accidentally huge graphs.
	Limit int
	// AttachLabels stores each node's label string on the produced graph
	// (grouped by GroupSize symbols if nonzero).
	AttachLabels bool
	// GroupSize is the super-symbol length used when rendering labels.
	GroupSize int
}

// Build enumerates the IP graph by breadth-first search from the seed and
// returns the realized graph plus the label index. If the generator set is
// closed under inverse the result is undirected; otherwise it is a directed
// graph (as for de Bruijn-style generators).
func (ip *IPGraph) Build(opt BuildOptions) (*graph.Graph, *Index, error) {
	if err := ip.Validate(); err != nil {
		return nil, nil, err
	}
	undirected := perm.ClosedUnderInverse(ip.Gens)
	ix := &Index{byKey: map[string]int32{}}
	add := func(x symbols.Label) int32 {
		if id, ok := ix.byKey[x.Key()]; ok {
			return id
		}
		id := int32(len(ix.labels))
		c := x.Clone()
		ix.byKey[c.Key()] = id
		ix.labels = append(ix.labels, c)
		return id
	}
	add(ip.Seed)
	type arc struct{ u, v int32 }
	var arcs []arc
	buf := make(symbols.Label, len(ip.Seed))
	for head := 0; head < len(ix.labels); head++ {
		u := int32(head)
		x := ix.labels[head]
		for _, g := range ip.Gens {
			g.Apply(buf, x)
			v := add(buf)
			if opt.Limit > 0 && len(ix.labels) > opt.Limit {
				return nil, nil, fmt.Errorf("core: %s exceeds vertex limit %d", ip.Name, opt.Limit)
			}
			arcs = append(arcs, arc{u, v})
		}
	}
	b := graph.NewBuilder(len(ix.labels), !undirected)
	for _, a := range arcs {
		if undirected {
			b.AddEdge(a.u, a.v)
		} else {
			b.AddArc(a.u, a.v)
		}
	}
	g := b.Build()
	if opt.AttachLabels {
		for id, lbl := range ix.labels {
			b2 := lbl.Grouped(opt.GroupSize)
			if g.Labels == nil {
				g.Labels = make([]string, g.N())
			}
			g.Labels[id] = b2
		}
	}
	return g, ix, nil
}

// MustBuild is Build that panics on error, for tests and examples.
func (ip *IPGraph) MustBuild(opt BuildOptions) (*graph.Graph, *Index) {
	g, ix, err := ip.Build(opt)
	if err != nil {
		panic(err)
	}
	return g, ix
}

// IsCayley reports whether the IP graph satisfies the Cayley-graph condition
// of the underlying model: all seed symbols distinct. (Every Cayley graph is
// an IP graph; the converse fails when symbols repeat.)
func (ip *IPGraph) IsCayley() bool { return ip.Seed.HasDistinctSymbols() }

// Cayley builds the Cayley graph of the group generated by gens, i.e. the IP
// graph with the distinct-symbol seed 1..k. This realizes the paper's
// observation that the Cayley graph model is the distinct-symbols special
// case of the IP graph model.
func Cayley(name string, gens []perm.Perm, names []string) *IPGraph {
	if len(gens) == 0 {
		panic("core: Cayley requires at least one generator")
	}
	return &IPGraph{
		Name:     name,
		Seed:     symbols.IotaSeed(len(gens[0])),
		Gens:     gens,
		GenNames: names,
	}
}
