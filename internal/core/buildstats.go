package core

import "time"

// LevelStats is the per-level instrumentation record of the parallel
// level-synchronous builder (see parallel.go): one callback per completed
// BFS level, delivered through BuildOptions.Observe. It ends the "builder
// runs blind for ten seconds" regime — a million-node build reports its
// frontier growth, per-phase wall time, intern-table occupancy, and arena
// footprint as it goes, and cmd/ipgen surfaces it via -progress/-manifest.
//
// Observation never perturbs the build: every field is computed from state
// the builder already holds, between the same barriers, and the callback
// runs on the coordinating goroutine after the level's publication barrier,
// so the enumerated graph stays byte-identical with and without an
// observer (pinned by TestBuildObserverParity).
type LevelStats struct {
	// Level is the 0-based BFS depth just expanded (level 0 expands the
	// seed). FrontierNodes is how many nodes that level expanded, NewNodes
	// how many distinct labels were first discovered, and TotalNodes the
	// interned-label count after the level — the intern-table occupancy.
	Level         int
	FrontierNodes int
	NewNodes      int
	TotalNodes    int
	// ArcSlots is FrontierNodes x generators: the expansion work of the
	// level (every slot is one generator application plus one table probe).
	ArcSlots int
	// Expand/Dedup/Assign/Publish are the wall times of the four
	// barrier-separated phases of the level.
	Expand, Dedup, Assign, Publish time.Duration
	// CandidateArenaBytes counts bytes handed out by the per-worker
	// candidate label arenas since the build started (cumulative; the
	// blocks themselves are recycled by GC level to level), and
	// InternArenaBytes the bytes resident in the permanent label arena —
	// together the build's label-storage story.
	CandidateArenaBytes int64
	InternArenaBytes    int64
	// Shards is the intern-table shard count and MaxShardLoad the label
	// count of the fullest shard after publication — a direct view of how
	// evenly the FNV-1a sharding spreads the label space.
	Shards       int
	MaxShardLoad int
}
