package core

import (
	"os"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/perm"
	"repro/internal/symbols"
)

// parityCases is the family grid the golden parity suite runs over. It mixes
// undirected and directed instances, repeated- and distinct-symbol seeds,
// and every super-generator family of Section 3.
func parityCases() map[string]*IPGraph {
	cases := map[string]*IPGraph{}

	cases["paper-example"] = &IPGraph{
		Name: "paper-example",
		Seed: symbols.Label{1, 2, 3, 1, 2, 3},
		Gens: []perm.Perm{
			perm.Transposition(6, 0, 1),
			perm.Transposition(6, 0, 2),
			perm.BlockLeftShift(2, 3, 1),
		},
	}

	cases["HSN(3;Q2)"] = hsn(3, nucleusQ(2), false).IPGraph()
	cases["sym-HSN(3;Q2)"] = hsn(3, nucleusQ(2), true).IPGraph()
	cases["sym-HSN(4;Q2)"] = hsn(4, nucleusQ(2), true).IPGraph()
	cases["sym-ringCN(3;Q2)"] = ringCN(3, nucleusQ(2), true).IPGraph()
	cases["sym-SFN(3;Q2)"] = superFlip(3, nucleusQ(2), true).IPGraph()

	// Directed: single cyclic shift over 3 blocks is not inverse-closed.
	nq2 := nucleusQ(2)
	cases["dirCN(3;Q2)"] = &IPGraph{
		Name: "dirCN(3;Q2)",
		Seed: symbols.RepeatedSeed(3, nq2.Seed),
		Gens: append(nucleusLift(nq2, 3), perm.BlockLeftShift(3, nq2.M(), 1)),
	}

	// Directed de Bruijn-style generators (rotate / rotate+complement).
	rot := perm.BlockLeftShift(5, 2, 1)
	cases["deBruijn-5"] = &IPGraph{
		Name: "deBruijn-5",
		Seed: symbols.RepeatedSeed(5, symbols.Label{1, 2}),
		Gens: []perm.Perm{rot, perm.Compose(rot, perm.Transposition(10, 8, 9))},
	}

	// A plain Cayley graph: the 6-star.
	var starGens []perm.Perm
	for i := 1; i < 6; i++ {
		starGens = append(starGens, perm.Transposition(6, 0, i))
	}
	cases["star-6"] = Cayley("S6", starGens, nil)

	return cases
}

// nucleusLift lifts a nucleus's generators to act on the leftmost of l blocks.
func nucleusLift(nuc Nucleus, l int) []perm.Perm {
	out := make([]perm.Perm, len(nuc.Gens))
	for i, g := range nuc.Gens {
		out[i] = perm.Lift(g, l*nuc.M())
	}
	return out
}

// assertIdentical fails unless the two (graph, index) pairs are bit-for-bit
// identical: same node count, same labels in the same id order, same
// directedness, and the same edge list.
func assertIdentical(t *testing.T, name string, gWant *graph.Graph, ixWant *Index, gGot *graph.Graph, ixGot *Index) {
	t.Helper()
	if ixGot.N() != ixWant.N() {
		t.Fatalf("%s: N = %d, want %d", name, ixGot.N(), ixWant.N())
	}
	for id := 0; id < ixWant.N(); id++ {
		want, got := ixWant.Label(int32(id)), ixGot.Label(int32(id))
		if !want.Equal(got) {
			t.Fatalf("%s: label of node %d = %v, want %v", name, id, got, want)
		}
		if back := ixGot.ID(want); back != int32(id) {
			t.Fatalf("%s: ID(%v) = %d, want %d", name, want, back, id)
		}
	}
	if gGot.Directed != gWant.Directed {
		t.Fatalf("%s: directed = %v, want %v", name, gGot.Directed, gWant.Directed)
	}
	if gGot.N() != gWant.N() || gGot.M() != gWant.M() {
		t.Fatalf("%s: graph shape %d/%d, want %d/%d", name, gGot.N(), gGot.M(), gWant.N(), gWant.M())
	}
	ew, eg := gWant.EdgeList(), gGot.EdgeList()
	if len(ew) != len(eg) {
		t.Fatalf("%s: %d edges, want %d", name, len(eg), len(ew))
	}
	for i := range ew {
		if ew[i] != eg[i] {
			t.Fatalf("%s: edge %d = %v, want %v", name, i, eg[i], ew[i])
		}
	}
}

// TestParallelBuildGoldenParity is the golden parity suite: for every family
// in the grid and every worker count, the parallel builder must reproduce
// BuildSeq bit-for-bit — node ids, labels, directedness, and edge lists.
// CI runs this under -race, which also exercises the phase barriers.
func TestParallelBuildGoldenParity(t *testing.T) {
	workerCounts := []int{2, 3, 4, 8}
	for name, ip := range parityCases() {
		gSeq, ixSeq, err := ip.BuildSeq(BuildOptions{})
		if err != nil {
			t.Fatalf("%s: BuildSeq: %v", name, err)
		}
		for _, w := range workerCounts {
			gPar, ixPar, err := ip.Build(BuildOptions{Workers: w})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, w, err)
			}
			assertIdentical(t, name, gSeq, ixSeq, gPar, ixPar)
		}
	}
}

// TestParallelBuildStatsParity checks that derived AllPairs statistics agree
// between the sequential and parallel builds (they must, given structural
// parity, but this pins the full measurement pipeline end to end).
func TestParallelBuildStatsParity(t *testing.T) {
	for _, name := range []string{"sym-HSN(3;Q2)", "dirCN(3;Q2)", "paper-example"} {
		ip := parityCases()[name]
		gSeq, _, err := ip.BuildSeq(BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		gPar, _, err := ip.Build(BuildOptions{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		sSeq := gSeq.Symmetrized().AllPairs()
		sPar := gPar.Symmetrized().AllPairs()
		if sSeq != sPar {
			t.Fatalf("%s: AllPairs %+v (parallel) != %+v (sequential)", name, sPar, sSeq)
		}
	}
}

// TestParallelBuildRepeatable runs the same parallel build twice and demands
// identical output: the dynamic chunk scheduler must not leak schedule
// nondeterminism into the result.
func TestParallelBuildRepeatable(t *testing.T) {
	ip := hsn(4, nucleusQ(2), true).IPGraph()
	g1, ix1, err := ip.Build(BuildOptions{Workers: 7})
	if err != nil {
		t.Fatal(err)
	}
	g2, ix2, err := ip.Build(BuildOptions{Workers: 7})
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, "sym-HSN(4;Q2)", g1, ix1, g2, ix2)
}

// TestParallelBuildDefaultWorkers pins the dispatch rules: Workers 1 is the
// sequential path, 0 resolves through DefaultWorkers, and both agree with
// the oracle.
func TestParallelBuildDefaultWorkers(t *testing.T) {
	old := DefaultWorkers
	defer func() { DefaultWorkers = old }()

	ip := hsn(3, nucleusQ(2), false).IPGraph()
	gSeq, ixSeq, err := ip.BuildSeq(BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, dw := range []int{0, 1, 3} {
		DefaultWorkers = dw
		g, ix, err := ip.Build(BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		assertIdentical(t, "HSN(3;Q2)", gSeq, ixSeq, g, ix)
	}
}

// TestParallelBuildLimit checks Limit enforcement on the parallel path: the
// error must name the family and report the attempted vertex count, and no
// partial result may escape.
func TestParallelBuildLimit(t *testing.T) {
	var gens []perm.Perm
	for i := 1; i < 7; i++ {
		gens = append(gens, perm.Transposition(7, 0, i))
	}
	ip := Cayley("S7", gens, nil)
	g, ix, err := ip.Build(BuildOptions{Limit: 100, Workers: 4})
	if err == nil {
		t.Fatal("expected limit error for 7! nodes")
	}
	if g != nil || ix != nil {
		t.Fatal("limit violation must not return a partial graph")
	}
	if !strings.Contains(err.Error(), "S7") || !strings.Contains(err.Error(), "attempted") {
		t.Fatalf("limit error %q must name the family and the attempted count", err)
	}
}

// TestParallelBuildLarge diffs the builders on a >10^6-node symmetric
// super-IP instance (sym-HSN(4;Q4), 24 * 16^4 = 1,572,864 nodes). It takes
// tens of seconds and a few hundred MB, so it only runs when REPRO_BIG=1;
// see EXPERIMENTS.md "Building large graphs".
func TestParallelBuildLarge(t *testing.T) {
	if os.Getenv("REPRO_BIG") == "" {
		t.Skip("set REPRO_BIG=1 to run the million-node parity check")
	}
	ip := hsn(4, nucleusQ(4), true).IPGraph()
	gSeq, ixSeq, err := ip.BuildSeq(BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ixSeq.N() != 1572864 {
		t.Fatalf("sym-HSN(4;Q4) has %d nodes, want 1572864", ixSeq.N())
	}
	gPar, ixPar, err := ip.Build(BuildOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, "sym-HSN(4;Q4)", gSeq, ixSeq, gPar, ixPar)
	_ = gPar
}
