package core

import (
	"fmt"

	"repro/internal/perm"
	"repro/internal/symbols"
)

// ShortestPath finds a shortest generator sequence from src to dst in the
// IP graph WITHOUT enumerating the whole vertex set: it runs bidirectional
// BFS directly over labels, expanding forward with the generators and
// backward with their inverses. This makes optimal routing practical on IP
// graphs far too large to build (the frontier grows like degree^(d/2)
// instead of degree^d).
//
// limit bounds the total number of labels explored (0 = no limit). The
// returned moves are generator indices; applying them to src in order
// yields dst.
func (ip *IPGraph) ShortestPath(src, dst symbols.Label, limit int) ([]int, error) {
	if err := ip.Validate(); err != nil {
		return nil, err
	}
	k := len(ip.Seed)
	if len(src) != k || len(dst) != k {
		return nil, fmt.Errorf("core: labels must have %d symbols", k)
	}
	if src.MultisetKey() != dst.MultisetKey() {
		return nil, fmt.Errorf("core: src and dst symbol multisets differ")
	}
	if src.Equal(dst) {
		return nil, nil
	}
	inv := make([]perm.Perm, len(ip.Gens))
	for i, g := range ip.Gens {
		inv[i] = g.Inverse()
	}
	fwd := map[string]searchCrumb{src.Key(): {"", -1, 0}}
	bwd := map[string]searchCrumb{dst.Key(): {"", -1, 0}}
	fwdFrontier := []symbols.Label{src.Clone()}
	bwdFrontier := []symbols.Label{dst.Clone()}
	buf := make(symbols.Label, k)

	// expand grows one full BFS level. It records every newly discovered
	// label and reports the meeting label minimizing the total path length
	// over the whole level (returning on the first hit could splice through
	// a deeper node of the other tree).
	meet := ""
	bestTotal := 1 << 30
	expand := func(frontier []symbols.Label, own, other map[string]searchCrumb, gens []perm.Perm) ([]symbols.Label, bool) {
		var next []symbols.Label
		found := false
		for _, x := range frontier {
			xk := x.Key()
			depth := own[xk].depth + 1
			for mi, g := range gens {
				g.Apply(buf, x)
				key := buf.Key()
				if _, seen := own[key]; seen {
					continue
				}
				own[key] = searchCrumb{parentKey: xk, move: mi, depth: depth}
				next = append(next, buf.Clone())
				if o, hit := other[key]; hit {
					if total := depth + o.depth; total < bestTotal {
						bestTotal, meet = total, key
					}
					found = true
				}
			}
		}
		return next, found
	}

	for len(fwdFrontier) > 0 && len(bwdFrontier) > 0 {
		if limit > 0 && len(fwd)+len(bwd) > limit {
			return nil, fmt.Errorf("core: search limit %d exceeded", limit)
		}
		// Expand the smaller frontier first.
		var hit bool
		if len(fwdFrontier) <= len(bwdFrontier) {
			fwdFrontier, hit = expand(fwdFrontier, fwd, bwd, ip.Gens)
		} else {
			bwdFrontier, hit = expand(bwdFrontier, bwd, fwd, inv)
		}
		if hit {
			return ip.reconstructMeet(meet, fwd, bwd)
		}
	}
	return nil, fmt.Errorf("core: %v unreachable from %v", dst, src)
}

// searchCrumb records how a label was first reached during bidirectional
// search.
type searchCrumb struct {
	parentKey string
	move      int
	depth     int
}

// reconstructMeet splices the forward and backward halves of the search at
// the meeting label.
func (ip *IPGraph) reconstructMeet(meet string, fwd, bwd map[string]searchCrumb) ([]int, error) {
	var front []int
	for key := meet; ; {
		c := fwd[key]
		if c.move < 0 {
			break
		}
		front = append(front, c.move)
		key = c.parentKey
	}
	for i, j := 0, len(front)-1; i < j; i, j = i+1, j-1 {
		front[i], front[j] = front[j], front[i]
	}
	// The backward crumbs record inverse moves from dst; walking from the
	// meeting point toward dst we must apply the forward generator that the
	// inverse move undoes — which is the same index.
	var back []int
	for key := meet; ; {
		c := bwd[key]
		if c.move < 0 {
			break
		}
		back = append(back, c.move)
		key = c.parentKey
	}
	return append(front, back...), nil
}

// Distance returns the shortest-path length between two labels using
// ShortestPath.
func (ip *IPGraph) Distance(src, dst symbols.Label, limit int) (int, error) {
	moves, err := ip.ShortestPath(src, dst, limit)
	if err != nil {
		return 0, err
	}
	return len(moves), nil
}

// ApplyMoves applies a generator-index sequence to a label, returning the
// resulting label and every intermediate state.
func (ip *IPGraph) ApplyMoves(src symbols.Label, moves []int) ([]symbols.Label, error) {
	cur := src.Clone()
	states := []symbols.Label{cur.Clone()}
	for _, mi := range moves {
		if mi < 0 || mi >= len(ip.Gens) {
			return nil, fmt.Errorf("core: move index %d out of range", mi)
		}
		next := make(symbols.Label, len(cur))
		ip.Gens[mi].Apply(next, cur)
		cur = next
		states = append(states, cur.Clone())
	}
	return states, nil
}
