package core

// Parallel level-synchronous IP-graph enumeration.
//
// The sequential builder (buildSeq) assigns node ids in BFS discovery order:
// nodes are dequeued in id order, generators applied in declaration order,
// and a label's id is fixed the first time it appears. Because BFS from a
// single seed dequeues whole levels in order, the first appearance of a
// level-(d+1) label is the lexicographically least (parent rank within level
// d, generator index) pair that produces it. The parallel builder exploits
// exactly that characterization: it expands one level at a time with many
// workers, then assigns ids to the level's new labels in (parent rank,
// generator index) order of their first occurrence. The result — ids, label
// bytes, and arc order — is therefore *identical* to buildSeq, not merely
// isomorphic, for every worker count and schedule. The determinism and
// parity tests in parallel_test.go pin this, including under -race.
//
// Each level runs four phases separated by barriers, so no locks are needed:
//
//  1. Expansion (parallel over frontier chunks): workers claim chunks of the
//     frontier with an atomic cursor, apply every generator, and probe the
//     hash-sharded intern tables read-only. Hits resolve their arc slot
//     immediately; misses are buffered per (worker, shard) as candidates,
//     with label bytes copied into a per-worker arena (no per-node Clone).
//  2. Shard dedup (parallel over shards): each shard — owned by exactly one
//     goroutine — merges its candidates from all workers, keeping the
//     minimum slot per distinct label (a schedule-independent reduction).
//  3. Id assignment (sequential, cheap): new labels from all shards are
//     sorted by their minimum slot — slots are unique, so the order is
//     total — and appended to the index in that canonical order. Label
//     bytes move to a permanent arena; the candidate arenas become garbage.
//  4. Publication (parallel over shards): each shard inserts its labels
//     into its intern map and writes the assigned ids into every arc slot
//     that produced the label.
//
// The intern tables are only read during phase 1 and only written during
// phase 4, with barriers in between, so shards need no mutex at all.

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/symbols"
)

// expandChunk is the number of frontier nodes a worker claims at a time.
const expandChunk = 128

// labelArena hands out label-sized byte slices carved from large blocks,
// replacing one allocation per discovered label with one per block.
type labelArena struct {
	block     []byte
	blockSize int
	used      int64 // bytes handed out so far (LevelStats accounting)
}

func (a *labelArena) copyOf(b []byte) []byte {
	a.used += int64(len(b))
	if len(a.block) < len(b) {
		if a.blockSize < len(b) {
			a.blockSize = 1 << 16
			for a.blockSize < len(b) {
				a.blockSize <<= 1
			}
		}
		a.block = make([]byte, a.blockSize)
	}
	dst := a.block[:len(b):len(b)]
	a.block = a.block[len(b):]
	copy(dst, b)
	return dst
}

// buildCandidate is a frontier expansion that missed the intern tables:
// slot identifies the (parent rank, generator) position within the level.
type buildCandidate struct {
	slot  int32
	label []byte
}

// newLabel is one distinct label first discovered in the current level.
type newLabel struct {
	minSlot int32
	id      int32
	label   []byte
	slots   []int32 // every arc slot of the level that produced this label
}

func (ip *IPGraph) buildParallel(opt BuildOptions, workers int) (*graph.Graph, *Index, error) {
	k := len(ip.Seed)
	G := len(ip.Gens)

	shardCount := 1
	for shardCount < 4*workers && shardCount < 512 {
		shardCount <<= 1
	}
	ix := newIndex(shardCount)
	ix.add(ip.Seed)

	arcs := make([]int32, 0, 1024*G)
	frontier := []int32{0}

	arenas := make([]*labelArena, workers)
	buckets := make([][][]buildCandidate, workers) // [worker][shard]candidates
	for w := range arenas {
		arenas[w] = &labelArena{}
		buckets[w] = make([][]buildCandidate, shardCount)
	}
	shardNew := make([][]*newLabel, shardCount)
	permArena := &labelArena{blockSize: 1 << 20} // permanent storage for interned labels

	// Instrumentation (BuildOptions.Observe) is computed only when asked
	// for: the stamp helper returns the zero time on unobserved builds, so
	// the hot path pays a nil check per *level*, nothing per node.
	observe := opt.Observe != nil
	stamp := func() time.Time {
		if observe {
			return time.Now()
		}
		return time.Time{}
	}
	levelNo := 0

	for len(frontier) > 0 {
		nf := len(frontier)
		if nf > ((1<<31)-1)/G {
			return nil, nil, fmt.Errorf("core: %s: frontier of %d nodes overflows the level slot space", ip.Name, nf)
		}
		level := make([]int32, nf*G)
		t0 := stamp()

		// Phase 1: expansion. The intern tables are read-only here.
		var cursor atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				buf := make([]byte, k)
				bkt := buckets[w]
				arena := arenas[w]
				for {
					start := int(cursor.Add(expandChunk)) - expandChunk
					if start >= nf {
						return
					}
					end := start + expandChunk
					if end > nf {
						end = nf
					}
					for r := start; r < end; r++ {
						x := ix.labels[frontier[r]]
						for j, g := range ip.Gens {
							g.Apply(buf, x)
							slot := int32(r*G + j)
							s := uint32(labelHash(buf)) & ix.mask
							if id, ok := ix.shards[s][string(buf)]; ok {
								level[slot] = id
							} else {
								bkt[s] = append(bkt[s], buildCandidate{slot: slot, label: arena.copyOf(buf)})
							}
						}
					}
				}
			}(w)
		}
		wg.Wait()
		t1 := stamp()

		// Phase 2: per-shard dedup. Each shard is owned by one goroutine.
		var shardCursor atomic.Int64
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					s := int(shardCursor.Add(1)) - 1
					if s >= shardCount {
						return
					}
					var entries []*newLabel
					var m map[string]*newLabel
					for w2 := 0; w2 < workers; w2++ {
						for _, c := range buckets[w2][s] {
							if m == nil {
								m = make(map[string]*newLabel)
							}
							if e, ok := m[string(c.label)]; ok {
								if c.slot < e.minSlot {
									e.minSlot = c.slot
								}
								e.slots = append(e.slots, c.slot)
							} else {
								e := &newLabel{minSlot: c.slot, label: c.label, slots: []int32{c.slot}}
								m[string(e.label)] = e
								entries = append(entries, e)
							}
						}
					}
					shardNew[s] = entries
				}
			}()
		}
		wg.Wait()
		t2 := stamp()

		// Phase 3: canonical id assignment. Slots are unique across entries,
		// so sorting by minimum slot is a total, schedule-independent order —
		// the same order sequential BFS would have discovered these labels in.
		total := 0
		for _, es := range shardNew {
			total += len(es)
		}
		winners := make([]*newLabel, 0, total)
		for _, es := range shardNew {
			winners = append(winners, es...)
		}
		sort.Slice(winners, func(i, j int) bool { return winners[i].minSlot < winners[j].minSlot })
		base := int32(len(ix.labels))
		if opt.Limit > 0 && int(base)+len(winners) > opt.Limit {
			return nil, nil, ip.limitErr(opt.Limit, int(base)+len(winners))
		}
		for i, e := range winners {
			e.id = base + int32(i)
			e.label = permArena.copyOf(e.label)
			ix.labels = append(ix.labels, symbols.Label(e.label))
		}
		t3 := stamp()

		// Phase 4: publish ids into the shard maps and resolve arc slots.
		shardCursor.Store(0)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					s := int(shardCursor.Add(1)) - 1
					if s >= shardCount {
						return
					}
					m := ix.shards[s]
					for _, e := range shardNew[s] {
						m[string(e.label)] = e.id
						for _, slot := range e.slots {
							level[slot] = e.id
						}
					}
					shardNew[s] = nil
				}
			}()
		}
		wg.Wait()

		if observe {
			t4 := time.Now()
			ls := LevelStats{
				Level:            levelNo,
				FrontierNodes:    nf,
				NewNodes:         len(winners),
				TotalNodes:       len(ix.labels),
				ArcSlots:         nf * G,
				Expand:           t1.Sub(t0),
				Dedup:            t2.Sub(t1),
				Assign:           t3.Sub(t2),
				Publish:          t4.Sub(t3),
				InternArenaBytes: permArena.used,
				Shards:           shardCount,
			}
			for _, a := range arenas {
				ls.CandidateArenaBytes += a.used
			}
			for _, m := range ix.shards {
				if len(m) > ls.MaxShardLoad {
					ls.MaxShardLoad = len(m)
				}
			}
			opt.Observe(ls)
		}
		levelNo++

		arcs = append(arcs, level...)
		frontier = frontier[:0]
		for i := range winners {
			frontier = append(frontier, base+int32(i))
		}
		// Drop candidate label references so the per-level arena blocks are
		// collectable, then keep the bucket capacity for the next level.
		for w := range buckets {
			for s := range buckets[w] {
				clear(buckets[w][s])
				buckets[w][s] = buckets[w][s][:0]
			}
		}
	}
	return ip.finish(ix, arcs, opt)
}
