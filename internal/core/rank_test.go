package core

import (
	"testing"

	"repro/internal/perm"
	"repro/internal/symbols"
)

// rankerGrid returns named super-IP instances covering every Section 3
// family, plain and symmetric, small enough to cross-check exhaustively
// against the materialized graph.
func rankerGrid() map[string]*SuperIP {
	completeCN := func(l int, nuc Nucleus, symmetric bool) *SuperIP {
		m := nuc.M()
		gens := make([]perm.Perm, 0, l-1)
		for i := 1; i < l; i++ {
			gens = append(gens, perm.BlockLeftShift(l, m, i))
		}
		return &SuperIP{Name: "CN", L: l, Nucleus: nuc, SuperGens: gens, Symmetric: symmetric}
	}
	dirCN := func(l int, nuc Nucleus) *SuperIP {
		return &SuperIP{
			Name: "dirCN", L: l, Nucleus: nuc,
			SuperGens: []perm.Perm{perm.BlockLeftShift(l, nuc.M(), 1)},
		}
	}
	return map[string]*SuperIP{
		"HSN(3;Q2)":        hsn(3, nucleusQ(2), false),
		"sym-HSN(3;Q2)":    hsn(3, nucleusQ(2), true),
		"ringCN(3;Q2)":     ringCN(3, nucleusQ(2), false),
		"sym-ringCN(3;Q2)": ringCN(3, nucleusQ(2), true),
		"CN(4;Q2)":         completeCN(4, nucleusQ(2), false),
		"sym-CN(3;Q2)":     completeCN(3, nucleusQ(2), true),
		"dirCN(3;Q2)":      dirCN(3, nucleusQ(2)),
		"SFN(3;Q2)":        superFlip(3, nucleusQ(2), false),
		"sym-SFN(3;Q2)":    superFlip(3, nucleusQ(2), true),
		"HSN(2;Q3)":        hsn(2, nucleusQ(3), false),
		"sym-HSN(2;Q3)":    hsn(2, nucleusQ(3), true),
	}
}

// TestRankerBijection checks, exhaustively on every grid family, that Rank
// is a bijection from the materialized vertex set onto [0,N) and that Unrank
// inverts it.
func TestRankerBijection(t *testing.T) {
	for name, s := range rankerGrid() {
		_, ix, err := s.Build(BuildOptions{Workers: 1})
		if err != nil {
			t.Fatalf("%s: build: %v", name, err)
		}
		r, err := s.Ranker()
		if err != nil {
			t.Fatalf("%s: ranker: %v", name, err)
		}
		if r.N() != int64(ix.N()) {
			t.Fatalf("%s: Ranker.N = %d, materialized N = %d", name, r.N(), ix.N())
		}
		seen := make([]bool, ix.N())
		var buf symbols.Label
		for id := int32(0); id < int32(ix.N()); id++ {
			lbl := ix.Label(id)
			rk, err := r.Rank(lbl)
			if err != nil {
				t.Fatalf("%s: Rank(%v): %v", name, lbl, err)
			}
			if rk < 0 || rk >= r.N() {
				t.Fatalf("%s: Rank(%v) = %d out of [0,%d)", name, lbl, rk, r.N())
			}
			if seen[rk] {
				t.Fatalf("%s: rank %d assigned twice", name, rk)
			}
			seen[rk] = true
			buf = r.Unrank(rk, buf)
			if !buf.Equal(lbl) {
				t.Fatalf("%s: Unrank(Rank(%v)) = %v", name, lbl, buf)
			}
		}
	}
}

// TestRankerModules checks that Module agrees with the nucleus-per-module
// partition: same module iff the labels agree on everything except the
// leftmost super-symbol, with dense module ids.
func TestRankerModules(t *testing.T) {
	for name, s := range rankerGrid() {
		_, ix, err := s.Build(BuildOptions{Workers: 1})
		if err != nil {
			t.Fatalf("%s: build: %v", name, err)
		}
		r, err := s.Ranker()
		if err != nil {
			t.Fatalf("%s: ranker: %v", name, err)
		}
		m := s.Nucleus.M()
		bySuffix := map[string]int64{}
		seenMods := map[int64]bool{}
		for id := int32(0); id < int32(ix.N()); id++ {
			lbl := ix.Label(id)
			mod, err := r.ModuleOf(lbl)
			if err != nil {
				t.Fatalf("%s: ModuleOf(%v): %v", name, lbl, err)
			}
			if mod < 0 || mod >= r.Modules() {
				t.Fatalf("%s: module %d out of [0,%d)", name, mod, r.Modules())
			}
			seenMods[mod] = true
			key := string(lbl[m:])
			if prev, ok := bySuffix[key]; ok {
				if prev != mod {
					t.Fatalf("%s: suffix %q maps to modules %d and %d", name, key, prev, mod)
				}
			} else {
				bySuffix[key] = mod
			}
			rk, _ := r.Rank(lbl)
			viaID, err := r.Module(rk)
			if err != nil || viaID != mod {
				t.Fatalf("%s: Module(%d) = %d (%v), want %d", name, rk, viaID, err, mod)
			}
		}
		if int64(len(bySuffix)) != r.Modules() || int64(len(seenMods)) != r.Modules() {
			t.Fatalf("%s: %d suffixes / %d module ids, want %d", name, len(bySuffix), len(seenMods), r.Modules())
		}
	}
}

// TestRankerRejectsNonVertices pins the error paths: wrong length, a block
// that is not a nucleus state, and (symmetric) an unreachable arrangement.
func TestRankerRejectsNonVertices(t *testing.T) {
	s := hsn(3, nucleusQ(2), false)
	r, err := s.Ranker()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Rank(symbols.Label{1, 2}); err == nil {
		t.Fatal("short label accepted")
	}
	bad := s.SeedLabel().Clone()
	bad[0] = 9 // not a Q2 pair symbol
	if _, err := r.Rank(bad); err == nil {
		t.Fatal("non-nucleus block accepted")
	}

	// ring-CN symmetric: only cyclic arrangements are reachable, so a
	// transposed (non-cyclic) arrangement must be rejected.
	sy := ringCN(3, nucleusQ(2), true)
	ry, err := sy.Ranker()
	if err != nil {
		t.Fatal(err)
	}
	lbl := sy.SeedLabel().Clone()
	m := sy.Nucleus.M()
	for i := 0; i < m; i++ { // swap blocks 0 and 1: arrangement (1 0 2)
		lbl[i], lbl[m+i] = lbl[m+i], lbl[i]
	}
	if _, err := ry.Rank(lbl); err == nil {
		t.Fatal("unreachable arrangement accepted")
	}
}

// TestRankerModuleArithmetic checks the closed-form module enumeration:
// ModuleSize * Modules covers N exactly, ModuleNode(m, ·) enumerates each
// module without repeats, and ModuleOfID inverts it — all without touching
// label space.
func TestRankerModuleArithmetic(t *testing.T) {
	for name, s := range rankerGrid() {
		r, err := s.Ranker()
		if err != nil {
			t.Fatalf("%s: ranker: %v", name, err)
		}
		size := r.ModuleSize()
		if size*r.Modules() != r.N() {
			t.Fatalf("%s: ModuleSize %d * Modules %d != N %d", name, size, r.Modules(), r.N())
		}
		seen := make([]bool, r.N())
		for mod := int64(0); mod < r.Modules(); mod++ {
			for off := int64(0); off < size; off++ {
				id := r.ModuleNode(mod, off)
				if id < 0 || id >= r.N() {
					t.Fatalf("%s: ModuleNode(%d,%d) = %d out of [0,%d)", name, mod, off, id, r.N())
				}
				if seen[id] {
					t.Fatalf("%s: ModuleNode(%d,%d) = %d emitted twice", name, mod, off, id)
				}
				seen[id] = true
				if got := r.ModuleOfID(id); got != mod {
					t.Fatalf("%s: ModuleOfID(ModuleNode(%d,%d)) = %d", name, mod, off, got)
				}
			}
		}
	}
}
