package core

import (
	"fmt"
	"math"

	"repro/internal/perm"
)

// Schedule is a sequence of super-generator applications together with the
// arrangement trace it induces. Arrangements are permutations arr with
// arr[pos] = index of the super-symbol (by original position) currently at
// position pos; Arrs[0] is the identity and Arrs[j] holds after Moves[j-1].
//
// The parameter t of Theorem 4.1 is the length of a minimum schedule under
// which every super-symbol appears at the leftmost position at least once;
// t_S of Theorem 4.3 additionally requires reaching a prescribed final
// arrangement.
type Schedule struct {
	Moves []int
	Arrs  []perm.Perm
}

// T returns the number of super-generator applications in the schedule.
func (sc *Schedule) T() int { return len(sc.Moves) }

// FinalPositions returns d, where d[i] is the final position of the
// super-symbol originally at position i.
func (sc *Schedule) FinalPositions() []int {
	final := sc.Arrs[len(sc.Arrs)-1]
	d := make([]int, len(final))
	for pos, orig := range final {
		d[orig] = pos
	}
	return d
}

// FirstLeftmost returns, for each original super-symbol index, the schedule
// step (0 = before any move, j = after Moves[j-1]) at which it first occupies
// the leftmost position, or -1 if it never does.
func (sc *Schedule) FirstLeftmost() []int {
	l := len(sc.Arrs[0])
	first := make([]int, l)
	for i := range first {
		first[i] = -1
	}
	for step, arr := range sc.Arrs {
		if first[arr[0]] < 0 {
			first[arr[0]] = step
		}
	}
	return first
}

// coverState is a node of the (arrangement, coverage-bitmask) search space.
type coverState struct {
	arr  string
	mask uint32
}

// coverSearch runs BFS over (arrangement, coverage) states from the identity
// arrangement with only super-symbol 0 covered, using the block-level
// permutations of the super-generators as moves. It returns the distance and
// parent maps for schedule reconstruction.
func (s *SuperIP) coverSearch() (map[coverState]int, map[coverState]struct {
	prev coverState
	move int
}, error) {
	if s.L > 12 {
		return nil, nil, fmt.Errorf("core: cover search infeasible for l = %d", s.L)
	}
	bps, err := s.BlockPerms()
	if err != nil {
		return nil, nil, err
	}
	start := coverState{arr: arrKey(perm.Identity(s.L)), mask: 1}
	dist := map[coverState]int{start: 0}
	parent := map[coverState]struct {
		prev coverState
		move int
	}{}
	frontier := []coverState{start}
	for len(frontier) > 0 {
		var next []coverState
		for _, st := range frontier {
			arr := []byte(st.arr)
			for mi, bp := range bps {
				na := make([]byte, len(arr))
				for i := range na {
					na[i] = arr[bp[i]]
				}
				ns := coverState{arr: string(na), mask: st.mask | 1<<uint(na[0])}
				if _, ok := dist[ns]; !ok {
					dist[ns] = dist[st] + 1
					parent[ns] = struct {
						prev coverState
						move int
					}{st, mi}
					next = append(next, ns)
				}
			}
		}
		frontier = next
	}
	return dist, parent, nil
}

// reconstruct builds a Schedule ending at goal from the parent map.
func (s *SuperIP) reconstruct(goal coverState, parent map[coverState]struct {
	prev coverState
	move int
}) *Schedule {
	var moves []int
	st := goal
	for {
		p, ok := parent[st]
		if !ok {
			break
		}
		moves = append(moves, p.move)
		st = p.prev
	}
	for i, j := 0, len(moves)-1; i < j; i, j = i+1, j-1 {
		moves[i], moves[j] = moves[j], moves[i]
	}
	bps, _ := s.BlockPerms()
	arrs := make([]perm.Perm, 0, len(moves)+1)
	arr := perm.Identity(s.L)
	arrs = append(arrs, arr.Clone())
	for _, mi := range moves {
		na := make(perm.Perm, s.L)
		bp := bps[mi]
		for i := range na {
			na[i] = arr[bp[i]]
		}
		arr = na
		arrs = append(arrs, arr.Clone())
	}
	return &Schedule{Moves: moves, Arrs: arrs}
}

// MinCoverSchedule computes a minimum-length schedule bringing every
// super-symbol to the leftmost position at least once — the parameter t of
// Theorem 4.1.
func (s *SuperIP) MinCoverSchedule() (*Schedule, error) {
	dist, parent, err := s.coverSearch()
	if err != nil {
		return nil, err
	}
	full := uint32(1)<<uint(s.L) - 1
	// Tie-break equal-length schedules on the final arrangement key: dist is
	// a map, and iteration order must not leak into the chosen schedule —
	// routers built from the same specification have to route identically.
	best, found := math.MaxInt, coverState{}
	for st, d := range dist {
		if st.mask != full {
			continue
		}
		if d < best || (d == best && st.arr < found.arr) {
			best, found = d, st
		}
	}
	if best == math.MaxInt {
		return nil, fmt.Errorf("core: no schedule covers all super-symbols")
	}
	return s.reconstruct(found, parent), nil
}

// CoverScheduleTo computes a minimum-length schedule that brings every
// super-symbol to the leftmost position at least once AND ends with the
// super-symbols in the prescribed arrangement (target[pos] = original index
// of the super-symbol that must end at pos). Used for routing in symmetric
// super-IP graphs (Theorem 4.3).
func (s *SuperIP) CoverScheduleTo(target perm.Perm) (*Schedule, error) {
	if len(target) != s.L {
		return nil, fmt.Errorf("core: target arrangement has %d entries, want %d", len(target), s.L)
	}
	dist, parent, err := s.coverSearch()
	if err != nil {
		return nil, err
	}
	full := uint32(1)<<uint(s.L) - 1
	goal := coverState{arr: arrKey(target), mask: full}
	if _, ok := dist[goal]; !ok {
		return nil, fmt.Errorf("core: arrangement %v unreachable with full coverage", target)
	}
	return s.reconstruct(goal, parent), nil
}

// TSym computes t_S of Theorem 4.3: the minimum schedule length sufficient
// for every reachable final arrangement, i.e. the maximum over reachable
// arrangements tau of the minimum length of a covering schedule ending at
// tau.
func (s *SuperIP) TSym() (int, error) {
	dist, _, err := s.coverSearch()
	if err != nil {
		return 0, err
	}
	full := uint32(1)<<uint(s.L) - 1
	// An arrangement is "possible" if reachable at all; full coverage is
	// always eventually achievable from it (verified here).
	reachableArr := map[string]bool{}
	coveredArr := map[string]int{}
	for st, d := range dist {
		reachableArr[st.arr] = true
		if st.mask == full {
			if old, ok := coveredArr[st.arr]; !ok || d < old {
				coveredArr[st.arr] = d
			}
		}
	}
	tS := 0
	for arr := range reachableArr {
		d, ok := coveredArr[arr]
		if !ok {
			return 0, fmt.Errorf("core: arrangement %q reachable but never with full coverage", arr)
		}
		if d > tS {
			tS = d
		}
	}
	return tS, nil
}
