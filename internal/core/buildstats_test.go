package core

import (
	"testing"
)

// TestBuildObserverParity pins the guarantee LevelStats documents: observing
// a build never perturbs it. For every family in the parity grid, the graph
// built with an Observe callback — at one worker (where the callback alone
// routes the build through the parallel enumerator) and at several — is
// byte-identical to the sequential oracle.
func TestBuildObserverParity(t *testing.T) {
	for name, ip := range parityCases() {
		gSeq, ixSeq, err := ip.BuildSeq(BuildOptions{})
		if err != nil {
			t.Fatalf("%s: BuildSeq: %v", name, err)
		}
		for _, w := range []int{1, 2, 4} {
			levels := 0
			gObs, ixObs, err := ip.Build(BuildOptions{Workers: w, Observe: func(LevelStats) { levels++ }})
			if err != nil {
				t.Fatalf("%s workers=%d observed: %v", name, w, err)
			}
			assertIdentical(t, name, gSeq, ixSeq, gObs, ixObs)
			if levels == 0 {
				t.Fatalf("%s workers=%d: observer never fired", name, w)
			}
		}
	}
}

// TestBuildObserverInvariants checks the structural laws every LevelStats
// stream must satisfy, independent of timing: level numbers are consecutive,
// each level's frontier is the previous level's discoveries (level 0 expands
// the seed alone), ArcSlots is frontier x generators, TotalNodes is the
// running sum of discoveries plus the seed and ends at the built size, and
// the occupancy/arena fields are monotone.
func TestBuildObserverInvariants(t *testing.T) {
	for name, ip := range parityCases() {
		var stats []LevelStats
		_, ix, err := ip.Build(BuildOptions{Workers: 2, Observe: func(ls LevelStats) { stats = append(stats, ls) }})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(stats) == 0 {
			t.Fatalf("%s: no levels observed", name)
		}
		G := len(ip.Gens)
		total := 1 // the seed
		for i, ls := range stats {
			if ls.Level != i {
				t.Fatalf("%s: stats[%d].Level = %d", name, i, ls.Level)
			}
			wantFrontier := 1
			if i > 0 {
				wantFrontier = stats[i-1].NewNodes
			}
			if ls.FrontierNodes != wantFrontier {
				t.Fatalf("%s level %d: frontier %d, want previous level's %d new nodes",
					name, i, ls.FrontierNodes, wantFrontier)
			}
			if ls.ArcSlots != ls.FrontierNodes*G {
				t.Fatalf("%s level %d: ArcSlots %d, want frontier %d x %d generators",
					name, i, ls.ArcSlots, ls.FrontierNodes, G)
			}
			total += ls.NewNodes
			if ls.TotalNodes != total {
				t.Fatalf("%s level %d: TotalNodes %d, want running total %d", name, i, ls.TotalNodes, total)
			}
			if ls.Expand < 0 || ls.Dedup < 0 || ls.Assign < 0 || ls.Publish < 0 {
				t.Fatalf("%s level %d: negative phase time: %+v", name, i, ls)
			}
			if ls.Shards < 1 || ls.MaxShardLoad < 1 {
				t.Fatalf("%s level %d: implausible shard stats: %d shards, max load %d",
					name, i, ls.Shards, ls.MaxShardLoad)
			}
			if ls.MaxShardLoad > ls.TotalNodes {
				t.Fatalf("%s level %d: MaxShardLoad %d exceeds TotalNodes %d",
					name, i, ls.MaxShardLoad, ls.TotalNodes)
			}
			if i > 0 {
				prev := stats[i-1]
				if ls.CandidateArenaBytes < prev.CandidateArenaBytes || ls.InternArenaBytes < prev.InternArenaBytes {
					t.Fatalf("%s level %d: arena accounting shrank: %+v after %+v", name, i, ls, prev)
				}
			}
		}
		last := stats[len(stats)-1]
		if last.NewNodes != 0 {
			t.Fatalf("%s: final level discovered %d nodes; enumeration should end on an empty frontier", name, last.NewNodes)
		}
		if last.TotalNodes != ix.N() {
			t.Fatalf("%s: final TotalNodes %d, built graph has %d", name, last.TotalNodes, ix.N())
		}
	}
}

// TestBuildObserverSequentialUntouched: without an observer, Workers == 1
// still takes the sequential path (DefaultWorkers pinned to 1 here), so the
// observer dispatch did not tax plain builds.
func TestBuildObserverSequentialUntouched(t *testing.T) {
	ip := parityCases()["paper-example"]
	g1, ix1, err := ip.Build(BuildOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	gSeq, ixSeq, err := ip.BuildSeq(BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, "paper-example", gSeq, ixSeq, g1, ix1)
}
