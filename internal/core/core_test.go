package core

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/perm"
	"repro/internal/symbols"
)

// nucleusQ builds the hypercube Q_n as a nucleus: n pairs of symbols "12",
// with one pair-swapping generator per dimension. Its IP graph has 2^n
// states (each pair in order "12" or swapped "21") and diameter n.
func nucleusQ(n int) Nucleus {
	seed := symbols.RepeatedSeed(n, symbols.Label{1, 2})
	gens := make([]perm.Perm, n)
	names := make([]string, n)
	for i := 0; i < n; i++ {
		gens[i] = perm.Transposition(2*n, 2*i, 2*i+1)
		names[i] = "dim" + string(rune('0'+i))
	}
	return Nucleus{Name: "Q" + string(rune('0'+n)), Seed: seed, Gens: gens, GenNames: names}
}

// hsn builds the hierarchical swapped network HSN(l;G) of Section 3.2:
// transposition super-generators T(2,m) ... T(l,m).
func hsn(l int, nuc Nucleus, symmetric bool) *SuperIP {
	m := nuc.M()
	gens := make([]perm.Perm, 0, l-1)
	for i := 1; i < l; i++ {
		gens = append(gens, perm.BlockTransposition(l, m, 0, i))
	}
	return &SuperIP{Name: "HSN", L: l, Nucleus: nuc, SuperGens: gens, Symmetric: symmetric}
}

// ringCN builds the ring cyclic-shift network of Section 3.3 with
// super-generators {L, R}.
func ringCN(l int, nuc Nucleus, symmetric bool) *SuperIP {
	m := nuc.M()
	return &SuperIP{
		Name:      "ring-CN",
		L:         l,
		Nucleus:   nuc,
		SuperGens: []perm.Perm{perm.BlockLeftShift(l, m, 1), perm.BlockRightShift(l, m, 1)},
		Symmetric: symmetric,
	}
}

// superFlip builds the super-flip network of Section 3.4 with flip
// super-generators F(2,m) ... F(l,m).
func superFlip(l int, nuc Nucleus, symmetric bool) *SuperIP {
	m := nuc.M()
	gens := make([]perm.Perm, 0, l-1)
	for i := 2; i <= l; i++ {
		gens = append(gens, perm.BlockFlip(l, m, i))
	}
	return &SuperIP{Name: "SFN", L: l, Nucleus: nuc, SuperGens: gens, Symmetric: symmetric}
}

func TestPaperIPGraphExample(t *testing.T) {
	// Section 2: seed Y = 123123 with generators (1,2), (1,3) and the
	// half-label rotation pi6 yields an IP graph with 36 distinct nodes.
	ip := &IPGraph{
		Name: "paper-example",
		Seed: symbols.Label{1, 2, 3, 1, 2, 3},
		Gens: []perm.Perm{
			perm.Transposition(6, 0, 1),
			perm.Transposition(6, 0, 2),
			perm.BlockLeftShift(2, 3, 1),
		},
	}
	// Check the three neighbors of the seed quoted in the paper:
	// Y pi1 = 213123, Y pi2 = 321123, Y pi6 = 123123 (rotation of the
	// repeated seed is the seed itself... the paper's Y = y1..y6 = 123123,
	// pi6(Y) = y4 y5 y6 y1 y2 y3 = 123123).
	if got := ip.Gens[0].Permuted(ip.Seed); string(got) != string([]byte{2, 1, 3, 1, 2, 3}) {
		t.Fatalf("pi1(Y) = %v", got)
	}
	if got := ip.Gens[1].Permuted(ip.Seed); string(got) != string([]byte{3, 2, 1, 1, 2, 3}) {
		t.Fatalf("pi2(Y) = %v", got)
	}
	g, ix, err := ip.Build(BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ix.N() != 36 {
		t.Fatalf("paper example has %d nodes, want 36", ix.N())
	}
	if !g.Symmetrized().IsConnected() {
		t.Fatal("IP graphs are connected by construction")
	}
}

func TestPaperStarGraphAsIPGraph(t *testing.T) {
	// A 6-star: Cayley graph on 6 distinct symbols with generators (1,i).
	var gens []perm.Perm
	for i := 1; i < 6; i++ {
		gens = append(gens, perm.Transposition(6, 0, i))
	}
	ip := Cayley("S6", gens, nil)
	if !ip.IsCayley() {
		t.Fatal("star graph must satisfy the Cayley condition")
	}
	g, ix, err := ip.Build(BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ix.N() != 720 {
		t.Fatalf("6-star has %d nodes, want 720 = 6!", ix.N())
	}
	if !g.IsRegular() || g.MaxDegree() != 5 {
		t.Fatalf("6-star degree = %d, want 5", g.MaxDegree())
	}
	st := g.AllPairs()
	if st.Diameter != 7 { // floor(3(n-1)/2) = 7 for n = 6
		t.Fatalf("6-star diameter = %d, want 7", st.Diameter)
	}
	if ok, w := g.UniformDistanceProfiles(); !ok {
		t.Fatalf("Cayley graph not vertex-symmetric-looking, witness %v", w)
	}
}

func TestPaperHCNExample(t *testing.T) {
	// Section 2: HCN(2,2) without diameter links is HSN(2;Q2): l = 2 blocks
	// over the Q2 nucleus (labels of 4n = 8 symbols for n = 2 in our pair
	// encoding), generators = nucleus dimensions plus the half-swap T(2,2n).
	s := hsn(2, nucleusQ(2), false)
	g, ix, err := s.Build(BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ix.N() != 16 {
		t.Fatalf("HSN(2;Q2) = HCN(2,2) w/o diameter links has %d nodes, want 16", ix.N())
	}
	// Degree is bounded by the generator count (Theorem 3.1). Nodes whose
	// two halves are equal have a self-loop swap (these are exactly the
	// nodes where the original HCN attaches its diameter links), so they
	// have degree 2; all others have degree 3.
	if g.MaxDegree() != 3 || g.MinDegree() != 2 {
		t.Fatalf("HCN(2,2) degrees = %d..%d, want 2..3", g.MinDegree(), g.MaxDegree())
	}
	if h := g.DegreeHistogram(); h[2] != 4 || h[3] != 12 {
		t.Fatalf("degree histogram = %v, want 4 nodes of degree 2 and 12 of degree 3", h)
	}
	st := g.AllPairs()
	want, err := s.TheoreticalDiameter()
	if err != nil {
		t.Fatal(err)
	}
	if int(st.Diameter) != want {
		t.Fatalf("HSN(2;Q2) diameter = %d, Theorem 4.1 predicts %d", st.Diameter, want)
	}
}

func TestSeedChoiceDoesNotChangeConnectivity(t *testing.T) {
	// Section 2: using any node's label as seed generates the same graph,
	// and using a different symbol alphabet with the same repetition pattern
	// gives a graph with identical connectivity. Build HCN(2,2) from seeds
	// "34 34" (paper) and "12 12" and check the BFS-order bijection is an
	// isomorphism.
	gens := []perm.Perm{
		perm.Transposition(8, 0, 1),
		perm.Transposition(8, 2, 3),
		perm.BlockTransposition(2, 4, 0, 1),
	}
	mk := func(seed symbols.Label) *IPGraph {
		return &IPGraph{Name: "X", Seed: seed, Gens: gens}
	}
	g1, ix1, err := mk(symbols.RepeatedSeed(4, symbols.Label{3, 4})).Build(BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	g2, ix2, err := mk(symbols.RepeatedSeed(4, symbols.Label{1, 2})).Build(BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ix1.N() != ix2.N() || ix1.N() != 16 {
		t.Fatalf("sizes: %d vs %d, want 16", ix1.N(), ix2.N())
	}
	// Deterministic BFS with the same generator order explores isomorphic
	// graphs in lockstep, so the identity mapping is an isomorphism.
	mapping := make([]int32, g1.N())
	for i := range mapping {
		mapping[i] = int32(i)
	}
	if err := graph.VerifyIsomorphism(g1, g2, mapping); err != nil {
		t.Fatal(err)
	}
	// Re-seeding from another node's label regenerates the same node set.
	alt := mk(ix1.Label(5))
	_, ixAlt, err := alt.Build(BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ixAlt.N() != ix1.N() {
		t.Fatalf("re-seeded size %d != %d", ixAlt.N(), ix1.N())
	}
	for i := 0; i < ix1.N(); i++ {
		if ixAlt.ID(ix1.Label(int32(i))) < 0 {
			t.Fatalf("node %v missing after re-seeding", ix1.Label(int32(i)))
		}
	}
}

func TestDeBruijnAsIPGraph(t *testing.T) {
	// Section 2: the n-dimensional (binary) de Bruijn graph is the IP graph
	// with a 2n-symbol seed of n "12" pairs and two generators: rotate the
	// label left by one pair, or rotate and swap the last pair. The states
	// encode binary strings (pair "12" = 0, "21" = 1); rotation appends the
	// dropped bit, rotation+swap appends its complement, so together they
	// realize both de Bruijn successors.
	for n := 2; n <= 8; n++ {
		rot := perm.BlockLeftShift(n, 2, 1)
		swapLast := perm.Transposition(2*n, 2*n-2, 2*n-1)
		ip := &IPGraph{
			Name: "deBruijn",
			Seed: symbols.RepeatedSeed(n, symbols.Label{1, 2}),
			Gens: []perm.Perm{rot, perm.Compose(rot, swapLast)},
		}
		g, ix, err := ip.Build(BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if ix.N() != 1<<n {
			t.Fatalf("de Bruijn n=%d has %d nodes, want %d", n, ix.N(), 1<<n)
		}
		if !g.Directed {
			t.Fatal("de Bruijn generators are not inverse-closed; graph must be directed")
		}
		if !g.IsConnected() {
			t.Fatalf("de Bruijn n=%d not strongly connected", n)
		}
		st := g.AllPairs()
		if int(st.Diameter) != n {
			t.Fatalf("de Bruijn n=%d diameter = %d, want %d", n, st.Diameter, n)
		}
	}
}

func TestHypercubeAsIPGraph(t *testing.T) {
	for n := 1; n <= 9; n++ {
		nuc := nucleusQ(n)
		g, ix, err := nuc.IPGraph().Build(BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if ix.N() != 1<<n {
			t.Fatalf("Q%d as IP graph has %d nodes", n, ix.N())
		}
		st := g.AllPairs()
		if int(st.Diameter) != n {
			t.Fatalf("Q%d diameter = %d", n, st.Diameter)
		}
		if g.MaxDegree() != n || !g.IsRegular() {
			t.Fatalf("Q%d degree = %d", n, g.MaxDegree())
		}
	}
}

func TestValidateErrors(t *testing.T) {
	if err := (&IPGraph{}).Validate(); err == nil {
		t.Fatal("empty IP graph must fail validation")
	}
	ip := &IPGraph{Seed: symbols.Label{1, 2}}
	if err := ip.Validate(); err == nil {
		t.Fatal("no generators must fail")
	}
	ip.Gens = []perm.Perm{perm.Identity(3)}
	if err := ip.Validate(); err == nil {
		t.Fatal("size mismatch must fail")
	}
	ip.Gens = []perm.Perm{{0, 0}}
	if err := ip.Validate(); err == nil {
		t.Fatal("invalid permutation must fail")
	}
	ip.Gens = []perm.Perm{perm.Identity(2)}
	ip.GenNames = []string{"a", "b"}
	if err := ip.Validate(); err == nil {
		t.Fatal("name-count mismatch must fail")
	}
}

func TestBuildLimit(t *testing.T) {
	var gens []perm.Perm
	for i := 1; i < 7; i++ {
		gens = append(gens, perm.Transposition(7, 0, i))
	}
	ip := Cayley("S7", gens, nil)
	_, _, err := ip.Build(BuildOptions{Limit: 100})
	if err == nil {
		t.Fatal("expected limit error for 7! nodes")
	}
	if !strings.Contains(err.Error(), "S7") || !strings.Contains(err.Error(), "attempted") {
		t.Fatalf("limit error %q must name the family and the attempted count", err)
	}
}

func TestGenName(t *testing.T) {
	ip := &IPGraph{
		Seed:     symbols.Label{1, 2},
		Gens:     []perm.Perm{perm.Transposition(2, 0, 1)},
		GenNames: []string{"swap"},
	}
	if ip.GenName(0) != "swap" {
		t.Fatalf("GenName = %q", ip.GenName(0))
	}
	ip.GenNames = nil
	if ip.GenName(0) != "(1 2)" {
		t.Fatalf("default GenName = %q", ip.GenName(0))
	}
}

func TestAttachLabels(t *testing.T) {
	s := hsn(2, nucleusQ(2), false)
	g, _, err := s.Build(BuildOptions{AttachLabels: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.Labels == nil || g.Labels[0] != "1212 1212" {
		t.Fatalf("labels = %v", g.Labels[:1])
	}
}

func TestCertifyVertexTransitiveSymmetricVariants(t *testing.T) {
	// Section 3.5: symmetric super-IP graphs are Cayley graphs, hence
	// vertex-symmetric. Certify it exactly: one verified automorphism per
	// node, constructed by symbol substitution.
	for _, s := range []*SuperIP{
		hsn(2, nucleusQ(2), true),
		hsn(3, nucleusQ(2), true),
		ringCN(3, nucleusQ(2), true),
		superFlip(2, nucleusQ(2), true),
	} {
		g, ix, err := s.Build(BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if err := CertifyVertexTransitive(g, ix); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
	}
	// The star graph too (a plain Cayley graph).
	var gens []perm.Perm
	for i := 1; i < 5; i++ {
		gens = append(gens, perm.Transposition(5, 0, i))
	}
	g, ix, err := Cayley("S5", gens, nil).Build(BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := CertifyVertexTransitive(g, ix); err != nil {
		t.Fatal(err)
	}
}

func TestCertifyVertexTransitiveRejectsPlainSuperIP(t *testing.T) {
	// Plain HSN(2;Q2) has repeated symbols (and is in fact irregular), so
	// certification must fail.
	s := hsn(2, nucleusQ(2), false)
	g, ix, err := s.Build(BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := CertifyVertexTransitive(g, ix); err == nil {
		t.Fatal("plain super-IP graph must not certify as Cayley-transitive")
	}
}

func TestCayleyAutomorphismIdentity(t *testing.T) {
	s := hsn(2, nucleusQ(2), true)
	_, ix, err := s.Build(BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mapping, err := CayleyAutomorphism(ix, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	for u, v := range mapping {
		if int32(u) != v {
			t.Fatalf("self-automorphism is not the identity at %d", u)
		}
	}
}
