package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// ringGraph builds an n-cycle.
func ringGraph(n int) *Graph {
	b := NewBuilder(n, false)
	for i := 0; i < n; i++ {
		b.AddEdge(int32(i), int32((i+1)%n))
	}
	return b.Build()
}

// completeGraph builds K_n.
func completeGraph(n int) *Graph {
	b := NewBuilder(n, false)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(int32(i), int32(j))
		}
	}
	return b.Build()
}

// hypercubeGraph builds Q_d directly by bit flips.
func hypercubeGraph(d int) *Graph {
	n := 1 << d
	b := NewBuilder(n, false)
	for u := 0; u < n; u++ {
		for bit := 0; bit < d; bit++ {
			v := u ^ (1 << bit)
			if v > u {
				b.AddEdge(int32(u), int32(v))
			}
		}
	}
	return b.Build()
}

func TestBuilderDedupAndSelfLoops(t *testing.T) {
	b := NewBuilder(3, false)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // duplicate in reverse
	b.AddEdge(0, 1) // exact duplicate
	b.AddEdge(2, 2) // self loop, dropped
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	if g.Degree(0) != 1 || g.Degree(1) != 1 || g.Degree(2) != 0 {
		t.Fatalf("degrees = %d %d %d", g.Degree(0), g.Degree(1), g.Degree(2))
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || g.HasEdge(0, 2) {
		t.Fatal("HasEdge inconsistent")
	}
}

func TestRingStats(t *testing.T) {
	for _, n := range []int{3, 4, 7, 10, 33} {
		g := ringGraph(n)
		s := g.AllPairs()
		if !s.Connected {
			t.Fatalf("ring %d disconnected", n)
		}
		if int(s.Diameter) != n/2 {
			t.Fatalf("ring %d diameter = %d, want %d", n, s.Diameter, n/2)
		}
		if s.Radius != s.Diameter {
			t.Fatalf("ring radius %d != diameter %d", s.Radius, s.Diameter)
		}
		// Average distance of a cycle: (n+1)/4 for odd n, n^2/(4(n-1)) for even.
		var want float64
		if n%2 == 1 {
			want = float64(n+1) / 4
		} else {
			want = float64(n*n) / float64(4*(n-1))
		}
		if diff := s.AvgDistance - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("ring %d avg = %v, want %v", n, s.AvgDistance, want)
		}
	}
}

func TestCompleteStats(t *testing.T) {
	g := completeGraph(9)
	s := g.AllPairs()
	if s.Diameter != 1 || s.AvgDistance != 1 || !s.Connected {
		t.Fatalf("K9 stats = %+v", s)
	}
	if !g.IsRegular() || g.MaxDegree() != 8 {
		t.Fatal("K9 degree wrong")
	}
}

func TestHypercubeStats(t *testing.T) {
	for d := 1; d <= 8; d++ {
		g := hypercubeGraph(d)
		s := g.AllPairs()
		if int(s.Diameter) != d {
			t.Fatalf("Q%d diameter = %d", d, s.Diameter)
		}
		// Average distance of Q_d over ordered distinct pairs:
		// sum of Hamming distances = d * 2^(d-1) * 2^d ... simpler:
		// E[dist over all ordered pairs incl. self] = d/2, so
		// avg over distinct = (d/2) * N/(N-1).
		n := float64(int(1) << d)
		want := float64(d) / 2 * n / (n - 1)
		if diff := s.AvgDistance - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("Q%d avg = %v, want %v", d, s.AvgDistance, want)
		}
	}
}

func TestDisconnected(t *testing.T) {
	b := NewBuilder(4, false)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g := b.Build()
	if g.IsConnected() {
		t.Fatal("disconnected graph reported connected")
	}
	s := g.AllPairs()
	if s.Connected {
		t.Fatal("stats reported connected")
	}
	dist := g.BFS(0)
	if dist[2] != Unreachable || dist[1] != 1 {
		t.Fatalf("BFS dist = %v", dist)
	}
}

func TestDirectedStrongConnectivity(t *testing.T) {
	// A directed 3-cycle is strongly connected; a directed path is not.
	b := NewBuilder(3, true)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	if !b.Build().IsConnected() {
		t.Fatal("directed cycle should be strongly connected")
	}
	b2 := NewBuilder(3, true)
	b2.AddEdge(0, 1)
	b2.AddEdge(1, 2)
	if b2.Build().IsConnected() {
		t.Fatal("directed path should not be strongly connected")
	}
}

func TestSymmetrized(t *testing.T) {
	b := NewBuilder(3, true)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.Build()
	u := g.Symmetrized()
	if u.Directed {
		t.Fatal("Symmetrized result must be undirected")
	}
	if !u.HasEdge(1, 0) || !u.HasEdge(2, 1) {
		t.Fatal("missing reverse arcs")
	}
	und := ringGraph(4)
	if und.Symmetrized() != und {
		t.Fatal("Symmetrized of undirected graph should be identity")
	}
}

func TestZeroOneBFSMatchesBFSWithUnitWeights(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(40)
		b := NewBuilder(n, false)
		for i := 0; i < 3*n; i++ {
			b.AddEdge(int32(r.Intn(n)), int32(r.Intn(n)))
		}
		g := b.Build()
		src := int32(r.Intn(n))
		unit := g.ZeroOneBFS(src, func(u, v int32) int32 { return 1 })
		plain := g.BFS(src)
		for i := range unit {
			if unit[i] != plain[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroOneBFSClusters(t *testing.T) {
	// Two triangles (clusters 0 and 1) joined by one edge: intra-cluster
	// hops are free, the bridge costs 1.
	b := NewBuilder(6, false)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	b.AddEdge(5, 3)
	b.AddEdge(2, 3)
	g := b.Build()
	cluster := func(u int32) int32 { return u / 3 }
	w := func(u, v int32) int32 {
		if cluster(u) == cluster(v) {
			return 0
		}
		return 1
	}
	dist := g.ZeroOneBFS(0, w)
	for i := 0; i < 3; i++ {
		if dist[i] != 0 {
			t.Fatalf("dist[%d] = %d, want 0", i, dist[i])
		}
	}
	for i := 3; i < 6; i++ {
		if dist[i] != 1 {
			t.Fatalf("dist[%d] = %d, want 1", i, dist[i])
		}
	}
	s := g.AllPairsWeighted(w)
	if s.Diameter != 1 {
		t.Fatalf("weighted diameter = %d, want 1", s.Diameter)
	}
	// 12 ordered intra-pairs at 0, 18 ordered inter-pairs at 1 => avg 0.6.
	if s.AvgDistance != 0.6 {
		t.Fatalf("weighted avg = %v, want 0.6", s.AvgDistance)
	}
}

func TestPairStatsSampling(t *testing.T) {
	g := hypercubeGraph(6)
	full := g.AllPairs()
	sampled := g.PairStats([]int32{0})
	// Q6 is vertex-transitive: one source gives the exact stats.
	if sampled.Diameter != full.Diameter {
		t.Fatalf("sampled diameter %d != full %d", sampled.Diameter, full.Diameter)
	}
	if diff := sampled.AvgDistance - full.AvgDistance; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("sampled avg %v != full %v", sampled.AvgDistance, full.AvgDistance)
	}
}

func TestVerifyIsomorphism(t *testing.T) {
	g := ringGraph(5)
	h := ringGraph(5)
	// Rotation is an isomorphism of the cycle.
	mapping := make([]int32, 5)
	for i := range mapping {
		mapping[i] = int32((i + 2) % 5)
	}
	if err := VerifyIsomorphism(g, h, mapping); err != nil {
		t.Fatal(err)
	}
	// A transposition of two non-adjacent nodes is not.
	bad := []int32{0, 3, 2, 1, 4}
	if err := VerifyIsomorphism(g, h, bad); err == nil {
		t.Fatal("expected isomorphism failure")
	}
	// Non-bijective mapping.
	if err := VerifyIsomorphism(g, h, []int32{0, 0, 1, 2, 3}); err == nil {
		t.Fatal("expected injectivity failure")
	}
	if err := VerifyIsomorphism(g, completeGraph(5), Identity5()); err == nil {
		t.Fatal("expected arc-count failure")
	}
}

func Identity5() []int32 { return []int32{0, 1, 2, 3, 4} }

func TestDistanceProfiles(t *testing.T) {
	if ok, _ := hypercubeGraph(4).UniformDistanceProfiles(); !ok {
		t.Fatal("hypercube must have uniform distance profiles")
	}
	// A path graph does not.
	b := NewBuilder(4, false)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	if ok, w := b.Build().UniformDistanceProfiles(); ok {
		t.Fatal("path graph cannot be distance-uniform")
	} else if w[0] == w[1] {
		t.Fatal("witness must name two distinct nodes")
	}
}

func TestDegreeHistogram(t *testing.T) {
	b := NewBuilder(4, false)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	h := b.Build().DegreeHistogram()
	if h[1] != 2 || h[2] != 2 {
		t.Fatalf("histogram = %v", h)
	}
	ds := b.Build().SortedDegrees()
	if len(ds) != 4 || ds[0] != 1 || ds[3] != 2 {
		t.Fatalf("sorted degrees = %v", ds)
	}
}

func TestQuotient(t *testing.T) {
	// Contracting each pair {2i, 2i+1} of a 6-cycle yields a triangle.
	g := ringGraph(6)
	q := Quotient(g, 3, func(u int32) int32 { return u / 2 })
	if q.N() != 3 || q.NumEdges() != 3 {
		t.Fatalf("quotient of C6 by pairs: n=%d m=%d", q.N(), q.NumEdges())
	}
	s := q.AllPairs()
	if s.Diameter != 1 {
		t.Fatalf("triangle diameter = %d", s.Diameter)
	}
}

func TestDOT(t *testing.T) {
	b := NewBuilder(2, false)
	b.SetLabel(0, "a")
	b.SetLabel(1, "b")
	b.AddEdge(0, 1)
	dot := b.Build().DOT("g")
	for _, want := range []string{"graph g {", "0 -- 1;", `label="a"`} {
		if !containsStr(dot, want) {
			t.Fatalf("DOT missing %q in:\n%s", want, dot)
		}
	}
	bd := NewBuilder(2, true)
	bd.AddEdge(0, 1)
	dot = bd.Build().DOT("d")
	if !containsStr(dot, "digraph d {") || !containsStr(dot, "0 -> 1;") {
		t.Fatalf("directed DOT wrong:\n%s", dot)
	}
}

func containsStr(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestEccentricity(t *testing.T) {
	g := ringGraph(8)
	ecc, ok := g.Eccentricity(0)
	if !ok || ecc != 4 {
		t.Fatalf("ecc = %d ok=%v", ecc, ok)
	}
}

func TestEdgeRangePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range edge")
		}
	}()
	NewBuilder(2, false).AddEdge(0, 5)
}

func BenchmarkAllPairsQ10(b *testing.B) {
	g := hypercubeGraph(10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.AllPairs()
	}
}

func BenchmarkZeroOneBFS(b *testing.B) {
	g := hypercubeGraph(10)
	w := func(u, v int32) int32 {
		if u>>6 == v>>6 {
			return 0
		}
		return 1
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.ZeroOneBFS(0, w)
	}
}

func TestBFSTriangleInequalityProperty(t *testing.T) {
	// d(u,w) <= d(u,v) + d(v,w) for random connected graphs and random
	// triples — a sanity property of the BFS machinery.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(25)
		b := NewBuilder(n, false)
		for v := 1; v < n; v++ {
			b.AddEdge(int32(r.Intn(v)), int32(v)) // spanning tree
		}
		for e := 0; e < n; e++ {
			b.AddEdge(int32(r.Intn(n)), int32(r.Intn(n)))
		}
		g := b.Build()
		u := int32(r.Intn(n))
		v := int32(r.Intn(n))
		w := int32(r.Intn(n))
		du := g.BFS(u)
		dv := g.BFS(v)
		return du[w] <= du[v]+dv[w] && du[v] == dv[u]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeList(t *testing.T) {
	// Undirected: each edge once, u < v, sorted, deduplicated.
	b := NewBuilder(4, false)
	b.AddEdge(0, 1)
	b.AddEdge(2, 1)
	b.AddEdge(3, 0)
	b.AddEdge(1, 0) // duplicate
	g := b.Build()
	want := [][2]int32{{0, 1}, {0, 3}, {1, 2}}
	got := g.EdgeList()
	if len(got) != len(want) {
		t.Fatalf("EdgeList = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("EdgeList[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if len(got) != g.NumEdges() {
		t.Fatalf("EdgeList length %d != NumEdges %d", len(got), g.NumEdges())
	}
	// Directed: every arc, including antiparallel pairs.
	d := NewBuilder(3, true)
	d.AddEdge(0, 1)
	d.AddEdge(1, 0)
	d.AddEdge(1, 2)
	dg := d.Build()
	arcs := dg.EdgeList()
	if len(arcs) != 3 {
		t.Fatalf("directed EdgeList = %v", arcs)
	}
	for _, a := range arcs {
		if !dg.HasEdge(a[0], a[1]) {
			t.Fatalf("listed arc %v missing", a)
		}
	}
}
