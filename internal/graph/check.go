package graph

import (
	"fmt"
	"sort"
	"strings"
)

// VerifyIsomorphism checks that mapping is a graph isomorphism from g to h:
// a bijection on nodes under which u->v is an arc of g iff
// mapping[u]->mapping[v] is an arc of h. This is the cheap, constructive
// check used throughout the test suite: constructions that are claimed
// equivalent (e.g. an IP-graph build of a network vs. its direct build) come
// with an explicit bijection, so no general graph-isomorphism search is
// needed.
func VerifyIsomorphism(g, h *Graph, mapping []int32) error {
	if g.N() != h.N() {
		return fmt.Errorf("graph: node counts differ: %d vs %d", g.N(), h.N())
	}
	if len(mapping) != g.N() {
		return fmt.Errorf("graph: mapping has %d entries for %d nodes", len(mapping), g.N())
	}
	seen := make([]bool, h.N())
	for u, mu := range mapping {
		if mu < 0 || int(mu) >= h.N() {
			return fmt.Errorf("graph: mapping[%d] = %d out of range", u, mu)
		}
		if seen[mu] {
			return fmt.Errorf("graph: mapping is not injective at image %d", mu)
		}
		seen[mu] = true
	}
	if g.M() != h.M() {
		return fmt.Errorf("graph: arc counts differ: %d vs %d", g.M(), h.M())
	}
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(int32(u)) {
			if !h.HasEdge(mapping[u], mapping[v]) {
				return fmt.Errorf("graph: arc %d->%d of g has no image %d->%d in h",
					u, v, mapping[u], mapping[v])
			}
		}
	}
	// Arc counts are equal and every g-arc maps to a distinct h-arc
	// (injectivity of the node mapping), so the arc mapping is onto too.
	return nil
}

// DistanceProfile returns, for node u, the sorted multiset of distances from
// u to all nodes, encoded as "count@dist" terms. In a vertex-transitive graph
// all nodes have identical profiles, so differing profiles certify
// non-transitivity; identical profiles are strong (though not conclusive)
// evidence of symmetry.
func (g *Graph) DistanceProfile(u int32) string {
	dist := g.BFS(u)
	counts := map[int32]int{}
	maxD := int32(0)
	for _, d := range dist {
		counts[d]++
		if d > maxD {
			maxD = d
		}
	}
	var parts []string
	for d := int32(0); d <= maxD; d++ {
		if c := counts[d]; c > 0 {
			parts = append(parts, fmt.Sprintf("%d@%d", c, d))
		}
	}
	if c := counts[Unreachable]; c > 0 {
		parts = append(parts, fmt.Sprintf("%d@inf", c))
	}
	return strings.Join(parts, " ")
}

// UniformDistanceProfiles reports whether every node has the same distance
// profile — a necessary condition for vertex-transitivity. The second return
// is a witness pair of nodes with differing profiles when the check fails.
func (g *Graph) UniformDistanceProfiles() (bool, [2]int32) {
	if g.n == 0 {
		return true, [2]int32{}
	}
	ref := g.DistanceProfile(0)
	for u := 1; u < g.n; u++ {
		if g.DistanceProfile(int32(u)) != ref {
			return false, [2]int32{0, int32(u)}
		}
	}
	return true, [2]int32{}
}

// DegreeHistogram returns a map from degree to node count.
func (g *Graph) DegreeHistogram() map[int]int {
	h := map[int]int{}
	for u := 0; u < g.n; u++ {
		h[g.Degree(int32(u))]++
	}
	return h
}

// DOT renders the graph in Graphviz DOT format. Undirected graphs emit each
// edge once.
func (g *Graph) DOT(name string) string {
	var b strings.Builder
	kind, arrow := "graph", " -- "
	if g.Directed {
		kind, arrow = "digraph", " -> "
	}
	fmt.Fprintf(&b, "%s %s {\n", kind, name)
	for u := 0; u < g.n; u++ {
		if g.Labels != nil && g.Labels[u] != "" {
			fmt.Fprintf(&b, "  %d [label=%q];\n", u, g.Labels[u])
		}
	}
	for u := 0; u < g.n; u++ {
		for _, v := range g.Neighbors(int32(u)) {
			if !g.Directed && v < int32(u) {
				continue
			}
			fmt.Fprintf(&b, "  %d%s%d;\n", u, arrow, v)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// SortedDegrees returns the degree sequence in non-decreasing order.
func (g *Graph) SortedDegrees() []int {
	ds := make([]int, g.n)
	for u := 0; u < g.n; u++ {
		ds[u] = g.Degree(int32(u))
	}
	sort.Ints(ds)
	return ds
}

// Quotient contracts nodes of g into classes given by classOf (values must
// cover 0..numClasses-1). The result has one node per class; two classes are
// adjacent iff some pair of members is adjacent in g. Self-loops and
// duplicate edges are removed. This implements the paper's quotient-network
// construction (e.g. QCN(l;Q7/Q3), obtained by merging each 3-cube of
// CN(l;Q7) into a node).
func Quotient(g *Graph, numClasses int, classOf func(u int32) int32) *Graph {
	b := NewBuilder(numClasses, g.Directed)
	for u := 0; u < g.N(); u++ {
		cu := classOf(int32(u))
		for _, v := range g.Neighbors(int32(u)) {
			cv := classOf(v)
			if cu != cv {
				b.AddArc(cu, cv)
			}
		}
	}
	return b.Build()
}
