package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteText serializes the graph in a simple line-oriented text format:
//
//	ipgraph 1 <n> <directed>
//	[label <u> <text>]...
//	<u>: <v1> <v2> ...
//
// One adjacency line per node with at least one out-neighbor. Undirected
// graphs list every arc (both directions), so ReadText reproduces the CSR
// content exactly.
func (g *Graph) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	dir := 0
	if g.Directed {
		dir = 1
	}
	if _, err := fmt.Fprintf(bw, "ipgraph 1 %d %d\n", g.n, dir); err != nil {
		return err
	}
	if g.Labels != nil {
		for u, lab := range g.Labels {
			if lab != "" {
				if _, err := fmt.Fprintf(bw, "label %d %s\n", u, lab); err != nil {
					return err
				}
			}
		}
	}
	for u := 0; u < g.n; u++ {
		adj := g.Neighbors(int32(u))
		if len(adj) == 0 {
			continue
		}
		if _, err := fmt.Fprintf(bw, "%d:", u); err != nil {
			return err
		}
		for _, v := range adj {
			if _, err := fmt.Fprintf(bw, " %d", v); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText parses the WriteText format.
func ReadText(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("graph: empty input")
	}
	var version, n, dir int
	if _, err := fmt.Sscanf(sc.Text(), "ipgraph %d %d %d", &version, &n, &dir); err != nil {
		return nil, fmt.Errorf("graph: bad header %q: %v", sc.Text(), err)
	}
	if version != 1 {
		return nil, fmt.Errorf("graph: unsupported version %d", version)
	}
	if n < 0 {
		return nil, fmt.Errorf("graph: negative node count")
	}
	b := NewBuilder(n, dir == 1)
	var labels []string
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "label ") {
			rest := line[len("label "):]
			sp := strings.IndexByte(rest, ' ')
			if sp < 0 {
				return nil, fmt.Errorf("graph: bad label line %q", line)
			}
			u, err := strconv.Atoi(rest[:sp])
			if err != nil || u < 0 || u >= n {
				return nil, fmt.Errorf("graph: bad label node in %q", line)
			}
			if labels == nil {
				labels = make([]string, n)
			}
			labels[u] = rest[sp+1:]
			continue
		}
		colon := strings.IndexByte(line, ':')
		if colon < 0 {
			return nil, fmt.Errorf("graph: bad adjacency line %q", line)
		}
		u, err := strconv.Atoi(line[:colon])
		if err != nil || u < 0 || u >= n {
			return nil, fmt.Errorf("graph: bad node id in %q", line)
		}
		for _, f := range strings.Fields(line[colon+1:]) {
			v, err := strconv.Atoi(f)
			if err != nil || v < 0 || v >= n {
				return nil, fmt.Errorf("graph: bad neighbor %q in %q", f, line)
			}
			b.AddArc(int32(u), int32(v))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	g := b.Build()
	g.Labels = labels
	if !g.Directed {
		// Sanity: the stored arcs of an undirected graph must be symmetric.
		for u := 0; u < g.N(); u++ {
			for _, v := range g.Neighbors(int32(u)) {
				if !g.HasEdge(v, int32(u)) {
					return nil, fmt.Errorf("graph: undirected input missing reverse arc %d->%d", v, u)
				}
			}
		}
	}
	return g, nil
}
