package graph

import (
	"math"
	"runtime"
	"sync"
)

// Unreachable is the distance value reported for unreachable nodes.
const Unreachable int32 = -1

// BFS computes single-source shortest-path distances (hop counts) from src.
// The returned slice has length g.N(); unreachable nodes hold Unreachable.
func (g *Graph) BFS(src int32) []int32 {
	dist := make([]int32, g.n)
	queue := make([]int32, 0, g.n)
	g.bfsInto(src, dist, queue)
	return dist
}

// bfsInto runs BFS using caller-provided buffers. dist must have length
// g.N(); queue must have capacity for g.N() entries.
func (g *Graph) bfsInto(src int32, dist []int32, queue []int32) []int32 {
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[src] = 0
	queue = queue[:0]
	queue = append(queue, src)
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		for _, v := range g.Neighbors(u) {
			if dist[v] == Unreachable {
				dist[v] = du + 1
				queue = append(queue, v)
			}
		}
	}
	return queue
}

// Eccentricity returns the maximum finite distance from src, and whether all
// nodes are reachable.
func (g *Graph) Eccentricity(src int32) (int32, bool) {
	dist := g.BFS(src)
	var ecc int32
	all := true
	for _, d := range dist {
		if d == Unreachable {
			all = false
			continue
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc, all
}

// Stats aggregates distance statistics over a set of BFS sources.
type Stats struct {
	// Diameter is the maximum finite pairwise distance observed.
	Diameter int32
	// AvgDistance is the mean distance over all ordered pairs (u,v) with
	// u != v among the sampled sources (all pairs if exhaustive).
	AvgDistance float64
	// Radius is the minimum eccentricity over the sampled sources.
	Radius int32
	// Connected reports whether every BFS reached every node.
	Connected bool
	// Sources is the number of BFS sources used.
	Sources int
}

// AllPairs runs a BFS from every node in parallel and aggregates statistics.
func (g *Graph) AllPairs() Stats {
	sources := make([]int32, g.n)
	for i := range sources {
		sources[i] = int32(i)
	}
	return g.statsFromSources(sources, nil)
}

// PairStats runs BFS from the given sources only (useful for sampling large
// graphs, or a single source on a vertex-transitive graph).
func (g *Graph) PairStats(sources []int32) Stats {
	return g.statsFromSources(sources, nil)
}

// AllPairsWeighted computes the same statistics under a 0/1 edge weighting:
// weight(u,v) gives the cost of traversing arc u->v and must be 0 or 1.
// This is the measurement behind the paper's inter-cluster distance: on- vs
// off-module hops.
func (g *Graph) AllPairsWeighted(weight func(u, v int32) int32) Stats {
	sources := make([]int32, g.n)
	for i := range sources {
		sources[i] = int32(i)
	}
	return g.statsFromSources(sources, weight)
}

// PairStatsWeighted is PairStats under a 0/1 edge weighting.
func (g *Graph) PairStatsWeighted(sources []int32, weight func(u, v int32) int32) Stats {
	return g.statsFromSources(sources, weight)
}

func (g *Graph) statsFromSources(sources []int32, weight func(u, v int32) int32) Stats {
	if g.n == 0 || len(sources) == 0 {
		return Stats{Connected: true}
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(sources) {
		workers = len(sources)
	}
	type partial struct {
		diameter int32
		radius   int32
		sum      int64
		pairs    int64
		conn     bool
	}
	results := make([]partial, workers)
	var wg sync.WaitGroup
	next := make(chan int32, len(sources))
	for _, s := range sources {
		next <- s
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := partial{radius: math.MaxInt32, conn: true}
			dist := make([]int32, g.n)
			queue := make([]int32, 0, g.n)
			var dq *deque
			if weight != nil {
				dq = newDeque(g.n)
			}
			for src := range next {
				if weight == nil {
					g.bfsInto(src, dist, queue)
				} else {
					g.zeroOneBFSInto(src, dist, dq, weight)
				}
				var ecc int32
				for _, d := range dist {
					if d == Unreachable {
						p.conn = false
						continue
					}
					if d > ecc {
						ecc = d
					}
					p.sum += int64(d)
					p.pairs++
				}
				p.pairs-- // exclude the (src,src) zero-distance pair
				if ecc > p.diameter {
					p.diameter = ecc
				}
				if ecc < p.radius {
					p.radius = ecc
				}
			}
			results[w] = p
		}(w)
	}
	wg.Wait()
	agg := Stats{Connected: true, Sources: len(sources), Radius: math.MaxInt32}
	var sum, pairs int64
	for _, p := range results {
		if p.diameter > agg.Diameter {
			agg.Diameter = p.diameter
		}
		if p.radius < agg.Radius {
			agg.Radius = p.radius
		}
		sum += p.sum
		pairs += p.pairs
		agg.Connected = agg.Connected && p.conn
	}
	if pairs > 0 {
		agg.AvgDistance = float64(sum) / float64(pairs)
	}
	if agg.Radius == math.MaxInt32 {
		agg.Radius = 0
	}
	return agg
}

// deque is a growable ring-buffer double-ended queue of node ids for 0/1 BFS.
type deque struct {
	buf  []int32
	head int // index of the front element
	size int
}

func newDeque(n int) *deque {
	c := 16
	for c < n+1 {
		c <<= 1
	}
	return &deque{buf: make([]int32, c)}
}

func (d *deque) reset(int) {
	d.head, d.size = 0, 0
}

func (d *deque) empty() bool { return d.size == 0 }

func (d *deque) grow() {
	buf := make([]int32, 2*len(d.buf))
	for i := 0; i < d.size; i++ {
		buf[i] = d.buf[(d.head+i)&(len(d.buf)-1)]
	}
	d.buf, d.head = buf, 0
}

func (d *deque) pushFront(v int32) {
	if d.size == len(d.buf) {
		d.grow()
	}
	d.head = (d.head - 1) & (len(d.buf) - 1)
	d.buf[d.head] = v
	d.size++
}

func (d *deque) pushBack(v int32) {
	if d.size == len(d.buf) {
		d.grow()
	}
	d.buf[(d.head+d.size)&(len(d.buf)-1)] = v
	d.size++
}

func (d *deque) popFront() int32 {
	v := d.buf[d.head]
	d.head = (d.head + 1) & (len(d.buf) - 1)
	d.size--
	return v
}

// ZeroOneBFS computes shortest distances from src where each arc u->v costs
// weight(u,v), which must be 0 or 1. Used for inter-cluster distances where
// on-module hops are free and off-module hops cost one transmission.
func (g *Graph) ZeroOneBFS(src int32, weight func(u, v int32) int32) []int32 {
	dist := make([]int32, g.n)
	dq := newDeque(g.n)
	g.zeroOneBFSInto(src, dist, dq, weight)
	return dist
}

func (g *Graph) zeroOneBFSInto(src int32, dist []int32, dq *deque, weight func(u, v int32) int32) {
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[src] = 0
	dq.reset(g.n)
	dq.pushBack(src)
	for !dq.empty() {
		u := dq.popFront()
		du := dist[u]
		for _, v := range g.Neighbors(u) {
			w := weight(u, v)
			nd := du + w
			if dist[v] == Unreachable || nd < dist[v] {
				dist[v] = nd
				if w == 0 {
					dq.pushFront(v)
				} else {
					dq.pushBack(v)
				}
			}
		}
	}
}

// IsConnected reports whether the graph is (strongly, if directed) connected
// in the BFS-from-0 sense combined with a reverse check for directed graphs.
func (g *Graph) IsConnected() bool {
	if g.n == 0 {
		return true
	}
	dist := g.BFS(0)
	for _, d := range dist {
		if d == Unreachable {
			return false
		}
	}
	if !g.Directed {
		return true
	}
	// Strong connectivity: also require node 0 reachable from everywhere,
	// checked on the reverse graph.
	rev := g.reverse()
	dist = rev.BFS(0)
	for _, d := range dist {
		if d == Unreachable {
			return false
		}
	}
	return true
}

func (g *Graph) reverse() *Graph {
	b := NewBuilder(g.n, true)
	for u := 0; u < g.n; u++ {
		for _, v := range g.Neighbors(int32(u)) {
			b.AddArc(v, int32(u))
		}
	}
	return b.Build()
}
