package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestWriteReadRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(30)
		directed := r.Intn(2) == 0
		b := NewBuilder(n, directed)
		for e := 0; e < 2*n; e++ {
			b.AddEdge(int32(r.Intn(n)), int32(r.Intn(n)))
		}
		g := b.Build()
		var buf bytes.Buffer
		if err := g.WriteText(&buf); err != nil {
			return false
		}
		h, err := ReadText(&buf)
		if err != nil {
			t.Logf("read: %v", err)
			return false
		}
		if h.N() != g.N() || h.M() != g.M() || h.Directed != g.Directed {
			return false
		}
		for u := 0; u < g.N(); u++ {
			a, b2 := g.Neighbors(int32(u)), h.Neighbors(int32(u))
			if len(a) != len(b2) {
				return false
			}
			for i := range a {
				if a[i] != b2[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteReadLabels(t *testing.T) {
	b := NewBuilder(3, false)
	b.SetLabel(0, "alpha")
	b.SetLabel(2, "12 21")
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.Build()
	var buf bytes.Buffer
	if err := g.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	h, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.Labels == nil || h.Labels[0] != "alpha" || h.Labels[2] != "12 21" || h.Labels[1] != "" {
		t.Fatalf("labels = %v", h.Labels)
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := []string{
		"",
		"bogus header",
		"ipgraph 2 3 0\n",
		"ipgraph 1 -1 0\n",
		"ipgraph 1 3 0\nnot-an-adjacency\n",
		"ipgraph 1 3 0\n5: 0\n",
		"ipgraph 1 3 0\n0: 9\n",
		"ipgraph 1 3 0\nlabel x\n",
		"ipgraph 1 3 0\nlabel 9 name\n",
		"ipgraph 1 2 0\n0: 1\n", // missing reverse arc in undirected input
	}
	for i, c := range cases {
		if _, err := ReadText(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d: expected error for %q", i, c)
		}
	}
}

func TestReadTextIsolatedNodes(t *testing.T) {
	g, err := ReadText(strings.NewReader("ipgraph 1 4 0\n0: 1\n1: 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.Degree(2) != 0 || g.Degree(3) != 0 {
		t.Fatal("isolated nodes lost")
	}
}
