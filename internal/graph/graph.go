// Package graph provides the compact graph representation and the (parallel)
// breadth-first-search machinery used to measure interconnection networks:
// diameter, average distance, eccentricities, and the 0/1-weighted variants
// needed for inter-cluster (off-module) metrics.
//
// Graphs are stored in compressed sparse row (CSR) form with int32 node ids;
// every network studied in the paper fits comfortably in memory at the sizes
// where exhaustive measurement is feasible (up to a few hundred thousand
// nodes).
package graph

import (
	"fmt"
	"sort"
)

// Graph is a finalized graph in CSR form. Use Builder to construct one.
// If Directed is false, every arc's reverse is guaranteed present.
type Graph struct {
	n        int
	offsets  []int32
	edges    []int32
	Directed bool
	// Labels optionally carries a human-readable label per node.
	Labels []string
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of arcs (directed edge slots). For an undirected
// graph this is twice the number of edges.
func (g *Graph) M() int { return len(g.edges) }

// NumEdges returns the number of undirected edges (M/2) for undirected
// graphs, or the number of arcs for directed graphs.
func (g *Graph) NumEdges() int {
	if g.Directed {
		return len(g.edges)
	}
	return len(g.edges) / 2
}

// Neighbors returns the sorted adjacency list of node u as a shared slice.
func (g *Graph) Neighbors(u int32) []int32 {
	return g.edges[g.offsets[u]:g.offsets[u+1]]
}

// Degree returns the out-degree of node u.
func (g *Graph) Degree(u int32) int {
	return int(g.offsets[u+1] - g.offsets[u])
}

// HasEdge reports whether the arc u->v exists (binary search).
func (g *Graph) HasEdge(u, v int32) bool {
	adj := g.Neighbors(u)
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= v })
	return i < len(adj) && adj[i] == v
}

// MaxDegree returns the maximum out-degree over all nodes (0 for empty).
func (g *Graph) MaxDegree() int {
	max := 0
	for u := 0; u < g.n; u++ {
		if d := g.Degree(int32(u)); d > max {
			max = d
		}
	}
	return max
}

// MinDegree returns the minimum out-degree over all nodes (0 for empty).
func (g *Graph) MinDegree() int {
	if g.n == 0 {
		return 0
	}
	min := g.Degree(0)
	for u := 1; u < g.n; u++ {
		if d := g.Degree(int32(u)); d < min {
			min = d
		}
	}
	return min
}

// IsRegular reports whether all nodes have the same degree.
func (g *Graph) IsRegular() bool { return g.n == 0 || g.MaxDegree() == g.MinDegree() }

// Builder accumulates arcs and produces a CSR Graph. The zero value is ready
// to use after SetN (or grows implicitly via AddEdge).
type Builder struct {
	n        int
	from, to []int32
	directed bool
	labels   []string
}

// NewBuilder returns a builder for a graph with n nodes. If directed is
// false, AddEdge inserts both arc directions.
func NewBuilder(n int, directed bool) *Builder {
	return &Builder{n: n, directed: directed}
}

// SetLabel attaches a label to node u (allocating label storage on demand).
func (b *Builder) SetLabel(u int32, label string) {
	if b.labels == nil {
		b.labels = make([]string, b.n)
	}
	b.labels[u] = label
}

// AddEdge records an edge u-v (or arc u->v if the builder is directed).
// Self-loops are dropped; duplicates are removed during Build.
func (b *Builder) AddEdge(u, v int32) {
	if u == v {
		return
	}
	if int(u) >= b.n || int(v) >= b.n || u < 0 || v < 0 {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range 0..%d", u, v, b.n-1))
	}
	b.from = append(b.from, u)
	b.to = append(b.to, v)
	if !b.directed {
		b.from = append(b.from, v)
		b.to = append(b.to, u)
	}
}

// AddArc records the single arc u->v even in an undirected builder; the
// caller is responsible for symmetry in that case.
func (b *Builder) AddArc(u, v int32) {
	if u == v {
		return
	}
	if int(u) >= b.n || int(v) >= b.n || u < 0 || v < 0 {
		panic(fmt.Sprintf("graph: arc (%d,%d) out of range 0..%d", u, v, b.n-1))
	}
	b.from = append(b.from, u)
	b.to = append(b.to, v)
}

// Build finalizes the graph: sorts adjacency lists and removes duplicates.
func (b *Builder) Build() *Graph {
	counts := make([]int32, b.n+1)
	for _, u := range b.from {
		counts[u+1]++
	}
	for i := 1; i <= b.n; i++ {
		counts[i] += counts[i-1]
	}
	edges := make([]int32, len(b.from))
	cursor := make([]int32, b.n)
	for i, u := range b.from {
		edges[counts[u]+cursor[u]] = b.to[i]
		cursor[u]++
	}
	// Sort each adjacency list and deduplicate in place.
	out := edges[:0]
	offsets := make([]int32, b.n+1)
	for u := 0; u < b.n; u++ {
		lo, hi := counts[u], counts[u+1]
		adj := edges[lo:hi]
		sort.Slice(adj, func(i, j int) bool { return adj[i] < adj[j] })
		offsets[u] = int32(len(out))
		var prev int32 = -1
		for _, v := range adj {
			if v != prev {
				out = append(out, v)
				prev = v
			}
		}
	}
	offsets[b.n] = int32(len(out))
	final := make([]int32, len(out))
	copy(final, out)
	return &Graph{n: b.n, offsets: offsets, edges: final, Directed: b.directed, Labels: b.labels}
}

// EdgeList returns every undirected edge once as a (u,v) pair with u < v;
// for directed graphs it returns every arc. The order is deterministic
// (sorted by u, then v), which makes it suitable for seeding reproducible
// fault plans.
func (g *Graph) EdgeList() [][2]int32 {
	var out [][2]int32
	if g.Directed {
		out = make([][2]int32, 0, g.M())
	} else {
		out = make([][2]int32, 0, g.M()/2)
	}
	for u := 0; u < g.n; u++ {
		for _, v := range g.Neighbors(int32(u)) {
			if !g.Directed && v < int32(u) {
				continue
			}
			out = append(out, [2]int32{int32(u), v})
		}
	}
	return out
}

// Symmetrized returns an undirected version of g in which every arc has its
// reverse. If g is already undirected, g itself is returned.
func (g *Graph) Symmetrized() *Graph {
	if !g.Directed {
		return g
	}
	b := NewBuilder(g.n, false)
	b.labels = g.Labels
	for u := 0; u < g.n; u++ {
		for _, v := range g.Neighbors(int32(u)) {
			b.AddArc(int32(u), v)
			b.AddArc(v, int32(u))
		}
	}
	return b.Build()
}
