package obs

// Tests for the RouterStats value type: Delta's counter-vs-gauge semantics,
// the hit-rate edge cases, the depth-bucket bounds, and the text rendering.

import (
	"bytes"
	"strings"
	"testing"
)

// TestRouterStatsDelta checks field-wise subtraction with the one gauge
// exception: CacheOccupancy keeps the newer absolute value.
func TestRouterStatsDelta(t *testing.T) {
	base := RouterStats{CacheHits: 10, CacheMisses: 4, CacheEvicted: 1,
		CacheOccupancy: 30, Reroutes: 2, ConjugateReroutes: 1,
		LocalDetourReroutes: 1, DetourHops: 5, DetourDepth: [8]uint64{1, 0, 1}}
	now := RouterStats{CacheHits: 25, CacheMisses: 9, CacheEvicted: 1,
		CacheClears: 1, CacheOccupancy: 12, EpochPurges: 2, Reroutes: 6,
		ConjugateReroutes: 3, LocalDetourReroutes: 3, DetourHops: 11,
		DetourDepth: [8]uint64{3, 1, 2}}
	d := now.Delta(base)
	want := RouterStats{CacheHits: 15, CacheMisses: 5, CacheClears: 1,
		CacheOccupancy: 12, EpochPurges: 2, Reroutes: 4, ConjugateReroutes: 2,
		LocalDetourReroutes: 2, DetourHops: 6, DetourDepth: [8]uint64{2, 1, 1}}
	if d != want {
		t.Fatalf("Delta = %+v, want %+v", d, want)
	}
}

// TestRouterStatsCacheHitRate covers the zero-lookup and all-hit edges.
func TestRouterStatsCacheHitRate(t *testing.T) {
	if r := (RouterStats{}).CacheHitRate(); r != 0 {
		t.Fatalf("no lookups should rate 0, got %v", r)
	}
	if r := (RouterStats{CacheHits: 5}).CacheHitRate(); r != 1 {
		t.Fatalf("all hits should rate 1, got %v", r)
	}
	if r := (RouterStats{CacheHits: 1, CacheMisses: 3}).CacheHitRate(); r != 0.25 {
		t.Fatalf("1/4 should rate 0.25, got %v", r)
	}
}

// TestDetourDepthBounds pins the log2 bucket layout: bucket 0 is the
// conjugate (zero-hop) class, interior buckets cover [2^(b-1), 2^b-1], the
// last absorbs everything deeper.
func TestDetourDepthBounds(t *testing.T) {
	cases := []struct{ b, lo, hi int }{
		{0, 0, 0}, {1, 1, 1}, {2, 2, 3}, {3, 4, 7}, {6, 32, 63}, {7, 64, -1},
	}
	for _, c := range cases {
		if lo, hi := DetourDepthBounds(c.b); lo != c.lo || hi != c.hi {
			t.Fatalf("bucket %d: [%d,%d], want [%d,%d]", c.b, lo, hi, c.lo, c.hi)
		}
	}
}

// TestRouterStatsWriteText checks the rendering: the cache line is always
// present, the reroute block only when repairs happened, and every nonzero
// depth bucket gets a row.
func TestRouterStatsWriteText(t *testing.T) {
	var buf bytes.Buffer
	clean := RouterStats{CacheHits: 3, CacheMisses: 1}
	if err := clean.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "route cache") || !strings.Contains(out, "75.0% hit rate") {
		t.Fatalf("cache line missing or wrong:\n%s", out)
	}
	if strings.Contains(out, "reroutes") {
		t.Fatalf("reroute block rendered with zero reroutes:\n%s", out)
	}

	buf.Reset()
	faulty := RouterStats{CacheMisses: 2, Reroutes: 3, ConjugateReroutes: 2,
		LocalDetourReroutes: 1, DetourHops: 5, DetourDepth: [8]uint64{2, 0, 0, 1}}
	if err := faulty.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out = buf.String()
	if !strings.Contains(out, "reroutes: 3 (2 conjugate, 1 local-detour), 5 detour hops") {
		t.Fatalf("reroute split missing:\n%s", out)
	}
	if !strings.Contains(out, "detour depth [0]") || !strings.Contains(out, "detour depth [4,7]") {
		t.Fatalf("depth histogram rows missing:\n%s", out)
	}
}
