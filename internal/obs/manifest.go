// The run manifest: one machine-readable JSON record per run, and the
// helpers that make two manifests comparable. A manifest captures what was
// simulated (config and seed), what came out (the simulator's stats struct
// and latency percentiles), how the router behaved (RouterStats), whatever
// the process accumulated in its registry — and, since PR 8, where the run
// happened (benchkit env metadata: go version, CPU model, commit+dirty) and
// repeated-run samples so cmd/obsdiff can apply the same Mann-Whitney
// significance discipline to simulation behavior that cmd/bench applies to
// ns/op.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/benchkit"
)

// Manifest is the machine-readable record of one run: what was simulated
// (config and seed), what came out (the simulator's stats struct and
// latency percentiles), how the router behaved (RouterStats), and whatever
// the process accumulated in its registry. cmd/simulate writes one per
// (ratio, rate) combination under -manifest; cmd/ipgen writes one per build
// under -manifest.
type Manifest struct {
	Run         string             `json:"run"`
	Config      map[string]any     `json:"config,omitempty"`
	Seed        int64              `json:"seed"`
	Stats       any                `json:"stats,omitempty"`
	Percentiles map[string]float64 `json:"percentiles,omitempty"`
	Router      *RouterStats       `json:"router,omitempty"`
	Metrics     map[string]any     `json:"metrics,omitempty"`
	// Env records where the run happened (go version, CPU model, commit
	// with a -dirty flag, host) so a manifest is attributable to a machine
	// and commit the way BENCH_*.json records already are, and so
	// cmd/obsdiff can refuse apples-to-oranges comparisons (EnvMismatch).
	Env *benchkit.Env `json:"env,omitempty"`
	// Samples holds one flattened scalar-metric map per repeat of the run
	// (see Flatten for the key scheme). A single run records one sample; a
	// repeated run (cmd/simulate -repeat) records one per seed, giving
	// cmd/obsdiff real distributions for its rank test instead of a
	// median-only comparison.
	Samples []map[string]float64 `json:"samples,omitempty"`
}

// WriteJSON writes the manifest as indented JSON.
func (m Manifest) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// ReadManifestFile loads one manifest from a JSON file written by
// Manifest.WriteJSON.
func ReadManifestFile(path string) (Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Manifest{}, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, fmt.Errorf("obs: %s: %w", path, err)
	}
	return m, nil
}

// Flatten projects every numeric value reachable from the manifest into one
// flat metric map, keyed by dotted path: "stats.AvgLatency",
// "percentiles.p99", "router.CacheHits", "metrics.latency.p95",
// "router.DetourDepth.0". The projection goes through a JSON round-trip, so
// it works identically on a live manifest (Stats holding a struct) and on
// one loaded from disk (Stats holding map[string]any), and non-numeric
// leaves are simply skipped. The derived "router.CacheHitRate" is added
// because the rate, not the raw counters, is the comparable quantity.
func (m Manifest) Flatten() map[string]float64 {
	out := map[string]float64{}
	flattenJSON("stats", m.Stats, out)
	for k, v := range m.Percentiles {
		out["percentiles."+k] = v
	}
	if m.Router != nil {
		flattenJSON("router", *m.Router, out)
		out["router.CacheHitRate"] = m.Router.CacheHitRate()
	}
	if m.Metrics != nil {
		flattenJSON("metrics", m.Metrics, out)
	}
	return out
}

// flattenJSON round-trips v through JSON and records every numeric leaf
// under prefix. Marshal errors flatten to nothing rather than failing: a
// manifest section that cannot serialize has nothing comparable in it.
func flattenJSON(prefix string, v any, out map[string]float64) {
	if v == nil {
		return
	}
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	var decoded any
	if err := json.Unmarshal(data, &decoded); err != nil {
		return
	}
	flattenValue(prefix, decoded, out)
}

func flattenValue(prefix string, v any, out map[string]float64) {
	switch t := v.(type) {
	case float64:
		out[prefix] = t
	case map[string]any:
		for k, e := range t {
			flattenValue(prefix+"."+k, e, out)
		}
	case []any:
		for i, e := range t {
			flattenValue(fmt.Sprintf("%s.%d", prefix, i), e, out)
		}
	}
}
