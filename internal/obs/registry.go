// Concurrency-safe metrics registry: the serving-side half of the
// observability layer. The collectors in this package are single-run,
// single-goroutine objects; a long-running process (cmd/simulate sweeps
// today, the routed service the ROADMAP plans) instead needs counters that
// many goroutines can bump, gauges it can set from anywhere, and histograms
// that absorb concurrent observations without a lock on the hot path. The
// registry provides exactly that — atomic counters and gauges plus striped
// histograms — along with expvar export for live inspection and a JSON run
// manifest that snapshots everything (config, seed, stats, percentiles,
// router counters) into one machine-readable record of a run.
package obs

import (
	"expvar"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (concurrency-safe).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomically settable instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge's value (concurrency-safe).
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add shifts the gauge by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histStripes is the stripe count of StripedHist: a small power of two —
// enough to keep heavily concurrent writers off each other's cache lines,
// small enough that merging at read time stays trivial.
const histStripes = 8

// histBuckets covers every non-negative int64 value: bucket b holds values
// with bit length b (the same log2 bucketing as LatencyHist).
const histBuckets = 65

// histStripe is one independently updated copy of the bucket array, padded
// to its own cache lines so stripes don't false-share.
type histStripe struct {
	count [histBuckets]atomic.Int64
	n     atomic.Int64
	sum   atomic.Int64
	max   atomic.Int64
	_     [64]byte
}

// StripedHist is a log2-bucketed histogram safe for concurrent Observe
// calls. Writers are spread over stripes by a hash of the observed value,
// so no mutex is taken anywhere; Snapshot merges the stripes into a
// LatencyHist for quantile queries. The zero value is ready to use.
type StripedHist struct {
	stripes [histStripes]histStripe
}

// Observe records one non-negative sample (negative values clamp to 0).
func (h *StripedHist) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	// Fibonacci-hash the value to pick a stripe: cheap, stateless, and
	// spreads distinct values across stripes (identical values share one
	// stripe, which is still contention-free in the atomic sense).
	s := &h.stripes[(uint64(v)*0x9E3779B97F4A7C15)>>59&(histStripes-1)]
	s.count[bits.Len64(uint64(v))].Add(1)
	s.n.Add(1)
	s.sum.Add(v)
	for {
		old := s.max.Load()
		if v <= old || s.max.CompareAndSwap(old, v) {
			break
		}
	}
}

// Count returns the total number of samples across all stripes.
func (h *StripedHist) Count() int64 {
	var n int64
	for i := range h.stripes {
		n += h.stripes[i].n.Load()
	}
	return n
}

// Snapshot merges the stripes into a point-in-time LatencyHist, which
// answers Quantile/Mean/Max/WriteText. The snapshot is internally
// consistent per stripe; concurrent writers may land between stripe reads,
// which skews a live snapshot by at most the in-flight observations.
func (h *StripedHist) Snapshot() *LatencyHist {
	out := &LatencyHist{}
	top := 0
	for i := range h.stripes {
		s := &h.stripes[i]
		out.n += s.n.Load()
		out.sum += s.sum.Load()
		if m := int(s.max.Load()); m > out.max {
			out.max = m
		}
		for b := histBuckets - 1; b >= 0; b-- {
			if s.count[b].Load() != 0 && b > top {
				top = b
			}
		}
	}
	out.count = make([]int64, top+1)
	for i := range h.stripes {
		for b := 0; b <= top; b++ {
			out.count[b] += h.stripes[i].count[b].Load()
		}
	}
	return out
}

// Registry is a named collection of counters, gauges, and striped
// histograms. Lookups take a mutex (they happen once per metric, at wiring
// time); the returned metric objects are lock-free to update. The zero
// value is ready to use.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*StripedHist
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counters == nil {
		r.counters = map[string]*Counter{}
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gauges == nil {
		r.gauges = map[string]*Gauge{}
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Hist returns the named striped histogram, creating it on first use.
func (r *Registry) Hist(name string) *StripedHist {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.hists == nil {
		r.hists = map[string]*StripedHist{}
	}
	h, ok := r.hists[name]
	if !ok {
		h = &StripedHist{}
		r.hists[name] = h
	}
	return h
}

// Snapshot returns a point-in-time view of every metric: counters and
// gauges by value, histograms as {count, mean, p50, p95, p99, max}
// summaries. Keys are the registered names; the map is sorted-stable when
// marshaled (encoding/json sorts map keys).
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*StripedHist, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	out := map[string]any{}
	for k, c := range counters {
		out[k] = c.Value()
	}
	for k, g := range gauges {
		out[k] = g.Value()
	}
	for k, h := range hists {
		s := h.Snapshot()
		p50, p95, p99, max := s.Summary()
		out[k] = map[string]any{
			"count": s.Count(), "mean": s.Mean(),
			"p50": p50, "p95": p95, "p99": p99, "max": max,
		}
	}
	return out
}

// Names returns every registered metric name, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for k := range r.counters {
		names = append(names, k)
	}
	for k := range r.gauges {
		names = append(names, k)
	}
	for k := range r.hists {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// expvarPublished guards expvar.Publish, which panics on duplicate names —
// a process (or test binary) may build registries repeatedly under one
// expvar namespace, so re-publishing a name silently rebinds nothing and
// keeps the first registration.
var (
	expvarMu        sync.Mutex
	expvarPublished = map[string]bool{}
)

// PublishExpvar exposes the registry under the given expvar name as a
// single Func variable whose value is Snapshot(). Safe to call repeatedly;
// only the first call for a name binds (expvar forbids re-publication).
func (r *Registry) PublishExpvar(name string) {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvarPublished[name] {
		return
	}
	expvarPublished[name] = true
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
