package obs

import (
	"fmt"
	"reflect"
	"testing"
)

// echoProbe records a compact string per event, for replay-order checks.
type echoProbe struct{ got []string }

func (e *echoProbe) Tick(c int) { e.got = append(e.got, fmt.Sprintf("tick:%d", c)) }
func (e *echoProbe) Inject(c int, id int64, src, dst int64, m bool) {
	e.got = append(e.got, fmt.Sprintf("inject:%d:%d:%d:%d:%v", c, id, src, dst, m))
}
func (e *echoProbe) Enqueue(c int, id int64, at, next int64, q int) {
	e.got = append(e.got, fmt.Sprintf("enqueue:%d:%d:%d:%d:%d", c, id, at, next, q))
}
func (e *echoProbe) Hop(c int, id int64, from, to int64, occ, q int) {
	e.got = append(e.got, fmt.Sprintf("hop:%d:%d:%d:%d:%d:%d", c, id, from, to, occ, q))
}
func (e *echoProbe) Deliver(c int, id int64, node int64, lat int, m bool) {
	e.got = append(e.got, fmt.Sprintf("deliver:%d:%d:%d:%d:%v", c, id, node, lat, m))
}
func (e *echoProbe) Drop(c int, id int64, at int64, r DropReason) {
	e.got = append(e.got, fmt.Sprintf("drop:%d:%d:%d:%s", c, id, at, r))
}
func (e *echoProbe) Retransmit(c int, id int64, src int64, n int) {
	e.got = append(e.got, fmt.Sprintf("retx:%d:%d:%d:%d", c, id, src, n))
}
func (e *echoProbe) Fault(c int, u, v int64, node, down bool) {
	e.got = append(e.got, fmt.Sprintf("fault:%d:%d:%d:%v:%v", c, u, v, node, down))
}
func (e *echoProbe) Reroute(c int, dst int64, lag int) {
	e.got = append(e.got, fmt.Sprintf("reroute:%d:%d:%d", c, dst, lag))
}

// TestEventLogReplayCycle checks that a buffered stream replays exactly, in
// order, cycle by cycle — with Ticks dropped at record time (the replaying
// coordinator owns the clock) — and that Reset rewinds for the next window.
func TestEventLogReplayCycle(t *testing.T) {
	l := &EventLog{}
	// A window's worth of events, cycles 0..2, every kind represented.
	l.Tick(0) // must be dropped
	l.Inject(0, 1, 2, 3, true)
	l.Enqueue(0, 1, 2, 5, 4)
	l.Hop(1, 1, 2, 5, 6, 3)
	l.Fault(1, 9, -1, true, true)
	l.Drop(1, 1, 9, DropDeadRouter)
	l.Retransmit(2, 1, 2, 1)
	l.Deliver(2, 7, 3, 11, false)
	l.Reroute(2, 3, 4)
	if l.Len() != 8 {
		t.Fatalf("Len = %d, want 8 (Tick must not be buffered)", l.Len())
	}

	e := &echoProbe{}
	for c := 0; c < 3; c++ {
		e.Tick(c)
		l.ReplayCycle(c, e)
	}
	want := []string{
		"tick:0", "inject:0:1:2:3:true", "enqueue:0:1:2:5:4",
		"tick:1", "hop:1:1:2:5:6:3", "fault:1:9:-1:true:true", "drop:1:1:9:dead-router",
		"tick:2", "retx:2:1:2:1", "deliver:2:7:3:11:false", "reroute:2:3:4",
	}
	if !reflect.DeepEqual(e.got, want) {
		t.Fatalf("replay order:\n got %q\nwant %q", e.got, want)
	}

	l.Reset()
	if l.Len() != 0 {
		t.Fatalf("Len after Reset = %d", l.Len())
	}
	l.Deliver(3, 8, 4, 2, true)
	e2 := &echoProbe{}
	l.ReplayCycle(3, e2)
	if want := []string{"deliver:3:8:4:2:true"}; !reflect.DeepEqual(e2.got, want) {
		t.Fatalf("post-Reset replay: got %q, want %q", e2.got, want)
	}
}

// TestRouterStatsAdd pins the lane-merge semantics: every counter sums,
// including the CacheOccupancy gauge (lanes own separate routers, so the
// total cached population is the meaningful run-level value).
func TestRouterStatsAdd(t *testing.T) {
	a := RouterStats{CacheHits: 3, CacheMisses: 1, CacheOccupancy: 5, Reroutes: 2, DetourHops: 7}
	a.DetourDepth[0] = 2
	b := RouterStats{CacheHits: 10, CacheEvicted: 4, CacheOccupancy: 6, EpochPurges: 1,
		ConjugateReroutes: 1, LocalDetourReroutes: 1}
	b.DetourDepth[0] = 1
	b.DetourDepth[3] = 5
	sum := a.Add(b)
	want := RouterStats{CacheHits: 13, CacheMisses: 1, CacheEvicted: 4, CacheOccupancy: 11,
		EpochPurges: 1, Reroutes: 2, ConjugateReroutes: 1, LocalDetourReroutes: 1, DetourHops: 7}
	want.DetourDepth[0] = 3
	want.DetourDepth[3] = 5
	if sum != want {
		t.Fatalf("Add:\n got %+v\nwant %+v", sum, want)
	}
}
