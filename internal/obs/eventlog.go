// EventLog: the per-lane probe buffer behind the sharded simulator's
// deterministic fan-in. Each lane of netsim.RunSharded records its probe
// events into a private EventLog while the lanes run concurrently; at every
// window barrier the coordinator replays the logs cycle by cycle, lane by
// lane, into the user's single Probe. The replay order — Tick(c), then lane
// 0's events of cycle c in emission order, then lane 1's, ... — depends only
// on the lane partition, never on how many worker threads executed the
// lanes, so an instrumented sharded run streams one deterministic event
// sequence regardless of Shards. Collectors like Progress see exactly one
// Tick per cycle and aggregate across all lanes for free.
package obs

// EventKind discriminates the buffered probe calls of an EventLog.
type EventKind uint8

const (
	EvInject EventKind = iota
	EvEnqueue
	EvHop
	EvDeliver
	EvDrop
	EvRetransmit
	EvFault
	EvReroute
)

// Event is one buffered probe call. The int64 and int fields are overloaded
// per kind exactly as in the Probe method signatures (U and V carry the node
// arguments in order, A and B the int arguments in order, Flag/Flag2 the
// bools, Reason the drop reason).
type Event struct {
	Kind        EventKind
	Cycle       int
	ID          int64
	U, V        int64
	A, B        int
	Flag, Flag2 bool
	Reason      DropReason
}

// EventLog is a Probe that buffers every event except Tick (the replaying
// coordinator owns the clock and emits its own Ticks). Events must be
// appended in nondecreasing cycle order, which every engine-driven run
// guarantees. The zero value is ready to use. Not safe for concurrent use:
// one EventLog belongs to one lane.
type EventLog struct {
	events []Event
	cursor int
}

// Len returns the number of buffered (not yet Reset) events.
func (l *EventLog) Len() int { return len(l.events) }

// ReplayCycle forwards the buffered events of cycle c to p, in emission
// order, advancing the internal cursor past them. Calls must walk cycles in
// the same nondecreasing order the events were recorded in; events of
// earlier cycles the caller skipped are not replayed.
func (l *EventLog) ReplayCycle(c int, p Probe) {
	for l.cursor < len(l.events) && l.events[l.cursor].Cycle <= c {
		ev := &l.events[l.cursor]
		l.cursor++
		if ev.Cycle < c {
			continue
		}
		switch ev.Kind {
		case EvInject:
			p.Inject(ev.Cycle, ev.ID, ev.U, ev.V, ev.Flag)
		case EvEnqueue:
			p.Enqueue(ev.Cycle, ev.ID, ev.U, ev.V, ev.A)
		case EvHop:
			p.Hop(ev.Cycle, ev.ID, ev.U, ev.V, ev.A, ev.B)
		case EvDeliver:
			p.Deliver(ev.Cycle, ev.ID, ev.U, ev.A, ev.Flag)
		case EvDrop:
			p.Drop(ev.Cycle, ev.ID, ev.U, ev.Reason)
		case EvRetransmit:
			p.Retransmit(ev.Cycle, ev.ID, ev.U, ev.A)
		case EvFault:
			p.Fault(ev.Cycle, ev.U, ev.V, ev.Flag, ev.Flag2)
		case EvReroute:
			p.Reroute(ev.Cycle, ev.U, ev.A)
		}
	}
}

// Reset drops all buffered events and rewinds the cursor, keeping the
// backing array for the next window.
func (l *EventLog) Reset() {
	l.events = l.events[:0]
	l.cursor = 0
}

// Tick is dropped: the replaying coordinator emits the canonical Ticks.
func (l *EventLog) Tick(int) {}

func (l *EventLog) Inject(cycle int, id int64, src, dst int64, measured bool) {
	l.events = append(l.events, Event{Kind: EvInject, Cycle: cycle, ID: id, U: src, V: dst, Flag: measured})
}

func (l *EventLog) Enqueue(cycle int, id int64, at, next int64, qlen int) {
	l.events = append(l.events, Event{Kind: EvEnqueue, Cycle: cycle, ID: id, U: at, V: next, A: qlen})
}

func (l *EventLog) Hop(cycle int, id int64, from, to int64, occupy, qlen int) {
	l.events = append(l.events, Event{Kind: EvHop, Cycle: cycle, ID: id, U: from, V: to, A: occupy, B: qlen})
}

func (l *EventLog) Deliver(cycle int, id int64, node int64, latency int, measured bool) {
	l.events = append(l.events, Event{Kind: EvDeliver, Cycle: cycle, ID: id, U: node, A: latency, Flag: measured})
}

func (l *EventLog) Drop(cycle int, id int64, at int64, reason DropReason) {
	l.events = append(l.events, Event{Kind: EvDrop, Cycle: cycle, ID: id, U: at, Reason: reason})
}

func (l *EventLog) Retransmit(cycle int, id int64, src int64, attempt int) {
	l.events = append(l.events, Event{Kind: EvRetransmit, Cycle: cycle, ID: id, U: src, A: attempt})
}

func (l *EventLog) Fault(cycle int, u, v int64, node, down bool) {
	l.events = append(l.events, Event{Kind: EvFault, Cycle: cycle, U: u, V: v, Flag: node, Flag2: down})
}

func (l *EventLog) Reroute(cycle int, dst int64, lag int) {
	l.events = append(l.events, Event{Kind: EvReroute, Cycle: cycle, U: dst, A: lag})
}
