// RouterStats is the router-observability snapshot of the algebraic stack:
// the suffix-cache and detour telemetry that topo.Algebraic and
// topo.FaultAware accumulate while routing. It lives in obs (the
// dependency-free leaf of the observability layer) so that topo can expose
// it and netsim/cmd tooling can report it without an import cycle;
// internal/topo aliases it as topo.RouterStats.
package obs

import (
	"fmt"
	"io"
)

// RouterStats is a cumulative snapshot of an algebraic router's internal
// counters. All fields are plain values (the detour-depth histogram is a
// fixed array), so two snapshots can be compared with == and subtracted
// with Delta — the simulators snapshot the router before and after a run
// and report the difference.
type RouterStats struct {
	// CacheHits / CacheMisses count NextHop calls answered from the
	// source-route suffix cache vs. ones that had to derive a route. A miss
	// is normal at a packet's first hop; mid-flight misses are re-sourced
	// routes (see CacheEvicted).
	CacheHits   uint64
	CacheMisses uint64
	// CacheEvicted counts in-flight route suffixes orphaned by a cache
	// clear (safety valve) or fault-epoch purge. Each orphaned entry is a
	// re-source fallback: the affected packet re-derives its route from its
	// current position on its next hop.
	CacheEvicted uint64
	// CacheClears counts safety-valve trips (the whole cache dropped
	// because it exceeded its size bound).
	CacheClears uint64
	// CacheOccupancy is the number of suffixes currently cached — an
	// absolute gauge (the in-flight population), not a cumulative counter;
	// Delta keeps the newer value.
	CacheOccupancy int
	// EpochPurges counts fault-epoch changes that invalidated the cache
	// (FaultAware only: the FaultSet changed since routes were verified).
	EpochPurges uint64
	// Reroutes counts route derivations whose primary algebraic route
	// crossed a fault and had to be repaired (FaultAware.RerouteCounts).
	Reroutes uint64
	// ConjugateReroutes counts repairs answered purely algebraically — a
	// generator-conjugate candidate was live, zero exploratory hops spent.
	ConjugateReroutes uint64
	// LocalDetourReroutes counts repairs that exhausted every conjugate
	// candidate and fell back to the bounded TTL-local detour walk.
	LocalDetourReroutes uint64
	// DetourHops is the total number of exploratory local-detour hops spent
	// across all repairs (FaultAware.RerouteCounts).
	DetourHops uint64
	// DetourDepth histograms the exploratory hops spent per repair in log2
	// buckets: bucket 0 holds conjugate repairs (0 hops), bucket b>0 holds
	// repairs that spent [2^(b-1), 2^b-1] hops, and the last bucket absorbs
	// everything deeper.
	DetourDepth [8]uint64
}

// Delta returns the counters accumulated since base (s minus base,
// field-wise). CacheOccupancy is a gauge, not a counter, so the newer
// absolute value is kept.
func (s RouterStats) Delta(base RouterStats) RouterStats {
	d := RouterStats{
		CacheHits:           s.CacheHits - base.CacheHits,
		CacheMisses:         s.CacheMisses - base.CacheMisses,
		CacheEvicted:        s.CacheEvicted - base.CacheEvicted,
		CacheClears:         s.CacheClears - base.CacheClears,
		CacheOccupancy:      s.CacheOccupancy,
		EpochPurges:         s.EpochPurges - base.EpochPurges,
		Reroutes:            s.Reroutes - base.Reroutes,
		ConjugateReroutes:   s.ConjugateReroutes - base.ConjugateReroutes,
		LocalDetourReroutes: s.LocalDetourReroutes - base.LocalDetourReroutes,
		DetourHops:          s.DetourHops - base.DetourHops,
	}
	for i := range s.DetourDepth {
		d.DetourDepth[i] = s.DetourDepth[i] - base.DetourDepth[i]
	}
	return d
}

// Add returns the field-wise sum of two snapshots. The sharded simulator
// uses it to merge the per-lane router deltas into one run-level snapshot;
// CacheOccupancy, though a gauge, is summed too — each lane owns a separate
// router, so the sum is the total cached-suffix population of the run.
func (s RouterStats) Add(t RouterStats) RouterStats {
	a := RouterStats{
		CacheHits:           s.CacheHits + t.CacheHits,
		CacheMisses:         s.CacheMisses + t.CacheMisses,
		CacheEvicted:        s.CacheEvicted + t.CacheEvicted,
		CacheClears:         s.CacheClears + t.CacheClears,
		CacheOccupancy:      s.CacheOccupancy + t.CacheOccupancy,
		EpochPurges:         s.EpochPurges + t.EpochPurges,
		Reroutes:            s.Reroutes + t.Reroutes,
		ConjugateReroutes:   s.ConjugateReroutes + t.ConjugateReroutes,
		LocalDetourReroutes: s.LocalDetourReroutes + t.LocalDetourReroutes,
		DetourHops:          s.DetourHops + t.DetourHops,
	}
	for i := range s.DetourDepth {
		a.DetourDepth[i] = s.DetourDepth[i] + t.DetourDepth[i]
	}
	return a
}

// CacheHitRate returns hits / (hits + misses), or 0 with no lookups.
func (s RouterStats) CacheHitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// DetourDepthBounds returns the inclusive hop range covered by detour-depth
// bucket b (the last bucket is open-ended: hi = -1).
func DetourDepthBounds(b int) (lo, hi int) {
	switch {
	case b <= 0:
		return 0, 0
	case b >= len(RouterStats{}.DetourDepth)-1:
		return 1 << (b - 1), -1
	default:
		return 1 << (b - 1), 1<<b - 1
	}
}

// WriteText renders the snapshot as a short human-readable block: the cache
// line, and — when any repair happened — the reroute split and the
// detour-depth histogram.
func (s RouterStats) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w,
		"  route cache: %d hits / %d misses (%.1f%% hit rate), %d resident, %d evicted (%d clears, %d epoch purges)\n",
		s.CacheHits, s.CacheMisses, 100*s.CacheHitRate(),
		s.CacheOccupancy, s.CacheEvicted, s.CacheClears, s.EpochPurges); err != nil {
		return err
	}
	if s.Reroutes == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w,
		"  reroutes: %d (%d conjugate, %d local-detour), %d detour hops\n",
		s.Reroutes, s.ConjugateReroutes, s.LocalDetourReroutes, s.DetourHops); err != nil {
		return err
	}
	for b, c := range s.DetourDepth {
		if c == 0 {
			continue
		}
		lo, hi := DetourDepthBounds(b)
		rng := fmt.Sprintf("[%d,%d]", lo, hi)
		if hi < 0 {
			rng = fmt.Sprintf("[%d,+)", lo)
		} else if lo == hi {
			rng = fmt.Sprintf("[%d]", lo)
		}
		if _, err := fmt.Fprintf(w, "    detour depth %-8s %d\n", rng, c); err != nil {
			return err
		}
	}
	return nil
}
