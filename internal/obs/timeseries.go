// Per-link and per-module time series. The collector watches Enqueue/Hop
// events to maintain, for every directed link, the current queue depth and
// the busy cycles accumulated in the current sample window, and snapshots
// them every Every cycles. Busy time is attributed to the window in which a
// transmission starts, so summing the exported busy columns over all windows
// exactly reproduces the total link occupancy of the run (no truncation at
// window boundaries) — the invariant the consistency tests rely on.
//
// Link state is allocated lazily on first Enqueue/Hop, so the collector
// holds memory proportional to the links that actually carried traffic, not
// the size of the topology — it attaches to a 25M-node implicit run as
// readily as to a 64-node materialized one.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// TimeSeries samples per-link (and, with a module map, per-module) load
// every Every cycles. Create with NewTimeSeries, attach as the run's Probe,
// then Flush and export.
type TimeSeries struct {
	NopProbe
	every    int
	moduleOf func(int64) int64 // nil disables the module view

	src, dst []int64          // per link index
	off      []bool           // off-module link?
	idx      map[[2]int64]int // (u, v) -> link index
	qlen     []int            // current queue depth
	winBusy  []int64          // busy cycles accumulated this window
	busy     []int64          // total busy cycles
	hops     []int64          // total transmissions

	lastTick   int
	lastSample int
	flushed    bool

	linkRows   []linkRow
	moduleRows []moduleRow
}

type linkRow struct {
	cycle, width int // window is [cycle-width, cycle)
	link         int
	qlen         int
	busy         int64
}

type moduleRow struct {
	cycle, width int
	module       int64
	qlen         int // packets queued on off-module links out of the module
	busy         int64
}

// LinkLoad summarizes one directed link over the whole run.
type LinkLoad struct {
	U, V      int64
	OffModule bool
	Hops      int64   // transmissions carried
	Busy      int64   // cycles the link was occupied
	Util      float64 // Busy / observed cycles
}

// NewTimeSeries builds a collector sampling every `every` cycles (values
// < 1 are clamped to 1). moduleOf maps a node id to its module id and may
// be nil; with it the collector also tracks per-module off-module occupancy
// and flags off-module links in exports. For a materialized run with a
// metrics.Partition pass func(u int64) int64 { return int64(part.Of[u]) };
// for an implicit topo.Modular topology pass its Module method.
func NewTimeSeries(moduleOf func(int64) int64, every int) *TimeSeries {
	if every < 1 {
		every = 1
	}
	return &TimeSeries{every: every, moduleOf: moduleOf, idx: map[[2]int64]int{}}
}

// link returns the state index of directed link u->v, allocating it on
// first sight.
func (ts *TimeSeries) link(u, v int64) int {
	if i, ok := ts.idx[[2]int64{u, v}]; ok {
		return i
	}
	i := len(ts.src)
	ts.idx[[2]int64{u, v}] = i
	ts.src = append(ts.src, u)
	ts.dst = append(ts.dst, v)
	ts.off = append(ts.off, ts.moduleOf != nil && ts.moduleOf(u) != ts.moduleOf(v))
	ts.qlen = append(ts.qlen, 0)
	ts.winBusy = append(ts.winBusy, 0)
	ts.busy = append(ts.busy, 0)
	ts.hops = append(ts.hops, 0)
	return i
}

// Tick snapshots a window whenever the sample period elapses (Probe hook).
func (ts *TimeSeries) Tick(cycle int) {
	ts.lastTick = cycle
	if cycle > ts.lastSample && cycle%ts.every == 0 {
		ts.snapshot(cycle)
	}
}

// Enqueue tracks queue growth (Probe hook).
func (ts *TimeSeries) Enqueue(_ int, _ int64, at, next int64, qlen int) {
	ts.qlen[ts.link(at, next)] = qlen
}

// Hop tracks transmissions and link occupancy (Probe hook).
func (ts *TimeSeries) Hop(_ int, _ int64, from, to int64, occupy, qlen int) {
	i := ts.link(from, to)
	ts.qlen[i] = qlen
	ts.winBusy[i] += int64(occupy)
	ts.busy[i] += int64(occupy)
	ts.hops[i]++
}

func (ts *TimeSeries) snapshot(cycle int) {
	width := cycle - ts.lastSample
	if width <= 0 {
		return
	}
	var modQ map[int64]int
	var modBusy map[int64]int64
	if ts.moduleOf != nil {
		modQ = map[int64]int{}
		modBusy = map[int64]int64{}
	}
	for i := range ts.src {
		if ts.qlen[i] != 0 || ts.winBusy[i] != 0 {
			ts.linkRows = append(ts.linkRows, linkRow{cycle: cycle, width: width,
				link: i, qlen: ts.qlen[i], busy: ts.winBusy[i]})
		}
		if ts.off[i] && ts.moduleOf != nil {
			m := ts.moduleOf(ts.src[i])
			modQ[m] += ts.qlen[i]
			modBusy[m] += ts.winBusy[i]
		}
		ts.winBusy[i] = 0
	}
	if ts.moduleOf != nil {
		mods := make([]int64, 0, len(modQ))
		for m := range modQ {
			if modQ[m] != 0 || modBusy[m] != 0 {
				mods = append(mods, m)
			}
		}
		sort.Slice(mods, func(a, b int) bool { return mods[a] < mods[b] })
		for _, m := range mods {
			ts.moduleRows = append(ts.moduleRows, moduleRow{cycle: cycle,
				width: width, module: m, qlen: modQ[m], busy: modBusy[m]})
		}
	}
	ts.lastSample = cycle
}

// Flush snapshots the final partial window so that the exported busy
// columns sum to the total link occupancy of the run. Call once after the
// run; further calls are no-ops.
func (ts *TimeSeries) Flush() {
	if ts.flushed {
		return
	}
	ts.flushed = true
	ts.snapshot(ts.lastTick + 1)
}

// ObservedCycles returns how many cycles the run simulated (as seen by
// Tick), the denominator of the overall utilizations.
func (ts *TimeSeries) ObservedCycles() int { return ts.lastTick + 1 }

// ActiveLinks returns how many distinct directed links carried or queued at
// least one packet — the collector's memory footprint is proportional to
// this, not to the topology size.
func (ts *TimeSeries) ActiveLinks() int { return len(ts.src) }

// TotalBusy returns the summed busy cycles over all links, which for a
// period-1 single-flit run equals the total number of hops taken by all
// packets (measured or not).
func (ts *TimeSeries) TotalBusy() int64 {
	var sum int64
	for _, b := range ts.busy {
		sum += b
	}
	return sum
}

// TopLinks returns the n busiest active directed links (by total busy
// cycles), hottest first — the "where does queueing happen" summary. n <= 0
// or n larger than the active-link count returns all of them.
func (ts *TimeSeries) TopLinks(n int) []LinkLoad {
	order := make([]int, len(ts.src))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if ts.busy[order[a]] != ts.busy[order[b]] {
			return ts.busy[order[a]] > ts.busy[order[b]]
		}
		if ts.src[order[a]] != ts.src[order[b]] {
			return ts.src[order[a]] < ts.src[order[b]]
		}
		return ts.dst[order[a]] < ts.dst[order[b]]
	})
	if n <= 0 || n > len(order) {
		n = len(order)
	}
	cycles := float64(ts.ObservedCycles())
	out := make([]LinkLoad, 0, n)
	for _, i := range order[:n] {
		util := 0.0
		if cycles > 0 {
			util = float64(ts.busy[i]) / cycles
		}
		out = append(out, LinkLoad{U: ts.src[i], V: ts.dst[i], OffModule: ts.off[i],
			Hops: ts.hops[i], Busy: ts.busy[i], Util: util})
	}
	return out
}

// WriteCSV exports the per-link series: one row per (window, active link)
// with the window-end cycle, window width, link endpoints, the off-module
// flag, the sampled queue depth, the busy cycles accumulated in the window,
// and the window utilization busy/width (which can exceed 1 when a
// multi-cycle transmission starts near the window end — occupancy is
// attributed to the starting window so the columns sum exactly). Links idle
// through a whole window are omitted.
func (ts *TimeSeries) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "cycle,width,src,dst,offmodule,queue,busy,util"); err != nil {
		return err
	}
	for _, r := range ts.linkRows {
		i := r.link
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%t,%d,%d,%.4f\n",
			r.cycle, r.width, ts.src[i], ts.dst[i], ts.off[i], r.qlen, r.busy,
			float64(r.busy)/float64(r.width)); err != nil {
			return err
		}
	}
	return nil
}

// WriteModulesCSV exports the per-module off-module occupancy series: for
// every window and module, the total queue depth and busy cycles of the
// module's outgoing off-module links. Requires a module map; without one it
// writes only the header.
func (ts *TimeSeries) WriteModulesCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "cycle,width,module,offqueue,offbusy,offutil"); err != nil {
		return err
	}
	for _, r := range ts.moduleRows {
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%.4f\n",
			r.cycle, r.width, r.module, r.qlen, r.busy,
			float64(r.busy)/float64(r.width)); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSONL exports both series as JSON lines, links ("kind":"link") then
// modules ("kind":"module"), for downstream tooling that prefers streaming
// JSON over CSV.
func (ts *TimeSeries) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, r := range ts.linkRows {
		i := r.link
		if err := enc.Encode(map[string]any{
			"kind": "link", "cycle": r.cycle, "width": r.width,
			"src": ts.src[i], "dst": ts.dst[i], "offmodule": ts.off[i],
			"queue": r.qlen, "busy": r.busy,
			"util": float64(r.busy) / float64(r.width),
		}); err != nil {
			return err
		}
	}
	for _, r := range ts.moduleRows {
		if err := enc.Encode(map[string]any{
			"kind": "module", "cycle": r.cycle, "width": r.width,
			"module": r.module, "offqueue": r.qlen, "offbusy": r.busy,
			"offutil": float64(r.busy) / float64(r.width),
		}); err != nil {
			return err
		}
	}
	return nil
}
