package obs

// Tests for the concurrency-safe metrics registry: exact totals under
// goroutine hammering (run under -race in CI), stripe-merge agreement with
// the single-threaded histogram, create-on-first-use identity, expvar
// publication idempotence, and the manifest's JSON shape.

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestRegistryConcurrentExactTotals hammers one counter, one gauge, and one
// striped histogram from many goroutines and requires exact totals: atomics
// lose nothing, and the stripe merge double-counts nothing.
func TestRegistryConcurrentExactTotals(t *testing.T) {
	reg := NewRegistry()
	const workers = 8
	const perWorker = 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := reg.Counter("events")
			g := reg.Gauge("level")
			h := reg.Hist("latency")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(int64(i % 257))
			}
		}(w)
	}
	wg.Wait()

	const total = workers * perWorker
	if got := reg.Counter("events").Value(); got != total {
		t.Fatalf("counter lost updates: %d, want %d", got, total)
	}
	if got := reg.Gauge("level").Value(); got != total {
		t.Fatalf("gauge lost updates: %d, want %d", got, total)
	}
	h := reg.Hist("latency")
	if got := h.Count(); got != total {
		t.Fatalf("histogram lost observations: %d, want %d", got, total)
	}
	snap := h.Snapshot()
	if snap.Count() != total {
		t.Fatalf("stripe merge count %d, want %d", snap.Count(), total)
	}
	// Each worker observes 0..256 cyclically, so the exact sum is known.
	var perWorkerSum int64
	for i := 0; i < perWorker; i++ {
		perWorkerSum += int64(i % 257)
	}
	wantMean := float64(workers*perWorkerSum) / float64(total)
	if snap.Mean() != wantMean {
		t.Fatalf("stripe merge mean %v, want %v", snap.Mean(), wantMean)
	}
	if snap.Max() != 256 {
		t.Fatalf("stripe merge max %d, want 256", snap.Max())
	}
}

// TestStripedHistMatchesLatencyHist feeds the same samples to the striped
// histogram and the single-threaded LatencyHist: the snapshot must agree on
// count, sum (via mean), max, and every quantile — same buckets, same
// interpolation.
func TestStripedHistMatchesLatencyHist(t *testing.T) {
	sh := &StripedHist{}
	lh := &LatencyHist{}
	for i := 0; i < 5000; i++ {
		v := (i * i) % 1023
		sh.Observe(int64(v))
		lh.Observe(v)
	}
	sh.Observe(-5) // negative clamps to 0
	lh.Observe(0)
	snap := sh.Snapshot()
	if snap.Count() != lh.Count() || snap.Mean() != lh.Mean() || snap.Max() != lh.Max() {
		t.Fatalf("snapshot (%d, %v, %d) != direct (%d, %v, %d)",
			snap.Count(), snap.Mean(), snap.Max(), lh.Count(), lh.Mean(), lh.Max())
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.95, 0.99, 1} {
		if a, b := snap.Quantile(q), lh.Quantile(q); a != b {
			t.Fatalf("q%.2f: striped %v != direct %v", q, a, b)
		}
	}
}

// TestRegistryIdentityAndNames checks create-on-first-use semantics: the
// same name always returns the same metric object, and Names covers all
// three kinds sorted.
func TestRegistryIdentityAndNames(t *testing.T) {
	reg := NewRegistry()
	if reg.Counter("c") != reg.Counter("c") {
		t.Fatal("counter identity broken")
	}
	if reg.Gauge("b") != reg.Gauge("b") {
		t.Fatal("gauge identity broken")
	}
	if reg.Hist("a") != reg.Hist("a") {
		t.Fatal("hist identity broken")
	}
	names := reg.Names()
	if len(names) != 3 || names[0] != "a" || names[1] != "b" || names[2] != "c" {
		t.Fatalf("Names = %v, want [a b c]", names)
	}

	reg.Counter("c").Add(7)
	reg.Gauge("b").Set(-3)
	reg.Hist("a").Observe(4)
	snap := reg.Snapshot()
	if snap["c"] != int64(7) || snap["b"] != int64(-3) {
		t.Fatalf("snapshot values wrong: %v", snap)
	}
	hs, ok := snap["a"].(map[string]any)
	if !ok || hs["count"] != int64(1) || hs["max"] != 4 {
		t.Fatalf("hist snapshot wrong: %#v", snap["a"])
	}
}

// TestRegistryPublishExpvar checks that publication is idempotent — expvar
// panics on duplicate names, so re-publishing (same or different registry)
// must be a no-op instead of a crash.
func TestRegistryPublishExpvar(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hits").Add(2)
	reg.PublishExpvar("obs_test_registry")
	reg.PublishExpvar("obs_test_registry")           // same registry again
	NewRegistry().PublishExpvar("obs_test_registry") // different registry, same name
}

// TestManifestJSON pins the manifest's JSON shape: stable keys, omitted
// empties, router block present when set.
func TestManifestJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("delivered").Add(12)
	m := Manifest{
		Run:     "sym-HSN(2;Q3) (implicit)",
		Config:  map[string]any{"rate": 0.01},
		Seed:    42,
		Stats:   struct{ Injected int }{12},
		Router:  &RouterStats{CacheHits: 9, CacheMisses: 3},
		Metrics: reg.Snapshot(),
	}
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("manifest is not valid JSON: %v\n%s", err, buf.String())
	}
	for _, key := range []string{"run", "config", "seed", "stats", "router", "metrics"} {
		if _, ok := back[key]; !ok {
			t.Fatalf("manifest missing %q:\n%s", key, buf.String())
		}
	}
	if _, ok := back["percentiles"]; ok {
		t.Fatalf("empty percentiles not omitted:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "\n  ") {
		t.Fatal("manifest should be indented")
	}
}
