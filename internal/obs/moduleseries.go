// Module-aggregated time series. Where TimeSeries keeps one row of state per
// active directed link, ModuleSeries folds every event into the module of
// the node it happened at (the module map is the topo.Modular view of a
// hierarchical network: a node's level-1 cluster). State is therefore
// bounded by the number of modules that carried traffic — never by node or
// link count — which is what keeps a 25M-node sym-HSN(4;Q5) run observable:
// the whole collector is a few ints per active module.
//
// Per module the collector splits link activity into the two classes the
// paper's cost model prices differently: intra-module hops (both endpoints
// in the same module, the "cheap" local links) and inter-module hops (the
// off-module links that dominate ID-cost). Queue depth is tracked as a
// conservation count — enqueues minus transmission starts minus queue
// kills — so it needs no per-link state.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// ModuleSeries samples per-module load every Every cycles. Create with
// NewModuleSeries, attach as (part of) the run's Probe, then Flush and
// export.
type ModuleSeries struct {
	NopProbe
	every    int
	moduleOf func(int64) int64

	mods map[int64]*moduleState

	lastTick   int
	lastSample int
	flushed    bool

	rows []moduleSeriesRow
}

// moduleState is the per-module accumulator: a gauge (queued) plus window
// and run-total counters.
type moduleState struct {
	queued int // packets currently queued at nodes of this module

	winIntraBusy, winInterBusy int64
	winInjected, winDelivered  int64

	intraBusy, interBusy int64
	intraHops, interHops int64
	injected, delivered  int64
}

type moduleSeriesRow struct {
	cycle, width         int
	module               int64
	queued               int
	intraBusy, interBusy int64
	injected, delivered  int64
}

// ModuleLoad summarizes one module over the whole run.
type ModuleLoad struct {
	Module               int64
	IntraHops, InterHops int64 // transmissions within / leaving the module
	IntraBusy, InterBusy int64 // link-busy cycles by class
	Injected, Delivered  int64 // packets sourced at / accepted by the module
}

// NewModuleSeries builds a module-aggregated collector sampling every
// `every` cycles (values < 1 are clamped to 1). moduleOf maps a node id to
// its module id — pass the Module method of a topo.Modular topology, or any
// coarsening of the id space (it must be total: every id the run touches
// gets some module).
func NewModuleSeries(moduleOf func(int64) int64, every int) *ModuleSeries {
	if every < 1 {
		every = 1
	}
	if moduleOf == nil {
		moduleOf = func(int64) int64 { return 0 }
	}
	return &ModuleSeries{every: every, moduleOf: moduleOf, mods: map[int64]*moduleState{}}
}

func (ms *ModuleSeries) mod(u int64) *moduleState {
	m := ms.moduleOf(u)
	st, ok := ms.mods[m]
	if !ok {
		st = &moduleState{}
		ms.mods[m] = st
	}
	return st
}

// Tick snapshots a window whenever the sample period elapses (Probe hook).
func (ms *ModuleSeries) Tick(cycle int) {
	ms.lastTick = cycle
	if cycle > ms.lastSample && cycle%ms.every == 0 {
		ms.snapshot(cycle)
	}
}

// Inject attributes sourced packets to the source's module (Probe hook).
func (ms *ModuleSeries) Inject(_ int, _ int64, src, _ int64, _ bool) {
	st := ms.mod(src)
	st.winInjected++
	st.injected++
}

// Enqueue grows the module's queued gauge (Probe hook).
func (ms *ModuleSeries) Enqueue(_ int, _ int64, at, _ int64, _ int) {
	ms.mod(at).queued++
}

// Hop shrinks the sender module's queued gauge and accumulates busy cycles
// into the intra- or inter-module class (Probe hook).
func (ms *ModuleSeries) Hop(_ int, _ int64, from, to int64, occupy, _ int) {
	st := ms.mod(from)
	st.queued--
	if ms.moduleOf(from) == ms.moduleOf(to) {
		st.winIntraBusy += int64(occupy)
		st.intraBusy += int64(occupy)
		st.intraHops++
	} else {
		st.winInterBusy += int64(occupy)
		st.interBusy += int64(occupy)
		st.interHops++
	}
}

// Deliver attributes accepted packets to the destination's module
// (Probe hook).
func (ms *ModuleSeries) Deliver(_ int, _ int64, node int64, _ int, _ bool) {
	st := ms.mod(node)
	st.winDelivered++
	st.delivered++
}

// Drop keeps the queued gauge honest when a node dies with packets still
// queued (Probe hook).
func (ms *ModuleSeries) Drop(_ int, _ int64, at int64, reason DropReason) {
	if reason == DropQueueKilled {
		ms.mod(at).queued--
	}
}

func (ms *ModuleSeries) snapshot(cycle int) {
	width := cycle - ms.lastSample
	if width <= 0 {
		return
	}
	ids := make([]int64, 0, len(ms.mods))
	for m := range ms.mods {
		ids = append(ids, m)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	for _, m := range ids {
		st := ms.mods[m]
		if st.queued == 0 && st.winIntraBusy == 0 && st.winInterBusy == 0 &&
			st.winInjected == 0 && st.winDelivered == 0 {
			continue
		}
		ms.rows = append(ms.rows, moduleSeriesRow{
			cycle: cycle, width: width, module: m,
			queued: st.queued, intraBusy: st.winIntraBusy, interBusy: st.winInterBusy,
			injected: st.winInjected, delivered: st.winDelivered,
		})
		st.winIntraBusy, st.winInterBusy = 0, 0
		st.winInjected, st.winDelivered = 0, 0
	}
	ms.lastSample = cycle
}

// Flush snapshots the final partial window so the exported busy columns sum
// to the run totals. Call once after the run; further calls are no-ops.
func (ms *ModuleSeries) Flush() {
	if ms.flushed {
		return
	}
	ms.flushed = true
	ms.snapshot(ms.lastTick + 1)
}

// ObservedCycles returns how many cycles the run simulated (as seen by
// Tick).
func (ms *ModuleSeries) ObservedCycles() int { return ms.lastTick + 1 }

// ActiveModules returns how many distinct modules saw at least one event —
// the collector's memory footprint is proportional to this.
func (ms *ModuleSeries) ActiveModules() int { return len(ms.mods) }

// TotalBusy returns the summed busy cycles over both link classes and all
// modules; it matches TimeSeries.TotalBusy on the same run.
func (ms *ModuleSeries) TotalBusy() int64 {
	var sum int64
	for _, st := range ms.mods {
		sum += st.intraBusy + st.interBusy
	}
	return sum
}

// TopModules returns the n busiest modules (by total busy cycles, inter
// breaking ties), hottest first — the "which cluster is the hotspot"
// summary. n <= 0 or n larger than the active-module count returns all.
func (ms *ModuleSeries) TopModules(n int) []ModuleLoad {
	ids := make([]int64, 0, len(ms.mods))
	for m := range ms.mods {
		ids = append(ids, m)
	}
	sort.Slice(ids, func(a, b int) bool {
		sa, sb := ms.mods[ids[a]], ms.mods[ids[b]]
		ta, tb := sa.intraBusy+sa.interBusy, sb.intraBusy+sb.interBusy
		if ta != tb {
			return ta > tb
		}
		if sa.interBusy != sb.interBusy {
			return sa.interBusy > sb.interBusy
		}
		return ids[a] < ids[b]
	})
	if n <= 0 || n > len(ids) {
		n = len(ids)
	}
	out := make([]ModuleLoad, 0, n)
	for _, m := range ids[:n] {
		st := ms.mods[m]
		out = append(out, ModuleLoad{Module: m,
			IntraHops: st.intraHops, InterHops: st.interHops,
			IntraBusy: st.intraBusy, InterBusy: st.interBusy,
			Injected: st.injected, Delivered: st.delivered})
	}
	return out
}

// WriteCSV exports the series: one row per (window, active module) with the
// window-end cycle, window width, module id, the queued-packet gauge at the
// window end, the busy cycles by link class, and the packets injected and
// delivered in the window. Modules idle through a whole window are omitted.
func (ms *ModuleSeries) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "cycle,width,module,queued,intrabusy,interbusy,injected,delivered"); err != nil {
		return err
	}
	for _, r := range ms.rows {
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d,%d,%d\n",
			r.cycle, r.width, r.module, r.queued, r.intraBusy, r.interBusy,
			r.injected, r.delivered); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSONL exports the series as JSON lines ("kind":"moduleagg").
func (ms *ModuleSeries) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, r := range ms.rows {
		if err := enc.Encode(map[string]any{
			"kind": "moduleagg", "cycle": r.cycle, "width": r.width,
			"module": r.module, "queued": r.queued,
			"intrabusy": r.intraBusy, "interbusy": r.interBusy,
			"injected": r.injected, "delivered": r.delivered,
		}); err != nil {
			return err
		}
	}
	return nil
}
