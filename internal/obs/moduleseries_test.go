package obs

// Tests for the module-aggregated collector: event folding into modules,
// the intra/inter link-class split, the queued-gauge conservation
// discipline, TopModules ordering, export formats, and the memory bound
// (state per active module, not per node or link).

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"testing"
)

// TestModuleSeriesFoldsEvents drives a hand-built event sequence and checks
// every aggregate: two modules (ids u/10), one intra-module hop, one
// inter-module hop, injection and delivery attribution, and the queued
// gauge returning to zero once everything delivered.
func TestModuleSeriesFoldsEvents(t *testing.T) {
	ms := NewModuleSeries(func(u int64) int64 { return u / 10 }, 4)

	// Packet 1: injected at 3, hops 3 -> 5 (intra mod 0), 5 -> 12 (inter),
	// delivered at 12 (mod 1).
	ms.Tick(0)
	ms.Inject(0, 1, 3, 12, true)
	ms.Enqueue(0, 1, 3, 5, 0)
	ms.Tick(1)
	ms.Hop(1, 1, 3, 5, 1, 0)
	ms.Enqueue(1, 1, 5, 12, 0)
	ms.Tick(2)
	ms.Hop(2, 1, 5, 12, 4, 0) // off-module link: 4 busy cycles
	ms.Tick(3)
	ms.Deliver(3, 1, 12, 3, true)
	ms.Flush()

	if got := ms.ActiveModules(); got != 2 {
		t.Fatalf("ActiveModules = %d, want 2", got)
	}
	if got := ms.TotalBusy(); got != 5 {
		t.Fatalf("TotalBusy = %d, want 1 intra + 4 inter", got)
	}
	top := ms.TopModules(0)
	if len(top) != 2 || top[0].Module != 0 {
		t.Fatalf("TopModules = %+v, want module 0 hottest", top)
	}
	m0 := top[0]
	if m0.IntraHops != 1 || m0.InterHops != 1 || m0.IntraBusy != 1 || m0.InterBusy != 4 ||
		m0.Injected != 1 || m0.Delivered != 0 {
		t.Fatalf("module 0 aggregates wrong: %+v", m0)
	}
	m1 := top[1]
	if m1.IntraHops != 0 || m1.InterHops != 0 || m1.Injected != 0 || m1.Delivered != 1 {
		t.Fatalf("module 1 aggregates wrong: %+v", m1)
	}
}

// TestModuleSeriesQueueConservation checks the queued gauge: enqueues minus
// hops minus queue kills, per module, with the gauge zero once traffic
// drains and negative never exported mid-run for a well-formed sequence.
func TestModuleSeriesQueueConservation(t *testing.T) {
	ms := NewModuleSeries(func(u int64) int64 { return u % 2 }, 2)
	// Two packets through module 0, one killed in queue.
	ms.Enqueue(0, 1, 2, 4, 0)
	ms.Enqueue(0, 2, 2, 4, 1)
	ms.Tick(1)
	ms.Hop(1, 1, 2, 4, 1, 1)
	ms.Drop(1, 2, 2, DropQueueKilled)
	ms.Drop(1, 3, 2, DropHopLimit) // non-queue drop must not touch the gauge
	ms.Flush()
	var buf bytes.Buffer
	if err := ms.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	// Every exported queued value for module 0 must be the running gauge;
	// after the hop and the kill it is zero, so no row shows a residue.
	sc := bufio.NewScanner(&buf)
	sc.Scan() // header
	for sc.Scan() {
		f := strings.Split(sc.Text(), ",")
		if f[3] != "0" {
			t.Fatalf("queued residue exported: %q", sc.Text())
		}
	}
}

// TestModuleSeriesExports checks both export formats agree with each other
// and with the aggregates: CSV rows parse back to the JSONL rows, busy
// columns sum to TotalBusy, and idle modules are omitted.
func TestModuleSeriesExports(t *testing.T) {
	ms := NewModuleSeries(func(u int64) int64 { return u / 4 }, 2)
	for c := 0; c < 10; c++ {
		ms.Tick(c)
		ms.Enqueue(c, int64(c), int64(c%8), int64((c+1)%8), 0)
		ms.Hop(c, int64(c), int64(c%8), int64((c+1)%8), 1+c%3, 0)
	}
	ms.Flush()

	var csv, jsonl bytes.Buffer
	if err := ms.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if err := ms.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if lines[0] != "cycle,width,module,queued,intrabusy,interbusy,injected,delivered" {
		t.Fatalf("CSV header changed: %q", lines[0])
	}
	var busySum int64
	for _, l := range lines[1:] {
		f := strings.Split(l, ",")
		if len(f) != 8 {
			t.Fatalf("CSV row has %d fields: %q", len(f), l)
		}
		intra, err := strconv.ParseInt(f[4], 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		inter, err := strconv.ParseInt(f[5], 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		busySum += intra + inter
	}
	if busySum != ms.TotalBusy() {
		t.Fatalf("exported busy %d != TotalBusy %d", busySum, ms.TotalBusy())
	}

	var jsonRows int
	dec := json.NewDecoder(&jsonl)
	for dec.More() {
		var row map[string]any
		if err := dec.Decode(&row); err != nil {
			t.Fatal(err)
		}
		if row["kind"] != "moduleagg" {
			t.Fatalf("JSONL row kind = %v", row["kind"])
		}
		jsonRows++
	}
	if jsonRows != len(lines)-1 {
		t.Fatalf("JSONL has %d rows, CSV %d", jsonRows, len(lines)-1)
	}
}

// TestModuleSeriesMemoryBoundedByModules is the memory-bound check: a wide
// id space folded into few modules keeps state per module, and nil moduleOf
// degrades to a single module instead of panicking.
func TestModuleSeriesMemoryBoundedByModules(t *testing.T) {
	ms := NewModuleSeries(func(u int64) int64 { return (u >> 40) & 3 }, 8)
	for i := 0; i < 4096; i++ {
		u := int64(i) << 40 // ids far past int32
		ms.Inject(i, int64(i), u, u+1, true)
		ms.Enqueue(i, int64(i), u, u+1, 0)
		ms.Hop(i, int64(i), u, u+1, 1, 0)
		ms.Deliver(i, int64(i), u+1, 1, true)
	}
	if got := ms.ActiveModules(); got != 4 {
		t.Fatalf("4096 distinct nodes folded into %d modules, want 4", got)
	}

	all := NewModuleSeries(nil, 8)
	all.Inject(0, 1, int64(1)<<40, 2, true)
	if got := all.ActiveModules(); got != 1 {
		t.Fatalf("nil moduleOf should fold everything into one module, got %d", got)
	}
}
