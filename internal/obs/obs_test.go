package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestLatencyHistQuantiles(t *testing.T) {
	h := &LatencyHist{}
	if h.Quantile(0.5) != 0 || h.Count() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	for v := 1; v <= 100; v++ {
		h.Observe(v)
	}
	if h.Count() != 100 || h.Max() != 100 {
		t.Fatalf("count %d max %d", h.Count(), h.Max())
	}
	if h.Mean() != 50.5 {
		t.Fatalf("mean %v, want exact 50.5 (tracked outside buckets)", h.Mean())
	}
	p50, p95, p99, max := h.Summary()
	if !(p50 <= p95 && p95 <= p99 && p99 <= float64(max)) {
		t.Fatalf("quantiles out of order: %v %v %v %d", p50, p95, p99, max)
	}
	// Log-bucket interpolation bounds the error by the bucket width: the
	// median of 1..100 lies in bucket [32,63].
	if p50 < 32 || p50 > 63 {
		t.Fatalf("p50 = %v outside its bucket [32,63]", p50)
	}
	if q := h.Quantile(1); q != 100 {
		t.Fatalf("Quantile(1) = %v, want the max 100", q)
	}
	if q := h.Quantile(0); q > 1 {
		t.Fatalf("Quantile(0) = %v, want the low bucket", q)
	}
	// Out-of-range q is clamped, negative latencies observed as 0.
	if h.Quantile(-1) != h.Quantile(0) || h.Quantile(2) != h.Quantile(1) {
		t.Fatal("q clamping broken")
	}
	h.Observe(-5)
	if h.Quantile(0) != 0 {
		t.Fatal("negative latency should clamp into bucket 0")
	}
	if h.LatencyQuantile(0.5) != h.Quantile(0.5) {
		t.Fatal("LatencyQuantile must alias Quantile")
	}
}

func TestLatencyHistDeliverHookFiltersUnmeasured(t *testing.T) {
	h := &LatencyHist{}
	h.Deliver(10, 1, 0, 7, true)
	h.Deliver(11, 2, 0, 9, false) // warmup traffic: ignored
	if h.Count() != 1 || h.Max() != 7 {
		t.Fatalf("unmeasured delivery leaked into the histogram: %+v", h)
	}
}

func TestLatencyHistWriteText(t *testing.T) {
	h := &LatencyHist{}
	var empty bytes.Buffer
	if err := h.WriteText(&empty); err != nil || !strings.Contains(empty.String(), "no samples") {
		t.Fatalf("empty render: %v %q", err, empty.String())
	}
	for v := 0; v < 40; v++ {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := h.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "#") || !strings.Contains(out, "p95=") {
		t.Fatalf("histogram render missing bars or footer:\n%s", out)
	}
}

func TestMultiComposition(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Fatal("empty Multi must collapse to nil (keeps the simulator fast path)")
	}
	h := &LatencyHist{}
	if Multi(nil, h) != Probe(h) {
		t.Fatal("single-probe Multi must unwrap")
	}
	h2 := &LatencyHist{}
	m := Multi(h, h2)
	m.Deliver(5, 1, 0, 3, true)
	if h.Count() != 1 || h2.Count() != 1 {
		t.Fatal("Multi did not fan out Deliver")
	}
	// Quantile queries delegate to the first histogram-bearing member.
	lq, ok := m.(interface{ LatencyQuantile(float64) float64 })
	if !ok {
		t.Fatal("Multi must expose LatencyQuantile")
	}
	if lq.LatencyQuantile(1) != h.Quantile(1) {
		t.Fatalf("delegated quantile = %v, first member says %v",
			lq.LatencyQuantile(1), h.Quantile(1))
	}
	if noHist := Multi(&Trace{}, &Progress{}); noHist != nil {
		if v := noHist.(interface{ LatencyQuantile(float64) float64 }).LatencyQuantile(0.5); v != 0 {
			t.Fatalf("hist-less Multi quantile = %v, want 0", v)
		}
	}
}

func TestProgressTicker(t *testing.T) {
	var buf bytes.Buffer
	p := &Progress{Every: 100, W: &buf}
	p.Inject(0, 1, 0, 1, true)
	p.Deliver(3, 1, 1, 3, true)
	p.Retransmit(5, 2, 0, 1)
	p.Drop(6, 2, 0, DropTTL)
	p.Drop(7, 3, 0, DropDuplicate) // suppressed copies are not "dropped"
	p.Tick(0)                      // cycle 0 never prints
	p.Tick(50)
	if buf.Len() != 0 {
		t.Fatalf("printed off-period: %q", buf.String())
	}
	p.Tick(100)
	line := buf.String()
	if !strings.Contains(line, "cycle 100") || !strings.Contains(line, "injected 1") ||
		!strings.Contains(line, "delivered 1") || !strings.Contains(line, "dropped 1") ||
		!strings.Contains(line, "retx 1") {
		t.Fatalf("progress line %q", line)
	}
	// Nil writer / zero Every must never panic.
	(&Progress{}).Tick(100)
}

func TestDropReasonStrings(t *testing.T) {
	for r, want := range map[DropReason]string{
		DropTTL: "ttl", DropNoRoute: "no-route", DropHopLimit: "hop-limit",
		DropDeadRouter: "dead-router", DropQueueKilled: "queue-killed",
		DropDuplicate: "duplicate", DropAbandoned: "abandoned",
		DropReason(99): "drop(99)",
	} {
		if r.String() != want {
			t.Fatalf("DropReason(%d) = %q, want %q", r, r.String(), want)
		}
	}
}

func TestTraceSamplingAndJSON(t *testing.T) {
	tr := &Trace{SampleEvery: 2}
	tr.Inject(0, 1, 0, 3, true) // id 1: not sampled
	tr.Inject(0, 2, 1, 3, true) // id 2: sampled
	tr.Hop(1, 2, 1, 2, 1, 0)
	tr.Deliver(2, 2, 3, 2, true)
	tr.Drop(3, 1, 0, DropTTL) // unsampled: ignored
	tr.Fault(5, 0, 1, false, true)
	tr.Retransmit(6, 2, 1, 1)
	tr.Drop(7, 2, 1, DropAbandoned)
	tr.Reroute(8, 3, 2)
	if tr.Len() != 7 {
		t.Fatalf("recorded %d events, want 7 (sampling filter broken)", tr.Len())
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents     []map[string]any `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	// 7 events + 2 process-name metadata records.
	if len(parsed.TraceEvents) != 9 {
		t.Fatalf("JSON holds %d events, want 9", len(parsed.TraceEvents))
	}
	if parsed.TraceEvents[0]["ph"] != "M" {
		t.Fatal("metadata must lead the stream")
	}
}

func TestTimeSeriesSnapshotsAndExports(t *testing.T) {
	// 4-node ring split into modules {0,1} and {2,3}.
	moduleOf := func(u int64) int64 { return u / 2 }
	ts := NewTimeSeries(moduleOf, 10)
	// Cycle 3: packet 7 queues on 0->1 (on-module) and transmits for 2
	// cycles; packet 8 queues on 1->2 (off-module).
	ts.Tick(3)
	ts.Enqueue(3, 7, 0, 1, 1)
	ts.Hop(3, 7, 0, 1, 2, 0)
	ts.Enqueue(3, 8, 1, 2, 1)
	ts.Tick(10) // window [0,10) snapshots
	ts.Hop(12, 8, 1, 2, 1, 0)
	ts.Tick(14)
	ts.Flush() // partial window [10,15)
	if ts.TotalBusy() != 3 {
		t.Fatalf("total busy %d, want 3", ts.TotalBusy())
	}
	if ts.ObservedCycles() != 15 {
		t.Fatalf("observed %d cycles, want 15", ts.ObservedCycles())
	}
	top := ts.TopLinks(1)
	if len(top) != 1 || top[0].U != 0 || top[0].V != 1 || top[0].Busy != 2 || top[0].OffModule {
		t.Fatalf("top link wrong: %+v", top)
	}
	all := ts.TopLinks(0)
	if len(all) != 2 { // only the two links that saw traffic are tracked
		t.Fatalf("TopLinks(0) returned %d links, want the 2 active ones", len(all))
	}
	if ts.ActiveLinks() != 2 {
		t.Fatalf("ActiveLinks = %d, want 2", ts.ActiveLinks())
	}
	var linkCSV, modCSV, jsonl bytes.Buffer
	if err := ts.WriteCSV(&linkCSV); err != nil {
		t.Fatal(err)
	}
	if err := ts.WriteModulesCSV(&modCSV); err != nil {
		t.Fatal(err)
	}
	if err := ts.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(linkCSV.String(), "0,1,false,0,2") {
		t.Fatalf("link CSV missing the 0->1 window row:\n%s", linkCSV.String())
	}
	// The off-module 1->2 queue shows up as module 0's off-module occupancy.
	if !strings.Contains(modCSV.String(), "10,10,0,1,0") {
		t.Fatalf("module CSV missing module 0 occupancy:\n%s", modCSV.String())
	}
	for _, line := range strings.Split(strings.TrimSpace(jsonl.String()), "\n") {
		var row map[string]any
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			t.Fatalf("JSONL line %q: %v", line, err)
		}
		if row["kind"] != "link" && row["kind"] != "module" {
			t.Fatalf("JSONL row without kind: %q", line)
		}
	}
	// Flush is idempotent.
	before := ts.TotalBusy()
	ts.Flush()
	if ts.TotalBusy() != before {
		t.Fatal("second Flush changed totals")
	}
}

func TestTimeSeriesLazyAllocationAndWideIDs(t *testing.T) {
	// No module map, ids far beyond 2^31: the collector allocates link state
	// on first sight and never truncates.
	ts := NewTimeSeries(nil, 5)
	const big = int64(1) << 40
	ts.Enqueue(1, 1, big, big+1, 1)
	ts.Hop(1, 1, big, big+1, 1, 0)
	ts.Flush()
	if ts.ActiveLinks() != 1 || ts.TotalBusy() != 1 {
		t.Fatalf("active %d busy %d, want 1/1", ts.ActiveLinks(), ts.TotalBusy())
	}
	top := ts.TopLinks(0)
	if len(top) != 1 || top[0].U != big || top[0].V != big+1 || top[0].OffModule {
		t.Fatalf("wide-id link load wrong: %+v", top)
	}
}
