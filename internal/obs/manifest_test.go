package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/benchkit"
)

// TestFlattenKeys: every numeric leaf of every manifest section lands under
// its dotted path, live structs and decoded JSON alike.
func TestFlattenKeys(t *testing.T) {
	type stats struct {
		Injected   int     `json:"Injected"`
		AvgLatency float64 `json:"AvgLatency"`
		Name       string  `json:"Name"` // non-numeric: skipped
	}
	r := RouterStats{CacheHits: 75, CacheMisses: 25}
	r.DetourDepth[2] = 9
	m := Manifest{
		Run:         "X",
		Stats:       stats{Injected: 100, AvgLatency: 12.5, Name: "x"},
		Percentiles: map[string]float64{"p99": 31.5},
		Router:      &r,
		Metrics: map[string]any{
			"delivered": 99,
			"latency":   map[string]any{"p95": 30.0},
		},
	}
	flat := m.Flatten()
	want := map[string]float64{
		"stats.Injected":       100,
		"stats.AvgLatency":     12.5,
		"percentiles.p99":      31.5,
		"router.CacheHits":     75,
		"router.CacheMisses":   25,
		"router.CacheHitRate":  0.75,
		"router.DetourDepth.2": 9,
		"metrics.delivered":    99,
		"metrics.latency.p95":  30,
	}
	for k, v := range want {
		if got, ok := flat[k]; !ok || got != v {
			t.Errorf("flat[%q] = %v (present %v), want %v", k, got, ok, v)
		}
	}
	if _, ok := flat["stats.Name"]; ok {
		t.Error("non-numeric leaf stats.Name should not flatten")
	}
}

// TestFlattenEmptyManifest: nothing to flatten is an empty map, not a panic.
func TestFlattenEmptyManifest(t *testing.T) {
	if flat := (Manifest{Run: "empty"}).Flatten(); len(flat) != 0 {
		t.Fatalf("empty manifest flattened to %v", flat)
	}
}

// TestManifestRoundTrip: WriteJSON then ReadManifestFile preserves env and
// samples, and the loaded manifest (stats now a map) flattens to the same
// keys as the live one.
func TestManifestRoundTrip(t *testing.T) {
	env := benchkit.Env{GoVersion: "go1.22", GOOS: "linux", GOARCH: "amd64", GOMAXPROCS: 4, NumCPU: 4, CPU: "test"}
	m := Manifest{
		Run:    "HSN(2;Q3)",
		Config: map[string]any{"ratio": 4},
		Seed:   7,
		Stats:  map[string]any{"AvgLatency": 12.5},
		Env:    &env,
		Samples: []map[string]float64{
			{"stats.AvgLatency": 12.4},
			{"stats.AvgLatency": 12.6},
		},
	}
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "m.json")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifestFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Run != m.Run || got.Seed != m.Seed {
		t.Fatalf("round trip lost identity: %+v", got)
	}
	if got.Env == nil || *got.Env != env {
		t.Fatalf("round trip lost env: %+v", got.Env)
	}
	if len(got.Samples) != 2 || got.Samples[1]["stats.AvgLatency"] != 12.6 {
		t.Fatalf("round trip lost samples: %+v", got.Samples)
	}
	if flat := got.Flatten(); flat["stats.AvgLatency"] != 12.5 {
		t.Fatalf("loaded manifest flattens to %v", flat)
	}
	if _, err := ReadManifestFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file should error")
	}
}
