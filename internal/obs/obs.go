// Package obs is the observability layer of the packet simulators: a Probe
// interface that internal/netsim invokes at every interesting event of a run
// (injection, queueing, link transmission, delivery, drops, retransmission,
// topology faults, and routing-table rebuilds) plus a set of built-in
// collectors — log-bucketed latency histograms (LatencyHist), per-link time
// series with CSV/JSONL export (TimeSeries), module-aggregated time series
// whose memory is bounded by module count rather than node count
// (ModuleSeries), a sampled packet-lifecycle tracer emitting Chrome
// trace-event JSON (Trace), a live progress ticker (Progress), and a
// concurrency-safe metrics registry for long-running processes (Registry).
//
// The layer is zero-overhead when disabled: netsim guards every hook with a
// nil check, so an uninstrumented run executes no obs code at all and
// reproduces its statistics bit for bit. Probes must not mutate simulator
// state; they only watch. Collectors are not safe for concurrent use — one
// collector instance belongs to one run — except the Registry, which is
// explicitly built for concurrent writers.
//
// Node ids are int64 throughout: the implicit simulators route id spaces
// far beyond 2^31 (a sym-HSN(4;Q5) has 25,165,824 nodes today and the model
// admits larger instances), so probe events carry the full id width and
// never truncate.
//
// # Probe semantics on implicit runs
//
// netsim.RunImplicit and RunImplicitFaulty allocate link FIFOs lazily: a
// directed link exists in memory only while it holds or recently carried a
// packet. The probe contract is unchanged — Enqueue fires when a packet
// joins the FIFO of a directed link (allocating it if this is the link's
// first use), and Hop fires when the link starts transmitting — so
// collectors cannot tell a lazily allocated link from a preallocated one.
// Two differences are observable: packet ids count every injection (there
// are no retransmissions, so ids are unique per packet, not per flow), and
// Reroute never fires (implicit runs own no routing tables to rebuild —
// fault repair happens inside the router and is reported through
// RouterStats instead).
package obs

import (
	"fmt"
	"io"
	"os"
	"time"
)

// DropReason classifies why the simulator discarded a packet copy. Most
// reasons only occur under fault injection (netsim.RunFaulty /
// RunImplicitFaulty); fault-free runs never drop.
type DropReason uint8

const (
	// DropTTL: the copy exhausted its detour budget around dead components.
	DropTTL DropReason = iota
	// DropNoRoute: no live neighbor existed to forward or detour to.
	DropNoRoute
	// DropHopLimit: the livelock watchdog killed a copy that hopped too long.
	DropHopLimit
	// DropDeadRouter: the copy arrived at a node that had died in transit.
	DropDeadRouter
	// DropQueueKilled: the copy sat queued at a node when the node died.
	DropQueueKilled
	// DropDuplicate: the copy reached a destination that had already
	// accepted another copy of the same flow (suppressed, not an error).
	DropDuplicate
	// DropAbandoned: the source gave up on the flow (MaxRetries exceeded or
	// the drain deadline hit). This is the terminal event of a lost flow.
	DropAbandoned
)

func (r DropReason) String() string {
	switch r {
	case DropTTL:
		return "ttl"
	case DropNoRoute:
		return "no-route"
	case DropHopLimit:
		return "hop-limit"
	case DropDeadRouter:
		return "dead-router"
	case DropQueueKilled:
		return "queue-killed"
	case DropDuplicate:
		return "duplicate"
	case DropAbandoned:
		return "abandoned"
	}
	return fmt.Sprintf("drop(%d)", uint8(r))
}

// Probe receives simulator events. All hooks run synchronously inside the
// simulation loop, so implementations should be cheap; heavy rendering
// belongs after the run. Packet ids are stable per run: in netsim.Run and
// RunImplicit every injected packet gets a fresh id; in netsim.RunFaulty the
// id is the flow sequence number, shared by the original transmission and
// all its retransmitted copies.
type Probe interface {
	// Tick fires once per simulated cycle, before that cycle's events.
	Tick(cycle int)
	// Inject fires when a node sources a new packet (not retransmissions).
	Inject(cycle int, id int64, src, dst int64, measured bool)
	// Enqueue fires when a packet joins the FIFO of the directed link
	// at -> next; qlen is the queue length including the new packet.
	Enqueue(cycle int, id int64, at, next int64, qlen int)
	// Hop fires when the link from -> to starts transmitting a packet;
	// occupy is how many cycles the link stays busy (period * flits) and
	// qlen the queue length left behind.
	Hop(cycle int, id int64, from, to int64, occupy, qlen int)
	// Deliver fires when the destination accepts a packet; latency is in
	// cycles since injection.
	Deliver(cycle int, id int64, node int64, latency int, measured bool)
	// Drop fires when a copy (or, for DropAbandoned, a whole flow) is
	// discarded at node `at`.
	Drop(cycle int, id int64, at int64, reason DropReason)
	// Retransmit fires when a source re-sends an undelivered flow; attempt
	// counts retransmissions so far (1 = first retry).
	Retransmit(cycle int, id int64, src int64, attempt int)
	// Fault fires on topology changes: node is true for node faults (v is
	// then -1), down is true for a failure and false for a repair.
	Fault(cycle int, u, v int64, node, down bool)
	// Reroute fires when a per-destination next-hop table is rebuilt after
	// a topology-change notification; lag is the cycles elapsed between the
	// first change the table missed and this rebuild. Implicit runs never
	// fire it (no tables exist); router-side repair shows up in RouterStats.
	Reroute(cycle int, dst int64, lag int)
}

// RouterObserver is the optional Probe extension that receives the run's
// final RouterStats snapshot (suffix-cache and detour telemetry of an
// algebraic router). The implicit simulators call it once, after the last
// cycle, when the run's Router exposes stats; obs.Multi forwards it to every
// member that implements it.
type RouterObserver interface {
	ObserveRouter(rs RouterStats)
}

// NopProbe implements every Probe hook as a no-op; embed it to build
// collectors that only care about a few events.
type NopProbe struct{}

func (NopProbe) Tick(int)                               {}
func (NopProbe) Inject(int, int64, int64, int64, bool)  {}
func (NopProbe) Enqueue(int, int64, int64, int64, int)  {}
func (NopProbe) Hop(int, int64, int64, int64, int, int) {}
func (NopProbe) Deliver(int, int64, int64, int, bool)   {}
func (NopProbe) Drop(int, int64, int64, DropReason)     {}
func (NopProbe) Retransmit(int, int64, int64, int)      {}
func (NopProbe) Fault(int, int64, int64, bool, bool)    {}
func (NopProbe) Reroute(int, int64, int)                {}

// multi fans every event out to a list of probes, in order.
type multi []Probe

// Multi combines probes into one; nil entries are skipped. It returns nil
// when nothing remains (so the simulator keeps its fast path) and the probe
// itself when only one remains.
func Multi(probes ...Probe) Probe {
	var ps multi
	for _, p := range probes {
		if p != nil {
			ps = append(ps, p)
		}
	}
	switch len(ps) {
	case 0:
		return nil
	case 1:
		return ps[0]
	}
	return ps
}

func (m multi) Tick(cycle int) {
	for _, p := range m {
		p.Tick(cycle)
	}
}

func (m multi) Inject(cycle int, id int64, src, dst int64, measured bool) {
	for _, p := range m {
		p.Inject(cycle, id, src, dst, measured)
	}
}

func (m multi) Enqueue(cycle int, id int64, at, next int64, qlen int) {
	for _, p := range m {
		p.Enqueue(cycle, id, at, next, qlen)
	}
}

func (m multi) Hop(cycle int, id int64, from, to int64, occupy, qlen int) {
	for _, p := range m {
		p.Hop(cycle, id, from, to, occupy, qlen)
	}
}

func (m multi) Deliver(cycle int, id int64, node int64, latency int, measured bool) {
	for _, p := range m {
		p.Deliver(cycle, id, node, latency, measured)
	}
}

func (m multi) Drop(cycle int, id int64, at int64, reason DropReason) {
	for _, p := range m {
		p.Drop(cycle, id, at, reason)
	}
}

func (m multi) Retransmit(cycle int, id int64, src int64, attempt int) {
	for _, p := range m {
		p.Retransmit(cycle, id, src, attempt)
	}
}

func (m multi) Fault(cycle int, u, v int64, node, down bool) {
	for _, p := range m {
		p.Fault(cycle, u, v, node, down)
	}
}

func (m multi) Reroute(cycle int, dst int64, lag int) {
	for _, p := range m {
		p.Reroute(cycle, dst, lag)
	}
}

// ObserveRouter forwards the router snapshot to every member that cares
// (RouterObserver).
func (m multi) ObserveRouter(rs RouterStats) {
	for _, p := range m {
		if o, ok := p.(RouterObserver); ok {
			o.ObserveRouter(rs)
		}
	}
}

// LatencyQuantile lets a combined probe answer quantile queries (the hook
// netsim uses to surface p50/p95/p99 in Stats): the first member that
// carries a latency histogram answers; 0 when none does.
func (m multi) LatencyQuantile(q float64) float64 {
	for _, p := range m {
		if h, ok := p.(interface{ LatencyQuantile(float64) float64 }); ok {
			return h.LatencyQuantile(q)
		}
	}
	return 0
}

// Progress is a live ticker: every Every cycles it writes one status line
// (cycle, injected/delivered/dropped/retransmitted counts, the delivered-
// packet rate over the last window, and — when Total is set — an ETA) to W,
// which defaults to os.Stderr so an uninstrumented CLI run just works and a
// test can capture the output by injecting a buffer. Every <= 0 disables
// printing entirely.
type Progress struct {
	NopProbe
	Every int
	// W receives the status lines; nil means os.Stderr.
	W io.Writer
	// Total is the expected cycle count of the run (warmup + measurement);
	// when positive, each line carries "cycle c/Total" and an ETA
	// extrapolated from the wall-clock pace of the last window. Runs may
	// drain past Total, at which point the ETA column reads "drain".
	Total int

	cycle                              int
	injected, delivered, dropped, retx int64
	lastPrint                          time.Time
	lastDelivered                      int64
	now                                func() time.Time // test hook; nil = time.Now
}

func (p *Progress) Tick(cycle int) {
	p.cycle = cycle
	if p.Every <= 0 || cycle == 0 || cycle%p.Every != 0 {
		return
	}
	w := p.W
	if w == nil {
		w = os.Stderr
	}
	clock := p.now
	if clock == nil {
		clock = time.Now
	}
	t := clock()

	cycleCol := fmt.Sprintf("cycle %d", cycle)
	if p.Total > 0 {
		cycleCol = fmt.Sprintf("cycle %d/%d", cycle, p.Total)
	}
	rateCol, etaCol := "", ""
	if !p.lastPrint.IsZero() {
		if dt := t.Sub(p.lastPrint).Seconds(); dt > 0 {
			rateCol = fmt.Sprintf(" (%.0f/s)", float64(p.delivered-p.lastDelivered)/dt)
			if p.Total > 0 {
				switch {
				case cycle >= p.Total:
					etaCol = " eta drain"
				default:
					// Cycles per wall second over the window just elapsed.
					eta := time.Duration(float64(p.Total-cycle) / (float64(p.Every) / dt) * float64(time.Second))
					etaCol = " eta " + eta.Round(time.Second).String()
				}
			}
		}
	}
	fmt.Fprintf(w, "%s: injected %d delivered %d%s dropped %d retx %d%s\n",
		cycleCol, p.injected, p.delivered, rateCol, p.dropped, p.retx, etaCol)
	p.lastPrint, p.lastDelivered = t, p.delivered
}

func (p *Progress) Inject(int, int64, int64, int64, bool) { p.injected++ }

func (p *Progress) Deliver(int, int64, int64, int, bool) { p.delivered++ }

func (p *Progress) Drop(_ int, _ int64, _ int64, reason DropReason) {
	if reason != DropDuplicate {
		p.dropped++
	}
}

func (p *Progress) Retransmit(int, int64, int64, int) { p.retx++ }
