package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestLiveRingBoundAndEviction is the ring property test: for a grid of
// capacities and push counts, the ring never exceeds its capacity, keeps
// exactly the newest samples, and reports them oldest-to-newest with
// contiguous sequence numbers.
func TestLiveRingBoundAndEviction(t *testing.T) {
	for _, cap := range []int{1, 2, 3, 7, 64} {
		for _, pushes := range []int{0, 1, cap - 1, cap, cap + 1, 3*cap + 2} {
			if pushes < 0 {
				continue
			}
			s := NewLiveServer(NewRegistry(), cap)
			for i := 0; i < pushes; i++ {
				s.Sample(i * 10) // cycle encodes the push index
			}
			hist := s.History()
			want := pushes
			if want > cap {
				want = cap
			}
			if len(hist) != want {
				t.Fatalf("cap=%d pushes=%d: history has %d samples, want %d", cap, pushes, len(hist), want)
			}
			for i, sm := range hist {
				wantSeq := int64(pushes - want + i + 1)
				if sm.Seq != wantSeq {
					t.Fatalf("cap=%d pushes=%d: history[%d].Seq = %d, want %d (oldest-to-newest, newest kept)",
						cap, pushes, i, sm.Seq, wantSeq)
				}
				if wantCycle := int(wantSeq-1) * 10; sm.Cycle != wantCycle {
					t.Fatalf("cap=%d pushes=%d: history[%d].Cycle = %d, want %d", cap, pushes, i, sm.Cycle, wantCycle)
				}
			}
			if s.Samples() != int64(pushes) {
				t.Fatalf("cap=%d pushes=%d: Samples() = %d", cap, pushes, s.Samples())
			}
			latest, ok := s.Latest()
			if pushes == 0 {
				if ok {
					t.Fatalf("cap=%d: Latest() reported a sample on an empty ring", cap)
				}
			} else if !ok || latest.Seq != int64(pushes) {
				t.Fatalf("cap=%d pushes=%d: Latest() = (%v, %v), want seq %d", cap, pushes, latest.Seq, ok, pushes)
			}
		}
	}
}

// TestSamplerCadence: the probe samples on cycle 0 and then every `every`
// cycles, nothing in between.
func TestSamplerCadence(t *testing.T) {
	s := NewLiveServer(NewRegistry(), 16)
	p := s.Sampler(3)
	for c := 0; c <= 10; c++ {
		p.Tick(c)
	}
	if got := s.Samples(); got != 4 { // cycles 0, 3, 6, 9
		t.Fatalf("Sampler(3) over cycles 0..10 took %d samples, want 4", got)
	}
	hist := s.History()
	for i, wantCycle := range []int{0, 3, 6, 9} {
		if hist[i].Cycle != wantCycle {
			t.Fatalf("sample %d at cycle %d, want %d", i, hist[i].Cycle, wantCycle)
		}
	}
	// every < 1 clamps to 1 rather than dividing by zero.
	s2 := NewLiveServer(NewRegistry(), 16)
	p2 := s2.Sampler(0)
	for c := 0; c < 5; c++ {
		p2.Tick(c)
	}
	if got := s2.Samples(); got != 5 {
		t.Fatalf("Sampler(0) took %d samples over 5 cycles, want 5", got)
	}
}

// TestRouterSourceSampled: an attached RouterSource's counters ride along in
// each sample.
func TestRouterSourceSampled(t *testing.T) {
	s := NewLiveServer(NewRegistry(), 4)
	rs := RouterStats{CacheHits: 90, CacheMisses: 10}
	s.RouterSource(func() RouterStats { return rs })
	s.Sample(0)
	sm, _ := s.Latest()
	if sm.Router == nil || sm.Router.CacheHits != 90 {
		t.Fatalf("sample did not capture router stats: %+v", sm.Router)
	}
	if rate := sm.Router.CacheHitRate(); rate != 0.9 {
		t.Fatalf("CacheHitRate = %v, want 0.9", rate)
	}
	s.RouterSource(nil)
	s.Sample(1)
	if sm, _ := s.Latest(); sm.Router != nil {
		t.Fatal("detached RouterSource still sampled")
	}
}

// TestLiveHTTPEndpoints exercises the mux: dashboard HTML, snapshot before
// and after samples exist, and the whole-ring form.
func TestLiveHTTPEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("injected").Add(5)
	s := NewLiveServer(reg, 8)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		return resp, buf.Bytes()
	}

	resp, body := get("/")
	if resp.StatusCode != http.StatusOK || !strings.Contains(resp.Header.Get("Content-Type"), "text/html") {
		t.Fatalf("dashboard: status %d, type %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	if !bytes.Contains(body, []byte("EventSource")) {
		t.Fatal("dashboard HTML does not wire up the SSE stream")
	}

	if resp, _ := get("/snapshot"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("empty-ring snapshot: status %d, want 404", resp.StatusCode)
	}

	s.Sample(100)
	s.Sample(200)
	resp, body = get("/snapshot")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: status %d", resp.StatusCode)
	}
	var sm LiveSample
	if err := json.Unmarshal(body, &sm); err != nil {
		t.Fatalf("snapshot is not a LiveSample: %v\n%s", err, body)
	}
	if sm.Seq != 2 || sm.Cycle != 200 {
		t.Fatalf("snapshot = seq %d cycle %d, want the latest (2, 200)", sm.Seq, sm.Cycle)
	}
	if v, ok := sm.Metrics["injected"].(float64); !ok || v != 5 {
		t.Fatalf("snapshot metrics lost the registry counter: %v", sm.Metrics)
	}

	resp, body = get("/snapshot?all=1")
	var ring []LiveSample
	if err := json.Unmarshal(body, &ring); err != nil || len(ring) != 2 {
		t.Fatalf("?all=1 returned %d samples (err %v), want 2", len(ring), err)
	}

	if resp, _ := get("/debug/vars"); resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/vars: status %d", resp.StatusCode)
	}
	if resp, _ := get("/no-such-page"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path: status %d, want 404", resp.StatusCode)
	}
}

// readSSE reads SSE events from path until n events arrive or the deadline
// passes, returning the decoded samples.
func readSSE(t *testing.T, url string, n int) []LiveSample {
	t.Helper()
	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type %q", ct)
	}
	var out []LiveSample
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	for sc.Scan() && len(out) < n {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var sm LiveSample
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &sm); err != nil {
			t.Fatalf("bad SSE payload: %v\n%s", err, line)
		}
		out = append(out, sm)
	}
	return out
}

// TestStreamReplayThenLive: a subscriber first receives the ring history,
// then new samples, with no gap and no duplicate at the seam.
func TestStreamReplayThenLive(t *testing.T) {
	s := NewLiveServer(NewRegistry(), 8)
	for c := 0; c < 3; c++ {
		s.Sample(c)
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	done := make(chan []LiveSample)
	go func() { done <- readSSE(t, srv.URL+"/stream", 5) }()
	// Give the subscriber a moment to attach, then produce two more samples.
	time.Sleep(50 * time.Millisecond)
	s.Sample(3)
	s.Sample(4)
	got := <-done
	if len(got) != 5 {
		t.Fatalf("stream delivered %d samples, want 5", len(got))
	}
	for i, sm := range got {
		if sm.Seq != int64(i+1) {
			t.Fatalf("stream sample %d has seq %d, want %d (no gaps, no duplicates across the replay seam)", i, sm.Seq, i+1)
		}
	}
}

// TestLiveServerHammer abuses the server from many goroutines at once —
// registry writers, a fast sampler, and concurrent SSE readers — so `go test
// -race` can catch any unsynchronized state. Readers assert that sequence
// numbers only move forward (slow consumers may skip samples, never repeat
// or reorder them) and that the injected counter is monotone.
func TestLiveServerHammer(t *testing.T) {
	reg := NewRegistry()
	injected := reg.Counter("injected")
	queued := reg.Gauge("queued")
	lat := reg.Hist("latency")
	s := NewLiveServer(reg, 32)
	s.RouterSource(func() RouterStats { return RouterStats{CacheHits: uint64(injected.Value())} })
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				injected.Inc()
				queued.Set(int64(i % 100))
				lat.Observe(int64(i%50 + 1))
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for c := 0; !stop.Load(); c++ {
			s.Sample(c)
		}
	}()

	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			got := readSSE(t, srv.URL+"/stream", 40)
			var lastSeq int64
			var lastInjected float64
			for _, sm := range got {
				if sm.Seq <= lastSeq {
					t.Errorf("seq went backwards: %d after %d", sm.Seq, lastSeq)
					return
				}
				lastSeq = sm.Seq
				if v, ok := sm.Metrics["injected"].(float64); ok {
					if v < lastInjected {
						t.Errorf("injected counter shrank: %v after %v", v, lastInjected)
						return
					}
					lastInjected = v
				}
			}
		}()
	}
	readers.Wait()
	stop.Store(true)
	wg.Wait()

	// Interleave Sample with History/Latest readers one more time, directly.
	for i := 0; i < 100; i++ {
		s.Sample(i)
		if h := s.History(); len(h) > 32 {
			t.Fatalf("ring overflowed its capacity: %d", len(h))
		}
	}
}

// TestProgressRateAndETA drives the ticker with a fake clock and captures
// its output: the delivered-rate column comes from the window's wall time,
// the ETA from the remaining cycles at the current pace, and a run draining
// past Total reports "eta drain".
func TestProgressRateAndETA(t *testing.T) {
	var buf bytes.Buffer
	base := time.Unix(1000, 0)
	now := base
	p := &Progress{Every: 100, Total: 300, W: &buf, now: func() time.Time { return now }}

	deliverN := func(n int) {
		for i := 0; i < n; i++ {
			p.Inject(0, 0, 0, 0, true)
			p.Deliver(0, 0, 0, 1, true)
		}
	}

	deliverN(50)
	p.Tick(100) // first window: no previous stamp, so no rate/ETA yet
	now = now.Add(2 * time.Second)
	deliverN(100)
	p.Tick(200) // 100 delivered over 2s = 50/s; 100 cycles left at 100cyc/2s = 2s ETA
	now = now.Add(2 * time.Second)
	deliverN(10)
	p.Tick(300) // at Total: draining

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d progress lines, want 3:\n%s", len(lines), buf.String())
	}
	if !strings.Contains(lines[0], "cycle 100/300") || strings.Contains(lines[0], "/s") {
		t.Errorf("first line should name cycle 100/300 and carry no rate yet: %q", lines[0])
	}
	if !strings.Contains(lines[1], "delivered 150 (50/s)") {
		t.Errorf("second line should report 50/s over the 2s window: %q", lines[1])
	}
	if !strings.Contains(lines[1], "eta 2s") {
		t.Errorf("second line should extrapolate eta 2s: %q", lines[1])
	}
	if !strings.Contains(lines[2], "eta drain") {
		t.Errorf("line at cycle == Total should read \"eta drain\": %q", lines[2])
	}
	for _, l := range lines {
		if !strings.Contains(l, "injected") || !strings.Contains(l, "dropped 0 retx 0") {
			t.Errorf("counter columns missing: %q", l)
		}
	}
}

// TestProgressDefaultWriter: W == nil must not panic (it writes to stderr).
func TestProgressDefaultWriter(t *testing.T) {
	p := &Progress{Every: 1000000} // large Every: Tick(1) prints nothing
	p.Tick(1)
}
