// Log-bucketed latency histogram. Buckets grow as powers of two, so the
// collector costs O(1) per delivery and ~64 counters total regardless of how
// heavy the tail is — the right trade for a hot simulation loop. Quantiles
// are interpolated linearly inside a bucket, which bounds the relative error
// of a reported quantile by the bucket width (a factor of 2 at worst, far
// less in practice because latencies cluster in few buckets).
package obs

import (
	"fmt"
	"io"
	"math/bits"
	"strings"
)

// LatencyHist accumulates the delivery-latency distribution of measured
// packets. The zero value is ready to use; attach it as (part of) a run's
// Probe and read quantiles afterwards. netsim surfaces Quantile(0.50/0.95/
// 0.99) in Stats when a run's probe carries one of these.
type LatencyHist struct {
	NopProbe
	count []int64 // count[b] holds latencies with bit length b
	n     int64
	sum   int64
	max   int
}

// Deliver records the latency of measured deliveries (Probe hook).
func (h *LatencyHist) Deliver(_ int, _ int64, _ int64, latency int, measured bool) {
	if !measured {
		return
	}
	h.Observe(latency)
}

// Observe adds one latency sample (cycles) directly.
func (h *LatencyHist) Observe(latency int) {
	if latency < 0 {
		latency = 0
	}
	b := bits.Len(uint(latency)) // bucket b covers [2^(b-1), 2^b - 1]; 0 -> bucket 0
	for len(h.count) <= b {
		h.count = append(h.count, 0)
	}
	h.count[b]++
	h.n++
	h.sum += int64(latency)
	if latency > h.max {
		h.max = latency
	}
}

// Count returns how many samples were observed.
func (h *LatencyHist) Count() int64 { return h.n }

// Max returns the largest observed latency.
func (h *LatencyHist) Max() int { return h.max }

// Mean returns the exact mean of the observed samples (the sum is tracked
// outside the buckets, so this does not suffer bucketing error).
func (h *LatencyHist) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// bucketBounds returns the inclusive value range covered by bucket b.
func bucketBounds(b int) (lo, hi int) {
	if b == 0 {
		return 0, 0
	}
	return 1 << (b - 1), 1<<b - 1
}

// Quantile returns the q-quantile (q in [0,1]) of the observed latencies,
// interpolated within the log bucket that holds the target rank. 0 when no
// samples were observed.
func (h *LatencyHist) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.n-1) // 0-based fractional rank
	var before int64
	for b, c := range h.count {
		if c == 0 {
			continue
		}
		if rank < float64(before+c) {
			lo, hi := bucketBounds(b)
			if hi > h.max {
				hi = h.max // the top bucket ends at the observed max
			}
			if c == 1 || hi == lo {
				return float64(lo)
			}
			frac := (rank - float64(before)) / float64(c-1)
			return float64(lo) + frac*float64(hi-lo)
		}
		before += c
	}
	return float64(h.max)
}

// LatencyQuantile is the structural hook netsim looks for when filling the
// quantile fields of Stats; it is an alias of Quantile.
func (h *LatencyHist) LatencyQuantile(q float64) float64 { return h.Quantile(q) }

// Summary returns the headline tail statistics.
func (h *LatencyHist) Summary() (p50, p95, p99 float64, max int) {
	return h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.max
}

// WriteText renders the histogram as ASCII bars, one line per non-empty
// bucket, plus a quantile footer.
func (h *LatencyHist) WriteText(w io.Writer) error {
	if h.n == 0 {
		_, err := fmt.Fprintln(w, "latency histogram: no samples")
		return err
	}
	var peak int64
	for _, c := range h.count {
		if c > peak {
			peak = c
		}
	}
	for b, c := range h.count {
		if c == 0 {
			continue
		}
		lo, hi := bucketBounds(b)
		if hi > h.max {
			hi = h.max
		}
		bar := int(40 * c / peak)
		if bar == 0 {
			bar = 1
		}
		if _, err := fmt.Fprintf(w, "  [%5d,%5d] %-40s %d\n", lo, hi, strings.Repeat("#", bar), c); err != nil {
			return err
		}
	}
	p50, p95, p99, max := h.Summary()
	_, err := fmt.Fprintf(w, "  n=%d mean=%.2f p50=%.1f p95=%.1f p99=%.1f max=%d\n",
		h.n, h.Mean(), p50, p95, p99, max)
	return err
}
