// Sampled packet-lifecycle tracing in the Chrome trace-event JSON format
// (load the output in chrome://tracing or https://ui.perfetto.dev). Each
// sampled packet becomes one nestable async track ("b" at injection, "n"
// instants per queueing/forwarding event, "e" at delivery or abandonment),
// each transmission of a sampled packet becomes a complete ("X") slice on
// the sending node's row, and fault/repair/reroute events land on a
// dedicated fault-timeline process so reroute and retransmission storms can
// be read against the fault schedule. Simulated cycles map 1:1 to trace
// microseconds.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// Pids of the two trace processes.
const (
	tracePidPackets = 0 // packet lifecycle + per-node link activity
	tracePidFaults  = 1 // fault/repair/reroute timeline
)

// traceEvent is one Chrome trace-event object.
type traceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	Ts    int64          `json:"ts"`
	Dur   int64          `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int64          `json:"tid"`
	ID    int64          `json:"id,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// Trace collects Chrome trace events for a deterministic sample of packets:
// a packet (flow) is traced when its id is a multiple of SampleEvery
// (SampleEvery <= 1 traces everything). Fault-timeline events are always
// recorded. The zero value traces every packet.
type Trace struct {
	NopProbe
	// SampleEvery traces every SampleEvery-th packet id (<= 1 = all).
	SampleEvery int

	events []traceEvent
}

func (t *Trace) sampled(id int64) bool {
	return t.SampleEvery <= 1 || id%int64(t.SampleEvery) == 0
}

// Len returns how many trace events were recorded.
func (t *Trace) Len() int { return len(t.events) }

// Inject opens the packet's async track (Probe hook).
func (t *Trace) Inject(cycle int, id int64, src, dst int64, measured bool) {
	if !t.sampled(id) {
		return
	}
	t.events = append(t.events, traceEvent{
		Name: fmt.Sprintf("pkt %d", id), Cat: "packet", Ph: "b",
		Ts: int64(cycle), Pid: tracePidPackets, Tid: src, ID: id,
		Args: map[string]any{"src": src, "dst": dst, "measured": measured},
	})
}

// Enqueue marks the packet joining a link FIFO (Probe hook).
func (t *Trace) Enqueue(cycle int, id int64, at, next int64, qlen int) {
	if !t.sampled(id) {
		return
	}
	t.events = append(t.events, traceEvent{
		Name: fmt.Sprintf("pkt %d", id), Cat: "packet", Ph: "n",
		Ts: int64(cycle), Pid: tracePidPackets, Tid: at, ID: id,
		Args: map[string]any{"event": "enqueue", "at": at, "next": next, "queue": qlen},
	})
}

// Hop records the link transmission as a slice on the sender's row
// (Probe hook).
func (t *Trace) Hop(cycle int, id int64, from, to int64, occupy, _ int) {
	if !t.sampled(id) {
		return
	}
	t.events = append(t.events, traceEvent{
		Name: fmt.Sprintf("%d->%d", from, to), Cat: "link", Ph: "X",
		Ts: int64(cycle), Dur: int64(occupy), Pid: tracePidPackets, Tid: from,
		Args: map[string]any{"pkt": id},
	})
}

// Deliver closes the packet's async track (Probe hook).
func (t *Trace) Deliver(cycle int, id int64, node int64, latency int, measured bool) {
	if !t.sampled(id) {
		return
	}
	t.events = append(t.events, traceEvent{
		Name: fmt.Sprintf("pkt %d", id), Cat: "packet", Ph: "e",
		Ts: int64(cycle), Pid: tracePidPackets, Tid: node, ID: id,
		Args: map[string]any{"latency": latency, "measured": measured},
	})
}

// Drop records copy losses as instants and closes the track when the whole
// flow is abandoned (Probe hook).
func (t *Trace) Drop(cycle int, id int64, at int64, reason DropReason) {
	if !t.sampled(id) {
		return
	}
	if reason == DropAbandoned {
		t.events = append(t.events, traceEvent{
			Name: fmt.Sprintf("pkt %d", id), Cat: "packet", Ph: "e",
			Ts: int64(cycle), Pid: tracePidPackets, Tid: at, ID: id,
			Args: map[string]any{"dropped": reason.String()},
		})
		return
	}
	t.events = append(t.events, traceEvent{
		Name: fmt.Sprintf("pkt %d", id), Cat: "packet", Ph: "n",
		Ts: int64(cycle), Pid: tracePidPackets, Tid: at, ID: id,
		Args: map[string]any{"event": "drop", "reason": reason.String(), "at": at},
	})
}

// Retransmit marks a source-side retry on the packet's track (Probe hook).
func (t *Trace) Retransmit(cycle int, id int64, src int64, attempt int) {
	if !t.sampled(id) {
		return
	}
	t.events = append(t.events, traceEvent{
		Name: fmt.Sprintf("pkt %d", id), Cat: "packet", Ph: "n",
		Ts: int64(cycle), Pid: tracePidPackets, Tid: src, ID: id,
		Args: map[string]any{"event": "retransmit", "attempt": attempt},
	})
}

// Fault records topology changes on the fault-timeline process (Probe hook).
func (t *Trace) Fault(cycle int, u, v int64, node, down bool) {
	what := "link"
	target := fmt.Sprintf("%d-%d", u, v)
	if node {
		what = "node"
		target = fmt.Sprintf("%d", u)
	}
	verb := "down"
	if !down {
		verb = "repair"
	}
	t.events = append(t.events, traceEvent{
		Name: fmt.Sprintf("%s %s %s", what, target, verb), Cat: "fault",
		Ph: "i", Scope: "g", Ts: int64(cycle), Pid: tracePidFaults, Tid: 0,
	})
}

// Reroute records routing-table rebuilds on the fault timeline (Probe hook).
func (t *Trace) Reroute(cycle int, dst int64, lag int) {
	t.events = append(t.events, traceEvent{
		Name: fmt.Sprintf("reroute dst %d", dst), Cat: "reroute",
		Ph: "i", Scope: "t", Ts: int64(cycle), Pid: tracePidFaults, Tid: 1,
		Args: map[string]any{"lag": lag},
	})
}

// WriteJSON emits the collected events as a Chrome trace-event file:
// {"traceEvents": [...]} with metadata naming the two processes.
func (t *Trace) WriteJSON(w io.Writer) error {
	meta := []traceEvent{
		{Name: "process_name", Ph: "M", Pid: tracePidPackets,
			Args: map[string]any{"name": "packets"}},
		{Name: "process_name", Ph: "M", Pid: tracePidFaults,
			Args: map[string]any{"name": "faults+reroutes"}},
	}
	out := struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}{TraceEvents: append(meta, t.events...), DisplayTimeUnit: "ms"}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
