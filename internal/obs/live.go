// LiveServer: the live/operational half of the observability layer. A run
// instrumented with a Registry is only inspectable post-hoc (manifest,
// expvar polling); LiveServer turns the registry into something you can
// watch — a bounded in-memory ring of periodic Registry.Snapshot() samples,
// served over HTTP as a JSON snapshot (/snapshot), a Server-Sent-Events
// stream (/stream), a dependency-free HTML dashboard (/), and the expvar
// page (/debug/vars), so a 25M-node implicit run or a multi-hour sweep is
// no longer a black box until it exits.
//
// The ring is fed by a Probe-driven sampler (Sampler): sampling happens
// synchronously inside the simulation loop's Tick, every N cycles, so the
// server runs zero goroutines of its own when nothing is listening and adds
// no per-event work beyond one modulus per cycle. Because Sample runs on
// the simulation goroutine, it may also safely read single-goroutine state
// such as an algebraic router's counters (RouterSource).
package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// LiveSample is one periodic observation of a run: the registry snapshot at
// a simulated cycle, stamped with a monotone sequence number and wall time,
// plus the router's live counters when a RouterSource is attached.
type LiveSample struct {
	Seq     int64          `json:"seq"`
	Cycle   int            `json:"cycle"`
	UnixMs  int64          `json:"unix_ms"`
	Metrics map[string]any `json:"metrics"`
	Router  *RouterStats   `json:"router,omitempty"`
}

// DefaultLiveRing is the ring capacity NewLiveServer falls back to: enough
// history for a dashboard to plot trends, small enough to be irrelevant
// next to the simulator's own footprint (a sample is a few hundred bytes).
const DefaultLiveRing = 512

// LiveServer samples a Registry into a bounded ring and serves the ring
// over HTTP. Construct with NewLiveServer, attach Sampler(every) to the
// run's probe, and mount Handler on any listener. All exported methods are
// safe for concurrent use; Sample itself is typically called from exactly
// one goroutine (the simulation loop) but tolerates more.
type LiveServer struct {
	reg      *Registry
	routerFn func() RouterStats

	mu   sync.Mutex
	ring []LiveSample // fixed-capacity circular buffer
	head int          // index of the oldest sample
	n    int          // live samples in the ring
	seq  int64
	subs map[chan LiveSample]struct{}
}

// NewLiveServer returns a server sampling reg into a ring of ringCap
// samples (DefaultLiveRing when ringCap < 1).
func NewLiveServer(reg *Registry, ringCap int) *LiveServer {
	if ringCap < 1 {
		ringCap = DefaultLiveRing
	}
	return &LiveServer{
		reg:  reg,
		ring: make([]LiveSample, ringCap),
		subs: map[chan LiveSample]struct{}{},
	}
}

// RouterSource attaches a router-counter getter that Sample invokes
// synchronously on the sampling goroutine — safe for the single-goroutine
// counters of topo.Algebraic/FaultAware because the simulation loop is the
// only caller of both the router and the sampler. Set it at wiring time
// (before sampling starts), and re-point it between runs as the sweep swaps
// routers; nil detaches.
func (s *LiveServer) RouterSource(fn func() RouterStats) { s.routerFn = fn }

// liveSampler drives Sample from the run's probe: one modulus per cycle,
// no goroutine, nothing at all on non-sample cycles.
type liveSampler struct {
	NopProbe
	s     *LiveServer
	every int
}

func (ls *liveSampler) Tick(cycle int) {
	if cycle%ls.every == 0 {
		ls.s.Sample(cycle)
	}
}

// Sampler returns a Probe whose Tick snapshots the registry into the ring
// every `every` cycles (minimum 1). Attach it via Multi alongside the run's
// other collectors.
func (s *LiveServer) Sampler(every int) Probe {
	if every < 1 {
		every = 1
	}
	return &liveSampler{s: s, every: every}
}

// Sample takes one observation now: registry snapshot, optional router
// counters, wall-clock stamp. The sample is appended to the ring (evicting
// the oldest once full) and broadcast to every /stream subscriber; a
// subscriber whose channel is full skips this sample rather than stalling
// the simulation.
func (s *LiveServer) Sample(cycle int) {
	sm := LiveSample{
		Cycle:   cycle,
		UnixMs:  time.Now().UnixMilli(),
		Metrics: s.reg.Snapshot(),
	}
	if fn := s.routerFn; fn != nil {
		rs := fn()
		sm.Router = &rs
	}
	s.mu.Lock()
	s.seq++
	sm.Seq = s.seq
	if s.n < len(s.ring) {
		s.ring[(s.head+s.n)%len(s.ring)] = sm
		s.n++
	} else {
		s.ring[s.head] = sm
		s.head = (s.head + 1) % len(s.ring)
	}
	for ch := range s.subs {
		select {
		case ch <- sm:
		default:
		}
	}
	s.mu.Unlock()
}

// Latest returns the most recent sample, if any.
func (s *LiveServer) Latest() (LiveSample, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		return LiveSample{}, false
	}
	return s.ring[(s.head+s.n-1)%len(s.ring)], true
}

// History returns a copy of the ring, oldest to newest.
func (s *LiveServer) History() []LiveSample {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.historyLocked()
}

func (s *LiveServer) historyLocked() []LiveSample {
	out := make([]LiveSample, s.n)
	for i := 0; i < s.n; i++ {
		out[i] = s.ring[(s.head+i)%len(s.ring)]
	}
	return out
}

// Samples returns how many samples have ever been taken (the latest Seq).
func (s *LiveServer) Samples() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// Handler returns the live mux:
//
//	/           the HTML dashboard (no external assets)
//	/snapshot   latest sample as JSON (?all=1 = the whole ring)
//	/stream     Server-Sent Events: ring history, then every new sample
//	/debug/vars the standard expvar page (the "sim" registry, memstats, …)
func (s *LiveServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.serveDashboard)
	mux.HandleFunc("/snapshot", s.serveSnapshot)
	mux.HandleFunc("/stream", s.serveStream)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

func (s *LiveServer) serveDashboard(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, liveDashboardHTML)
}

func (s *LiveServer) serveSnapshot(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Cache-Control", "no-store")
	enc := json.NewEncoder(w)
	if r.URL.Query().Get("all") != "" {
		enc.Encode(s.History())
		return
	}
	sm, ok := s.Latest()
	if !ok {
		http.Error(w, `{"error":"no samples yet"}`, http.StatusNotFound)
		return
	}
	enc.Encode(sm)
}

func (s *LiveServer) serveStream(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("Connection", "keep-alive")

	// Subscribe and copy the history under one lock so the replay has no
	// gap: everything after the copied prefix arrives on the channel. The
	// buffer absorbs samples taken while the replay is still writing.
	ch := make(chan LiveSample, 64)
	s.mu.Lock()
	history := s.historyLocked()
	s.subs[ch] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.subs, ch)
		s.mu.Unlock()
	}()

	send := func(sm LiveSample) bool {
		data, err := json.Marshal(sm)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "data: %s\n\n", data); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	for _, sm := range history {
		if !send(sm) {
			return
		}
	}
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case sm := <-ch:
			if !send(sm) {
				return
			}
		}
	}
}

// liveDashboardHTML is the whole dashboard: no external scripts, fonts, or
// stylesheets, so it works on an air-gapped box and inside a curl-only
// container (curl /snapshot for the same data). It consumes /stream and
// plots counter *rates* (per wall second, from sample deltas), the queue
// depth gauge, latency percentiles from the striped histogram, and the
// router's cache hit rate.
const liveDashboardHTML = `<!doctype html>
<html><head><meta charset="utf-8"><title>simulate: live run</title>
<style>
 body{font:13px/1.4 system-ui,sans-serif;margin:16px;background:#111;color:#ddd}
 h1{font-size:16px;margin:0 0 4px} #meta{color:#9a9;margin-bottom:12px}
 .grid{display:grid;grid-template-columns:repeat(auto-fit,minmax(380px,1fr));gap:14px}
 .card{background:#1b1b1b;border:1px solid #2c2c2c;border-radius:6px;padding:8px 10px}
 .card h2{font-size:12px;font-weight:600;margin:0 0 6px;color:#bbb}
 canvas{width:100%;height:130px;display:block}
 .legend{font-size:11px;color:#888;margin-top:4px}
 .legend b{font-weight:600}
</style></head><body>
<h1>simulate: live run</h1>
<div id="meta">waiting for samples&hellip;</div>
<div class="grid">
 <div class="card"><h2>packet rates (/s wall)</h2><canvas id="rates"></canvas>
  <div class="legend"><b style="color:#6c6">injected</b> &middot; <b style="color:#69f">delivered</b> &middot; <b style="color:#e66">dropped</b></div></div>
 <div class="card"><h2>queue depth (packets queued)</h2><canvas id="queue"></canvas>
  <div class="legend"><b style="color:#fa4">queued</b></div></div>
 <div class="card"><h2>latency percentiles (cycles)</h2><canvas id="lat"></canvas>
  <div class="legend"><b style="color:#6c6">p50</b> &middot; <b style="color:#fa4">p95</b> &middot; <b style="color:#e66">p99</b></div></div>
 <div class="card"><h2>router cache hit rate (%)</h2><canvas id="cache"></canvas>
  <div class="legend"><b style="color:#69f">hit rate</b></div></div>
</div>
<script>
"use strict";
const MAX = 600, samples = [];
const num = v => typeof v === "number" ? v : (v && typeof v.count === "number" ? v.count : 0);
function series(fn){ return samples.map(fn).filter(v => v !== null); }
function rate(key){
  const out = [];
  for (let i = 1; i < samples.length; i++){
    const a = samples[i-1], b = samples[i];
    const dt = (b.unix_ms - a.unix_ms) / 1000;
    if (dt <= 0) continue;
    out.push((num(b.metrics[key]) - num(a.metrics[key])) / dt);
  }
  return out;
}
function plot(id, lines, colors){
  const c = document.getElementById(id), dpr = devicePixelRatio || 1;
  const w = c.clientWidth, h = c.clientHeight;
  c.width = w * dpr; c.height = h * dpr;
  const g = c.getContext("2d"); g.scale(dpr, dpr); g.clearRect(0, 0, w, h);
  let max = 1e-9;
  for (const l of lines) for (const v of l) if (isFinite(v) && v > max) max = v;
  g.strokeStyle = "#333"; g.beginPath();
  for (let i = 1; i <= 3; i++){ g.moveTo(0, h*i/4); g.lineTo(w, h*i/4); }
  g.stroke();
  lines.forEach((l, li) => {
    if (l.length < 2) return;
    g.strokeStyle = colors[li]; g.lineWidth = 1.5; g.beginPath();
    l.forEach((v, i) => {
      const x = i/(l.length-1)*w, y = h - Math.min(v,max)/max*(h-6) - 3;
      i ? g.lineTo(x, y) : g.moveTo(x, y);
    });
    g.stroke();
  });
  g.fillStyle = "#777"; g.font = "10px system-ui";
  g.fillText(max >= 100 ? max.toFixed(0) : max.toPrecision(3), 4, 10);
}
function redraw(){
  const s = samples[samples.length-1];
  if (!s) return;
  const m = s.metrics, r = s.router;
  document.getElementById("meta").textContent =
    "cycle " + (m.cycle ?? "?") + " | sample #" + s.seq +
    " | injected " + num(m.injected) + " | delivered " + num(m.delivered) +
    " | dropped " + num(m.dropped) + (r ? " | cache " + (100*r.CacheHits/Math.max(1, r.CacheHits+r.CacheMisses)).toFixed(1) + "%" : "");
  plot("rates", [rate("injected"), rate("delivered"), rate("dropped")], ["#6c6", "#69f", "#e66"]);
  plot("queue", [series(x => num(x.metrics.queued))], ["#fa4"]);
  const lat = k => series(x => x.metrics.latency && typeof x.metrics.latency === "object" ? x.metrics.latency[k] : null);
  plot("lat", [lat("p50"), lat("p95"), lat("p99")], ["#6c6", "#fa4", "#e66"]);
  plot("cache", [series(x => x.router ? 100*x.router.CacheHits/Math.max(1, x.router.CacheHits+x.router.CacheMisses) : null)], ["#69f"]);
}
const es = new EventSource("/stream");
es.onmessage = e => {
  samples.push(JSON.parse(e.data));
  if (samples.length > MAX) samples.shift();
  redraw();
};
es.onerror = () => { document.getElementById("meta").textContent += " (stream closed - run finished?)"; };
</script></body></html>
`
