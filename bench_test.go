package repro

import (
	"io"
	"testing"

	"repro/internal/collectives"
	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/emulate"
	"repro/internal/faults"
	"repro/internal/figures"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/networks"
	"repro/internal/obs"
	"repro/internal/superip"
	"repro/internal/symbols"
	"repro/internal/topo"
)

// Each benchmark regenerates one of the paper's evaluation artifacts, so
// `go test -bench=.` is the full reproduction run. Rendering goes to
// io.Discard; use cmd/figures to see the tables.

func benchTable(b *testing.B, gen func() (*figures.Table, error)) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tab, err := gen()
		if err != nil {
			b.Fatal(err)
		}
		if err := tab.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1 regenerates Fig. 1: the structure and radix-4 ranking of
// HSN(2;Q2) = HCN(2,2) without diameter links, and HSN(3;Q2).
func BenchmarkFig1(b *testing.B) { benchTable(b, figures.Fig1) }

// BenchmarkFig2a and BenchmarkFig2b regenerate the DD-cost comparison
// (degree x diameter vs size) of Fig. 2.
func BenchmarkFig2a(b *testing.B) {
	benchTable(b, func() (*figures.Table, error) { return figures.Fig2("a") })
}

func BenchmarkFig2b(b *testing.B) {
	benchTable(b, func() (*figures.Table, error) { return figures.Fig2("b") })
}

// BenchmarkFig3a and BenchmarkFig3b regenerate the average I-distance and
// I-diameter comparisons of Fig. 3 (exact 0/1-BFS measurement, <= 16 nodes
// per module).
func BenchmarkFig3a(b *testing.B) {
	benchTable(b, func() (*figures.Table, error) { return figures.Fig3("a", 1<<13) })
}

func BenchmarkFig3b(b *testing.B) {
	benchTable(b, func() (*figures.Table, error) { return figures.Fig3("b", 1<<13) })
}

// BenchmarkFig4a and BenchmarkFig4b regenerate the ID-cost comparison of
// Fig. 4.
func BenchmarkFig4a(b *testing.B) {
	benchTable(b, func() (*figures.Table, error) { return figures.Fig4("a") })
}

func BenchmarkFig4b(b *testing.B) {
	benchTable(b, func() (*figures.Table, error) { return figures.Fig4("b") })
}

// BenchmarkFig5a and BenchmarkFig5b regenerate the II-cost comparison of
// Fig. 5 (8- and 16-node modules).
func BenchmarkFig5a(b *testing.B) {
	benchTable(b, func() (*figures.Table, error) { return figures.Fig5("a") })
}

func BenchmarkFig5b(b *testing.B) {
	benchTable(b, func() (*figures.Table, error) { return figures.Fig5("b") })
}

// BenchmarkOptimality regenerates the Theorem 4.4 optimality-factor table.
func BenchmarkOptimality(b *testing.B) { benchTable(b, figures.Optimality) }

// BenchmarkIDegreeTable regenerates the Section 5.3 off-module-links table.
func BenchmarkIDegreeTable(b *testing.B) { benchTable(b, figures.IDegreeTable) }

// ---------------------------------------------------------------------
// Machinery throughput benches: construction, measurement, routing, and
// simulation costs of the underlying substrates.

// BenchmarkBuildHSN3Q4 enumerates the 4096-node HSN(3;Q4) state space.
// Workers is pinned to 1 so the benchmark keeps measuring the sequential
// enumerator on any machine — its baseline predates the parallel builder,
// and leaving Workers at 0 would resolve to GOMAXPROCS on CI.
func BenchmarkBuildHSN3Q4(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		net := superip.HSN(3, superip.NucleusHypercube(4))
		net.Workers = 1
		if _, err := net.Build(); err != nil {
			b.Fatal(err)
		}
	}
}

// buildBenchIP returns the gated construction-benchmark instance:
// sym-HSN(4;Q3), a 98,304-node symmetric super-IP graph — large enough that
// interning and arc assembly dominate, small enough for CI.
func buildBenchIP(b *testing.B) *core.IPGraph {
	b.Helper()
	net := superip.HSN(4, superip.NucleusHypercube(3)).SymmetricVariant()
	return net.Super().IPGraph()
}

// BenchmarkBuildSeq measures the sequential level-order enumerator — the
// oracle the parallel builder is diffed against.
func BenchmarkBuildSeq(b *testing.B) {
	ip := buildBenchIP(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ip.BuildSeq(core.BuildOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildParallel measures the parallel level-synchronous enumerator
// on the same instance. Workers is pinned to 4 (not GOMAXPROCS) so the
// measured work is the same on every machine; see EXPERIMENTS.md "Building
// large graphs" for the scaling study.
func BenchmarkBuildParallel(b *testing.B) {
	ip := buildBenchIP(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ip.Build(core.BuildOptions{Workers: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllPairsHSN3Q4 measures the parallel all-pairs BFS used for every
// exact diameter/average-distance data point.
func BenchmarkAllPairsHSN3Q4(b *testing.B) {
	net := superip.HSN(3, superip.NucleusHypercube(4))
	g, err := net.Build()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.AllPairs()
	}
}

// BenchmarkIStatsCN3Q4 measures the 0/1-BFS inter-cluster measurement that
// generates Fig. 3 points.
func BenchmarkIStatsCN3Q4(b *testing.B) {
	net := superip.CompleteCN(3, superip.NucleusHypercube(4))
	g, ix, err := net.BuildWithIndex()
	if err != nil {
		b.Fatal(err)
	}
	p := metrics.NucleusPartition(ix, net.Nucleus.Nuc.M())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = metrics.IStats(g, p)
	}
}

// BenchmarkRouting measures the Theorem 4.1 router on HSN(3;Q4).
func BenchmarkRouting(b *testing.B) {
	net := superip.HSN(3, superip.NucleusHypercube(4))
	_, ix, err := net.BuildWithIndex()
	if err != nil {
		b.Fatal(err)
	}
	r, err := net.Router()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := ix.Label(int32(i % ix.N()))
		dst := ix.Label(int32((i * 2654435761) % ix.N()))
		if _, err := r.Route(src, dst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAlgebraicRoute measures end-to-end id-space routing on the
// implicit topology of sym-HSN(3;Q4): unrank src and dst, compute the
// Theorem 4.3 route, rank every intermediate label back to an id — the
// whole per-packet cost of routing without a materialized graph.
func BenchmarkAlgebraicRoute(b *testing.B) {
	net := superip.HSN(3, superip.NucleusHypercube(4)).SymmetricVariant()
	r, err := topo.NewAlgebraic(net.Super())
	if err != nil {
		b.Fatal(err)
	}
	imp, err := topo.NewImplicit(net.Super())
	if err != nil {
		b.Fatal(err)
	}
	n := imp.N()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := int64(i) % n
		dst := (int64(i) * 2654435761) % n
		if src == dst {
			continue
		}
		if _, err := r.Path(src, dst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFaultAwareRoute measures fault-aware routing on the implicit
// sym-HSN(3;Q4) with a fixed set of live link faults: most pairs route
// clean (pure wrapper overhead over BenchmarkAlgebraicRoute), the rest pay
// the generator-conjugate detour derivation.
func BenchmarkFaultAwareRoute(b *testing.B) {
	net := superip.HSN(3, superip.NucleusHypercube(4)).SymmetricVariant()
	r, err := topo.NewAlgebraic(net.Super())
	if err != nil {
		b.Fatal(err)
	}
	imp, err := topo.NewImplicit(net.Super())
	if err != nil {
		b.Fatal(err)
	}
	n := imp.N()
	fs := topo.NewFaultSet()
	fa := topo.NewFaultAware(imp, r, fs)
	var buf []int64
	for k := int64(0); k < 16; k++ {
		u := (k * 40503) % n
		buf = imp.Neighbors(u, buf)
		fs.FailLinkBoth(u, buf[int(k)%len(buf)])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := int64(i) % n
		dst := (int64(i) * 2654435761) % n
		if src == dst || fs.NodeDown(src) || fs.NodeDown(dst) {
			continue
		}
		if _, err := fa.Path(src, dst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFaultAwareRouteProbed measures the faulty routing workload the
// way a probed simulator run consumes it: packets walk hop by hop through
// NextHop (exercising the suffix cache the counters instrument), and a
// RouterStats snapshot (plus its Delta against the run start) is taken
// every iteration. The counters themselves are always on — this twin
// prices the cache-walk consumption pattern and reading the telemetry,
// against BenchmarkFaultAwareRoute's one-shot source-route derivation.
func BenchmarkFaultAwareRouteProbed(b *testing.B) {
	net := superip.HSN(3, superip.NucleusHypercube(4)).SymmetricVariant()
	r, err := topo.NewAlgebraic(net.Super())
	if err != nil {
		b.Fatal(err)
	}
	imp, err := topo.NewImplicit(net.Super())
	if err != nil {
		b.Fatal(err)
	}
	n := imp.N()
	fs := topo.NewFaultSet()
	fa := topo.NewFaultAware(imp, r, fs)
	var buf []int64
	for k := int64(0); k < 16; k++ {
		u := (k * 40503) % n
		buf = imp.Neighbors(u, buf)
		fs.FailLinkBoth(u, buf[int(k)%len(buf)])
	}
	base := fa.RouterStats()
	var last topo.RouterStats
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := int64(i+1) % n
		dst := (int64(i+1) * 2654435761) % n
		if src == dst || fs.NodeDown(src) || fs.NodeDown(dst) {
			continue
		}
		for cur, hops := src, 0; cur != dst; hops++ {
			if hops > 1024 {
				b.Fatalf("walk %d -> %d did not converge", src, dst)
			}
			nxt, err := fa.NextHop(cur, dst)
			if err != nil {
				b.Fatal(err)
			}
			cur = nxt
		}
		last = fa.RouterStats().Delta(base)
	}
	if last.CacheHits+last.CacheMisses == 0 {
		b.Fatal("router telemetry recorded no lookups")
	}
}

// BenchmarkEmbedding measures the dilation-3 hypercube-into-HSN embedding
// check (Section 3.2's embedding claim): Q6 into HSN(2;Q3), every guest
// edge validated.
func BenchmarkEmbedding(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := embed.ProductIntoHSN(superip.HSN(2, superip.NucleusHypercube(3)))
		if err != nil {
			b.Fatal(err)
		}
		if r.Dilation > 3 {
			b.Fatal("dilation exceeded 3")
		}
	}
}

// BenchmarkNetsim measures the packet simulator on HSN(2;Q4) with slow
// off-module links (the Section 5.4 scenario).
func BenchmarkNetsim(b *testing.B) {
	net := superip.HSN(2, superip.NucleusHypercube(4))
	g, ix, err := net.BuildWithIndex()
	if err != nil {
		b.Fatal(err)
	}
	p := metrics.NucleusPartition(ix, net.Nucleus.Nuc.M())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := netsim.Run(netsim.Config{
			Graph: g, Partition: &p, OffModulePeriod: 4,
			InjectionRate: 0.005, WarmupCycles: 100, MeasureCycles: 1000,
			Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// netsimBench builds the BenchmarkNetsim system once per benchmark.
func netsimBench(b *testing.B) (netsim.Config, *metrics.Partition) {
	b.Helper()
	net := superip.HSN(2, superip.NucleusHypercube(4))
	g, ix, err := net.BuildWithIndex()
	if err != nil {
		b.Fatal(err)
	}
	p := metrics.NucleusPartition(ix, net.Nucleus.Nuc.M())
	return netsim.Config{
		Graph: g, Partition: &p, OffModulePeriod: 4,
		InjectionRate: 0.005, WarmupCycles: 100, MeasureCycles: 1000,
	}, &p
}

// fullProbe attaches every collector the obs package ships, so the probed
// benchmarks price the observability layer at its most expensive.
func fullProbe(cfg netsim.Config, p *metrics.Partition) obs.Probe {
	return obs.Multi(
		&obs.LatencyHist{},
		obs.NewTimeSeries(func(u int64) int64 { return int64(p.Of[u]) }, 50),
		obs.NewModuleSeries(func(u int64) int64 { return int64(p.Of[u]) }, 50),
		&obs.Trace{SampleEvery: 16},
	)
}

// BenchmarkRunUniform isolates one fault-free simulator run (the inner
// loop of every latency sweep). Its Probed twin measures the same run with
// all obs collectors attached; comparing the two prices the observability
// layer. The nil-probe path must stay within noise of the pre-obs
// simulator — the probe hooks all sit behind a single nil check.
func BenchmarkRunUniform(b *testing.B) {
	cfg, _ := netsimBench(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, err := netsim.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunUniformProbed(b *testing.B) {
	cfg, p := netsimBench(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		cfg.Probe = fullProbe(cfg, p)
		if _, err := netsim.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunFaulty measures the degraded-mode simulator under a live
// fault plan (reroutes, retransmissions, detours included).
func BenchmarkRunFaulty(b *testing.B) {
	cfg, _ := netsimBench(b)
	plan, err := netsim.RandomFaults{
		MTBF: 200, RepairTime: 300, Start: cfg.WarmupCycles,
		Horizon: cfg.WarmupCycles + cfg.MeasureCycles, MaxFaults: 4, Seed: 1,
	}.Plan(cfg.Graph)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, err := netsim.RunFaulty(cfg, netsim.FaultConfig{Plan: plan}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunFaultyProbed(b *testing.B) {
	cfg, p := netsimBench(b)
	plan, err := netsim.RandomFaults{
		MTBF: 200, RepairTime: 300, Start: cfg.WarmupCycles,
		Horizon: cfg.WarmupCycles + cfg.MeasureCycles, MaxFaults: 4, Seed: 1,
	}.Plan(cfg.Graph)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		cfg.Probe = fullProbe(cfg, p)
		if _, err := netsim.RunFaulty(cfg, netsim.FaultConfig{Plan: plan}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIPGraphEnumeration measures raw IP-graph state enumeration on a
// Cayley graph (the 7-symbol star graph, 5040 nodes).
func BenchmarkIPGraphEnumeration(b *testing.B) {
	nuc := superip.NucleusStar(7)
	ip := nuc.Nuc.IPGraph()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ip.Build(core.BuildOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDirectHypercube measures the direct-construction baseline.
func BenchmarkDirectHypercube(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := (networks.Hypercube{Dim: 14}).Build(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation regenerates the nucleus-choice ablation table (DESIGN.md
// design-choice study: density of the nucleus vs diameter at fixed module
// size).
func BenchmarkAblation(b *testing.B) { benchTable(b, figures.NucleusAblation) }

// BenchmarkOptimalityGHC regenerates the Theorem 4.4 table with the paper's
// recommended generalized-hypercube nuclei.
func BenchmarkOptimalityGHC(b *testing.B) { benchTable(b, figures.OptimalityGHC) }

// BenchmarkSection51 regenerates the constant-bisection vs constant-pinout
// comparison of Section 5.1 (Kernighan-Lin bisection estimates inside).
func BenchmarkSection51(b *testing.B) {
	benchTable(b, func() (*figures.Table, error) { return figures.Section51(4, 1) })
}

// BenchmarkBidirectionalSearch measures optimal label-space routing on
// HSN(3;Q4) (4096 nodes) without using the built graph.
func BenchmarkBidirectionalSearch(b *testing.B) {
	net := superip.HSN(3, superip.NucleusHypercube(4))
	ip := net.Super().IPGraph()
	src := net.Super().SeedLabel()
	dst := symbols.RepeatedSeed(3, symbols.Label{2, 1, 2, 1, 2, 1, 2, 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ip.ShortestPath(src, dst, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVertexConnectivity measures the max-flow connectivity analysis
// on the 5-star (120 nodes).
func BenchmarkVertexConnectivity(b *testing.B) {
	g, err := networks.Star{Symbols: 5}.Build()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := faults.VertexConnectivity(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBroadcast measures the module-aware broadcast construction and
// scheduling on HSN(3;Q4).
func BenchmarkBroadcast(b *testing.B) {
	net := superip.HSN(3, superip.NucleusHypercube(4))
	g, ix, err := net.BuildWithIndex()
	if err != nil {
		b.Fatal(err)
	}
	p := metrics.NucleusPartition(ix, net.Nucleus.Nuc.M())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := collectives.Broadcast(g, p, 0, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBitonicSortEmulated measures the bitonic sort on the emulated
// HSN(2;Q3) machine (64 values).
func BenchmarkBitonicSortEmulated(b *testing.B) {
	m, err := emulate.NewHSNMachine(2, 3)
	if err != nil {
		b.Fatal(err)
	}
	vals := make([]int64, m.N())
	for i := range vals {
		vals[i] = int64((i * 2654435761) % 1000)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.SetValues(vals); err != nil {
			b.Fatal(err)
		}
		if err := emulate.BitonicSort(m); err != nil {
			b.Fatal(err)
		}
	}
}
