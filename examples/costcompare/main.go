// Costcompare: the Section 5 comparison methodology on a user-visible
// scale. For a roster of networks of comparable size (~2^12 nodes), it
// builds each one, packs nodes into modules of at most 16 processors, and
// reports degree, diameter, I-degree, I-diameter, average I-distance, and
// the DD-, ID-, and II-costs — the paper's Figs. 2-5 distilled into one
// table, measured exactly rather than analytically.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/networks"
	"repro/internal/superip"
)

type row struct {
	name   string
	g      *graph.Graph
	part   metrics.Partition
	degree int
}

func main() {
	var rows []row

	// Hypercube Q12 with Q4 modules.
	q12, err := networks.Hypercube{Dim: 12}.Build()
	if err != nil {
		log.Fatal(err)
	}
	rows = append(rows, row{"Q12", q12, metrics.SubcubePartition(q12.N(), 4), 12})

	// 64x64 torus with 4x4 tiles.
	tor, err := networks.Torus2D{Rows: 64, Cols: 64}.Build()
	if err != nil {
		log.Fatal(err)
	}
	tp, err := metrics.GridPartition(64, 64, 4, 4)
	if err != nil {
		log.Fatal(err)
	}
	rows = append(rows, row{"torus(64x64)", tor, tp, 4})

	// Super-IP graphs with Q4 nuclei (16-node modules).
	for _, net := range []*superip.Net{
		superip.HSN(3, superip.NucleusHypercube(4)),
		superip.CompleteCN(3, superip.NucleusHypercube(4)),
		superip.RingCN(3, superip.NucleusHypercube(4)),
		superip.SuperFlip(3, superip.NucleusHypercube(4)),
	} {
		g, ix, err := net.BuildWithIndex()
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{net.Name(), g,
			metrics.NucleusPartition(ix, net.Nucleus.Nuc.M()), net.Degree()})
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "network\tN\tdeg\tdiam\tDD\tI-deg\tI-diam\tavgI\tID\tII")
	for _, r := range rows {
		st := r.g.AllPairs()
		ideg := metrics.IDegree(r.g, r.part)
		ist := metrics.IStats(r.g, r.part)
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%.2f\t%d\t%.2f\t%.1f\t%.2f\n",
			r.name, r.g.N(), r.degree, st.Diameter,
			metrics.DDCost(r.degree, int(st.Diameter)),
			ideg, ist.Diameter, ist.AvgDistance,
			metrics.IDCost(ideg, int(st.Diameter)),
			metrics.IICost(ideg, int(ist.Diameter)))
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nreading the table: the super-IP families trade a slightly larger")
	fmt.Println("diameter for dramatically sparser inter-module wiring (I-degree,")
	fmt.Println("I-diameter), which is what Figs. 3-5 of the paper visualize.")
}
