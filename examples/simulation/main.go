// Simulation: Section 5.4 argues that when off-module links are slower than
// on-module links, packet latency under light load is approximately
// proportional to II-cost (inter-cluster degree times inter-cluster
// diameter). This example runs the packet-switched simulator on equal-sized
// networks at several off-module speed ratios and shows that the latency
// ordering converges to the II-cost ordering as off-module links get slower.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/networks"
	"repro/internal/superip"
)

type system struct {
	name string
	g    *graph.Graph
	part metrics.Partition
}

func main() {
	var systems []system

	// 256-node networks, 16-node modules.
	q8, err := networks.Hypercube{Dim: 8}.Build()
	if err != nil {
		log.Fatal(err)
	}
	systems = append(systems, system{"Q8 (Q4 modules)", q8, metrics.SubcubePartition(q8.N(), 4)})

	tor, err := networks.Torus2D{Rows: 16, Cols: 16}.Build()
	if err != nil {
		log.Fatal(err)
	}
	tp, err := metrics.GridPartition(16, 16, 4, 4)
	if err != nil {
		log.Fatal(err)
	}
	systems = append(systems, system{"torus(16x16)", tor, tp})

	for _, net := range []*superip.Net{
		superip.HSN(2, superip.NucleusHypercube(4)),
		superip.CompleteCN(2, superip.NucleusHypercube(4)),
	} {
		g, ix, err := net.BuildWithIndex()
		if err != nil {
			log.Fatal(err)
		}
		systems = append(systems, system{net.Name(), g,
			metrics.NucleusPartition(ix, net.Nucleus.Nuc.M())})
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "network\tII-cost\tlat(ratio=1)\tlat(ratio=4)\tlat(ratio=16)")
	for _, s := range systems {
		ii := metrics.IICost(metrics.IDegree(s.g, s.part), int(metrics.IStats(s.g, s.part).Diameter))
		var lat [3]float64
		for i, ratio := range []int{1, 4, 16} {
			st, err := netsim.Run(netsim.Config{
				Graph:           s.g,
				Partition:       &s.part,
				OffModulePeriod: ratio,
				InjectionRate:   0.003,
				WarmupCycles:    300,
				MeasureCycles:   3000,
				Seed:            42,
			})
			if err != nil {
				log.Fatal(err)
			}
			lat[i] = st.AvgLatency
		}
		fmt.Fprintf(w, "%s\t%.2f\t%.1f\t%.1f\t%.1f\n", s.name, ii, lat[0], lat[1], lat[2])
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwith equal link speeds (ratio=1) the denser networks win; as the")
	fmt.Println("off-module links slow down, latency ranks by II-cost — the super-IP")
	fmt.Println("graphs' sparse inter-module traffic dominates (Fig. 5's argument).")
}
