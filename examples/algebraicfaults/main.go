// Algebraicfaults: fault tolerance without the graph. The symmetric super-IP
// variants are Cayley graphs, so their edge connectivity equals their degree
// κ and Menger guarantees κ edge-disjoint routes between every pair. This
// example realizes those routes purely algebraically (topo.DisjointRoutes:
// generator-conjugate detours driven by flow augmentation over the implicit
// neighbor oracle), then demonstrates the worst case the theorem permits:
// cut κ−1 of the routes and the fault-aware router still delivers — first on
// every small symmetric family, then on sym-HSN(4;Q5) with 25,165,824 nodes,
// a graph that is never materialized.
//
// The final section runs the degraded-mode packet simulator over an implicit
// topology (netsim.RunImplicitFaulty) and sweeps the fault count: delivered
// fraction, latency inflation, and reroute work, all computed without a
// single O(N) allocation.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"
	"time"

	"repro/internal/netsim"
	"repro/internal/superip"
	"repro/internal/topo"
)

func main() {
	disjointTable()
	bigInstance()
	degradedSweep()
}

// cutAllButOne fails the first link of every disjoint route except one whose
// first hop differs from the primary route's first hop (the routes leave src
// by κ distinct arcs, so such a spare exists whenever κ >= 2). Returns the
// index of the spared route.
func cutAllButOne(fs *topo.FaultSet, routes [][]int64, primary []int64) int {
	spare := -1
	for i, rt := range routes {
		if rt[1] != primary[1] {
			spare = i
			break
		}
	}
	for i, rt := range routes {
		if i != spare {
			fs.FailLinkBoth(rt[0], rt[1])
		}
	}
	return spare
}

// walk drives the fault-aware router hop by hop and returns the number of
// hops taken and whether any hop was flagged as detoured.
func walk(fa *topo.FaultAware, src, dst int64, bound int) (int, bool, error) {
	cur, degraded, hops := src, false, 0
	for cur != dst {
		if hops > bound {
			return hops, degraded, fmt.Errorf("no delivery within %d hops", bound)
		}
		nxt, deg, err := fa.NextHopFlagged(cur, dst)
		if err != nil {
			return hops, degraded, err
		}
		degraded = degraded || deg
		cur = nxt
		hops++
	}
	return hops, degraded, nil
}

// disjointTable derives the κ edge-disjoint routes for a distant pair on
// each small symmetric family and survives κ−1 worst-case link cuts.
func disjointTable() {
	fmt.Println("=== κ edge-disjoint algebraic routes, then κ−1 worst-case cuts ===")
	fmt.Println("(symmetric variants are Cayley graphs: edge connectivity = degree κ)")
	fmt.Println()
	nets := []*superip.Net{
		superip.HSN(3, superip.NucleusHypercube(2)).SymmetricVariant(),
		superip.RingCN(3, superip.NucleusHypercube(2)).SymmetricVariant(),
		superip.CompleteCN(2, superip.NucleusHypercube(3)).SymmetricVariant(),
		superip.SuperFlip(3, superip.NucleusHypercube(2)).SymmetricVariant(),
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "network\tN\tκ\troutes\tprimary\tlongest\tcut κ−1: hops\tdegraded")
	for _, net := range nets {
		imp, err := topo.NewImplicit(net.Super())
		if err != nil {
			log.Fatal(err)
		}
		router, err := topo.NewAlgebraic(net.Super())
		if err != nil {
			log.Fatal(err)
		}
		rng := rand.New(rand.NewSource(11))
		n := imp.N()
		src := rng.Int63n(n)
		dst := rng.Int63n(n - 1)
		if dst >= src {
			dst++
		}
		routes, err := topo.DisjointRoutes(imp, router, src, dst)
		if err != nil {
			log.Fatal(err)
		}
		primary, err := router.Path(src, dst)
		if err != nil {
			log.Fatal(err)
		}
		longest := 0
		for _, rt := range routes {
			if len(rt)-1 > longest {
				longest = len(rt) - 1
			}
		}
		inner, err := topo.NewAlgebraic(net.Super())
		if err != nil {
			log.Fatal(err)
		}
		fs := topo.NewFaultSet()
		fa := topo.NewFaultAware(imp, inner, fs)
		cutAllButOne(fs, routes, primary)
		hops, degraded, err := walk(fa, src, dst, 4*net.Diameter()+fa.MaxDetourTTL+16)
		if err != nil {
			log.Fatalf("%s: %v", net.Name(), err)
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%v\n",
			net.Name(), n, net.Degree(), len(routes), len(primary)-1, longest, hops, degraded)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nEvery family yields exactly κ routes (Menger's bound, realized by")
	fmt.Println("label arithmetic alone), and with κ−1 of them cut the router")
	fmt.Println("delivers over the survivor at a modest hop premium.")
}

// bigInstance repeats the κ−1 demonstration on sym-HSN(4;Q5): 25,165,824
// nodes, degree 8 — an order of magnitude past the materialization ceiling.
func bigInstance() {
	net := superip.HSN(4, superip.NucleusHypercube(5)).SymmetricVariant()
	imp, err := topo.NewImplicit(net.Super())
	if err != nil {
		log.Fatal(err)
	}
	router, err := topo.NewAlgebraic(net.Super())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n=== the same, at scale: %s, N = %d (never materialized) ===\n\n",
		net.Name(), imp.N())
	rng := rand.New(rand.NewSource(23))
	n := imp.N()
	src := rng.Int63n(n)
	dst := rng.Int63n(n - 1)
	if dst >= src {
		dst++
	}
	start := time.Now()
	routes, err := topo.DisjointRoutes(imp, router, src, dst)
	if err != nil {
		log.Fatal(err)
	}
	derive := time.Since(start)
	primary, err := router.Path(src, dst)
	if err != nil {
		log.Fatal(err)
	}
	inner, err := topo.NewAlgebraic(net.Super())
	if err != nil {
		log.Fatal(err)
	}
	fs := topo.NewFaultSet()
	fa := topo.NewFaultAware(imp, inner, fs)
	cutAllButOne(fs, routes, primary)
	start = time.Now()
	hops, degraded, err := walk(fa, src, dst, 4*net.Diameter()+fa.MaxDetourTTL+16)
	if err != nil {
		log.Fatal(err)
	}
	walked := time.Since(start)
	reroutes, detourHops := fa.RerouteCounts()
	fmt.Printf("pair %d -> %d: κ = %d disjoint routes derived in %v\n",
		src, dst, len(routes), derive.Round(time.Microsecond))
	fmt.Printf("cut %d of them; delivery in %d hops (primary %d) in %v, degraded=%v\n",
		len(routes)-1, hops, len(primary)-1, walked.Round(time.Microsecond), degraded)
	fmt.Printf("reroute events %d, detour-search hops %d — repair cost stays\n",
		reroutes, detourHops)
	fmt.Println("proportional to the route length, not to N: no tables, no BFS.")
}

// degradedSweep runs the implicit degraded-mode simulator on a mid-sized
// symmetric instance and sweeps the permanent-fault count: at this scale
// random faults genuinely intersect traffic, so the reroute machinery is
// exercised while delivery stays complete.
func degradedSweep() {
	net := superip.HSN(3, superip.NucleusHypercube(3)).SymmetricVariant()
	imp, err := topo.NewImplicit(net.Super())
	if err != nil {
		log.Fatal(err)
	}
	router, err := topo.NewAlgebraic(net.Super())
	if err != nil {
		log.Fatal(err)
	}
	const (
		seed    = 7
		rate    = 0.01
		warmup  = 200
		measure = 2000
	)
	fmt.Printf("\n=== degraded-mode simulation on %s (implicit, N = %d) ===\n",
		net.Name(), imp.N())
	fmt.Printf("(rate %.3g/node/cycle, %d measured cycles, permanent link faults, seed %d)\n\n",
		rate, measure, seed)
	base, err := netsim.RunImplicit(netsim.ImplicitConfig{Topo: imp, Router: router,
		InjectionRate: rate, WarmupCycles: warmup, MeasureCycles: measure, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "faults\tdelivered\tlost\texpired\tavg-lat\tlat-infl\tdegraded\treroutes\tdetours")
	for _, nFaults := range []int{0, 4, 8, 16, 32} {
		fc := netsim.ImplicitFaultConfig{}
		var fs *topo.FaultSet
		cfg := netsim.ImplicitConfig{Topo: imp, Router: router,
			InjectionRate: rate, WarmupCycles: warmup, MeasureCycles: measure, Seed: seed}
		if nFaults > 0 {
			plan, err := netsim.RandomFaults{MTBF: 25, Start: warmup,
				Horizon: warmup + measure, MaxFaults: nFaults, Seed: seed}.PlanTopo(imp)
			if err != nil {
				log.Fatal(err)
			}
			fs = topo.NewFaultSet()
			cfg.Router = topo.NewFaultAware(imp, router, fs)
			fc = netsim.ImplicitFaultConfig{Plan: plan, Faults: fs}
		}
		st, err := netsim.RunImplicitFaulty(cfg, fc)
		if err != nil {
			log.Fatal(err)
		}
		infl := 0.0
		if base.AvgLatency > 0 {
			infl = st.AvgLatency / base.AvgLatency
		}
		fmt.Fprintf(w, "%d\t%d/%d\t%d\t%d\t%.2f\t%.3f\t%d\t%d\t%d\n",
			st.FaultsInjected, st.Delivered, st.Injected, st.Lost, st.Expired,
			st.AvgLatency, infl, st.DeliveredDegraded, st.RerouteEvents, st.MisroutedHops)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nReading the table: with faults below the connectivity bound every")
	fmt.Println("measured packet is delivered — some over detoured (degraded) routes")
	fmt.Println("— and the latency inflation stays small. The router repairs each")
	fmt.Println("blocked route from the labels of the packet in hand; no routing")
	fmt.Println("table exists anywhere to rebuild.")
}
