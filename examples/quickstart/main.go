// Quickstart: define an IP graph, build it, inspect it, and route on it.
//
// This walks the paper's running example: the hierarchical swapped network
// HSN(2;Q2), which is the hierarchical cubic network HCN(2,2) without its
// diameter links (Fig. 1a), then routes between two nodes with the
// Theorem 4.1 algorithm and checks the result against BFS.
package main

import (
	"fmt"
	"log"

	"repro/internal/metrics"
	"repro/internal/superip"
)

func main() {
	// 1. Pick a nucleus (the basic module) and a super-generator family.
	net := superip.HSN(2, superip.NucleusHypercube(2))
	fmt.Printf("network: %s\n", net.Name())
	fmt.Printf("analytic: N=%d degree=%d diameter=%d (Thm 3.2 / Cor 4.2)\n",
		net.N(), net.Degree(), net.Diameter())

	// 2. Build the concrete graph by BFS enumeration of the IP-graph
	//    state space.
	g, ix, err := net.BuildWithIndex()
	if err != nil {
		log.Fatal(err)
	}
	st := g.AllPairs()
	fmt.Printf("measured: N=%d diameter=%d avg distance=%.3f\n",
		g.N(), st.Diameter, st.AvgDistance)

	// 3. Inspect a node: its label is two super-symbols over the Q2
	//    nucleus; neighbors arise from nucleus generators and the swap.
	u := int32(5)
	fmt.Printf("node %d has label %s and neighbors:\n", u, ix.Label(u).Grouped(4))
	for _, v := range g.Neighbors(u) {
		fmt.Printf("  %d = %s\n", v, ix.Label(v).Grouped(4))
	}

	// 4. Route with the paper's algorithm: sort the leftmost super-symbol,
	//    swap, sort again. The route length never exceeds the diameter.
	r, err := net.Router()
	if err != nil {
		log.Fatal(err)
	}
	src, dst := ix.Label(0), ix.Label(int32(ix.N()-1))
	path, err := r.Route(src, dst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("route %s -> %s in %d hops:\n", src.Grouped(4), dst.Grouped(4), path.Hops())
	for i, lab := range path.Labels {
		marker := ""
		if i > 0 && path.Gens[i-1] >= net.Super().NumNucleusGens() {
			marker = "   <- super-generator (off-module hop)"
		}
		fmt.Printf("  %s%s\n", lab.Grouped(4), marker)
	}

	// 5. Module packing: one nucleus per module gives an inter-cluster
	//    degree below 1 and inter-cluster diameter 1 (Section 5).
	p := metrics.NucleusPartition(ix, 4)
	ist := metrics.IStats(g, p)
	fmt.Printf("nucleus packing: %d modules, I-degree=%.2f, I-diameter=%d\n",
		p.K, metrics.IDegree(g, p), ist.Diameter)
}
