// Symmetric: Section 3.5's systematic method for deriving vertex-symmetric,
// regular variants of super-IP graphs. This example takes HSN(2;Q2) — whose
// plain version is irregular (the swap is a self-loop at nodes with two
// equal halves) — replaces the repeated seed with the distinct-symbol seed,
// and demonstrates that the result is a Cayley graph: regular, with l! times
// more nodes, uniform distance profiles from every node, and the Theorem 4.3
// diameter l*D_G + t_S.
package main

import (
	"fmt"
	"log"

	"repro/internal/superip"
)

func main() {
	for _, base := range []*superip.Net{
		superip.HSN(2, superip.NucleusHypercube(2)),
		superip.RingCN(3, superip.NucleusHypercube(2)),
	} {
		sym := base.SymmetricVariant()
		fmt.Printf("=== %s -> %s\n", base.Name(), sym.Name())

		gPlain, _, err := base.BuildWithIndex()
		if err != nil {
			log.Fatal(err)
		}
		gSym, ix, err := sym.BuildWithIndex()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("plain:     N=%d degrees=%v diameter=%d\n",
			gPlain.N(), gPlain.DegreeHistogram(), gPlain.AllPairs().Diameter)
		fmt.Printf("symmetric: N=%d (x%d) degrees=%v diameter=%d (Thm 4.3: %d)\n",
			gSym.N(), sym.Arrangements(), gSym.DegreeHistogram(),
			gSym.AllPairs().Diameter, sym.Diameter())

		if !gSym.IsRegular() {
			log.Fatalf("%s is not regular", sym.Name())
		}
		if ok, w := gSym.UniformDistanceProfiles(); !ok {
			log.Fatalf("%s has differing distance profiles at %v", sym.Name(), w)
		}
		fmt.Printf("regular and distance-profile-uniform (vertex-symmetric): yes\n")
		fmt.Printf("seed %s has distinct symbols (Cayley condition): %v\n",
			ix.Label(0), sym.Super().IPGraph().IsCayley())

		// Route in the symmetric graph: the schedule must both cover all
		// super-symbols and realize the destination's color arrangement.
		r, err := sym.Router()
		if err != nil {
			log.Fatal(err)
		}
		src, dst := ix.Label(0), ix.Label(int32(ix.N()-1))
		path, err := r.Route(src, dst)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("routed %s -> %s in %d hops (diameter %d)\n\n",
			src, dst, path.Hops(), sym.Diameter())
	}
}
