// Emulation: the paper claims suitably constructed super-IP graphs emulate
// a corresponding hypercube with (asymptotically) optimal slowdown. This
// example runs three real hypercube algorithms — all-reduce, parallel
// prefix, and bitonic sort — on a genuine Q6 machine and on its HSN(2;Q3)
// emulation, verifies the outputs are identical, and compares the
// communication-step counts: the HSN pays at most 3x the steps, with only
// the super-symbol swaps crossing modules.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"

	"repro/internal/emulate"
)

func main() {
	const dim = 6
	rng := rand.New(rand.NewSource(2026))
	input := make([]int64, 1<<dim)
	for i := range input {
		input[i] = int64(rng.Intn(10000))
	}

	type algo struct {
		name string
		run  func(emulate.IndexedMachine) error
	}
	algos := []algo{
		{"all-reduce", func(m emulate.IndexedMachine) error { return emulate.AllReduceSum(m) }},
		{"parallel prefix", func(m emulate.IndexedMachine) error { return emulate.PrefixSum(m) }},
		{"bitonic sort", func(m emulate.IndexedMachine) error { return emulate.BitonicSort(m) }},
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "algorithm\thost\tsteps\ton-module\toff-module\tmatch")
	for _, a := range algos {
		direct := emulate.NewDirectHypercube(dim, 3)
		hsnM, err := emulate.NewHSNMachine(2, 3)
		if err != nil {
			log.Fatal(err)
		}
		if err := direct.SetValues(input); err != nil {
			log.Fatal(err)
		}
		if err := hsnM.SetValues(input); err != nil {
			log.Fatal(err)
		}
		if err := a.run(direct); err != nil {
			log.Fatal(err)
		}
		if err := a.run(hsnM); err != nil {
			log.Fatal(err)
		}
		dv, hv := direct.Values(), hsnM.Values()
		match := "yes"
		for i := range dv {
			if dv[i] != hv[i] {
				match = "NO"
				break
			}
		}
		dc, hc := direct.Cost(), hsnM.Cost()
		fmt.Fprintf(w, "%s\tQ6 (Q3 modules)\t%d\t%d\t%d\t\n", a.name, dc.Steps, dc.OnModuleSteps, dc.OffModuleSteps)
		fmt.Fprintf(w, "%s\tHSN(2;Q3)\t%d\t%d\t%d\t%s\n", a.name, hc.Steps, hc.OnModuleSteps, hc.OffModuleSteps, match)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nthe HSN pays at most 3x the communication steps (the dilation-3")
	fmt.Println("embedding run as whole-machine permutation steps), and every")
	fmt.Println("off-module step uses the single swap link per node — the hypercube")
	fmt.Println("needs 3 off-module links per node to do the same.")
}
