// Unification: Section 2's claim that the IP graph model ties together a
// vast variety of interconnection networks. This example constructs the
// star graph, hypercube, de Bruijn graph, shuffle-exchange network,
// cube-connected cycles, and HCN as IP graphs — one seed and a few index
// permutations each — and verifies each against an independent direct
// construction (by explicit bijection where we have one, by invariants
// otherwise).
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/networks"
	"repro/internal/perm"
	"repro/internal/symbols"
)

func check(name string, err error) {
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	fmt.Printf("  %-22s verified\n", name)
}

func main() {
	fmt.Println("networks realized as IP graphs (seed + index permutations):")

	// --- Star graph S5: the canonical Cayley graph (distinct symbols).
	var starGens []perm.Perm
	for i := 1; i < 5; i++ {
		starGens = append(starGens, perm.Transposition(5, 0, i))
	}
	star := core.Cayley("S5", starGens, nil)
	sg, _, err := star.Build(core.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}
	direct, err := networks.Star{Symbols: 5}.Build()
	if err != nil {
		log.Fatal(err)
	}
	if sg.N() != direct.N() || sg.MaxDegree() != direct.MaxDegree() ||
		sg.AllPairs().Diameter != direct.AllPairs().Diameter {
		log.Fatal("star: IP build disagrees with direct build")
	}
	check("star graph S5", nil)

	// --- Hypercube Q6: n symbol pairs, one pair-swap generator each.
	n := 6
	qGens := make([]perm.Perm, n)
	for i := range qGens {
		qGens[i] = perm.Transposition(2*n, 2*i, 2*i+1)
	}
	q := &core.IPGraph{Name: "Q6", Seed: symbols.RepeatedSeed(n, symbols.Label{1, 2}), Gens: qGens}
	qg, qix, err := q.Build(core.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}
	qdirect, err := networks.Hypercube{Dim: n}.Build()
	if err != nil {
		log.Fatal(err)
	}
	// Explicit bijection: pair j swapped <=> bit j set.
	mapping := make([]int32, qg.N())
	for u := 0; u < qg.N(); u++ {
		label := qix.Label(int32(u))
		v := 0
		for j := 0; j < n; j++ {
			if label[2*j] > label[2*j+1] {
				v |= 1 << j
			}
		}
		mapping[u] = int32(v)
	}
	check("hypercube Q6", graph.VerifyIsomorphism(qg, qdirect, mapping))

	// --- de Bruijn(2,6): rotation and rotation-plus-swap (directed).
	rot := perm.BlockLeftShift(n, 2, 1)
	swapLast := perm.Transposition(2*n, 2*n-2, 2*n-1)
	db := &core.IPGraph{
		Name: "deBruijn",
		Seed: symbols.RepeatedSeed(n, symbols.Label{1, 2}),
		Gens: []perm.Perm{rot, perm.Compose(rot, swapLast)},
	}
	dbg, dbix, err := db.Build(core.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}
	dbdirect, err := networks.DeBruijn{Base: 2, Dim: n}.BuildDirected()
	if err != nil {
		log.Fatal(err)
	}
	// Bijection: bit j of the de Bruijn word is pair j of the label, MSB
	// first: shifting pairs left = shifting the word left.
	dbMap := make([]int32, dbg.N())
	for u := 0; u < dbg.N(); u++ {
		label := dbix.Label(int32(u))
		v := 0
		for j := 0; j < n; j++ {
			v <<= 1
			if label[2*j] > label[2*j+1] {
				v |= 1
			}
		}
		dbMap[u] = int32(v)
	}
	check("de Bruijn (2,6)", graph.VerifyIsomorphism(dbg, dbdirect, dbMap))

	// --- Shuffle-exchange SE(6): rotations plus exchange of a fixed pair.
	se := &core.IPGraph{
		Name: "SE6",
		Seed: symbols.RepeatedSeed(n, symbols.Label{1, 2}),
		Gens: []perm.Perm{
			perm.BlockLeftShift(n, 2, 1),
			perm.BlockRightShift(n, 2, 1),
			perm.Transposition(2*n, 2*n-2, 2*n-1),
		},
	}
	seg, _, err := se.Build(core.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}
	sedirect, err := networks.ShuffleExchange{Dim: n}.Build()
	if err != nil {
		log.Fatal(err)
	}
	if seg.N() != sedirect.N() ||
		seg.AllPairs().Diameter != sedirect.AllPairs().Diameter {
		log.Fatal("shuffle-exchange: IP build disagrees with direct build")
	}
	check("shuffle-exchange SE6", nil)

	// --- Cube-connected cycles CCC(4): a marker pair tracks the cycle
	// position; rotations move it, exchanging a fixed pair flips the bit
	// "under" the marker.
	ccc := cccIPGraph(4)
	cg, _, err := ccc.Build(core.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}
	cdirect, err := networks.CCC{Dim: 4}.Build()
	if err != nil {
		log.Fatal(err)
	}
	cst, dst := cg.AllPairs(), cdirect.AllPairs()
	if cg.N() != cdirect.N() || cst.Diameter != dst.Diameter ||
		cg.MaxDegree() != cdirect.MaxDegree() {
		log.Fatalf("CCC: IP build (N=%d, diam=%d) disagrees with direct (N=%d, diam=%d)",
			cg.N(), cst.Diameter, cdirect.N(), dst.Diameter)
	}
	check("cube-connected cycles", nil)

	fmt.Println("all IP-graph realizations agree with the direct constructions")
}

// cccIPGraph builds CCC(n) as an IP graph: the label has n pairs; the first
// pair of the seed is the distinct marker "34", the rest are "12". Rotating
// by a pair moves the marker around the cycle; exchanging the fixed second
// pair flips the bit at a fixed offset from the marker.
func cccIPGraph(n int) *core.IPGraph {
	seed := make(symbols.Label, 0, 2*n)
	seed = append(seed, 3, 4)
	for i := 1; i < n; i++ {
		seed = append(seed, 1, 2)
	}
	return &core.IPGraph{
		Name: "CCC",
		Seed: seed,
		Gens: []perm.Perm{
			perm.BlockLeftShift(n, 2, 1),
			perm.BlockRightShift(n, 2, 1),
			perm.Transposition(2*n, 2, 3), // exchange the pair after the marker
		},
	}
}
