// Faulttolerance: the robustness attributes that motivate star graphs and
// their super-IP relatives (Section 1). For networks of comparable size this
// example measures exact vertex/edge connectivity, extracts a maximum set of
// vertex-disjoint paths between a distant pair (Menger), and reports
// Monte-Carlo survival rates under random node failures.
//
// The second half runs the *dynamic* counterpart: the packet simulator
// operates each network through live link failures (netsim.RunFaulty) and
// reports how throughput and latency degrade as the fault count grows —
// delivered/lost flows, retransmissions, routing-table repairs, detour hops,
// and the latency inflation over the fault-free baseline. Everything runs
// from fixed seeds and is fully deterministic.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/faults"
	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/networks"
	"repro/internal/superip"
)

func main() {
	type system struct {
		name string
		g    *graph.Graph
	}
	var systems []system
	q6, err := networks.Hypercube{Dim: 6}.Build()
	if err != nil {
		log.Fatal(err)
	}
	systems = append(systems, system{"Q6", q6})

	star5, err := networks.Star{Symbols: 5}.Build()
	if err != nil {
		log.Fatal(err)
	}
	systems = append(systems, system{"star(5)", star5})

	symHSN := superip.HSN(2, superip.NucleusHypercube(3)).SymmetricVariant()
	sg, err := symHSN.Build()
	if err != nil {
		log.Fatal(err)
	}
	systems = append(systems, system{symHSN.Name(), sg})

	ccc, err := networks.CCC{Dim: 4}.Build()
	if err != nil {
		log.Fatal(err)
	}
	systems = append(systems, system{"CCC(4)", ccc})

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "network\tN\tmin-deg\tkappa\tlambda\tdisjoint paths\tsurvive 3 faults")
	for _, s := range systems {
		k, err := faults.VertexConnectivity(s.g)
		if err != nil {
			log.Fatal(err)
		}
		lam, err := faults.EdgeConnectivity(s.g)
		if err != nil {
			log.Fatal(err)
		}
		// Disjoint paths between node 0 and a non-neighbor.
		var tgt int32 = -1
		for v := int32(1); v < int32(s.g.N()); v++ {
			if !s.g.HasEdge(0, v) {
				tgt = v
				break
			}
		}
		paths, err := faults.DisjointPaths(s.g, 0, tgt)
		if err != nil {
			log.Fatal(err)
		}
		inj, err := faults.InjectNodeFaults(s.g, 3, 300, 7)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%d/%d\n",
			s.name, s.g.N(), s.g.MinDegree(), k, lam, len(paths),
			inj.SurvivedConnected, inj.Trials)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nkappa = lambda = min degree for all of these (maximal fault")
	fmt.Println("tolerance), and the disjoint-path count realizes Menger's bound:")
	fmt.Println("any kappa-1 failures leave every pair connected.")

	dynamicSweep()
}

// dynamicSweep operates each network through live link failures and prints
// the degradation table: the empirical answer to "how much latency and
// throughput do these hierarchical networks give up when links die mid-run."
func dynamicSweep() {
	const (
		seed    = 7
		rate    = 0.01
		warmup  = 200
		measure = 2000
		mtbf    = 150
	)
	type system struct {
		name string
		g    *graph.Graph
	}
	var systems []system
	add := func(name string, g *graph.Graph, err error) {
		if err != nil {
			log.Fatal(err)
		}
		systems = append(systems, system{name, g})
	}
	// Note l=2 makes HSN, CN, and SFN coincide (one swap = one shift = one
	// flip), so the CN and SFN entries use three levels over a Q2 nucleus
	// to stay at 64 nodes while exercising genuinely different wirings.
	hsn := superip.HSN(2, superip.NucleusHypercube(3))
	hg, err := hsn.Build()
	add(hsn.Name(), hg, err)
	rcn := superip.RingCN(3, superip.NucleusHypercube(2))
	rg, err := rcn.Build()
	add(rcn.Name(), rg, err)
	sfn := superip.SuperFlip(3, superip.NucleusHypercube(2))
	sg, err := sfn.Build()
	add(sfn.Name(), sg, err)
	st5, err := networks.Star{Symbols: 5}.Build()
	add("star(5)", st5, err)
	q6, err := networks.Hypercube{Dim: 6}.Build()
	add("Q6", q6, err)

	fmt.Println("\n=== live fault injection: permanent link faults during operation ===")
	fmt.Printf("(rate %.3g/node/cycle, %d measured cycles, MTBF %d, notify delay 8, seed %d)\n\n",
		rate, measure, mtbf, seed)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "network\tfaults\tdelivered\tlost\tretx\tavg-lat\tlat-infl\treroutes\tttr\tdetours")
	for _, s := range systems {
		cfg := netsim.Config{Graph: s.g, InjectionRate: rate,
			WarmupCycles: warmup, MeasureCycles: measure, Seed: seed}
		base, err := netsim.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		for _, nFaults := range []int{0, 2, 4, 8} {
			// A timeout comfortably above the worst fault-free latency
			// keeps retransmissions to genuine losses (the default 64 can
			// fire spuriously on queueing outliers).
			fc := netsim.FaultConfig{RetransmitTimeout: 512}
			if nFaults > 0 {
				plan, err := netsim.RandomFaults{MTBF: mtbf, Start: warmup,
					Horizon: warmup + measure, MaxFaults: nFaults, Seed: seed}.Plan(s.g)
				if err != nil {
					log.Fatal(err)
				}
				fc.Plan = plan
				fc.NotifyDelay = 8
			}
			fs, err := netsim.RunFaulty(cfg, fc)
			if err != nil {
				log.Fatal(err)
			}
			infl := 0.0
			if base.AvgLatency > 0 {
				infl = fs.AvgLatency / base.AvgLatency
			}
			fmt.Fprintf(w, "%s\t%d\t%d/%d\t%d\t%d\t%.2f\t%.3f\t%d\t%.0f\t%d\n",
				s.name, fs.FaultsInjected, fs.Delivered, fs.Injected, fs.Lost,
				fs.Retransmitted, fs.AvgLatency, infl, fs.RerouteEvents,
				fs.MeanTimeToReroute, fs.MisroutedHops)
		}
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nReading the table: every measured flow ends delivered or lost;")
	fmt.Println("with faults below the connectivity bound nothing is lost and the")
	fmt.Println("latency inflation stays within a few percent — the sparse")
	fmt.Println("inter-module wiring of the super-IP graphs does not make them")
	fmt.Println("degrade worse than their flat Cayley cousins. 'reroutes' counts")
	fmt.Println("per-destination table repairs, 'ttr' the mean cycles from a")
	fmt.Println("failure to the repair of an affected table, 'detours' the")
	fmt.Println("misrouted hops taken while tables were stale.")
}
