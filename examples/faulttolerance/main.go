// Faulttolerance: the robustness attributes that motivate star graphs and
// their super-IP relatives (Section 1). For networks of comparable size this
// example measures exact vertex/edge connectivity, extracts a maximum set of
// vertex-disjoint paths between a distant pair (Menger), and reports
// Monte-Carlo survival rates under random node failures.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/faults"
	"repro/internal/graph"
	"repro/internal/networks"
	"repro/internal/superip"
)

func main() {
	type system struct {
		name string
		g    *graph.Graph
	}
	var systems []system
	q6, err := networks.Hypercube{Dim: 6}.Build()
	if err != nil {
		log.Fatal(err)
	}
	systems = append(systems, system{"Q6", q6})

	star5, err := networks.Star{Symbols: 5}.Build()
	if err != nil {
		log.Fatal(err)
	}
	systems = append(systems, system{"star(5)", star5})

	symHSN := superip.HSN(2, superip.NucleusHypercube(3)).SymmetricVariant()
	sg, err := symHSN.Build()
	if err != nil {
		log.Fatal(err)
	}
	systems = append(systems, system{symHSN.Name(), sg})

	ccc, err := networks.CCC{Dim: 4}.Build()
	if err != nil {
		log.Fatal(err)
	}
	systems = append(systems, system{"CCC(4)", ccc})

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "network\tN\tmin-deg\tkappa\tlambda\tdisjoint paths\tsurvive 3 faults")
	for _, s := range systems {
		k, err := faults.VertexConnectivity(s.g)
		if err != nil {
			log.Fatal(err)
		}
		lam, err := faults.EdgeConnectivity(s.g)
		if err != nil {
			log.Fatal(err)
		}
		// Disjoint paths between node 0 and a non-neighbor.
		var tgt int32 = -1
		for v := int32(1); v < int32(s.g.N()); v++ {
			if !s.g.HasEdge(0, v) {
				tgt = v
				break
			}
		}
		paths, err := faults.DisjointPaths(s.g, 0, tgt)
		if err != nil {
			log.Fatal(err)
		}
		inj, err := faults.InjectNodeFaults(s.g, 3, 300, 7)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%d/%d\n",
			s.name, s.g.N(), s.g.MinDegree(), k, lam, len(paths),
			inj.SurvivedConnected, inj.Trials)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nkappa = lambda = min degree for all of these (maximal fault")
	fmt.Println("tolerance), and the disjoint-path count realizes Menger's bound:")
	fmt.Println("any kappa-1 failures leave every pair connected.")
}
