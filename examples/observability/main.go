// Observability: instrument a simulator run instead of reading only its
// summary line. The paper's II-cost argument says hierarchical networks
// live or die by their few off-module links; this example makes that
// visible. It runs HSN(2;Q3) under uniform traffic and again with a
// hotspot on node 0, attaching the internal/obs collectors: a latency
// histogram (tail percentiles, not just the mean), a per-link time series
// (which links are busy, and are they the slow off-module ones?), and a
// sampled packet-lifecycle trace. Under the hotspot, queueing concentrates
// on the off-module links into the hotspot's module — exactly the
// contention the II-cost metric prices in.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/superip"
)

func main() {
	net := superip.HSN(2, superip.NucleusHypercube(3))
	g, ix, err := net.BuildWithIndex()
	if err != nil {
		log.Fatal(err)
	}
	part := metrics.NucleusPartition(ix, net.Nucleus.Nuc.M())
	ist := metrics.IStats(g, part)
	fmt.Printf("%s: N=%d modules=%d I-degree=%.2f II-cost=%.2f\n\n",
		net.Name(), g.N(), part.K, metrics.IDegree(g, part),
		metrics.IICost(metrics.IDegree(g, part), int(ist.Diameter)))

	base := netsim.Config{
		Graph:           g,
		Partition:       &part,
		OffModulePeriod: 4,
		InjectionRate:   0.035,
		WarmupCycles:    500,
		MeasureCycles:   4000,
		Seed:            7,
	}

	hotspot, err := netsim.Hotspot(0.25)
	if err != nil {
		log.Fatal(err)
	}
	runs := []struct {
		name    string
		pattern netsim.PatternFunc
	}{
		{"uniform", nil},
		{"hotspot(0.25 -> node 0)", hotspot},
	}

	type result struct {
		name string
		st   netsim.Stats
		hist *obs.LatencyHist
		ts   *obs.TimeSeries
		tr   *obs.Trace
	}
	var results []result
	for _, r := range runs {
		cfg := base
		cfg.Pattern = r.pattern
		hist := &obs.LatencyHist{}
		ts := obs.NewTimeSeries(func(u int64) int64 { return int64(part.Of[u]) }, 100)
		tr := &obs.Trace{SampleEvery: 32}
		cfg.Probe = obs.Multi(hist, ts, tr)
		st, err := netsim.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		ts.Flush()
		results = append(results, result{r.name, st, hist, ts, tr})
	}

	// Headline numbers: the mean hides what the hotspot does to the tail.
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "traffic\tdelivered\texpired\tavg-lat\tp50\tp95\tp99\tmax")
	for _, r := range results {
		fmt.Fprintf(w, "%s\t%d\t%d\t%.2f\t%.1f\t%.1f\t%.1f\t%d\n",
			r.name, r.st.Delivered, r.st.Expired, r.st.AvgLatency,
			r.st.P50Latency, r.st.P95Latency, r.st.P99Latency, r.st.MaxLatency)
	}
	w.Flush()

	for _, r := range results {
		fmt.Printf("\nlatency histogram, %s:\n", r.name)
		if err := r.hist.WriteText(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}

	// Where did the cycles go? Top links by occupancy, per run. The
	// off-module links run at period 4, so a hop there costs four cycles
	// of link occupancy — under the hotspot the links into node 0's
	// module saturate first.
	hotMod := part.Of[0]
	for _, r := range results {
		fmt.Printf("\ntop links by busy cycles, %s (observed %d cycles):\n",
			r.name, r.ts.ObservedCycles())
		for _, l := range r.ts.TopLinks(6) {
			kind := "on-module "
			if l.OffModule {
				kind = "off-module"
			}
			into := ""
			if l.OffModule && part.Of[l.V] == hotMod {
				into = "  <- into the hotspot module"
			}
			fmt.Printf("  %4d -> %-4d %s  hops %-6d busy %-7d util %.3f%s\n",
				l.U, l.V, kind, l.Hops, l.Busy, l.Util, into)
		}
	}

	// Aggregate the same data per module: total off-module busy cycles,
	// grouped by the module the traffic flows INTO.
	fmt.Printf("\noff-module busy cycles by destination module (hotspot run):\n")
	hot := results[1].ts
	busyInto := make([]int64, part.K)
	for _, l := range hot.TopLinks(0) {
		if l.OffModule {
			busyInto[part.Of[l.V]] += l.Busy
		}
	}
	for m, b := range busyInto {
		tag := ""
		if int32(m) == hotMod {
			tag = "  <- hotspot"
		}
		fmt.Printf("  module %d: %d%s\n", m, b, tag)
	}

	// The trace has the per-packet story: load it in chrome://tracing or
	// Perfetto via `go run ./cmd/simulate ... -trace trace.json`.
	fmt.Printf("\nsampled lifecycle trace: %d events for the hotspot run "+
		"(write one with: go run ./cmd/simulate -net HSN -l 2 -nucleus Q3 -trace trace.json)\n",
		results[1].tr.Len())

	// Sanity: summed link occupancy must equal total hop-cycles.
	fmt.Printf("total link-busy cycles (hotspot): %d across %d links\n",
		hot.TotalBusy(), len(hot.TopLinks(0)))
}
