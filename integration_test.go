package repro

// Integration tests exercising the full pipeline across modules: define a
// super-IP network, verify its theory, pack it into modules, measure the
// Section 5 metrics, broadcast on it, embed its product network, emulate an
// algorithm, and simulate packet traffic — each stage consuming the previous
// stage's artifacts.

import (
	"math"
	"testing"

	"repro/internal/collectives"
	"repro/internal/embed"
	"repro/internal/emulate"
	"repro/internal/faults"
	"repro/internal/figures"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/superip"
)

// TestEndToEndHSNPipeline drives one network through every subsystem.
func TestEndToEndHSNPipeline(t *testing.T) {
	net := superip.HSN(2, superip.NucleusHypercube(3)) // 64 nodes

	// 1. Theory: build and verify the Theorem 3.2/4.1 laws.
	g, ix, err := net.BuildWithIndex()
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != net.N() {
		t.Fatalf("size law: %d vs %d", g.N(), net.N())
	}
	st := g.AllPairs()
	if int(st.Diameter) != net.Diameter() {
		t.Fatalf("diameter law: %d vs %d", st.Diameter, net.Diameter())
	}

	// 2. Routing: the Theorem 4.1 router on a worst-case pair, cross-checked
	// against the bidirectional label search.
	router, err := net.Router()
	if err != nil {
		t.Fatal(err)
	}
	src, dst := ix.Label(0), ix.Label(int32(ix.N()-1))
	path, err := router.Route(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := net.Super().IPGraph().ShortestPath(src, dst, 0)
	if err != nil {
		t.Fatal(err)
	}
	if path.Hops() > net.Diameter() || len(opt) > path.Hops() {
		t.Fatalf("routing: %d hops (optimal search %d, diameter %d)",
			path.Hops(), len(opt), net.Diameter())
	}

	// 3. Packaging: nucleus modules, Section 5 metrics.
	part := metrics.NucleusPartition(ix, net.Nucleus.Nuc.M())
	ist := metrics.IStats(g, part)
	if int(ist.Diameter) != net.IDiameter() {
		t.Fatalf("I-diameter: %d vs %d", ist.Diameter, net.IDiameter())
	}
	ideg := metrics.IDegree(g, part)
	if ideg > float64(net.SuperDegree()) {
		t.Fatalf("I-degree %v exceeds super-degree %d", ideg, net.SuperDegree())
	}

	// 4. Collectives: module-aware broadcast crosses modules K-1 times.
	bres, err := collectives.Broadcast(g, part, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if bres.CrossEdges != part.K-1 {
		t.Fatalf("broadcast cross edges %d, want %d", bres.CrossEdges, part.K-1)
	}

	// 5. Embedding: the guest hypercube Q6 embeds with dilation <= 3.
	eres, err := embed.ProductIntoHSN(net)
	if err != nil {
		t.Fatal(err)
	}
	if eres.Dilation > 3 {
		t.Fatalf("dilation %d", eres.Dilation)
	}

	// 6. Emulation: all-reduce on the emulated machine matches a direct Q6.
	machine, err := emulate.NewHSNMachine(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]int64, machine.N())
	var want int64
	for i := range vals {
		vals[i] = int64(i * i % 97)
		want += vals[i]
	}
	if err := machine.SetValues(vals); err != nil {
		t.Fatal(err)
	}
	if err := emulate.AllReduceSum(machine); err != nil {
		t.Fatal(err)
	}
	for _, v := range machine.Values() {
		if v != want {
			t.Fatalf("all-reduce result %d, want %d", v, want)
		}
	}

	// 7. Robustness: connectivity equals min degree.
	kappa, err := faults.VertexConnectivity(g)
	if err != nil {
		t.Fatal(err)
	}
	if kappa != g.MinDegree() {
		t.Fatalf("kappa %d != min degree %d", kappa, g.MinDegree())
	}

	// 8. Simulation: delivered latency under light load is at least the
	// average distance and bounded by it plus slack.
	sim, err := netsim.Run(netsim.Config{
		Graph: g, Partition: &part, OffModulePeriod: 2,
		InjectionRate: 0.01, WarmupCycles: 200, MeasureCycles: 1500, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sim.AvgLatency < st.AvgDistance {
		t.Fatalf("simulated latency %v below average distance %v", sim.AvgLatency, st.AvgDistance)
	}

	// 9. Throughput: the analytic bound is consistent with the simulated
	// delivered throughput.
	bound := metrics.ThroughputBound(g, st.AvgDistance)
	if sim.Throughput > bound {
		t.Fatalf("simulated throughput %v exceeds bound %v", sim.Throughput, bound)
	}
}

// TestEndToEndSymmetricPipeline drives the symmetric-variant machinery.
func TestEndToEndSymmetricPipeline(t *testing.T) {
	base := superip.RingCN(3, superip.NucleusHypercube(2))
	sym := base.SymmetricVariant()
	g, ix, err := sym.BuildWithIndex()
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3*base.N() {
		t.Fatalf("symmetric size %d, want %d", g.N(), 3*base.N())
	}
	if !g.IsRegular() {
		t.Fatal("symmetric variant must be regular")
	}
	st := g.AllPairs()
	if int(st.Diameter) != sym.Diameter() {
		t.Fatalf("Theorem 4.3: %d vs %d", st.Diameter, sym.Diameter())
	}
	// Route with the Theorem 4.3 schedule machinery.
	r, err := sym.Router()
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		u := int32((trial * 17) % ix.N())
		v := int32((trial * 89) % ix.N())
		path, err := r.Route(ix.Label(u), ix.Label(v))
		if err != nil {
			t.Fatal(err)
		}
		if path.Hops() > sym.Diameter() {
			t.Fatalf("route %d hops > diameter %d", path.Hops(), sym.Diameter())
		}
	}
}

// TestFigureConsistency cross-checks figure tables against the metric
// machinery they are built from.
func TestFigureConsistency(t *testing.T) {
	net := superip.CompleteCN(2, superip.NucleusHypercube(4))
	g, ix, err := net.BuildWithIndex()
	if err != nil {
		t.Fatal(err)
	}
	p := metrics.NucleusPartition(ix, net.Nucleus.Nuc.M())
	measured := metrics.IDegree(g, p)
	analytic := figures.IDegreeAnalytic(net)
	if math.Abs(measured-analytic) > 1e-9 {
		t.Fatalf("figures I-degree %v vs measured %v", analytic, measured)
	}
	if metrics.IICost(analytic, net.IDiameter()) !=
		metrics.IICost(measured, int(metrics.IStats(g, p).Diameter)) {
		t.Fatal("II-cost pipelines disagree")
	}
}
